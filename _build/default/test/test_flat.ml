(* Tests for design flattening and the end-to-end STA-vs-flat-simulation
   check: the strongest integration test in the repo — proximity-aware STA
   predictions are compared against a transistor-level simulation of the
   whole block. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Pwl = Proxim_waveform.Pwl
module Measure = Proxim_measure.Measure
module Netlist = Proxim_circuit.Netlist
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Flat = Proxim_sta.Flat

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2

let cell name gate inputs output =
  { Design.name; gate; input_nets = inputs; output_net = output }

let two_level () =
  Design.create
    ~cells:
      [
        cell "u1" nand2 [| "a"; "b" |] "n1";
        cell "u2" nand2 [| "c"; "d" |] "n2";
        cell "u3" nand2 [| "n1"; "n2" |] "y";
      ]
    ~primary_inputs:[ "a"; "b"; "c"; "d" ]
    ~primary_outputs:[ "y" ]

let rise t = Pwl.ramp ~t0:t ~width:200e-12 ~v_from:0. ~v_to:5.

let test_flatten_structure () =
  let d = two_level () in
  let pi_waves =
    List.map (fun n -> (n, rise 0.5e-9)) (Design.primary_inputs d)
  in
  let flat = Flat.flatten d ~pi_waves in
  (* 3 cells x 4 transistors = 12 mosfets; 5 sources (vdd + 4 PI) *)
  let mosfets, vsrcs =
    Array.fold_left
      (fun (m, v) dev ->
        match dev with
        | Netlist.Mosfet _ -> (m + 1, v)
        | Netlist.Vsource _ -> (m, v + 1)
        | Netlist.Capacitor _ | Netlist.Resistor _ -> (m, v))
      (0, 0) flat.Flat.net.Netlist.devices
  in
  Alcotest.(check int) "12 transistors" 12 mosfets;
  Alcotest.(check int) "5 sources" 5 vsrcs;
  (* every net got a node *)
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (List.mem_assoc n flat.Flat.node_of_net))
    [ "a"; "b"; "c"; "d"; "n1"; "n2"; "y" ]

let test_flatten_requires_waves () =
  let d = two_level () in
  Alcotest.(check bool) "missing wave rejected" true
    (try
       ignore (Flat.flatten d ~pi_waves:[ ("a", rise 0.) ]);
       false
     with Invalid_argument _ -> true)

let test_flat_logic_settles_correctly () =
  let d = two_level () in
  (* a=b=1 (rising), c=d=0: n1 -> 0, n2 -> 1, y = nand(0,1) -> 1 *)
  let pi_waves =
    [ ("a", rise 0.5e-9); ("b", rise 0.5e-9);
      ("c", Pwl.constant 0.); ("d", Pwl.constant 0.) ]
  in
  let flat = Flat.flatten d ~pi_waves in
  let result = Flat.simulate flat ~t_stop:4e-9 in
  let v net = Pwl.value (Flat.probe flat result ~net) 4e-9 in
  Alcotest.(check bool) "n1 low" true (v "n1" < 0.2);
  Alcotest.(check bool) "n2 high" true (v "n2" > 4.8);
  Alcotest.(check bool) "y high" true (v "y" > 4.8)

let test_sta_matches_flat_simulation () =
  (* End-to-end: rising a/b near-simultaneously; follow the transition
     a -> n1(fall) -> y(rise) and compare STA net arrivals with the flat
     transistor-level simulation, measured with the same thresholds. *)
  let d = two_level () in
  let th = Vtc.thresholds ~points:201 nand2 in
  let models = Sta.oracle_model_factory d th in
  let slew_a = 250e-12 and slew_b = 150e-12 in
  let t_a = 1.0e-9 and t_b = 1.05e-9 in
  let pi =
    [
      ("a", { Sta.time = t_a; slew = slew_a; edge = Measure.Rise });
      ("b", { Sta.time = t_b; slew = slew_b; edge = Measure.Rise });
    ]
  in
  let report = Sta.analyze ~mode:Sta.Proximity ~models ~thresholds:th d ~pi in
  (* flat simulation with the same stimuli; c,d stay low so n2 stays high
     and u3 is sensitized *)
  let stim slew cross =
    Measure.ramp_of_stimulus th { Measure.edge = Measure.Rise; tau = slew; cross_time = cross }
  in
  let pi_waves =
    [ ("a", stim slew_a t_a); ("b", stim slew_b t_b);
      ("c", Pwl.constant 0.); ("d", Pwl.constant 0.) ]
  in
  let flat = Flat.flatten d ~pi_waves in
  let result = Flat.simulate flat ~t_stop:6e-9 in
  let check_net net edge =
    match List.assoc_opt net report.Sta.arrivals with
    | None -> Alcotest.failf "no STA arrival for %s" net
    | Some (a : Sta.arrival) -> (
      let wave = Flat.probe flat result ~net in
      let crossing =
        match edge with
        | Measure.Fall ->
          Pwl.first_crossing ~direction:Pwl.Falling wave th.Vtc.vih
        | Measure.Rise ->
          Pwl.first_crossing ~direction:Pwl.Rising wave th.Vtc.vil
      in
      match crossing with
      | None -> Alcotest.failf "net %s never switched in simulation" net
      | Some t_sim ->
        let err = Float.abs (a.Sta.time -. t_sim) in
        Alcotest.(check bool)
          (Printf.sprintf "%s STA %.1fps vs flat %.1fps" net
             (a.Sta.time *. 1e12) (t_sim *. 1e12))
          true
          (* per-stage models were characterized on isolated gates; allow
             a modest budget for stage-coupling effects *)
          (err < 25e-12))
  in
  check_net "n1" Measure.Fall;
  check_net "y" Measure.Rise

let () =
  Alcotest.run "flat"
    [
      ( "structure",
        [
          Alcotest.test_case "flatten" `Quick test_flatten_structure;
          Alcotest.test_case "requires waves" `Quick test_flatten_requires_waves;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "logic settles" `Quick
            test_flat_logic_settles_correctly;
          Alcotest.test_case "STA vs flat simulation" `Slow
            test_sta_matches_flat_simulation;
        ] );
    ]
