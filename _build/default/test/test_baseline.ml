(* Tests for the collapse-to-inverter baselines. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Proximity = Proxim_core.Proximity
module Collapse = Proxim_baseline.Collapse

let tech = Tech.generic_5v
let nand3 = Gate.nand ~wn:4e-6 ~wp:8e-6 tech ~fan_in:3
let th = lazy (Vtc.thresholds ~points:201 nand3)

let ev pin edge tau cross =
  { Proximity.pin; edge; tau; cross_time = cross }

let test_equivalent_widths_nand_falling_pair () =
  (* two switching inputs, one stable-high: pull-down is a full series
     stack (wn/3); pull-up has two conducting PMOS in parallel (2 wp) *)
  let wn_eq, wp_eq =
    Collapse.equivalent_widths nand3 ~switching:[ 0; 1 ] ~edge:Measure.Fall
  in
  Alcotest.(check (float 1e-12)) "wn/3" (4e-6 /. 3.) wn_eq;
  Alcotest.(check (float 1e-12)) "2wp" 16e-6 wp_eq

let test_equivalent_widths_all_switching () =
  let wn_eq, wp_eq =
    Collapse.equivalent_widths nand3 ~switching:[ 0; 1; 2 ] ~edge:Measure.Rise
  in
  Alcotest.(check (float 1e-12)) "wn/3" (4e-6 /. 3.) wn_eq;
  Alcotest.(check (float 1e-12)) "3wp" 24e-6 wp_eq

let test_equivalent_widths_nor () =
  let nor2 = Gate.nor ~wn:4e-6 ~wp:8e-6 tech ~fan_in:2 in
  let wn_eq, wp_eq =
    Collapse.equivalent_widths nor2 ~switching:[ 0; 1 ] ~edge:Measure.Rise
  in
  Alcotest.(check (float 1e-12)) "parallel nmos" 8e-6 wn_eq;
  Alcotest.(check (float 1e-12)) "series pmos" 4e-6 wp_eq

let test_predict_validates () =
  let th = Lazy.force th in
  Alcotest.check_raises "no events"
    (Invalid_argument "Collapse.predict: no events") (fun () ->
      ignore (Collapse.predict Collapse.Jun nand3 th ~events:[]));
  Alcotest.check_raises "mixed edges"
    (Invalid_argument "Collapse.predict: mixed edges") (fun () ->
      ignore
        (Collapse.predict Collapse.Jun nand3 th
           ~events:
             [
               ev 0 Measure.Fall 1e-10 1e-9;
               ev 1 Measure.Rise 1e-10 1e-9;
             ]))

let golden events ~ref_pin =
  let th = Lazy.force th in
  let stimuli =
    List.map
      (fun (e : Proximity.event) ->
        ( e.Proximity.pin,
          { Measure.edge = e.Proximity.edge; tau = e.Proximity.tau;
            cross_time = e.Proximity.cross_time } ))
      events
  in
  Measure.multi_input nand3 th ~stimuli ~ref_pin

let test_baseline_in_right_ballpark () =
  (* the collapse methods are approximations, but they should predict an
     output crossing within ~40% of the golden one for an easy case *)
  let th = Lazy.force th in
  let events =
    [ ev 0 Measure.Fall 300e-12 2e-9; ev 1 Measure.Fall 300e-12 2e-9 ]
  in
  let g = golden events ~ref_pin:0 in
  let golden_cross = 2e-9 +. g.Measure.delay in
  List.iter
    (fun variant ->
      let p = Collapse.predict variant nand3 th ~events in
      let err =
        Float.abs (p.Collapse.out_cross -. golden_cross) /. g.Measure.delay
      in
      Alcotest.(check bool) "ballpark" true (err < 0.4))
    [ Collapse.Jun; Collapse.Nabavi_lishi ]

let test_jun_picks_earliest_for_falling () =
  (* for a falling pair (parallel assist) Jun uses the earliest input; the
     prediction must therefore not move when the LATER input moves a bit *)
  let th = Lazy.force th in
  let base =
    Collapse.predict Collapse.Jun nand3 th
      ~events:[ ev 0 Measure.Fall 300e-12 2e-9; ev 1 Measure.Fall 200e-12 2.1e-9 ]
  in
  let moved =
    Collapse.predict Collapse.Jun nand3 th
      ~events:[ ev 0 Measure.Fall 300e-12 2e-9; ev 1 Measure.Fall 200e-12 2.2e-9 ]
  in
  Alcotest.(check (float 1e-15)) "insensitive to later input"
    base.Collapse.out_cross moved.Collapse.out_cross

let test_nabavi_tracks_both_inputs () =
  let th = Lazy.force th in
  let base =
    Collapse.predict Collapse.Nabavi_lishi nand3 th
      ~events:[ ev 0 Measure.Fall 300e-12 2e-9; ev 1 Measure.Fall 200e-12 2.1e-9 ]
  in
  let moved =
    Collapse.predict Collapse.Nabavi_lishi nand3 th
      ~events:[ ev 0 Measure.Fall 300e-12 2e-9; ev 1 Measure.Fall 200e-12 2.2e-9 ]
  in
  Alcotest.(check bool) "sensitive to both inputs" true
    (Float.abs (base.Collapse.out_cross -. moved.Collapse.out_cross) > 1e-12)

let test_proximity_beats_baselines () =
  (* the paper's claim: the compositional proximity model is more accurate
     than collapse-to-inverter, here on a staggered 3-input case *)
  let th = Lazy.force th in
  let models = Proxim_macromodel.Models.of_oracle nand3 th in
  let events =
    [
      ev 0 Measure.Fall 500e-12 2.0e-9;
      ev 1 Measure.Fall 150e-12 2.12e-9;
      ev 2 Measure.Fall 900e-12 1.95e-9;
    ]
  in
  let r = Proximity.evaluate models events in
  let g = golden events ~ref_pin:r.Proximity.ref_pin in
  let golden_cross = r.Proximity.ref_cross +. g.Measure.delay in
  let err_prox = Float.abs (r.Proximity.ref_cross +. r.Proximity.delay -. golden_cross) in
  let err_of variant =
    let p = Collapse.predict variant nand3 th ~events in
    Float.abs (p.Collapse.out_cross -. golden_cross)
  in
  Alcotest.(check bool) "better than Jun" true (err_prox < err_of Collapse.Jun);
  Alcotest.(check bool) "better than Nabavi-Lishi" true
    (err_prox < err_of Collapse.Nabavi_lishi)

let () =
  Alcotest.run "baseline"
    [
      ( "collapse",
        [
          Alcotest.test_case "nand falling pair" `Quick
            test_equivalent_widths_nand_falling_pair;
          Alcotest.test_case "all switching" `Quick
            test_equivalent_widths_all_switching;
          Alcotest.test_case "nor" `Quick test_equivalent_widths_nor;
          Alcotest.test_case "validation" `Quick test_predict_validates;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "ballpark" `Quick test_baseline_in_right_ballpark;
          Alcotest.test_case "jun critical input" `Quick
            test_jun_picks_earliest_for_falling;
          Alcotest.test_case "nabavi blends" `Quick test_nabavi_tracks_both_inputs;
          Alcotest.test_case "proximity wins" `Slow test_proximity_beats_baselines;
        ] );
    ]
