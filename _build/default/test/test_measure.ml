(* Tests for measurement semantics and the golden-reference runner. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Pwl = Proxim_waveform.Pwl
module Measure = Proxim_measure.Measure

let tech = Tech.generic_5v
let nand3 = Gate.nand tech ~fan_in:3
let th = lazy (Vtc.thresholds ~points:201 nand3)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_input_threshold () =
  let th = Lazy.force th in
  check_float "rise uses vil" th.Vtc.vil
    (Measure.input_threshold th Measure.Rise);
  check_float "fall uses vih" th.Vtc.vih
    (Measure.input_threshold th Measure.Fall)

let test_ramp_positioning () =
  let th = Lazy.force th in
  List.iter
    (fun edge ->
      let stim = { Measure.edge; tau = 400e-12; cross_time = 2e-9 } in
      let wave = Measure.ramp_of_stimulus th stim in
      match Measure.input_cross_time th wave edge with
      | Some t -> check_float ~eps:1e-15 "crossing placed" 2e-9 t
      | None -> Alcotest.fail "no crossing")
    [ Measure.Rise; Measure.Fall ]

let test_ramp_full_swing () =
  let th = Lazy.force th in
  let stim = { Measure.edge = Measure.Rise; tau = 100e-12; cross_time = 1e-9 } in
  let wave = Measure.ramp_of_stimulus th stim in
  check_float "starts at 0" 0. (Pwl.value wave 0.);
  check_float "ends at vdd" 5. (Pwl.value wave 5e-9)

let test_separation () =
  let th = Lazy.force th in
  let mk cross edge = Measure.ramp_of_stimulus th { Measure.edge; tau = 200e-12; cross_time = cross } in
  let wi = mk 1e-9 Measure.Fall and wj = mk 1.3e-9 Measure.Fall in
  match Measure.separation th ~i:(wi, Measure.Fall) ~j:(wj, Measure.Fall) with
  | Some s -> check_float ~eps:1e-15 "s_ij" 0.3e-9 s
  | None -> Alcotest.fail "no separation"

let test_opposite () =
  Alcotest.(check bool) "rise<->fall" true
    (Measure.opposite Measure.Rise = Measure.Fall
     && Measure.opposite Measure.Fall = Measure.Rise)

let test_single_input_delay_positive_and_monotone () =
  let th = Lazy.force th in
  (* the whole point of the threshold rule: delay stays positive and grows
     with the input transition time (paper §2) *)
  List.iter
    (fun edge ->
      let prev = ref 0. in
      List.iter
        (fun tau ->
          let obs = Measure.single_input nand3 th ~pin:0 ~edge ~tau in
          Alcotest.(check bool) "positive" true (obs.Measure.delay > 0.);
          Alcotest.(check bool) "monotone in tau" true
            (obs.Measure.delay >= !prev -. 1e-12);
          Alcotest.(check bool) "transition positive" true
            (obs.Measure.out_transition > 0.);
          prev := obs.Measure.delay)
        [ 50e-12; 150e-12; 400e-12; 1000e-12; 2500e-12 ])
    [ Measure.Rise; Measure.Fall ]

let test_stack_position_affects_delay () =
  let th = Lazy.force th in
  let d pin =
    (Measure.single_input nand3 th ~pin ~edge:Measure.Rise ~tau:300e-12)
      .Measure.delay
  in
  (* pin 0 (next to the output) discharges through the whole stack below
     it, so it is the slowest for rising inputs *)
  Alcotest.(check bool) "a slower than c" true (d 0 > d 2)

let test_load_slows_gate () =
  let th = Lazy.force th in
  let obs_small =
    Measure.single_input ~load:50e-15 nand3 th ~pin:0 ~edge:Measure.Rise
      ~tau:300e-12
  in
  let obs_big =
    Measure.single_input ~load:400e-15 nand3 th ~pin:0 ~edge:Measure.Rise
      ~tau:300e-12
  in
  Alcotest.(check bool) "bigger load, bigger delay" true
    (obs_big.Measure.delay > obs_small.Measure.delay *. 1.5);
  Alcotest.(check bool) "bigger load, slower output" true
    (obs_big.Measure.out_transition > obs_small.Measure.out_transition)

let test_multi_input_matches_single_at_large_separation () =
  let th = Lazy.force th in
  let tau = 300e-12 in
  let single =
    Measure.single_input nand3 th ~pin:0 ~edge:Measure.Fall ~tau
  in
  (* other input crosses far outside the proximity window *)
  let stimuli =
    [
      (0, { Measure.edge = Measure.Fall; tau; cross_time = 1e-9 });
      (1, { Measure.edge = Measure.Fall; tau; cross_time = 4e-9 });
    ]
  in
  let multi = Measure.multi_input nand3 th ~stimuli ~ref_pin:0 in
  Alcotest.(check bool) "delay unaffected" true
    (Float.abs (multi.Measure.delay -. single.Measure.delay)
     < 0.02 *. single.Measure.delay)

let test_proximity_speeds_up_falling_pair () =
  let th = Lazy.force th in
  let tau = 300e-12 in
  let single = Measure.single_input nand3 th ~pin:0 ~edge:Measure.Fall ~tau in
  let stimuli =
    [
      (0, { Measure.edge = Measure.Fall; tau; cross_time = 2e-9 });
      (1, { Measure.edge = Measure.Fall; tau; cross_time = 2e-9 });
    ]
  in
  let multi = Measure.multi_input nand3 th ~stimuli ~ref_pin:0 in
  (* two conducting PMOS in parallel: output rises faster (Fig 1-2a) *)
  Alcotest.(check bool) "simultaneous falling pair is faster" true
    (multi.Measure.delay < single.Measure.delay);
  Alcotest.(check bool) "output transition faster too" true
    (multi.Measure.out_transition < single.Measure.out_transition)

let test_proximity_slows_down_rising_pair () =
  let th = Lazy.force th in
  let tau = 300e-12 in
  let single = Measure.single_input nand3 th ~pin:0 ~edge:Measure.Rise ~tau in
  let stimuli =
    [
      (0, { Measure.edge = Measure.Rise; tau; cross_time = 2e-9 });
      (1, { Measure.edge = Measure.Rise; tau; cross_time = 2e-9 });
    ]
  in
  let multi = Measure.multi_input nand3 th ~stimuli ~ref_pin:0 in
  (* the series stack waits for both transistors (Fig 1-2c) *)
  Alcotest.(check bool) "simultaneous rising pair is slower" true
    (multi.Measure.delay > single.Measure.delay)

let test_multi_input_validation () =
  let th = Lazy.force th in
  Alcotest.check_raises "ref not in stimuli"
    (Invalid_argument "Measure.multi_input: ref_pin not in stimuli")
    (fun () ->
      ignore
        (Measure.multi_input nand3 th
           ~stimuli:[ (0, { Measure.edge = Measure.Fall; tau = 1e-10; cross_time = 1e-9 }) ]
           ~ref_pin:1));
  Alcotest.check_raises "mixed edges"
    (Invalid_argument "Measure.multi_input: mixed edge directions")
    (fun () ->
      ignore
        (Measure.multi_input nand3 th
           ~stimuli:
             [
               (0, { Measure.edge = Measure.Fall; tau = 1e-10; cross_time = 1e-9 });
               (1, { Measure.edge = Measure.Rise; tau = 1e-10; cross_time = 1e-9 });
             ]
           ~ref_pin:0))

let () =
  Alcotest.run "measure"
    [
      ( "conventions",
        [
          Alcotest.test_case "input thresholds" `Quick test_input_threshold;
          Alcotest.test_case "ramp positioning" `Quick test_ramp_positioning;
          Alcotest.test_case "ramp swing" `Quick test_ramp_full_swing;
          Alcotest.test_case "separation" `Quick test_separation;
          Alcotest.test_case "opposite" `Quick test_opposite;
        ] );
      ( "single input",
        [
          Alcotest.test_case "positive + monotone" `Quick
            test_single_input_delay_positive_and_monotone;
          Alcotest.test_case "stack position" `Quick
            test_stack_position_affects_delay;
          Alcotest.test_case "load dependence" `Quick test_load_slows_gate;
        ] );
      ( "proximity phenomenology",
        [
          Alcotest.test_case "large separation = single" `Quick
            test_multi_input_matches_single_at_large_separation;
          Alcotest.test_case "falling pair speeds up" `Quick
            test_proximity_speeds_up_falling_pair;
          Alcotest.test_case "rising pair slows down" `Quick
            test_proximity_slows_down_rising_pair;
          Alcotest.test_case "validation" `Quick test_multi_input_validation;
        ] );
    ]
