(* Tests for the netlist and the DC/transient engines, against closed-form
   circuit theory. *)

module Netlist = Proxim_circuit.Netlist
module Pwl = Proxim_waveform.Pwl
module Mna = Proxim_spice.Mna
module Dc = Proxim_spice.Dc
module Transient = Proxim_spice.Transient
module Options = Proxim_spice.Options
module Linalg = Proxim_util.Linalg
module M = Proxim_device.Mosfet

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let nmos () =
  {
    M.polarity = M.Nmos; vt0 = 0.7; kp = 120e-6; lambda = 0.05;
    w = 4e-6; l = 0.8e-6; kind = M.Shichman_hodges;
  }

let pmos () =
  {
    M.polarity = M.Pmos; vt0 = -0.8; kp = 40e-6; lambda = 0.05;
    w = 8e-6; l = 0.8e-6; kind = M.Shichman_hodges;
  }

(* ------------------------------------------------------------------ *)
(* Netlist                                                             *)

let test_netlist_builder () =
  let b = Netlist.create () in
  let n1 = Netlist.node b "x" in
  let n2 = Netlist.node b "y" in
  Alcotest.(check bool) "distinct" true (n1 <> n2);
  Alcotest.(check int) "same name same node" n1 (Netlist.node b "x");
  Alcotest.(check int) "gnd aliases" Netlist.ground (Netlist.node b "0");
  Netlist.add_resistor b ~name:"r1" ~ohms:100. ~a:n1 ~b:n2;
  Netlist.add_vdc b ~name:"v1" ~volts:1. ~pos:n1 ~neg:Netlist.ground;
  let net = Netlist.freeze b in
  Alcotest.(check int) "node count (incl gnd)" 3 net.Netlist.node_count;
  Alcotest.(check int) "device count" 2 (Netlist.device_count net);
  Alcotest.(check int) "find" n2 (Netlist.find_node net "y")

let test_netlist_rejects_duplicates () =
  let b = Netlist.create () in
  let n = Netlist.node b "x" in
  Netlist.add_resistor b ~name:"r" ~ohms:1. ~a:n ~b:Netlist.ground;
  Netlist.add_resistor b ~name:"r" ~ohms:2. ~a:n ~b:Netlist.ground;
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Netlist.freeze: duplicate device name r") (fun () ->
      ignore (Netlist.freeze b))

let test_netlist_rejects_bad_values () =
  let b = Netlist.create () in
  let n = Netlist.node b "x" in
  Alcotest.check_raises "zero ohms"
    (Invalid_argument "Netlist.add_resistor: ohms <= 0") (fun () ->
      Netlist.add_resistor b ~name:"r" ~ohms:0. ~a:n ~b:Netlist.ground);
  Alcotest.check_raises "zero farads"
    (Invalid_argument "Netlist.add_capacitor: farads <= 0") (fun () ->
      Netlist.add_capacitor b ~name:"c" ~farads:0. ~a:n ~b:Netlist.ground)

(* ------------------------------------------------------------------ *)
(* DC                                                                  *)

let divider () =
  let b = Netlist.create () in
  let top = Netlist.node b "top" in
  let mid = Netlist.node b "mid" in
  Netlist.add_vdc b ~name:"v1" ~volts:10. ~pos:top ~neg:Netlist.ground;
  Netlist.add_resistor b ~name:"r1" ~ohms:1000. ~a:top ~b:mid;
  Netlist.add_resistor b ~name:"r2" ~ohms:3000. ~a:mid ~b:Netlist.ground;
  (Netlist.freeze b, mid)

let test_dc_divider () =
  let net, mid = divider () in
  let sol = Dc.operating_point net in
  check_float ~eps:1e-6 "divider voltage" 7.5 sol.Dc.voltages.(mid);
  (* branch current flows pos -> through source -> neg: 10V/4k = 2.5 mA
     leaves the positive terminal, so the branch current is -2.5 mA *)
  check_float ~eps:1e-9 "source current" (-2.5e-3) sol.Dc.branch_currents.(0)

let test_dc_override () =
  let net, mid = divider () in
  let sol = Dc.operating_point ~overrides:[ ("v1", 4.) ] net in
  check_float ~eps:1e-6 "override" 3. sol.Dc.voltages.(mid)

let test_dc_sweep_linear () =
  let net, mid = divider () in
  let values = [| 0.; 2.; 4.; 8. |] in
  let sols = Dc.sweep net ~source:"v1" ~values in
  Array.iteri
    (fun i sol ->
      check_float ~eps:1e-6 "sweep point" (values.(i) *. 0.75)
        sol.Dc.voltages.(mid))
    sols

let test_dc_unknown_source () =
  let net, _ = divider () in
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Dc.sweep: unknown source nope") (fun () ->
      ignore (Dc.sweep net ~source:"nope" ~values:[| 1. |]))

let cmos_inverter ~vin =
  let b = Netlist.create () in
  let vdd = Netlist.node b "vdd" in
  let inp = Netlist.node b "in" in
  let out = Netlist.node b "out" in
  Netlist.add_vdc b ~name:"Vdd" ~volts:5. ~pos:vdd ~neg:Netlist.ground;
  Netlist.add_vdc b ~name:"Vin" ~volts:vin ~pos:inp ~neg:Netlist.ground;
  Netlist.add_mosfet b ~name:"mn" ~params:(nmos ()) ~g:inp ~d:out ~s:Netlist.ground;
  Netlist.add_mosfet b ~name:"mp" ~params:(pmos ()) ~g:inp ~d:out ~s:vdd;
  Netlist.add_capacitor b ~name:"cl" ~farads:50e-15 ~a:out ~b:Netlist.ground;
  (Netlist.freeze b, out)

let test_dc_inverter_rails () =
  let net, out = cmos_inverter ~vin:0. in
  let sol = Dc.operating_point net in
  check_float ~eps:1e-4 "low in, high out" 5. sol.Dc.voltages.(out);
  let net, out = cmos_inverter ~vin:5. in
  let sol = Dc.operating_point net in
  check_float ~eps:1e-4 "high in, low out" 0. sol.Dc.voltages.(out)

let test_dc_inverter_transition_monotone () =
  let net, out = cmos_inverter ~vin:0. in
  let values = Proxim_util.Floatx.linspace 0. 5. 51 in
  let sols = Dc.sweep net ~source:"Vin" ~values in
  let prev = ref infinity in
  Array.iter
    (fun sol ->
      let v = sol.Dc.voltages.(out) in
      Alcotest.(check bool) "monotone non-increasing" true (v <= !prev +. 1e-6);
      prev := v)
    sols

(* MNA jacobian matches finite differences of the residual *)
let test_jacobian_fd () =
  let net, _ = cmos_inverter ~vin:2.5 in
  let sys = Mna.build net in
  let n = Mna.size sys in
  let x = [| 2.1; 5.0; 2.5; -1e-4; 0. |] in
  Alcotest.(check int) "size" (Array.length x) n;
  let sv = [| 5.0; 2.5 |] in
  let comps = Some [| (0.01, 0.003) |] in
  let jac = Linalg.make_mat n in
  let res = Array.make n 0. in
  Mna.assemble sys ~x ~gmin:1e-12 ~source_values:sv ~cap_companions:comps ~jac
    ~res;
  let residual_at x =
    let j2 = Linalg.make_mat n and r2 = Array.make n 0. in
    Mna.assemble sys ~x ~gmin:1e-12 ~source_values:sv ~cap_companions:comps
      ~jac:j2 ~res:r2;
    r2
  in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let xp = Array.copy x and xm = Array.copy x in
    xp.(j) <- xp.(j) +. h;
    xm.(j) <- xm.(j) -. h;
    let rp = residual_at xp and rm = residual_at xm in
    for i = 0 to n - 1 do
      let fd = (rp.(i) -. rm.(i)) /. (2. *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "J(%d,%d)" i j)
        true
        (Float.abs (fd -. jac.(i).(j)) <= 1e-6 +. (1e-5 *. Float.abs fd))
    done
  done

(* ------------------------------------------------------------------ *)
(* Transient                                                           *)

let rc_circuit ~r ~c ~wave =
  let b = Netlist.create () in
  let inp = Netlist.node b "in" in
  let out = Netlist.node b "out" in
  Netlist.add_vsource b ~name:"vin" ~wave ~pos:inp ~neg:Netlist.ground;
  Netlist.add_resistor b ~name:"r" ~ohms:r ~a:inp ~b:out;
  Netlist.add_capacitor b ~name:"c" ~farads:c ~a:out ~b:Netlist.ground;
  (Netlist.freeze b, out)

let test_rc_step_response () =
  (* v(t) = V (1 - exp(-t/RC)); R = 1k, C = 1pF -> tau = 1 ns *)
  let wave = Pwl.ramp ~t0:1e-10 ~width:1e-12 ~v_from:0. ~v_to:1. in
  let net, out = rc_circuit ~r:1e3 ~c:1e-12 ~wave in
  let opts = { Options.default with Options.h_max = 2e-11 } in
  let result = Transient.run ~opts net ~t_stop:6e-9 in
  let v = Transient.probe result out in
  let tau = 1e-9 in
  List.iter
    (fun mult ->
      let t = 1e-10 +. (mult *. tau) in
      let expected = 1. -. exp (-.mult) in
      let actual = Pwl.value v t in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "v at %g tau" mult)
        expected actual)
    [ 0.5; 1.; 2.; 3.; 5. ]

let test_rc_both_integrators_agree () =
  let wave = Pwl.ramp ~t0:1e-10 ~width:0.5e-9 ~v_from:0. ~v_to:1. in
  let net, out = rc_circuit ~r:1e3 ~c:1e-12 ~wave in
  let run integ =
    let opts = { Options.default with Options.integration = integ } in
    let r = Transient.run ~opts net ~t_stop:4e-9 in
    Pwl.value (Transient.probe r out) 3e-9
  in
  let trap = run Options.Trapezoidal and be = run Options.Backward_euler in
  Alcotest.(check (float 0.01)) "integrators agree" trap be

let test_transient_conserves_rails () =
  (* inverter output never leaves [0 - eps, vdd + eps] *)
  let b = Netlist.create () in
  let vdd = Netlist.node b "vdd" in
  let inp = Netlist.node b "in" in
  let out = Netlist.node b "out" in
  Netlist.add_vdc b ~name:"Vdd" ~volts:5. ~pos:vdd ~neg:Netlist.ground;
  let wave = Pwl.ramp ~t0:0.5e-9 ~width:0.3e-9 ~v_from:0. ~v_to:5. in
  Netlist.add_vsource b ~name:"Vin" ~wave ~pos:inp ~neg:Netlist.ground;
  Netlist.add_mosfet b ~name:"mn" ~params:(nmos ()) ~g:inp ~d:out ~s:Netlist.ground;
  Netlist.add_mosfet b ~name:"mp" ~params:(pmos ()) ~g:inp ~d:out ~s:vdd;
  Netlist.add_capacitor b ~name:"cl" ~farads:100e-15 ~a:out ~b:Netlist.ground;
  let net = Netlist.freeze b in
  let result = Transient.run net ~t_stop:3e-9 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "within rails" true (v > -0.3 && v < 5.3))
    result.Transient.node_voltages.(out);
  (* and it actually switched *)
  let v = Transient.probe result out in
  Alcotest.(check bool) "starts high" true (Pwl.value v 0. > 4.9);
  Alcotest.(check bool) "ends low" true (Pwl.value v 3e-9 < 0.1)

let test_transient_hits_breakpoints () =
  let wave = Pwl.of_points [ (1e-9, 0.); (1.5e-9, 1.); (2.25e-9, 0.2) ] in
  let net, _ = rc_circuit ~r:1e3 ~c:1e-12 ~wave in
  let result = Transient.run net ~t_stop:3e-9 in
  let has t =
    Array.exists (fun u -> Float.abs (u -. t) < 1e-15) result.Transient.times
  in
  Alcotest.(check bool) "breakpoint 1ns" true (has 1e-9);
  Alcotest.(check bool) "breakpoint 1.5ns" true (has 1.5e-9);
  Alcotest.(check bool) "breakpoint 2.25ns" true (has 2.25e-9);
  Alcotest.(check bool) "endpoint" true (has 3e-9)

let test_transient_override_pins_source () =
  let wave = Pwl.ramp ~t0:1e-10 ~width:1e-10 ~v_from:0. ~v_to:1. in
  let net, out = rc_circuit ~r:1e3 ~c:1e-12 ~wave in
  let result = Transient.run ~overrides:[ ("vin", 0.25) ] net ~t_stop:3e-9 in
  let v = Transient.probe result out in
  check_float ~eps:1e-3 "pinned" 0.25 (Pwl.value v 3e-9)

let test_probe_named () =
  let wave = Pwl.constant 1. in
  let net, _ = rc_circuit ~r:1e3 ~c:1e-12 ~wave in
  let result = Transient.run net ~t_stop:1e-9 in
  let v = Transient.probe_named net result "out" in
  check_float ~eps:1e-3 "steady" 1. (Pwl.value v 1e-9);
  Alcotest.check_raises "unknown node" Not_found (fun () ->
    ignore (Transient.probe_named net result "bogus"))

let () =
  Alcotest.run "spice"
    [
      ( "netlist",
        [
          Alcotest.test_case "builder" `Quick test_netlist_builder;
          Alcotest.test_case "duplicate names" `Quick
            test_netlist_rejects_duplicates;
          Alcotest.test_case "bad values" `Quick test_netlist_rejects_bad_values;
        ] );
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_dc_divider;
          Alcotest.test_case "override" `Quick test_dc_override;
          Alcotest.test_case "sweep" `Quick test_dc_sweep_linear;
          Alcotest.test_case "unknown source" `Quick test_dc_unknown_source;
          Alcotest.test_case "inverter rails" `Quick test_dc_inverter_rails;
          Alcotest.test_case "inverter monotone" `Quick
            test_dc_inverter_transition_monotone;
          Alcotest.test_case "jacobian vs FD" `Quick test_jacobian_fd;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC step" `Quick test_rc_step_response;
          Alcotest.test_case "integrators agree" `Quick
            test_rc_both_integrators_agree;
          Alcotest.test_case "inverter switches in rails" `Quick
            test_transient_conserves_rails;
          Alcotest.test_case "breakpoints" `Quick test_transient_hits_breakpoints;
          Alcotest.test_case "override" `Quick test_transient_override_pins_source;
          Alcotest.test_case "probe by name" `Quick test_probe_named;
        ] );
    ]
