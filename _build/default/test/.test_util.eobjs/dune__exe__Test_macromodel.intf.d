test/test_macromodel.mli:
