test/test_gates.ml: Alcotest Array Fun Int64 List Printf Proxim_circuit Proxim_gates Proxim_spice Proxim_util Proxim_waveform QCheck QCheck_alcotest
