test/test_util.ml: Alcotest Array Float Fun Gen Int64 List Proxim_util QCheck QCheck_alcotest
