test/test_measure.ml: Alcotest Float Lazy List Proxim_gates Proxim_measure Proxim_vtc Proxim_waveform
