test/test_store.ml: Alcotest Array Filename Fun Lazy List Printf Proxim_core Proxim_gates Proxim_macromodel Proxim_measure Proxim_util Proxim_vtc String Sys
