test/test_spice.ml: Alcotest Array Float List Printf Proxim_circuit Proxim_device Proxim_spice Proxim_util Proxim_waveform
