test/test_macromodel.ml: Alcotest Float Lazy List Printf Proxim_gates Proxim_macromodel Proxim_measure Proxim_util Proxim_vtc String
