test/test_baseline.ml: Alcotest Float Lazy List Proxim_baseline Proxim_core Proxim_gates Proxim_macromodel Proxim_measure Proxim_vtc
