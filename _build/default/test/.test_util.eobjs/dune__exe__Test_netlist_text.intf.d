test/test_netlist_text.mli:
