test/test_netlist_text.ml: Alcotest List Printf Proxim_gates Proxim_sta String
