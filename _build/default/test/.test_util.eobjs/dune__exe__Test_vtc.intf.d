test/test_vtc.mli:
