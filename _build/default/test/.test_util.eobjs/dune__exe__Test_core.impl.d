test/test_core.ml: Alcotest Float Lazy List Printf Proxim_core Proxim_gates Proxim_macromodel Proxim_measure Proxim_util Proxim_vtc
