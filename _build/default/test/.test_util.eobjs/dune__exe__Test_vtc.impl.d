test/test_vtc.ml: Alcotest Array Lazy List Proxim_gates Proxim_vtc
