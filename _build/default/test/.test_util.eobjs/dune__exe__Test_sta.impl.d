test/test_sta.ml: Alcotest Float Lazy List Proxim_gates Proxim_measure Proxim_sta Proxim_vtc String
