test/test_flat.ml: Alcotest Array Float List Printf Proxim_circuit Proxim_gates Proxim_measure Proxim_sta Proxim_vtc Proxim_waveform
