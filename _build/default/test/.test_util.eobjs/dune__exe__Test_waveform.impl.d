test/test_waveform.ml: Alcotest Float Int64 List Proxim_util Proxim_waveform QCheck QCheck_alcotest
