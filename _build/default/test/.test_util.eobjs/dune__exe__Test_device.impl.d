test/test_device.ml: Alcotest Array Float Int64 List Proxim_device Proxim_util QCheck QCheck_alcotest
