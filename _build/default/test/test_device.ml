(* Tests for the MOSFET compact models: regions, continuity, symmetry,
   passivity and derivative consistency. *)

module M = Proxim_device.Mosfet
module Prng = Proxim_util.Prng

let nmos ?(kind = M.Shichman_hodges) () =
  {
    M.polarity = M.Nmos;
    vt0 = 0.7;
    kp = 120e-6;
    lambda = 0.05;
    w = 4e-6;
    l = 0.8e-6;
    kind;
  }

let pmos ?(kind = M.Shichman_hodges) () =
  {
    M.polarity = M.Pmos;
    vt0 = -0.8;
    kp = 40e-6;
    lambda = 0.05;
    w = 8e-6;
    l = 0.8e-6;
    kind;
  }

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_strength () =
  let p = nmos () in
  check_float ~eps:1e-9 "beta" (120e-6 *. 5.) (M.beta p);
  check_float ~eps:1e-9 "K = beta/2" (0.5 *. M.beta p) (M.k_strength p)

let test_cutoff () =
  let e = M.eval (nmos ()) ~vg:0.5 ~vd:5. ~vs:0. in
  check_float "no current" 0. e.M.id;
  check_float "no gm" 0. e.M.did_dvg;
  Alcotest.(check string) "region" "cutoff"
    (M.region (nmos ()) ~vg:0.5 ~vd:5. ~vs:0.)

let test_regions () =
  let p = nmos () in
  Alcotest.(check string) "linear" "linear" (M.region p ~vg:5. ~vd:0.5 ~vs:0.);
  Alcotest.(check string) "saturation" "saturation"
    (M.region p ~vg:2. ~vd:5. ~vs:0.)

let test_saturation_value () =
  (* Id = K vov^2 (1 + lambda vds), K = 0.5*120u*5 = 300u *)
  let p = { (nmos ()) with M.lambda = 0. } in
  let e = M.eval p ~vg:1.7 ~vd:5. ~vs:0. in
  check_float ~eps:1e-12 "square law" (300e-6 *. 1.0) e.M.id

let test_triode_value () =
  let p = { (nmos ()) with M.lambda = 0. } in
  (* Id = beta (vov vds - vds^2/2) = 600u (4.3*0.1 - 0.005) *)
  let e = M.eval p ~vg:5.0 ~vd:0.1 ~vs:0. in
  check_float ~eps:1e-12 "triode" (600e-6 *. ((4.3 *. 0.1) -. 0.005)) e.M.id

let test_pmos_conducts_when_gate_low () =
  let e = M.eval (pmos ()) ~vg:0. ~vd:0. ~vs:5. in
  (* current flows source(5V) -> drain(0V): id into drain is negative *)
  Alcotest.(check bool) "negative drain current" true (e.M.id < -1e-5)

let test_pmos_off_when_gate_high () =
  let e = M.eval (pmos ()) ~vg:5. ~vd:0. ~vs:5. in
  check_float "off" 0. e.M.id

let test_source_drain_symmetry () =
  (* swapping the diffusion terminals negates the current *)
  let p = nmos () in
  let a = M.eval p ~vg:5. ~vd:2. ~vs:0. in
  let b = M.eval p ~vg:5. ~vd:0. ~vs:2. in
  check_float ~eps:1e-15 "antisymmetric" (-.a.M.id) b.M.id

let test_continuity_across_vds_zero () =
  let p = nmos () in
  let before = (M.eval p ~vg:5. ~vd:(-1e-7) ~vs:0.).M.id in
  let after = (M.eval p ~vg:5. ~vd:1e-7 ~vs:0.).M.id in
  Alcotest.(check bool) "continuous through 0" true
    (Float.abs (before -. after) < 1e-9)

let test_continuity_at_saturation_boundary () =
  let p = { (nmos ()) with M.lambda = 0. } in
  let vov = 4.3 in
  let below = (M.eval p ~vg:5. ~vd:(vov -. 1e-7) ~vs:0.).M.id in
  let above = (M.eval p ~vg:5. ~vd:(vov +. 1e-7) ~vs:0.).M.id in
  Alcotest.(check bool) "current continuous" true
    (Float.abs (below -. above) /. above < 1e-6)

let test_alpha_power_reduces_to_sh () =
  let sh = nmos () in
  let ap = nmos ~kind:(M.Alpha_power 2.) () in
  List.iter
    (fun (vg, vd) ->
      let a = (M.eval sh ~vg ~vd ~vs:0.).M.id in
      let b = (M.eval ap ~vg ~vd ~vs:0.).M.id in
      Alcotest.(check (float 1e-12)) "alpha=2 equals SH" a b)
    [ (5., 0.1); (5., 5.); (2., 1.); (1., 5.); (0.5, 3.) ]

let test_alpha_power_weaker_saturation_growth () =
  (* alpha < 2 compresses the overdrive dependence *)
  let ap = { (nmos ~kind:(M.Alpha_power 1.3) ()) with M.lambda = 0. } in
  let i1 = (M.eval ap ~vg:1.7 ~vd:5. ~vs:0.).M.id in
  let i2 = (M.eval ap ~vg:2.7 ~vd:5. ~vs:0.).M.id in
  let ratio = i2 /. i1 in
  Alcotest.(check bool) "sub-quadratic" true (ratio < 4. && ratio > 1.5)

(* derivative consistency: analytic vs central finite differences *)
let fd_check p ~vg ~vd ~vs =
  let h = 1e-6 in
  let id v = (M.eval p ~vg:v.(0) ~vd:v.(1) ~vs:v.(2)).M.id in
  let base = [| vg; vd; vs |] in
  let fd i =
    let up = Array.copy base and dn = Array.copy base in
    up.(i) <- up.(i) +. h;
    dn.(i) <- dn.(i) -. h;
    (id up -. id dn) /. (2. *. h)
  in
  let e = M.eval p ~vg ~vd ~vs in
  let ok d1 d2 = Float.abs (d1 -. d2) <= 1e-6 +. (1e-4 *. Float.abs d2) in
  ok e.M.did_dvg (fd 0) && ok e.M.did_dvd (fd 1) && ok e.M.did_dvs (fd 2)

let prop_derivatives kind name =
  QCheck.Test.make ~name ~count:300
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 11)) in
      let p = if Prng.bool rng then nmos ~kind () else pmos ~kind () in
      let v () = Prng.float rng ~lo:(-0.5) ~hi:5.5 in
      let vg = v () and vd = v () and vs = v () in
      (* avoid FD straddling the model's region kinks *)
      let p_ref = p in
      let r a b = M.region p_ref ~vg ~vd:a ~vs:b in
      QCheck.assume (r (vd +. 2e-6) vs = r (vd -. 2e-6) vs);
      QCheck.assume (r vd (vs +. 2e-6) = r vd (vs -. 2e-6));
      QCheck.assume
        (M.region p_ref ~vg:(vg +. 2e-6) ~vd ~vs
         = M.region p_ref ~vg:(vg -. 2e-6) ~vd ~vs);
      QCheck.assume (Float.abs (vd -. vs) > 1e-4);
      fd_check p ~vg ~vd ~vs)

let prop_passivity =
  (* with the gate fixed, the channel is dissipative: current flows from
     the higher diffusion terminal to the lower one *)
  QCheck.Test.make ~name:"channel current follows the voltage drop"
    ~count:300
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 23)) in
      let p = nmos () in
      let vg = Prng.float rng ~lo:1. ~hi:5. in
      let vd = Prng.float rng ~lo:0. ~hi:5. in
      let vs = Prng.float rng ~lo:0. ~hi:5. in
      let e = M.eval p ~vg ~vd ~vs in
      (* id into drain has the sign of (vd - vs) whenever nonzero *)
      e.M.id = 0. || e.M.id *. (vd -. vs) >= 0.)

let () =
  Alcotest.run "device"
    [
      ( "values",
        [
          Alcotest.test_case "strength" `Quick test_strength;
          Alcotest.test_case "cutoff" `Quick test_cutoff;
          Alcotest.test_case "regions" `Quick test_regions;
          Alcotest.test_case "saturation" `Quick test_saturation_value;
          Alcotest.test_case "triode" `Quick test_triode_value;
          Alcotest.test_case "pmos on" `Quick test_pmos_conducts_when_gate_low;
          Alcotest.test_case "pmos off" `Quick test_pmos_off_when_gate_high;
        ] );
      ( "structure",
        [
          Alcotest.test_case "S/D symmetry" `Quick test_source_drain_symmetry;
          Alcotest.test_case "continuity vds=0" `Quick
            test_continuity_across_vds_zero;
          Alcotest.test_case "continuity vdsat" `Quick
            test_continuity_at_saturation_boundary;
        ] );
      ( "alpha-power",
        [
          Alcotest.test_case "alpha=2 is SH" `Quick test_alpha_power_reduces_to_sh;
          Alcotest.test_case "sub-quadratic" `Quick
            test_alpha_power_weaker_saturation_growth;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (prop_derivatives M.Shichman_hodges "SH derivatives match FD");
          QCheck_alcotest.to_alcotest
            (prop_derivatives (M.Alpha_power 1.3) "AP derivatives match FD");
          QCheck_alcotest.to_alcotest prop_passivity;
        ] );
    ]
