(* Tests for gate construction: network duals, sensitization, structural
   properties of the generated netlists, and logic-level DC behaviour. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Netlist = Proxim_circuit.Netlist
module Pwl = Proxim_waveform.Pwl
module Dc = Proxim_spice.Dc
module Prng = Proxim_util.Prng

let tech = Tech.generic_5v

let test_dual_involution () =
  let nw =
    Gate.Parallel [ Gate.Series [ Gate.Pin 0; Gate.Pin 1 ]; Gate.Pin 2 ]
  in
  Alcotest.(check bool) "dual of dual" true (Gate.dual (Gate.dual nw) = nw)

let test_dual_swaps () =
  let nw = Gate.Series [ Gate.Pin 0; Gate.Pin 1 ] in
  Alcotest.(check bool) "series -> parallel" true
    (Gate.dual nw = Gate.Parallel [ Gate.Pin 0; Gate.Pin 1 ])

let test_network_pins () =
  let nw = Gate.Parallel [ Gate.Series [ Gate.Pin 2; Gate.Pin 0 ]; Gate.Pin 1 ] in
  Alcotest.(check (list int)) "sorted unique" [ 0; 1; 2 ] (Gate.network_pins nw)

let test_pin_names () =
  Alcotest.(check string) "a" "a" (Gate.pin_name 0);
  Alcotest.(check string) "c" "c" (Gate.pin_name 2);
  Alcotest.(check string) "z" "z" (Gate.pin_name 25);
  Alcotest.(check string) "p26" "p26" (Gate.pin_name 26)

let test_custom_rejects_gaps () =
  Alcotest.check_raises "pin gap"
    (Invalid_argument "Gate: pins must be numbered contiguously from 0")
    (fun () ->
      ignore
        (Gate.custom ~name:"bad" tech
           ~pulldown:(Gate.Series [ Gate.Pin 0; Gate.Pin 2 ])))

let test_nand_sensitization () =
  let g = Gate.nand tech ~fan_in:3 in
  Array.iter
    (fun pin ->
      let levels = Gate.noncontrolling_sensitization g ~pin in
      Array.iter (fun v -> Alcotest.(check (float 0.)) "all high" 5. v) levels)
    [| 0; 1; 2 |]

let test_nor_sensitization () =
  let g = Gate.nor tech ~fan_in:3 in
  let levels = Gate.noncontrolling_sensitization g ~pin:1 in
  Alcotest.(check (float 0.)) "other low" 0. levels.(0);
  Alcotest.(check (float 0.)) "other low" 0. levels.(2)

let test_aoi21_sensitization () =
  (* pull-down (a AND b) OR c; to sensitize a: b must conduct (high),
     c must not (low) *)
  let g = Gate.aoi21 tech in
  let levels = Gate.noncontrolling_sensitization g ~pin:0 in
  Alcotest.(check (float 0.)) "b high" 5. levels.(1);
  Alcotest.(check (float 0.)) "c low" 0. levels.(2)

let test_nand_structure () =
  let g = Gate.nand tech ~fan_in:3 in
  let high = Pwl.constant 5. in
  let inst = Gate.instantiate g ~inputs:[| high; high; high |] in
  let net = inst.Gate.net in
  let mosfets, caps, vsrcs =
    Array.fold_left
      (fun (m, c, v) d ->
        match d with
        | Netlist.Mosfet _ -> (m + 1, c, v)
        | Netlist.Capacitor _ -> (m, c + 1, v)
        | Netlist.Resistor _ -> (m, c, v)
        | Netlist.Vsource _ -> (m, c, v + 1))
      (0, 0, 0) net.Netlist.devices
  in
  Alcotest.(check int) "6 transistors" 6 mosfets;
  (* z + two internal stack nodes carry parasitics *)
  Alcotest.(check int) "3 capacitors" 3 caps;
  Alcotest.(check int) "vdd + 3 inputs" 4 vsrcs

let test_of_name () =
  let ok name expected_name expected_fanin =
    match Gate.of_name tech name with
    | Ok g ->
      Alcotest.(check string) name expected_name g.Gate.name;
      Alcotest.(check int) (name ^ " fan_in") expected_fanin g.Gate.fan_in
    | Error m -> Alcotest.fail m
  in
  ok "inv" "inv" 1;
  ok "NAND3" "nand3" 3;
  ok "nor2" "nor2" 2;
  ok "aoi21" "aoi21" 3;
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (match Gate.of_name tech bad with Error _ -> true | Ok _ -> false))
    [ "xor2"; "nand0"; "nand9"; "nandx"; "" ]

let test_output_parasitic () =
  (* NAND3: one NMOS drain + three PMOS drains touch the output *)
  let g = Gate.nand ~wn:4e-6 ~wp:8e-6 tech ~fan_in:3 in
  let expected = tech.Tech.cd_per_width *. ((1. *. 4e-6) +. (3. *. 8e-6)) in
  Alcotest.(check (float 1e-20)) "nand3" expected (Gate.output_parasitic g);
  (* NOR3 is the mirror: three NMOS + one PMOS *)
  let g = Gate.nor ~wn:4e-6 ~wp:8e-6 tech ~fan_in:3 in
  let expected = tech.Tech.cd_per_width *. ((3. *. 4e-6) +. (1. *. 8e-6)) in
  Alcotest.(check (float 1e-20)) "nor3" expected (Gate.output_parasitic g)

let test_switching_assist () =
  let nand3 = Gate.nand tech ~fan_in:3 in
  let nor3 = Gate.nor tech ~fan_in:3 in
  let aoi = Gate.aoi21 tech in
  (* NAND: falling inputs enable parallel PMOS -> assist; rising inputs
     enable the series NMOS stack -> gate *)
  Alcotest.(check bool) "nand fall assists" true
    (Gate.switching_assist nand3 ~pins:[ 0; 1 ] ~output_rising:true);
  Alcotest.(check bool) "nand rise gates" false
    (Gate.switching_assist nand3 ~pins:[ 0; 1 ] ~output_rising:false);
  (* NOR is the mirror *)
  Alcotest.(check bool) "nor rise assists" true
    (Gate.switching_assist nor3 ~pins:[ 0; 1 ] ~output_rising:false);
  Alcotest.(check bool) "nor fall gates" false
    (Gate.switching_assist nor3 ~pins:[ 0; 1 ] ~output_rising:true);
  (* AOI21 pull-down (a&b)|c: a,b are series (gate each other on rising);
     a,c are parallel (assist on rising) *)
  Alcotest.(check bool) "aoi a,b rise gates" false
    (Gate.switching_assist aoi ~pins:[ 0; 1 ] ~output_rising:false);
  Alcotest.(check bool) "aoi a,c rise assists" true
    (Gate.switching_assist aoi ~pins:[ 0; 2 ] ~output_rising:false)

let test_input_capacitance () =
  let g = Gate.nand ~wn:4e-6 ~wp:8e-6 tech ~fan_in:2 in
  Alcotest.(check (float 1e-20)) "cg*(wn+wp)"
    (tech.Tech.cg_per_width *. 12e-6)
    (Gate.input_capacitance g)

let test_instantiate_arity () =
  let g = Gate.nand tech ~fan_in:2 in
  Alcotest.check_raises "arity"
    (Invalid_argument "Gate.instantiate: arity mismatch") (fun () ->
      ignore (Gate.instantiate g ~inputs:[| Pwl.constant 0. |]))

(* exhaustive DC truth tables for small gates *)
let dc_logic gate inputs_bits =
  let inputs =
    Array.map (fun bit -> Pwl.constant (if bit then 5. else 0.)) inputs_bits
  in
  let inst = Gate.instantiate gate ~inputs in
  let sol = Dc.operating_point inst.Gate.net in
  let v = sol.Dc.voltages.(inst.Gate.out) in
  if v > 4.5 then true
  else if v < 0.5 then false
  else Alcotest.failf "ambiguous output %.3f V" v

let test_nand2_truth_table () =
  let g = Gate.nand tech ~fan_in:2 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "nand %b %b" a b)
        (not (a && b))
        (dc_logic g [| a; b |]))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_nor2_truth_table () =
  let g = Gate.nor tech ~fan_in:2 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "nor %b %b" a b)
        (not (a || b))
        (dc_logic g [| a; b |]))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_inverter_truth_table () =
  let g = Gate.inverter tech in
  Alcotest.(check bool) "inv 0" true (dc_logic g [| false |]);
  Alcotest.(check bool) "inv 1" false (dc_logic g [| true |])

let test_aoi21_truth_table () =
  let g = Gate.aoi21 tech in
  let cases = [ false; true ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.(check bool)
                (Printf.sprintf "aoi21 %b %b %b" a b c)
                (not ((a && b) || c))
                (dc_logic g [| a; b; c |]))
            cases)
        cases)
    cases

let test_oai21_truth_table () =
  let g = Gate.oai21 tech in
  let cases = [ false; true ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.(check bool)
                (Printf.sprintf "oai21 %b %b %b" a b c)
                (not ((a || b) && c))
                (dc_logic g [| a; b; c |]))
            cases)
        cases)
    cases

let prop_nand_truth_random_fanin =
  QCheck.Test.make ~name:"n-input NAND truth table" ~count:12
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 3)) in
      let fan_in = Prng.int rng ~lo:1 ~hi:4 in
      let g = Gate.nand tech ~fan_in in
      let bits = Array.init fan_in (fun _ -> Prng.bool rng) in
      dc_logic g bits = not (Array.for_all Fun.id bits))

let () =
  Alcotest.run "gates"
    [
      ( "networks",
        [
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "dual swaps" `Quick test_dual_swaps;
          Alcotest.test_case "network pins" `Quick test_network_pins;
          Alcotest.test_case "pin names" `Quick test_pin_names;
          Alcotest.test_case "contiguous pins" `Quick test_custom_rejects_gaps;
        ] );
      ( "sensitization",
        [
          Alcotest.test_case "nand" `Quick test_nand_sensitization;
          Alcotest.test_case "nor" `Quick test_nor_sensitization;
          Alcotest.test_case "aoi21" `Quick test_aoi21_sensitization;
        ] );
      ( "structure",
        [
          Alcotest.test_case "nand3 netlist" `Quick test_nand_structure;
          Alcotest.test_case "of_name" `Quick test_of_name;
          Alcotest.test_case "switching assist" `Quick test_switching_assist;
          Alcotest.test_case "output parasitic" `Quick test_output_parasitic;
          Alcotest.test_case "input capacitance" `Quick test_input_capacitance;
          Alcotest.test_case "arity check" `Quick test_instantiate_arity;
        ] );
      ( "logic",
        [
          Alcotest.test_case "nand2" `Quick test_nand2_truth_table;
          Alcotest.test_case "nor2" `Quick test_nor2_truth_table;
          Alcotest.test_case "inverter" `Quick test_inverter_truth_table;
          Alcotest.test_case "aoi21" `Quick test_aoi21_truth_table;
          Alcotest.test_case "oai21" `Quick test_oai21_truth_table;
          QCheck_alcotest.to_alcotest prop_nand_truth_random_fanin;
        ] );
    ]
