(* Tests for piecewise-linear waveforms. *)

module Pwl = Proxim_waveform.Pwl
module Prng = Proxim_util.Prng

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_opt_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (option (float eps))) msg expected actual

let test_construction_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Pwl.of_points: empty") (fun () ->
      ignore (Pwl.of_points []));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Pwl.of_points: times must be strictly increasing")
    (fun () -> ignore (Pwl.of_points [ (0., 1.); (0., 2.) ]))

let test_value_interpolation () =
  let w = Pwl.of_points [ (0., 0.); (1., 10.) ] in
  check_float "before" 0. (Pwl.value w (-5.));
  check_float "at start" 0. (Pwl.value w 0.);
  check_float "mid" 5. (Pwl.value w 0.5);
  check_float "at end" 10. (Pwl.value w 1.);
  check_float "after" 10. (Pwl.value w 99.)

let test_constant () =
  let w = Pwl.constant 3.3 in
  check_float "anywhere" 3.3 (Pwl.value w 123.);
  check_float "negative time" 3.3 (Pwl.value w (-1.))

let test_ramp () =
  let w = Pwl.ramp ~t0:1. ~width:2. ~v_from:0. ~v_to:4. in
  check_float "before ramp" 0. (Pwl.value w 0.5);
  check_float "mid ramp" 2. (Pwl.value w 2.);
  check_float "after ramp" 4. (Pwl.value w 10.)

let test_step_ramp_degenerate () =
  let w = Pwl.ramp ~t0:1. ~width:0. ~v_from:0. ~v_to:5. in
  check_float "just before" 0. (Pwl.value w (1. -. 1e-12));
  check_float "just after" 5. (Pwl.value w (1. +. 1e-12))

let test_shift () =
  let w = Pwl.shift (Pwl.ramp ~t0:0. ~width:1. ~v_from:0. ~v_to:1.) 2. in
  check_float "shifted midpoint" 0.5 (Pwl.value w 2.5)

let test_crossings_rising () =
  let w = Pwl.ramp ~t0:0. ~width:2. ~v_from:0. ~v_to:4. in
  check_opt_float "first rising" (Some 1.)
    (Pwl.first_crossing ~direction:Pwl.Rising w 2.);
  check_opt_float "no falling" None
    (Pwl.first_crossing ~direction:Pwl.Falling w 2.)

let test_crossings_multiple () =
  (* triangle wave crossing 0.5 four times *)
  let w = Pwl.of_points [ (0., 0.); (1., 1.); (2., 0.); (3., 1.); (4., 0.) ] in
  let all = Pwl.crossings w 0.5 in
  Alcotest.(check int) "four crossings" 4 (List.length all);
  let rising = Pwl.crossings ~direction:Pwl.Rising w 0.5 in
  Alcotest.(check int) "two rising" 2 (List.length rising);
  check_opt_float "last crossing" (Some 3.5) (Pwl.last_crossing w 0.5)

let test_crossing_touch_is_not_crossing () =
  (* dips to exactly the level and returns: no crossing *)
  let w = Pwl.of_points [ (0., 1.); (1., 0.5); (2., 1.) ] in
  Alcotest.(check int) "touch ignored" 0 (List.length (Pwl.crossings w 0.5))

let test_crossing_plateau () =
  (* sits exactly on the level then continues down: one falling crossing at
     the plateau start *)
  let w = Pwl.of_points [ (0., 1.); (1., 0.5); (2., 0.5); (3., 0.) ] in
  let falls = Pwl.crossings ~direction:Pwl.Falling w 0.5 in
  Alcotest.(check (list (float 1e-12))) "plateau start" [ 1. ] falls

let test_after_filter () =
  let w = Pwl.of_points [ (0., 0.); (1., 1.); (2., 0.); (3., 1.) ] in
  check_opt_float "after 1.5" (Some 2.5)
    (Pwl.first_crossing ~direction:Pwl.Rising ~after:1.5 w 0.5)

let test_transition_time_rising () =
  let w = Pwl.ramp ~t0:0. ~width:1. ~v_from:0. ~v_to:1. in
  check_opt_float "20-80 equivalent" (Some 0.5)
    (Pwl.transition_time w ~v_start:0.25 ~v_end:0.75)

let test_transition_time_falling () =
  let w = Pwl.ramp ~t0:0. ~width:2. ~v_from:4. ~v_to:0. in
  check_opt_float "falling transition" (Some 1.)
    (Pwl.transition_time w ~v_start:3. ~v_end:1.)

let test_transition_time_incomplete () =
  let w = Pwl.ramp ~t0:0. ~width:1. ~v_from:0. ~v_to:0.5 in
  check_opt_float "never reaches" None
    (Pwl.transition_time w ~v_start:0.25 ~v_end:0.75)

let test_transition_uses_last_start_crossing () =
  (* wiggles around v_start before committing: measure from the last
     crossing before v_end is reached *)
  let w =
    Pwl.of_points
      [ (0., 0.); (1., 0.3); (2., 0.1); (3., 0.3); (4., 0.1); (5., 1.) ]
  in
  (* rising through 0.25 happens at t=0.833, 2.75, 4.167; v_end=0.75 is
     crossed at ~4.72; the last start before that is 4.167, so the
     transition time is ~0.56 -- not the ~3.9 a first-crossing rule gives *)
  match Pwl.transition_time w ~v_start:0.25 ~v_end:0.75 with
  | None -> Alcotest.fail "expected transition"
  | Some tt -> Alcotest.(check (float 1e-3)) "uses last start" 0.5556 tt

let test_extremum_and_maximum () =
  let w = Pwl.of_points [ (0., 1.); (1., -2.); (2., 3.); (3., 0.) ] in
  let t_min, v_min = Pwl.extremum w ~lo:0. ~hi:3. in
  check_float "min value" (-2.) v_min;
  check_float "min time" 1. t_min;
  let t_max, v_max = Pwl.maximum w ~lo:0. ~hi:3. in
  check_float "max value" 3. v_max;
  check_float "max time" 2. t_max;
  (* window that excludes the extremes *)
  let _, v = Pwl.extremum w ~lo:1.5 ~hi:1.75 in
  Alcotest.(check bool) "windowed min" true (v > -2. && v < 3.)

let test_map_values_and_sample () =
  let w = Pwl.ramp ~t0:0. ~width:1. ~v_from:0. ~v_to:2. in
  let w2 = Pwl.map_values (fun v -> v *. 10.) w in
  check_float "mapped" 10. (Pwl.value w2 0.5);
  let s = Pwl.sample w ~times:[| 0.; 0.5; 1. |] in
  Alcotest.(check (array (float 1e-12))) "samples" [| 0.; 1.; 2. |] s

let prop_value_within_envelope =
  QCheck.Test.make ~name:"value stays within breakpoint envelope" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let n = 2 + Prng.int rng ~lo:0 ~hi:8 in
      let pts =
        List.init n (fun i ->
          (float_of_int i +. Prng.float rng ~lo:0. ~hi:0.5,
           Prng.float rng ~lo:(-5.) ~hi:5.))
      in
      let w = Pwl.of_points pts in
      let vmin = List.fold_left (fun a (_, v) -> Float.min a v) infinity pts in
      let vmax =
        List.fold_left (fun a (_, v) -> Float.max a v) neg_infinity pts
      in
      let ok = ref true in
      for k = 0 to 50 do
        let t = -1. +. (float_of_int k *. (float_of_int n +. 2.) /. 50.) in
        let v = Pwl.value w t in
        if v < vmin -. 1e-9 || v > vmax +. 1e-9 then ok := false
      done;
      !ok)

let prop_crossings_sorted_and_consistent =
  QCheck.Test.make ~name:"crossings are sorted; first/last agree" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 77)) in
      let n = 3 + Prng.int rng ~lo:0 ~hi:10 in
      let pts =
        List.init n (fun i ->
          (float_of_int i, Prng.float rng ~lo:(-1.) ~hi:1.))
      in
      let w = Pwl.of_points pts in
      let level = Prng.float rng ~lo:(-0.8) ~hi:0.8 in
      let cs = Pwl.crossings w level in
      let sorted = List.sort compare cs in
      sorted = cs
      && (match (cs, Pwl.first_crossing w level) with
          | [], None -> true
          | c :: _, Some f -> Float.abs (c -. f) < 1e-12
          | [], Some _ | _ :: _, None -> false)
      &&
      match (List.rev cs, Pwl.last_crossing w level) with
      | [], None -> true
      | c :: _, Some l -> Float.abs (c -. l) < 1e-12
      | [], Some _ | _ :: _, None -> false)

let prop_shift_invariance =
  QCheck.Test.make ~name:"shift moves crossings rigidly" ~count:100
    QCheck.(pair (float_range (-3.) 3.) small_int)
    (fun (dt, seed) ->
      let rng = Prng.create (Int64.of_int (seed + 5)) in
      let pts =
        List.init 6 (fun i -> (float_of_int i, Prng.float rng ~lo:(-1.) ~hi:1.))
      in
      let w = Pwl.of_points pts in
      let level = 0.1 in
      let base = Pwl.crossings w level in
      let shifted = Pwl.crossings (Pwl.shift w dt) level in
      List.length base = List.length shifted
      && List.for_all2 (fun a b -> Float.abs (a +. dt -. b) < 1e-9) base shifted)

let () =
  Alcotest.run "waveform"
    [
      ( "construction",
        [
          Alcotest.test_case "rejects bad input" `Quick
            test_construction_rejects_bad_input;
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "ramp" `Quick test_ramp;
          Alcotest.test_case "step ramp" `Quick test_step_ramp_degenerate;
          Alcotest.test_case "shift" `Quick test_shift;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "interpolation" `Quick test_value_interpolation;
          Alcotest.test_case "map/sample" `Quick test_map_values_and_sample;
          QCheck_alcotest.to_alcotest prop_value_within_envelope;
        ] );
      ( "crossings",
        [
          Alcotest.test_case "rising ramp" `Quick test_crossings_rising;
          Alcotest.test_case "triangle wave" `Quick test_crossings_multiple;
          Alcotest.test_case "touch" `Quick test_crossing_touch_is_not_crossing;
          Alcotest.test_case "plateau" `Quick test_crossing_plateau;
          Alcotest.test_case "after filter" `Quick test_after_filter;
          QCheck_alcotest.to_alcotest prop_crossings_sorted_and_consistent;
          QCheck_alcotest.to_alcotest prop_shift_invariance;
        ] );
      ( "transition time",
        [
          Alcotest.test_case "rising" `Quick test_transition_time_rising;
          Alcotest.test_case "falling" `Quick test_transition_time_falling;
          Alcotest.test_case "incomplete" `Quick test_transition_time_incomplete;
          Alcotest.test_case "last start crossing" `Quick
            test_transition_uses_last_start_crossing;
        ] );
      ( "extrema",
        [ Alcotest.test_case "min/max" `Quick test_extremum_and_maximum ] );
    ]
