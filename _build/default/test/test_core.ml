(* Tests for the ProximityDelay algorithm, the correction term, the
   inertial-delay model and the storage accounting. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity
module Inertial = Proxim_core.Inertial
module Storage = Proxim_core.Storage
module Prng = Proxim_util.Prng

let tech = Tech.generic_5v
let nand3 = Gate.nand tech ~fan_in:3
let th = lazy (Vtc.thresholds ~points:201 nand3)
let models = lazy (Models.of_oracle nand3 (Lazy.force th))

let ev pin tau cross =
  { Proximity.pin; edge = Measure.Fall; tau; cross_time = cross }

(* ------------------------------------------------------------------ *)
(* Dominance ordering                                                  *)

let test_dominance_simple () =
  let m = Lazy.force models in
  (* same tau: the input whose crossing is earlier responds earlier *)
  let a = ev 0 300e-12 1e-9 and b = ev 1 300e-12 2e-9 in
  match Proximity.dominance_order m [ b; a ] with
  | [ first; second ] ->
    Alcotest.(check int) "earlier input dominates" 0 first.Proximity.pin;
    Alcotest.(check int) "later second" 1 second.Proximity.pin
  | _ -> Alcotest.fail "wrong length"

let test_dominance_fast_late_input_wins () =
  let m = Lazy.force models in
  (* paper Fig 3-2: a slow early input loses to a fast slightly-later one
     when t_b + Delta_b < t_a + Delta_a *)
  let slow_early = ev 0 2000e-12 1.0e-9 in
  let fast_late = ev 1 80e-12 1.05e-9 in
  match Proximity.dominance_order m [ slow_early; fast_late ] with
  | first :: _ ->
    Alcotest.(check int) "fast late input dominates" 1 first.Proximity.pin
  | [] -> Alcotest.fail "empty"

let test_dominance_crossover_threshold () =
  let m = Lazy.force models in
  (* the crossover happens at s = Delta_a^(1) - Delta_b^(1) *)
  let tau_a = 2000e-12 and tau_b = 80e-12 in
  let da = m.Models.delay1 ~pin:0 ~edge:Measure.Fall ~tau:tau_a in
  let db = m.Models.delay1 ~pin:1 ~edge:Measure.Fall ~tau:tau_b in
  let crossover = da -. db in
  let base = 2e-9 in
  let order s =
    match
      Proximity.dominance_order m
        [ ev 0 tau_a base; ev 1 tau_b (base +. s) ]
    with
    | first :: _ -> first.Proximity.pin
    | [] -> assert false
  in
  Alcotest.(check int) "before crossover b dominates" 1
    (order (crossover -. 20e-12));
  Alcotest.(check int) "after crossover a dominates" 0
    (order (crossover +. 20e-12))

let test_dominance_validation () =
  let m = Lazy.force models in
  Alcotest.check_raises "empty" (Invalid_argument "Proximity: no input events")
    (fun () -> ignore (Proximity.dominance_order m []));
  Alcotest.check_raises "mixed edges"
    (Invalid_argument "Proximity: mixed edge directions") (fun () ->
      ignore
        (Proximity.dominance_order m
           [
             ev 0 1e-10 1e-9;
             { Proximity.pin = 1; edge = Measure.Rise; tau = 1e-10; cross_time = 1e-9 };
           ]))

(* ------------------------------------------------------------------ *)
(* The algorithm                                                       *)

let golden_of_events events ~ref_pin =
  let th = Lazy.force th in
  let stimuli =
    List.map
      (fun (e : Proximity.event) ->
        ( e.Proximity.pin,
          { Measure.edge = e.Proximity.edge; tau = e.Proximity.tau;
            cross_time = e.Proximity.cross_time } ))
      events
  in
  Measure.multi_input nand3 th ~stimuli ~ref_pin

let test_single_event_equals_single_model () =
  let m = Lazy.force models in
  let e = ev 0 400e-12 1e-9 in
  let r = Proximity.evaluate m [ e ] in
  let d1 = m.Models.delay1 ~pin:0 ~edge:Measure.Fall ~tau:400e-12 in
  Alcotest.(check (float 1e-15)) "single event" d1 r.Proximity.delay;
  Alcotest.(check int) "one input used" 1 r.Proximity.used_inputs

let test_two_events_match_golden () =
  let m = Lazy.force models in
  let events = [ ev 0 500e-12 2e-9; ev 1 200e-12 2.05e-9 ] in
  let r = Proximity.evaluate m events in
  let golden = golden_of_events events ~ref_pin:r.Proximity.ref_pin in
  (* for two inputs the algorithm IS the dual-input model: near-exact *)
  Alcotest.(check bool) "delay within 2%" true
    (Float.abs (r.Proximity.delay -. golden.Measure.delay)
     < 0.02 *. golden.Measure.delay)

let test_far_input_ignored () =
  let m = Lazy.force models in
  let near = ev 0 400e-12 2e-9 in
  let far = ev 1 400e-12 5e-9 in
  let r_single = Proximity.evaluate m [ near ] in
  let r_both = Proximity.evaluate m [ near; far ] in
  Alcotest.(check int) "only one used" 1 r_both.Proximity.used_inputs;
  Alcotest.(check (float 1e-15)) "same delay" r_single.Proximity.delay
    r_both.Proximity.delay

let test_three_events_accuracy_band () =
  (* the paper's Table 5-1 headline: delay within ~ +-8.5%, transition
     within ~ +-13% of circuit simulation *)
  let m = Lazy.force models in
  let rng = Prng.create 2024L in
  for _ = 1 to 8 do
    let tau () = Prng.float rng ~lo:50e-12 ~hi:2000e-12 in
    let base = 2.5e-9 in
    let events =
      [
        ev 0 (tau ()) base;
        ev 1 (tau ()) (base +. Prng.float rng ~lo:(-500e-12) ~hi:500e-12);
        ev 2 (tau ()) (base +. Prng.float rng ~lo:(-500e-12) ~hi:500e-12);
      ]
    in
    let r = Proximity.evaluate m events in
    let golden = golden_of_events events ~ref_pin:r.Proximity.ref_pin in
    let derr =
      Float.abs (r.Proximity.delay -. golden.Measure.delay)
      /. golden.Measure.delay
    in
    let terr =
      Float.abs (r.Proximity.out_transition -. golden.Measure.out_transition)
      /. golden.Measure.out_transition
    in
    Alcotest.(check bool)
      (Printf.sprintf "delay err %.1f%% < 10%%" (derr *. 100.))
      true (derr < 0.10);
    Alcotest.(check bool)
      (Printf.sprintf "transition err %.1f%% < 20%%" (terr *. 100.))
      true (terr < 0.20)
  done

let test_rate_vs_additive_composition () =
  let m = Lazy.force models in
  let base = 2e-9 in
  let events = [ ev 0 300e-12 base; ev 1 300e-12 base; ev 2 300e-12 base ] in
  let r_rate =
    Proximity.evaluate ~trans_composition:Proximity.Rate_additive m events
  in
  let r_add =
    Proximity.evaluate ~trans_composition:Proximity.Additive m events
  in
  let golden = golden_of_events events ~ref_pin:r_rate.Proximity.ref_pin in
  let err r =
    Float.abs (r -. golden.Measure.out_transition)
    /. golden.Measure.out_transition
  in
  (* delay identical; transition differs, rate-additive at least as good
     on the simultaneous three-input case *)
  Alcotest.(check (float 1e-15)) "same delay" r_add.Proximity.delay
    r_rate.Proximity.delay;
  Alcotest.(check bool) "rate-additive no worse" true
    (err r_rate.Proximity.out_transition
     <= err r_add.Proximity.out_transition +. 1e-9)

let test_correction_weight_vanishes_at_window_edge () =
  let m = Lazy.force models in
  let corr = { Proximity.delay_err = 100e-12; trans_err = 0. } in
  let near = ev 0 300e-12 2e-9 in
  let d1 = m.Models.delay1 ~pin:0 ~edge:Measure.Fall ~tau:300e-12 in
  (* the second input sits just inside the window: weight ~ 0 *)
  let almost_out = ev 1 300e-12 (2e-9 +. (0.98 *. d1)) in
  let r_with = Proximity.evaluate ~correction:corr m [ near; almost_out ] in
  let r_without = Proximity.evaluate m [ near; almost_out ] in
  Alcotest.(check bool) "tiny correction near edge" true
    (Float.abs (r_with.Proximity.delay -. r_without.Proximity.delay) < 5e-12)

let test_correction_full_weight_when_simultaneous () =
  let m = Lazy.force models in
  let corr = { Proximity.delay_err = 100e-12; trans_err = 50e-12 } in
  let events = [ ev 0 300e-12 2e-9; ev 1 300e-12 2e-9 ] in
  let r_with = Proximity.evaluate ~correction:corr m events in
  let r_without = Proximity.evaluate m events in
  Alcotest.(check (float 1e-15)) "full delay correction"
    (r_without.Proximity.delay +. 100e-12)
    r_with.Proximity.delay;
  Alcotest.(check (float 1e-15)) "full transition correction"
    (r_without.Proximity.out_transition +. 50e-12)
    r_with.Proximity.out_transition

let test_calibrate_correction_improves_step_case () =
  let th = Lazy.force th in
  let m = Lazy.force models in
  let corr =
    Proximity.calibrate_correction nand3 th m ~edge:Measure.Fall
  in
  (* by construction the corrected algorithm is exact on the calibration
     stimulus *)
  let tau = 20e-12 in
  let cross = tau +. 0.3e-9 in
  let events = [ ev 0 tau cross; ev 1 tau cross; ev 2 tau cross ] in
  let r = Proximity.evaluate ~correction:corr m events in
  let golden = golden_of_events events ~ref_pin:r.Proximity.ref_pin in
  Alcotest.(check bool) "calibration point exact" true
    (Float.abs (r.Proximity.delay -. golden.Measure.delay) < 1e-13)

let test_nor_gate_accuracy () =
  (* regression for the topology-aware dominance: NOR gates invert the
     series/parallel structure, and a NAND-keyed rule mispredicts them by
     tens of percent *)
  let nor3 = Gate.nor tech ~fan_in:3 in
  let th = Vtc.thresholds ~points:201 nor3 in
  let m = Models.of_oracle nor3 th in
  List.iter
    (fun edge ->
      let base = 2.5e-9 in
      let events =
        [
          { Proximity.pin = 0; edge; tau = 400e-12; cross_time = base };
          { Proximity.pin = 1; edge; tau = 150e-12; cross_time = base +. 120e-12 };
          { Proximity.pin = 2; edge; tau = 900e-12; cross_time = base -. 200e-12 };
        ]
      in
      let r = Proximity.evaluate m events in
      let stimuli =
        List.map
          (fun (e : Proximity.event) ->
            ( e.Proximity.pin,
              { Measure.edge; tau = e.Proximity.tau;
                cross_time = e.Proximity.cross_time } ))
          events
      in
      let g = Measure.multi_input nor3 th ~stimuli ~ref_pin:r.Proximity.ref_pin in
      let err =
        Float.abs (r.Proximity.delay -. g.Measure.delay) /. g.Measure.delay
      in
      Alcotest.(check bool)
        (Printf.sprintf "nor3 %s err %.1f%% < 10%%"
           (match edge with Measure.Rise -> "rise" | Measure.Fall -> "fall")
           (err *. 100.))
        true (err < 0.10))
    [ Measure.Rise; Measure.Fall ]

(* ------------------------------------------------------------------ *)
(* Inertial / glitch (§6)                                              *)

let test_glitch_blocked_when_close () =
  let th = Lazy.force th in
  (* fall on a and rise on b at the same moment: the falling input blocks
     the pull-down before the output can discharge *)
  let g =
    Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
      ~tau_rise:100e-12 ~sep:0.
  in
  Alcotest.(check bool) "no full swing" false g.Inertial.full_swing;
  Alcotest.(check bool) "output dips" true (g.Inertial.v_extreme < 5.)

let test_glitch_completes_when_rise_early () =
  let th = Lazy.force th in
  let g =
    Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
      ~tau_rise:100e-12 ~sep:(-2.5e-9)
  in
  Alcotest.(check bool) "full swing" true g.Inertial.full_swing;
  Alcotest.(check bool) "reaches low rail" true (g.Inertial.v_extreme < 0.5)

let test_glitch_monotone_in_separation () =
  let th = Lazy.force th in
  let v sep =
    (Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
       ~tau_rise:100e-12 ~sep)
      .Inertial.v_extreme
  in
  let vs = List.map v [ -2e-9; -1e-9; -0.5e-9; 0. ] in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "deeper when earlier" true (a <= b +. 1e-3);
      check rest
    | [ _ ] | [] -> ()
  in
  check vs

let test_minimum_valid_separation () =
  let th = Lazy.force th in
  let s_min =
    Inertial.minimum_valid_separation nand3 th ~fall_pin:0 ~rise_pin:1
      ~tau_fall:500e-12 ~tau_rise:100e-12
  in
  (* the inertial delay of this gate is sub-ns and negative separation *)
  Alcotest.(check bool) "in sane range" true (s_min > -3e-9 && s_min < 0.5e-9);
  (* just inside: blocked; just outside: completes *)
  let inside =
    Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
      ~tau_rise:100e-12 ~sep:(s_min +. 100e-12)
  in
  let outside =
    Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
      ~tau_rise:100e-12 ~sep:(s_min -. 100e-12)
  in
  Alcotest.(check bool) "inside blocked" false inside.Inertial.full_swing;
  Alcotest.(check bool) "outside completes" true outside.Inertial.full_swing

(* ------------------------------------------------------------------ *)
(* Storage accounting (Fig 4-2)                                        *)

let test_storage_counts () =
  Alcotest.(check int) "full: n models" 3
    (Storage.model_count Storage.Full ~fan_in:3);
  Alcotest.(check int) "matrix: n^2 models" 9
    (Storage.model_count Storage.Pair_matrix ~fan_in:3);
  Alcotest.(check int) "compositional: 2n" 6
    (Storage.model_count Storage.Compositional ~fan_in:3);
  Alcotest.(check int) "full arity 2n-1" 5
    (Storage.max_arguments Storage.Full ~fan_in:3);
  Alcotest.(check int) "dual arity 3" 3
    (Storage.max_arguments Storage.Compositional ~fan_in:3)

let test_storage_cells () =
  let p = 10 in
  Alcotest.(check (float 1.)) "full 3-in" (3. *. 1e5)
    (Storage.table_cells Storage.Full ~fan_in:3 ~points_per_axis:p);
  Alcotest.(check (float 1.)) "compositional 3-in"
    ((3. *. 10.) +. (3. *. 1000.))
    (Storage.table_cells Storage.Compositional ~fan_in:3 ~points_per_axis:p);
  Alcotest.(check (float 1.)) "doubled" 2.
    (Storage.with_transition 1.)

let test_storage_compositional_wins_at_scale () =
  List.iter
    (fun n ->
      let full = Storage.table_cells Storage.Full ~fan_in:n ~points_per_axis:8 in
      let comp =
        Storage.table_cells Storage.Compositional ~fan_in:n ~points_per_axis:8
      in
      Alcotest.(check bool)
        (Printf.sprintf "fan-in %d" n)
        true (comp < full))
    [ 3; 4; 6; 8 ]

let () =
  Alcotest.run "core"
    [
      ( "dominance",
        [
          Alcotest.test_case "simple order" `Quick test_dominance_simple;
          Alcotest.test_case "fast late wins" `Quick
            test_dominance_fast_late_input_wins;
          Alcotest.test_case "crossover threshold" `Quick
            test_dominance_crossover_threshold;
          Alcotest.test_case "validation" `Quick test_dominance_validation;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "single event" `Quick
            test_single_event_equals_single_model;
          Alcotest.test_case "two events golden" `Quick
            test_two_events_match_golden;
          Alcotest.test_case "far input ignored" `Quick test_far_input_ignored;
          Alcotest.test_case "accuracy band" `Slow
            test_three_events_accuracy_band;
          Alcotest.test_case "compositions" `Quick
            test_rate_vs_additive_composition;
          Alcotest.test_case "nor topology" `Slow test_nor_gate_accuracy;
        ] );
      ( "correction",
        [
          Alcotest.test_case "weight at window edge" `Quick
            test_correction_weight_vanishes_at_window_edge;
          Alcotest.test_case "full weight simultaneous" `Quick
            test_correction_full_weight_when_simultaneous;
          Alcotest.test_case "calibration exact" `Quick
            test_calibrate_correction_improves_step_case;
        ] );
      ( "inertial",
        [
          Alcotest.test_case "blocked glitch" `Quick test_glitch_blocked_when_close;
          Alcotest.test_case "completed transition" `Quick
            test_glitch_completes_when_rise_early;
          Alcotest.test_case "monotone" `Quick test_glitch_monotone_in_separation;
          Alcotest.test_case "minimum separation" `Slow
            test_minimum_valid_separation;
        ] );
      ( "storage",
        [
          Alcotest.test_case "counts" `Quick test_storage_counts;
          Alcotest.test_case "cells" `Quick test_storage_cells;
          Alcotest.test_case "scaling" `Quick
            test_storage_compositional_wins_at_scale;
        ] );
    ]
