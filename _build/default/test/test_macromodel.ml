(* Tests for the single- and dual-input macromodels. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Models = Proxim_macromodel.Models
module Floatx = Proxim_util.Floatx

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let th = lazy (Vtc.thresholds ~points:201 nand2)

(* built once; a coarse tau grid keeps the suite fast *)
let single_fall =
  lazy
    (Single.build
       ~taus:(Floatx.logspace 30e-12 3e-9 8)
       nand2 (Lazy.force th) ~pin:0 ~edge:Measure.Fall)

let test_single_matches_simulation_at_knots () =
  let th = Lazy.force th in
  let s = Lazy.force single_fall in
  List.iter
    (fun tau ->
      let golden = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
      let pred = Single.delay s ~tau in
      Alcotest.(check bool)
        (Printf.sprintf "delay within 1%% at tau=%.0fps" (tau *. 1e12))
        true
        (Float.abs (pred -. golden.Measure.delay) < 0.01 *. golden.Measure.delay))
    [ 30e-12; 3e-9 ]

let test_single_interpolates_between_knots () =
  let th = Lazy.force th in
  let s = Lazy.force single_fall in
  let tau = 333e-12 in
  let golden = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
  let pred = Single.delay s ~tau in
  Alcotest.(check bool) "delay within 3% between knots" true
    (Float.abs (pred -. golden.Measure.delay) < 0.03 *. golden.Measure.delay);
  let predt = Single.out_transition s ~tau in
  Alcotest.(check bool) "transition within 5%" true
    (Float.abs (predt -. golden.Measure.out_transition)
     < 0.05 *. golden.Measure.out_transition)

let test_single_monotone_in_tau () =
  let s = Lazy.force single_fall in
  let prev = ref 0. in
  List.iter
    (fun tau ->
      let d = Single.delay s ~tau in
      Alcotest.(check bool) "monotone" true (d >= !prev);
      prev := d)
    [ 50e-12; 100e-12; 300e-12; 900e-12; 2700e-12 ]

let test_single_load_scaling () =
  (* dimensional analysis: the same table must answer other loads; a
     heavier load can only slow the gate *)
  let s = Lazy.force single_fall in
  let tau = 300e-12 in
  let light = Single.delay ~c_load:50e-15 s ~tau in
  let heavy = Single.delay ~c_load:300e-15 s ~tau in
  Alcotest.(check bool) "heavier load slower" true (heavy > light)

let test_single_metadata () =
  let s = Lazy.force single_fall in
  Alcotest.(check int) "pin" 0 (Single.pin s);
  Alcotest.(check bool) "edge" true (Single.edge s = Measure.Fall);
  Alcotest.(check bool) "argument positive" true
    (Single.argument s ~tau:1e-10 > 0.)

let test_tau_of_delay_inverse () =
  let s = Lazy.force single_fall in
  let tau = 500e-12 in
  let d = Single.delay s ~tau in
  let tau' = Single.tau_of_delay s ~delay:d in
  Alcotest.(check bool) "inverse roundtrip" true
    (Float.abs (tau' -. tau) < 0.02 *. tau)

let test_oracle_dual_reduces_to_single_outside_window () =
  let th = Lazy.force th in
  let tau = 200e-12 in
  let single = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
  let far =
    Dual.oracle nand2 th ~dom:0 ~other:1 ~edge:Measure.Fall ~tau_dom:tau
      ~tau_other:tau ~sep:3e-9
  in
  Alcotest.(check bool) "delay equals single" true
    (Float.abs (far.Measure.delay -. single.Measure.delay)
     < 0.02 *. single.Measure.delay)

let test_oracle_dual_proximity_helps_falling () =
  let th = Lazy.force th in
  let tau = 200e-12 in
  let single = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
  let close =
    Dual.oracle nand2 th ~dom:0 ~other:1 ~edge:Measure.Fall ~tau_dom:tau
      ~tau_other:tau ~sep:0.
  in
  Alcotest.(check bool) "simultaneous pair faster" true
    (close.Measure.delay < single.Measure.delay)

let test_oracle_dual_negative_separation () =
  let th = Lazy.force th in
  (* the other input long before the dominant one: its PMOS is already
     fully conducting; delay must be below the single-input value *)
  let tau = 200e-12 in
  let single = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
  let early =
    Dual.oracle nand2 th ~dom:0 ~other:1 ~edge:Measure.Fall ~tau_dom:tau
      ~tau_other:tau ~sep:(-1e-9)
  in
  Alcotest.(check bool) "pre-conducting help" true
    (early.Measure.delay < single.Measure.delay)

(* a small dual table; coarse axes keep this under a few seconds *)
let single_other_fall =
  lazy
    (Single.build
       ~taus:(Floatx.logspace 30e-12 3e-9 8)
       nand2 (Lazy.force th) ~pin:1 ~edge:Measure.Fall)

let dual_table =
  lazy
    (Dual.build
       ~x_tau:(Floatx.logspace 0.5 4. 4)
       ~x_sep:(Floatx.linspace (-2.) 1.2 6)
       nand2 (Lazy.force th)
       ~single_dom:(Lazy.force single_fall)
       ~single_other:(Lazy.force single_other_fall) ~other:1)

let test_dual_table_matches_oracle () =
  let th = Lazy.force th in
  let t = Lazy.force dual_table in
  let s = Lazy.force single_fall in
  let tau_dom = 300e-12 and tau_other = 250e-12 and sep = 50e-12 in
  let oracle =
    Dual.oracle nand2 th ~dom:0 ~other:1 ~edge:Measure.Fall ~tau_dom
      ~tau_other ~sep
  in
  let pred =
    Dual.delay t ~single_dom:s ~single_other:(Lazy.force single_other_fall)
      ~tau_dom ~tau_other ~sep
  in
  Alcotest.(check bool) "table within 10% of oracle" true
    (Float.abs (pred -. oracle.Measure.delay) < 0.10 *. oracle.Measure.delay)

let test_dual_table_asymptote () =
  let t = Lazy.force dual_table in
  let s = Lazy.force single_fall in
  let tau = 300e-12 in
  let d1 = Single.delay s ~tau in
  let far =
    Dual.delay t ~single_dom:s ~single_other:(Lazy.force single_other_fall)
      ~tau_dom:tau ~tau_other:tau ~sep:(2. *. d1)
  in
  Alcotest.(check (float 1e-15)) "single-input asymptote" d1 far

let test_dual_ratio_bounds () =
  let t = Lazy.force dual_table in
  (* for falling NAND inputs the ratio is a speed-up: within (0, ~1.2] *)
  List.iter
    (fun (x1, x2, x3) ->
      let r = Dual.delay_ratio t ~x1 ~x2 ~x3 in
      Alcotest.(check bool)
        (Printf.sprintf "ratio sane at (%.2f %.2f %.2f)" x1 x2 x3)
        true
        (r > 0.05 && r < 1.5))
    [ (1., 1., 0.); (0.5, 2., -1.); (3., 0.7, 0.5); (2., 2., 1.) ]

let test_models_of_oracle_consistency () =
  let th = Lazy.force th in
  let m = Models.of_oracle nand2 th in
  let tau = 200e-12 in
  let d = m.Models.delay1 ~pin:0 ~edge:Measure.Fall ~tau in
  let golden = Measure.single_input nand2 th ~pin:0 ~edge:Measure.Fall ~tau in
  Alcotest.(check (float 1e-15)) "oracle = golden" golden.Measure.delay d;
  (* memoized: a second query must return the identical value *)
  Alcotest.(check (float 0.)) "memoized" d
    (m.Models.delay1 ~pin:0 ~edge:Measure.Fall ~tau)

let test_models_metadata () =
  let th = Lazy.force th in
  let m = Models.of_oracle nand2 th in
  Alcotest.(check int) "fan_in" 2 m.Models.fan_in;
  Alcotest.(check bool) "named" true
    (String.length m.Models.name > 0)

let () =
  Alcotest.run "macromodel"
    [
      ( "single",
        [
          Alcotest.test_case "matches simulation at knots" `Quick
            test_single_matches_simulation_at_knots;
          Alcotest.test_case "interpolates" `Quick
            test_single_interpolates_between_knots;
          Alcotest.test_case "monotone" `Quick test_single_monotone_in_tau;
          Alcotest.test_case "load scaling" `Quick test_single_load_scaling;
          Alcotest.test_case "metadata" `Quick test_single_metadata;
          Alcotest.test_case "tau_of_delay" `Quick test_tau_of_delay_inverse;
        ] );
      ( "dual oracle",
        [
          Alcotest.test_case "outside window" `Quick
            test_oracle_dual_reduces_to_single_outside_window;
          Alcotest.test_case "proximity helps" `Quick
            test_oracle_dual_proximity_helps_falling;
          Alcotest.test_case "negative separation" `Quick
            test_oracle_dual_negative_separation;
        ] );
      ( "dual table",
        [
          Alcotest.test_case "matches oracle" `Slow test_dual_table_matches_oracle;
          Alcotest.test_case "asymptote" `Slow test_dual_table_asymptote;
          Alcotest.test_case "ratio bounds" `Slow test_dual_ratio_bounds;
        ] );
      ( "models",
        [
          Alcotest.test_case "oracle consistency" `Quick
            test_models_of_oracle_consistency;
          Alcotest.test_case "metadata" `Quick test_models_metadata;
        ] );
    ]
