(* Tests for macromodel serialization (Single/Dual/Store) and the Liberty
   exporter. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Store = Proxim_macromodel.Store
module Liberty = Proxim_macromodel.Liberty
module Proximity = Proxim_core.Proximity
module Floatx = Proxim_util.Floatx

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let th = lazy (Vtc.thresholds ~points:201 nand2)

let coarse_taus = Floatx.logspace 50e-12 2e-9 6
let coarse_x_tau = Floatx.logspace 0.5 4. 3
let coarse_x_sep = Floatx.linspace (-2.) 1.2 4

let single_model =
  lazy (Single.build ~taus:coarse_taus nand2 (Lazy.force th) ~pin:0 ~edge:Measure.Fall)

let single_other =
  lazy
    (Single.build ~taus:coarse_taus nand2 (Lazy.force th) ~pin:1
       ~edge:Measure.Fall)

let dual_model =
  lazy
    (Dual.build ~x_tau:coarse_x_tau ~x_sep:coarse_x_sep nand2 (Lazy.force th)
       ~single_dom:(Lazy.force single_model)
       ~single_other:(Lazy.force single_other) ~other:1)

let test_single_roundtrip () =
  let s = Lazy.force single_model in
  let s' = Single.load (Single.save s) in
  Alcotest.(check int) "pin" (Single.pin s) (Single.pin s');
  Alcotest.(check bool) "edge" true (Single.edge s = Single.edge s');
  List.iter
    (fun tau ->
      Alcotest.(check (float 0.)) "delay identical" (Single.delay s ~tau)
        (Single.delay s' ~tau);
      Alcotest.(check (float 0.)) "transition identical"
        (Single.out_transition s ~tau)
        (Single.out_transition s' ~tau))
    [ 60e-12; 300e-12; 1.5e-9 ]

let test_single_load_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool)
        ("rejects " ^ String.escaped (String.sub text 0 (min 12 (String.length text))))
        true
        (try
           ignore (Single.load text);
           false
         with Failure _ -> true))
    [ ""; "nonsense"; "single-v1\npin x"; "single-v1\npin 0\nedge sideways" ]

let test_dual_roundtrip () =
  let d = Lazy.force dual_model in
  let d' = Dual.load (Dual.save d) in
  Alcotest.(check int) "dom" (Dual.dom d) (Dual.dom d');
  Alcotest.(check int) "other" (Dual.other d) (Dual.other d');
  List.iter
    (fun (x1, x2, x3) ->
      Alcotest.(check (float 0.)) "delay ratio identical"
        (Dual.delay_ratio d ~x1 ~x2 ~x3)
        (Dual.delay_ratio d' ~x1 ~x2 ~x3);
      Alcotest.(check (float 0.)) "trans ratio identical"
        (Dual.trans_ratio d ~x1 ~x2 ~x3)
        (Dual.trans_ratio d' ~x1 ~x2 ~x3))
    [ (1., 1., 0.); (0.7, 2.1, -1.3); (3.2, 0.6, 0.8) ]

let test_store_roundtrip () =
  let th = Lazy.force th in
  let set =
    {
      Store.gate_name = "nand2";
      vil = th.Vtc.vil;
      vih = th.Vtc.vih;
      vdd = th.Vtc.vdd;
      singles = [ Lazy.force single_model ];
      duals = [ Lazy.force dual_model ];
    }
  in
  let set' = Store.load (Store.save set) in
  Alcotest.(check string) "gate name" set.Store.gate_name set'.Store.gate_name;
  Alcotest.(check (float 0.)) "vil" set.Store.vil set'.Store.vil;
  Alcotest.(check int) "singles" 1 (List.length set'.Store.singles);
  Alcotest.(check int) "duals" 1 (List.length set'.Store.duals)

let test_store_file_roundtrip () =
  let th = Lazy.force th in
  let set =
    {
      Store.gate_name = "nand2";
      vil = th.Vtc.vil;
      vih = th.Vtc.vih;
      vdd = th.Vtc.vdd;
      singles = [ Lazy.force single_model ];
      duals = [];
    }
  in
  let path = Filename.temp_file "proxim_store" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.save_file path set;
      let set' = Store.load_file path in
      Alcotest.(check string) "name" "nand2" set'.Store.gate_name)

let test_characterize_without_duals () =
  let th = Lazy.force th in
  let set =
    Store.characterize ~taus:coarse_taus ~edges:[ Measure.Fall ]
      ~with_duals:false nand2 th
  in
  Alcotest.(check int) "one single per pin" 2 (List.length set.Store.singles);
  Alcotest.(check int) "no duals" 0 (List.length set.Store.duals)

let test_store_to_models () =
  let th = Lazy.force th in
  let set =
    Store.characterize ~taus:coarse_taus ~x_tau:coarse_x_tau
      ~x_sep:coarse_x_sep ~edges:[ Measure.Fall ] nand2 th
  in
  let m = Store.to_models nand2 set in
  Alcotest.(check int) "fan_in" 2 m.Proxim_macromodel.Models.fan_in;
  (* usable by the core algorithm *)
  let events =
    [
      { Proximity.pin = 0; edge = Measure.Fall; tau = 300e-12; cross_time = 2e-9 };
      { Proximity.pin = 1; edge = Measure.Fall; tau = 200e-12; cross_time = 2.05e-9 };
    ]
  in
  let r = Proximity.evaluate m events in
  Alcotest.(check bool) "positive delay" true (r.Proximity.delay > 0.);
  (* querying an uncharacterized edge raises *)
  Alcotest.(check bool) "missing edge raises" true
    (try
       ignore
         (m.Proxim_macromodel.Models.delay1 ~pin:0 ~edge:Measure.Rise
            ~tau:1e-10);
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Liberty                                                             *)

let liberty_text =
  lazy
    (let th = Lazy.force th in
     let singles =
       [
         Lazy.force single_model;
         Single.build ~taus:coarse_taus nand2 th ~pin:0 ~edge:Measure.Rise;
       ]
     in
     let cell =
       Liberty.cell ~gate_name:"nand2" ~singles
         ~input_capacitance:(Gate.input_capacitance nand2) ()
     in
     Liberty.library ~name:"proxim_test" ~cells:[ cell ])

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_liberty_structure () =
  let text = Lazy.force liberty_text in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "library (proxim_test)";
      "lu_table_template (proxim_6x6)";
      "cell (nand2)";
      "pin (a)";
      "pin (z)";
      "related_pin : \"a\"";
      "cell_fall (proxim_6x6)";
      "rise_transition (proxim_6x6)";
      "timing_sense : negative_unate";
      "index_1";
      "values (";
    ]

let test_liberty_values_match_model () =
  (* spot-check one rendered value against a direct model query *)
  let s = Lazy.force single_model in
  let axes = Liberty.default_axes in
  let slew = axes.Liberty.slews.(0) and load = axes.Liberty.loads.(0) in
  let expected_ns = Single.delay ~c_load:load s ~tau:slew *. 1e9 in
  let rendered = Printf.sprintf "%.5f" expected_ns in
  Alcotest.(check bool) "first cell_rise entry present" true
    (contains (Lazy.force liberty_text) rendered)

let test_liberty_requires_models () =
  Alcotest.(check bool) "empty singles rejected" true
    (try
       ignore (Liberty.cell ~gate_name:"x" ~singles:[] ~input_capacitance:1e-15 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "store"
    [
      ( "serialization",
        [
          Alcotest.test_case "single roundtrip" `Quick test_single_roundtrip;
          Alcotest.test_case "single rejects garbage" `Quick
            test_single_load_rejects_garbage;
          Alcotest.test_case "dual roundtrip" `Slow test_dual_roundtrip;
          Alcotest.test_case "store roundtrip" `Slow test_store_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_store_file_roundtrip;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "singles only" `Quick
            test_characterize_without_duals;
          Alcotest.test_case "to_models" `Slow test_store_to_models;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "structure" `Quick test_liberty_structure;
          Alcotest.test_case "values" `Quick test_liberty_values_match_model;
          Alcotest.test_case "requires models" `Quick
            test_liberty_requires_models;
        ] );
    ]
