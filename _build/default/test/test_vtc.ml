(* Tests for VTC extraction and the paper's threshold-selection rule. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc

let tech = Tech.generic_5v

(* share the expensive family across tests *)
let nand3 = Gate.nand tech ~fan_in:3
let family3 = lazy (Vtc.family ~points:201 nand3)

let test_family_size () =
  Alcotest.(check int) "2^3 - 1 curves" 7 (List.length (Lazy.force family3))

let test_curve_ordering () =
  let c = Vtc.curve ~points:201 nand3 ~subset:[ 0 ] in
  Alcotest.(check bool) "vil < vm" true (c.Vtc.vil < c.Vtc.vm);
  Alcotest.(check bool) "vm < vih" true (c.Vtc.vm < c.Vtc.vih);
  Alcotest.(check bool) "vil positive" true (c.Vtc.vil > 0.);
  Alcotest.(check bool) "vih below vdd" true (c.Vtc.vih < 5.)

let test_curve_monotone_falling () =
  let c = Vtc.curve ~points:201 nand3 ~subset:[ 0; 1; 2 ] in
  let prev = ref infinity in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "non-increasing" true (v <= !prev +. 1e-6);
      prev := v)
    c.Vtc.vout

let test_all_switching_has_highest_thresholds () =
  (* switching all inputs together shifts the whole VTC right (§2) *)
  let fam = Lazy.force family3 in
  let all = List.find (fun c -> c.Vtc.subset = [ 0; 1; 2 ]) fam in
  List.iter
    (fun c ->
      if c.Vtc.subset <> [ 0; 1; 2 ] then begin
        Alcotest.(check bool) "vm below all-switching" true
          (c.Vtc.vm <= all.Vtc.vm +. 1e-3);
        Alcotest.(check bool) "vih below all-switching" true
          (c.Vtc.vih <= all.Vtc.vih +. 1e-3)
      end)
    fam

let test_ground_pin_has_lowest_vil () =
  (* for a NAND the chosen Vil comes from the input closest to ground *)
  let fam = Lazy.force family3 in
  let ground_pin = List.find (fun c -> c.Vtc.subset = [ 2 ]) fam in
  let chosen = Vtc.choose fam in
  Alcotest.(check (float 1e-6)) "min vil is pin c's" ground_pin.Vtc.vil
    chosen.Vtc.vil

let test_choose_rule () =
  let fam = Lazy.force family3 in
  let th = Vtc.choose fam in
  List.iter
    (fun (c : Vtc.curve) ->
      Alcotest.(check bool) "vil <= every vil" true (th.Vtc.vil <= c.Vtc.vil);
      Alcotest.(check bool) "vih >= every vih" true (th.Vtc.vih >= c.Vtc.vih);
      (* the property the rule guarantees: Vil < Vm < Vih for every curve *)
      Alcotest.(check bool) "vil < vm" true (th.Vtc.vil < c.Vtc.vm);
      Alcotest.(check bool) "vm < vih" true (c.Vtc.vm < th.Vtc.vih))
    fam;
  Alcotest.(check (float 1e-9)) "vdd recorded" 5. th.Vtc.vdd

let test_choose_empty () =
  Alcotest.check_raises "empty family"
    (Invalid_argument "Vtc.choose: empty family") (fun () ->
      ignore (Vtc.choose []))

let test_curve_rejects_bad_subsets () =
  Alcotest.check_raises "empty subset"
    (Invalid_argument "Vtc.curve: empty subset") (fun () ->
      ignore (Vtc.curve nand3 ~subset:[]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vtc.curve: pin out of range") (fun () ->
      ignore (Vtc.curve nand3 ~subset:[ 7 ]))

let test_inverter_thresholds_bracket_midpoint () =
  let inv = Gate.inverter tech in
  let th = Vtc.thresholds ~points:201 inv in
  Alcotest.(check bool) "vil below mid" true (th.Vtc.vil < 2.5);
  Alcotest.(check bool) "vih above mid" true (th.Vtc.vih > 2.5)

let test_nor_family () =
  let g = Gate.nor tech ~fan_in:2 in
  let fam = Vtc.family ~points:201 g in
  Alcotest.(check int) "3 curves" 3 (List.length fam);
  let th = Vtc.choose fam in
  Alcotest.(check bool) "sane" true (th.Vtc.vil > 0. && th.Vtc.vih < 5.)

let () =
  Alcotest.run "vtc"
    [
      ( "family",
        [
          Alcotest.test_case "size" `Quick test_family_size;
          Alcotest.test_case "curve ordering" `Quick test_curve_ordering;
          Alcotest.test_case "monotone" `Quick test_curve_monotone_falling;
          Alcotest.test_case "all-switching extreme" `Quick
            test_all_switching_has_highest_thresholds;
          Alcotest.test_case "ground pin vil" `Quick
            test_ground_pin_has_lowest_vil;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "choose rule" `Quick test_choose_rule;
          Alcotest.test_case "choose empty" `Quick test_choose_empty;
          Alcotest.test_case "bad subsets" `Quick test_curve_rejects_bad_subsets;
          Alcotest.test_case "inverter" `Quick
            test_inverter_thresholds_bracket_midpoint;
          Alcotest.test_case "nor" `Quick test_nor_family;
        ] );
    ]
