examples/glitch_filter.mli:
