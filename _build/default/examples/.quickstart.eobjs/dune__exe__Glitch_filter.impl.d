examples/glitch_filter.ml: Float List Printf Proxim_core Proxim_gates Proxim_vtc String
