examples/sta_adder.mli:
