examples/sta_adder.ml: Float List Printf Proxim_gates Proxim_measure Proxim_sta Proxim_vtc String
