examples/char_library.ml: List Printf Proxim_gates Proxim_macromodel Proxim_measure Proxim_util Proxim_vtc
