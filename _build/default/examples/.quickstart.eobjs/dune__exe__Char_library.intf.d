examples/char_library.mli:
