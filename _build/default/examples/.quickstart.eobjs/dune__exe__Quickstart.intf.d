examples/quickstart.mli:
