examples/quickstart.ml: List Printf Proxim_core Proxim_gates Proxim_macromodel Proxim_measure Proxim_vtc
