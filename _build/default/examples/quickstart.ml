(* Quickstart: measure how much the temporal proximity of two input
   transitions changes a NAND3's delay, and predict it with the paper's
   ProximityDelay algorithm.

   Run with:  dune exec examples/quickstart.exe *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity

let ps s = s *. 1e12

let () =
  (* 1. Pick a technology and build a gate.  [Tech.generic_5v] is a
     self-contained 0.8 um / 5 V card; gates carry their sizing and a
     default output load. *)
  let tech = Tech.generic_5v in
  let nand3 = Gate.nand tech ~fan_in:3 in

  (* 2. Extract measurement thresholds from the gate's family of voltage
     transfer curves (paper §2: min Vil / max Vih over all 2^n - 1 VTCs,
     which guarantees positive delays for any input situation). *)
  let th = Vtc.thresholds nand3 in
  Printf.printf "thresholds: Vil = %.3f V, Vih = %.3f V (Vdd = %.1f V)\n\n"
    th.Vtc.vil th.Vtc.vih th.Vtc.vdd;

  (* 3. Single-input view: input a falls in 500 ps, b and c stay at Vdd.
     This is what a classic delay calculator would look at. *)
  let single = Measure.single_input nand3 th ~pin:0 ~edge:Measure.Fall ~tau:500e-12 in
  Printf.printf "a alone (fall 500 ps):  delay = %.1f ps, output rise = %.1f ps\n"
    (ps single.Measure.delay)
    (ps single.Measure.out_transition);

  (* 4. Now let input b fall 100 ps after a.  Golden truth from the
     built-in circuit simulator: *)
  let events =
    [
      { Proximity.pin = 0; edge = Measure.Fall; tau = 500e-12; cross_time = 2.0e-9 };
      { Proximity.pin = 1; edge = Measure.Fall; tau = 100e-12; cross_time = 2.1e-9 };
    ]
  in
  let models = Models.of_oracle nand3 th in
  let predicted = Proximity.evaluate models events in
  let stimuli =
    List.map
      (fun (e : Proximity.event) ->
        ( e.Proximity.pin,
          { Measure.edge = e.Proximity.edge; tau = e.Proximity.tau;
            cross_time = e.Proximity.cross_time } ))
      events
  in
  let golden =
    Measure.multi_input nand3 th ~stimuli ~ref_pin:predicted.Proximity.ref_pin
  in
  Printf.printf "a + b 100 ps apart:     delay = %.1f ps (golden simulation)\n"
    (ps golden.Measure.delay);
  Printf.printf
    "ProximityDelay says:    delay = %.1f ps, measured from input '%s' (%d \
     inputs in window)\n"
    (ps predicted.Proximity.delay)
    (Gate.pin_name predicted.Proximity.ref_pin)
    predicted.Proximity.used_inputs;
  Printf.printf
    "\nproximity effect: the second falling input adds a parallel pull-up\n\
     path, cutting the delay by %.0f%% versus the single-input view --\n\
     the effect the paper models and a pin-to-pin delay calculator misses.\n"
    ((single.Measure.delay -. golden.Measure.delay)
     /. single.Measure.delay *. 100.)
