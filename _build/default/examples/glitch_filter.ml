(* Inertial delay as a proximity effect (paper §6).

   A NAND gate receiving a falling transition on one input and a rising
   transition on another produces an output glitch whose depth depends on
   the temporal separation of the two transitions.  The separation at
   which the glitch just reaches the measurement threshold Vil is the
   gate's inertial delay: narrower "pulses" are filtered out.

   This example characterizes that boundary over a range of input
   transition times -- the curve a library characterization flow would
   store as the gate's pulse-rejection spec.

   Run with:  dune exec examples/glitch_filter.exe *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Inertial = Proxim_core.Inertial

let ps s = s *. 1e12

let () =
  let tech = Tech.generic_5v in
  let nand3 = Gate.nand tech ~fan_in:3 in
  let th = Vtc.thresholds nand3 in
  Printf.printf
    "gate: %s   thresholds: Vil = %.3f V, Vih = %.3f V\n\n"
    nand3.Gate.name th.Vtc.vil th.Vtc.vih;
  Printf.printf
    "input a falls (enabling the pull-up), input b rises (enabling the\n\
     pull-down).  The output only completes a transition when b leads a\n\
     by more than the inertial delay:\n\n";
  Printf.printf "  tau_fall[ps]  tau_rise[ps]  inertial delay[ps]\n";
  List.iter
    (fun (tau_fall, tau_rise) ->
      let s_min =
        Inertial.minimum_valid_separation nand3 th ~fall_pin:0 ~rise_pin:1
          ~tau_fall ~tau_rise
      in
      Printf.printf "  %10.0f  %12.0f  %16.1f\n" (ps tau_fall) (ps tau_rise)
        (ps (-.s_min)))
    [
      (200e-12, 100e-12);
      (500e-12, 100e-12);
      (500e-12, 500e-12);
      (500e-12, 1000e-12);
      (1000e-12, 500e-12);
      (2000e-12, 500e-12);
    ];
  Printf.printf
    "\nreading: a pulse shorter than the inertial delay never drives the\n\
     output past Vil and is absorbed by the gate -- the classical inertial\n\
     delay abstraction emerges from the proximity model rather than being\n\
     a separate axiom (paper §6).\n\n";
  (* show one glitch profile in detail *)
  Printf.printf "glitch depth vs separation (fall 500 ps, rise 100 ps):\n";
  Printf.printf "  separation[ps]   Vmin[V]\n";
  List.iter
    (fun sep ->
      let g =
        Inertial.glitch nand3 th ~fall_pin:0 ~rise_pin:1 ~tau_fall:500e-12
          ~tau_rise:100e-12 ~sep
      in
      let bar =
        String.make (int_of_float (Float.max 0. g.Inertial.v_extreme *. 10.)) '#'
      in
      Printf.printf "  %12.0f   %7.3f %s\n" (ps sep) g.Inertial.v_extreme bar)
    [ -1.5e-9; -1.2e-9; -0.9e-9; -0.6e-9; -0.45e-9; -0.3e-9; -0.15e-9; 0. ]
