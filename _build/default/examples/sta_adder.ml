(* Proximity-aware static timing analysis of a NAND-only ripple module.

   The paper's introduction motivates proximity modeling with exactly this
   situation: reconvergent logic delivers several transitions to one
   gate's inputs within a few tens of picoseconds, and a classic
   pin-to-pin STA (one switching input at a time) mispredicts both the
   arrival and the slew at the gate output.

   The circuit is a two-level NAND tree followed by a merging NAND3 --
   the NAND-decomposition of a majority/carry function:

        a ---+                                      +-- u5(nand3) -- carry
        b ---+-- u1(nand2) -- n1 ------------------ |
        a ---+                                      |
        c ---+-- u2(nand2) -- n2 ------------------ |
        b ---+                                      |
        c ---+-- u3(nand2) -- n3 ------------------ +

   Run with:  dune exec examples/sta_adder.exe  (takes ~10 s: the models
   are characterized on the fly by the built-in circuit simulator) *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta

let ps s = s *. 1e12

let () =
  let tech = Tech.generic_5v in
  let nand2 = Gate.nand tech ~fan_in:2 in
  let nand3 = Gate.nand tech ~fan_in:3 in
  let cell name gate inputs output =
    { Design.name; gate; input_nets = inputs; output_net = output }
  in
  let design =
    Design.create
      ~cells:
        [
          cell "u1" nand2 [| "a"; "b" |] "n1";
          cell "u2" nand2 [| "a"; "c" |] "n2";
          cell "u3" nand2 [| "b"; "c" |] "n3";
          cell "u5" nand3 [| "n1"; "n2"; "n3" |] "carry";
        ]
      ~primary_inputs:[ "a"; "b"; "c" ]
      ~primary_outputs:[ "carry" ]
  in
  (* characterize with the 3-input gate's conservative thresholds *)
  let th = Vtc.thresholds nand3 in
  let models = Sta.oracle_model_factory design th in
  (* all three primary inputs rise within 30 ps of each other -- the
     "temporally close transitions" of the paper's Figure 1-1 *)
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 250e-12; edge = Measure.Rise });
      ("b", { Sta.time = 15e-12; slew = 180e-12; edge = Measure.Rise });
      ("c", { Sta.time = 30e-12; slew = 400e-12; edge = Measure.Rise });
    ]
  in
  let show label report =
    Printf.printf "%s\n" label;
    List.iter
      (fun (net, (a : Sta.arrival)) ->
        Printf.printf "  %-6s  t = %7.1f ps  slew = %6.1f ps  (%s)\n" net
          (ps a.Sta.time) (ps a.Sta.slew)
          (match a.Sta.edge with Measure.Rise -> "rise" | Measure.Fall -> "fall"))
      report.Sta.arrivals;
    match report.Sta.critical_po with
    | Some (net, a) ->
      Printf.printf "  critical output %s arrives at %.1f ps\n\n" net
        (ps a.Sta.time)
    | None -> Printf.printf "  (no switching output)\n\n"
  in
  let classic = Sta.analyze ~mode:Sta.Classic ~models ~thresholds:th design ~pi in
  let proximity = Sta.analyze ~mode:Sta.Proximity ~models ~thresholds:th design ~pi in
  show "classic STA (one switching input at a time):" classic;
  show "proximity-aware STA (ProximityDelay at every gate):" proximity;
  Printf.printf "critical path (proximity): %s\n"
    (String.concat " <- " (Sta.critical_path proximity ~po:"carry"));
  List.iter
    (fun (net, slack) ->
      Printf.printf "slack at %s against a 300 ps budget: %+.1f ps\n" net
        (ps slack))
    (Sta.po_slacks design proximity ~required:300e-12);
  match (classic.Sta.critical_po, proximity.Sta.critical_po) with
  | Some (_, ac), Some (_, ap) ->
    let diff = ps (ap.Sta.time -. ac.Sta.time) in
    Printf.printf
      "classic STA is %s by %.1f ps on this path: the rising primary\n\
       inputs make n1..n3 fall within a few tens of ps of each other, so\n\
       the NAND3 sees several conducting PMOS pull-up paths in parallel --\n\
       an effect a one-switching-input-at-a-time characterization cannot\n\
       represent.\n"
      (if diff > 0. then "optimistic" else "pessimistic")
      (Float.abs diff)
  | _, _ -> ()
