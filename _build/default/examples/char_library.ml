(* Characterizing a small cell library into normalized macromodel tables.

   The macromodels of §3 are dimensionless: Delta/tau and tau_out/tau as
   functions of C_L/(K Vdd tau).  One table per (cell, pin, edge) then
   answers queries at ANY load and input slew -- this example builds the
   tables for a three-cell library and shows the normalized curves plus a
   load-scaling spot check against the circuit simulator.

   Run with:  dune exec examples/char_library.exe  (~15 s) *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Floatx = Proxim_util.Floatx

let ps s = s *. 1e12

let () =
  let tech = Tech.generic_5v in
  let library =
    [ Gate.inverter tech; Gate.nand tech ~fan_in:2; Gate.nor tech ~fan_in:2 ]
  in
  List.iter
    (fun gate ->
      let th = Vtc.thresholds ~points:201 gate in
      Printf.printf "cell %-5s  Vil = %.3f V  Vih = %.3f V\n" gate.Gate.name
        th.Vtc.vil th.Vtc.vih;
      let model =
        Single.build ~taus:(Floatx.logspace 30e-12 3e-9 10) gate th ~pin:0
          ~edge:Measure.Rise
      in
      (* the normalized curve: Delta/tau against the dimensionless load *)
      Printf.printf "  normalized single-input model (pin a, rising):\n";
      Printf.printf "    C_L/(K Vdd tau)   Delta/tau   tau_out/tau\n";
      List.iter
        (fun tau ->
          let u = Single.argument model ~tau in
          Printf.printf "    %13.4f   %9.3f   %11.3f\n" u
            (Single.delay model ~tau /. tau)
            (Single.out_transition model ~tau /. tau))
        [ 50e-12; 150e-12; 500e-12; 1500e-12 ];
      (* load scaling: query the table at a load it was NOT built with and
         compare against a fresh golden simulation *)
      let c_load = 250e-15 in
      let tau = 400e-12 in
      let predicted = Single.delay ~c_load model ~tau in
      let golden =
        Measure.single_input ~load:c_load gate th ~pin:0 ~edge:Measure.Rise
          ~tau
      in
      Printf.printf
        "  load-scaling check at C_L = 250 fF, tau = 400 ps:\n\
        \    table %.1f ps vs simulation %.1f ps (%.1f%% error)\n\n"
        (ps predicted)
        (ps golden.Measure.delay)
        ((predicted -. golden.Measure.delay) /. golden.Measure.delay *. 100.))
    library
