type node = int

let ground = 0

type device =
  | Mosfet of { name : string; params : Proxim_device.Mosfet.params;
                g : node; d : node; s : node }
  | Capacitor of { name : string; farads : float; a : node; b : node }
  | Resistor of { name : string; ohms : float; a : node; b : node }
  | Vsource of { name : string; wave : Proxim_waveform.Pwl.t;
                 pos : node; neg : node }

type t = {
  node_count : int;
  node_names : string array;
  devices : device array;
}

type builder = {
  mutable names : string list;  (** reversed, excluding ground *)
  tbl : (string, node) Hashtbl.t;
  mutable devs : device list;  (** reversed *)
  mutable next : node;
}

let create () =
  let tbl = Hashtbl.create 16 in
  Hashtbl.add tbl "0" ground;
  Hashtbl.add tbl "gnd" ground;
  { names = []; tbl; devs = []; next = 1 }

let node b name =
  match Hashtbl.find_opt b.tbl name with
  | Some n -> n
  | None ->
    let n = b.next in
    b.next <- n + 1;
    Hashtbl.add b.tbl name n;
    b.names <- name :: b.names;
    n

let add_device b d = b.devs <- d :: b.devs

let add_mosfet b ~name ~params ~g ~d ~s =
  add_device b (Mosfet { name; params; g; d; s })

let add_capacitor b ~name ~farads ~a ~b:bn =
  if farads <= 0. then invalid_arg "Netlist.add_capacitor: farads <= 0";
  add_device b (Capacitor { name; farads; a; b = bn })

let add_resistor b ~name ~ohms ~a ~b:bn =
  if ohms <= 0. then invalid_arg "Netlist.add_resistor: ohms <= 0";
  add_device b (Resistor { name; ohms; a; b = bn })

let add_vsource b ~name ~wave ~pos ~neg =
  add_device b (Vsource { name; wave; pos; neg })

let add_vdc b ~name ~volts ~pos ~neg =
  add_vsource b ~name ~wave:(Proxim_waveform.Pwl.constant volts) ~pos ~neg

let device_name = function
  | Mosfet { name; _ } | Capacitor { name; _ }
  | Resistor { name; _ } | Vsource { name; _ } -> name

let freeze b =
  let devices = Array.of_list (List.rev b.devs) in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      let name = device_name d in
      if Hashtbl.mem seen name then
        invalid_arg ("Netlist.freeze: duplicate device name " ^ name);
      Hashtbl.add seen name ())
    devices;
  let node_names = Array.make b.next "0" in
  List.iteri
    (fun i name -> node_names.(b.next - 1 - i) <- name)
    b.names;
  { node_count = b.next; node_names; devices }

let find_node t name =
  let rec search i =
    if i >= t.node_count then raise Not_found
    else if String.equal t.node_names.(i) name then i
    else search (i + 1)
  in
  if String.equal name "gnd" then ground else search 0

let node_name t n = t.node_names.(n)

let vsources t =
  Array.to_list t.devices
  |> List.filter_map (function
       | Vsource { name; pos; neg; _ } -> Some (name, pos, neg)
       | Mosfet _ | Capacitor _ | Resistor _ -> None)

let device_count t = Array.length t.devices

let pp ppf t =
  Format.fprintf ppf "* netlist: %d nodes, %d devices@." t.node_count
    (Array.length t.devices);
  let name = node_name t in
  Array.iter
    (fun d ->
      match d with
      | Mosfet { name = dn; params; g; d; s } ->
        let pol =
          match params.Proxim_device.Mosfet.polarity with
          | Proxim_device.Mosfet.Nmos -> "nmos"
          | Proxim_device.Mosfet.Pmos -> "pmos"
        in
        Format.fprintf ppf "M%s %s %s %s %s W=%.3g L=%.3g@." dn (name d)
          (name g) (name s) pol params.Proxim_device.Mosfet.w
          params.Proxim_device.Mosfet.l
      | Capacitor { name = dn; farads; a; b } ->
        Format.fprintf ppf "C%s %s %s %.3g@." dn (name a) (name b) farads
      | Resistor { name = dn; ohms; a; b } ->
        Format.fprintf ppf "R%s %s %s %.3g@." dn (name a) (name b) ohms
      | Vsource { name = dn; pos; neg; _ } ->
        Format.fprintf ppf "V%s %s %s PWL@." dn (name pos) (name neg))
    t.devices
