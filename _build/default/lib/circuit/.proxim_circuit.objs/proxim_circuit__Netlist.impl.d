lib/circuit/netlist.ml: Array Format Hashtbl List Proxim_device Proxim_waveform String
