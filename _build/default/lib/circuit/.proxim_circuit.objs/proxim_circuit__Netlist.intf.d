lib/circuit/netlist.mli: Format Proxim_device Proxim_waveform
