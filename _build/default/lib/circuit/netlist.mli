(** Circuit netlists.

    A netlist is a set of named nodes (node 0 is ground, named ["0"]) and a
    list of devices connecting them.  Netlists are built imperatively
    through a {!builder} — mirroring how a SPICE deck is written — and then
    frozen into an immutable {!t} consumed by the simulator.

    Supported devices cover everything the paper's experiments need:
    MOSFETs (via {!Proxim_device.Mosfet}), linear capacitors and resistors,
    and independent voltage sources driven by PWL waveforms
    ({!Proxim_waveform.Pwl}). *)

type node = int
(** Node handle.  [ground = 0]. *)

val ground : node

type device =
  | Mosfet of { name : string; params : Proxim_device.Mosfet.params;
                g : node; d : node; s : node }
  | Capacitor of { name : string; farads : float; a : node; b : node }
  | Resistor of { name : string; ohms : float; a : node; b : node }
  | Vsource of { name : string; wave : Proxim_waveform.Pwl.t;
                 pos : node; neg : node }

type t = private {
  node_count : int;  (** including ground *)
  node_names : string array;  (** indexed by node id *)
  devices : device array;
}

(** {1 Building} *)

type builder

val create : unit -> builder

val node : builder -> string -> node
(** [node b name] returns the node called [name], creating it on first
    use.  The name ["0"] (and ["gnd"]) refer to ground. *)

val add_mosfet :
  builder -> name:string -> params:Proxim_device.Mosfet.params ->
  g:node -> d:node -> s:node -> unit

val add_capacitor : builder -> name:string -> farads:float -> a:node -> b:node -> unit
(** Requires [farads > 0.]. *)

val add_resistor : builder -> name:string -> ohms:float -> a:node -> b:node -> unit
(** Requires [ohms > 0.]. *)

val add_vsource :
  builder -> name:string -> wave:Proxim_waveform.Pwl.t -> pos:node -> neg:node -> unit

val add_vdc : builder -> name:string -> volts:float -> pos:node -> neg:node -> unit
(** Convenience: a constant voltage source. *)

val freeze : builder -> t
(** Validate and seal the netlist.  Raises [Invalid_argument] when a
    device name is duplicated or a node is referenced but dangling (no
    DC path checks are performed — the simulator's gmin handles floating
    internal nodes). *)

(** {1 Queries} *)

val find_node : t -> string -> node
(** Raises [Not_found] for unknown names. *)

val node_name : t -> node -> string

val vsources : t -> (string * node * node) list
(** Voltage sources in declaration order (name, pos, neg) — the order
    determines their branch indices in the MNA system. *)

val device_count : t -> int

val pp : Format.formatter -> t -> unit
(** SPICE-deck-like listing, for debugging and golden tests. *)
