lib/waveform/pwl.ml: Array Format List Proxim_util
