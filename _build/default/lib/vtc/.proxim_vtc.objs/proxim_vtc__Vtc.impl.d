lib/vtc/vtc.ml: Array Float Format List Proxim_gates Proxim_spice Proxim_util Proxim_waveform String
