lib/vtc/vtc.mli: Format Proxim_gates Proxim_spice
