(** Storage-complexity accounting for the modeling options of Figure 4-2.

    Three ways to model the proximity delay of an [n]-input gate:

    - {b Full}: [n] functions of [2n - 1] arguments (eq 4.1) — exact but
      the table size is exponential in fan-in;
    - {b Pair matrix}: [n] single-input (1-argument) macromodels plus
      [n^2 - n] dual-input (3-argument) macromodels — the naive
      compositional inventory;
    - {b Compositional}: the paper's observation that [n] dual-input
      macromodels suffice in practice, for [2n] macromodels total.

    All counts are for {e delay only}; the paper doubles them for the
    output transition time, as does {!with_transition}. *)

type scheme = Full | Pair_matrix | Compositional

val model_count : scheme -> fan_in:int -> int
(** Number of distinct macromodel functions. *)

val max_arguments : scheme -> fan_in:int -> int
(** Arity of the widest function in the scheme. *)

val table_cells : scheme -> fan_in:int -> points_per_axis:int -> float
(** Total table cells when every function is tabulated with
    [points_per_axis] samples per argument.  Returned as float because
    the [Full] scheme overflows 63-bit integers already at moderate
    fan-in. *)

val with_transition : float -> float
(** Double a delay-only figure to account for the transition-time models. *)

val pp_comparison :
  Format.formatter -> fan_in:int -> points_per_axis:int -> unit
(** Render the three rows of the Figure 4-2 comparison for one fan-in. *)
