module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Gate = Proxim_gates.Gate

type event = {
  pin : int;
  edge : Measure.edge;
  tau : float;
  cross_time : float;
}

type result = {
  ref_pin : int;
  ref_cross : float;
  delay : float;
  out_transition : float;
  used_inputs : int;
}

let check_events events =
  match events with
  | [] -> invalid_arg "Proximity: no input events"
  | first :: rest ->
    if List.exists (fun e -> e.edge <> first.edge) rest then
      invalid_arg "Proximity: mixed edge directions";
    first.edge

(* Dominance (§3): the dominant input is the one whose would-be
   single-input output crossing [t_i + Delta_i^(1)] lies closest to the
   combined response.  When the switching transistors assist each other
   (parallel branches in the driving network, e.g. falling NAND inputs or
   rising NOR inputs) the combined response tracks the EARLIEST would-be
   crossing; when they gate each other (a series stack) it waits for the
   LATEST.  Both orderings share the paper's crossover point
   [s_ij = Delta_i^(1) - Delta_j^(1)]. *)
let dominance_order (models : Models.t) events =
  let edge = check_events events in
  let pins = List.map (fun e -> e.pin) events in
  let assist = models.Models.assist ~edge ~pins in
  let keyed =
    List.map
      (fun e ->
        let d1 = models.Models.delay1 ~pin:e.pin ~edge ~tau:e.tau in
        (e.cross_time +. d1, e))
      events
  in
  let ascending (a, _) (b, _) = compare a b in
  let order = if assist then ascending else fun a b -> ascending b a in
  List.map snd (List.sort order keyed)

type correction = { delay_err : float; trans_err : float }

let no_correction = { delay_err = 0.; trans_err = 0. }

type trans_composition = Additive | Rate_additive

(* Fig 4-1, with the output-transition variant folded into the same loop.
   Per-iteration state:
   - [d_cum] : Delta^(i-1) with respect to y1
   - [t_cum] : tau_out^(i-1)
   - [last_s], [d_before_last]: separation of the last in-window input and
     the cumulative delay at which it was processed (correction weight).

   Windows (§3 end): an input beyond the current cumulative delay cannot
   affect the delay but still shapes the output transition until
   [Delta + tau_out]; an input beyond that is ignored entirely.  For
   gating (series-stack) transitions the window logic is not needed:
   inputs that conducted long before the dominant one yield a dual-model
   ratio of 1 and drop out by saturation. *)
let evaluate ?(correction = no_correction)
    ?(trans_composition = Rate_additive) (models : Models.t) events =
  let edge = check_events events in
  let assist =
    models.Models.assist ~edge ~pins:(List.map (fun e -> e.pin) events)
  in
  match dominance_order models events with
  | [] -> assert false
  | y1 :: rest ->
    let d1_ref = models.Models.delay1 ~pin:y1.pin ~edge ~tau:y1.tau in
    let t1_ref = models.Models.trans1 ~pin:y1.pin ~edge ~tau:y1.tau in
    let compose_trans t_cum t2 =
      match trans_composition with
      | Additive -> t_cum +. (t2 -. t1_ref)
      | Rate_additive -> 1. /. ((1. /. t_cum) +. (1. /. t2) -. (1. /. t1_ref))
    in
    let rec fold rest ~d_cum ~t_cum ~used ~last_s ~d_before_last =
      match rest with
      | [] -> (d_cum, t_cum, used, last_s, d_before_last)
      | yi :: tl ->
        let s = yi.cross_time -. y1.cross_time in
        let in_delay_window = (not assist) || s < d_cum in
        let in_trans_window = (not assist) || s < d_cum +. t_cum in
        if not in_trans_window then
          (* events are dominance-ordered, so for assisting inputs every
             remaining one is even further out *)
          (d_cum, t_cum, used, last_s, d_before_last)
        else begin
          (* equivalent waveform (eq 4.3): shift y1 so its single-input
             response crosses the threshold when the cumulative response
             does *)
          let s_star = s +. d1_ref -. d_cum in
          let t2 =
            models.Models.trans2 ~dom:y1.pin ~other:yi.pin ~edge
              ~tau_dom:y1.tau ~tau_other:yi.tau ~sep:s_star
          in
          let t_cum' = compose_trans t_cum t2 in
          if in_delay_window then begin
            let d2 =
              models.Models.delay2 ~dom:y1.pin ~other:yi.pin ~edge
                ~tau_dom:y1.tau ~tau_other:yi.tau ~sep:s_star
            in
            let d_cum' = d_cum +. (d2 -. d1_ref) in
            fold tl ~d_cum:d_cum' ~t_cum:t_cum' ~used:(used + 1) ~last_s:s
              ~d_before_last:d_cum
          end
          else
            fold tl ~d_cum ~t_cum:t_cum' ~used:(used + 1) ~last_s
              ~d_before_last
        end
    in
    let d_cum, t_cum, used, last_s, d_before_last =
      fold rest ~d_cum:d1_ref ~t_cum:t1_ref ~used:1 ~last_s:0.
        ~d_before_last:d1_ref
    in
    (* correction term (§4): full weight for a simultaneous(-or-earlier)
       last in-window input, linear decay to zero as its separation
       approaches the cumulative delay.  For gating (series) transitions
       the decay is applied to |s| (the failure mode is simultaneity,
       approached from the other side). *)
    let weight =
      if used < 2 || d_before_last <= 0. then 0.
      else if assist then begin
        if last_s <= 0. then 1.
        else if last_s >= d_before_last then 0.
        else 1. -. (last_s /. d_before_last)
      end
      else begin
        let mag = Float.abs last_s in
        if mag >= d_before_last then 0. else 1. -. (mag /. d_before_last)
      end
    in
    {
      ref_pin = y1.pin;
      ref_cross = y1.cross_time;
      delay = d_cum +. (weight *. correction.delay_err);
      out_transition = t_cum +. (weight *. correction.trans_err);
      used_inputs = used;
    }

let calibrate_correction ?opts ?(tau_step = 20e-12) gate th models ~edge =
  let fan_in = gate.Gate.fan_in in
  let cross_time = tau_step +. 0.3e-9 in
  let events =
    List.init fan_in (fun pin -> { pin; edge; tau = tau_step; cross_time })
  in
  let stimuli =
    List.map
      (fun e -> (e.pin, { Measure.edge; tau = e.tau; cross_time = e.cross_time }))
      events
  in
  let predicted = evaluate models events in
  let golden =
    Measure.multi_input ?opts gate th ~stimuli ~ref_pin:predicted.ref_pin
  in
  {
    delay_err = golden.Measure.delay -. predicted.delay;
    trans_err = golden.Measure.out_transition -. predicted.out_transition;
  }
