(** Inertial delay as a proximity effect (paper §6).

    When two inputs of a NAND-like gate switch in opposite directions —
    one falling (enabling the pull-up) and one rising (enabling the
    pull-down) — a glitch appears at the output whose magnitude depends on
    the separation between the transitions.  Only when the glitch extreme
    passes the measurement threshold has the output "completed a
    transition"; the minimum separation for which that happens {e is} the
    inertial delay of the gate. *)

type glitch = {
  v_extreme : float;  (** most extreme output voltage reached, V *)
  t_extreme : float;  (** when it is reached, s *)
  full_swing : bool;
      (** whether the output completed a transition (the extreme passed
          the relevant measurement threshold) *)
}

val glitch :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  fall_pin:int ->
  rise_pin:int ->
  tau_fall:float ->
  tau_rise:float ->
  sep:float ->
  glitch
(** Simulate the opposite-transition pair on the golden simulator.
    [sep] is the rise-pin threshold crossing minus the fall-pin
    threshold crossing (negative = the rising input comes first).
    For a NAND-like gate the output rests high and the glitch is
    negative-going, so [v_extreme] is the output minimum and
    [full_swing] tests [v_extreme <= Vil]. *)

val minimum_valid_separation :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  ?search:float * float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  fall_pin:int ->
  rise_pin:int ->
  tau_fall:float ->
  tau_rise:float ->
  float
(** The inertial delay: the separation at which the glitch magnitude
    exactly reaches [Vil], found by bisection over [search] (default
    [-3 ns, +1 ns]; more negative separations let the rising input act
    first and complete the transition).  Raises [Failure] when the glitch
    never/always completes inside the search window. *)
