type scheme = Full | Pair_matrix | Compositional

let model_count scheme ~fan_in =
  assert (fan_in >= 1);
  match scheme with
  | Full -> fan_in
  | Pair_matrix -> fan_in + ((fan_in * fan_in) - fan_in)
  | Compositional -> 2 * fan_in

let max_arguments scheme ~fan_in =
  match scheme with
  | Full -> (2 * fan_in) - 1
  | Pair_matrix | Compositional -> if fan_in >= 2 then 3 else 1

let table_cells scheme ~fan_in ~points_per_axis =
  let p = float_of_int points_per_axis in
  let n = float_of_int fan_in in
  match scheme with
  | Full -> n *. (p ** float_of_int ((2 * fan_in) - 1))
  | Pair_matrix -> (n *. p) +. (((n *. n) -. n) *. (p ** 3.))
  | Compositional -> (n *. p) +. (n *. (p ** 3.))

let with_transition cells = 2. *. cells

let pp_comparison ppf ~fan_in ~points_per_axis =
  let row name scheme =
    Format.fprintf ppf "  %-14s %4d models, <=%2d args, %.3g table cells@."
      name
      (model_count scheme ~fan_in)
      (max_arguments scheme ~fan_in)
      (table_cells scheme ~fan_in ~points_per_axis)
  in
  Format.fprintf ppf "fan-in %d (p = %d points/axis):@." fan_in points_per_axis;
  row "full" Full;
  row "pair-matrix" Pair_matrix;
  row "compositional" Compositional
