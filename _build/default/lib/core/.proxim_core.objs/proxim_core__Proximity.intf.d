lib/core/proximity.mli: Proxim_gates Proxim_macromodel Proxim_measure Proxim_spice Proxim_vtc
