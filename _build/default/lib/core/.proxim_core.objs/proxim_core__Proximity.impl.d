lib/core/proximity.ml: Float List Proxim_gates Proxim_macromodel Proxim_measure
