lib/core/inertial.mli: Proxim_gates Proxim_spice Proxim_vtc
