lib/core/inertial.ml: Array Float Proxim_gates Proxim_measure Proxim_util Proxim_vtc Proxim_waveform
