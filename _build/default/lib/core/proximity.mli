(** The multi-input temporal-proximity algorithm (paper §3–§4).

    Given a set of same-direction input transitions on a multi-input gate,
    compute the gate delay and output transition time by repeated
    application of the dual-input proximity macromodel — without
    collapsing the gate to an equivalent inverter.

    The steps follow Figure 4-1 of the paper:

    + order the inputs by {e dominance}: input [i] precedes [j] when its
      would-be single-input output crossing [t_i + Delta_i^(1)] comes
      first (equivalently [s_ij > Delta_i^(1) - Delta_j^(1)]);
    + seed the cumulative delay with the most dominant input's
      single-input delay;
    + for each further input inside the proximity window, represent the
      inputs processed so far by an {e equivalent waveform} — the dominant
      input time-shifted so that its single-input response crosses the
      measurement threshold exactly when the cumulative response would
      (eq 4.3) — and apply the dual-input macromodel to the pair
      (eqs 4.4–4.5);
    + stop at the first input whose separation exceeds the current
      cumulative delay (the proximity window);
    + optionally add the bounded, linearly decaying correction term that
      repairs the two known failure modes (§4: simultaneous identical
      inputs; very late dominant input). *)

type event = {
  pin : int;
  edge : Proxim_measure.Measure.edge;
  tau : float;  (** full-swing input transition time, s *)
  cross_time : float;  (** input-threshold crossing time, s *)
}

type result = {
  ref_pin : int;  (** the most dominant input — delay is measured from it *)
  ref_cross : float;  (** its threshold-crossing time *)
  delay : float;  (** gate delay with respect to [ref_pin], s *)
  out_transition : float;  (** output transition time, s *)
  used_inputs : int;  (** how many inputs fell inside the proximity window *)
}

val dominance_order :
  Proxim_macromodel.Models.t -> event list -> event list
(** Sort by would-be output crossing [cross_time + Delta^(1)], most
    dominant first: ascending for falling inputs (the parallel conducting
    transistors make the combined response track the earliest would-be
    crossing) and descending for rising inputs (the series stack waits
    for the latest).  Both directions share the paper's crossover point
    [s_ij = Delta_i^(1) - Delta_j^(1)].  Raises [Invalid_argument] on an
    empty list or on mixed edge directions. *)

type correction = {
  delay_err : float;
      (** signed error (golden − algorithm) of the delay for the
          all-inputs-simultaneous near-step case, s *)
  trans_err : float;  (** same for the output transition time, s *)
}

val no_correction : correction

val calibrate_correction :
  ?opts:Proxim_spice.Options.t ->
  ?tau_step:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  Proxim_macromodel.Models.t ->
  edge:Proxim_measure.Measure.edge ->
  correction
(** Measure the worst case the algorithm gets wrong — a near-step
    transition ([tau_step], default 20 ps) applied to all inputs at the
    same time — on the golden simulator, run the (uncorrected) algorithm
    on the same stimulus, and record the signed differences. *)

type trans_composition =
  | Additive
      (** compose output transition times like delays (eq 4.5 verbatim):
          [t^(i) = t^(i-1) + (t2 - t1)] *)
  | Rate_additive
      (** compose transition {e rates}:
          [1/t^(i) = 1/t^(i-1) + 1/t2 - 1/t1].  Physically motivated —
          conduction paths superpose their currents, so slews add as
          rates — and measurably tighter on three-input workloads (see
          the ablation bench).  The two coincide for two inputs. *)

val evaluate :
  ?correction:correction ->
  ?trans_composition:trans_composition ->
  Proxim_macromodel.Models.t ->
  event list ->
  result
(** Run the algorithm.  All events must share one edge direction; at
    least one event is required.  The correction term (default
    {!no_correction}) is applied at full weight when the last in-window
    input is not later than the dominant one, decaying linearly to zero
    as its separation approaches the cumulative delay (§4). *)
