module Pwl = Proxim_waveform.Pwl
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Rootfind = Proxim_util.Rootfind

type glitch = { v_extreme : float; t_extreme : float; full_swing : bool }

let glitch ?opts ?load gate th ~fall_pin ~rise_pin ~tau_fall ~tau_rise ~sep =
  if fall_pin = rise_pin then invalid_arg "Inertial.glitch: same pin";
  let margin = 0.3e-9 in
  let t_fall =
    margin +. tau_fall +. Float.max 0. (tau_rise -. sep)
  in
  let t_rise = t_fall +. sep in
  let fall_stim = { Measure.edge = Measure.Fall; tau = tau_fall; cross_time = t_fall } in
  let rise_stim = { Measure.edge = Measure.Rise; tau = tau_rise; cross_time = t_rise } in
  let base = Gate.noncontrolling_sensitization gate ~pin:fall_pin in
  let inputs =
    Array.init gate.Gate.fan_in (fun p ->
      if p = fall_pin then Measure.ramp_of_stimulus th fall_stim
      else if p = rise_pin then Measure.ramp_of_stimulus th rise_stim
      else Pwl.constant base.(p))
  in
  let run = Measure.simulate ?opts ?load gate ~inputs in
  let out = run.Measure.out_wave in
  let t_extreme, v_extreme =
    Pwl.extremum out ~lo:(Pwl.start_time out) ~hi:(Pwl.end_time out)
  in
  { v_extreme; t_extreme; full_swing = v_extreme <= th.Vtc.vil }

let minimum_valid_separation ?opts ?load ?(search = (-3e-9, 1e-9)) gate th
    ~fall_pin ~rise_pin ~tau_fall ~tau_rise =
  let f sep =
    let g = glitch ?opts ?load gate th ~fall_pin ~rise_pin ~tau_fall ~tau_rise ~sep in
    g.v_extreme -. th.Vtc.vil
  in
  let lo, hi = search in
  match Rootfind.bisect ~tol:1e-13 ~f lo hi with
  | root -> root
  | exception Rootfind.No_bracket ->
    failwith
      "Inertial.minimum_valid_separation: glitch never crosses Vil in the \
       search window"
