lib/macromodel/liberty.mli: Single
