lib/macromodel/store.ml: Buffer Dual Fun List Models Printf Proxim_gates Proxim_measure Proxim_vtc Scanf Single String
