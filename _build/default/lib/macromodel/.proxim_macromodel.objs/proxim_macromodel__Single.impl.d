lib/macromodel/single.ml: Array Buffer List Option Printf Proxim_gates Proxim_measure Proxim_util Proxim_vtc Scanf String
