lib/macromodel/models.ml: Dual Hashtbl Proxim_gates Proxim_measure Single
