lib/macromodel/store.mli: Dual Models Proxim_gates Proxim_measure Proxim_spice Proxim_vtc Single
