lib/macromodel/liberty.ml: Array Buffer List Printf Proxim_gates Proxim_measure Proxim_util Single String
