lib/macromodel/dual.ml: Array Buffer Float Fun List Printf Proxim_gates Proxim_measure Proxim_util Proxim_vtc Single String
