lib/macromodel/single.mli: Proxim_gates Proxim_measure Proxim_spice Proxim_vtc
