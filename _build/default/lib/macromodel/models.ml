module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure

type t = {
  fan_in : int;
  name : string;
  assist : edge:Measure.edge -> pins:int list -> bool;
  delay1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  trans1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  delay2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
  trans2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
}

let memo tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.add tbl key v;
    v

let of_oracle ?opts ?load gate th =
  let single_cache = Hashtbl.create 64 in
  let dual_cache = Hashtbl.create 256 in
  let single ~pin ~edge ~tau =
    memo single_cache (pin, edge, tau) (fun () ->
      Measure.single_input ?opts ?load gate th ~pin ~edge ~tau)
  in
  let dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
    memo dual_cache (dom, other, edge, tau_dom, tau_other, sep) (fun () ->
      Dual.oracle ?opts ?load gate th ~dom ~other ~edge ~tau_dom ~tau_other
        ~sep)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "oracle:" ^ gate.Gate.name;
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 = (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.delay);
    trans1 =
      (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.out_transition);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep).Measure.delay);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep)
          .Measure.out_transition);
  }

let of_tables ?opts ?taus ?x_tau ?x_sep ?(share_others = false) gate th =
  let singles = Hashtbl.create 8 in
  let duals = Hashtbl.create 16 in
  let single ~pin ~edge =
    memo singles (pin, edge) (fun () ->
      Single.build ?taus ?opts gate th ~pin ~edge)
  in
  let dual ~dom ~other ~edge =
    (* with sharing, one representative other pin per dominant pin *)
    let other = if share_others then (if dom = 0 then 1 else 0) else other in
    memo duals (dom, other, edge) (fun () ->
      let single_dom = single ~pin:dom ~edge in
      let single_other = single ~pin:other ~edge in
      Dual.build ?x_tau ?x_sep ?opts gate th ~single_dom ~single_other ~other)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "tables:" ^ gate.Gate.name;
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 =
      (fun ~pin ~edge ~tau -> Single.delay (single ~pin ~edge) ~tau);
    trans1 =
      (fun ~pin ~edge ~tau -> Single.out_transition (single ~pin ~edge) ~tau);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.delay (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.out_transition (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
  }
