(** A uniform model interface consumed by the {!Proxim_core} algorithm.

    The `ProximityDelay` algorithm needs four oracles: single-input delay
    and transition time, and dual-input delay and transition time with
    respect to a dominant input.  This record abstracts over where they
    come from — the golden simulator (the paper's validation methodology)
    or the tabulated macromodels (the deployable artifact). *)

type t = {
  fan_in : int;
  name : string;
  assist : edge:Proxim_measure.Measure.edge -> pins:int list -> bool;
      (** do the switching transistors of [pins] assist each other in the
          driving network for this input edge (see
          {!Proxim_gates.Gate.switching_assist})?  Decides the dominance
          direction: assisting inputs -> earliest would-be response wins;
          gating inputs -> latest.  NAND-falling / NOR-rising assist;
          NAND-rising / NOR-falling gate. *)
  delay1 : pin:int -> edge:Proxim_measure.Measure.edge -> tau:float -> float;
      (** [Delta^(1)]: single-input delay, s *)
  trans1 : pin:int -> edge:Proxim_measure.Measure.edge -> tau:float -> float;
      (** [tau_out^(1)]: single-input output transition time, s *)
  delay2 :
    dom:int ->
    other:int ->
    edge:Proxim_measure.Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
      (** [Delta^(2)] with respect to the dominant input, s *)
  trans2 :
    dom:int ->
    other:int ->
    edge:Proxim_measure.Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
      (** [tau_out^(2)] with respect to the dominant input, s *)
}

val of_oracle :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  t
(** Every query runs a transient analysis (memoized on the exact query).
    This mirrors the paper's use of HSPICE as the dual-input macromodel. *)

val of_tables :
  ?opts:Proxim_spice.Options.t ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?share_others:bool ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  t
(** Queries are answered from {!Single} / {!Dual} tables, built lazily on
    first use of each (pin, edge) / (dom, other, edge) combination and
    memoized.  Building a dual table is expensive (hundreds of transient
    runs); once built, queries are microseconds.

    [share_others] (default false) implements the paper's Figure 4-2
    observation that [n] dual-input macromodels suffice in practice: one
    table per (dominant pin, edge), built against a representative other
    pin and reused for every other input — [2n] tables total instead of
    [n^2].  The ablation bench quantifies the accuracy cost. *)
