module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure
module Floatx = Proxim_util.Floatx

type table_axes = { slews : float array; loads : float array }

let default_axes =
  {
    slews = Floatx.logspace 50e-12 2e-9 6;
    loads = Floatx.logspace 20e-15 500e-15 6;
  }

let ns s = s *. 1e9
let pf f = f *. 1e12

let render_axis to_unit axis =
  String.concat ", "
    (Array.to_list (Array.map (fun v -> Printf.sprintf "%.5f" (to_unit v)) axis))

(* one lu_table body: rows indexed by slew, columns by load *)
let render_values buf ~axes ~f =
  Buffer.add_string buf "        values ( \\\n";
  Array.iteri
    (fun i slew ->
      let row =
        String.concat ", "
          (Array.to_list
             (Array.map (fun load -> Printf.sprintf "%.5f" (ns (f ~slew ~load)))
                axes.loads))
      in
      Buffer.add_string buf
        (Printf.sprintf "          \"%s\"%s \\\n" row
           (if i = Array.length axes.slews - 1 then "" else ",")))
    axes.slews;
  Buffer.add_string buf "        );\n"

let render_table buf ~axes ~group ~f =
  Buffer.add_string buf (Printf.sprintf "      %s (proxim_6x6) {\n" group);
  Buffer.add_string buf
    (Printf.sprintf "        index_1 (\"%s\");\n" (render_axis ns axes.slews));
  Buffer.add_string buf
    (Printf.sprintf "        index_2 (\"%s\");\n" (render_axis pf axes.loads));
  render_values buf ~axes ~f;
  Buffer.add_string buf "      }\n"

(* A rising INPUT produces a falling output on these inverting gates, so
   the Liberty "cell_fall" table is driven by the rise-edge macromodel. *)
let render_timing buf ~axes ~(rise : Single.t) ~(fall : Single.t) ~related =
  Buffer.add_string buf "    timing () {\n";
  Buffer.add_string buf
    (Printf.sprintf "      related_pin : \"%s\";\n" related);
  Buffer.add_string buf "      timing_sense : negative_unate;\n";
  render_table buf ~axes ~group:"cell_fall" ~f:(fun ~slew ~load ->
    Single.delay ~c_load:load rise ~tau:slew);
  render_table buf ~axes ~group:"fall_transition" ~f:(fun ~slew ~load ->
    Single.out_transition ~c_load:load rise ~tau:slew);
  render_table buf ~axes ~group:"cell_rise" ~f:(fun ~slew ~load ->
    Single.delay ~c_load:load fall ~tau:slew);
  render_table buf ~axes ~group:"rise_transition" ~f:(fun ~slew ~load ->
    Single.out_transition ~c_load:load fall ~tau:slew);
  Buffer.add_string buf "    }\n"

let cell ?(axes = default_axes) ~gate_name ~singles ~input_capacitance () =
  if singles = [] then invalid_arg "Liberty.cell: no models";
  let pins =
    List.sort_uniq compare (List.map Single.pin singles)
  in
  let find pin edge =
    List.find_opt
      (fun s -> Single.pin s = pin && Single.edge s = edge)
      singles
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "  cell (%s) {\n" gate_name);
  List.iter
    (fun pin ->
      let name = Gate.pin_name pin in
      Buffer.add_string buf (Printf.sprintf "    pin (%s) {\n" name);
      Buffer.add_string buf "      direction : input;\n";
      Buffer.add_string buf
        (Printf.sprintf "      capacitance : %.5f;\n" (pf input_capacitance));
      Buffer.add_string buf "    }\n")
    pins;
  Buffer.add_string buf "    pin (z) {\n";
  Buffer.add_string buf "      direction : output;\n";
  Buffer.add_string buf
    (Printf.sprintf "      function : \"%s\";\n"
       (* inverting gate; emit a NAND-style function over the pins *)
       ("!(" ^ String.concat " & " (List.map Gate.pin_name pins) ^ ")"));
  List.iter
    (fun pin ->
      match (find pin Measure.Rise, find pin Measure.Fall) with
      | Some rise, Some fall ->
        render_timing buf ~axes ~rise ~fall ~related:(Gate.pin_name pin)
      | None, _ | _, None -> ())
    pins;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  }\n";
  Buffer.contents buf

let library ~name ~cells =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "library (%s) {\n" name);
  Buffer.add_string buf "  delay_model : table_lookup;\n";
  Buffer.add_string buf "  time_unit : \"1ns\";\n";
  Buffer.add_string buf "  capacitive_load_unit (1, pf);\n";
  Buffer.add_string buf "  voltage_unit : \"1V\";\n";
  Buffer.add_string buf "  lu_table_template (proxim_6x6) {\n";
  Buffer.add_string buf "    variable_1 : input_net_transition;\n";
  Buffer.add_string buf "    variable_2 : total_output_net_capacitance;\n";
  Buffer.add_string buf "  }\n";
  List.iter (fun c -> Buffer.add_string buf c) cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
