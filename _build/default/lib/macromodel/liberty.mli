(** Export characterized gates as a minimal Liberty-style (.lib) text.

    Downstream STA tools consume NLDM tables: pin-to-pin delay and output
    transition indexed by input slew and output load.  This module renders
    the {!Single} macromodels in that shape — the dimensionless form makes
    the table generation a pure lookup, no further simulation needed.

    The output is intentionally a conservative subset of Liberty syntax
    (library/cell/pin/timing groups with [lu_table] templates); it is
    accepted by common readers for delay/slew purposes but carries no
    power, constraint or noise data.  Proximity (multi-input-switching)
    behaviour cannot be expressed in NLDM at all — exporting makes the
    modeling gap of classic flows concrete, which is the paper's point. *)

type table_axes = {
  slews : float array;  (** input transition times, s *)
  loads : float array;  (** output loads, F *)
}

val default_axes : table_axes
(** 6 slews (50 ps .. 2 ns, log) x 6 loads (20 fF .. 500 fF, log). *)

val cell :
  ?axes:table_axes ->
  gate_name:string ->
  singles:Single.t list ->
  input_capacitance:float ->
  unit ->
  string
(** Render one [cell] group.  Each pin with characterized rise and fall
    models gets a [timing] group per direction; pins are named by
    {!Proxim_gates.Gate.pin_name}.  Raises [Invalid_argument] when
    [singles] is empty. *)

val library : name:string -> cells:string list -> string
(** Wrap rendered cells in a [library] group with the unit declarations
    (ns, pF) matching the table values. *)
