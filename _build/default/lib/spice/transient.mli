(** Transient analysis.

    Time integration uses companion models for the capacitors (backward
    Euler or trapezoidal per {!Options.t}), an adaptive step bounded by the
    observed per-step voltage excursion, and forced breakpoints at every
    knot of every PWL source so that input corners are never stepped over.
    The initial condition is the DC operating point at [t = 0]. *)

type result = {
  times : float array;
  node_voltages : float array array;
      (** [node_voltages.(i)] is the full waveform of node [i] (indexed by
          netlist node id; entry 0 is the all-zero ground trace), sampled
          at [times] *)
  accepted_steps : int;
  rejected_steps : int;
  newton_iterations : int;  (** total across all accepted steps *)
}

exception No_convergence of string

val run :
  ?opts:Options.t ->
  ?overrides:(string * float) list ->
  Proxim_circuit.Netlist.t ->
  t_stop:float ->
  result
(** Simulate from the DC point at [t = 0] to [t_stop].  [overrides] pins
    the EMF of the named sources to constants for the whole run (useful to
    hold a gate input at a rail without rebuilding the netlist). *)

val probe : result -> Proxim_circuit.Netlist.node -> Proxim_waveform.Pwl.t
(** The waveform of one node as a PWL (breakpoints at the accepted time
    steps). *)

val probe_named :
  Proxim_circuit.Netlist.t -> result -> string -> Proxim_waveform.Pwl.t
(** Probe by node name; raises [Not_found] for unknown names. *)
