(** Damped Newton–Raphson iteration on an assembled MNA system.

    Shared by the DC and transient engines. *)

type outcome =
  | Converged of int  (** iteration count *)
  | Diverged of string

val solve :
  Mna.t ->
  opts:Options.t ->
  gmin:float ->
  source_values:float array ->
  cap_companions:(float * float) array option ->
  x:float array ->
  outcome
(** Iterate from the seed in [x], updating it in place.  Each update is
    damped so that no component moves more than [opts.newton_dv_limit].
    Convergence requires both the update and the KCL residual to fall
    under the respective tolerances. *)
