module Linalg = Proxim_util.Linalg

type outcome = Converged of int | Diverged of string

let solve sys ~opts ~gmin ~source_values ~cap_companions ~x =
  let n = Mna.size sys in
  let jac = Linalg.make_mat n in
  let res = Array.make n 0. in
  let rec iterate k =
    if k > opts.Options.newton_max_iter then
      Diverged "newton: iteration limit"
    else begin
      Mna.assemble sys ~x ~gmin ~source_values ~cap_companions ~jac ~res;
      let rhs = Array.map (fun r -> -.r) res in
      match Linalg.solve_in_place jac rhs with
      | exception Linalg.Singular -> Diverged "newton: singular jacobian"
      | () ->
        let dx = rhs in
        let dx_norm = Linalg.norm_inf dx in
        if not (Float.is_finite dx_norm) then
          Diverged "newton: non-finite update"
        else begin
          (* Damp only the node-voltage components; branch currents may
             legitimately jump by many amps-equivalents in one step. *)
          let nv = Mna.node_unknowns sys in
          let v_norm = ref 0. in
          for i = 0 to nv - 1 do
            v_norm := Float.max !v_norm (Float.abs dx.(i))
          done;
          let scale =
            if !v_norm > opts.Options.newton_dv_limit then
              opts.Options.newton_dv_limit /. !v_norm
            else 1.
          in
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. (scale *. dx.(i))
          done;
          let res_norm = Linalg.norm_inf res in
          if
            scale = 1.
            && !v_norm < opts.Options.newton_tol_v
            && res_norm < opts.Options.newton_tol_i
          then Converged k
          else iterate (k + 1)
        end
    end
  in
  iterate 1
