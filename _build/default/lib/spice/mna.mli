(** Modified Nodal Analysis system assembly.

    Internal to the simulator but exposed for white-box tests.  The unknown
    vector is laid out as the voltages of nodes [1 .. node_count-1]
    (ground eliminated) followed by one branch current per voltage source,
    in netlist declaration order.

    Sign conventions: the KCL residual of a node is the sum of currents
    {i leaving} the node; a voltage source's branch current flows from its
    positive terminal through the source to its negative terminal. *)

type t

val build : Proxim_circuit.Netlist.t -> t

val size : t -> int
(** Number of unknowns. *)

val node_unknowns : t -> int
(** Number of node-voltage unknowns (= node_count - 1). *)

val source_count : t -> int

val source_names : t -> string array
(** Branch order of the voltage sources. *)

val source_wave : t -> int -> Proxim_waveform.Pwl.t
(** Waveform of the [i]-th source. *)

val cap_count : t -> int

val cap_voltage : t -> x:float array -> int -> float
(** Voltage across the [i]-th capacitor ([va - vb]) under state [x]. *)

val voltage : t -> x:float array -> Proxim_circuit.Netlist.node -> float
(** Node voltage under state [x]; ground reads 0. *)

val assemble :
  t ->
  x:float array ->
  gmin:float ->
  source_values:float array ->
  cap_companions:(float * float) array option ->
  jac:Proxim_util.Linalg.mat ->
  res:float array ->
  unit
(** Fill [jac] and [res] (both zeroed first) with the linearization of the
    circuit equations at state [x].

    [source_values.(k)] is the instantaneous EMF of branch [k].
    [cap_companions] supplies per-capacitor companion models [(geq, ieq)]
    such that the branch current is [geq * vab - ieq]; [None] means DC
    analysis (capacitors open). *)
