module Netlist = Proxim_circuit.Netlist
module Mosfet = Proxim_device.Mosfet

type cap_info = { ca : int; cb : int; farads : float }

type vsrc_info = {
  vname : string;
  pos : int;
  neg : int;
  wave : Proxim_waveform.Pwl.t;
}

type mos_info = { params : Mosfet.params; mg : int; md : int; ms : int }

type res_info = { ra : int; rb : int; conductance : float }

type t = {
  n_nodes : int;  (** unknown node voltages *)
  mosfets : mos_info array;
  resistors : res_info array;
  caps : cap_info array;
  vsrcs : vsrc_info array;
}

let build net =
  let mosfets = ref [] and resistors = ref [] in
  let caps = ref [] and vsrcs = ref [] in
  Array.iter
    (fun d ->
      match d with
      | Netlist.Mosfet { params; g; d; s; _ } ->
        mosfets := { params; mg = g; md = d; ms = s } :: !mosfets
      | Netlist.Resistor { ohms; a; b; _ } ->
        resistors := { ra = a; rb = b; conductance = 1. /. ohms } :: !resistors
      | Netlist.Capacitor { farads; a; b; _ } ->
        caps := { ca = a; cb = b; farads } :: !caps
      | Netlist.Vsource { name; wave; pos; neg } ->
        vsrcs := { vname = name; pos; neg; wave } :: !vsrcs)
    net.Netlist.devices;
  {
    n_nodes = net.Netlist.node_count - 1;
    mosfets = Array.of_list (List.rev !mosfets);
    resistors = Array.of_list (List.rev !resistors);
    caps = Array.of_list (List.rev !caps);
    vsrcs = Array.of_list (List.rev !vsrcs);
  }

let node_unknowns t = t.n_nodes
let source_count t = Array.length t.vsrcs
let size t = t.n_nodes + source_count t
let source_names t = Array.map (fun v -> v.vname) t.vsrcs
let source_wave t i = t.vsrcs.(i).wave
let cap_count t = Array.length t.caps

let voltage _t ~x n = if n = 0 then 0. else x.(n - 1)

let cap_voltage t ~x i =
  let c = t.caps.(i) in
  voltage t ~x c.ca -. voltage t ~x c.cb

let assemble t ~x ~gmin ~source_values ~cap_companions ~jac ~res =
  let n = size t in
  for i = 0 to n - 1 do
    res.(i) <- 0.;
    Array.fill jac.(i) 0 n 0.
  done;
  let v node = voltage t ~x node in
  (* add [g] between the KCL row of [node] and the column of [col] *)
  let add_j node col g =
    if node > 0 && col > 0 then
      jac.(node - 1).(col - 1) <- jac.(node - 1).(col - 1) +. g
  in
  let add_r node i = if node > 0 then res.(node - 1) <- res.(node - 1) +. i in
  (* gmin from every node to ground *)
  for node = 1 to t.n_nodes do
    add_r node (gmin *. x.(node - 1));
    add_j node node gmin
  done;
  (* resistors *)
  Array.iter
    (fun { ra; rb; conductance = g } ->
      let i = g *. (v ra -. v rb) in
      add_r ra i;
      add_r rb (-.i);
      add_j ra ra g;
      add_j ra rb (-.g);
      add_j rb rb g;
      add_j rb ra (-.g))
    t.resistors;
  (* capacitors through their companion models *)
  (match cap_companions with
   | None -> ()
   | Some comps ->
     Array.iteri
       (fun k { ca; cb; _ } ->
         let geq, ieq = comps.(k) in
         let i = (geq *. (v ca -. v cb)) -. ieq in
         add_r ca i;
         add_r cb (-.i);
         add_j ca ca geq;
         add_j ca cb (-.geq);
         add_j cb cb geq;
         add_j cb ca (-.geq))
       t.caps);
  (* MOSFETs (with a gmin drain-source shunt: keeps internal stack nodes
     weakly tied when the whole channel is cut off, which conditions the
     Newton iteration) *)
  Array.iter
    (fun { params; mg; md; ms } ->
      let ish = gmin *. (v md -. v ms) in
      add_r md ish;
      add_r ms (-.ish);
      add_j md md gmin;
      add_j md ms (-.gmin);
      add_j ms ms gmin;
      add_j ms md (-.gmin);
      let e = Mosfet.eval params ~vg:(v mg) ~vd:(v md) ~vs:(v ms) in
      (* [e.id] flows into the drain terminal: it leaves node [md] through
         the channel and re-enters the circuit at node [ms] *)
      add_r md e.Mosfet.id;
      add_r ms (-.e.Mosfet.id);
      add_j md mg e.Mosfet.did_dvg;
      add_j md md e.Mosfet.did_dvd;
      add_j md ms e.Mosfet.did_dvs;
      add_j ms mg (-.e.Mosfet.did_dvg);
      add_j ms md (-.e.Mosfet.did_dvd);
      add_j ms ms (-.e.Mosfet.did_dvs))
    t.mosfets;
  (* voltage sources: KCL coupling plus the branch (EMF) equations *)
  Array.iteri
    (fun k { pos; neg; _ } ->
      let row = t.n_nodes + k in
      let ib = x.(row) in
      add_r pos ib;
      add_r neg (-.ib);
      if pos > 0 then jac.(pos - 1).(row) <- jac.(pos - 1).(row) +. 1.;
      if neg > 0 then jac.(neg - 1).(row) <- jac.(neg - 1).(row) -. 1.;
      res.(row) <- v pos -. v neg -. source_values.(k);
      if pos > 0 then jac.(row).(pos - 1) <- jac.(row).(pos - 1) +. 1.;
      if neg > 0 then jac.(row).(neg - 1) <- jac.(row).(neg - 1) -. 1.)
    t.vsrcs
