(** Solver options for the DC and transient engines. *)

type integration = Backward_euler | Trapezoidal

type t = {
  gmin : float;
      (** conductance tied from every node to ground to keep the Jacobian
          nonsingular when transistor stacks are cut off (default 1e-12 S) *)
  newton_tol_v : float;
      (** Newton update infinity-norm convergence threshold, V *)
  newton_tol_i : float;  (** KCL residual convergence threshold, A *)
  newton_max_iter : int;
  newton_dv_limit : float;
      (** per-iteration voltage-update damping limit, V *)
  h_min : float;  (** smallest transient step, s *)
  h_max : float;  (** largest transient step, s *)
  dv_step_target : float;
      (** accept a transient step only if no node moved more than this, V;
          controls waveform resolution *)
  integration : integration;
}

val default : t
(** Values tuned for 5 V CMOS gate cells with ps..ns waveforms. *)
