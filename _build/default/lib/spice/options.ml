type integration = Backward_euler | Trapezoidal

type t = {
  gmin : float;
  newton_tol_v : float;
  newton_tol_i : float;
  newton_max_iter : int;
  newton_dv_limit : float;
  h_min : float;
  h_max : float;
  dv_step_target : float;
  integration : integration;
}

let default =
  {
    gmin = 1e-12;
    newton_tol_v = 1e-8;
    newton_tol_i = 1e-10;
    newton_max_iter = 250;
    newton_dv_limit = 1.0;
    h_min = 1e-16;
    h_max = 2e-11;
    dv_step_target = 0.03;
    integration = Trapezoidal;
  }
