module Netlist = Proxim_circuit.Netlist
module Pwl = Proxim_waveform.Pwl

type result = {
  times : float array;
  node_voltages : float array array;
  accepted_steps : int;
  rejected_steps : int;
  newton_iterations : int;
}

exception No_convergence of string

(* Union of all source-waveform knots inside (0, t_stop), sorted. *)
let breakpoints sys ~t_stop ~overridden =
  let times = ref [] in
  for k = 0 to Mna.source_count sys - 1 do
    if not overridden.(k) then
      Array.iter
        (fun (t, _) -> if t > 0. && t < t_stop then times := t :: !times)
        (Pwl.points (Mna.source_wave sys k))
  done;
  let arr = Array.of_list (t_stop :: !times) in
  Array.sort compare arr;
  (* drop near-duplicates to keep steps well conditioned *)
  let out = ref [] in
  Array.iter
    (fun t ->
      match !out with
      | prev :: _ when t -. prev < 1e-16 -> ()
      | _ -> out := t :: !out)
    arr;
  Array.of_list (List.rev !out)

let run ?(opts = Options.default) ?(overrides = []) net ~t_stop =
  assert (t_stop > 0.);
  let sys = Mna.build net in
  let n = Mna.size sys in
  let names = Mna.source_names sys in
  let override_value =
    Array.map (fun name -> List.assoc_opt name overrides) names
  in
  let source_values_at t =
    Array.mapi
      (fun k ov ->
        match ov with
        | Some v -> v
        | None -> Pwl.value (Mna.source_wave sys k) t)
      override_value
  in
  (* initial condition: DC at t = 0 *)
  let dc_overrides =
    Array.to_list
      (Array.mapi (fun k name -> (name, (source_values_at 0.).(k))) names)
  in
  let op = Dc.operating_point ~opts ~overrides:dc_overrides net in
  let x = Array.copy op.Dc.raw in
  assert (Array.length x = n);
  let n_caps = Mna.cap_count sys in
  let cap_i = Array.make n_caps 0. in
  (* trapezoidal needs the capacitor current at the old time point; at the
     DC point it is zero by definition *)
  let cap_v = Array.init n_caps (fun k -> Mna.cap_voltage sys ~x k) in
  let cap_farads =
    (* recover C from companion construction: stash from the netlist *)
    let farads = ref [] in
    Array.iter
      (fun d ->
        match d with
        | Netlist.Capacitor { farads = f; _ } -> farads := f :: !farads
        | Netlist.Mosfet _ | Netlist.Resistor _ | Netlist.Vsource _ -> ())
      net.Netlist.devices;
    Array.of_list (List.rev !farads)
  in
  assert (Array.length cap_farads = n_caps);
  let bps = breakpoints sys ~t_stop ~overridden:(Array.map Option.is_some override_value) in
  let times_acc = ref [ 0. ] in
  let states_acc = ref [ Array.copy x ] in
  let accepted = ref 0 and rejected = ref 0 and newton_total = ref 0 in
  let t = ref 0. in
  let h = ref (Float.min opts.Options.h_max (t_stop /. 1000.)) in
  let bp_index = ref 0 in
  (* first step after a breakpoint (or t=0) integrates with backward Euler
     to avoid trapezoidal ringing on slope discontinuities *)
  let force_be = ref true in
  while !t < t_stop -. 1e-18 do
    (* clamp the step to the next breakpoint *)
    while !bp_index < Array.length bps && bps.(!bp_index) <= !t +. 1e-18 do
      incr bp_index
    done;
    let next_bp = if !bp_index < Array.length bps then bps.(!bp_index) else t_stop in
    let h_try = Float.min !h (next_bp -. !t) in
    let h_try = Float.max h_try opts.Options.h_min in
    let use_trap =
      (not !force_be) && opts.Options.integration = Options.Trapezoidal
    in
    let companions =
      Array.init n_caps (fun k ->
        let c = cap_farads.(k) in
        if use_trap then begin
          let geq = 2. *. c /. h_try in
          (geq, (geq *. cap_v.(k)) +. cap_i.(k))
        end
        else begin
          let geq = c /. h_try in
          (geq, geq *. cap_v.(k))
        end)
    in
    let t_new = !t +. h_try in
    let sv = source_values_at t_new in
    let x_try = Array.copy x in
    let outcome =
      Newton.solve sys ~opts ~gmin:opts.Options.gmin ~source_values:sv
        ~cap_companions:(Some companions) ~x:x_try
    in
    let max_dv =
      let m = ref 0. in
      for i = 0 to Mna.node_unknowns sys - 1 do
        m := Float.max !m (Float.abs (x_try.(i) -. x.(i)))
      done;
      !m
    in
    let step_ok =
      match outcome with
      | Newton.Converged _ ->
        max_dv <= opts.Options.dv_step_target || h_try <= opts.Options.h_min *. 1.01
      | Newton.Diverged _ -> false
    in
    (if Sys.getenv_opt "PROXIM_TRANDEBUG" <> None then
       let oc = match outcome with
         | Newton.Converged k -> Printf.sprintf "conv %d" k
         | Newton.Diverged m -> "div " ^ m
       in
       Printf.eprintf "t=%.5e h=%.3e be=%b dv=%.3e %s\n%!" !t h_try !force_be
         max_dv oc);
    if step_ok then begin
      (match outcome with
       | Newton.Converged k -> newton_total := !newton_total + k
       | Newton.Diverged _ -> ());
      (* update capacitor companion state *)
      Array.iteri
        (fun k (geq, ieq) ->
          let v_new = Mna.cap_voltage sys ~x:x_try k in
          cap_i.(k) <- (geq *. v_new) -. ieq;
          cap_v.(k) <- v_new)
        companions;
      Array.blit x_try 0 x 0 n;
      t := t_new;
      incr accepted;
      times_acc := !t :: !times_acc;
      states_acc := Array.copy x :: !states_acc;
      force_be := Float.abs (t_new -. next_bp) < 1e-18 && t_new < t_stop;
      (* grow the step when the solution barely moved *)
      if max_dv < 0.3 *. opts.Options.dv_step_target then
        h := Float.min opts.Options.h_max (!h *. 1.6)
    end
    else begin
      incr rejected;
      if h_try <= opts.Options.h_min *. 1.01 then begin
        let reason =
          match outcome with
          | Newton.Converged _ ->
            Printf.sprintf "dv %.3g V exceeds target" max_dv
          | Newton.Diverged m -> m
        in
        raise
          (No_convergence
             (Printf.sprintf
                "transient: step underflow at t = %.6g s (h = %.3g s): %s" !t
                h_try reason))
      end;
      h := Float.max opts.Options.h_min (h_try *. 0.4)
    end
  done;
  let times = Array.of_list (List.rev !times_acc) in
  let states = Array.of_list (List.rev !states_acc) in
  let node_voltages =
    Array.init net.Netlist.node_count (fun node ->
      Array.map (fun st -> Mna.voltage sys ~x:st node) states)
  in
  {
    times;
    node_voltages;
    accepted_steps = !accepted;
    rejected_steps = !rejected;
    newton_iterations = !newton_total;
  }

let probe result node =
  Pwl.of_samples ~times:result.times ~values:result.node_voltages.(node)

let probe_named net result name = probe result (Netlist.find_node net name)
