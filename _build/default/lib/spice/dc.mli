(** DC analyses: operating point and transfer-curve sweeps. *)

type solution = {
  voltages : float array;
      (** node voltages indexed by netlist node id (entry 0, ground, is 0) *)
  branch_currents : float array;  (** per voltage source, branch order *)
  raw : float array;
      (** the underlying MNA unknown vector — reusable as a [seed] *)
  newton_iterations : int;
}

exception No_convergence of string
(** Raised when every continuation strategy fails. *)

val operating_point :
  ?opts:Options.t ->
  ?overrides:(string * float) list ->
  ?seed:float array ->
  Proxim_circuit.Netlist.t ->
  solution
(** Solve the DC operating point.  Source EMFs default to their waveform
    value at [t = 0]; [overrides] replaces the EMF of the named sources.
    [seed] (a previous solution's [raw] vector) speeds up continuation
    sweeps.  Falls back automatically to gmin stepping and then source
    stepping when plain Newton fails. *)

val sweep :
  ?opts:Options.t ->
  ?overrides:(string * float) list ->
  Proxim_circuit.Netlist.t ->
  source:string ->
  values:float array ->
  solution array
(** [sweep net ~source ~values] computes one operating point per entry of
    [values], overriding the EMF of [source] and seeding each solve with
    the previous solution (continuation).  [overrides] pins the other
    sources.  Raises [Invalid_argument] if [source] does not name a
    voltage source. *)

val sweep_many :
  ?opts:Options.t ->
  ?overrides:(string * float) list ->
  Proxim_circuit.Netlist.t ->
  sources:string list ->
  values:float array ->
  solution array
(** Like {!sweep} but drives all the listed sources with the same swept
    value — this is how the multi-input VTCs of the paper's Figure 2-1 are
    produced (a subset of inputs switching together). *)
