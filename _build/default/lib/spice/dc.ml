module Netlist = Proxim_circuit.Netlist
module Pwl = Proxim_waveform.Pwl

type solution = {
  voltages : float array;
  branch_currents : float array;
  raw : float array;
  newton_iterations : int;
}

exception No_convergence of string

let base_source_values sys overrides =
  let names = Mna.source_names sys in
  Array.mapi
    (fun k name ->
      match List.assoc_opt name overrides with
      | Some v -> v
      | None -> Pwl.value (Mna.source_wave sys k) 0.)
    names

let make_solution sys net x iterations =
  let voltages =
    Array.init net.Netlist.node_count (fun n -> Mna.voltage sys ~x n)
  in
  let nv = Mna.node_unknowns sys in
  let branch_currents =
    Array.init (Mna.source_count sys) (fun k -> x.(nv + k))
  in
  { voltages; branch_currents; raw = Array.copy x; newton_iterations = iterations }

(* Continuation ladder: plain Newton; then gmin stepping (start with a
   heavily damped circuit and relax); then source stepping (grow the EMFs
   from 0).  Each rung reuses the best iterate found so far. *)
let operating_point ?(opts = Options.default) ?(overrides = []) ?seed net =
  let sys = Mna.build net in
  let n = Mna.size sys in
  let source_values = base_source_values sys overrides in
  let x =
    match seed with
    | Some s when Array.length s = n -> Array.copy s
    | Some _ | None -> Array.make n 0.
  in
  let attempt ~gmin ~sv x =
    Newton.solve sys ~opts ~gmin ~source_values:sv ~cap_companions:None ~x
  in
  match attempt ~gmin:opts.Options.gmin ~sv:source_values x with
  | Newton.Converged k -> make_solution sys net x k
  | Newton.Diverged _ ->
    (* gmin stepping *)
    let x = Array.make n 0. in
    let gmin_ladder = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; opts.Options.gmin ] in
    let gmin_ok =
      List.for_all
        (fun g ->
          match attempt ~gmin:g ~sv:source_values x with
          | Newton.Converged _ -> true
          | Newton.Diverged _ -> false)
        gmin_ladder
    in
    if gmin_ok then
      match attempt ~gmin:opts.Options.gmin ~sv:source_values x with
      | Newton.Converged k -> make_solution sys net x k
      | Newton.Diverged msg -> raise (No_convergence msg)
    else begin
      (* source stepping *)
      let x = Array.make n 0. in
      let steps = 20 in
      let ok = ref true in
      for s = 1 to steps do
        if !ok then begin
          let alpha = float_of_int s /. float_of_int steps in
          let sv = Array.map (fun v -> alpha *. v) source_values in
          match attempt ~gmin:opts.Options.gmin ~sv x with
          | Newton.Converged _ -> ()
          | Newton.Diverged _ -> ok := false
        end
      done;
      if !ok then
        match attempt ~gmin:opts.Options.gmin ~sv:source_values x with
        | Newton.Converged k -> make_solution sys net x k
        | Newton.Diverged msg -> raise (No_convergence msg)
      else raise (No_convergence "dc: all continuation strategies failed")
    end

let sweep_many ?(opts = Options.default) ?(overrides = []) net ~sources ~values
    =
  let sys = Mna.build net in
  let known = Array.to_list (Mna.source_names sys) in
  List.iter
    (fun s ->
      if not (List.mem s known) then
        invalid_arg ("Dc.sweep: unknown source " ^ s))
    sources;
  let n = Array.length values in
  let results = Array.make n None in
  let seed = ref None in
  for i = 0 to n - 1 do
    let overrides =
      List.map (fun s -> (s, values.(i))) sources @ overrides
    in
    let sol = operating_point ~opts ~overrides ?seed:!seed net in
    seed := Some sol.raw;
    results.(i) <- Some sol
  done;
  Array.map
    (function Some s -> s | None -> raise (No_convergence "dc sweep"))
    results

let sweep ?opts ?overrides net ~source ~values =
  sweep_many ?opts ?overrides net ~sources:[ source ] ~values
