lib/spice/mna.mli: Proxim_circuit Proxim_util Proxim_waveform
