lib/spice/transient.ml: Array Dc Float List Mna Newton Option Options Printf Proxim_circuit Proxim_waveform Sys
