lib/spice/dc.ml: Array List Mna Newton Options Proxim_circuit Proxim_waveform
