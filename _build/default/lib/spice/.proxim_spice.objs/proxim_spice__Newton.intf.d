lib/spice/newton.mli: Mna Options
