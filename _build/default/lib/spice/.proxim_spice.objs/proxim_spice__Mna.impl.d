lib/spice/mna.ml: Array List Proxim_circuit Proxim_device Proxim_waveform
