lib/spice/options.mli:
