lib/spice/newton.ml: Array Float Mna Options Proxim_util
