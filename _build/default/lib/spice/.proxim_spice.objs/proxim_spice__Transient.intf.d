lib/spice/transient.mli: Options Proxim_circuit Proxim_waveform
