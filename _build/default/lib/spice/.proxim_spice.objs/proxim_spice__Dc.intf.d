lib/spice/dc.mli: Options Proxim_circuit
