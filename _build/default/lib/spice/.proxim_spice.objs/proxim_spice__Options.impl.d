lib/spice/options.ml:
