module Pwl = Proxim_waveform.Pwl
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Transient = Proxim_spice.Transient

type edge = Rise | Fall

let opposite = function Rise -> Fall | Fall -> Rise

type stimulus = { edge : edge; tau : float; cross_time : float }

let input_threshold (th : Vtc.thresholds) = function
  | Rise -> th.Vtc.vil
  | Fall -> th.Vtc.vih

let ramp_of_stimulus (th : Vtc.thresholds) { edge; tau; cross_time } =
  assert (tau > 0.);
  let vdd = th.Vtc.vdd in
  match edge with
  | Rise ->
    let frac = th.Vtc.vil /. vdd in
    Pwl.ramp ~t0:(cross_time -. (frac *. tau)) ~width:tau ~v_from:0. ~v_to:vdd
  | Fall ->
    let frac = (vdd -. th.Vtc.vih) /. vdd in
    Pwl.ramp ~t0:(cross_time -. (frac *. tau)) ~width:tau ~v_from:vdd ~v_to:0.

let input_cross_time (th : Vtc.thresholds) wave edge =
  match edge with
  | Rise -> Pwl.first_crossing ~direction:Pwl.Rising wave th.Vtc.vil
  | Fall -> Pwl.first_crossing ~direction:Pwl.Falling wave th.Vtc.vih

let separation th ~i:(wi, ei) ~j:(wj, ej) =
  match (input_cross_time th wi ei, input_cross_time th wj ej) with
  | Some ti, Some tj -> Some (tj -. ti)
  | None, _ | _, None -> None

let output_delay th ~input_edge ~input_cross ~output =
  let crossing =
    match input_edge with
    | Rise -> Pwl.first_crossing ~direction:Pwl.Falling output th.Vtc.vih
    | Fall -> Pwl.first_crossing ~direction:Pwl.Rising output th.Vtc.vil
  in
  Option.map (fun t -> t -. input_cross) crossing

let output_transition_time th ~output_edge ~output =
  match output_edge with
  | Rise -> Pwl.transition_time output ~v_start:th.Vtc.vil ~v_end:th.Vtc.vih
  | Fall -> Pwl.transition_time output ~v_start:th.Vtc.vih ~v_end:th.Vtc.vil

type run = {
  instance : Gate.instance;
  result : Transient.result;
  out_wave : Pwl.t;
  in_waves : Pwl.t array;
}

let settle_margin = 3e-9

let simulate ?opts ?load ?t_stop gate ~inputs =
  let t_stop =
    match t_stop with
    | Some t -> t
    | None ->
      let latest =
        Array.fold_left
          (fun acc w -> Float.max acc (Pwl.end_time w))
          0. inputs
      in
      latest +. settle_margin
  in
  let instance = Gate.instantiate ?load gate ~inputs in
  let result = Transient.run ?opts instance.Gate.net ~t_stop in
  let out_wave = Transient.probe result instance.Gate.out in
  let in_waves =
    Array.map (fun node -> Transient.probe result node) instance.Gate.input_nodes
  in
  { instance; result; out_wave; in_waves }

type observation = { delay : float; out_transition : float }

let observe th ~run ~ref_edge ~ref_cross =
  let output = run.out_wave in
  let delay = output_delay th ~input_edge:ref_edge ~input_cross:ref_cross ~output in
  let out_transition =
    output_transition_time th ~output_edge:(opposite ref_edge) ~output
  in
  match (delay, out_transition) with
  | Some d, Some t -> { delay = d; out_transition = t }
  | None, _ -> failwith "Measure: output never crossed the delay threshold"
  | _, None -> failwith "Measure: output never completed its transition"

let stimuli_waves gate th ~stimuli =
  let fan_in = gate.Gate.fan_in in
  let switching = List.map fst stimuli in
  (match switching with
   | [] -> invalid_arg "Measure: no switching input"
   | pin :: _ -> ignore pin);
  List.iter
    (fun p ->
      if p < 0 || p >= fan_in then invalid_arg "Measure: pin out of range")
    switching;
  let base =
    match switching with
    | pin :: _ -> Gate.noncontrolling_sensitization gate ~pin
    | [] -> assert false
  in
  Array.init fan_in (fun p ->
    match List.assoc_opt p stimuli with
    | Some stim -> ramp_of_stimulus th stim
    | None -> Pwl.constant base.(p))

let multi_input ?opts ?load gate th ~stimuli ~ref_pin =
  let ref_stim =
    match List.assoc_opt ref_pin stimuli with
    | Some s -> s
    | None -> invalid_arg "Measure.multi_input: ref_pin not in stimuli"
  in
  (match stimuli with
   | [] -> invalid_arg "Measure.multi_input: empty stimuli"
   | (_, first) :: rest ->
     if List.exists (fun (_, s) -> s.edge <> first.edge) rest then
       invalid_arg "Measure.multi_input: mixed edge directions");
  let inputs = stimuli_waves gate th ~stimuli in
  let run = simulate ?opts ?load gate ~inputs in
  observe th ~run ~ref_edge:ref_stim.edge ~ref_cross:ref_stim.cross_time

let single_input ?opts ?load gate th ~pin ~edge ~tau =
  let cross_time = tau +. 0.2e-9 in
  multi_input ?opts ?load gate th
    ~stimuli:[ (pin, { edge; tau; cross_time }) ]
    ~ref_pin:pin
