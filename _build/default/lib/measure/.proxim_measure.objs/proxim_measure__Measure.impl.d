lib/measure/measure.ml: Array Float List Option Proxim_gates Proxim_spice Proxim_vtc Proxim_waveform
