lib/measure/measure.mli: Proxim_gates Proxim_spice Proxim_vtc Proxim_waveform
