(** Delay, transition-time and separation measurement (the paper's §2
    conventions), stimulus construction, and the golden-reference runner
    that plays the role HSPICE played in the paper.

    Measurement conventions, for the chosen threshold pair
    [(Vil, Vih)] ({!Proxim_vtc.Vtc.thresholds}):

    - a {b rising input} is timed at its [Vil] crossing; the (falling)
      output is timed at its [Vih] crossing;
    - a {b falling input} is timed at its [Vih] crossing; the (rising)
      output is timed at its [Vil] crossing;
    - output transition time is measured between [Vil] and [Vih];
    - the separation [s_ij] between two inputs is the difference of their
      input-threshold crossing times, [t_j - t_i] (positive when [j]
      switches after [i]). *)

type edge = Rise | Fall

val opposite : edge -> edge

type stimulus = {
  edge : edge;
  tau : float;  (** full-swing ramp width (the paper's "fall time"), s *)
  cross_time : float;  (** time at which the input crosses its threshold *)
}
(** A single input transition, positioned by its measurement-threshold
    crossing time (which is how the paper specifies separations). *)

val input_threshold : Proxim_vtc.Vtc.thresholds -> edge -> float
(** [Vil] for rising inputs, [Vih] for falling ones. *)

val ramp_of_stimulus :
  Proxim_vtc.Vtc.thresholds -> stimulus -> Proxim_waveform.Pwl.t
(** The full-swing PWL ramp realizing the stimulus: swings rail-to-rail
    over [tau] seconds, positioned so the input threshold is crossed at
    [cross_time]. *)

val input_cross_time :
  Proxim_vtc.Vtc.thresholds -> Proxim_waveform.Pwl.t -> edge -> float option
(** First threshold crossing of an arbitrary input waveform. *)

val separation :
  Proxim_vtc.Vtc.thresholds ->
  i:Proxim_waveform.Pwl.t * edge ->
  j:Proxim_waveform.Pwl.t * edge ->
  float option
(** [s_ij]: crossing time of [j] minus crossing time of [i]. *)

val output_delay :
  Proxim_vtc.Vtc.thresholds ->
  input_edge:edge ->
  input_cross:float ->
  output:Proxim_waveform.Pwl.t ->
  float option
(** Delay from a reference input (timed at [input_cross]) to the first
    output crossing of the matching output threshold in the matching
    direction ([Vih] falling for rising inputs, [Vil] rising for falling
    inputs), looking only at crossings after the start of the waveform. *)

val output_transition_time :
  Proxim_vtc.Vtc.thresholds ->
  output_edge:edge ->
  output:Proxim_waveform.Pwl.t ->
  float option
(** Transition time of the output between [Vil] and [Vih]. *)

(** {1 Golden-reference simulation} *)

type run = {
  instance : Proxim_gates.Gate.instance;
  result : Proxim_spice.Transient.result;
  out_wave : Proxim_waveform.Pwl.t;
  in_waves : Proxim_waveform.Pwl.t array;
}

val simulate :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  ?t_stop:float ->
  Proxim_gates.Gate.t ->
  inputs:Proxim_waveform.Pwl.t array ->
  run
(** Run the circuit simulator on the gate with the given input waveforms.
    [t_stop] defaults to the last input breakpoint plus a settling margin
    comfortably larger than any gate delay at the default load. *)

type observation = {
  delay : float;  (** pin-to-output delay w.r.t. the reference input, s *)
  out_transition : float;  (** output transition time, s *)
}

val single_input :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  pin:int ->
  edge:edge ->
  tau:float ->
  observation
(** The paper's single-input experiment: [pin] gets a full-swing ramp of
    width [tau]; every other input is pinned at its sensitizing level.
    Returns the measured delay [Delta^(1)] and output transition
    [tau_out^(1)].  Raises [Failure] if the output never completes its
    transition (which indicates a broken setup, not a physical outcome). *)

val multi_input :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  stimuli:(int * stimulus) list ->
  ref_pin:int ->
  observation
(** The general proximity experiment: each listed pin gets its stimulus,
    unlisted pins are pinned at sensitizing levels, and the delay is
    measured with respect to [ref_pin] (which must be listed).  All
    switching stimuli must share the same edge direction. *)
