(** Technology cards.

    The paper validates on a 5 V CMOS process whose exact card is not
    published; {!generic_5v} is a self-contained generic sub-micron card
    with the same qualitative behaviour (see DESIGN.md, substitutions).
    All experiments take the card as a parameter so alternative processes
    (or the alpha-power model) can be swapped in. *)

type t = {
  name : string;
  vdd : float;  (** supply, V *)
  vtn : float;  (** NMOS threshold, V (positive) *)
  vtp : float;  (** PMOS threshold, V (negative) *)
  kp_n : float;  (** NMOS process transconductance mu*Cox, A/V^2 *)
  kp_p : float;  (** PMOS process transconductance, A/V^2 *)
  lambda_n : float;  (** channel-length modulation, 1/V *)
  lambda_p : float;
  l_min : float;  (** drawn channel length, m *)
  cg_per_width : float;  (** gate capacitance per channel width, F/m *)
  cd_per_width : float;  (** diffusion capacitance per channel width, F/m *)
  kind : Proxim_device.Mosfet.model_kind;
}

val generic_5v : t
(** A 0.8 um-class 5 V card (Shichman–Hodges). *)

val generic_5v_alpha : t
(** Same card with the alpha-power model ([alpha = 1.3]), for the
    model-sensitivity ablation. *)

val nmos : t -> w:float -> Proxim_device.Mosfet.params
(** NMOS device parameters of width [w] at minimum length. *)

val pmos : t -> w:float -> Proxim_device.Mosfet.params

val k_n : t -> w:float -> float
(** The paper's strength [K] of an NMOS of width [w] (A/V^2). *)

val k_p : t -> w:float -> float
