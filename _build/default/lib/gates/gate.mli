(** Structural generators for static CMOS gates.

    A gate is described by its pull-down network over input pins as a
    series/parallel expression; the pull-up network is the dual.  This
    covers inverters, n-input NAND/NOR and AOI/OAI complex gates — every
    topology used in the paper and in the STA examples.

    Transistor-level detail follows the paper's setup: one NMOS/PMOS pair
    per pin, fixed widths per polarity, diffusion parasitics lumped as
    node-to-ground capacitors, an explicit load capacitor at the output,
    ideal PWL sources driving the inputs, and a stiff Vdd source. *)

type network =
  | Pin of int
  | Series of network list
  | Parallel of network list

val dual : network -> network
(** Series/parallel dual (pull-up from pull-down). *)

val network_pins : network -> int list
(** Sorted, deduplicated pin indices used in the expression. *)

type t = {
  name : string;
  tech : Tech.t;
  fan_in : int;
  pulldown : network;
  wn : float;  (** NMOS width, m *)
  wp : float;  (** PMOS width, m *)
  load : float;  (** default external output load, F *)
}

val nand : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> fan_in:int -> t
(** n-input NAND; pin 0 sits next to the output, pin [fan_in - 1] next to
    ground in the NMOS stack.  Defaults: [wn = 4 um], [wp = 8 um],
    [load = 100 fF].  Requires [fan_in >= 1]. *)

val nor : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> fan_in:int -> t
(** n-input NOR; pin 0 sits next to the output in the PMOS stack. *)

val inverter : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> t

val aoi21 : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> t
(** AND-OR-INVERT: pull-down [(p0 AND p1) OR p2]. *)

val oai21 : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> t

val custom :
  name:string -> ?wn:float -> ?wp:float -> ?load:float -> Tech.t ->
  pulldown:network -> t
(** Any series/parallel pull-down.  Pins must be numbered contiguously
    from 0; raises [Invalid_argument] otherwise. *)

val pin_name : int -> string
(** [pin_name 0 = "a"], ["b"], ... (after ["z"]: ["p26"], ["p27"], ...). *)

val of_name : Tech.t -> string -> (t, string) result
(** Gate factory by conventional name: ["inv"], ["nandN"], ["norN"]
    (N in 1..6), ["aoi21"], ["oai21"].  [Error] carries a human-readable
    message listing the accepted forms. *)

val input_capacitance : t -> float
(** Gate capacitance presented by one input pin, F. *)

val output_parasitic : t -> float
(** Diffusion capacitance contributed at the output node by the
    transistors whose drains connect to it, F.  The effective load the
    output sees is [load + output_parasitic]; macromodels use this sum in
    their dimensionless argument. *)

val switching_assist : t -> pins:int list -> output_rising:bool -> bool
(** Do the transistors of the switching [pins] {e assist} each other in
    the network that drives the output for this transition — i.e. does a
    single conducting one suffice (parallel branches), as opposed to all
    being required (a series stack)?  [output_rising = true] selects the
    pull-up network (inputs falling), [false] the pull-down.  This decides
    the dominance direction of the proximity algorithm: assisting inputs
    make the combined response track the {e earliest} would-be crossing,
    gating inputs the {e latest}.  NAND: assist on falling inputs, gate on
    rising; NOR: the mirror image.  Raises [Invalid_argument] on an empty
    pin list. *)

val noncontrolling_sensitization : t -> pin:int -> float array
(** Static levels (one per pin, V) that let the output depend on [pin]
    alone: the entry at [pin] itself is the non-controlling level too (the
    starting level from which that input will switch).  For a NAND this is
    all-Vdd; for a NOR all-0; for complex gates it picks the assignment
    that turns on series siblings and turns off parallel siblings of the
    pull-down path through [pin]. *)

type instance = {
  gate : t;
  net : Proxim_circuit.Netlist.t;
  out : Proxim_circuit.Netlist.node;
  vdd_node : Proxim_circuit.Netlist.node;
  input_nodes : Proxim_circuit.Netlist.node array;
  input_sources : string array;
      (** vsource name per pin, usable with simulator [overrides] *)
}

val instantiate :
  ?load:float -> t -> inputs:Proxim_waveform.Pwl.t array -> instance
(** Build a simulatable netlist with the given input waveforms (one per
    pin; raises [Invalid_argument] on arity mismatch).  [load] overrides
    the gate's default output load. *)

val emit :
  t ->
  builder:Proxim_circuit.Netlist.builder ->
  prefix:string ->
  out:Proxim_circuit.Netlist.node ->
  vdd:Proxim_circuit.Netlist.node ->
  inputs:Proxim_circuit.Netlist.node array ->
  unit
(** Add this gate's transistors and diffusion parasitics to an existing
    netlist under construction — the building block for flattening whole
    gate-level designs to one transistor-level netlist.  Device and
    internal-node names are prefixed with [prefix] to stay unique.  No
    sources and no external load are added.  Raises [Invalid_argument] on
    arity mismatch. *)
