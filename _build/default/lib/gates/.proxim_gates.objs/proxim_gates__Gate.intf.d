lib/gates/gate.mli: Proxim_circuit Proxim_waveform Tech
