lib/gates/tech.mli: Proxim_device
