lib/gates/tech.ml: Proxim_device
