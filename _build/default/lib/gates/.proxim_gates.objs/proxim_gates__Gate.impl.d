lib/gates/gate.ml: Array Char Hashtbl List Option Printf Proxim_circuit Proxim_waveform String Tech
