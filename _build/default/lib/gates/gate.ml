module Netlist = Proxim_circuit.Netlist
module Pwl = Proxim_waveform.Pwl

type network = Pin of int | Series of network list | Parallel of network list

let rec dual = function
  | Pin i -> Pin i
  | Series l -> Parallel (List.map dual l)
  | Parallel l -> Series (List.map dual l)

let network_pins nw =
  let rec collect acc = function
    | Pin i -> i :: acc
    | Series l | Parallel l -> List.fold_left collect acc l
  in
  List.sort_uniq compare (collect [] nw)

type t = {
  name : string;
  tech : Tech.t;
  fan_in : int;
  pulldown : network;
  wn : float;
  wp : float;
  load : float;
}

let default_wn = 4e-6
let default_wp = 8e-6
let default_load = 100e-15

let validate_pins nw =
  let pins = network_pins nw in
  let expected = List.init (List.length pins) (fun i -> i) in
  if pins <> expected then
    invalid_arg "Gate: pins must be numbered contiguously from 0";
  List.length pins

let custom ~name ?(wn = default_wn) ?(wp = default_wp) ?(load = default_load)
    tech ~pulldown =
  let fan_in = validate_pins pulldown in
  { name; tech; fan_in; pulldown; wn; wp; load }

let nand ?wn ?wp ?load tech ~fan_in =
  assert (fan_in >= 1);
  let pulldown = Series (List.init fan_in (fun i -> Pin i)) in
  custom ~name:(Printf.sprintf "nand%d" fan_in) ?wn ?wp ?load tech ~pulldown

let nor ?wn ?wp ?load tech ~fan_in =
  assert (fan_in >= 1);
  let pulldown = Parallel (List.init fan_in (fun i -> Pin i)) in
  custom ~name:(Printf.sprintf "nor%d" fan_in) ?wn ?wp ?load tech ~pulldown

let inverter ?wn ?wp ?load tech =
  custom ~name:"inv" ?wn ?wp ?load tech ~pulldown:(Pin 0)

let aoi21 ?wn ?wp ?load tech =
  custom ~name:"aoi21" ?wn ?wp ?load tech
    ~pulldown:(Parallel [ Series [ Pin 0; Pin 1 ]; Pin 2 ])

let oai21 ?wn ?wp ?load tech =
  custom ~name:"oai21" ?wn ?wp ?load tech
    ~pulldown:(Series [ Parallel [ Pin 0; Pin 1 ]; Pin 2 ])

let pin_name i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "p%d" i

let of_name tech name =
  let fail () =
    Error
      (Printf.sprintf
         "unknown gate %s (expected inv, nandN or norN with N in 1..6, \
          aoi21, oai21)"
         name)
  in
  match String.lowercase_ascii name with
  | "inv" | "not" -> Ok (inverter tech)
  | "aoi21" -> Ok (aoi21 tech)
  | "oai21" -> Ok (oai21 tech)
  | s ->
    let with_prefix prefix mk =
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        match int_of_string_opt (String.sub s plen (String.length s - plen)) with
        | Some n when n >= 1 && n <= 6 -> Some (Ok (mk n))
        | Some _ | None -> Some (fail ())
      else None
    in
    let nand_result = with_prefix "nand" (fun n -> nand tech ~fan_in:n) in
    let nor_result = with_prefix "nor" (fun n -> nor tech ~fan_in:n) in
    (match (nand_result, nor_result) with
     | Some r, _ | _, Some r -> r
     | None, None -> fail ())

let input_capacitance g =
  g.tech.Tech.cg_per_width *. (g.wn +. g.wp)

(* Number of transistors whose diffusion touches the [top] (respectively
   [bottom]) terminal of a series/parallel expression. *)
let rec touching_top = function
  | Pin _ -> 1
  | Parallel l -> List.fold_left (fun acc c -> acc + touching_top c) 0 l
  | Series [] -> 0
  | Series (first :: _) -> touching_top first

let rec touching_bottom = function
  | Pin _ -> 1
  | Parallel l -> List.fold_left (fun acc c -> acc + touching_bottom c) 0 l
  | Series [] -> 0
  | Series l -> (
    match List.rev l with [] -> 0 | last :: _ -> touching_bottom last)

let output_parasitic g =
  (* the pull-down hangs from the output by its top, the pull-up reaches
     the output at its bottom *)
  let n_down = touching_top g.pulldown in
  let n_up = touching_bottom (dual g.pulldown) in
  g.tech.Tech.cd_per_width
  *. ((float_of_int n_down *. g.wn) +. (float_of_int n_up *. g.wp))

(* Sensitization: walk the pull-down expression; the subtree containing
   [pin] recurses, series siblings are forced conducting (NMOS gates high)
   and parallel siblings forced non-conducting (NMOS gates low). *)
let noncontrolling_sensitization g ~pin =
  let vdd = g.tech.Tech.vdd in
  let levels = Array.make g.fan_in nan in
  let rec contains = function
    | Pin i -> i = pin
    | Series l | Parallel l -> List.exists contains l
  in
  let set_all level nw =
    List.iter (fun i -> levels.(i) <- level) (network_pins nw)
  in
  let rec walk nw =
    match nw with
    | Pin i -> assert (i = pin)
    | Series l ->
      List.iter
        (fun child -> if contains child then walk child else set_all vdd child)
        l
    | Parallel l ->
      List.iter
        (fun child -> if contains child then walk child else set_all 0. child)
        l
  in
  if pin < 0 || pin >= g.fan_in then invalid_arg "noncontrolling_sensitization";
  walk g.pulldown;
  (* the switching pin's own "stable" level is its non-controlling value in
     the pull-down network: conducting for series context = vdd start?  The
     paper starts a NAND input at Vdd (non-controlling is high for NAND).
     For the pin itself we report the level at which the pull-down path is
     blocked only by this pin: for NMOS that is 0 -> the pin's rest level
     before a rising transition.  Report vdd (the non-controlling level for
     series stacks) so NAND matches the paper; complex gates get the level
     that keeps their own branch conducting. *)
  levels.(pin) <- vdd;
  levels

(* Does the network conduct under a boolean pin assignment? *)
let rec network_conducts nw ~on =
  match nw with
  | Pin p -> on p
  | Series l -> List.for_all (fun c -> network_conducts c ~on) l
  | Parallel l -> List.exists (fun c -> network_conducts c ~on) l

let switching_assist g ~pins ~output_rising =
  let first =
    match pins with
    | [] -> invalid_arg "Gate.switching_assist: no switching pins"
    | p :: _ -> p
  in
  let vdd = g.tech.Tech.vdd in
  let base = noncontrolling_sensitization g ~pin:first in
  let driving_network, stable_on =
    if output_rising then
      (* inputs falling -> pull-up drives; a stable pin's PMOS conducts
         when held low *)
      (dual g.pulldown, fun p -> base.(p) < vdd /. 2.)
    else (g.pulldown, fun p -> base.(p) > vdd /. 2.)
  in
  let on p = if List.mem p pins then p = first else stable_on p in
  network_conducts driving_network ~on


type instance = {
  gate : t;
  net : Netlist.t;
  out : Netlist.node;
  vdd_node : Netlist.node;
  input_nodes : Netlist.node array;
  input_sources : string array;
}

(* Add the transistors and diffusion parasitics of one gate to a netlist
   builder.  [extra_load] (if any) is folded into the output parasitic
   capacitor rather than emitted separately. *)
let emit_into g ~builder:b ~prefix ~out ~vdd ~inputs:input_nodes ~extra_load =
  if Array.length input_nodes <> g.fan_in then
    invalid_arg "Gate.emit: arity mismatch";
  let parasitic = Hashtbl.create 8 in
  let add_parasitic node farads =
    if node <> Netlist.ground && node <> vdd then begin
      let cur = Option.value ~default:0. (Hashtbl.find_opt parasitic node) in
      Hashtbl.replace parasitic node (cur +. farads)
    end
  in
  let fresh_node =
    let counter = ref 0 in
    fun stack ->
      incr counter;
      Netlist.node b (Printf.sprintf "%s%s%d" prefix stack !counter)
  in
  let mos_counter = ref 0 in
  let emit_mos params ~g:gn ~d ~s ~w =
    incr mos_counter;
    Netlist.add_mosfet b
      ~name:(Printf.sprintf "%sm%d" prefix !mos_counter)
      ~params ~g:gn ~d ~s;
    let cd = g.tech.Tech.cd_per_width *. w in
    add_parasitic d cd;
    add_parasitic s cd
  in
  (* wire a series/parallel expression between [top] and [bottom] *)
  let rec build nw ~top ~bottom ~params_of ~w ~stack =
    match nw with
    | Pin i -> emit_mos (params_of ()) ~g:input_nodes.(i) ~d:top ~s:bottom ~w
    | Parallel l ->
      List.iter (fun child -> build child ~top ~bottom ~params_of ~w ~stack) l
    | Series l ->
      let rec chain current = function
        | [] -> assert false
        | [ last ] -> build last ~top:current ~bottom ~params_of ~w ~stack
        | child :: rest ->
          let mid = fresh_node stack in
          build child ~top:current ~bottom:mid ~params_of ~w ~stack;
          chain mid rest
      in
      chain top l
  in
  build g.pulldown ~top:out ~bottom:Netlist.ground
    ~params_of:(fun () -> Tech.nmos g.tech ~w:g.wn)
    ~w:g.wn ~stack:"n";
  build (dual g.pulldown) ~top:vdd ~bottom:out
    ~params_of:(fun () -> Tech.pmos g.tech ~w:g.wp)
    ~w:g.wp ~stack:"p";
  add_parasitic out extra_load;
  Hashtbl.iter
    (fun node farads ->
      Netlist.add_capacitor b
        ~name:(Printf.sprintf "%sc_node%d" prefix node)
        ~farads ~a:node ~b:Netlist.ground)
    parasitic

let emit g ~builder ~prefix ~out ~vdd ~inputs =
  emit_into g ~builder ~prefix ~out ~vdd ~inputs ~extra_load:0.

let instantiate ?load g ~inputs =
  if Array.length inputs <> g.fan_in then
    invalid_arg "Gate.instantiate: arity mismatch";
  let load = match load with Some l -> l | None -> g.load in
  let b = Netlist.create () in
  let out = Netlist.node b "z" in
  let vdd_node = Netlist.node b "vdd" in
  let input_nodes =
    Array.init g.fan_in (fun i -> Netlist.node b (pin_name i))
  in
  let input_sources = Array.init g.fan_in (fun i -> "Vin_" ^ pin_name i) in
  emit_into g ~builder:b ~prefix:"" ~out ~vdd:vdd_node ~inputs:input_nodes
    ~extra_load:load;
  Netlist.add_vdc b ~name:"Vdd" ~volts:g.tech.Tech.vdd ~pos:vdd_node
    ~neg:Netlist.ground;
  Array.iteri
    (fun i wave ->
      Netlist.add_vsource b ~name:input_sources.(i) ~wave
        ~pos:input_nodes.(i) ~neg:Netlist.ground)
    inputs;
  let net = Netlist.freeze b in
  { gate = g; net; out; vdd_node; input_nodes; input_sources }
