module Mosfet = Proxim_device.Mosfet

type t = {
  name : string;
  vdd : float;
  vtn : float;
  vtp : float;
  kp_n : float;
  kp_p : float;
  lambda_n : float;
  lambda_p : float;
  l_min : float;
  cg_per_width : float;
  cd_per_width : float;
  kind : Mosfet.model_kind;
}

let generic_5v =
  {
    name = "generic-0.8um-5V";
    vdd = 5.0;
    vtn = 0.7;
    vtp = -0.8;
    kp_n = 120e-6;
    kp_p = 40e-6;
    lambda_n = 0.05;
    lambda_p = 0.05;
    l_min = 0.8e-6;
    cg_per_width = 2.0e-9;
    cd_per_width = 1.5e-9;
    kind = Mosfet.Shichman_hodges;
  }

let generic_5v_alpha =
  {
    generic_5v with
    name = "generic-0.8um-5V-alpha1.3";
    kind = Mosfet.Alpha_power 1.3;
  }

let nmos t ~w =
  {
    Mosfet.polarity = Mosfet.Nmos;
    vt0 = t.vtn;
    kp = t.kp_n;
    lambda = t.lambda_n;
    w;
    l = t.l_min;
    kind = t.kind;
  }

let pmos t ~w =
  {
    Mosfet.polarity = Mosfet.Pmos;
    vt0 = t.vtp;
    kp = t.kp_p;
    lambda = t.lambda_p;
    w;
    l = t.l_min;
    kind = t.kind;
  }

let k_n t ~w = Mosfet.k_strength (nmos t ~w)
let k_p t ~w = Mosfet.k_strength (pmos t ~w)
