(** Deterministic pseudo-random numbers (SplitMix64).

    The validation experiments draw random input configurations; to keep
    `dune runtest` and the benches reproducible we carry our own small,
    well-understood generator instead of the ambient [Random] state. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val next_int64 : t -> int64
(** The raw 64-bit SplitMix64 output. *)

val float : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> lo:int -> hi:int -> int
(** Uniform draw in [\[lo, hi\]] inclusive.  Requires [lo <= hi]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
