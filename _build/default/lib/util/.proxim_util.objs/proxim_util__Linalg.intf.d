lib/util/linalg.mli:
