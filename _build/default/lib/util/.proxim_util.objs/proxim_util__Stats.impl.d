lib/util/stats.ml: Array Float Floatx Format Stdlib
