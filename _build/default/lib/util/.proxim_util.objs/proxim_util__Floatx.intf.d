lib/util/floatx.mli:
