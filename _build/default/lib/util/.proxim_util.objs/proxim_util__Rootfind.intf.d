lib/util/rootfind.mli:
