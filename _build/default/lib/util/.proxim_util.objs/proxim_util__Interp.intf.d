lib/util/interp.mli:
