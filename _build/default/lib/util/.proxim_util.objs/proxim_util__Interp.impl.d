lib/util/interp.ml: Array Floatx
