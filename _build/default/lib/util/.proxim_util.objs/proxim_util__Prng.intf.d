lib/util/prng.mli:
