(** Descriptive statistics for the validation experiments (Table 5-1). *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Requires a non-empty array.  For [n = 1] the standard deviation is 0. *)

val mean : float array -> float
val std : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Does not modify [xs]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as [mean/std/min/max] percentages-friendly text. *)
