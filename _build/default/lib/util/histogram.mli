(** Fixed-bin histograms with a textual bar-chart renderer.

    Used to regenerate the error-distribution bar charts of Fig 5-1. *)

type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

val create : lo:float -> hi:float -> bins:int -> float array -> t
(** [create ~lo ~hi ~bins xs] bins the samples into [bins] equal-width bins
    over [\[lo, hi)]; samples outside the range land in
    [underflow]/[overflow].  Requires [lo < hi] and [bins >= 1]. *)

val bin_edges : t -> float array
(** The [bins + 1] bin boundaries. *)

val total : t -> int
(** All samples including under/overflow. *)

val pp : Format.formatter -> t -> unit
(** Render one line per bin: range, count and a [#]-bar scaled so the
    fullest bin spans 50 characters. *)
