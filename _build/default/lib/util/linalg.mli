(** Dense linear algebra for the MNA solver.

    Circuits in this project have at most a dozen unknowns, so a dense
    LU factorization with partial pivoting is both the simplest and the
    fastest adequate tool.  Matrices are ordinary [float array array] in
    row-major order; all functions are safe to call repeatedly inside the
    Newton loop (factorizations allocate their own workspace). *)

type mat = float array array
type vec = float array

exception Singular
(** Raised when a factorization or solve meets an (almost) singular
    matrix; the caller (e.g. the DC solver) treats this as a convergence
    failure and retries with continuation aids. *)

val make_mat : int -> mat
(** [make_mat n] is a fresh [n] x [n] zero matrix. *)

val copy_mat : mat -> mat
(** Deep copy. *)

val mat_vec : mat -> vec -> vec
(** [mat_vec a x] is the product [a * x]. *)

val residual_norm : mat -> vec -> vec -> float
(** [residual_norm a x b] is [||a x - b||_inf], used in solver sanity
    assertions. *)

val lu_solve : mat -> vec -> vec
(** [lu_solve a b] solves [a x = b] by LU with partial pivoting.
    [a] and [b] are not modified.  Raises {!Singular} when a pivot falls
    below a tiny absolute threshold. *)

val solve_in_place : mat -> vec -> unit
(** [solve_in_place a b] factorizes [a] and overwrites [b] with the
    solution, destroying [a].  The no-copy variant used in inner loops.
    Raises {!Singular} as {!lu_solve}. *)

val norm_inf : vec -> float
(** Maximum absolute entry. *)
