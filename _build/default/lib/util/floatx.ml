let default_rtol = 1e-9
let default_atol = 1e-15

let approx_eq ?(rtol = default_rtol) ?(atol = default_atol) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let lerp a b t = a +. (t *. (b -. a))

let inv_lerp a b x =
  assert (a <> b);
  (x -. a) /. (b -. a)

let linspace a b n =
  assert (n >= 1);
  if n = 1 then [| a |]
  else
    let step = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i -> a +. (float_of_int i *. step))

let logspace a b n =
  assert (a > 0. && b > 0.);
  let la = log a and lb = log b in
  Array.map exp (linspace la lb n)

let is_finite x = Float.is_finite x

let sign x = if x > 0. then 1. else if x < 0. then -1. else 0.
