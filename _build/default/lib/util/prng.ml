type t = { mutable state : int64 }

let create seed = { state = seed }

(* SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, two multiplies
   and three xor-shifts per draw. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float t =
  (* 53 random mantissa bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let float t ~lo ~hi =
  assert (lo <= hi);
  lo +. (unit_float t *. (hi -. lo))

let int t ~lo ~hi =
  assert (lo <= hi);
  let span = Int64.of_int (hi - lo + 1) in
  let r = Int64.rem (Int64.logand (next_int64 t) Int64.max_int) span in
  lo + Int64.to_int r

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~lo:0 ~hi:i in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
