(** Small floating-point helpers shared across the project.

    All simulator and model code works in SI units (volts, seconds, farads,
    amperes).  Time spans range from femtoseconds to microseconds, so most
    comparisons must be made with a relative tolerance; this module
    centralizes those conventions. *)

val default_rtol : float
(** Relative tolerance used by {!approx_eq} when none is given (1e-9). *)

val default_atol : float
(** Absolute tolerance used by {!approx_eq} when none is given (1e-15). *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_eq a b] is [true] when [|a - b| <= atol + rtol * max |a| |b|]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [\[lo, hi\]].
    Requires [lo <= hi]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] is the affine blend [a + t * (b - a)]; [t] need not lie in
    [\[0, 1\]] (extrapolation is deliberate). *)

val inv_lerp : float -> float -> float -> float
(** [inv_lerp a b x] is the parameter [t] such that [lerp a b t = x].
    Requires [a <> b]. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced samples from [a] to [b] inclusive.
    Requires [n >= 2] (or [n = 1], which yields [[|a|]]). *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] logarithmically spaced samples from [a] to [b]
    inclusive.  Requires [a > 0.], [b > 0.]. *)

val is_finite : float -> bool
(** [is_finite x] is [true] iff [x] is neither infinite nor NaN. *)

val sign : float -> float
(** [sign x] is [-1.], [0.] or [1.] according to the sign of [x]. *)
