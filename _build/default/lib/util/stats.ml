type summary = { n : int; mean : float; std : float; min : float; max : float }

let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let std xs =
  let n = Array.length xs in
  assert (n > 0);
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let summarize xs =
  let n = Array.length xs in
  assert (n > 0);
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  { n; mean = mean xs; std = std xs; min = mn; max = mx }

let percentile xs p =
  assert (Array.length xs > 0);
  assert (p >= 0. && p <= 100.);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    Floatx.lerp sorted.(lo) sorted.(hi) (rank -. float_of_int lo)
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g std=%.4g min=%.4g max=%.4g" s.n s.mean
    s.std s.min s.max
