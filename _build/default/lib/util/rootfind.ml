exception No_bracket

let default_tol a b = Float.max 1e-18 (1e-13 *. Float.abs (b -. a))

let bisect ?tol ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then raise No_bracket
  else begin
    let tol = match tol with Some t -> t | None -> default_tol a b in
    let rec loop a fa b i =
      let m = 0.5 *. (a +. b) in
      if Float.abs (b -. a) <= tol || i >= max_iter then m
      else
        let fm = f m in
        if fm = 0. then m
        else if fa *. fm < 0. then loop a fa m (i + 1)
        else loop m fm b (i + 1)
    in
    loop a fa b 0
  end

(* Brent's method, following the classic Numerical Recipes formulation. *)
let brent ?tol ?(max_iter = 100) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then raise No_bracket
  else begin
    let tol = match tol with Some t -> t | None -> default_tol a b in
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         if (!fb > 0. && !fc > 0.) || (!fb < 0. && !fc < 0.) then begin
           c := !a;
           fc := !fa;
           d := !b -. !a;
           e := !d
         end;
         if Float.abs !fc < Float.abs !fb then begin
           a := !b;
           b := !c;
           c := !a;
           fa := !fb;
           fb := !fc;
           fc := !fa
         end;
         let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if Float.abs xm <= tol1 || !fb = 0. then begin
           result := !b;
           raise Exit
         end;
         if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then
               let p = 2. *. xm *. s in
               let q = 1. -. s in
               (p, q)
             else begin
               let q = !fa /. !fc and r = !fb /. !fc in
               let p =
                 s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.)))
               in
               let q = (q -. 1.) *. (r -. 1.) *. (s -. 1.) in
               (p, q)
             end
           in
           let p, q = if p > 0. then (p, -.q) else (-.p, q) in
           let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
           let min2 = Float.abs (!e *. q) in
           if 2. *. p < Float.min min1 min2 then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := !d
           end
         end
         else begin
           d := xm;
           e := !d
         end;
         a := !b;
         fa := !fb;
         if Float.abs !d > tol1 then b := !b +. !d
         else b := !b +. (if xm >= 0. then tol1 else -.tol1);
         fb := f !b
       done;
       result := !b
     with Exit -> ());
    !result
  end

let find_bracket ~f ~lo ~hi ~n =
  assert (n >= 1);
  let step = (hi -. lo) /. float_of_int n in
  let rec scan i x fx =
    if i >= n then None
    else
      let x' = if i = n - 1 then hi else x +. step in
      let fx' = f x' in
      if fx = 0. then Some (x, x)
      else if fx *. fx' <= 0. then Some (x, x')
      else scan (i + 1) x' fx'
  in
  scan 0 lo (f lo)
