type mat = float array array
type vec = float array

exception Singular

let pivot_floor = 1e-300

let make_mat n = Array.make_matrix n n 0.

let copy_mat a = Array.map Array.copy a

let mat_vec a x =
  let n = Array.length a in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let row = a.(i) in
    let acc = ref 0. in
    for j = 0 to Array.length row - 1 do
      acc := !acc +. (row.(j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. v

let residual_norm a x b =
  let ax = mat_vec a x in
  let n = Array.length b in
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (ax.(i) -. b.(i)))
  done;
  !m

(* Classic LU with partial pivoting, factorizing [a] in place; [perm]
   records row exchanges. *)
let lu_factor_in_place a =
  let n = Array.length a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* pivot search *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs a.(k).(k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs a.(i).(k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < pivot_floor then raise Singular;
    if !pivot_row <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!pivot_row);
      a.(!pivot_row) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tp
    end;
    let akk = a.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = a.(i).(k) /. akk in
      a.(i).(k) <- factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
        done
    done
  done;
  perm

let lu_back_substitute a perm b =
  let n = Array.length a in
  let x = Array.make n 0. in
  (* forward: Ly = Pb *)
  for i = 0 to n - 1 do
    let acc = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      acc := !acc -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* backward: Ux = y *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(i).(i)
  done;
  x

let lu_solve a b =
  let a = copy_mat a in
  let perm = lu_factor_in_place a in
  lu_back_substitute a perm b

let solve_in_place a b =
  let perm = lu_factor_in_place a in
  let x = lu_back_substitute a perm b in
  Array.blit x 0 b 0 (Array.length b)
