type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let create ~lo ~hi ~bins xs =
  assert (lo < hi);
  assert (bins >= 1);
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let place x =
    if x < lo then incr underflow
    else if x >= hi then
      if x = hi then counts.(bins - 1) <- counts.(bins - 1) + 1
      else incr overflow
    else begin
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.min i (bins - 1) in
      counts.(i) <- counts.(i) + 1
    end
  in
  Array.iter place xs;
  { lo; hi; counts; underflow = !underflow; overflow = !overflow }

let bin_edges t =
  let bins = Array.length t.counts in
  let width = (t.hi -. t.lo) /. float_of_int bins in
  Array.init (bins + 1) (fun i -> t.lo +. (float_of_int i *. width))

let total t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts

let pp ppf t =
  let edges = bin_edges t in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  if t.underflow > 0 then
    Format.fprintf ppf "      < %8.3g : %4d@." t.lo t.underflow;
  Array.iteri
    (fun i c ->
      let bar = String.make (c * 50 / peak) '#' in
      Format.fprintf ppf "[%8.3g, %8.3g): %4d %s@." edges.(i) edges.(i + 1) c
        bar)
    t.counts;
  if t.overflow > 0 then
    Format.fprintf ppf "      >=%8.3g : %4d@." t.hi t.overflow
