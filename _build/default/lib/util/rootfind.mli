(** Scalar root finding.

    Used for threshold-crossing refinement (unity-gain points of a VTC,
    waveform/threshold intersections) where the function is cheap and a
    bracketing interval is known. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f a b] finds [x] in [\[a, b\]] with [f x = 0] by bisection.
    Requires [f a] and [f b] to have opposite signs (zero endpoints are
    returned immediately); raises {!No_bracket} otherwise.  [tol] is the
    absolute interval width at which iteration stops (default [1e-15] of
    the initial width, floored at machine epsilon scale). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f a b] is Brent's method (inverse quadratic interpolation with
    bisection fallback) on the bracket [\[a, b\]].  Same contract as
    {!bisect}, converges much faster on smooth functions. *)

val find_bracket :
  f:(float -> float) -> lo:float -> hi:float -> n:int -> (float * float) option
(** [find_bracket ~f ~lo ~hi ~n] scans [n] equal subintervals of
    [\[lo, hi\]] and returns the first one across which [f] changes sign. *)
