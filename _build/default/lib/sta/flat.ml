module Netlist = Proxim_circuit.Netlist
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Pwl = Proxim_waveform.Pwl
module Transient = Proxim_spice.Transient

type t = {
  design : Design.t;
  net : Netlist.t;
  node_of_net : (string * Netlist.node) list;
  vdd_node : Netlist.node;
}

let all_nets design =
  let nets = Hashtbl.create 32 in
  let add n = if not (Hashtbl.mem nets n) then Hashtbl.add nets n () in
  List.iter add (Design.primary_inputs design);
  List.iter
    (fun (c : Design.cell) ->
      add c.Design.output_net;
      Array.iter add c.Design.input_nets)
    (Design.cells design);
  Hashtbl.fold (fun n () acc -> n :: acc) nets []
  |> List.sort compare

let shared_tech design =
  match Design.cells design with
  | [] -> invalid_arg "Flat.flatten: empty design"
  | first :: rest ->
    let tech = first.Design.gate.Gate.tech in
    List.iter
      (fun (c : Design.cell) ->
        if c.Design.gate.Gate.tech.Tech.name <> tech.Tech.name then
          invalid_arg "Flat.flatten: mixed technology cards")
      rest;
    tech

let flatten ?wire_cap design ~pi_waves =
  let tech = shared_tech design in
  List.iter
    (fun net ->
      if not (List.mem_assoc net pi_waves) then
        invalid_arg ("Flat.flatten: primary input without waveform: " ^ net))
    (Design.primary_inputs design);
  let b = Netlist.create () in
  let vdd_node = Netlist.node b "vdd" in
  let nets = all_nets design in
  let node_of_net = List.map (fun n -> (n, Netlist.node b n)) nets in
  let node net = List.assoc net node_of_net in
  (* cell transistors *)
  List.iter
    (fun (c : Design.cell) ->
      let inputs = Array.map node c.Design.input_nets in
      Gate.emit c.Design.gate ~builder:b
        ~prefix:(c.Design.name ^ "/")
        ~out:(node c.Design.output_net) ~vdd:vdd_node ~inputs)
    (Design.cells design);
  (* per-net loads: gate capacitance of reading pins + wire (+ pad),
     exactly what Design.fanout_load charges the driver with *)
  List.iter
    (fun net_name ->
      let pin_caps =
        List.fold_left
          (fun acc ((c : Design.cell), _pin) ->
            acc +. Gate.input_capacitance c.Design.gate)
          0.
          (Design.readers design ~net:net_name)
      in
      let wire = Design.fanout_load ?wire_cap design ~net:net_name -. pin_caps in
      let total = pin_caps +. wire in
      if total > 0. then
        Netlist.add_capacitor b
          ~name:("cnet_" ^ net_name)
          ~farads:total ~a:(node net_name) ~b:Netlist.ground)
    nets;
  (* sources *)
  Netlist.add_vdc b ~name:"Vdd" ~volts:tech.Tech.vdd ~pos:vdd_node
    ~neg:Netlist.ground;
  List.iter
    (fun pi ->
      let wave = List.assoc pi pi_waves in
      Netlist.add_vsource b ~name:("Vin_" ^ pi) ~wave ~pos:(node pi)
        ~neg:Netlist.ground)
    (Design.primary_inputs design);
  { design; net = Netlist.freeze b; node_of_net; vdd_node }

let simulate ?opts t ~t_stop = Transient.run ?opts t.net ~t_stop

let probe t result ~net =
  match List.assoc_opt net t.node_of_net with
  | Some node -> Transient.probe result node
  | None -> raise Not_found
