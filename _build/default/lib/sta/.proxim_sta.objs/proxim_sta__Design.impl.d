lib/sta/design.ml: Array Hashtbl List Option Proxim_gates
