lib/sta/sta.mli: Design Proxim_macromodel Proxim_measure Proxim_spice Proxim_vtc
