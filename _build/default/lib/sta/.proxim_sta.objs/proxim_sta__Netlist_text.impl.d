lib/sta/netlist_text.ml: Array Buffer Design Fun List Printf Proxim_gates String
