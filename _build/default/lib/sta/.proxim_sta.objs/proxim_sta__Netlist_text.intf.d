lib/sta/netlist_text.mli: Design Proxim_gates
