lib/sta/flat.mli: Design Proxim_circuit Proxim_spice Proxim_waveform
