lib/sta/design.mli: Proxim_gates
