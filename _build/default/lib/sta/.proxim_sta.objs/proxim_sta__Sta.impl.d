lib/sta/sta.ml: Array Design Fun Hashtbl List Option Printf Proxim_core Proxim_gates Proxim_macromodel Proxim_measure Proxim_vtc
