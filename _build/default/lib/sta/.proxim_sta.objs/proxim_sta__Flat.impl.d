lib/sta/flat.ml: Array Design Hashtbl List Proxim_circuit Proxim_gates Proxim_spice Proxim_waveform
