(** A small structural netlist text format for gate-level designs.

    {v
    # carry tree
    design carry_tree
    input a b c
    output carry
    cell u1 nand2 a b -> n1
    cell u2 nand2 a c -> n2
    cell u3 nand2 b c -> n3
    cell u5 nand3 n1 n2 n3 -> carry
    end
    v}

    One directive per line; [#] starts a comment; gate names follow
    {!Proxim_gates.Gate.of_name}.  [parse] validates through
    {!Design.create}, so structural errors (cycles, double drivers,
    arity) are reported with the same messages. *)

val parse :
  Proxim_gates.Tech.t -> string -> (string * Design.t, string) result
(** [parse tech text] returns [(design_name, design)] or a message with
    the offending line number. *)

val parse_file :
  Proxim_gates.Tech.t -> string -> (string * Design.t, string) result

val to_string : name:string -> Design.t -> string
(** Render a design back to the format; [parse] of the result round-trips
    (up to comments and whitespace). *)
