(** Flatten a gate-level design to one transistor-level netlist.

    This is the integration bridge between the STA view and the golden
    simulator: the same {!Design.t} that the timing analyzer reasons about
    can be expanded to transistors and simulated end-to-end, so
    block-level STA predictions are checked against "silicon" rather than
    against per-gate characterizations only.

    Modeling choices (matching how the per-gate models were built):
    - each cell's transistors and diffusion parasitics are emitted under a
      ["<cell>/"] prefix;
    - every cell input pin contributes its gate capacitance to its net
      (the MOSFET model itself is capacitance-free);
    - every net gets the same wire capacitance {!Design.fanout_load} uses,
      and primary outputs the same pad capacitance;
    - primary inputs are driven by ideal PWL sources named
      ["Vin_<net>"]. *)

type t = {
  design : Design.t;
  net : Proxim_circuit.Netlist.t;
  node_of_net : (string * Proxim_circuit.Netlist.node) list;
  vdd_node : Proxim_circuit.Netlist.node;
}

val flatten :
  ?wire_cap:float ->
  Design.t ->
  pi_waves:(string * Proxim_waveform.Pwl.t) list ->
  t
(** Build the flat netlist.  Every primary input must be given a waveform;
    raises [Invalid_argument] otherwise.  All cells must share one
    technology card (checked). *)

val simulate :
  ?opts:Proxim_spice.Options.t ->
  t ->
  t_stop:float ->
  Proxim_spice.Transient.result

val probe :
  t -> Proxim_spice.Transient.result -> net:string -> Proxim_waveform.Pwl.t
(** Waveform of a named net; raises [Not_found] for unknown nets. *)
