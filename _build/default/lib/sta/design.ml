module Gate = Proxim_gates.Gate

type cell = {
  name : string;
  gate : Gate.t;
  input_nets : string array;
  output_net : string;
}

type t = {
  cell_list : cell list;
  pis : string list;
  pos : string list;
  driver_tbl : (string, cell) Hashtbl.t;
  reader_tbl : (string, (cell * int) list) Hashtbl.t;
  topo : cell list;
}

let create ~cells:cell_list ~primary_inputs:pis ~primary_outputs:pos =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg ("Design.create: duplicate cell " ^ c.name);
      Hashtbl.add seen c.name ();
      if Array.length c.input_nets <> c.gate.Gate.fan_in then
        invalid_arg ("Design.create: arity mismatch on " ^ c.name))
    cell_list;
  let driver_tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem driver_tbl c.output_net then
        invalid_arg ("Design.create: net driven twice: " ^ c.output_net);
      if List.mem c.output_net pis then
        invalid_arg ("Design.create: primary input driven: " ^ c.output_net);
      Hashtbl.add driver_tbl c.output_net c)
    cell_list;
  let reader_tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Array.iteri
        (fun pin net ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt reader_tbl net)
          in
          Hashtbl.replace reader_tbl net ((c, pin) :: cur))
        c.input_nets)
    cell_list;
  (* every read net must be driven or be a primary input *)
  Hashtbl.iter
    (fun net _ ->
      if (not (Hashtbl.mem driver_tbl net)) && not (List.mem net pis) then
        invalid_arg ("Design.create: undriven net " ^ net))
    reader_tbl;
  List.iter
    (fun net ->
      if (not (Hashtbl.mem driver_tbl net)) && not (List.mem net pis) then
        invalid_arg ("Design.create: undriven primary output " ^ net))
    pos;
  (* topological order by DFS from outputs; cycle detection *)
  let topo = ref [] in
  let state = Hashtbl.create 16 in
  let rec visit c =
    match Hashtbl.find_opt state c.name with
    | Some `Done -> ()
    | Some `Active ->
      invalid_arg ("Design.create: combinational cycle through " ^ c.name)
    | None ->
      Hashtbl.add state c.name `Active;
      Array.iter
        (fun net ->
          match Hashtbl.find_opt driver_tbl net with
          | Some d -> visit d
          | None -> ())
        c.input_nets;
      Hashtbl.replace state c.name `Done;
      topo := c :: !topo
  in
  List.iter visit cell_list;
  {
    cell_list;
    pis;
    pos;
    driver_tbl;
    reader_tbl;
    topo = List.rev !topo;
  }

let cells t = t.cell_list
let primary_inputs t = t.pis
let primary_outputs t = t.pos
let topological t = t.topo

let readers t ~net = Option.value ~default:[] (Hashtbl.find_opt t.reader_tbl net)

let driver t ~net = Hashtbl.find_opt t.driver_tbl net

let default_wire_cap = 20e-15
let pad_cap = 50e-15

let fanout_load ?(wire_cap = default_wire_cap) t ~net =
  let pin_caps =
    List.fold_left
      (fun acc (c, _pin) -> acc +. Gate.input_capacitance c.gate)
      0. (readers t ~net)
  in
  let pad = if List.mem net t.pos then pad_cap else 0. in
  pin_caps +. wire_cap +. pad
