module Gate = Proxim_gates.Gate

type accum = {
  mutable design_name : string option;
  mutable inputs : string list;
  mutable outputs : string list;
  mutable cells : Design.cell list;  (** reversed *)
  mutable ended : bool;
}

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse tech text =
  let acc =
    { design_name = None; inputs = []; outputs = []; cells = []; ended = false }
  in
  let err lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let parse_line lineno line =
    match tokens (strip_comment line) with
    | [] -> Ok ()
    | _ when acc.ended -> err lineno "content after 'end'"
    | [ "design"; name ] ->
      if acc.design_name <> None then err lineno "duplicate 'design'"
      else begin
        acc.design_name <- Some name;
        Ok ()
      end
    | "input" :: nets when nets <> [] ->
      acc.inputs <- acc.inputs @ nets;
      Ok ()
    | "output" :: nets when nets <> [] ->
      acc.outputs <- acc.outputs @ nets;
      Ok ()
    | "cell" :: name :: gate_name :: rest -> (
      match Gate.of_name tech gate_name with
      | Error m -> err lineno "%s" m
      | Ok gate -> (
        let rec split_arrow before = function
          | "->" :: [ out ] -> Some (List.rev before, out)
          | "->" :: _ -> None
          | t :: tl -> split_arrow (t :: before) tl
          | [] -> None
        in
        match split_arrow [] rest with
        | None -> err lineno "expected 'cell NAME GATE in... -> out'"
        | Some (ins, out) ->
          if List.length ins <> gate.Gate.fan_in then
            err lineno "gate %s wants %d inputs, got %d" gate_name
              gate.Gate.fan_in (List.length ins)
          else begin
            acc.cells <-
              {
                Design.name;
                gate;
                input_nets = Array.of_list ins;
                output_net = out;
              }
              :: acc.cells;
            Ok ()
          end))
    | [ "end" ] ->
      acc.ended <- true;
      Ok ()
    | tok :: _ -> err lineno "unrecognized directive %S" tok
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: tl -> (
      match parse_line lineno line with
      | Ok () -> go (lineno + 1) tl
      | Error _ as e -> e)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
    match acc.design_name with
    | None -> Error "missing 'design' directive"
    | Some name -> (
      try
        Ok
          ( name,
            Design.create ~cells:(List.rev acc.cells)
              ~primary_inputs:acc.inputs ~primary_outputs:acc.outputs )
      with Invalid_argument m -> Error m))

let parse_file tech path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse tech (really_input_string ic n))

let to_string ~name design =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "design %s\n" name);
  (match Design.primary_inputs design with
   | [] -> ()
   | pis -> Buffer.add_string buf ("input " ^ String.concat " " pis ^ "\n"));
  (match Design.primary_outputs design with
   | [] -> ()
   | pos -> Buffer.add_string buf ("output " ^ String.concat " " pos ^ "\n"));
  List.iter
    (fun (c : Design.cell) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s %s %s -> %s\n" c.Design.name
           c.Design.gate.Gate.name
           (String.concat " " (Array.to_list c.Design.input_nets))
           c.Design.output_net))
    (Design.cells design);
  Buffer.add_string buf "end\n";
  Buffer.contents buf
