type polarity = Nmos | Pmos

type model_kind = Shichman_hodges | Alpha_power of float

type params = {
  polarity : polarity;
  vt0 : float;
  kp : float;
  lambda : float;
  w : float;
  l : float;
  kind : model_kind;
}

let beta p = p.kp *. p.w /. p.l
let k_strength p = 0.5 *. beta p

type eval = {
  id : float;
  did_dvg : float;
  did_dvd : float;
  did_dvs : float;
}

(* Core NMOS-convention current: given vgs, vds >= 0 (already normalized),
   return (ids, d/dvgs, d/dvds).  [vt] is the positive threshold. *)
let nmos_current p ~vgs ~vds =
  let vt = (match p.polarity with Nmos -> p.vt0 | Pmos -> -.p.vt0) in
  let vov = vgs -. vt in
  if vov <= 0. then (0., 0., 0.)
  else begin
    let b = beta p in
    let clm = 1. +. (p.lambda *. vds) in
    match p.kind with
    | Shichman_hodges ->
      if vds < vov then begin
        (* linear (triode): Id = b * (vov*vds - vds^2/2) * (1 + lambda vds) *)
        let core = (vov *. vds) -. (0.5 *. vds *. vds) in
        let id = b *. core *. clm in
        let dvgs = b *. vds *. clm in
        let dvds = (b *. (vov -. vds) *. clm) +. (b *. core *. p.lambda) in
        (id, dvgs, dvds)
      end
      else begin
        (* saturation: Id = (b/2) vov^2 (1 + lambda vds) *)
        let id = 0.5 *. b *. vov *. vov *. clm in
        let dvgs = b *. vov *. clm in
        let dvds = 0.5 *. b *. vov *. vov *. p.lambda in
        (id, dvgs, dvds)
      end
    | Alpha_power alpha ->
      (* Simplified Sakurai–Newton: Id_sat = (b/2) vov^alpha (1+l vds),
         Vdsat = vov, triode Id = Id_sat0 * (2 - vds/vdsat)(vds/vdsat).
         alpha = 2 recovers Shichman–Hodges exactly. *)
      let idsat0 = 0.5 *. b *. (vov ** alpha) in
      let didsat0_dvgs = 0.5 *. b *. alpha *. (vov ** (alpha -. 1.)) in
      if vds < vov then begin
        let u = vds /. vov in
        let shape = u *. (2. -. u) in
        let id = idsat0 *. shape *. clm in
        (* d shape/d vds = (2 - 2u)/vov ; d shape/d vgs via u = vds/vov *)
        let dshape_dvds = (2. -. (2. *. u)) /. vov in
        let dshape_dvgs = (2. *. u *. (u -. 1.)) /. vov in
        let dvgs =
          ((didsat0_dvgs *. shape) +. (idsat0 *. dshape_dvgs)) *. clm
        in
        let dvds =
          (idsat0 *. dshape_dvds *. clm) +. (idsat0 *. shape *. p.lambda)
        in
        (id, dvgs, dvds)
      end
      else begin
        let id = idsat0 *. clm in
        let dvgs = didsat0_dvgs *. clm in
        let dvds = idsat0 *. p.lambda in
        (id, dvgs, dvds)
      end
  end

(* Normalize polarity and diffusion orientation, evaluate, and map the
   derivatives back to absolute terminal voltages. *)
let eval p ~vg ~vd ~vs =
  (* Polarity transform: a PMOS behaves as an NMOS with all voltages
     negated (and current direction flipped back at the end). *)
  let sgn, vg, vd, vs =
    match p.polarity with
    | Nmos -> (1., vg, vd, vs)
    | Pmos -> (-1., -.vg, -.vd, -.vs)
  in
  (* Diffusion symmetry: if vd < vs the channel conducts in reverse. *)
  let swapped = vd < vs in
  let vd', vs' = if swapped then (vs, vd) else (vd, vs) in
  let vgs = vg -. vs' and vds = vd' -. vs' in
  let ids, dvgs, dvds = nmos_current p ~vgs ~vds in
  (* In normalized space: Id flows d' -> s'.
     d Id / d vg = dvgs; d Id / d vd' = dvds; d Id / d vs' = -dvgs - dvds. *)
  let did_dvg_n = dvgs in
  let did_dvd'_n = dvds in
  let did_dvs'_n = -.dvgs -. dvds in
  let id_n, dvd_n, dvs_n =
    if swapped then
      (* actual drain current = -Id (current flowed s' -> d' in actual
         orientation); actual vd is normalized vs' and vice versa *)
      (-.ids, -.did_dvs'_n, -.did_dvd'_n)
    else (ids, did_dvd'_n, did_dvs'_n)
  in
  let dvg_n = if swapped then -.did_dvg_n else did_dvg_n in
  (* Undo polarity negation: Id_actual = sgn * Id_n(vg_n = sgn*vg, ...)
     => d Id_actual / d v_actual = sgn * dId_n/dv_n * sgn = dId_n/dv_n. *)
  { id = sgn *. id_n; did_dvg = dvg_n; did_dvd = dvd_n; did_dvs = dvs_n }

let region p ~vg ~vd ~vs =
  let vg, vd, vs =
    match p.polarity with
    | Nmos -> (vg, vd, vs)
    | Pmos -> (-.vg, -.vd, -.vs)
  in
  let vd', vs' = if vd < vs then (vs, vd) else (vd, vs) in
  let vt = (match p.polarity with Nmos -> p.vt0 | Pmos -> -.p.vt0) in
  let vov = vg -. vs' -. vt in
  let vds = vd' -. vs' in
  if vov <= 0. then "cutoff" else if vds < vov then "linear" else "saturation"
