lib/device/mosfet.ml:
