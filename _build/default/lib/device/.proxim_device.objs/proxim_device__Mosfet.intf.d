lib/device/mosfet.mli:
