(** MOSFET compact models.

    Two square-law-family models are provided, matching the modeling level
    of the paper's era:

    - {b Shichman–Hodges} (SPICE level 1) with channel-length modulation —
      the default throughout the repo;
    - {b Sakurai–Newton alpha-power} (reference \[14\] of the paper), which
      captures velocity saturation via the exponent [alpha] ([alpha = 2.]
      reduces exactly to Shichman–Hodges with the same parameters).

    The evaluator returns the drain current together with its partial
    derivatives with respect to the three terminal voltages, which is what
    the MNA Newton stamps need.  Source/drain symmetry is handled
    internally (the device conducts identically with the channel reversed),
    so callers never need to order the diffusion terminals. *)

type polarity = Nmos | Pmos

type model_kind =
  | Shichman_hodges
  | Alpha_power of float  (** the alpha exponent, typically 1.0–2.0 *)

type params = {
  polarity : polarity;
  vt0 : float;
      (** zero-bias threshold voltage; positive for NMOS, negative for PMOS *)
  kp : float;  (** process transconductance [mu * Cox], A/V^2 *)
  lambda : float;  (** channel-length modulation, 1/V *)
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
  kind : model_kind;
}

val k_strength : params -> float
(** The paper's transistor strength [K = 1/2 * mu * Cox * W / L]
    (footnote 1 of the paper), in A/V^2. *)

val beta : params -> float
(** [kp * w / l], the conventional gain factor (= [2 * k_strength]). *)

type eval = {
  id : float;  (** current into the drain terminal, A *)
  did_dvg : float;  (** d(id)/d(Vgate), S *)
  did_dvd : float;  (** d(id)/d(Vdrain), S *)
  did_dvs : float;  (** d(id)/d(Vsource), S *)
}

val eval : params -> vg:float -> vd:float -> vs:float -> eval
(** Evaluate the channel current and its derivatives at the given absolute
    terminal voltages.  The body terminal is assumed tied to the rail
    (no body effect, as in the paper's analysis). *)

val region : params -> vg:float -> vd:float -> vs:float -> string
(** ["cutoff"], ["linear"] or ["saturation"] — for diagnostics and tests. *)
