lib/baseline/collapse.mli: Proxim_core Proxim_gates Proxim_measure Proxim_spice Proxim_vtc
