lib/baseline/collapse.ml: Array Float List Proxim_core Proxim_gates Proxim_measure Proxim_vtc
