(* proxim: command-line front end to the proximity delay library.

   $ proxim vtc nand3
   $ proxim delay nand3 --pin a --edge fall --tau 500
   $ proxim proximity nand3 a:fall:500:0 b:fall:100:50
   $ proxim glitch nand3 --tau-fall 500 --tau-rise 100 --find-min
   $ proxim sta design.ntl --pi a:fall:500:0 --pi b:fall:100:50 --paths 3
   $ proxim sta design.ntl --pi a:fall:500:0 --eco pi:a:fall:200:0 --verify-eco
   $ proxim verify design.ntl --pi a:fall:500:0 --pi b:fall:100:50 --pi-window 25
   $ proxim storage --fan-in 4
   $ proxim lint --format json design.ntl store.txt *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity
module Inertial = Proxim_core.Inertial
module Storage = Proxim_core.Storage
module Collapse = Proxim_baseline.Collapse
module Obs_metrics = Proxim_obs.Metrics
module Obs_trace = Proxim_obs.Trace

let ps s = s *. 1e12

let pin_of_string gate s =
  let fail () =
    Error (`Msg (Printf.sprintf "unknown pin %s (gate has %d pins: a..%s)" s
                   gate.Gate.fan_in
                   (Gate.pin_name (gate.Gate.fan_in - 1))))
  in
  if String.length s = 1 then begin
    let i = Char.code s.[0] - Char.code 'a' in
    if i >= 0 && i < gate.Gate.fan_in then Ok i else fail ()
  end
  else fail ()

let edge_of_string = function
  | "rise" | "r" | "rising" -> Ok Measure.Rise
  | "fall" | "f" | "falling" -> Ok Measure.Fall
  | s -> Error (`Msg (Printf.sprintf "unknown edge %s (rise|fall)" s))

(* The EDGE:TAU_PS:CROSS_PS core every event spec ends with — shared by
   --event (pin-prefixed), --pi (net-prefixed), --pi-all (bare) and the
   eco specs, so a malformed edge or number yields one message and one
   exit code (2) whatever the subcommand.  [spec] is the caller's whole
   original argument, quoted verbatim in the diagnostic. *)
let parse_edge_tau_t ~spec edge_s tau_s t_s =
  match edge_of_string edge_s with
  | Error e -> Error e
  | Ok edge -> (
    match (float_of_string_opt tau_s, float_of_string_opt t_s) with
    | Some tau_ps, Some t_ps -> Ok (edge, tau_ps *. 1e-12, t_ps *. 1e-12)
    | None, _ | _, None ->
      Error (`Msg (Printf.sprintf "bad numbers in event %s" spec)))

(* exit code for a malformed event/eco spec on every subcommand *)
let usage_error m =
  prerr_endline m;
  2

let with_gate name f =
  let tech = Tech.generic_5v in
  match Gate.of_name tech name with
  | Error m ->
    prerr_endline m;
    1
  | Ok gate -> f gate

(* ------------------------------------------------------------------ *)
(* vtc                                                                 *)

let run_vtc gate_name =
  with_gate gate_name (fun gate ->
    let fam = Vtc.family ~points:301 gate in
    Printf.printf "VTC family of %s:\n" gate.Gate.name;
    List.iter (fun c -> Format.printf "  %a@." Vtc.pp_curve c) fam;
    let th = Vtc.choose fam in
    Printf.printf "chosen thresholds: Vil = %.3f V, Vih = %.3f V\n" th.Vtc.vil
      th.Vtc.vih;
    0)

(* ------------------------------------------------------------------ *)
(* delay                                                               *)

let run_delay gate_name pin_s edge_s tau_ps load_ff =
  with_gate gate_name (fun gate ->
    match (pin_of_string gate pin_s, edge_of_string edge_s) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok pin, Ok edge ->
      let th = Vtc.thresholds gate in
      let load = Option.map (fun f -> f *. 1e-15) load_ff in
      let obs =
        Measure.single_input ?load gate th ~pin ~edge ~tau:(tau_ps *. 1e-12)
      in
      Printf.printf
        "%s pin %s %s tau=%.0fps: delay = %.1f ps, output transition = %.1f \
         ps\n"
        gate.Gate.name pin_s edge_s tau_ps
        (ps obs.Measure.delay)
        (ps obs.Measure.out_transition);
      0)

(* ------------------------------------------------------------------ *)
(* proximity                                                           *)

let parse_event gate s =
  match String.split_on_char ':' s with
  | [ pin_s; edge_s; tau_s; t_s ] -> (
    match (pin_of_string gate pin_s, parse_edge_tau_t ~spec:s edge_s tau_s t_s)
    with
    | Error e, _ | _, Error e -> Error e
    | Ok pin, Ok (edge, tau, cross_time) ->
      Ok { Proximity.pin; edge; tau; cross_time })
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "bad event %s (expected pin:edge:tau_ps:cross_ps, e.g. \
            a:fall:500:0)"
           s))

let run_proximity gate_name event_specs baselines =
  with_gate gate_name (fun gate ->
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | s :: tl -> (
        match parse_event gate s with
        | Ok e -> parse_all (e :: acc) tl
        | Error e -> Error e)
    in
    match parse_all [] event_specs with
    | Error (`Msg m) -> usage_error m
    | Ok [] -> usage_error "need at least one event"
    | Ok events ->
      (* shift all events so every ramp starts at positive time *)
      let max_tau =
        List.fold_left
          (fun acc (e : Proximity.event) -> Float.max acc e.Proximity.tau)
          0. events
      in
      let min_cross =
        List.fold_left
          (fun acc (e : Proximity.event) -> Float.min acc e.Proximity.cross_time)
          infinity events
      in
      let shift = max_tau +. 0.3e-9 -. min_cross in
      let events =
        List.map
          (fun (e : Proximity.event) ->
            { e with Proximity.cross_time = e.Proximity.cross_time +. shift })
          events
      in
      let th = Vtc.thresholds gate in
      let models = Models.of_oracle gate th in
      let r = Proximity.evaluate models events in
      let stimuli =
        List.map
          (fun (e : Proximity.event) ->
            ( e.Proximity.pin,
              { Measure.edge = e.Proximity.edge; tau = e.Proximity.tau;
                cross_time = e.Proximity.cross_time } ))
          events
      in
      let golden =
        Measure.multi_input gate th ~stimuli ~ref_pin:r.Proximity.ref_pin
      in
      Printf.printf "dominant input: %s\n" (Gate.pin_name r.Proximity.ref_pin);
      Printf.printf "inputs inside the proximity window: %d of %d\n"
        r.Proximity.used_inputs (List.length events);
      Printf.printf "ProximityDelay : delay = %8.1f ps  transition = %8.1f ps\n"
        (ps r.Proximity.delay)
        (ps r.Proximity.out_transition);
      Printf.printf "golden (SPICE) : delay = %8.1f ps  transition = %8.1f ps\n"
        (ps golden.Measure.delay)
        (ps golden.Measure.out_transition);
      Printf.printf "model error    : delay %+.2f%%, transition %+.2f%%\n"
        ((r.Proximity.delay -. golden.Measure.delay)
         /. golden.Measure.delay *. 100.)
        ((r.Proximity.out_transition -. golden.Measure.out_transition)
         /. golden.Measure.out_transition *. 100.);
      if baselines then begin
        let show variant name =
          let p = Collapse.predict variant gate th ~events in
          let delay = p.Collapse.out_cross -. r.Proximity.ref_cross in
          Printf.printf
            "%-15s: delay = %8.1f ps  transition = %8.1f ps  (delay err \
             %+.2f%%)\n"
            name (ps delay)
            (ps p.Collapse.out_transition)
            ((delay -. golden.Measure.delay) /. golden.Measure.delay *. 100.)
        in
        show Collapse.Jun "Jun collapse";
        show Collapse.Nabavi_lishi "Nabavi-Lishi"
      end;
      0)

(* ------------------------------------------------------------------ *)
(* glitch                                                              *)

let run_glitch gate_name fall_pin_s rise_pin_s tau_fall_ps tau_rise_ps sep_ps
    find_min =
  with_gate gate_name (fun gate ->
    match (pin_of_string gate fall_pin_s, pin_of_string gate rise_pin_s) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok fall_pin, Ok rise_pin ->
      let th = Vtc.thresholds gate in
      let tau_fall = tau_fall_ps *. 1e-12 in
      let tau_rise = tau_rise_ps *. 1e-12 in
      if find_min then begin
        let s =
          Inertial.minimum_valid_separation gate th ~fall_pin ~rise_pin
            ~tau_fall ~tau_rise
        in
        Printf.printf
          "minimum separation for a full output transition: %.1f ps\n\
           (inertial delay: %.1f ps)\n"
          (ps s) (ps (-.s));
        0
      end
      else begin
        let sep = sep_ps *. 1e-12 in
        let g =
          Inertial.glitch gate th ~fall_pin ~rise_pin ~tau_fall ~tau_rise ~sep
        in
        Printf.printf
          "glitch extreme: %.3f V at t = %.1f ps; output %s a transition\n"
          g.Inertial.v_extreme (ps g.Inertial.t_extreme)
          (if g.Inertial.full_swing then "completes" else "does not complete");
        0
      end)

(* ------------------------------------------------------------------ *)
(* storage                                                             *)

let run_storage fan_in points =
  Format.printf "%a"
    (fun ppf () -> Storage.pp_comparison ppf ~fan_in ~points_per_axis:points)
    ();
  0

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

module Diagnostic = Proxim_lint.Diagnostic
module Netlist_lint = Proxim_lint.Netlist_lint
module Model_lint = Proxim_lint.Model_lint
module Store = Proxim_macromodel.Store

let print_code_table () =
  List.iter
    (fun c ->
      Printf.printf "%-6s %-8s %s\n" (Diagnostic.code_name c)
        (Diagnostic.severity_name (Diagnostic.default_severity c))
        (Diagnostic.code_doc c))
    Diagnostic.all_codes;
  0

(* a binary (PXNB) netlist has no raw text form for the line-numbered
   passes; re-render the decoded design to the text format and lint
   that, so the same structural checks apply to both encodings (line
   numbers then refer to the canonical rendering) *)
let lint_binary ~fanout_limit file =
  match Proxim_sta.Netlist_bin.read_file Tech.generic_5v file with
  | Error m -> [ Diagnostic.make ~file PX100 "unreadable binary netlist: %s" m ]
  | Ok (name, design, _th) ->
    let options = { Netlist_lint.fanout_limit } in
    Netlist_lint.check_text ~options ~file Tech.generic_5v
      (Proxim_sta.Netlist_text.to_string ~name design)

let lint_file ~fanout_limit file =
  if
    try Proxim_sta.Netlist_bin.file_is_binary file
    with Sys_error _ -> false
  then lint_binary ~fanout_limit file
  else
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error m -> [ Diagnostic.make ~file PX100 "%s" m ]
  | text ->
    let is_store =
      String.length text >= 15 && String.sub text 0 15 = "proxim-store-v1"
    in
    if is_store then
      match Store.load text with
      | exception Failure m ->
        [ Diagnostic.make ~file PX100 "unreadable store: %s" m ]
      | set -> Model_lint.check_store ~file set
    else
      let options = { Netlist_lint.fanout_limit } in
      Netlist_lint.check_text ~options ~file Tech.generic_5v text

(* case-insensitive shell-style glob: [*] any run, [?] one character *)
let glob_match pat name =
  let np = String.length pat and nn = String.length name in
  let eq a b = Char.uppercase_ascii a = Char.uppercase_ascii b in
  let rec go i j =
    if i = np then j = nn
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < nn && go i (j + 1))
      | '?' -> j < nn && go (i + 1) (j + 1)
      | c -> j < nn && eq c name.[j] && go (i + 1) (j + 1)
  in
  go 0 0

let parse_code_filter s =
  let names =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun n -> n <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: tl ->
      if String.contains n '*' || String.contains n '?' then (
        match
          List.filter
            (fun c -> glob_match n (Diagnostic.code_name c))
            Diagnostic.all_codes
        with
        | [] ->
          Error
            (`Msg (Printf.sprintf "code pattern %s matches no diagnostic" n))
        | cs -> go (List.rev_append cs acc) tl)
      else (
        match Diagnostic.code_of_name n with
        | Some c -> go (c :: acc) tl
        | None -> Error (`Msg (Printf.sprintf "unknown diagnostic code %s" n)))
  in
  go [] names

(* the --codes option of every report-emitting subcommand: absent = keep
   all, bare = print the code table, a value = keep only those codes.
   The filter applies BEFORE --fail-on computes the exit status, so
   filtered-out findings can neither fail a run nor appear in it. *)
let resolve_code_filter = function
  | None -> Ok `All
  | Some "" -> Ok `Table
  | Some s -> Result.map (fun cs -> `Keep cs) (parse_code_filter s)

let apply_code_filter filter diags =
  match filter with
  | `All | `Table -> diags
  | `Keep cs -> Diagnostic.filter_codes cs diags

let print_report format diags =
  match format with
  | `Text -> print_string (Diagnostic.report_text diags)
  | `Json -> print_endline (Diagnostic.report_json_string diags)
  | `Sarif -> print_endline (Diagnostic.report_sarif_string diags)

let run_lint files format fail_on fanout_limit codes =
  match resolve_code_filter codes with
  | Error (`Msg m) ->
    prerr_endline m;
    2
  | Ok `Table -> print_code_table ()
  | Ok (`All | `Keep _) when files = [] ->
    prerr_endline "proxim lint: need at least one FILE (or --codes)";
    2
  | Ok filter ->
    let lint_one f =
      Obs_trace.with_span ~cat:"lint" ~args:[ ("file", f) ] "lint.file"
        (fun () -> lint_file ~fanout_limit f)
    in
    let diags =
      apply_code_filter filter
        (Diagnostic.sort (List.concat_map lint_one files))
    in
    print_report format diags;
    Diagnostic.exit_code ~fail_on diags

(* ------------------------------------------------------------------ *)
(* sta                                                                 *)

module Sta = Proxim_sta.Sta
module Prune = Proxim_sta.Prune
module Design = Proxim_sta.Design
module Netlist_text = Proxim_sta.Netlist_text
module Netlist_bin = Proxim_sta.Netlist_bin
module Synthgen = Proxim_sta.Synthgen
module Timing = Proxim_timing.Timing
module Graph = Proxim_timing.Graph
module Memo_cache = Proxim_util.Memo_cache

let edge_name = function Measure.Rise -> "rise" | Measure.Fall -> "fall"

let parse_pi_spec s =
  match String.split_on_char ':' s with
  | [ net; edge_s; tau_s; t_s ] ->
    Result.map
      (fun (edge, slew, time) -> (net, { Sta.time; slew; edge }))
      (parse_edge_tau_t ~spec:s edge_s tau_s t_s)
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "bad pi event %s (expected net:edge:tau_ps:cross_ps, e.g. \
            a:fall:500:0)"
           s))

let parse_eco_spec s =
  match String.split_on_char ':' s with
  | [ "cell"; name ] -> Ok (Sta.Touch_cell name)
  | [ "pi"; net; "quiet" ] | [ "pi"; net; "-" ] -> Ok (Sta.Set_pi (net, None))
  | "pi" :: net :: ([ _; _; _ ] as rest) ->
    Result.map
      (fun (_, a) -> Sta.Set_pi (net, Some a))
      (parse_pi_spec (String.concat ":" (net :: rest)))
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "bad eco %s (expected pi:NET:EDGE:TAU_PS:CROSS_PS, pi:NET:quiet \
            or cell:NAME)"
           s))

(* --pi-all: one event applied to every primary input not already named
   by a --pi option — the only sane way to drive a generated
   million-input-free design where PIs are pi0..piN *)
let parse_pi_all_spec s =
  match String.split_on_char ':' s with
  | [ edge_s; tau_s; t_s ] ->
    Result.map
      (fun (edge, slew, time) -> { Sta.time; slew; edge })
      (parse_edge_tau_t ~spec:s edge_s tau_s t_s)
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "bad pi-all event %s (expected edge:tau_ps:cross_ps, e.g. \
            fall:500:0)"
           s))

let rec parse_all parse acc = function
  | [] -> Ok (List.rev acc)
  | s :: tl -> (
    match parse s with
    | Ok v -> parse_all parse (v :: acc) tl
    | Error e -> Error e)

(* bit-exact report comparison, the --verify-eco gate: an incremental
   update must reproduce a fresh analysis to the last bit *)
let report_eq (r1 : Sta.report) (r2 : Sta.report) =
  let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let aeq (a : Sta.arrival) (b : Sta.arrival) =
    feq a.Sta.time b.Sta.time && feq a.Sta.slew b.Sta.slew
    && a.Sta.edge = b.Sta.edge
  in
  let alist_eq l1 l2 =
    List.length l1 = List.length l2
    && List.for_all2 (fun (n1, a1) (n2, a2) -> n1 = n2 && aeq a1 a2) l1 l2
  in
  alist_eq r1.Sta.arrivals r2.Sta.arrivals
  && (match (r1.Sta.critical_po, r2.Sta.critical_po) with
     | None, None -> true
     | Some (n1, a1), Some (n2, a2) -> n1 = n2 && aeq a1 a2
     | Some _, None | None, Some _ -> false)
  && r1.Sta.predecessors = r2.Sta.predecessors

let apply_eco_to_pi pi = function
  | Sta.Touch_cell _ -> pi
  | Sta.Set_pi (net, a) -> (
    let rest = List.remove_assoc net pi in
    match a with None -> rest | Some a -> rest @ [ (net, a) ])

module Verify = Proxim_verify.Verify
module Interval = Proxim_verify.Interval
module Sense = Proxim_sense.Sense

(* The prune mask must stay sound for the initial analysis AND every
   post-ECO re-analysis, so verify over interval events hulling both
   configurations.  Any structural change to the event set (a PI
   silenced, added, or edge-flipped) falls back to no pruning. *)
let sta_prune_mask ?(sense = false) ~models ~thresholds design ~pi ~ecos () =
  let pi' = List.fold_left apply_eco_to_pi pi ecos in
  let nets l = List.sort compare (List.map fst l) in
  let compatible =
    nets pi = nets pi'
    && List.for_all
         (fun (n, (a : Sta.arrival)) ->
           match List.assoc_opt n pi' with
           | Some (a' : Sta.arrival) -> a.Sta.edge = a'.Sta.edge
           | None -> false)
         pi
  in
  if not compatible then None
  else begin
    let events =
      List.map
        (fun (n, (a : Sta.arrival)) ->
          let a' = Option.value (List.assoc_opt n pi') ~default:a in
          {
            Verify.ev_net = n;
            ev_edge = a.Sta.edge;
            ev_time =
              Interval.make
                (Float.min a.Sta.time a'.Sta.time)
                (Float.max a.Sta.time a'.Sta.time);
            ev_tau =
              Interval.make
                (Float.min a.Sta.slew a'.Sta.slew)
                (Float.max a.Sta.slew a'.Sta.slew);
          })
        pi
    in
    let v =
      Verify.analyze ~mode:Sta.Proximity ~models ~thresholds design ~pi:events
    in
    let s = Verify.summary v in
    Printf.printf
      "static verification: %d of %d switching cells never-proximate\n"
      s.Verify.never s.Verify.switching_cells;
    (* the hazard analysis proves quiet for a complementary set of cells
       (at most one window-bearing input, or a dominated same-edge
       group); both masks are sound for the fast path, so take the
       union *)
    let h =
      Proxim_hazard.Hazard.analyze ~mode:Sta.Proximity ~models ~thresholds
        design ~pi:events
    in
    let hs = Proxim_hazard.Hazard.summary h in
    Printf.printf "hazard analysis: %d of %d classified cells proven quiet\n"
      (List.length
         (List.filter
            (fun c -> c.Proxim_hazard.Hazard.hc_quiet)
            (Proxim_hazard.Hazard.cells h)))
      hs.Proxim_hazard.Hazard.classified;
    let vm = Verify.prune_mask v and hm = Proxim_hazard.Hazard.quiet_mask h in
    (* the sensitization mask covers cells where at most one event can
       structurally arrive; its activity depends only on which nets
       switch, so the edge-compatibility check above keeps it sound
       across the ECOs too *)
    let sm =
      if not sense then None
      else begin
        let stim =
          List.map
            (fun (n, (a : Sta.arrival)) -> (n, Sense.Switch a.Sta.edge))
            pi
        in
        let s = Sense.analyze design ~pi:stim in
        let ss = Sense.summary s in
        Printf.printf
          "sensitization: %d of %d cells structurally quiet\n"
          ss.Sense.prunable_cells ss.Sense.total_cells;
        Some (Sense.prune_mask s)
      end
    in
    Some (Prune.make ?unsensitizable:sm ~quiet:hm ~never_proximate:vm ())
  end

(* one loader for both netlist encodings: route on the magic bytes, not
   the file extension *)
let load_design tech file =
  if Netlist_bin.file_is_binary file then Netlist_bin.read_file tech file
  else
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error m -> Error m
    | text ->
      Result.map
        (fun (name, design) ->
          let raw = Netlist_text.parse_raw tech text in
          ( name,
            design,
            Option.map fst raw.Netlist_text.raw_thresholds ))
        (Netlist_text.parse tech text)

let run_sta file pi_specs pi_all_spec mode models_kind paths_k required_ps
    eco_specs verify_eco no_prune sense summary =
  let tech = Tech.generic_5v in
  match load_design tech file with
  | Error m ->
    prerr_endline m;
    1
  | Ok (name, design, file_th) -> (
      match
        ( parse_all parse_pi_spec [] pi_specs,
          parse_all parse_eco_spec [] eco_specs,
          Option.fold ~none:(Ok None)
            ~some:(fun s -> Result.map Option.some (parse_pi_all_spec s))
            pi_all_spec )
      with
      | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
        usage_error m
      | Ok [], _, Ok None ->
        usage_error "proxim sta: need at least one --pi event (or --pi-all)"
      | Ok named_pi, Ok ecos, Ok pi_all ->
        let pi =
          match pi_all with
          | None -> named_pi
          | Some a ->
            named_pi
            @ List.filter_map
                (fun net ->
                  if List.mem_assoc net named_pi then None else Some (net, a))
                (Design.primary_inputs design)
        in
        if paths_k < 1 then begin
          prerr_endline "proxim sta: --paths must be >= 1";
          2
        end
        else begin
          let th =
            match file_th with
            | Some th -> th
            | None -> (
              match Design.cells design with
              | c :: _ -> Vtc.thresholds c.Design.gate
              | [] -> (
                match Gate.of_name tech "inv" with
                | Ok g -> Vtc.thresholds g
                | Error m -> failwith m))
          in
          let factory =
            match models_kind with
            | `Oracle -> Sta.oracle_factory design th
            | `Synthetic -> Sta.synthetic_factory ()
          in
          let g = Design.graph design in
          Printf.printf "design %s: %d cells, %d nets, %d levels\n" name
            (Graph.cell_count g) (Graph.net_count g) (Graph.level_count g);
          let prune =
            if no_prune || mode <> Sta.Proximity then None
            else
              sta_prune_mask ~sense ~models:factory.Sta.models ~thresholds:th
                design ~pi ~ecos ()
          in
          let ir =
            Sta.build_ir ~mode ?prune ~models:factory.Sta.models
              ~thresholds:th design ~pi
          in
          ignore (Sta.reanalyze ir : Timing.stats);
          let show_results () =
            let report = Sta.report ir in
            if summary then
              Printf.printf "arrivals: %d switching nets\n"
                (List.length report.Sta.arrivals)
            else begin
              Printf.printf "arrivals:\n";
              List.iter
                (fun (net, (a : Sta.arrival)) ->
                  Printf.printf "  %-14s %8.1f ps  slew %7.1f ps  %s\n" net
                    (ps a.Sta.time) (ps a.Sta.slew) (edge_name a.Sta.edge))
                report.Sta.arrivals
            end;
            (match report.Sta.critical_po with
             | None -> Printf.printf "no primary output switches\n"
             | Some (po, a) ->
               Printf.printf "critical output: %s at %.1f ps\n" po
                 (ps a.Sta.time);
               List.iteri
                 (fun i (p : Sta.path) ->
                   Printf.printf "path #%d (%8.1f ps): %s\n" (i + 1)
                     (ps p.Sta.path_arrival)
                     (String.concat " <- " p.Sta.path_nets))
                 (Sta.worst_paths ir ~po ~k:paths_k));
            match required_ps with
            | None -> ()
            | Some req ->
              Printf.printf "slacks (required %.1f ps):\n" req;
              List.iter
                (fun (net, slack) ->
                  Printf.printf "  %-14s %+8.1f ps\n" net (ps slack))
                (Sta.po_slacks design (Sta.report ir)
                   ~required:(req *. 1e-12))
          in
          show_results ();
          let eco_ok =
            if ecos = [] then true
            else begin
              let stats = Sta.update ir ecos in
              Printf.printf
                "\nECO: re-evaluated %d of %d cells (%d changed)\n"
                stats.Timing.evaluated stats.Timing.total_cells
                stats.Timing.changed;
              show_results ();
              if not verify_eco then true
              else begin
                let pi' = List.fold_left apply_eco_to_pi pi ecos in
                let fresh =
                  Sta.build_ir ~mode ?prune ~models:factory.Sta.models
                    ~thresholds:th design ~pi:pi'
                in
                ignore (Sta.reanalyze fresh : Timing.stats);
                let same = report_eq (Sta.report ir) (Sta.report fresh) in
                Printf.printf "incremental vs full re-analysis: %s\n"
                  (if same then "bit-identical" else "MISMATCH");
                same
              end
            end
          in
          (match prune with
           | None -> ()
           | Some p ->
             let c = Prune.counts p in
             Printf.printf
               "proximity pruning: %d cell evaluations took the fast path \
                (%d unsensitizable, %d quiet, %d never-proximate)\n"
               (Sta.pruned_evaluations ir)
               c.Prune.unsensitizable c.Prune.quiet
               c.Prune.never_proximate);
          let cs = factory.Sta.factory_stats () in
          Printf.printf
            "model cache: %d hits, %d misses, %d waits, %d entries\n"
            cs.Memo_cache.hits cs.Memo_cache.misses cs.Memo_cache.waits
            cs.Memo_cache.entries;
          if eco_ok then 0 else 1
        end)

(* CLI boundary: an unknown net or cell in --eco is a user typo, not an
   internal failure — report it like a lint error (exit 2) instead of
   escaping as a raw exception with a backtrace. *)
let run_sta file pi_specs pi_all mode models_kind paths_k required_ps
    eco_specs verify_eco no_prune sense summary =
  try
    run_sta file pi_specs pi_all mode models_kind paths_k required_ps
      eco_specs verify_eco no_prune sense summary
  with Sta.Unknown_eco_target { kind; name } ->
    Printf.eprintf "proxim sta: error: --eco refers to unknown %s %s\n" kind
      name;
    2

(* ------------------------------------------------------------------ *)
(* gen / convert                                                       *)

let format_for ~explicit ~path =
  match explicit with
  | Some f -> f
  | None -> if Filename.check_suffix path ".pxb" then `Binary else `Text

(* Netlist_text.to_string never emits a thresholds directive, so a
   binary file carrying one keeps it across a round-trip by injecting
   the line just before the closing [end]. *)
let text_with_thresholds ~name design th =
  let s = Netlist_text.to_string ~name design in
  match th with
  | None -> s
  | Some (t : Vtc.thresholds) ->
    let line =
      Printf.sprintf "thresholds %.17g %.17g %.17g\n" t.Vtc.vil t.Vtc.vih
        t.Vtc.vdd
    in
    let tail = "end\n" in
    if
      String.length s >= String.length tail
      && String.sub s (String.length s - String.length tail)
           (String.length tail)
         = tail
    then
      String.sub s 0 (String.length s - String.length tail) ^ line ^ tail
    else s ^ line

let run_gen cells seed depth window reach out fmt =
  match
    Synthgen.generate ~seed ~depth ~window ~reach ~tech:Tech.generic_5v
      ~cells ()
  with
  | exception Invalid_argument m ->
    prerr_endline ("proxim gen: " ^ m);
    2
  | name, design ->
    let g = Design.graph design in
    (match out with
     | None -> print_string (Netlist_text.to_string ~name design)
     | Some path ->
       (match format_for ~explicit:fmt ~path with
        | `Binary -> Netlist_bin.write_file ~name design path
        | `Text ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc
                (Netlist_text.to_string ~name design)));
       Printf.printf "%s: %d cells, %d nets, %d levels -> %s\n" name
         (Graph.cell_count g) (Graph.net_count g) (Graph.level_count g) path);
    0

let run_convert input output fmt =
  let tech = Tech.generic_5v in
  match load_design tech input with
  | Error m ->
    prerr_endline m;
    1
  | Ok (name, design, th) ->
    let target = format_for ~explicit:fmt ~path:output in
    (match target with
     | `Binary -> Netlist_bin.write_file ?thresholds:th ~name design output
     | `Text ->
       Out_channel.with_open_bin output (fun oc ->
           Out_channel.output_string oc
             (text_with_thresholds ~name design th)));
    Printf.printf "%s: %d cells -> %s (%s)\n" name
      (List.length (Design.cells design))
      output
      (match target with `Binary -> "binary" | `Text -> "text");
    0

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

(* One STA run with every pipeline stage wrapped in a "phase" span:
   parse -> thresholds -> characterize (the paper's section-3 macromodel
   build, forced up front so its cost lands in one bucket) -> build_ir ->
   analyze (the section-4 fold) -> report.  Prints the per-phase
   time/alloc breakdown from the trace aggregation. *)
let run_profile file pi_specs mode models_kind =
  let tech = Tech.generic_5v in
  Obs_metrics.install_util_sources ();
  Obs_trace.clear ();
  Obs_trace.enable ();
  let wall0 = Unix.gettimeofday () in
  let phase name f = Obs_trace.with_span ~cat:"phase" name f in
  let parsed =
    phase "parse" (fun () ->
        match In_channel.with_open_text file In_channel.input_all with
        | exception Sys_error m -> Error m
        | text -> (
          match Netlist_text.parse tech text with
          | Error m -> Error m
          | Ok (name, design) -> Ok (text, name, design)))
  in
  match parsed with
  | Error m ->
    prerr_endline m;
    1
  | Ok (text, name, design) -> (
    match parse_all parse_pi_spec [] pi_specs with
    | Error (`Msg m) -> usage_error m
    | Ok [] -> usage_error "proxim profile: need at least one --pi event"
    | Ok pi ->
      let th =
        phase "thresholds" (fun () ->
            let raw = Netlist_text.parse_raw tech text in
            match raw.Netlist_text.raw_thresholds with
            | Some (th, _) -> th
            | None -> (
              match Design.cells design with
              | c :: _ -> Vtc.thresholds c.Design.gate
              | [] -> (
                match Gate.of_name tech "inv" with
                | Ok g -> Vtc.thresholds g
                | Error m -> failwith m)))
      in
      let factory =
        match models_kind with
        | `Oracle -> Sta.oracle_factory design th
        | `Synthetic -> Sta.synthetic_factory ()
      in
      phase "characterize" (fun () ->
          List.iter
            (fun c -> ignore (factory.Sta.models c : Models.t))
            (Design.cells design));
      let ir =
        phase "build_ir" (fun () ->
            Sta.build_ir ~mode ~models:factory.Sta.models ~thresholds:th
              design ~pi)
      in
      ignore (phase "analyze" (fun () -> Sta.reanalyze ir) : Timing.stats);
      let report = phase "report" (fun () -> Sta.report ir) in
      let wall_us = (Unix.gettimeofday () -. wall0) *. 1e6 in
      let g = Design.graph design in
      Printf.printf "design %s: %d cells, %d nets, %d levels\n" name
        (Graph.cell_count g) (Graph.net_count g) (Graph.level_count g);
      (match report.Sta.critical_po with
       | None -> Printf.printf "no primary output switches\n"
       | Some (po, a) ->
         Printf.printf "critical output: %s at %.1f ps\n" po (ps a.Sta.time));
      let aggs = Obs_trace.aggregate ~cat:"phase" () in
      (* pipeline order reads better than duration order for six rows *)
      let phases =
        List.filter_map
          (fun n ->
            List.find_opt (fun a -> a.Obs_trace.agg_name = n) aggs)
          [ "parse"; "thresholds"; "characterize"; "build_ir"; "analyze";
            "report" ]
      in
      let mb bytes = bytes /. 1048576. in
      Printf.printf "\n%-14s %12s  %6s %12s\n" "phase" "time" "% wall"
        "alloc";
      List.iter
        (fun (a : Obs_trace.agg) ->
          Printf.printf "%-14s %9.3f ms  %5.1f%% %9.2f MB\n" a.Obs_trace.agg_name
            (a.Obs_trace.total_us /. 1e3)
            (100. *. a.Obs_trace.total_us /. wall_us)
            (mb a.Obs_trace.alloc_bytes))
        phases;
      let covered =
        List.fold_left (fun s a -> s +. a.Obs_trace.total_us) 0. phases
      in
      Printf.printf "phase coverage: %.1f%% of %.3f ms wall\n"
        (100. *. covered /. wall_us)
        (wall_us /. 1e3);
      let hot =
        List.concat_map
          (fun c -> Obs_trace.aggregate ~cat:c ())
          [ "characterize"; "sta"; "verify"; "pool" ]
        |> List.sort (fun a b ->
               Float.compare b.Obs_trace.total_us a.Obs_trace.total_us)
      in
      if hot <> [] then begin
        Printf.printf "\nhot spans:\n";
        List.iteri
          (fun i (a : Obs_trace.agg) ->
            if i < 8 then
              Printf.printf "  %-22s %5dx %9.3f ms %9.2f MB\n"
                a.Obs_trace.agg_name a.Obs_trace.count
                (a.Obs_trace.total_us /. 1e3)
                (mb a.Obs_trace.alloc_bytes))
          hot
      end;
      0)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)

(* --pi-window: a bare PS value sets the global arrival-time window,
   NET=PS overrides it for one net *)
let parse_window_spec s =
  let bad () =
    Error
      (`Msg
        (Printf.sprintf "bad window %s (expected PS or NET=PS, e.g. 25 or a=25)"
           s))
  in
  match String.index_opt s '=' with
  | None -> (
    match float_of_string_opt s with
    | Some ps when ps >= 0. -> Ok (`Global (ps *. 1e-12))
    | Some _ | None -> bad ())
  | Some i -> (
    let net = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    match float_of_string_opt v with
    | Some ps when ps >= 0. && net <> "" -> Ok (`Net (net, ps *. 1e-12))
    | Some _ | None -> bad ())

let window_net_names windows =
  List.filter_map (function `Net (n, _) -> Some n | `Global _ -> None) windows

let run_verify file pi_specs window_specs tau_window_ps mode models_kind
    format fail_on codes_filter sense =
  let tech = Tech.generic_5v in
  match load_design tech file with
  | exception Sys_error m ->
    prerr_endline m;
    1
  | Error m ->
    prerr_endline m;
    1
  | Ok (name, design, file_th) -> (
    match
      ( parse_all parse_pi_spec [] pi_specs,
        parse_all parse_window_spec [] window_specs,
        resolve_code_filter codes_filter )
    with
    | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
      prerr_endline m;
      2
    | _, _, Ok `Table -> print_code_table ()
    | Ok [], _, _ ->
      prerr_endline "proxim verify: need at least one --pi event";
      2
    | Ok pi, Ok windows, Ok codes ->
      Verify.validate_window_nets design (window_net_names windows);
      let th =
        match file_th with
        | Some th -> th
        | None -> (
          match Design.cells design with
          | c :: _ -> Vtc.thresholds c.Design.gate
          | [] -> (
            match Gate.of_name tech "inv" with
            | Ok g -> Vtc.thresholds g
            | Error m -> failwith m))
      in
        let global =
          List.fold_left
            (fun acc -> function `Global w -> w | `Net _ -> acc)
            0. windows
        in
        let window_for net =
          List.fold_left
            (fun acc -> function
              | `Net (n, w) when n = net -> w
              | `Net _ | `Global _ -> acc)
            global windows
        in
        let tau_window = tau_window_ps *. 1e-12 in
        let events =
          List.map
            (fun (net, a) ->
              Verify.of_sta_event ~time_window:(window_for net) ~tau_window
                (net, a))
            pi
        in
        let factory =
          match models_kind with
          | `Oracle -> Sta.oracle_factory design th
          | `Synthetic -> Sta.synthetic_factory ()
        in
        let v =
          Verify.analyze ~mode ~models:factory.Sta.models ~thresholds:th
            design ~pi:events
        in
        let v, refinement =
          if not sense then (v, None)
          else begin
            let s = Sense.analyze design ~pi:(Sense.stimuli_of_events events) in
            let v, r =
              Verify.refine v ~unsensitizable:(Sense.pair_unsensitizable s)
            in
            (v, Some r)
          end
        in
        let diags = apply_code_filter codes (Verify.check ~file v) in
        (match format with
         | `Text ->
           let s = Verify.summary v in
           Printf.printf
             "design %s: %d cells, %d switching; never-proximate %d, \
              always-proximate %d, may-be-proximate %d\n"
             name s.Verify.total_cells s.Verify.switching_cells s.Verify.never
             s.Verify.always s.Verify.may;
           (match refinement with
            | None -> ()
            | Some (r : Verify.refinement) ->
              Printf.printf
                "sensitization refinement: %d pairs and %d cells converted \
                 to never-proximate\n"
                r.Verify.refined_pairs r.Verify.refined_cells);
           print_string (Diagnostic.report_text diags)
         | `Json | `Sarif -> print_report format diags);
        Diagnostic.exit_code ~fail_on diags)

(* CLI boundary: a typo'd --pi-window net name is a usage error (exit 2),
   not a crash *)
let run_verify file pi_specs window_specs tau_window_ps mode models_kind
    format fail_on codes_filter sense =
  try
    run_verify file pi_specs window_specs tau_window_ps mode models_kind
      format fail_on codes_filter sense
  with Verify.Unknown_window_net { net } ->
    Printf.eprintf
      "proxim verify: error: --pi-window names %s, which is not a primary \
       input of the design\n"
      net;
    2

(* ------------------------------------------------------------------ *)
(* hazards                                                             *)

module Hazard = Proxim_hazard.Hazard

let run_hazards file pi_specs window_specs tau_window_ps mode models_kind
    filter_margin_ps required_ps format fail_on codes_filter sense =
  let tech = Tech.generic_5v in
  match load_design tech file with
  | exception Sys_error m ->
    prerr_endline m;
    1
  | Error m ->
    prerr_endline m;
    1
  | Ok (name, design, file_th) -> (
    match
      ( parse_all parse_pi_spec [] pi_specs,
        parse_all parse_window_spec [] window_specs,
        resolve_code_filter codes_filter )
    with
    | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
      prerr_endline m;
      2
    | _, _, Ok `Table -> print_code_table ()
    | Ok [], _, _ ->
      prerr_endline "proxim hazards: need at least one --pi event";
      2
    | Ok pi, Ok windows, Ok codes ->
      Verify.validate_window_nets design (window_net_names windows);
      let th =
        match file_th with
        | Some th -> th
        | None -> (
          match Design.cells design with
          | c :: _ -> Vtc.thresholds c.Design.gate
          | [] -> (
            match Gate.of_name tech "inv" with
            | Ok g -> Vtc.thresholds g
            | Error m -> failwith m))
      in
        let global =
          List.fold_left
            (fun acc -> function `Global w -> w | `Net _ -> acc)
            0. windows
        in
        let window_for net =
          List.fold_left
            (fun acc -> function
              | `Net (n, w) when n = net -> w
              | `Net _ | `Global _ -> acc)
            global windows
        in
        let tau_window = tau_window_ps *. 1e-12 in
        let events =
          List.map
            (fun (net, a) ->
              Verify.of_sta_event ~time_window:(window_for net) ~tau_window
                (net, a))
            pi
        in
        let factory =
          match models_kind with
          | `Oracle -> Sta.oracle_factory design th
          | `Synthetic -> Sta.synthetic_factory ()
        in
        let rule =
          match models_kind with
          | `Synthetic -> Hazard.model_rule
          | `Oracle -> Hazard.inertial_rule ~thresholds:th ()
        in
        let h =
          Hazard.analyze ~mode
            ~filter_margin:(filter_margin_ps *. 1e-12)
            ?required:(Option.map (fun r -> r *. 1e-12) required_ps)
            ~rule ~models:factory.Sta.models ~thresholds:th design ~pi:events
        in
        let h, refinement =
          if not sense then (h, None)
          else begin
            let s = Sense.analyze design ~pi:(Sense.stimuli_of_events events) in
            let h, r =
              Hazard.refine h ~impossible:(Sense.pair_unsensitizable s)
            in
            (h, Some r)
          end
        in
        let diags = apply_code_filter codes (Hazard.check ~file h) in
        (match format with
         | `Text ->
           Printf.printf "design %s: %s" name (Hazard.report_text h);
           (match refinement with
            | None -> ()
            | Some (r : Hazard.refinement) ->
              Printf.printf
                "sensitization refinement: %d impossible pairs dropped, %d \
                 cells demoted\n"
                r.Hazard.refined_pairs r.Hazard.refined_cells);
           print_string (Diagnostic.report_text diags)
         | `Json | `Sarif -> print_report format diags);
        Diagnostic.exit_code ~fail_on diags)

let run_hazards file pi_specs window_specs tau_window_ps mode models_kind
    filter_margin_ps required_ps format fail_on codes_filter sense =
  try
    run_hazards file pi_specs window_specs tau_window_ps mode models_kind
      filter_margin_ps required_ps format fail_on codes_filter sense
  with Verify.Unknown_window_net { net } ->
    Printf.eprintf
      "proxim hazards: error: --pi-window names %s, which is not a primary \
       input of the design\n"
      net;
    2

(* ------------------------------------------------------------------ *)
(* sense                                                               *)

let parse_const_spec s =
  match String.index_opt s '=' with
  | Some i when i > 0 && i = String.length s - 2 -> (
    let net = String.sub s 0 i in
    match s.[i + 1] with
    | '0' -> Ok (net, false)
    | '1' -> Ok (net, true)
    | _ -> Error (`Msg (Printf.sprintf "bad --const %s (expected NET=0|1)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad --const %s (expected NET=0|1)" s))

let run_sense file pi_specs const_specs budget max_support format fail_on
    codes_filter =
  let tech = Tech.generic_5v in
  match load_design tech file with
  | exception Sys_error m ->
    prerr_endline m;
    1
  | Error m ->
    prerr_endline m;
    1
  | Ok (name, design, _file_th) -> (
    match
      ( parse_all parse_pi_spec [] pi_specs,
        parse_all parse_const_spec [] const_specs,
        resolve_code_filter codes_filter )
    with
    | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
      prerr_endline m;
      2
    | _, _, Ok `Table -> print_code_table ()
    | Ok pi, Ok consts, Ok codes -> (
      if budget < 1 then begin
        prerr_endline "proxim sense: --budget must be >= 1";
        2
      end
      else if max_support < 0 then begin
        prerr_endline "proxim sense: --support must be >= 0";
        2
      end
      else
        let events = List.map (Verify.of_sta_event ?time_window:None) pi in
        match Sense.stimuli_of_events ~consts events with
        | exception Invalid_argument m ->
          prerr_endline ("proxim sense: " ^ m);
          2
        | stim -> (
          match Sense.analyze ~budget ~max_support design ~pi:stim with
          | exception Invalid_argument m ->
            prerr_endline ("proxim sense: " ^ m);
            2
          | s ->
            let diags = apply_code_filter codes (Sense.check ~file s) in
            (match format with
             | `Text ->
               Printf.printf "design %s: %s" name (Sense.report_text s);
               print_string (Diagnostic.report_text diags)
             | `Json | `Sarif -> print_report format diags);
            Diagnostic.exit_code ~fail_on diags)))

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)

open Cmdliner

let gate_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"GATE" ~doc:"Gate type: inv, nandN, norN, aoi21, oai21.")

(* Shared --domains flag: configures the process-wide pool every
   characterization path defaults to.  1 = serial (bit-identical). *)
let domains_setup =
  let doc =
    "Number of domains (cores) used for parallel characterization sweeps; 1 \
     runs everything serially with bit-identical results."
  in
  let arg =
    Arg.(
      value
      & opt int (Proxim_util.Pool.recommended_domains ())
      & info [ "domains" ] ~docv:"N" ~doc)
  in
  let setup n =
    if n < 1 then begin
      prerr_endline "proxim: --domains must be >= 1";
      exit 2
    end;
    Proxim_util.Pool.set_default_domains n
  in
  Term.(const setup $ arg)

(* Shared observability flags: --trace FILE records every instrumented
   span to a Chrome trace-event JSON file (load it in ui.perfetto.dev);
   --metrics text|json prints the metrics-registry snapshot after the
   command body runs. *)
type obs_opts = {
  trace_file : string option;
  metrics_fmt : [ `Text | `Json ] option;
}

let obs_setup =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record instrumented spans and write them as Chrome \
             trace-event JSON to $(docv) (loadable in Perfetto, \
             ui.perfetto.dev, or chrome://tracing).")
  in
  let metrics =
    Arg.(
      value
      & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
      & info [ "metrics" ] ~docv:"FMT"
          ~doc:
            "Print a metrics-registry snapshot (counters, gauges, latency \
             histograms) after the run: text or json.")
  in
  let setup trace_file metrics_fmt =
    Obs_metrics.install_util_sources ();
    if trace_file <> None then Obs_trace.enable ();
    { trace_file; metrics_fmt }
  in
  Term.(const setup $ trace $ metrics)

let finish_obs obs code =
  (match obs.trace_file with
   | None -> ()
   | Some f ->
     Obs_trace.write_file f;
     Printf.eprintf "trace written to %s (load in ui.perfetto.dev)\n" f);
  (match obs.metrics_fmt with
   | None -> ()
   | Some `Text -> print_string (Obs_metrics.to_text (Obs_metrics.snapshot ()))
   | Some `Json ->
     print_endline (Obs_metrics.to_json (Obs_metrics.snapshot ())));
  code

let vtc_cmd =
  Cmd.v (Cmd.info "vtc" ~doc:"Print the VTC family and chosen thresholds")
    Term.(const (fun () g -> run_vtc g) $ domains_setup $ gate_arg)

let delay_cmd =
  let pin = Arg.(value & opt string "a" & info [ "pin" ] ~docv:"PIN") in
  let edge = Arg.(value & opt string "fall" & info [ "edge" ] ~docv:"EDGE") in
  let tau =
    Arg.(value & opt float 500. & info [ "tau" ] ~docv:"PS" ~doc:"transition time, ps")
  in
  let load =
    Arg.(value & opt (some float) None & info [ "load" ] ~docv:"FF" ~doc:"output load, fF")
  in
  Cmd.v (Cmd.info "delay" ~doc:"Single-input delay on the golden simulator")
    Term.(
      const (fun () g p e t l -> run_delay g p e t l)
      $ domains_setup $ gate_arg $ pin $ edge $ tau $ load)

let proximity_cmd =
  let events =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"EVENT"
          ~doc:"Input events as pin:edge:tau_ps:cross_ps, e.g. a:fall:500:0.")
  in
  let baselines =
    Arg.(value & flag & info [ "baselines" ] ~doc:"Also run the collapse-to-inverter baselines.")
  in
  Cmd.v
    (Cmd.info "proximity"
       ~doc:"Run ProximityDelay on a set of input events and compare with the golden simulator")
    Term.(
      const (fun () g ev b -> run_proximity g ev b)
      $ domains_setup $ gate_arg $ events $ baselines)

let glitch_cmd =
  let fall_pin = Arg.(value & opt string "a" & info [ "fall-pin" ]) in
  let rise_pin = Arg.(value & opt string "b" & info [ "rise-pin" ]) in
  let tau_fall = Arg.(value & opt float 500. & info [ "tau-fall" ] ~docv:"PS") in
  let tau_rise = Arg.(value & opt float 100. & info [ "tau-rise" ] ~docv:"PS") in
  let sep = Arg.(value & opt float 0. & info [ "sep" ] ~docv:"PS") in
  let find_min =
    Arg.(value & flag & info [ "find-min" ] ~doc:"Bisect for the inertial delay.")
  in
  Cmd.v (Cmd.info "glitch" ~doc:"Opposite-transition glitch analysis (paper section 6)")
    Term.(
      const (fun () g fp rp tf tr s m -> run_glitch g fp rp tf tr s m)
      $ domains_setup $ gate_arg $ fall_pin $ rise_pin $ tau_fall $ tau_rise
      $ sep $ find_min)

let lint_cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Netlist (.ntl) or characterized-store file to lint.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: text, json or sarif (SARIF 2.1.0).")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [ ("warning", Diagnostic.Warning); ("error", Diagnostic.Error) ])
          Diagnostic.Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Lowest severity that makes the exit status nonzero: warning \
             (default) or error.")
  in
  let fanout_limit =
    Arg.(
      value & opt int Netlist_lint.default_options.Netlist_lint.fanout_limit
      & info [ "fanout-limit" ] ~docv:"N"
          ~doc:"Fanout above which PX112 fires.")
  in
  let codes =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "codes" ] ~docv:"CODES"
          ~doc:
            "Without a value, print the diagnostic-code table and exit. \
             With a comma-separated list of codes or glob patterns (e.g. \
             PX101,PX112 or PX1*,PX30?), keep only those codes — the \
             filter applies before --fail-on computes the exit status.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static diagnostics for netlists, threshold sets and characterized \
          stores")
    Term.(
      const (fun obs fs fmt fo fl c -> finish_obs obs (run_lint fs fmt fo fl c))
      $ obs_setup $ files $ format $ fail_on $ fanout_limit $ codes)

let sta_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Netlist to analyze: text (.ntl) or binary (.pxb), detected by \
             content.")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:
            "Primary-input event as net:edge:tau_ps:cross_ps (repeatable), \
             e.g. --pi a:fall:500:0.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum
             [ ("classic", Sta.Classic);
               ("proximity", Sta.Proximity);
               ("jun", Sta.Collapsed Collapse.Jun);
               ("nabavi-lishi", Sta.Collapsed Collapse.Nabavi_lishi) ])
          Sta.Proximity
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Propagation mode: classic (latest single-input response), \
             proximity (the paper's algorithm, default), jun or \
             nabavi-lishi (collapse-to-inverter baselines on the golden \
             simulator).")
  in
  let models =
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("synthetic", `Synthetic) ]) `Oracle
      & info [ "models" ] ~docv:"KIND"
          ~doc:
            "Cell models: oracle (golden-simulator backed, default) or \
             synthetic (fast analytic stand-ins, for flow experiments).")
  in
  let paths =
    Arg.(
      value & opt int 1
      & info [ "paths" ] ~docv:"K"
          ~doc:"Enumerate the K worst paths to the critical output.")
  in
  let required =
    Arg.(
      value
      & opt (some float) None
      & info [ "required" ] ~docv:"PS"
          ~doc:"Required arrival time; prints per-output slacks.")
  in
  let eco =
    Arg.(
      value & opt_all string []
      & info [ "eco" ] ~docv:"EDIT"
          ~doc:
            "Apply an engineering change order after the initial analysis \
             and re-analyze incrementally (repeatable): \
             pi:NET:EDGE:TAU_PS:CROSS_PS re-times a primary input, \
             pi:NET:quiet silences one, cell:NAME marks a cell \
             re-characterized.")
  in
  let verify_eco =
    Arg.(
      value & flag
      & info [ "verify-eco" ]
          ~doc:
            "After the incremental update, rerun a full analysis of the \
             edited design and fail unless the two agree bit-for-bit.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable the static never-proximate pruning that proximity-mode \
             analyses apply by default (the pruned analysis is bit-identical \
             by construction; this flag exists to measure it).")
  in
  let pi_all =
    Arg.(
      value
      & opt (some string) None
      & info [ "pi-all" ] ~docv:"EVENT"
          ~doc:
            "Apply one event as edge:tau_ps:cross_ps to every primary input \
             not already named by a --pi option — the practical way to \
             drive generated designs with thousands of inputs.")
  in
  let sense =
    Arg.(
      value & flag
      & info [ "sense" ]
          ~doc:
            "Add the static-sensitization mask (cells where at most one \
             event can structurally arrive) to the fused prune engine \
             alongside the never-proximate and quiet masks.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Print only the switching-net count instead of the full \
             per-net arrival table (for large designs).")
  in
  Cmd.v
    (Cmd.info "sta"
       ~doc:
         "Static timing analysis of a netlist (text or binary): arrivals, \
          K-worst paths, slacks, incremental (ECO) re-analysis")
    Term.(
      const (fun () obs f p pa m k pk r e v np sn s ->
          finish_obs obs (run_sta f p pa m k pk r e v np sn s))
      $ domains_setup $ obs_setup $ file $ pi $ pi_all $ mode $ models
      $ paths $ required $ eco $ verify_eco $ no_prune $ sense $ summary)

let verify_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist (.ntl) to verify.")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:
            "Primary-input event as net:edge:tau_ps:cross_ps (repeatable), \
             e.g. --pi a:fall:500:0.")
  in
  let windows =
    Arg.(
      value & opt_all string []
      & info [ "pi-window" ] ~docv:"PS|NET=PS"
          ~doc:
            "Arrival-time uncertainty window, ±PS picoseconds (repeatable): \
             a bare value applies to every event, NET=PS overrides one net. \
             Default ±0 (the concrete events).")
  in
  let tau_window =
    Arg.(
      value & opt float 0.
      & info [ "tau-window" ] ~docv:"PS"
          ~doc:"Transition-time uncertainty window, ±PS, for every event.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum [ ("classic", Sta.Classic); ("proximity", Sta.Proximity) ])
          Sta.Proximity
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Analysis mode the intervals abstract: proximity (default) or \
             classic.")
  in
  let models =
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("synthetic", `Synthetic) ]) `Synthetic
      & info [ "models" ] ~docv:"KIND"
          ~doc:
            "Cell models: synthetic (fast analytic stand-ins, default) or \
             oracle (golden-simulator backed).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: text, json or sarif (SARIF 2.1.0).")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [ ("warning", Diagnostic.Warning); ("error", Diagnostic.Error) ])
          Diagnostic.Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Lowest severity that makes the exit status nonzero: warning \
             (default) or error.")
  in
  let codes =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "codes" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes or glob patterns to keep \
             (e.g. PX301,PX304 or PX3*); everything else is dropped from \
             the report and the exit status.  Without a value, print the \
             code table and exit.")
  in
  let sense =
    Arg.(
      value & flag
      & info [ "sense" ]
          ~doc:
            "Refine the classifications with static sensitization: pairs \
             whose pins can never both carry events under any consistent \
             logic assignment become never-proximate (false paths).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Static proximity verification: interval abstract interpretation \
          over the timing graph, PX3xx diagnostics")
    Term.(
      const (fun () obs f p w tw m mk fmt fo c sn ->
          finish_obs obs (run_verify f p w tw m mk fmt fo c sn))
      $ domains_setup $ obs_setup $ file $ pi $ windows $ tau_window $ mode
      $ models $ format $ fail_on $ codes $ sense)

let hazards_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist (.ntl) to analyze.")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:
            "Primary-input event as net:edge:tau_ps:cross_ps (repeatable). \
             Unlike sta/verify, edges may mix freely; two events on one \
             net describe a pulse.")
  in
  let windows =
    Arg.(
      value & opt_all string []
      & info [ "pi-window" ] ~docv:"PS|NET=PS"
          ~doc:
            "Arrival-time uncertainty window, ±PS picoseconds (repeatable): \
             a bare value applies to every event, NET=PS overrides one net. \
             Default ±0 (the concrete events).")
  in
  let tau_window =
    Arg.(
      value & opt float 0.
      & info [ "tau-window" ] ~docv:"PS"
          ~doc:"Transition-time uncertainty window, ±PS, for every event.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum [ ("classic", Sta.Classic); ("proximity", Sta.Proximity) ])
          Sta.Proximity
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Same-edge window transfer the analysis abstracts: proximity \
             (default) or classic.")
  in
  let models =
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("synthetic", `Synthetic) ])
          `Synthetic
      & info [ "models" ] ~docv:"KIND"
          ~doc:
            "Cell models and section-6 rule: synthetic (analytic stand-ins \
             with the macromodel surrogate rule, default) or oracle \
             (golden-simulator models with bisected inertial minimum \
             separations).")
  in
  let filter_margin =
    Arg.(
      value & opt float 25.
      & info [ "filter-margin" ] ~docv:"PS"
          ~doc:
            "PX403 band, picoseconds: filtered pairs clearing the minimum \
             separation by less than this are reported as near misses.")
  in
  let required =
    Arg.(
      value
      & opt (some float) None
      & info [ "required" ] ~docv:"PS"
          ~doc:
            "Primary-output required time for the observability pass; \
             defaults to the latest arrival bound in the design (every \
             reachable glitch observable).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: text, json or sarif (SARIF 2.1.0).")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [ ("warning", Diagnostic.Warning); ("error", Diagnostic.Error) ])
          Diagnostic.Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Lowest severity that makes the exit status nonzero: warning \
             (default) or error.")
  in
  let codes =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "codes" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes or glob patterns to keep \
             (e.g. PX401,PX402 or PX40?); everything else is dropped from \
             the report and the exit status.  Without a value, print the \
             code table and exit.")
  in
  let sense =
    Arg.(
      value & flag
      & info [ "sense" ]
          ~doc:
            "Refine the verdicts with static sensitization: opposing-edge \
             pairs whose pins can never both carry events are dropped and \
             the cell verdicts recomputed (pulse pairs always kept).")
  in
  Cmd.v
    (Cmd.info "hazards"
       ~doc:
         "Static glitch/hazard analysis: edge-pair windows against the \
          section-6 minimum-separation rule, required-time observability, \
          PX4xx diagnostics")
    Term.(
      const (fun () obs f p w tw m mk fm r fmt fo c sn ->
          finish_obs obs (run_hazards f p w tw m mk fm r fmt fo c sn))
      $ domains_setup $ obs_setup $ file $ pi $ windows $ tau_window $ mode
      $ models $ filter_margin $ required $ format $ fail_on $ codes $ sense)

let sense_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist (text or binary) to analyze.")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:
            "Primary-input event as net:edge:tau_ps:cross_ps (repeatable); \
             only the net and edge matter here.  Two events on one net \
             describe a pulse.  Inputs named by neither --pi nor --const \
             are free (quiet at an unknown level).")
  in
  let consts =
    Arg.(
      value & opt_all string []
      & info [ "const" ] ~docv:"NET=0|1"
          ~doc:"Pin a quiet primary input at a logic level (repeatable).")
  in
  let budget =
    Arg.(
      value & opt int Sense.default_budget
      & info [ "budget" ] ~docv:"CELLS"
          ~doc:
            "Fanin-cone cell limit per input pair before the implication \
             engine gives up (conservatively sensitizable).")
  in
  let support =
    Arg.(
      value & opt int Sense.default_max_support
      & info [ "support" ] ~docv:"N"
          ~doc:
            "Free-input limit per pair: at most 2^N cubes are enumerated \
             before the engine gives up.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: text, json or sarif (SARIF 2.1.0).")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [ ("warning", Diagnostic.Warning); ("error", Diagnostic.Error) ])
          Diagnostic.Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Lowest severity that makes the exit status nonzero: warning \
             (default) or error.")
  in
  let codes =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "codes" ] ~docv:"CODES"
          ~doc:
            "Comma-separated diagnostic codes or glob patterns to keep \
             (e.g. PX503 or PX5*); everything else is dropped from the \
             report and the exit status.  Without a value, print the code \
             table and exit.")
  in
  Cmd.v
    (Cmd.info "sense"
       ~doc:
         "Static sensitization analysis: ternary constant propagation, \
          bounded implication over input pairs, PX5xx diagnostics")
    Term.(
      const (fun () obs f p cn b su fmt fo c ->
          finish_obs obs (run_sense f p cn b su fmt fo c))
      $ domains_setup $ obs_setup $ file $ pi $ consts $ budget $ support
      $ format $ fail_on $ codes)

let profile_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist (.ntl) to profile.")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:
            "Primary-input event as net:edge:tau_ps:cross_ps (repeatable), \
             e.g. --pi a:fall:500:0.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum [ ("classic", Sta.Classic); ("proximity", Sta.Proximity) ])
          Sta.Proximity
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Propagation mode: proximity (default) or classic.")
  in
  let models =
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("synthetic", `Synthetic) ]) `Oracle
      & info [ "models" ] ~docv:"KIND"
          ~doc:
            "Cell models: oracle (golden-simulator backed, default) or \
             synthetic (fast analytic stand-ins).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Per-phase time and allocation breakdown of an STA run (parse, \
          thresholds, characterize, build, analyze, report)")
    Term.(
      const (fun () obs f p m mk -> finish_obs obs (run_profile f p m mk))
      $ domains_setup $ obs_setup $ file $ pi $ mode $ models)

let storage_cmd =
  let fan_in = Arg.(value & opt int 3 & info [ "fan-in" ]) in
  let points = Arg.(value & opt int 10 & info [ "points" ]) in
  Cmd.v (Cmd.info "storage" ~doc:"Storage-complexity comparison (paper figure 4-2)")
    Term.(const run_storage $ fan_in $ points)

let format_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("binary", `Binary) ])) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output encoding: text or binary.  Default: by output extension \
           (.pxb is binary, anything else text).")

let gen_cmd =
  let cells =
    Arg.(
      required
      & opt (some int) None
      & info [ "cells"; "n" ] ~docv:"N" ~doc:"Number of cells to generate.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"PRNG seed; same seed and shape, same design, bit for bit.")
  in
  let depth =
    Arg.(
      value & opt int 16
      & info [ "depth" ] ~docv:"D" ~doc:"Number of logic layers (levels).")
  in
  let window =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"W"
          ~doc:
            "Placement-locality window: inputs come from within ±W of the \
             cell's aligned position in the source layer.")
  in
  let reach =
    Arg.(
      value & opt int 3
      & info [ "reach" ] ~docv:"R"
          ~doc:
            "How many layers back non-dominant inputs may reach \
             (reconvergence).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write here instead of stdout (stdout is always text).")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a deterministic synthetic layered design for scale \
          testing")
    Term.(
      const (fun n s d w r o f -> run_gen n s d w r o f)
      $ cells $ seed $ depth $ window $ reach $ out $ format_arg)

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"INPUT"
          ~doc:"Netlist to read (text or binary, detected by content).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT" ~doc:"File to write.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a netlist between the text (.ntl) and binary (.pxb) \
          encodings, preserving any thresholds directive")
    Term.(const run_convert $ input $ output $ format_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

module Serve = Proxim_serve.Serve
module Sjson = Proxim_lint.Json

(* unix:PATH | tcp:HOST:PORT | bare PATH (a unix socket) *)
let parse_addr s =
  let prefixed p =
    String.length s > String.length p
    && String.sub s 0 (String.length p) = p
  in
  if prefixed "unix:" then
    Ok (`Unix (String.sub s 5 (String.length s - 5)))
  else if prefixed "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | Some i -> (
      let host = String.sub rest 0 i in
      let port_s = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 -> Ok (`Tcp (host, port))
      | _ -> Error (Printf.sprintf "bad port in address %s" s))
    | None -> Error (Printf.sprintf "bad address %s (tcp:HOST:PORT)" s)
  end
  else Ok (`Unix s)

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* the daemon: bind, announce, serve until a protocol shutdown (or a
   signal) stops it — a clean stop is exit 0 *)
let run_serve_daemon addr =
  match Serve.start addr with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "proxim serve: cannot listen on %s: %s\n"
      (addr_to_string addr) (Unix.error_message e);
    1
  | srv ->
    let announced =
      match (addr, Serve.port srv) with
      | `Tcp (host, _), Some p -> `Tcp (host, p)
      | a, _ -> a
    in
    Printf.printf "proxim serve: listening on %s\n%!"
      (addr_to_string announced);
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.stop srv))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ];
    Serve.wait srv;
    Printf.printf "proxim serve: shut down cleanly\n%!";
    0

(* raw client: each --send payload goes out as one frame verbatim (so a
   test can push deliberately broken JSON through the framing), and
   each response prints as one line of JSON *)
let run_serve_send addr payloads =
  match Serve.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "proxim serve: cannot connect to %s: %s\n"
      (addr_to_string addr) (Unix.error_message e);
    1
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let rec go = function
          | [] -> 0
          | payload :: tl -> (
            Proxim_serve.Frame.write fd payload;
            match Proxim_serve.Frame.read fd with
            | Ok response ->
              print_endline response;
              go tl
            | Error e ->
              Printf.eprintf "proxim serve: %s\n"
                (Proxim_serve.Frame.read_error_to_string e);
              1)
        in
        go payloads)

let serve_fail m =
  prerr_endline ("proxim serve: " ^ m);
  1

let serve_request fd req k =
  match Serve.request fd req with
  | Error m -> serve_fail m
  | Ok resp ->
    if Serve.ok resp then k resp
    else
      serve_fail
        (match Sjson.member "error" resp with
         | Some e ->
           Printf.sprintf "%s: %s"
             (Option.value (Serve.error_code resp) ~default:"error")
             (Option.value
                (Option.bind (Sjson.member "message" e)
                   Sjson.to_string_value)
                ~default:"")
         | None -> "request failed")

(* smoke client for CI: drive load -> attach -> eco -> report through a
   live daemon and print the result in exactly the format `proxim sta`
   uses, so the bytes can be diffed against offline analysis *)
let run_serve_smoke addr file pi_specs pi_all_spec eco_specs mode paths_k =
  match
    ( parse_all parse_pi_spec [] pi_specs,
      parse_all parse_eco_spec [] eco_specs,
      Option.fold ~none:(Ok None)
        ~some:(fun s -> Result.map Option.some (parse_pi_all_spec s))
        pi_all_spec )
  with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
    usage_error m
  | Ok [], _, Ok None ->
    usage_error "proxim serve: need at least one --pi event (or --pi-all)"
  | Ok named_pi, Ok ecos, Ok pi_all -> (
    match Serve.connect addr with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "proxim serve: cannot connect to %s: %s\n"
        (addr_to_string addr) (Unix.error_message e);
      1
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let abs =
            if Filename.is_relative file then
              Filename.concat (Sys.getcwd ()) file
            else file
          in
          serve_request fd
            (Sjson.Obj
               [ ("op", Sjson.String "load"); ("path", Sjson.String abs) ])
            (fun load_resp ->
              let dname =
                Option.value
                  (Option.bind (Sjson.member "design" load_resp)
                     Sjson.to_string_value)
                  ~default:""
              in
              let attach_fields =
                [
                  ("op", Sjson.String "attach");
                  ("design", Sjson.String dname);
                  ( "mode",
                    Sjson.String
                      (match mode with
                       | Sta.Classic -> "classic"
                       | _ -> "proximity") );
                  ("models", Sjson.String "synthetic");
                  ( "pi",
                    Sjson.List
                      (List.map
                         (fun (net, a) ->
                           Sjson.List
                             [ Sjson.String net; Serve.arrival_to_json a ])
                         named_pi) );
                ]
                @
                match pi_all with
                | None -> []
                | Some a -> [ ("pi_all", Serve.arrival_to_json a) ]
              in
              serve_request fd (Sjson.Obj attach_fields) (fun _ ->
                  let after_ecos k =
                    if ecos = [] then k ()
                    else
                      serve_request fd
                        (Sjson.Obj
                           [
                             ("op", Sjson.String "eco");
                             ( "ecos",
                               Sjson.List
                                 (List.map
                                    (function
                                      | Sta.Touch_cell c ->
                                        Sjson.Obj
                                          [
                                            ( "kind",
                                              Sjson.String "touch_cell" );
                                            ("cell", Sjson.String c);
                                          ]
                                      | Sta.Set_pi (net, a) ->
                                        Sjson.Obj
                                          [
                                            ("kind", Sjson.String "set_pi");
                                            ("net", Sjson.String net);
                                            ( "arrival",
                                              match a with
                                              | None -> Sjson.Null
                                              | Some a ->
                                                Serve.arrival_to_json a );
                                          ])
                                    ecos) );
                           ])
                        (fun _ -> k ())
                  in
                  after_ecos (fun () ->
                      serve_request fd
                        (Sjson.Obj [ ("op", Sjson.String "report") ])
                        (fun resp ->
                          match
                            match Sjson.member "report" resp with
                            | None -> Error "response carries no report"
                            | Some rj -> Serve.report_of_json rj
                          with
                          | Error m -> serve_fail m
                          | Ok report ->
                            (* byte-compatible with run_sta's output *)
                            Printf.printf "arrivals:\n";
                            List.iter
                              (fun (net, (a : Sta.arrival)) ->
                                Printf.printf
                                  "  %-14s %8.1f ps  slew %7.1f ps  %s\n" net
                                  (ps a.Sta.time) (ps a.Sta.slew)
                                  (edge_name a.Sta.edge))
                              report.Sta.arrivals;
                            (match report.Sta.critical_po with
                             | None ->
                               Printf.printf "no primary output switches\n";
                               ignore
                                 (serve_request fd
                                    (Sjson.Obj
                                       [ ("op", Sjson.String "bye") ])
                                    (fun _ -> 0)
                                   : int);
                               0
                             | Some (po, a) ->
                               Printf.printf "critical output: %s at %.1f ps\n"
                                 po (ps a.Sta.time);
                               serve_request fd
                                 (Sjson.Obj
                                    [
                                      ("op", Sjson.String "paths");
                                      ("po", Sjson.String po);
                                      ( "k",
                                        Sjson.Number (float_of_int paths_k)
                                      );
                                    ])
                                 (fun presp ->
                                   let paths =
                                     Option.value
                                       (Option.bind
                                          (Sjson.member "paths" presp)
                                          Sjson.to_list)
                                       ~default:[]
                                   in
                                   List.iteri
                                     (fun i p ->
                                       let arrival =
                                         Option.value
                                           (Option.bind
                                              (Sjson.member "arrival" p)
                                              Sjson.to_number)
                                           ~default:Float.nan
                                       in
                                       let nets =
                                         Option.value
                                           (Option.bind
                                              (Sjson.member "nets" p)
                                              Sjson.to_list)
                                           ~default:[]
                                       in
                                       Printf.printf
                                         "path #%d (%8.1f ps): %s\n" (i + 1)
                                         (ps arrival)
                                         (String.concat " <- "
                                            (List.filter_map
                                               Sjson.to_string_value nets)))
                                     paths;
                                   serve_request fd
                                     (Sjson.Obj
                                        [ ("op", Sjson.String "bye") ])
                                     (fun _ -> 0)))))))))

let run_serve listen_s connect_s payloads smoke_file pi_specs pi_all_spec
    eco_specs mode paths_k =
  let with_addr s k =
    match parse_addr s with Error m -> usage_error m | Ok a -> k a
  in
  match (connect_s, smoke_file, payloads) with
  | None, None, [] -> (
    match listen_s with
    | Some s -> with_addr s run_serve_daemon
    | None ->
      usage_error
        "proxim serve: pass --listen ADDR to serve, or --connect ADDR with \
         --send/--smoke to talk to a daemon")
  | None, _, _ ->
    usage_error "proxim serve: --send/--smoke need --connect ADDR"
  | Some _, Some _, _ :: _ ->
    usage_error "proxim serve: --send and --smoke are mutually exclusive"
  | Some c, None, (_ :: _ as payloads) ->
    with_addr c (fun a -> run_serve_send a payloads)
  | Some c, Some file, [] ->
    with_addr c (fun a ->
        run_serve_smoke a file pi_specs pi_all_spec eco_specs mode paths_k)
  | Some _, None, [] ->
    usage_error "proxim serve: --connect needs --send or --smoke"

let serve_cmd =
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve on $(docv): unix:PATH (or a bare path) for a Unix-domain \
             socket, tcp:HOST:PORT for TCP (port 0 picks a free port, \
             announced on stdout).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Client mode: connect to a running daemon at $(docv).")
  in
  let send =
    Arg.(
      value & opt_all string []
      & info [ "send" ] ~docv:"JSON"
          ~doc:
            "With --connect: send $(docv) as one frame (verbatim, so even \
             deliberately malformed payloads can be exercised) and print \
             the response.  Repeatable, sent in order.")
  in
  let smoke =
    Arg.(
      value
      & opt (some string) None
      & info [ "smoke" ] ~docv:"FILE"
          ~doc:
            "With --connect: drive load/attach/eco/report against the \
             daemon for netlist $(docv) and print the post-ECO report in \
             `proxim sta` format (for byte-comparison in CI).")
  in
  let pi =
    Arg.(
      value & opt_all string []
      & info [ "pi" ] ~docv:"EVENT"
          ~doc:"Smoke-mode primary-input event net:edge:tau_ps:cross_ps.")
  in
  let pi_all =
    Arg.(
      value
      & opt (some string) None
      & info [ "pi-all" ] ~docv:"EVENT"
          ~doc:
            "Smoke-mode event edge:tau_ps:cross_ps applied to every \
             primary input not named by --pi.")
  in
  let eco =
    Arg.(
      value & opt_all string []
      & info [ "eco" ] ~docv:"ECO"
          ~doc:
            "Smoke-mode edit: pi:NET:EDGE:TAU_PS:CROSS_PS, pi:NET:quiet or \
             cell:NAME, streamed to the daemon before the report.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum [ ("classic", Sta.Classic); ("proximity", Sta.Proximity) ])
          Sta.Proximity
      & info [ "mode" ] ~docv:"MODE" ~doc:"Smoke-mode analysis mode.")
  in
  let paths =
    Arg.(
      value & opt int 1
      & info [ "paths" ] ~docv:"K"
          ~doc:"Smoke mode: enumerate the K worst paths.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived multi-session incremental timing daemon (and its \
          client modes) over a length-prefixed JSON protocol")
    Term.(
      const (fun () l c sn sm p pa e m k ->
          run_serve l c sn sm p pa e m k)
      $ domains_setup $ listen $ connect $ send $ smoke $ pi $ pi_all $ eco
      $ mode $ paths)

let () =
  let doc = "temporal-proximity gate delay modeling (DAC'96 reproduction)" in
  let main =
    Cmd.group (Cmd.info "proxim" ~version:"1.0.0" ~doc)
      [ vtc_cmd; delay_cmd; proximity_cmd; glitch_cmd; sta_cmd; verify_cmd;
        hazards_cmd; sense_cmd; profile_cmd; storage_cmd; lint_cmd; gen_cmd;
        convert_cmd; serve_cmd ]
  in
  exit (Cmd.eval' main)
