(* Static verification: interval arithmetic, exactness on degenerate
   windows, randomized soundness, classification, PX3xx diagnostics and
   the never-proximate prune mask. *)

module Measure = Proxim_measure.Measure
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Models = Proxim_macromodel.Models
module Prng = Proxim_util.Prng
module Pool = Proxim_util.Pool
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Prune = Proxim_sta.Prune
module Diagnostic = Proxim_lint.Diagnostic
module Interval = Proxim_verify.Interval
module Verify = Proxim_verify.Verify

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let nand3 = Gate.nand tech ~fan_in:3
let nor2 = Gate.nor tech ~fan_in:2
let inv = Gate.inverter tech

let synthetic_models =
  let tbl = Hashtbl.create 8 in
  fun (cell : Design.cell) ->
    let key = cell.Design.gate.Gate.name in
    match Hashtbl.find_opt tbl key with
    | Some m -> m
    | None ->
      let m = Models.synthetic cell.Design.gate in
      Hashtbl.add tbl key m;
      m

let thresholds = { Vtc.vil = 1.25; vih = 3.75; vdd = 5.0 }

(* ------------------------------------------------------------------ *)
(* Interval arithmetic                                                 *)

let test_interval_basics () =
  let i = Interval.make 1. 3. in
  Alcotest.(check (float 0.)) "lo" 1. (Interval.lo i);
  Alcotest.(check (float 0.)) "hi" 3. (Interval.hi i);
  Alcotest.(check (float 0.)) "width" 2. (Interval.width i);
  Alcotest.(check bool) "contains" true (Interval.contains i 2.);
  Alcotest.(check bool) "not contains" false (Interval.contains i 3.5);
  Alcotest.(check bool) "degenerate exact" true
    (Interval.degenerate (Interval.exact 7.));
  Alcotest.(check bool) "reversed rejected" true
    (try
       ignore (Interval.make 2. 1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan rejected" true
    (try
       ignore (Interval.make Float.nan 1.);
       false
     with Invalid_argument _ -> true)

let test_interval_ops () =
  let a = Interval.make 1. 2. and b = Interval.make 10. 20. in
  Alcotest.(check (pair (float 0.) (float 0.))) "add" (11., 22.)
    (Interval.pair (Interval.add a b));
  Alcotest.(check (pair (float 0.) (float 0.))) "sub" (8., 19.)
    (Interval.pair (Interval.sub b a));
  Alcotest.(check (pair (float 0.) (float 0.))) "neg" (-2., -1.)
    (Interval.pair (Interval.neg a));
  Alcotest.(check (pair (float 0.) (float 0.))) "hull" (1., 20.)
    (Interval.pair (Interval.hull a b));
  Alcotest.(check (pair (float 0.) (float 0.))) "hull0" (0., 2.)
    (Interval.pair (Interval.hull0 a));
  Alcotest.(check (pair (float 0.) (float 0.))) "scale neg" (-4., -2.)
    (Interval.pair (Interval.scale (-2.) a));
  Alcotest.(check (pair (float 0.) (float 0.))) "max2" (10., 20.)
    (Interval.pair (Interval.max2 a b));
  Alcotest.(check (pair (float 0.) (float 0.))) "inv" (0.5, 1.)
    (Interval.pair (Interval.inv a));
  Alcotest.(check bool) "inv of 0-crossing rejected" true
    (try
       ignore (Interval.inv (Interval.make (-1.) 1.));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "subset" true (Interval.subset a (Interval.make 0. 3.));
  Alcotest.(check bool) "not subset" false (Interval.subset b a);
  Alcotest.(check bool) "intersects" true
    (Interval.intersects a (Interval.make 2. 5.));
  Alcotest.(check bool) "disjoint" false (Interval.intersects a b);
  Alcotest.(check (pair (float 0.) (float 0.))) "clamp_lo" (1.5, 2.)
    (Interval.pair (Interval.clamp_lo 1.5 a))

(* monotone-op containment under random samples *)
let test_interval_containment_qcheck () =
  let rng = Prng.create 0x1A7E1L in
  for _ = 1 to 500 do
    let bound () =
      let x = Prng.float rng ~lo:(-5.) ~hi:5. in
      let y = Prng.float rng ~lo:(-5.) ~hi:5. in
      Interval.make (Float.min x y) (Float.max x y)
    in
    let a = bound () and b = bound () in
    let pick i =
      Prng.float rng ~lo:(Interval.lo i) ~hi:(Interval.hi i)
    in
    let x = pick a and y = pick b in
    assert (Interval.contains (Interval.add a b) (x +. y));
    assert (Interval.contains (Interval.sub a b) (x -. y));
    assert (Interval.contains (Interval.max2 a b) (Float.max x y));
    assert (Interval.contains (Interval.hull a b) x);
    assert (Interval.contains (Interval.scale 3. a) (3. *. x));
    assert (Interval.contains (Interval.scale (-3.) a) (-3. *. x))
  done;
  Alcotest.(check pass) "containment holds" () ()

(* the corners the analyses lean on: inversion domain, zero-hulling of
   optional prefix terms, degenerate max ties, NaN rejection *)
let test_interval_edge_cases () =
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  (* inv is only defined for strictly positive intervals *)
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "inv" (0.25, 0.5)
    (Interval.pair (Interval.inv (Interval.make 2. 4.)));
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool)
        (Printf.sprintf "inv rejects [%g, %g]" lo hi)
        true
        (rejects (fun () -> Interval.inv (Interval.make lo hi))))
    [ (-1., 1.); (0., 1.); (-2., -1.) ];
  (* hull0 keeps the zero endpoint whichever side the interval sits on *)
  Alcotest.(check (pair (float 0.) (float 0.)))
    "hull0 negative" (-3., 0.)
    (Interval.pair (Interval.hull0 (Interval.make (-3.) (-1.))));
  Alcotest.(check (pair (float 0.) (float 0.)))
    "hull0 positive" (0., 5.)
    (Interval.pair (Interval.hull0 (Interval.make 2. 5.)));
  Alcotest.(check (pair (float 0.) (float 0.)))
    "hull0 straddling" (-2., 5.)
    (Interval.pair (Interval.hull0 (Interval.make (-2.) 5.)));
  (* max2 ties on degenerate windows stay degenerate and exact *)
  let d = Interval.exact 4. in
  Alcotest.(check bool) "max2 tie degenerate" true
    (Interval.degenerate (Interval.max2 d (Interval.exact 4.)));
  Alcotest.(check (pair (float 0.) (float 0.)))
    "max2 tie value" (4., 4.)
    (Interval.pair (Interval.max2 d (Interval.exact 4.)));
  Alcotest.(check (pair (float 0.) (float 0.)))
    "max2 partial tie" (2., 4.)
    (Interval.pair (Interval.max2 (Interval.make 1. 4.) (Interval.make 2. 4.)));
  (* NaN is rejected in every constructor position, as is lo > hi *)
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool)
        (Printf.sprintf "make rejects (%f, %f)" lo hi)
        true
        (rejects (fun () -> Interval.make lo hi)))
    [ (Float.nan, 1.); (1., Float.nan); (Float.nan, Float.nan); (2., 1.) ];
  Alcotest.(check bool) "of_pair rejects NaN" true
    (rejects (fun () -> Interval.of_pair (Float.nan, 0.)));
  (* clamp_lo on an entirely-below interval collapses to the floor *)
  Alcotest.(check (pair (float 0.) (float 0.)))
    "clamp_lo collapse" (1., 1.)
    (Interval.pair (Interval.clamp_lo 1. (Interval.make (-2.) (-1.))))

(* ------------------------------------------------------------------ *)
(* A small hand-built design                                           *)

let small_design () =
  Design.create
    ~cells:
      [
        { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
          output_net = "n1" };
        { Design.name = "u2"; gate = inv; input_nets = [| "c" |];
          output_net = "n2" };
        { Design.name = "u3"; gate = nor2; input_nets = [| "n1"; "n2" |];
          output_net = "y" };
      ]
    ~primary_inputs:[ "a"; "b"; "c" ] ~primary_outputs:[ "y" ]

let ev ?(w = 0.) ?(tw = 0.) net time slew =
  Verify.of_sta_event ~time_window:w ~tau_window:tw
    (net, { Sta.time; slew; edge = Measure.Fall })

(* ------------------------------------------------------------------ *)
(* Exactness on degenerate windows: the abstract pass reproduces the
   concrete STA bit-for-bit in both modes                              *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_exact mode =
  let design = small_design () in
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 400e-12; edge = Measure.Fall });
      ("b", { Sta.time = 60e-12; slew = 250e-12; edge = Measure.Fall });
      ("c", { Sta.time = 30e-12; slew = 500e-12; edge = Measure.Fall });
    ]
  in
  let pool = Pool.create ~domains:1 in
  let report =
    Sta.analyze ~mode ~pool ~models:synthetic_models ~thresholds design ~pi
  in
  Pool.shutdown pool;
  let v =
    Verify.analyze ~mode ~models:synthetic_models ~thresholds design
      ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
  in
  List.iter
    (fun (net, (a : Sta.arrival)) ->
      match Verify.net_arrival v ~net with
      | None -> Alcotest.fail (net ^ " has no abstract arrival")
      | Some (abs : Verify.aarrival) ->
        Alcotest.(check bool)
          (net ^ " time degenerate-exact") true
          (Interval.degenerate abs.Verify.a_time
          && feq (Interval.lo abs.Verify.a_time) a.Sta.time);
        Alcotest.(check bool)
          (net ^ " slew degenerate-exact") true
          (Interval.degenerate abs.Verify.a_slew
          && feq (Interval.lo abs.Verify.a_slew) a.Sta.slew))
    report.Sta.arrivals

let test_exact_proximity () = check_exact Sta.Proximity
let test_exact_classic () = check_exact Sta.Classic

(* ------------------------------------------------------------------ *)
(* Randomized soundness on the small design                            *)

let test_soundness_random () =
  let design = small_design () in
  let rng = Prng.create 0xBEEFL in
  let pool = Pool.create ~domains:1 in
  List.iter
    (fun mode ->
      for _ = 1 to 25 do
        let base net =
          ( net,
            {
              Sta.time = Prng.float rng ~lo:0. ~hi:300e-12;
              slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
              edge = Measure.Fall;
            } )
        in
        let pi = [ base "a"; base "b"; base "c" ] in
        let tw = 30e-12 and sw = 15e-12 in
        let v =
          Verify.analyze ~mode ~models:synthetic_models ~thresholds design
            ~pi:
              (List.map
                 (Verify.of_sta_event ~time_window:tw ~tau_window:sw)
                 pi)
        in
        for _ = 1 to 4 do
          let concrete =
            List.map
              (fun (net, (a : Sta.arrival)) ->
                ( net,
                  {
                    a with
                    Sta.time =
                      Prng.float rng ~lo:(a.Sta.time -. tw)
                        ~hi:(a.Sta.time +. tw);
                    slew =
                      Prng.float rng ~lo:(a.Sta.slew -. sw)
                        ~hi:(a.Sta.slew +. sw);
                  } ))
              pi
          in
          let report =
            Sta.analyze ~mode ~pool ~models:synthetic_models ~thresholds
              design ~pi:concrete
          in
          List.iter
            (fun (net, (a : Sta.arrival)) ->
              match Verify.net_arrival v ~net with
              | None -> Alcotest.fail (net ^ " missing from verification")
              | Some (abs : Verify.aarrival) ->
                if
                  not
                    (Interval.contains abs.Verify.a_time a.Sta.time
                    && Interval.contains abs.Verify.a_slew a.Sta.slew)
                then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s escapes its interval: time %g not in %s or slew \
                        %g not in %s"
                       net a.Sta.time
                       (Interval.to_string abs.Verify.a_time)
                       a.Sta.slew
                       (Interval.to_string abs.Verify.a_slew)))
            report.Sta.arrivals
        done
      done)
    [ Sta.Proximity; Sta.Classic ];
  Pool.shutdown pool;
  Alcotest.(check pass) "all concrete runs inside intervals" () ()

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let test_classification () =
  let design = small_design () in
  (* u1's inputs 500 ps apart: far beyond any synthetic nand2 window
     (~100-300 ps), so u1 is never-proximate; u3 is a falling-input NOR
     pair = gating direction = always-proximate when both switch *)
  let v =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:
        [
          ev "a" 0. 300e-12; ev "b" 900e-12 300e-12; ev "c" 100e-12 300e-12;
        ]
  in
  let info name =
    match Verify.cell_info v ~cell:name with
    | Some i -> i
    | None -> Alcotest.fail (name ^ " has no info")
  in
  Alcotest.(check string) "u1 never"
    (Verify.classification_name Verify.Never_proximate)
    (Verify.classification_name (info "u1").Verify.ci_class);
  Alcotest.(check string) "u2 single-input never"
    (Verify.classification_name Verify.Never_proximate)
    (Verify.classification_name (info "u2").Verify.ci_class);
  Alcotest.(check string) "u3 gating always"
    (Verify.classification_name Verify.Always_proximate)
    (Verify.classification_name (info "u3").Verify.ci_class);
  (* tight nand2 separation with windows: both orders admissible *)
  let v2 =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:
        [
          ev ~w:50e-12 "a" 0. 300e-12;
          ev ~w:50e-12 "b" 10e-12 300e-12;
          ev "c" 2000e-12 300e-12;
        ]
  in
  let u1 =
    match Verify.cell_info v2 ~cell:"u1" with
    | Some i -> i
    | None -> Alcotest.fail "u1 missing"
  in
  Alcotest.(check string) "u1 may-be-proximate"
    (Verify.classification_name Verify.May_be_proximate)
    (Verify.classification_name u1.Verify.ci_class);
  (match u1.Verify.ci_pairs with
  | [ p ] -> Alcotest.(check bool) "pair straddles" true p.Verify.pr_straddles
  | _ -> Alcotest.fail "u1 should have one input pair");
  let s = Verify.summary v in
  Alcotest.(check int) "summary switching" 3 s.Verify.switching_cells;
  Alcotest.(check int) "summary never" 2 s.Verify.never

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let codes_of diags =
  List.map (fun d -> Diagnostic.code_name d.Diagnostic.code) diags

let test_px301_px304 () =
  let design = small_design () in
  (* near-simultaneous a/b with windows -> PX301 on u1; c quiet but
     feeding the 2-input u3 -> PX304 *)
  let v =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev ~w:40e-12 "a" 0. 300e-12; ev ~w:40e-12 "b" 20e-12 300e-12 ]
  in
  Alcotest.(check (list string)) "unconstrained c" [ "c" ]
    (Verify.unconstrained_pis v);
  let diags = Verify.check ~file:"small.ntl" v in
  Alcotest.(check bool) "PX301 present" true
    (List.mem "PX301" (codes_of diags));
  Alcotest.(check bool) "PX304 present" true
    (List.mem "PX304" (codes_of diags));
  (* constrained c, separated events -> clean *)
  let v2 =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:
        [ ev "a" 0. 300e-12; ev "b" 900e-12 300e-12; ev "c" 50e-12 300e-12 ]
  in
  Alcotest.(check (list string)) "clean" [] (codes_of (Verify.check v2));
  (* filter_codes keeps only what was asked for *)
  let only_304 = Diagnostic.filter_codes [ Diagnostic.PX304 ] diags in
  Alcotest.(check bool) "filtered to PX304" true
    (only_304 <> [] && List.for_all (fun d -> d.Diagnostic.code = Diagnostic.PX304) only_304)

(* PX302/PX303 need pathological models: wrap the synthetic ones *)
let test_px302_px303 () =
  let design = small_design () in
  let models_302 (cell : Design.cell) =
    let m = synthetic_models cell in
    { m with Models.tau_range = Some (200e-12, 2e-9) }
  in
  let v =
    Verify.analyze ~models:models_302 ~thresholds design
      ~pi:
        [
          (* 100 ps slew < the claimed 200 ps table floor *)
          ev "a" 0. 100e-12; ev "b" 900e-12 300e-12; ev "c" 50e-12 300e-12;
        ]
  in
  let diags = Verify.check v in
  Alcotest.(check bool) "PX302 fires" true (List.mem "PX302" (codes_of diags));
  Alcotest.(check bool) "PX302 is a warning" true
    (List.for_all
       (fun d ->
         d.Diagnostic.code <> Diagnostic.PX302
         || d.Diagnostic.severity = Diagnostic.Warning)
       diags);
  let models_303 (cell : Design.cell) =
    let m = synthetic_models cell in
    {
      m with
      Models.delay1 =
        (fun ~pin ~edge ~tau ->
          m.Models.delay1 ~pin ~edge ~tau -. 200e-12);
    }
  in
  let v =
    Verify.analyze ~models:models_303 ~thresholds design
      ~pi:
        [ ev "a" 0. 300e-12; ev "b" 900e-12 300e-12; ev "c" 50e-12 300e-12 ]
  in
  let diags = Verify.check v in
  Alcotest.(check bool) "PX303 fires" true (List.mem "PX303" (codes_of diags));
  Alcotest.(check bool) "PX303 is an error" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = Diagnostic.PX303
         && d.Diagnostic.severity = Diagnostic.Error)
       diags);
  Alcotest.(check int) "PX303 makes exit 2" 2
    (Diagnostic.exit_code ~fail_on:Diagnostic.Error diags)

(* ------------------------------------------------------------------ *)
(* Pruning: mask only covers never-proximate cells, pruned analysis is
   bit-identical, prune counter reports the skips                      *)

let test_prune_bit_identical () =
  let design = small_design () in
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall });
      ("b", { Sta.time = 900e-12; slew = 300e-12; edge = Measure.Fall });
      ("c", { Sta.time = 50e-12; slew = 300e-12; edge = Measure.Fall });
    ]
  in
  let v =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
  in
  let prune = Verify.prune_mask v in
  Alcotest.(check bool) "u1 pruned" true
    (prune
       { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
         output_net = "n1" });
  Alcotest.(check bool) "u3 not pruned" false
    (prune
       { Design.name = "u3"; gate = nor2; input_nets = [| "n1"; "n2" |];
         output_net = "y" });
  let pool = Pool.create ~domains:1 in
  let run ?prune () =
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
        ~thresholds design ~pi
    in
    ignore (Sta.reanalyze ~pool ir);
    (Sta.report ir, Sta.pruned_evaluations ir)
  in
  let r_full, n_full = run () in
  let r_pruned, n_pruned =
    run ~prune:(Prune.make ~never_proximate:prune ()) ()
  in
  Pool.shutdown pool;
  Alcotest.(check int) "no skips without a mask" 0 n_full;
  Alcotest.(check bool) "fast path taken" true (n_pruned > 0);
  let aeq (a : Sta.arrival) (b : Sta.arrival) =
    feq a.Sta.time b.Sta.time && feq a.Sta.slew b.Sta.slew
    && a.Sta.edge = b.Sta.edge
  in
  Alcotest.(check bool) "arrivals bit-identical" true
    (List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && aeq a1 a2)
       r_full.Sta.arrivals r_pruned.Sta.arrivals);
  Alcotest.(check bool) "predecessors identical" true
    (r_full.Sta.predecessors = r_pruned.Sta.predecessors);
  (* a classic-mode verification must never authorize pruning *)
  let v_classic =
    Verify.analyze ~mode:Sta.Classic ~models:synthetic_models ~thresholds
      design
      ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
  in
  let prune_classic = Verify.prune_mask v_classic in
  Alcotest.(check bool) "classic mask is empty" false
    (prune_classic
       { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
         output_net = "n1" })

(* randomized: pruned == unpruned on wider designs *)
let test_prune_bit_identical_random () =
  let rng = Prng.create 0xF00DL in
  let pool = Pool.create ~domains:1 in
  let gate_pool = [| nand2; nor2; nand3 |] in
  for _ = 1 to 10 do
    let width = 6 in
    let pis = List.init width (Printf.sprintf "pi%d") in
    let prev = ref (Array.of_list pis) in
    let cells = ref [] in
    for layer = 0 to 2 do
      let layer_cells =
        Array.init width (fun j ->
            let gate =
              gate_pool.(Prng.int rng ~lo:0 ~hi:(Array.length gate_pool - 1))
            in
            let rec pick chosen n =
              if n = 0 then chosen
              else
                let i = Prng.int rng ~lo:0 ~hi:(width - 1) in
                if List.mem i chosen then pick chosen n
                else pick (i :: chosen) (n - 1)
            in
            let ins = pick [] gate.Gate.fan_in in
            {
              Design.name = Printf.sprintf "u%d_%d" layer j;
              gate;
              input_nets =
                Array.of_list (List.map (fun i -> (!prev).(i)) ins);
              output_net = Printf.sprintf "n%d_%d" layer j;
            })
      in
      cells := Array.to_list layer_cells @ !cells;
      prev := Array.map (fun c -> c.Design.output_net) layer_cells
    done;
    let design =
      Design.create ~cells:(List.rev !cells) ~primary_inputs:pis
        ~primary_outputs:(Array.to_list !prev)
    in
    let pi =
      List.filter_map
        (fun net ->
          if Prng.int rng ~lo:0 ~hi:2 = 0 then None
          else
            Some
              ( net,
                {
                  Sta.time = Prng.float rng ~lo:0. ~hi:600e-12;
                  slew = Prng.float rng ~lo:150e-12 ~hi:500e-12;
                  edge = Measure.Fall;
                } ))
        pis
    in
    let v =
      Verify.analyze ~models:synthetic_models ~thresholds design
        ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
    in
    let run ?prune () =
      let ir =
        Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
          ~thresholds design ~pi
      in
      ignore (Sta.reanalyze ~pool ir);
      Sta.report ir
    in
    let r1 = run ()
    and r2 =
      run ~prune:(Prune.make ~never_proximate:(Verify.prune_mask v) ()) ()
    in
    let aeq (a : Sta.arrival) (b : Sta.arrival) =
      feq a.Sta.time b.Sta.time && feq a.Sta.slew b.Sta.slew
      && a.Sta.edge = b.Sta.edge
    in
    if
      not
        (List.length r1.Sta.arrivals = List.length r2.Sta.arrivals
        && List.for_all2
             (fun (n1, a1) (n2, a2) -> n1 = n2 && aeq a1 a2)
             r1.Sta.arrivals r2.Sta.arrivals
        && r1.Sta.predecessors = r2.Sta.predecessors)
    then Alcotest.fail "pruned analysis diverged from the full one"
  done;
  Pool.shutdown pool;
  Alcotest.(check pass) "10 random designs bit-identical" () ()

(* ------------------------------------------------------------------ *)
(* Input validation                                                    *)

let test_analyze_validation () =
  let design = small_design () in
  Alcotest.(check bool) "collapsed mode rejected" true
    (try
       ignore
         (Verify.analyze
            ~mode:(Sta.Collapsed Proxim_baseline.Collapse.Jun)
            ~models:synthetic_models ~thresholds design ~pi:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "driven net rejected" true
    (try
       ignore
         (Verify.analyze ~models:synthetic_models ~thresholds design
            ~pi:[ ev "n1" 0. 300e-12 ]);
       false
     with Invalid_argument _ -> true);
  (* unknown nets are inert, like Sta *)
  let v =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev "nope" 0. 300e-12 ]
  in
  Alcotest.(check int) "nothing switches" 0
    (Verify.summary v).Verify.switching_cells;
  Alcotest.(check bool) "negative window rejected" true
    (try
       ignore (ev ~w:(-1e-12) "a" 0. 300e-12);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "verify"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "operations" `Quick test_interval_ops;
          Alcotest.test_case "containment random" `Quick
            test_interval_containment_qcheck;
          Alcotest.test_case "edge cases" `Quick test_interval_edge_cases;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "proximity degenerate" `Quick
            test_exact_proximity;
          Alcotest.test_case "classic degenerate" `Quick test_exact_classic;
        ] );
      ( "soundness",
        [ Alcotest.test_case "randomized" `Slow test_soundness_random ] );
      ( "classification",
        [ Alcotest.test_case "never/always/may" `Quick test_classification ] );
      ( "diagnostics",
        [
          Alcotest.test_case "PX301 PX304" `Quick test_px301_px304;
          Alcotest.test_case "PX302 PX303" `Quick test_px302_px303;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "bit-identical" `Quick test_prune_bit_identical;
          Alcotest.test_case "bit-identical random" `Slow
            test_prune_bit_identical_random;
        ] );
      ( "validation",
        [ Alcotest.test_case "inputs" `Quick test_analyze_validation ] );
    ]
