(* Tests for the structural netlist text format. *)

module Tech = Proxim_gates.Tech
module Gate = Proxim_gates.Gate
module Design = Proxim_sta.Design
module Netlist_text = Proxim_sta.Netlist_text

let tech = Tech.generic_5v

let sample =
  {|
# carry tree
design carry_tree
input a b c
output carry
cell u1 nand2 a b -> n1
cell u2 nand2 a c -> n2
cell u3 nand2 b c -> n3
cell u5 nand3 n1 n2 n3 -> carry
end
|}

let test_parse_sample () =
  match Netlist_text.parse tech sample with
  | Error m -> Alcotest.fail m
  | Ok (name, design) ->
    Alcotest.(check string) "name" "carry_tree" name;
    Alcotest.(check int) "cells" 4 (List.length (Design.cells design));
    Alcotest.(check (list string)) "inputs" [ "a"; "b"; "c" ]
      (Design.primary_inputs design);
    Alcotest.(check (list string)) "outputs" [ "carry" ]
      (Design.primary_outputs design);
    (match Design.driver design ~net:"carry" with
     | Some c ->
       Alcotest.(check string) "driver" "u5" c.Design.name;
       Alcotest.(check int) "fan-in" 3 c.Design.gate.Gate.fan_in
     | None -> Alcotest.fail "no driver")

let test_roundtrip () =
  match Netlist_text.parse tech sample with
  | Error m -> Alcotest.fail m
  | Ok (name, design) -> (
    let text = Netlist_text.to_string ~name design in
    match Netlist_text.parse tech text with
    | Error m -> Alcotest.fail ("reparse: " ^ m)
    | Ok (name', design') ->
      Alcotest.(check string) "name" name name';
      Alcotest.(check int) "cells" (List.length (Design.cells design))
        (List.length (Design.cells design'));
      Alcotest.(check (list string)) "inputs" (Design.primary_inputs design)
        (Design.primary_inputs design'))

let expect_error text fragment =
  match Netlist_text.parse tech text with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" fragment
  | Error m ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" m fragment)
      true (contains m fragment)

let test_error_messages () =
  expect_error "cell u1 nand2 a b -> y\nend" "design";
  expect_error "design d\ncell u1 frob a -> y\nend" "unknown gate";
  expect_error "design d\ncell u1 nand2 a -> y\nend" "wants 2 inputs";
  expect_error "design d\ncell u1 nand2 a b y\nend" "expected 'cell";
  expect_error "design d\nfrobnicate\nend" "unrecognized";
  expect_error "design d\nend\ninput a" "after 'end'";
  expect_error "design d\ndesign e\nend" "duplicate";
  (* structural validation comes through Design.create *)
  expect_error
    "design d\ninput a\noutput y\ncell u1 inv a -> y\ncell u2 inv a -> y\nend"
    "driven twice";
  expect_error
    "design d\ninput a\noutput y\ncell u1 inv ghost -> y\nend"
    "undriven"

let test_line_numbers () =
  match Netlist_text.parse tech "design d\n\ncell u1 frob a -> y\nend" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error m ->
    Alcotest.(check bool) "line 3 reported" true
      (String.length m >= 7 && String.sub m 0 7 = "line 3:")

let test_column_numbers () =
  (* the unknown gate name starts at column 9 of line 3 *)
  (match Netlist_text.parse tech "design d\n\ncell u1 frob a -> y\nend" with
   | Ok _ -> Alcotest.fail "expected error"
   | Error m ->
     Alcotest.(check string) "gate-name column" "line 3:9:"
       (String.sub m 0 9));
  (* an unrecognized directive is located at its own first column *)
  (match Netlist_text.parse tech "design d\n   frobnicate\nend" with
   | Ok _ -> Alcotest.fail "expected error"
   | Error m ->
     Alcotest.(check string) "directive column" "line 2:4:" (String.sub m 0 9));
  (* raw errors carry the same positions, structured *)
  let raw = Netlist_text.parse_raw tech "design d\nthresholds 1.0 oops 5.0\nend" in
  match raw.Netlist_text.raw_errors with
  | [ e ] ->
    Alcotest.(check int) "err_line" 2 e.Netlist_text.err_line;
    Alcotest.(check int) "err_col" 16 e.Netlist_text.err_col
  | es -> Alcotest.failf "expected 1 raw error, got %d" (List.length es)

let test_crlf () =
  (* a CRLF-encoded file parses identically to its LF twin *)
  let lf = "design d\ninput a\noutput y\ncell u1 inv a -> y\nend\n" in
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' lf)
  in
  match (Netlist_text.parse tech lf, Netlist_text.parse tech crlf) with
  | Ok (n1, d1), Ok (n2, d2) ->
    Alcotest.(check string) "name" n1 n2;
    Alcotest.(check int) "cells" (List.length (Design.cells d1))
      (List.length (Design.cells d2));
    Alcotest.(check (list string)) "inputs" (Design.primary_inputs d1)
      (Design.primary_inputs d2)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_comments_and_whitespace () =
  let text = "  design   d  # trailing\n# full line\n\tinput a\n output y\ncell u1 inv a -> y\nend" in
  match Netlist_text.parse tech text with
  | Error m -> Alcotest.fail m
  | Ok (name, design) ->
    Alcotest.(check string) "name" "d" name;
    Alcotest.(check int) "one cell" 1 (List.length (Design.cells design))

let () =
  Alcotest.run "netlist_text"
    [
      ( "parse",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_error_messages;
          Alcotest.test_case "line numbers" `Quick test_line_numbers;
          Alcotest.test_case "column numbers" `Quick test_column_numbers;
          Alcotest.test_case "crlf" `Quick test_crlf;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
        ] );
    ]
