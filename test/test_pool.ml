(* Tests for the domain pool and the sharded memo cache, plus the
   parallel == serial determinism guarantees of the characterization
   paths built on them. *)

module Pool = Proxim_util.Pool
module Memo_cache = Proxim_util.Memo_cache
module Floatx = Proxim_util.Floatx
module Prng = Proxim_util.Prng
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Timing = Proxim_timing.Timing
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta

(* a shared wide pool keeps domain spawning out of the per-test cost *)
let wide = lazy (Pool.create ~domains:4)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)

let test_create_invalid () =
  Alcotest.check_raises "domains:0 rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0))

let test_map_preserves_order () =
  let pool = Lazy.force wide in
  let n = 1000 in
  let input = Array.init n (fun i -> i) in
  let out = Pool.map pool (fun i -> i * i) input in
  Alcotest.(check int) "length" n (Array.length out);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
    out

let test_map_list_preserves_order () =
  let pool = Lazy.force wide in
  let input = List.init 257 (fun i -> i) in
  let out = Pool.map_list pool (fun i -> 2 * i) input in
  Alcotest.(check (list int)) "order" (List.map (fun i -> 2 * i) input) out

let test_parallel_for_covers_all_indices () =
  let pool = Lazy.force wide in
  let n = 500 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for pool ~n (fun i -> Atomic.incr counts.(i));
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "index %d run exactly once" i)
        1 (Atomic.get c))
    counts

let test_exceptions_propagate () =
  let pool = Lazy.force wide in
  Alcotest.check_raises "exception from a task reaches the caller"
    (Failure "task 42") (fun () ->
      ignore
        (Pool.map pool
           (fun i -> if i = 42 then failwith "task 42" else i)
           (Array.init 100 Fun.id)));
  (* the pool must survive the failed job *)
  let out = Pool.map pool Fun.id (Array.init 10 Fun.id) in
  Alcotest.(check int) "pool usable after exception" 9 out.(9)

let test_nested_use_is_safe () =
  let pool = Lazy.force wide in
  (* a task that re-enters the same pool must not deadlock; the inner
     job degrades to a serial loop on the occupied domain *)
  let out =
    Pool.map pool
      (fun i ->
        let inner = Pool.map pool (fun j -> (10 * i) + j) (Array.init 5 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 20 Fun.id)
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "nested result %d" i)
        ((50 * i) + 10) v)
    out

let test_serial_pool_matches_wide_pool () =
  let serial = Pool.create ~domains:1 in
  let wide = Lazy.force wide in
  let input = Array.init 128 (fun i -> float_of_int i /. 7.) in
  let f x = sin x *. exp (cos x) in
  let a = Pool.map serial f input and b = Pool.map wide f input in
  Alcotest.(check bool) "bit-identical floats" true (a = b);
  Pool.shutdown serial

let test_run_serially () =
  let pool = Lazy.force wide in
  let out =
    Pool.run_serially (fun () ->
      Pool.map pool (fun i -> i + 1) (Array.init 50 Fun.id))
  in
  Alcotest.(check int) "serial-mode map still correct" 50 out.(49)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* submissions to a shut-down pool raise the typed error — they must
     neither hang on vanished workers nor silently degrade to serial *)
  Alcotest.check_raises "post-shutdown map raises" Pool.Shut_down (fun () ->
      ignore (Pool.map pool (fun i -> i * 3) (Array.init 5 Fun.id)));
  Alcotest.check_raises "post-shutdown parallel_for raises" Pool.Shut_down
    (fun () -> Pool.parallel_for pool ~n:5 ignore);
  (* even for the empty job: shutdown state dominates *)
  Alcotest.check_raises "post-shutdown empty job raises" Pool.Shut_down
    (fun () -> Pool.parallel_for pool ~n:0 ignore);
  (* a width-1 pool follows the same contract *)
  let serial = Pool.create ~domains:1 in
  Pool.shutdown serial;
  Alcotest.check_raises "shut-down serial pool raises" Pool.Shut_down
    (fun () -> Pool.parallel_for serial ~n:1 ignore);
  (* the error is catchable and the process stays healthy: a live pool
     still works afterwards *)
  let fresh = Pool.create ~domains:2 in
  (match Pool.parallel_for pool ~n:1 ignore with
   | () -> Alcotest.fail "expected Shut_down"
   | exception Pool.Shut_down -> ());
  let out = Pool.map fresh (fun i -> i + 1) (Array.init 6 Fun.id) in
  Alcotest.(check int) "fresh pool unaffected" 6 out.(5);
  Pool.shutdown fresh

(* ------------------------------------------------------------------ *)
(* Work-stealing internals: persistence, skewed chunks, nested chunks  *)

let test_persistent_pool_reuse () =
  let pool = Lazy.force wide in
  let jobs_before = Pool.parallel_jobs () in
  let calls = 50 in
  for k = 1 to calls do
    let out = Pool.map pool (fun i -> i + k) (Array.init 64 Fun.id) in
    Alcotest.(check int) (Printf.sprintf "call %d result" k) (63 + k) out.(63)
  done;
  (* the same resident domains serve every call: each map is exactly one
     parallel job submitted to the persistent pool, never a fresh spawn *)
  Alcotest.(check int) "one parallel job per map" (jobs_before + calls)
    (Pool.parallel_jobs ());
  Alcotest.(check int) "pool width unchanged" 4 (Pool.domains pool)

let test_steal_correctness_under_skew () =
  let pool = Lazy.force wide in
  let n = 64 in
  (* chunk:4 block-deals 16 chunks, 4 per queue; all the heavy work sits
     in queue 0's chunks (i < 16), so the other domains drain their own
     queues immediately and finish the job through the steal loop *)
  let spin i = if i < 16 then 30_000 else 10 in
  let f i =
    let acc = ref 0. in
    for k = 1 to spin i do
      acc := !acc +. sin (float_of_int ((i * 7) + k))
    done;
    !acc
  in
  let expect = Array.init n f in
  let chunks_before = Pool.chunks_dispatched () in
  let out = Pool.map ~chunk:4 pool f (Array.init n Fun.id) in
  Alcotest.(check int) "16 chunks dispatched" (chunks_before + 16)
    (Pool.chunks_dispatched ());
  Alcotest.(check bool) "skewed map bit-identical to serial reference" true
    (out = expect)

let test_nested_parallel_for_chunked () =
  let pool = Lazy.force wide in
  let n = 40 in
  let serial_before = Pool.serial_jobs () in
  let out = Array.make n 0 in
  Pool.parallel_for ~chunk:2 pool ~n (fun i ->
    (* re-entry from a busy domain must degrade to a serial loop, even
       with an explicit chunk size that would otherwise fan out *)
    let inner = Array.make 8 0 in
    Pool.parallel_for ~chunk:3 pool ~n:8 (fun j -> inner.(j) <- (i * 8) + j);
    out.(i) <- Array.fold_left ( + ) 0 inner);
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "nested chunked %d" i)
        ((i * 64) + 28) v)
    out;
  Alcotest.(check int) "each inner call counted as a serial job"
    (serial_before + n) (Pool.serial_jobs ())

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)

let test_cache_basic_memoization () =
  let cache = Memo_cache.create () in
  let computed = Atomic.make 0 in
  let f key =
    Memo_cache.find_or_compute cache key (fun () ->
      Atomic.incr computed;
      key * key)
  in
  Alcotest.(check int) "first" 49 (f 7);
  Alcotest.(check int) "second" 49 (f 7);
  Alcotest.(check int) "other key" 81 (f 9);
  Alcotest.(check int) "computed once per key" 2 (Atomic.get computed);
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Memo_cache.hits;
  Alcotest.(check int) "misses" 2 s.Memo_cache.misses;
  Alcotest.(check int) "entries" 2 s.Memo_cache.entries;
  Alcotest.(check bool) "mem" true (Memo_cache.mem cache 7);
  Alcotest.(check bool) "not mem" false (Memo_cache.mem cache 8);
  Memo_cache.reset_stats cache;
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "hits reset" 0 s.Memo_cache.hits;
  Alcotest.(check int) "entries survive reset" 2 s.Memo_cache.entries

let test_cache_exception_not_cached () =
  let cache = Memo_cache.create () in
  Alcotest.check_raises "first attempt raises" (Failure "flaky") (fun () ->
    ignore (Memo_cache.find_or_compute cache 1 (fun () -> failwith "flaky")));
  (* the failure must not poison the key *)
  Alcotest.(check int) "retry succeeds" 11
    (Memo_cache.find_or_compute cache 1 (fun () -> 11));
  Alcotest.(check int) "cached after retry" 11
    (Memo_cache.find_or_compute cache 1 (fun () -> 999))

let test_cache_concurrent_dedup () =
  (* hammer a few keys from every domain; each distinct key must be
     computed exactly once, everyone else waits on the pending entry *)
  let pool = Lazy.force wide in
  let cache = Memo_cache.create ~shards:4 () in
  let keys = 8 and queries = 400 in
  let computed = Array.init keys (fun _ -> Atomic.make 0) in
  let out =
    Pool.map pool
      (fun i ->
        let key = i mod keys in
        Memo_cache.find_or_compute cache key (fun () ->
          Atomic.incr computed.(key);
          (* widen the race window so waiters actually hit Pending *)
          ignore (Array.init 1000 Fun.id);
          key * 100))
      (Array.init queries (fun i -> i))
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "query %d" i) (i mod keys * 100) v)
    out;
  Array.iteri
    (fun key c ->
      Alcotest.(check int)
        (Printf.sprintf "key %d computed exactly once" key)
        1 (Atomic.get c))
    computed;
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "misses = distinct keys" keys s.Memo_cache.misses;
  (* a query resolved while the computation was in flight counts as a
     wait, not a hit; together they account for everything else *)
  Alcotest.(check int) "hits + waits = the rest" (queries - keys)
    (s.Memo_cache.hits + s.Memo_cache.waits);
  Alcotest.(check int) "no evictions" 0 s.Memo_cache.evictions;
  Alcotest.(check int) "length" keys (Memo_cache.length cache)

(* ------------------------------------------------------------------ *)
(* Determinism of the characterization paths                           *)

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let th = lazy (Vtc.thresholds ~points:201 nand2)

let build_tables pool =
  let th = Lazy.force th in
  let taus = Floatx.logspace 50e-12 2e-9 5 in
  let single_dom = Single.build ~taus ~pool nand2 th ~pin:0 ~edge:Measure.Fall in
  let single_other =
    Single.build ~taus ~pool nand2 th ~pin:1 ~edge:Measure.Fall
  in
  let dual =
    Dual.build
      ~x_tau:(Floatx.logspace 0.4 8. 3)
      ~x_sep:[| -2.; -0.5; 0.4; 1.1 |]
      ~pool nand2 th ~single_dom ~single_other ~other:1
  in
  Single.save single_dom ^ Single.save single_other ^ Dual.save dual

let test_dual_table_parallel_matches_serial () =
  let serial = Pool.create ~domains:1 in
  let a = build_tables serial in
  Pool.shutdown serial;
  let b = build_tables (Lazy.force wide) in
  Alcotest.(check bool) "serial and 4-domain tables bit-identical" true
    (String.equal a b)

let test_vtc_family_parallel_matches_serial () =
  let serial = Pool.create ~domains:1 in
  let a = Vtc.family ~points:101 ~pool:serial nand2 in
  Pool.shutdown serial;
  let b = Vtc.family ~points:101 ~pool:(Lazy.force wide) nand2 in
  Alcotest.(check bool) "VTC families bit-identical" true (a = b)

(* ------------------------------------------------------------------ *)
(* Randomized STA equivalence on chunked levels: with a level width
   above Timing.parallel_threshold every evaluation wave takes the
   chunked parallel path, and incremental update must still match a
   fresh full analysis bit-for-bit at 4 domains                        *)

let nor2 = Gate.nor tech ~fan_in:2

let mk_cell name gate inputs output =
  { Design.name; gate; input_nets = inputs; output_net = output }

let random_layered rng ~depth ~width =
  let gates = [| nand2; nor2 |] in
  let pis = Array.init width (Printf.sprintf "p%d") in
  let prev = ref pis in
  let cells = ref [] in
  for layer = 0 to depth - 1 do
    let layer_cells =
      Array.init width (fun j ->
          let gate = gates.(Prng.int rng ~lo:0 ~hi:1) in
          let i0 = Prng.int rng ~lo:0 ~hi:(width - 1) in
          let i1 = (i0 + Prng.int rng ~lo:1 ~hi:(width - 1)) mod width in
          mk_cell
            (Printf.sprintf "u%d_%d" layer j)
            gate
            [| (!prev).(i0); (!prev).(i1) |]
            (Printf.sprintf "n%d_%d" layer j))
    in
    cells := Array.to_list layer_cells @ !cells;
    prev := Array.map (fun c -> c.Design.output_net) layer_cells
  done;
  Design.create ~cells:(List.rev !cells)
    ~primary_inputs:(Array.to_list pis)
    ~primary_outputs:(Array.to_list !prev)

let random_event rng =
  {
    Sta.time = Prng.float rng ~lo:0. ~hi:400e-12;
    slew = Prng.float rng ~lo:100e-12 ~hi:600e-12;
    edge = Measure.Fall;
  }

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arrival_bits_eq (a : Sta.arrival) (b : Sta.arrival) =
  bits_eq a.Sta.time b.Sta.time
  && bits_eq a.Sta.slew b.Sta.slew
  && a.Sta.edge = b.Sta.edge

let report_bits_eq (a : Sta.report) (b : Sta.report) =
  List.length a.Sta.arrivals = List.length b.Sta.arrivals
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && arrival_bits_eq a1 a2)
       a.Sta.arrivals b.Sta.arrivals
  && (match (a.Sta.critical_po, b.Sta.critical_po) with
      | None, None -> true
      | Some (n1, a1), Some (n2, a2) -> n1 = n2 && arrival_bits_eq a1 a2
      | _ -> false)
  && a.Sta.predecessors = b.Sta.predecessors

let test_sta_update_equals_analyze_chunked () =
  let th = Lazy.force th in
  let pool = Lazy.force wide in
  let rng = Prng.create 0x9001L in
  let width = Timing.parallel_threshold + 8 and depth = 3 in
  let design = random_layered rng ~depth ~width in
  let { Sta.models; _ } = Sta.synthetic_factory () in
  let pis = Array.of_list (Design.primary_inputs design) in
  let current =
    ref (Array.to_list (Array.map (fun p -> (p, random_event rng)) pis))
  in
  let jobs_before = Pool.parallel_jobs () in
  let ir =
    Sta.build_ir ~mode:Sta.Proximity ~models ~thresholds:th design
      ~pi:!current
  in
  ignore (Sta.reanalyze ~pool ir);
  Alcotest.(check bool) "levels actually ran on the pool" true
    (Pool.parallel_jobs () > jobs_before);
  for step = 1 to 4 do
    let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
    let e = random_event rng in
    current := (net, e) :: List.remove_assoc net !current;
    ignore (Sta.update ~pool ir [ Sta.Set_pi (net, Some e) ]);
    let fresh =
      Sta.build_ir ~mode:Sta.Proximity ~models ~thresholds:th design
        ~pi:!current
    in
    ignore (Sta.reanalyze ~pool fresh);
    if not (report_bits_eq (Sta.report ir) (Sta.report fresh)) then
      Alcotest.failf "update <> analyze on chunked levels: step %d" step
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "create rejects width 0" `Quick test_create_invalid;
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_preserves_order;
          Alcotest.test_case "parallel_for covers all indices" `Quick
            test_parallel_for_covers_all_indices;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exceptions_propagate;
          Alcotest.test_case "nested use is safe" `Quick
            test_nested_use_is_safe;
          Alcotest.test_case "serial pool matches wide pool" `Quick
            test_serial_pool_matches_wide_pool;
          Alcotest.test_case "run_serially" `Quick test_run_serially;
          Alcotest.test_case "shutdown is idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "persistent pool reused across maps" `Quick
            test_persistent_pool_reuse;
          Alcotest.test_case "steal path correct under skewed chunks" `Quick
            test_steal_correctness_under_skew;
          Alcotest.test_case "nested parallel_for with explicit chunks" `Quick
            test_nested_parallel_for_chunked;
        ] );
      ( "memo-cache",
        [
          Alcotest.test_case "basic memoization + counters" `Quick
            test_cache_basic_memoization;
          Alcotest.test_case "exception is not cached" `Quick
            test_cache_exception_not_cached;
          Alcotest.test_case "concurrent queries dedup" `Quick
            test_cache_concurrent_dedup;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dual-table build: parallel == serial" `Slow
            test_dual_table_parallel_matches_serial;
          Alcotest.test_case "VTC family: parallel == serial" `Quick
            test_vtc_family_parallel_matches_serial;
          Alcotest.test_case "STA update == analyze on chunked levels" `Quick
            test_sta_update_equals_analyze_chunked;
        ] );
    ]
