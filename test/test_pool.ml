(* Tests for the domain pool and the sharded memo cache, plus the
   parallel == serial determinism guarantees of the characterization
   paths built on them. *)

module Pool = Proxim_util.Pool
module Memo_cache = Proxim_util.Memo_cache
module Floatx = Proxim_util.Floatx
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual

(* a shared wide pool keeps domain spawning out of the per-test cost *)
let wide = lazy (Pool.create ~domains:4)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)

let test_create_invalid () =
  Alcotest.check_raises "domains:0 rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0))

let test_map_preserves_order () =
  let pool = Lazy.force wide in
  let n = 1000 in
  let input = Array.init n (fun i -> i) in
  let out = Pool.map pool (fun i -> i * i) input in
  Alcotest.(check int) "length" n (Array.length out);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
    out

let test_map_list_preserves_order () =
  let pool = Lazy.force wide in
  let input = List.init 257 (fun i -> i) in
  let out = Pool.map_list pool (fun i -> 2 * i) input in
  Alcotest.(check (list int)) "order" (List.map (fun i -> 2 * i) input) out

let test_parallel_for_covers_all_indices () =
  let pool = Lazy.force wide in
  let n = 500 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for pool ~n (fun i -> Atomic.incr counts.(i));
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "index %d run exactly once" i)
        1 (Atomic.get c))
    counts

let test_exceptions_propagate () =
  let pool = Lazy.force wide in
  Alcotest.check_raises "exception from a task reaches the caller"
    (Failure "task 42") (fun () ->
      ignore
        (Pool.map pool
           (fun i -> if i = 42 then failwith "task 42" else i)
           (Array.init 100 Fun.id)));
  (* the pool must survive the failed job *)
  let out = Pool.map pool Fun.id (Array.init 10 Fun.id) in
  Alcotest.(check int) "pool usable after exception" 9 out.(9)

let test_nested_use_is_safe () =
  let pool = Lazy.force wide in
  (* a task that re-enters the same pool must not deadlock; the inner
     job degrades to a serial loop on the occupied domain *)
  let out =
    Pool.map pool
      (fun i ->
        let inner = Pool.map pool (fun j -> (10 * i) + j) (Array.init 5 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 20 Fun.id)
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "nested result %d" i)
        ((50 * i) + 10) v)
    out

let test_serial_pool_matches_wide_pool () =
  let serial = Pool.create ~domains:1 in
  let wide = Lazy.force wide in
  let input = Array.init 128 (fun i -> float_of_int i /. 7.) in
  let f x = sin x *. exp (cos x) in
  let a = Pool.map serial f input and b = Pool.map wide f input in
  Alcotest.(check bool) "bit-identical floats" true (a = b);
  Pool.shutdown serial

let test_run_serially () =
  let pool = Lazy.force wide in
  let out =
    Pool.run_serially (fun () ->
      Pool.map pool (fun i -> i + 1) (Array.init 50 Fun.id))
  in
  Alcotest.(check int) "serial-mode map still correct" 50 out.(49)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* post-shutdown jobs degrade to serial rather than hanging *)
  let out = Pool.map pool (fun i -> i * 3) (Array.init 5 Fun.id) in
  Alcotest.(check int) "post-shutdown map" 12 out.(4)

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)

let test_cache_basic_memoization () =
  let cache = Memo_cache.create () in
  let computed = Atomic.make 0 in
  let f key =
    Memo_cache.find_or_compute cache key (fun () ->
      Atomic.incr computed;
      key * key)
  in
  Alcotest.(check int) "first" 49 (f 7);
  Alcotest.(check int) "second" 49 (f 7);
  Alcotest.(check int) "other key" 81 (f 9);
  Alcotest.(check int) "computed once per key" 2 (Atomic.get computed);
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Memo_cache.hits;
  Alcotest.(check int) "misses" 2 s.Memo_cache.misses;
  Alcotest.(check int) "entries" 2 s.Memo_cache.entries;
  Alcotest.(check bool) "mem" true (Memo_cache.mem cache 7);
  Alcotest.(check bool) "not mem" false (Memo_cache.mem cache 8);
  Memo_cache.reset_stats cache;
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "hits reset" 0 s.Memo_cache.hits;
  Alcotest.(check int) "entries survive reset" 2 s.Memo_cache.entries

let test_cache_exception_not_cached () =
  let cache = Memo_cache.create () in
  Alcotest.check_raises "first attempt raises" (Failure "flaky") (fun () ->
    ignore (Memo_cache.find_or_compute cache 1 (fun () -> failwith "flaky")));
  (* the failure must not poison the key *)
  Alcotest.(check int) "retry succeeds" 11
    (Memo_cache.find_or_compute cache 1 (fun () -> 11));
  Alcotest.(check int) "cached after retry" 11
    (Memo_cache.find_or_compute cache 1 (fun () -> 999))

let test_cache_concurrent_dedup () =
  (* hammer a few keys from every domain; each distinct key must be
     computed exactly once, everyone else waits on the pending entry *)
  let pool = Lazy.force wide in
  let cache = Memo_cache.create ~shards:4 () in
  let keys = 8 and queries = 400 in
  let computed = Array.init keys (fun _ -> Atomic.make 0) in
  let out =
    Pool.map pool
      (fun i ->
        let key = i mod keys in
        Memo_cache.find_or_compute cache key (fun () ->
          Atomic.incr computed.(key);
          (* widen the race window so waiters actually hit Pending *)
          ignore (Array.init 1000 Fun.id);
          key * 100))
      (Array.init queries (fun i -> i))
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "query %d" i) (i mod keys * 100) v)
    out;
  Array.iteri
    (fun key c ->
      Alcotest.(check int)
        (Printf.sprintf "key %d computed exactly once" key)
        1 (Atomic.get c))
    computed;
  let s = Memo_cache.stats cache in
  Alcotest.(check int) "misses = distinct keys" keys s.Memo_cache.misses;
  (* a query resolved while the computation was in flight counts as a
     wait, not a hit; together they account for everything else *)
  Alcotest.(check int) "hits + waits = the rest" (queries - keys)
    (s.Memo_cache.hits + s.Memo_cache.waits);
  Alcotest.(check int) "no evictions" 0 s.Memo_cache.evictions;
  Alcotest.(check int) "length" keys (Memo_cache.length cache)

(* ------------------------------------------------------------------ *)
(* Determinism of the characterization paths                           *)

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let th = lazy (Vtc.thresholds ~points:201 nand2)

let build_tables pool =
  let th = Lazy.force th in
  let taus = Floatx.logspace 50e-12 2e-9 5 in
  let single_dom = Single.build ~taus ~pool nand2 th ~pin:0 ~edge:Measure.Fall in
  let single_other =
    Single.build ~taus ~pool nand2 th ~pin:1 ~edge:Measure.Fall
  in
  let dual =
    Dual.build
      ~x_tau:(Floatx.logspace 0.4 8. 3)
      ~x_sep:[| -2.; -0.5; 0.4; 1.1 |]
      ~pool nand2 th ~single_dom ~single_other ~other:1
  in
  Single.save single_dom ^ Single.save single_other ^ Dual.save dual

let test_dual_table_parallel_matches_serial () =
  let serial = Pool.create ~domains:1 in
  let a = build_tables serial in
  Pool.shutdown serial;
  let b = build_tables (Lazy.force wide) in
  Alcotest.(check bool) "serial and 4-domain tables bit-identical" true
    (String.equal a b)

let test_vtc_family_parallel_matches_serial () =
  let serial = Pool.create ~domains:1 in
  let a = Vtc.family ~points:101 ~pool:serial nand2 in
  Pool.shutdown serial;
  let b = Vtc.family ~points:101 ~pool:(Lazy.force wide) nand2 in
  Alcotest.(check bool) "VTC families bit-identical" true (a = b)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "create rejects width 0" `Quick test_create_invalid;
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_preserves_order;
          Alcotest.test_case "parallel_for covers all indices" `Quick
            test_parallel_for_covers_all_indices;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exceptions_propagate;
          Alcotest.test_case "nested use is safe" `Quick
            test_nested_use_is_safe;
          Alcotest.test_case "serial pool matches wide pool" `Quick
            test_serial_pool_matches_wide_pool;
          Alcotest.test_case "run_serially" `Quick test_run_serially;
          Alcotest.test_case "shutdown is idempotent" `Quick
            test_shutdown_idempotent;
        ] );
      ( "memo-cache",
        [
          Alcotest.test_case "basic memoization + counters" `Quick
            test_cache_basic_memoization;
          Alcotest.test_case "exception is not cached" `Quick
            test_cache_exception_not_cached;
          Alcotest.test_case "concurrent queries dedup" `Quick
            test_cache_concurrent_dedup;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dual-table build: parallel == serial" `Slow
            test_dual_table_parallel_matches_serial;
          Alcotest.test_case "VTC family: parallel == serial" `Quick
            test_vtc_family_parallel_matches_serial;
        ] );
    ]
