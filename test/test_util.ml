(* Unit and property tests for Proxim_util. *)

module Floatx = Proxim_util.Floatx
module Linalg = Proxim_util.Linalg
module Rootfind = Proxim_util.Rootfind
module Interp = Proxim_util.Interp
module Stats = Proxim_util.Stats
module Histogram = Proxim_util.Histogram
module Prng = Proxim_util.Prng

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Floatx                                                              *)

let test_approx_eq () =
  Alcotest.(check bool) "equal" true (Floatx.approx_eq 1.0 1.0);
  Alcotest.(check bool) "close" true (Floatx.approx_eq 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx_eq 1.0 1.1);
  Alcotest.(check bool)
    "atol near zero" true
    (Floatx.approx_eq ~atol:1e-9 0. 1e-10)

let test_clamp () =
  check_float "below" 0. (Floatx.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Floatx.clamp ~lo:0. ~hi:1. 7.);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0. ~hi:1. 0.5)

let test_linspace () =
  let xs = Floatx.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  check_float "first" 0. xs.(0);
  check_float "last" 1. xs.(4);
  check_float "middle" 0.5 xs.(2)

let test_logspace () =
  let xs = Floatx.logspace 1. 100. 3 in
  check_float "first" 1. xs.(0);
  check_float ~eps:1e-9 "middle" 10. xs.(1);
  check_float ~eps:1e-9 "last" 100. xs.(2)

let test_lerp_inverse () =
  check_float "lerp mid" 1.5 (Floatx.lerp 1. 2. 0.5);
  check_float "inv roundtrip" 0.3 (Floatx.inv_lerp 2. 4. (Floatx.lerp 2. 4. 0.3))

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)

let test_lu_identity () =
  let a = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let x = Linalg.lu_solve a [| 3.; 4. |] in
  check_float "x0" 3. x.(0);
  check_float "x1" 4. x.(1)

let test_lu_known_system () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.lu_solve a [| 5.; 10. |] in
  check_float "x" 1. x.(0);
  check_float "y" 3. x.(1)

let test_lu_needs_pivoting () =
  (* zero on the leading diagonal forces a row exchange *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.lu_solve a [| 2.; 3. |] in
  check_float "x" 3. x.(0);
  check_float "y" 2. x.(1)

let test_lu_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linalg.Singular (fun () ->
    ignore (Linalg.lu_solve a [| 1.; 1. |]))

let prop_lu_random =
  QCheck.Test.make ~name:"lu solves random diagonally-dominant systems"
    ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let n = 1 + Prng.int rng ~lo:1 ~hi:7 in
      let a =
        Array.init n (fun i ->
          Array.init n (fun j ->
            let v = Prng.float rng ~lo:(-1.) ~hi:1. in
            if i = j then v +. (10. *. Floatx.sign (v +. 0.5)) else v))
      in
      let x_true = Array.init n (fun _ -> Prng.float rng ~lo:(-5.) ~hi:5.) in
      let b = Linalg.mat_vec a x_true in
      let x = Linalg.lu_solve a b in
      Array.for_all2 (fun u v -> Floatx.approx_eq ~rtol:1e-8 ~atol:1e-8 u v)
        x x_true)

let prop_residual =
  QCheck.Test.make ~name:"residual of LU solution is tiny" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 100)) in
      let n = 2 + Prng.int rng ~lo:0 ~hi:5 in
      let a =
        Array.init n (fun i ->
          Array.init n (fun j ->
            if i = j then 5. +. Prng.float rng ~lo:0. ~hi:1.
            else Prng.float rng ~lo:(-1.) ~hi:1.))
      in
      let b = Array.init n (fun _ -> Prng.float rng ~lo:(-3.) ~hi:3.) in
      let x = Linalg.lu_solve a b in
      Linalg.residual_norm a x b < 1e-10)

(* ------------------------------------------------------------------ *)
(* Rootfind                                                            *)

let test_bisect_linear () =
  let root = Rootfind.bisect ~f:(fun x -> x -. 0.25) 0. 1. in
  check_float ~eps:1e-10 "linear root" 0.25 root

let test_brent_cubic () =
  let f x = (x *. x *. x) -. (2. *. x) -. 5. in
  let root = Rootfind.brent ~f 2. 3. in
  check_float ~eps:1e-9 "cubic root" 2.0945514815423265 root

let test_brent_endpoint_root () =
  check_float "root at endpoint" 1.
    (Rootfind.brent ~f:(fun x -> x -. 1.) 1. 2.)

let test_no_bracket () =
  Alcotest.check_raises "no bracket" Rootfind.No_bracket (fun () ->
    ignore (Rootfind.bisect ~f:(fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_find_bracket () =
  match Rootfind.find_bracket ~f:(fun x -> x -. 0.7) ~lo:0. ~hi:1. ~n:10 with
  | Some (lo, hi) ->
    Alcotest.(check bool) "brackets root" true (lo <= 0.7 && 0.7 <= hi)
  | None -> Alcotest.fail "expected a bracket"

let prop_brent_random_roots =
  QCheck.Test.make ~name:"brent finds planted roots" ~count:200
    QCheck.(float_range 0.05 0.95)
    (fun r ->
      let f x = (x -. r) *. ((x *. x) +. 1.) in
      let root = Rootfind.brent ~f 0. 1. in
      Float.abs (root -. r) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Interp                                                              *)

let test_linear_interp () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 10.; 40. |] in
  check_float "at sample" 10. (Interp.linear xs ys 1.);
  check_float "between" 25. (Interp.linear xs ys 1.5);
  check_float "clamped below" 0. (Interp.linear xs ys (-1.));
  check_float "clamped above" 40. (Interp.linear xs ys 9.)

let test_linear_extrapolation () =
  let xs = [| 0.; 1. |] and ys = [| 0.; 2. |] in
  check_float "extrapolate" 4.
    (Interp.linear ~extrapolation:Interp.Linear xs ys 2.)

let test_pchip_interpolates_samples () =
  let xs = [| 0.; 1.; 2.; 3. |] and ys = [| 0.; 1.; 4.; 9. |] in
  let p = Interp.pchip_make xs ys in
  Array.iteri
    (fun i x -> check_float "knot" ys.(i) (Interp.pchip_eval p x))
    xs

let prop_pchip_monotone =
  QCheck.Test.make ~name:"pchip preserves monotonicity" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 10) (float_range 0.01 5.))
    (fun increments ->
      let n = List.length increments in
      QCheck.assume (n >= 3);
      let xs = Array.init n float_of_int in
      let ys = Array.make n 0. in
      List.iteri
        (fun i inc -> if i > 0 then ys.(i) <- ys.(i - 1) +. inc)
        increments;
      let p = Interp.pchip_make xs ys in
      let samples = Floatx.linspace 0. (float_of_int (n - 1)) 101 in
      let vals = Array.map (Interp.pchip_eval p) samples in
      let ok = ref true in
      for i = 0 to Array.length vals - 2 do
        if vals.(i + 1) < vals.(i) -. 1e-12 then ok := false
      done;
      !ok)

let test_bilinear_pchip_z_matches_trilinear_on_linear_data () =
  let axis = [| 0.; 1.; 2.; 3. |] in
  let f x y z = (2. *. x) -. y +. (0.5 *. z) in
  let g = Interp.grid3_make ~xs:axis ~ys:axis ~zs:axis ~f () in
  List.iter
    (fun (x, y, z) ->
      check_float ~eps:1e-12 "agrees with exact" (f x y z)
        (Interp.bilinear_pchip_z g x y z))
    [ (0.5, 1.5, 0.25); (2.9, 0.1, 2.5); (1., 1., 1.) ]

let test_bilinear_pchip_z_beats_trilinear_on_curved_z () =
  (* quadratic along z: pchip-z must interpolate much better between knots *)
  let axis = [| 0.; 1.; 2.; 3.; 4. |] in
  let f _ _ z = z *. z in
  let g = Interp.grid3_make ~xs:axis ~ys:axis ~zs:axis ~f () in
  let z = 2.5 in
  let exact = z *. z in
  let tri = Interp.trilinear g 1. 1. z in
  let pz = Interp.bilinear_pchip_z g 1. 1. z in
  Alcotest.(check bool) "pchip-z closer" true
    (Float.abs (pz -. exact) < Float.abs (tri -. exact))

let test_trilinear_exact_on_linear_function () =
  let axis = [| 0.; 1.; 2. |] in
  let f x y z = (2. *. x) +. (3. *. y) -. z +. 1. in
  let g = Interp.grid3_make ~xs:axis ~ys:axis ~zs:axis ~f () in
  check_float "interior" (f 0.5 1.5 0.25) (Interp.trilinear g 0.5 1.5 0.25);
  check_float "corner" (f 2. 2. 2.) (Interp.trilinear g 2. 2. 2.);
  check_float "clamped" (f 2. 0. 0.) (Interp.trilinear g 5. (-1.) 0.)

(* ------------------------------------------------------------------ *)
(* Stats / Histogram                                                   *)

let test_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 s.Stats.mean;
  check_float "min" 1. s.Stats.min;
  check_float "max" 4. s.Stats.max;
  check_float ~eps:1e-9 "std" (sqrt (5. /. 3.)) s.Stats.std

let test_percentile () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "median" 3. (Stats.percentile xs 50.);
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 5. (Stats.percentile xs 100.)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 [| 0.; 1.; 2.5; 9.99; 10.; -1.; 11. |] in
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 h.Histogram.underflow;
  Alcotest.(check int) "overflow" 1 h.Histogram.overflow;
  Alcotest.(check int) "bin0" 2 h.Histogram.counts.(0);
  Alcotest.(check int) "bin1" 1 h.Histogram.counts.(1);
  (* 10. lands in the last bin by the closed-upper-edge rule *)
  Alcotest.(check int) "bin4" 2 h.Histogram.counts.(4)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_ranges () =
  let rng = Prng.create 13L in
  for _ = 1 to 1000 do
    let f = Prng.float rng ~lo:2. ~hi:3. in
    Alcotest.(check bool) "float in range" true (f >= 2. && f < 3.);
    let i = Prng.int rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "int in range" true (i >= -5 && i <= 5)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 99L in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let () =
  Alcotest.run "util"
    [
      ( "floatx",
        [
          Alcotest.test_case "approx_eq" `Quick test_approx_eq;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "lerp/inv_lerp" `Quick test_lerp_inverse;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "identity" `Quick test_lu_identity;
          Alcotest.test_case "known 2x2" `Quick test_lu_known_system;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          QCheck_alcotest.to_alcotest prop_lu_random;
          QCheck_alcotest.to_alcotest prop_residual;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
          Alcotest.test_case "brent cubic" `Quick test_brent_cubic;
          Alcotest.test_case "endpoint root" `Quick test_brent_endpoint_root;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "find_bracket" `Quick test_find_bracket;
          QCheck_alcotest.to_alcotest prop_brent_random_roots;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear" `Quick test_linear_interp;
          Alcotest.test_case "linear extrapolation" `Quick
            test_linear_extrapolation;
          Alcotest.test_case "pchip knots" `Quick test_pchip_interpolates_samples;
          QCheck_alcotest.to_alcotest prop_pchip_monotone;
          Alcotest.test_case "trilinear linear-exact" `Quick
            test_trilinear_exact_on_linear_function;
          Alcotest.test_case "bilinear-pchip-z linear" `Quick
            test_bilinear_pchip_z_matches_trilinear_on_linear_data;
          Alcotest.test_case "bilinear-pchip-z curved" `Quick
            test_bilinear_pchip_z_beats_trilinear_on_curved_z;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram_binning;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
        ] );
    ]
