(* Tests for the timing-graph IR: generic graph algorithms, the
   annotated propagation engine with its incremental (ECO) update, the
   K-worst path enumeration, and the randomized update-equals-analyze
   equivalence property the Sta layer advertises. *)

module Prng = Proxim_util.Prng
module Memo_cache = Proxim_util.Memo_cache
module Graph = Proxim_timing.Graph
module Timing = Proxim_timing.Timing
module Paths = Proxim_timing.Paths
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta

(* ------------------------------------------------------------------ *)
(* Generic digraph algorithms                                          *)

let test_cycles () =
  (* 0 -> 1 -> 2 -> 0 plus an acyclic tail 3 -> 4 *)
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 0 ] | 3 -> [ 4 ] | _ -> [] in
  (match Graph.cycles ~n:5 ~succ ~roots:[ 0; 3 ] with
  | [ (entry, members) ] ->
    Alcotest.(check int) "entry" 0 entry;
    Alcotest.(check (list int)) "members" [ 0; 1; 2 ] members
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l));
  (* self-loop *)
  (match Graph.cycles ~n:1 ~succ:(fun _ -> [ 0 ]) ~roots:[ 0 ] with
  | [ (0, [ 0 ]) ] -> ()
  | _ -> Alcotest.fail "self-loop should report (0, [0])");
  (* acyclic *)
  Alcotest.(check int) "acyclic" 0
    (List.length (Graph.cycles ~n:3 ~succ:(function 0 -> [ 1; 2 ] | _ -> []) ~roots:[ 0 ]))

let test_reachable () =
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | 3 -> [ 4 ] | _ -> [] in
  let r = Graph.reachable ~n:6 ~succ ~roots:[ 0 ] in
  Alcotest.(check (list bool)) "from 0"
    [ true; true; true; false; false; false ]
    (Array.to_list r)

(* ------------------------------------------------------------------ *)
(* Arena construction                                                  *)

let spec name inputs output =
  { Graph.spec_name = name; spec_payload = (); spec_inputs = inputs; spec_output = output }

let test_build_arena () =
  let g =
    Graph.build
      ~cells:[ spec "u1" [| "a"; "b" |] "n1"; spec "u2" [| "n1"; "c" |] "y" ]
      ~primary_inputs:[ "a"; "b"; "c" ] ~primary_outputs:[ "y" ]
  in
  Alcotest.(check int) "nets" 5 (Graph.net_count g);
  Alcotest.(check int) "cells" 2 (Graph.cell_count g);
  let u1 = Option.get (Graph.cell_id g "u1") in
  let u2 = Option.get (Graph.cell_id g "u2") in
  let n1 = Option.get (Graph.net_id g "n1") in
  let a = Option.get (Graph.net_id g "a") in
  Alcotest.(check int) "levels" 2 (Graph.level_count g);
  Alcotest.(check int) "u1 level" 0 (Graph.cell_level g u1);
  Alcotest.(check int) "u2 level" 1 (Graph.cell_level g u2);
  Alcotest.(check bool) "driver n1" true (Graph.driver g ~net:n1 = Some u1);
  Alcotest.(check bool) "driver a" true (Graph.driver g ~net:a = None);
  (match Graph.readers g ~net:n1 with
  | [| (c, pin) |] ->
    Alcotest.(check int) "reader cell" u2 c;
    Alcotest.(check int) "reader pin" 0 pin
  | _ -> Alcotest.fail "n1 should have one reader");
  let topo = Graph.topological g in
  Alcotest.(check bool) "u1 before u2" true
    (topo.(0) = u1 && topo.(1) = u2);
  (* fanout cone of net a covers both cells; cone of cell u2 only u2 *)
  let cone_a = Graph.fanout_cone g ~nets:[ a ] ~cells:[] in
  Alcotest.(check (list bool)) "cone of a" [ true; true ]
    (Array.to_list cone_a);
  let cone_u2 = Graph.fanout_cone g ~nets:[] ~cells:[ u2 ] in
  Alcotest.(check bool) "cone of u2" true
    (cone_u2.(u2) && not cone_u2.(u1))

let test_build_cycle_raises () =
  Alcotest.(check bool) "cycle raises" true
    (try
       ignore
         (Graph.build
            ~cells:[ spec "u1" [| "a"; "y" |] "x"; spec "u2" [| "x" |] "y" ]
            ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]);
       false
     with Graph.Cycle { through = _ } -> true)

(* ------------------------------------------------------------------ *)
(* Toy propagation engine: delay per arc depends only on the pin, so
   expected arrivals are exact by hand                                 *)

let toy_engine ~pin_delay () (inputs : Timing.input list) =
  match inputs with
  | [] -> None
  | _ ->
    let resp (i : Timing.input) =
      i.Timing.in_arrival.Timing.time +. pin_delay i.Timing.in_pin
    in
    let winner =
      List.fold_left
        (fun acc i ->
          match acc with Some b when resp b >= resp i -> Some b | _ -> Some i)
        None inputs
    in
    let w = Option.get winner in
    let out_t = resp w in
    Some
      {
        Timing.out = { Timing.time = out_t; slew = 1e-10; edge = Measure.Rise };
        winner = w.Timing.in_pin;
        candidates =
          Array.of_list
            (List.map
               (fun (i : Timing.input) ->
                 {
                   Timing.pin = i.Timing.in_pin;
                   from_net = i.Timing.in_net;
                   would_be = resp i;
                 })
               inputs);
      }

let chain_graph () =
  Graph.build
    ~cells:
      [ spec "c1" [| "a" |] "x1"; spec "c2" [| "x1" |] "x2";
        spec "c3" [| "x2" |] "x3" ]
    ~primary_inputs:[ "a" ] ~primary_outputs:[ "x3" ]

let arr t = { Timing.time = t; slew = 1e-10; edge = Measure.Fall }

let test_analyze_chain () =
  let g = chain_graph () in
  let t = Timing.create g ~engine:(toy_engine ~pin_delay:(fun p -> 1e-10 *. float_of_int (p + 1))) in
  let a = Option.get (Graph.net_id g "a") in
  Timing.set_source t ~net:a (Some (arr 1e-10));
  let st = Timing.analyze t in
  Alcotest.(check int) "evaluated" 3 st.Timing.evaluated;
  Alcotest.(check int) "total" 3 st.Timing.total_cells;
  let x3 = Option.get (Graph.net_id g "x3") in
  (match Timing.arrival t ~net:x3 with
  | Some a3 -> Alcotest.(check (float 1e-15)) "x3 time" 4e-10 a3.Timing.time
  | None -> Alcotest.fail "x3 quiet");
  (* predecessor chain walks back through the winners *)
  match Timing.predecessor t ~net:x3 with
  | Some (pred, 0) ->
    Alcotest.(check string) "pred of x3" "x2" (Graph.net_name g pred)
  | _ -> Alcotest.fail "x3 should have a predecessor"

let test_early_cutoff () =
  let g = chain_graph () in
  let t = Timing.create g ~engine:(toy_engine ~pin_delay:(fun _ -> 1e-10)) in
  let a = Option.get (Graph.net_id g "a") in
  Timing.set_source t ~net:a (Some (arr 1e-10));
  ignore (Timing.analyze t);
  (* re-setting the identical event re-evaluates only the direct reader *)
  Timing.set_source t ~net:a (Some (arr 1e-10));
  let st = Timing.update t ~dirty_nets:[ a ] ~dirty_cells:[] in
  Alcotest.(check int) "cutoff evaluated" 1 st.Timing.evaluated;
  Alcotest.(check int) "cutoff changed" 0 st.Timing.changed;
  (* a real change walks the whole chain *)
  Timing.set_source t ~net:a (Some (arr 2e-10));
  let st = Timing.update t ~dirty_nets:[ a ] ~dirty_cells:[] in
  Alcotest.(check int) "full cone evaluated" 3 st.Timing.evaluated;
  Alcotest.(check int) "full cone changed" 3 st.Timing.changed

(* ------------------------------------------------------------------ *)
(* K-worst enumeration on a diamond with tied arrivals                 *)

let diamond_graph () =
  Graph.build
    ~cells:
      [ spec "c1" [| "a" |] "n1"; spec "c2" [| "a" |] "n2";
        spec "c3" [| "n1"; "n2" |] "y" ]
    ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]

let test_k_worst_ties () =
  let g = diamond_graph () in
  let t = Timing.create g ~engine:(toy_engine ~pin_delay:(fun _ -> 1e-10)) in
  let a = Option.get (Graph.net_id g "a") in
  Timing.set_source t ~net:a (Some (arr 0.));
  ignore (Timing.analyze t);
  let y = Option.get (Graph.net_id g "y") in
  let paths = Paths.k_worst t ~po:y ~k:4 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  (match paths with
  | [ p1; p2 ] ->
    (* both routes arrive at the same instant; rank 1 is the winner
       chain (pin 0, via n1), the tie is broken deterministically *)
    Alcotest.(check bool) "tied arrivals" true
      (Int64.equal
         (Int64.bits_of_float p1.Paths.p_arrival)
         (Int64.bits_of_float p2.Paths.p_arrival));
    Alcotest.(check (list string)) "winner chain first" [ "y"; "n1"; "a" ]
      (Paths.nets_of_path g p1);
    Alcotest.(check (list string)) "alternative second" [ "y"; "n2"; "a" ]
      (Paths.nets_of_path g p2)
  | _ -> Alcotest.fail "expected two paths");
  (* deterministic: a second enumeration is structurally identical *)
  Alcotest.(check bool) "repeatable" true (Paths.k_worst t ~po:y ~k:4 = paths);
  Alcotest.(check bool) "k < 1 rejected" true
    (try
       ignore (Paths.k_worst t ~po:y ~k:0);
       false
     with Invalid_argument _ -> true)

let test_k_worst_overask () =
  (* K far beyond the distinct path count returns every path once *)
  let g = diamond_graph () in
  let t = Timing.create g ~engine:(toy_engine ~pin_delay:(fun _ -> 1e-10)) in
  let a = Option.get (Graph.net_id g "a") in
  Timing.set_source t ~net:a (Some (arr 0.));
  ignore (Timing.analyze t);
  let y = Option.get (Graph.net_id g "y") in
  let paths = Paths.k_worst t ~po:y ~k:50 in
  Alcotest.(check int) "still two paths" 2 (List.length paths);
  Alcotest.(check bool) "same list as k=2" true
    (paths = Paths.k_worst t ~po:y ~k:2)

let test_k_worst_po_is_pi () =
  (* a primary-input endpoint degenerates to a singleton source path *)
  let g = chain_graph () in
  let t = Timing.create g ~engine:(toy_engine ~pin_delay:(fun _ -> 1e-10)) in
  let a = Option.get (Graph.net_id g "a") in
  Timing.set_source t ~net:a (Some (arr 2.5e-10));
  ignore (Timing.analyze t);
  (match Paths.k_worst t ~po:a ~k:5 with
  | [ p ] ->
    Alcotest.(check (float 0.)) "arrival = source time" 2.5e-10
      p.Paths.p_arrival;
    (match p.Paths.p_steps with
    | [ s ] ->
      Alcotest.(check int) "net" a s.Paths.net;
      Alcotest.(check int) "source step pin" (-1) s.Paths.via_pin
    | _ -> Alcotest.fail "expected a single source step");
    Alcotest.(check (list string)) "singleton net chain" [ "a" ]
      (Paths.nets_of_path g p)
  | ps ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one path, got %d" (List.length ps)));
  (* a quiet primary input has no paths at all *)
  let t2 = Timing.create g ~engine:(toy_engine ~pin_delay:(fun _ -> 1e-10)) in
  Alcotest.(check int) "quiet source: no paths" 0
    (List.length (Paths.k_worst t2 ~po:a ~k:3))

(* ------------------------------------------------------------------ *)
(* Sta-level: synthetic models over real gates                         *)

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let nor2 = Gate.nor tech ~fan_in:2
let inv = Gate.inverter tech
let thresholds = lazy (Vtc.thresholds ~points:201 nand2)

let cell name gate inputs output =
  { Design.name; gate; input_nets = inputs; output_net = output }

(* reconvergent fanout: n1 splits into two inverter branches that rejoin *)
let reconvergent () =
  Design.create
    ~cells:
      [
        cell "u1" nand2 [| "a"; "b" |] "n1";
        cell "u2" inv [| "n1" |] "n2";
        cell "u3" inv [| "n1" |] "n3";
        cell "u4" nand2 [| "n2"; "n3" |] "y";
      ]
    ~primary_inputs:[ "a"; "b" ] ~primary_outputs:[ "y" ]

let ev ?(slew = 2e-10) t = { Sta.time = t; slew; edge = Measure.Fall }

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arrival_bits_eq (a : Sta.arrival) (b : Sta.arrival) =
  bits_eq a.Sta.time b.Sta.time
  && bits_eq a.Sta.slew b.Sta.slew
  && a.Sta.edge = b.Sta.edge

let report_bits_eq (a : Sta.report) (b : Sta.report) =
  List.length a.Sta.arrivals = List.length b.Sta.arrivals
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> String.equal n1 n2 && arrival_bits_eq a1 a2)
       a.Sta.arrivals b.Sta.arrivals
  && (match (a.Sta.critical_po, b.Sta.critical_po) with
     | None, None -> true
     | Some (n1, a1), Some (n2, a2) ->
       String.equal n1 n2 && arrival_bits_eq a1 a2
     | _ -> false)
  && a.Sta.predecessors = b.Sta.predecessors

let test_worst_paths_reconvergent () =
  let d = reconvergent () in
  let th = Lazy.force thresholds in
  let { Sta.models; _ } = Sta.synthetic_factory () in
  List.iter
    (fun mode ->
      let ir =
        Sta.build_ir ~mode ~models ~thresholds:th d
          ~pi:[ ("a", ev 0.); ("b", ev 30e-12) ]
      in
      ignore (Sta.reanalyze ir);
      let report = Sta.report ir in
      let paths = Sta.worst_paths ir ~po:"y" ~k:8 in
      (* both reconvergent branches appear as distinct full-depth paths *)
      Alcotest.(check bool) "at least 2 paths" true (List.length paths >= 2);
      let nets = List.map (fun p -> p.Sta.path_nets) paths in
      Alcotest.(check bool) "via n2" true
        (List.exists (fun ns -> List.mem "n2" ns) nets);
      Alcotest.(check bool) "via n3" true
        (List.exists (fun ns -> List.mem "n3" ns) nets);
      (* rank 1 reproduces the reported arrival and the critical chain *)
      (match (paths, report.Sta.critical_po) with
      | top :: _, Some (po, a) ->
        Alcotest.(check string) "po" "y" po;
        Alcotest.(check bool) "top arrival exact" true
          (bits_eq top.Sta.path_arrival a.Sta.time);
        Alcotest.(check (list string)) "top is critical path"
          (Sta.critical_path report ~po:"y")
          top.Sta.path_nets
      | _ -> Alcotest.fail "missing paths or critical po");
      Alcotest.(check (list string)) "unknown po" []
        (List.concat_map (fun p -> p.Sta.path_nets)
           (Sta.worst_paths ir ~po:"nope" ~k:2)))
    [ Sta.Classic; Sta.Proximity ]

let test_negative_slack () =
  let d = reconvergent () in
  let th = Lazy.force thresholds in
  let { Sta.models; _ } = Sta.synthetic_factory () in
  let report =
    Sta.analyze ~mode:Sta.Classic ~models ~thresholds:th d
      ~pi:[ ("a", ev 0.); ("b", ev 10e-12) ]
  in
  match Sta.po_slacks d report ~required:0. with
  | [ ("y", slack) ] ->
    Alcotest.(check bool) "negative slack" true (slack < 0.);
    (match report.Sta.critical_po with
    | Some (_, a) ->
      Alcotest.(check (float 1e-18)) "slack = -arrival" (-.a.Sta.time) slack
    | None -> Alcotest.fail "no critical po")
  | _ -> Alcotest.fail "expected one po slack"

(* regression: a primary output that is itself a primary-input net must
   yield the singleton path, not [] *)
let test_pi_po_singleton () =
  let d =
    Design.create
      ~cells:[ cell "u1" inv [| "b" |] "y" ]
      ~primary_inputs:[ "a"; "b" ]
      ~primary_outputs:[ "a"; "y" ]
  in
  let th = Lazy.force thresholds in
  let { Sta.models; _ } = Sta.synthetic_factory () in
  let report =
    Sta.analyze ~models ~thresholds:th d
      ~pi:[ ("a", ev 500e-12); ("b", ev 0.) ]
  in
  Alcotest.(check (list string)) "pad-through po" [ "a" ]
    (Sta.critical_path report ~po:"a");
  Alcotest.(check int) "both pos have slacks" 2
    (List.length (Sta.po_slacks d report ~required:1e-9))

let test_update_rejects_unknown () =
  let d = reconvergent () in
  let th = Lazy.force thresholds in
  let { Sta.models; _ } = Sta.synthetic_factory () in
  let ir = Sta.build_ir ~models ~thresholds:th d ~pi:[ ("a", ev 0.) ] in
  ignore (Sta.reanalyze ir);
  (* unknown targets are the typed CLI-reportable error; a known but
     cell-driven net stays an Invalid_argument (it's a misuse of the
     API, not a name typo) *)
  let rejects_unknown eco =
    try
      ignore (Sta.update ir [ eco ]);
      false
    with Sta.Unknown_eco_target _ -> true
  in
  let rejects_invalid eco =
    try
      ignore (Sta.update ir [ eco ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown net" true
    (rejects_unknown (Sta.Set_pi ("ghost", Some (ev 0.))));
  Alcotest.(check bool) "driven net" true
    (rejects_invalid (Sta.Set_pi ("n1", Some (ev 0.))));
  Alcotest.(check bool) "unknown cell" true
    (rejects_unknown (Sta.Touch_cell "ghost"))

let test_factory_cache_stats () =
  let d = reconvergent () in
  let th = Lazy.force thresholds in
  let { Sta.models; factory_stats } = Sta.synthetic_factory () in
  let pi = [ ("a", ev 0.); ("b", ev 25e-12) ] in
  ignore (Sta.analyze ~models ~thresholds:th d ~pi);
  let s1 = factory_stats () in
  Alcotest.(check bool) "misses after first run" true
    (s1.Memo_cache.misses > 0 && s1.Memo_cache.entries > 0);
  ignore (Sta.analyze ~models ~thresholds:th d ~pi);
  let s2 = factory_stats () in
  (* a repeat query is served by the per-domain L1 replica when one is
     present (local_hits) and by the shared tier otherwise (hits) *)
  Alcotest.(check bool) "second run hits" true
    (s2.Memo_cache.hits + s2.Memo_cache.local_hits
     > s1.Memo_cache.hits + s1.Memo_cache.local_hits);
  Alcotest.(check int) "no new misses" s1.Memo_cache.misses
    s2.Memo_cache.misses

(* ------------------------------------------------------------------ *)
(* Randomized equivalence: a sequence of ECO updates must leave the IR
   bit-identical to a fresh analysis of the edited configuration        *)

let random_design rng ~depth ~width =
  let gate_pool = [| nand2; nor2 |] in
  let pis = Array.init width (Printf.sprintf "p%d") in
  let prev = ref pis in
  let cells = ref [] in
  for layer = 0 to depth - 1 do
    let layer_cells =
      Array.init width (fun j ->
          let gate = gate_pool.(Prng.int rng ~lo:0 ~hi:1) in
          let i0 = Prng.int rng ~lo:0 ~hi:(width - 1) in
          let i1 =
            (i0 + Prng.int rng ~lo:1 ~hi:(width - 1)) mod width
          in
          cell
            (Printf.sprintf "u%d_%d" layer j)
            gate
            [| (!prev).(i0); (!prev).(i1) |]
            (Printf.sprintf "n%d_%d" layer j))
    in
    cells := Array.to_list layer_cells @ !cells;
    prev := Array.map (fun c -> c.Design.output_net) layer_cells
  done;
  Design.create ~cells:(List.rev !cells)
    ~primary_inputs:(Array.to_list pis)
    ~primary_outputs:(Array.to_list !prev)

let random_event rng =
  {
    Sta.time = Prng.float rng ~lo:0. ~hi:400e-12;
    slew = Prng.float rng ~lo:100e-12 ~hi:600e-12;
    edge = Measure.Fall;
  }

let mode_name = function
  | Sta.Classic -> "classic"
  | Sta.Proximity -> "proximity"
  | Sta.Collapsed _ -> "collapsed"

let run_equivalence_sequences mode ~sequences =
  let th = Lazy.force thresholds in
  let rng =
    Prng.create (match mode with Sta.Classic -> 0x5EED1L | _ -> 0x5EED2L)
  in
  for seq = 1 to sequences do
    let design =
      random_design rng
        ~depth:(Prng.int rng ~lo:2 ~hi:3)
        ~width:(Prng.int rng ~lo:3 ~hi:5)
    in
    (* per-cell seed overrides let Touch_cell stand in for a
       re-characterized instance; shared by the incremental IR and the
       fresh rebuilds *)
    let overrides : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let cache = Memo_cache.create () in
    let models (c : Design.cell) =
      let seed =
        match Hashtbl.find_opt overrides c.Design.name with
        | Some s -> s
        | None -> 0
      in
      Memo_cache.find_or_compute cache (c.Design.gate.Gate.name, seed)
        (fun () -> Models.synthetic ~seed c.Design.gate)
    in
    let pis = Array.of_list (Design.primary_inputs design) in
    let cell_names =
      Array.of_list (List.map (fun c -> c.Design.name) (Design.cells design))
    in
    let current =
      ref (Array.to_list (Array.map (fun p -> (p, random_event rng)) pis))
    in
    let ir = Sta.build_ir ~mode ~models ~thresholds:th design ~pi:!current in
    ignore (Sta.reanalyze ir);
    for step = 1 to 3 do
      let eco =
        match Prng.int rng ~lo:0 ~hi:3 with
        | 0 | 1 ->
          let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
          let e = random_event rng in
          current := (net, e) :: List.remove_assoc net !current;
          Sta.Set_pi (net, Some e)
        | 2 ->
          let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
          current := List.remove_assoc net !current;
          Sta.Set_pi (net, None)
        | _ ->
          let name =
            cell_names.(Prng.int rng ~lo:0 ~hi:(Array.length cell_names - 1))
          in
          Hashtbl.replace overrides name ((100 * seq) + step);
          Sta.Touch_cell name
      in
      ignore (Sta.update ir [ eco ]);
      let fresh =
        Sta.build_ir ~mode ~models ~thresholds:th design ~pi:!current
      in
      ignore (Sta.reanalyze fresh);
      if not (report_bits_eq (Sta.report ir) (Sta.report fresh)) then
        Alcotest.failf "update <> analyze: mode %s, sequence %d, step %d"
          (mode_name mode) seq step
    done
  done

let test_equivalence_classic () =
  run_equivalence_sequences Sta.Classic ~sequences:100

let test_equivalence_proximity () =
  run_equivalence_sequences Sta.Proximity ~sequences:100

let test_swap_models_equiv () =
  let d = reconvergent () in
  let th = Lazy.force thresholds in
  let pi = [ ("a", ev 0.); ("b", ev 40e-12) ] in
  let f0 = Sta.synthetic_factory () in
  let f1 = Sta.synthetic_factory ~seed:1 () in
  let ir = Sta.build_ir ~models:f0.Sta.models ~thresholds:th d ~pi in
  ignore (Sta.reanalyze ir);
  let st = Sta.swap_models ir f1.Sta.models in
  Alcotest.(check int) "swap touches every cell" 4 st.Timing.evaluated;
  let fresh = Sta.build_ir ~models:f1.Sta.models ~thresholds:th d ~pi in
  ignore (Sta.reanalyze fresh);
  Alcotest.(check bool) "swap equals fresh" true
    (report_bits_eq (Sta.report ir) (Sta.report fresh))

let () =
  Alcotest.run "timing"
    [
      ( "graph",
        [
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "arena" `Quick test_build_arena;
          Alcotest.test_case "cycle raises" `Quick test_build_cycle_raises;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "analyze chain" `Quick test_analyze_chain;
          Alcotest.test_case "early cutoff" `Quick test_early_cutoff;
          Alcotest.test_case "k-worst ties" `Quick test_k_worst_ties;
          Alcotest.test_case "k-worst overask" `Quick test_k_worst_overask;
          Alcotest.test_case "k-worst po is pi" `Quick test_k_worst_po_is_pi;
        ] );
      ( "sta",
        [
          Alcotest.test_case "worst paths reconvergent" `Slow
            test_worst_paths_reconvergent;
          Alcotest.test_case "negative slack" `Slow test_negative_slack;
          Alcotest.test_case "pi-po singleton" `Slow test_pi_po_singleton;
          Alcotest.test_case "update rejects unknown" `Slow
            test_update_rejects_unknown;
          Alcotest.test_case "factory cache stats" `Slow
            test_factory_cache_stats;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "classic 100 sequences" `Slow
            test_equivalence_classic;
          Alcotest.test_case "proximity 100 sequences" `Slow
            test_equivalence_proximity;
          Alcotest.test_case "swap models" `Slow test_swap_models_equiv;
        ] );
    ]
