(* Tests for the million-cell scale path: the deterministic synthetic
   design generator, the binary netlist round-trip, and randomized
   bit-identity of the SoA propagation against the records-of-options
   reference oracle across full analyses and long ECO sequences. *)

module Prng = Proxim_util.Prng
module Memo_cache = Proxim_util.Memo_cache
module Graph = Proxim_timing.Graph
module Timing = Proxim_timing.Timing
module Reference = Proxim_timing.Reference
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Synthgen = Proxim_sta.Synthgen
module Netlist_text = Proxim_sta.Netlist_text
module Netlist_bin = Proxim_sta.Netlist_bin

let tech = Tech.generic_5v

(* ------------------------------------------------------------------ *)
(* Synthgen structure                                                  *)

let test_synthgen_shape () =
  let name, design =
    Synthgen.generate ~seed:3 ~depth:7 ~tech ~cells:1000 ()
  in
  Alcotest.(check string) "name" "synth_c1000_d7_s3" name;
  Alcotest.(check int) "cells" 1000 (List.length (Design.cells design));
  let g = Design.graph design in
  Alcotest.(check int) "levels" 7 (Graph.level_count g);
  (* layer index is the timing level: every cell u<l>_<j> sits at level l *)
  for l = 0 to Graph.level_count g - 1 do
    Array.iter
      (fun c ->
        let cell : Design.cell = Graph.payload g c in
        let prefix = "u" ^ string_of_int l ^ "_" in
        if
          not
            (String.length cell.Design.name > String.length prefix
            && String.sub cell.Design.name 0 (String.length prefix) = prefix)
        then
          Alcotest.failf "cell %s found at level %d" cell.Design.name l)
      (Graph.level g l)
  done;
  (* primary outputs are exactly the last layer's nets *)
  List.iter
    (fun po ->
      let prefix = "n6_" in
      if not (String.sub po 0 (String.length prefix) = prefix) then
        Alcotest.failf "unexpected primary output %s" po)
    (Design.primary_outputs design);
  (* no cell reads the same net twice *)
  List.iter
    (fun (c : Design.cell) ->
      let sorted =
        List.sort_uniq String.compare (Array.to_list c.Design.input_nets)
      in
      Alcotest.(check int)
        ("distinct inputs of " ^ c.Design.name)
        (Array.length c.Design.input_nets)
        (List.length sorted))
    (Design.cells design)

let test_synthgen_determinism () =
  let gen () =
    let name, d = Synthgen.generate ~seed:11 ~depth:5 ~tech ~cells:500 () in
    Netlist_text.to_string ~name d
  in
  Alcotest.(check string) "same seed, same bytes" (gen ()) (gen ());
  let _, d2 = Synthgen.generate ~seed:12 ~depth:5 ~tech ~cells:500 () in
  let other = Netlist_text.to_string ~name:"x" d2 in
  if String.equal (gen ()) other then
    Alcotest.fail "different seeds produced identical designs"

let test_synthgen_validation () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument f) in
  bad "Synthgen.generate: cells < depth" (fun () ->
      ignore (Synthgen.generate ~depth:10 ~tech ~cells:5 ()));
  bad "Synthgen.generate: depth < 1" (fun () ->
      ignore (Synthgen.generate ~depth:0 ~tech ~cells:5 ()))

(* ------------------------------------------------------------------ *)
(* Binary netlist round-trip                                           *)

let temp_bin f =
  let path = Filename.temp_file "proxim_test" ".pxb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_bin_roundtrip () =
  let name, design = Synthgen.generate ~seed:5 ~depth:4 ~tech ~cells:300 () in
  let th = { Vtc.vil = 1.9; vih = 3.1; vdd = 5. } in
  temp_bin (fun path ->
      Netlist_bin.write_file ~thresholds:th ~name design path;
      Alcotest.(check bool) "sniffs binary" true (Netlist_bin.file_is_binary path);
      match Netlist_bin.read_file tech path with
      | Error m -> Alcotest.fail m
      | Ok (name', design', th') ->
        Alcotest.(check string) "name" name name';
        Alcotest.(check string) "structure"
          (Netlist_text.to_string ~name design)
          (Netlist_text.to_string ~name design');
        (match th' with
         | None -> Alcotest.fail "thresholds lost"
         | Some t ->
           Alcotest.(check (float 0.)) "vil" th.Vtc.vil t.Vtc.vil;
           Alcotest.(check (float 0.)) "vih" th.Vtc.vih t.Vtc.vih;
           Alcotest.(check (float 0.)) "vdd" th.Vtc.vdd t.Vtc.vdd))

let test_bin_no_thresholds () =
  let name, design = Synthgen.generate ~seed:1 ~depth:3 ~tech ~cells:30 () in
  temp_bin (fun path ->
      Netlist_bin.write_file ~name design path;
      match Netlist_bin.read_file tech path with
      | Ok (_, _, None) -> ()
      | Ok (_, _, Some _) -> Alcotest.fail "phantom thresholds"
      | Error m -> Alcotest.fail m)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_bin_errors () =
  temp_bin (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOPE this is not a binary netlist";
      close_out oc;
      Alcotest.(check bool) "not binary" false (Netlist_bin.file_is_binary path);
      (match Netlist_bin.read_file tech path with
       | Error m ->
         Alcotest.(check bool) "mentions magic" true (contains m "magic")
       | Ok _ -> Alcotest.fail "accepted garbage"));
  (* truncation: drop the tail of a valid file *)
  let name, design = Synthgen.generate ~seed:2 ~depth:3 ~tech ~cells:30 () in
  temp_bin (fun path ->
      Netlist_bin.write_file ~name design path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      match Netlist_bin.read_file tech path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted truncated file")

(* ------------------------------------------------------------------ *)
(* SoA vs reference-oracle bit-identity on generated designs           *)

(* a synthetic-model factory with per-cell seed overrides so Touch_cell
   ECOs re-characterize one instance (same shape as the bench's) *)
let overriding_models () =
  let overrides : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let cache = Memo_cache.create () in
  let models (cell : Design.cell) =
    let seed = Option.value (Hashtbl.find_opt overrides cell.Design.name) ~default:0 in
    Memo_cache.find_or_compute cache (cell.Design.gate.Gate.name, seed)
      (fun () -> Models.synthetic ~seed cell.Design.gate)
  in
  (overrides, models)

let random_event rng =
  {
    Sta.time = Prng.float rng ~lo:0. ~hi:300e-12;
    slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
    edge = Measure.Fall;
  }

let test_soa_matches_reference mode () =
  let th = { Vtc.vil = 1.9; vih = 3.1; vdd = 5. } in
  let rng = Prng.create 0x50AL in
  let _, design = Synthgen.generate ~seed:9 ~depth:8 ~tech ~cells:2000 () in
  let overrides, models = overriding_models () in
  let pi =
    List.map
      (fun net -> (net, random_event rng))
      (Design.primary_inputs design)
  in
  let ir = Sta.build_ir ~mode ~models ~thresholds:th design ~pi in
  ignore (Sta.reanalyze ir : Timing.stats);
  Alcotest.(check bool) "fresh analyze agrees" true
    (Reference.agrees (Sta.timing ir));
  let pis = Array.of_list (Design.primary_inputs design) in
  let cells = Array.of_list (Design.cells design) in
  for t = 1 to 100 do
    let eco =
      match Prng.int rng ~lo:0 ~hi:9 with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
        let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
        Sta.Set_pi (net, Some (random_event rng))
      | 6 ->
        (* silence one input entirely *)
        let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
        Sta.Set_pi (net, None)
      | _ ->
        let c = cells.(Prng.int rng ~lo:0 ~hi:(Array.length cells - 1)) in
        Hashtbl.replace overrides c.Design.name t;
        Sta.Touch_cell c.Design.name
    in
    ignore (Sta.update ir [ eco ] : Timing.stats);
    if not (Reference.agrees (Sta.timing ir)) then
      Alcotest.failf "update #%d diverged from the reference oracle" t
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "scale"
    [
      ( "synthgen",
        [
          Alcotest.test_case "shape and levelization" `Quick
            test_synthgen_shape;
          Alcotest.test_case "seed determinism" `Quick
            test_synthgen_determinism;
          Alcotest.test_case "parameter validation" `Quick
            test_synthgen_validation;
        ] );
      ( "netlist_bin",
        [
          Alcotest.test_case "round-trip with thresholds" `Quick
            test_bin_roundtrip;
          Alcotest.test_case "round-trip without thresholds" `Quick
            test_bin_no_thresholds;
          Alcotest.test_case "corrupt and truncated input" `Quick
            test_bin_errors;
        ] );
      ( "soa-vs-reference",
        [
          Alcotest.test_case "classic: analyze + 100 ECOs" `Quick
            (test_soa_matches_reference Sta.Classic);
          Alcotest.test_case "proximity: analyze + 100 ECOs" `Quick
            (test_soa_matches_reference Sta.Proximity);
        ] );
    ]
