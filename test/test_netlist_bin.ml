(* Corrupt-input regression tests for the binary netlist decoder: the
   63-bit varint overflow (a 9-byte varint whose final byte sets the
   sign bit used to come back negative and sail past every length
   guard), negative/oversized lengths, bounded-chunk string reads, and
   truncation at every byte boundary of a valid file.  Every vector
   must produce [Error _] — never an exception, never [Ok]. *)

module Tech = Proxim_gates.Tech
module Design = Proxim_sta.Design
module Synthgen = Proxim_sta.Synthgen
module Netlist_text = Proxim_sta.Netlist_text
module Netlist_bin = Proxim_sta.Netlist_bin

let tech = Tech.generic_5v

let temp_bin f =
  let path = Filename.temp_file "proxim_nlbin" ".pxnb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Decode [bytes] as a binary netlist; the result is always a [result].
   Any escaping exception is the exact failure mode these tests exist
   to prevent, so it fails the test with the exception's name. *)
let read_bytes bytes =
  temp_bin (fun path ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      match Netlist_bin.read_file tech path with
      | r -> r
      | exception e ->
        Alcotest.failf "decoder raised %s" (Printexc.to_string e))

let expect_error ~ctx ~mentions bytes =
  match read_bytes bytes with
  | Ok _ -> Alcotest.failf "%s: accepted corrupt input" ctx
  | Error m ->
    if not (contains m mentions) then
      Alcotest.failf "%s: error %S does not mention %S" ctx m mentions

(* A header up to the point where the design-name string begins: the
   first varint the decoder reads.  Corrupt length vectors splice in
   right here. *)
let header = "PXNB\x01"

let bytes l = String.concat "" (List.map (String.make 1) (List.map Char.chr l))

(* ------------------------------------------------------------------ *)
(* varint overflow                                                     *)

let test_varint_sign_bit () =
  (* 8 continuation bytes then a final byte with bit 0x40: that payload
     bit lands on bit 62 — OCaml's sign bit.  The unpatched decoder
     returned a negative length here. *)
  let vector = bytes [0x80; 0x80; 0x80; 0x80; 0x80; 0x80; 0x80; 0x80; 0x40] in
  expect_error ~ctx:"sign-bit varint" ~mentions:"varint overflows"
    (header ^ vector);
  (* all-ones: same overflow, detected on the ninth byte *)
  let ones = String.make 9 '\xff' in
  expect_error ~ctx:"all-ones varint" ~mentions:"varint overflows"
    (header ^ ones)

let test_varint_too_long () =
  (* nine continuation bytes that never overflow bit 62 but keep the
     continuation bit set past the last legal position *)
  let vector = String.make 9 '\x80' in
  expect_error ~ctx:"overlong varint" ~mentions:"varint too long"
    (header ^ vector)

let test_varint_truncated () =
  expect_error ~ctx:"varint cut mid-stream" ~mentions:"truncated varint"
    (header ^ bytes [0x80; 0x80])

(* ------------------------------------------------------------------ *)
(* length guards                                                       *)

let test_string_length_over_max () =
  (* 0x1000_0000 — one past the 256 MB - 1 cap *)
  let vector = bytes [0x80; 0x80; 0x80; 0x80; 0x01] in
  expect_error ~ctx:"string length over max" ~mentions:"out of range"
    (header ^ vector)

let test_huge_claimed_string () =
  (* a legal-looking length claim of 256 MB - 1 with no bytes behind
     it: the chunked reader must fail at end-of-file without first
     allocating the claimed size *)
  let vector = bytes [0xff; 0xff; 0xff; 0x7f] in
  let before = Gc.quick_stat () in
  expect_error ~ctx:"huge claimed string" ~mentions:"truncated string"
    (header ^ vector);
  let after = Gc.quick_stat () in
  let words = after.Gc.major_words -. before.Gc.major_words in
  (* one 64 KB chunk is fine; a quarter-gigabyte buffer is not *)
  if words > 4e6 then
    Alcotest.failf "decoder allocated %.0f major words for a phantom string"
      words

let test_count_guards () =
  (* empty design name, no thresholds, then a gate-table size past the
     0xffff cap *)
  let prefix = header ^ bytes [0x00; 0x00] in
  expect_error ~ctx:"gate table size" ~mentions:"gate table size"
    (prefix ^ bytes [0x80; 0x80; 0x04]);
  (* gate index beyond the (empty) gate table *)
  let no_gates_no_nets = prefix ^ bytes [0x00; 0x00; 0x00] in
  expect_error ~ctx:"gate index" ~mentions:"gate index"
    (no_gates_no_nets ^ bytes [0x01; 0x05])

(* ------------------------------------------------------------------ *)
(* truncation at every byte boundary                                   *)

let test_truncation_everywhere () =
  let name, design = Synthgen.generate ~seed:7 ~depth:3 ~tech ~cells:24 () in
  let th = { Proxim_vtc.Vtc.vil = 1.9; vih = 3.1; vdd = 5. } in
  let full =
    temp_bin (fun path ->
        Netlist_bin.write_file ~thresholds:th ~name design path;
        In_channel.with_open_bin path In_channel.input_all)
  in
  (match read_bytes full with
   | Ok (name', design', Some _) ->
     Alcotest.(check string) "round-trip name" name name';
     Alcotest.(check string) "round-trip structure"
       (Netlist_text.to_string ~name design)
       (Netlist_text.to_string ~name design')
   | Ok (_, _, None) -> Alcotest.fail "thresholds lost"
   | Error m -> Alcotest.fail m);
  (* every proper prefix — cutting inside the magic, the version byte,
     a varint, a string body, a float, the end marker — must be a
     typed decode error *)
  for cut = 0 to String.length full - 1 do
    match read_bytes (String.sub full 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted file truncated at byte %d" cut
  done

(* garbage appended after a valid file is ignored (the format is
   self-delimiting); garbage replacing the end marker is not *)
let test_end_marker () =
  let name, design = Synthgen.generate ~seed:8 ~depth:3 ~tech ~cells:12 () in
  let full =
    temp_bin (fun path ->
        Netlist_bin.write_file ~name design path;
        In_channel.with_open_bin path In_channel.input_all)
  in
  let body = String.sub full 0 (String.length full - 1) in
  expect_error ~ctx:"bad end marker" ~mentions:"end marker"
    (body ^ bytes [0x00])

let () =
  Alcotest.run "netlist_bin"
    [
      ( "varint",
        [
          Alcotest.test_case "sign-bit overflow rejected" `Quick
            test_varint_sign_bit;
          Alcotest.test_case "overlong continuation rejected" `Quick
            test_varint_too_long;
          Alcotest.test_case "truncated varint" `Quick test_varint_truncated;
        ] );
      ( "lengths",
        [
          Alcotest.test_case "string length over max" `Quick
            test_string_length_over_max;
          Alcotest.test_case "huge claimed string stays bounded" `Quick
            test_huge_claimed_string;
          Alcotest.test_case "count guards" `Quick test_count_guards;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "every byte boundary" `Quick
            test_truncation_everywhere;
          Alcotest.test_case "end marker" `Quick test_end_marker;
        ] );
    ]
