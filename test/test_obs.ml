(* Tests for the observability layer (metrics registry + tracing core)
   and regression tests for the latent bugs the same PR fixed: grid3
   extrapolation, memo-cache wait accounting, and the typed ECO errors
   at the CLI boundary. *)

module Metrics = Proxim_obs.Metrics
module Trace = Proxim_obs.Trace
module Pool = Proxim_util.Pool
module Memo_cache = Proxim_util.Memo_cache
module Interp = Proxim_util.Interp
module Json = Proxim_lint.Json
module Sta = Proxim_sta.Sta
module Design = Proxim_sta.Design
module Netlist_text = Proxim_sta.Netlist_text
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc

let wide = lazy (Pool.create ~domains:4)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_counter_under_contention () =
  let registry = Metrics.create () in
  let c = Metrics.Counter.v ~registry "test.contended" in
  let n = 20_000 in
  Pool.parallel_for (Lazy.force wide) ~n (fun _ -> Metrics.Counter.incr c);
  Alcotest.(check int) "all increments survive" n (Metrics.Counter.value c);
  Metrics.Counter.add c 5;
  Alcotest.(check int) "add" (n + 5) (Metrics.Counter.value c);
  let snap = Metrics.snapshot ~registry () in
  Alcotest.(check (list (pair string int)))
    "snapshot sees it"
    [ ("test.contended", n + 5) ]
    snap.Metrics.counters

let test_counter_idempotent_registration () =
  let registry = Metrics.create () in
  let a = Metrics.Counter.v ~registry "same" in
  Metrics.Counter.incr a;
  let b = Metrics.Counter.v ~registry "same" in
  Metrics.Counter.incr b;
  Alcotest.(check int) "one counter behind one name" 2
    (Metrics.Counter.value a);
  let snap = Metrics.snapshot ~registry () in
  Alcotest.(check int) "registry holds a single entry" 1
    (List.length snap.Metrics.counters)

let test_gauge () =
  let registry = Metrics.create () in
  let g = Metrics.Gauge.v ~registry "test.gauge" in
  Alcotest.(check (float 0.)) "initial" 0. (Metrics.Gauge.value g);
  Metrics.Gauge.set g 0.75;
  Metrics.Gauge.set g 0.25;
  Alcotest.(check (float 0.)) "last write wins" 0.25 (Metrics.Gauge.value g)

let test_histogram_merge_across_domains () =
  let registry = Metrics.create () in
  let h = Metrics.Histogram.v ~registry "test.latency" in
  let n = 4_000 in
  (* every task observes the same duration from whichever domain runs
     it; the merged snapshot must account for each observation once *)
  Pool.parallel_for (Lazy.force wide) ~n (fun _ ->
      Metrics.Histogram.observe h 1e-3);
  let snap = Metrics.snapshot ~registry () in
  match List.assoc_opt "test.latency" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
    Alcotest.(check int) "count" n hs.Metrics.count;
    Alcotest.(check (float 1e-6)) "sum" (float_of_int n *. 1e-3)
      hs.Metrics.sum;
    Alcotest.(check (float 0.)) "min" 1e-3 hs.Metrics.min;
    Alcotest.(check (float 0.)) "max" 1e-3 hs.Metrics.max

let test_metrics_json_parses () =
  let registry = Metrics.create () in
  let c = Metrics.Counter.v ~registry "needs \"escaping\"\n" in
  Metrics.Counter.incr c;
  let h = Metrics.Histogram.v ~registry "lat" in
  Metrics.Histogram.observe h 2e-4;
  Metrics.register_gauge_source ~registry "src.gauge" (fun () -> 0.5);
  let json = Metrics.to_json (Metrics.snapshot ~registry ()) in
  match Json.of_string json with
  | Error m -> Alcotest.fail ("metrics JSON does not parse: " ^ m)
  | Ok j ->
    let counters = Option.get (Json.member "counters" j) in
    Alcotest.(check (option (float 0.)))
      "escaped counter round-trips" (Some 1.)
      (Option.bind
         (Json.member "needs \"escaping\"\n" counters)
         Json.to_number)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

let test_disabled_tracing_is_inert () =
  Trace.disable ();
  Trace.clear ();
  let r = Trace.with_span "quiet" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events ()))

let test_span_nesting () =
  Trace.clear ();
  Trace.enable ();
  let r =
    Trace.with_span ~cat:"t" "outer" (fun () ->
        Trace.with_span ~cat:"t" ~args:[ ("k", "v") ] "inner" (fun () -> 7))
  in
  Trace.disable ();
  Alcotest.(check int) "result" 7 r;
  let find name =
    match
      List.find_opt (fun e -> e.Trace.name = name) (Trace.events ())
    with
    | Some e -> e
    | None -> Alcotest.fail ("span not recorded: " ^ name)
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner starts inside outer" true
    (inner.Trace.ts >= outer.Trace.ts);
  Alcotest.(check bool) "inner ends inside outer" true
    (inner.Trace.ts +. inner.Trace.dur
     <= outer.Trace.ts +. outer.Trace.dur +. 1e-3);
  Alcotest.(check int) "same recording domain" outer.Trace.tid
    inner.Trace.tid;
  Alcotest.(check (list (pair string string)))
    "args preserved"
    [ ("k", "v") ]
    inner.Trace.args

let test_span_recorded_on_exception () =
  Trace.clear ();
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Trace.disable ();
  Alcotest.(check bool) "exceptional exit still recorded" true
    (List.exists (fun e -> e.Trace.name = "boom") (Trace.events ()))

let test_pool_spans () =
  Trace.clear ();
  Trace.enable ();
  Pool.parallel_for (Lazy.force wide) ~n:64 (fun _ -> ());
  Trace.disable ();
  let names = List.map (fun e -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check bool) "pool.job span" true (List.mem "pool.job" names);
  Alcotest.(check bool) "pool.run span" true (List.mem "pool.run" names)

let test_chrome_json_wellformed () =
  Trace.clear ();
  Trace.enable ();
  Trace.with_span ~args:[ ("path", "a\\b\"c\n") ] "na\"me" (fun () ->
      Trace.with_span "child" ignore);
  Trace.disable ();
  let doc = Trace.to_chrome_json () in
  match Json.of_string doc with
  | Error m -> Alcotest.fail ("trace JSON does not parse: " ^ m)
  | Ok j ->
    let events =
      Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list)
    in
    Alcotest.(check int) "two events" 2 (List.length events);
    List.iter
      (fun e ->
        Alcotest.(check (option string))
          "complete event" (Some "X")
          (Option.bind (Json.member "ph" e) Json.to_string_value);
        List.iter
          (fun k ->
            if Json.member k e = None then
              Alcotest.fail (Printf.sprintf "event misses field %s" k))
          [ "name"; "cat"; "pid"; "tid"; "ts"; "dur"; "args" ])
      events;
    Alcotest.(check bool) "escaped name round-trips" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "name" e) Json.to_string_value
           = Some "na\"me")
         events)

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: grid3 extrapolation                             *)

(* f is affine, so trilinear interpolation AND linear extrapolation
   reproduce it exactly; pchip along z preserves affine data too. *)
let affine_grid () =
  Interp.grid3_make ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |] ~zs:[| 0.; 1.; 2. |]
    ~f:(fun x y z -> x +. (2. *. y) +. (3. *. z))
    ()

let test_grid3_extrapolation_modes () =
  let g = affine_grid () in
  Interp.reset_grid_clamp_events ();
  (* in range: both policies agree, no clamp events *)
  Alcotest.(check (float 1e-12)) "in range" 3.
    (Interp.trilinear g 0.5 0.5 0.5);
  Alcotest.(check (float 1e-12)) "in range (linear)" 3.
    (Interp.trilinear ~extrapolation:Interp.Linear g 0.5 0.5 0.5);
  Alcotest.(check int) "no clamps in range" 0 (Interp.grid_clamp_events ());
  (* x out of range: Linear extrapolates, Clamp pins to the edge *)
  Alcotest.(check (float 1e-12)) "linear extrapolates x" 4.5
    (Interp.trilinear ~extrapolation:Interp.Linear g 2. 0.5 0.5);
  Alcotest.(check (float 1e-12)) "clamp pins x" 3.5
    (Interp.trilinear g 2. 0.5 0.5);
  Alcotest.(check int) "one clamp counted" 1 (Interp.grid_clamp_events ());
  (* z out of range exercises the pchip axis of bilinear_pchip_z *)
  Alcotest.(check (float 1e-9)) "pchip-z linear extrapolates" 10.5
    (Interp.bilinear_pchip_z ~extrapolation:Interp.Linear g 0.5 0.5 3.);
  Alcotest.(check (float 1e-9)) "pchip-z clamp pins" 7.5
    (Interp.bilinear_pchip_z g 0.5 0.5 3.);
  Alcotest.(check int) "second clamp counted" 2 (Interp.grid_clamp_events ())

let test_grid3_linear_no_clamp_events () =
  let g = affine_grid () in
  Interp.reset_grid_clamp_events ();
  ignore (Interp.trilinear ~extrapolation:Interp.Linear g 5. 5. 5.);
  ignore (Interp.bilinear_pchip_z ~extrapolation:Interp.Linear g 5. 5. 5.);
  Alcotest.(check int) "linear mode never clamps" 0
    (Interp.grid_clamp_events ())

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: memo-cache wait accounting                      *)

let test_cache_serial_stats () =
  let c = Memo_cache.create () in
  Alcotest.(check int) "first lookup computes" 1
    (Memo_cache.find_or_compute c 1 (fun () -> 1));
  Alcotest.(check int) "second lookup hits" 1
    (Memo_cache.find_or_compute c 1 (fun () -> 2));
  let s = Memo_cache.stats c in
  Alcotest.(check int) "hits" 1 s.Memo_cache.hits;
  Alcotest.(check int) "misses" 1 s.Memo_cache.misses;
  Alcotest.(check int) "waits" 0 s.Memo_cache.waits;
  Alcotest.(check int) "evictions" 0 s.Memo_cache.evictions;
  Alcotest.(check int) "entries" 1 s.Memo_cache.entries

let test_cache_wait_counted () =
  let c = Memo_cache.create () in
  let started = Atomic.make false in
  let waiter_near = Atomic.make false in
  let release = Atomic.make false in
  let owner =
    Domain.spawn (fun () ->
        Memo_cache.find_or_compute c 1 (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            42))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* the entry is now Pending; this lookup must block, NOT recompute,
     and be accounted as a wait (the old code counted it as a hit) *)
  let waiter =
    Domain.spawn (fun () ->
        Atomic.set waiter_near true;
        Memo_cache.find_or_compute c 1 (fun () -> 99))
  in
  while not (Atomic.get waiter_near) do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.1;
  Atomic.set release true;
  Alcotest.(check int) "owner computed" 42 (Domain.join owner);
  Alcotest.(check int) "waiter got the owner's value" 42 (Domain.join waiter);
  let s = Memo_cache.stats c in
  Alcotest.(check int) "one computation" 1 s.Memo_cache.misses;
  Alcotest.(check int) "blocked lookup counted as wait" 1 s.Memo_cache.waits;
  Alcotest.(check int) "not double-counted as hit" 0 s.Memo_cache.hits;
  Alcotest.(check int) "entries" 1 s.Memo_cache.entries

let test_cache_eviction_on_error () =
  let c = Memo_cache.create () in
  (try ignore (Memo_cache.find_or_compute c 1 (fun () -> failwith "no"))
   with Failure _ -> ());
  let s = Memo_cache.stats c in
  Alcotest.(check int) "failed computation evicted" 1 s.Memo_cache.evictions;
  Alcotest.(check int) "no entry left behind" 0 s.Memo_cache.entries;
  Alcotest.(check int) "retry recomputes" 7
    (Memo_cache.find_or_compute c 1 (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: typed ECO errors and the CLI boundary           *)

let tiny_netlist =
  "design tiny\ninput a\noutput y\ncell u1 inv a -> y\nend\n"

let tiny_ir () =
  match Netlist_text.parse Tech.generic_5v tiny_netlist with
  | Error m -> Alcotest.fail m
  | Ok (_, design) ->
    let th =
      match Design.cells design with
      | c :: _ -> Vtc.thresholds c.Design.gate
      | [] -> Alcotest.fail "tiny design has no cells"
    in
    let factory = Sta.synthetic_factory () in
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ~models:factory.Sta.models
        ~thresholds:th design
        ~pi:
          [
            ( "a",
              { Sta.time = 0.; slew = 300e-12; edge = Proxim_measure.Measure.Fall }
            );
          ]
    in
    ignore (Sta.reanalyze ir);
    ir

let test_update_unknown_net () =
  let ir = tiny_ir () in
  Alcotest.check_raises "unknown net is a typed error"
    (Sta.Unknown_eco_target { kind = "net"; name = "nosuch" })
    (fun () -> ignore (Sta.update ir [ Sta.Set_pi ("nosuch", None) ]))

let test_update_unknown_cell () =
  let ir = tiny_ir () in
  Alcotest.check_raises "unknown cell is a typed error"
    (Sta.Unknown_eco_target { kind = "cell"; name = "bogus" })
    (fun () -> ignore (Sta.update ir [ Sta.Touch_cell "bogus" ]))

(* dune runtest runs with the stanza directory as cwd, so the CLI binary
   sits one level up in the build tree; a plain `dune exec` from the
   workspace root needs the full _build path instead *)
let cli =
  match
    List.find_opt Sys.file_exists
      [ "../bin/proxim_cli.exe"; "_build/default/bin/proxim_cli.exe" ]
  with
  | Some p -> p
  | None -> "proxim"

let with_tiny_netlist_file f =
  let file = Filename.temp_file "proxim_obs" ".ntl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc tiny_netlist);
      f file)

let test_cli_eco_exit_code () =
  with_tiny_netlist_file (fun file ->
      let cmd =
        Printf.sprintf
          "%s sta %s --models synthetic --pi a:fall:300:0 --eco \
           pi:nosuch:quiet >/dev/null 2>&1"
          cli (Filename.quote file)
      in
      Alcotest.(check int) "unknown eco target exits 2" 2 (Sys.command cmd))

let test_cli_trace_and_metrics () =
  with_tiny_netlist_file (fun file ->
      let trace = Filename.temp_file "proxim_obs" ".trace.json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
        (fun () ->
          let cmd =
            Printf.sprintf
              "%s sta %s --models synthetic --pi a:fall:300:0 --trace %s \
               --metrics json >/dev/null 2>&1"
              cli (Filename.quote file) (Filename.quote trace)
          in
          Alcotest.(check int) "clean run" 0 (Sys.command cmd);
          let doc = In_channel.with_open_text trace In_channel.input_all in
          match Json.of_string doc with
          | Error m -> Alcotest.fail ("--trace output does not parse: " ^ m)
          | Ok j ->
            let events =
              Option.bind (Json.member "traceEvents" j) Json.to_list
            in
            Alcotest.(check bool) "trace has spans" true
              (match events with Some (_ :: _) -> true | _ -> false)))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter under contention" `Quick
            test_counter_under_contention;
          Alcotest.test_case "idempotent registration" `Quick
            test_counter_idempotent_registration;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram merge across domains" `Quick
            test_histogram_merge_across_domains;
          Alcotest.test_case "json reporter parses" `Quick
            test_metrics_json_parses;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled tracing is inert" `Quick
            test_disabled_tracing_is_inert;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_recorded_on_exception;
          Alcotest.test_case "pool spans" `Quick test_pool_spans;
          Alcotest.test_case "chrome json well-formed" `Quick
            test_chrome_json_wellformed;
        ] );
      ( "grid3",
        [
          Alcotest.test_case "extrapolation modes" `Quick
            test_grid3_extrapolation_modes;
          Alcotest.test_case "linear never clamps" `Quick
            test_grid3_linear_no_clamp_events;
        ] );
      ( "cache",
        [
          Alcotest.test_case "serial stats" `Quick test_cache_serial_stats;
          Alcotest.test_case "wait counted" `Quick test_cache_wait_counted;
          Alcotest.test_case "eviction on error" `Quick
            test_cache_eviction_on_error;
        ] );
      ( "eco-errors",
        [
          Alcotest.test_case "unknown net" `Quick test_update_unknown_net;
          Alcotest.test_case "unknown cell" `Quick test_update_unknown_cell;
          Alcotest.test_case "cli exit code" `Quick test_cli_eco_exit_code;
          Alcotest.test_case "cli trace + metrics" `Quick
            test_cli_trace_and_metrics;
        ] );
    ]
