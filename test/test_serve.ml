(* The serve daemon: wire codecs round-trip floats bit-identically,
   every session answer matches the offline engine byte-for-byte,
   concurrent sessions agree, and adversarial clients (garbage frames,
   oversized claims, mid-session disconnects) get typed errors without
   ever taking the server down. *)

module Tech = Proxim_gates.Tech
module Measure = Proxim_measure.Measure
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Netlist_text = Proxim_sta.Netlist_text
module Serve = Proxim_serve.Serve
module Frame = Proxim_serve.Frame
module Json = Proxim_lint.Json

let tech = Tech.generic_5v

let same_float a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits msg a b =
  if not (same_float a b) then
    Alcotest.failf "%s: %.17g and %.17g differ in bits" msg a b

let netlist_text =
  String.concat "\n"
    [
      "design serve_demo";
      "input a";
      "input b";
      "input c";
      "input d";
      "output y";
      "cell u1 nand2 a b -> n1";
      "cell u2 nand2 c d -> n2";
      "cell u3 nand2 n1 n2 -> y";
      "thresholds 1.263 3.737 5.0";
      "";
    ]

(* the same stimulus both offline and over the wire; deliberately
   non-round floats so bit-identity is actually exercised *)
let pi_events =
  [
    ("a", { Sta.time = 0.; slew = 4.001e-10; edge = Measure.Fall });
    ("b", { Sta.time = 5.3e-11; slew = 3.07e-10; edge = Measure.Fall });
    ("c", { Sta.time = 5.3e-11; slew = 3.07e-10; edge = Measure.Fall });
    ("d", { Sta.time = 5.3e-11; slew = 3.07e-10; edge = Measure.Fall });
  ]

let eco_arrival = { Sta.time = 2.1e-11; slew = 3.51e-10; edge = Measure.Fall }
let ecos = [ Sta.Set_pi ("a", Some eco_arrival) ]

(* what the daemon must reproduce, computed through the very same
   engine entry points the server calls *)
let offline_report =
  lazy
    (let design =
       match Netlist_text.parse tech netlist_text with
       | Ok (_, d) -> d
       | Error m -> Alcotest.failf "offline parse: %s" m
     in
     let raw = Netlist_text.parse_raw tech netlist_text in
     let thresholds =
       match raw.Netlist_text.raw_thresholds with
       | Some (th, _) -> th
       | None -> Alcotest.fail "netlist has no thresholds line"
     in
     let factory = Sta.synthetic_factory ~seed:0 () in
     let ir =
       Sta.build_ir ~mode:Sta.Proximity ~models:factory.Sta.models
         ~thresholds design ~pi:pi_events
     in
     ignore (Sta.reanalyze ir);
     ignore (Sta.update ir ecos);
     Sta.report ir)

let check_report_identical msg (got : Sta.report) (want : Sta.report) =
  Alcotest.(check int)
    (msg ^ ": arrival count")
    (List.length want.Sta.arrivals)
    (List.length got.Sta.arrivals);
  List.iter2
    (fun (gn, (ga : Sta.arrival)) (wn, (wa : Sta.arrival)) ->
      Alcotest.(check string) (msg ^ ": net") wn gn;
      check_bits (msg ^ ": time of " ^ wn) ga.Sta.time wa.Sta.time;
      check_bits (msg ^ ": slew of " ^ wn) ga.Sta.slew wa.Sta.slew;
      if ga.Sta.edge <> wa.Sta.edge then
        Alcotest.failf "%s: edge of %s differs" msg wn)
    got.Sta.arrivals want.Sta.arrivals;
  (match (got.Sta.critical_po, want.Sta.critical_po) with
   | None, None -> ()
   | Some (gn, ga), Some (wn, wa) ->
     Alcotest.(check string) (msg ^ ": critical po") wn gn;
     check_bits (msg ^ ": critical time") ga.Sta.time wa.Sta.time
   | _ -> Alcotest.failf "%s: critical_po presence differs" msg);
  Alcotest.(check (list (pair string string)))
    (msg ^ ": predecessors")
    want.Sta.predecessors got.Sta.predecessors

(* --- helpers over a live server --------------------------------------- *)

let with_server f =
  let srv = Serve.start (`Tcp ("127.0.0.1", 0)) in
  let port =
    match Serve.port srv with
    | Some p -> p
    | None -> Alcotest.fail "tcp server reports no port"
  in
  let addr = `Tcp ("127.0.0.1", port) in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop srv;
      Serve.wait srv)
    (fun () -> f addr)

let with_conn addr f =
  let fd = Serve.connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let rpc fd req =
  match Serve.request fd req with
  | Ok j -> j
  | Error m -> Alcotest.failf "request failed: %s" m

let rpc_ok fd req =
  let j = rpc fd req in
  if not (Serve.ok j) then
    Alcotest.failf "request rejected: %s" (Json.to_string j);
  j

let expect_code fd req code =
  let j = rpc fd req in
  if Serve.ok j then
    Alcotest.failf "expected %s error, got ok: %s" code (Json.to_string j);
  Alcotest.(check (option string)) ("error code " ^ code) (Some code)
    (Serve.error_code j)

let str s = Json.String s
let num f = Json.Number f

let attach_req =
  Json.Obj
    [
      ("op", str "attach");
      ("design", str "serve_demo");
      ("mode", str "proximity");
      ("models", str "synthetic");
      ( "pi",
        Json.List
          (List.map
             (fun (net, a) ->
               Json.List [ str net; Serve.arrival_to_json a ])
             pi_events) );
    ]

let eco_req =
  Json.Obj
    [
      ("op", str "eco");
      ( "ecos",
        Json.List
          [
            Json.Obj
              [
                ("kind", str "set_pi");
                ("net", str "a");
                ("arrival", Serve.arrival_to_json eco_arrival);
              ];
          ] );
    ]

let load_design fd =
  ignore
    (rpc_ok fd
       (Json.Obj [ ("op", str "load_text"); ("text", str netlist_text) ]))

let session_report fd =
  ignore (rpc_ok fd attach_req);
  ignore (rpc_ok fd eco_req);
  let resp = rpc_ok fd (Json.Obj [ ("op", str "report") ]) in
  match
    match Json.member "report" resp with
    | None -> Error "no report field"
    | Some rj -> Serve.report_of_json rj
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "report decode: %s" m

(* --- tests ------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let nasty =
    [
      { Sta.time = 3.14159265358979312e-10; slew = 1e-300; edge = Measure.Rise };
      { Sta.time = -0.; slew = Float.min_float; edge = Measure.Fall };
      { Sta.time = 0x1.fffffffffffffp-100; slew = 1.0000000000000002;
        edge = Measure.Rise };
    ]
  in
  List.iter
    (fun a ->
      (* through the value codec AND through the printed wire bytes *)
      let via_wire =
        match Json.of_string (Json.to_string (Serve.arrival_to_json a)) with
        | Ok j -> j
        | Error m -> Alcotest.failf "wire json: %s" m
      in
      match Serve.arrival_of_json via_wire with
      | None -> Alcotest.fail "arrival did not decode"
      | Some b ->
        check_bits "time" b.Sta.time a.Sta.time;
        check_bits "slew" b.Sta.slew a.Sta.slew;
        if a.Sta.edge <> b.Sta.edge then Alcotest.fail "edge flip")
    nasty;
  let report =
    {
      Sta.arrivals = [ ("n1", List.hd nasty); ("y", List.nth nasty 2) ];
      critical_po = Some ("y", List.nth nasty 1);
      predecessors = [ ("y", "n1"); ("n1", "a") ];
    }
  in
  let round =
    match
      Result.bind
        (Json.of_string (Json.to_string (Serve.report_to_json report)))
        Serve.report_of_json
    with
    | Ok r -> r
    | Error m -> Alcotest.failf "report roundtrip: %s" m
  in
  check_report_identical "report roundtrip" round report

let test_e2e_bit_identity () =
  with_server (fun addr ->
      with_conn addr (fun fd ->
          load_design fd;
          let got = session_report fd in
          check_report_identical "serve vs offline" got
            (Lazy.force offline_report);
          ignore (rpc_ok fd (Json.Obj [ ("op", str "bye") ]))))

let test_concurrent_sessions () =
  with_server (fun addr ->
      with_conn addr load_design;
      let n = 4 in
      let results = Array.make n None in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                with_conn addr (fun fd ->
                    results.(i) <- Some (session_report fd)))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "session %d produced no report" i
          | Some r ->
            check_report_identical
              (Printf.sprintf "session %d vs offline" i)
              r
              (Lazy.force offline_report))
        results)

let test_typed_errors () =
  with_server (fun addr ->
      with_conn addr (fun fd ->
          (* bad JSON keeps the session alive: framing is still intact *)
          Frame.write fd "this is not json";
          (match Frame.read fd with
           | Ok s ->
             let j = Result.get_ok (Json.of_string s) in
             Alcotest.(check (option string)) "bad_json" (Some "bad_json")
               (Serve.error_code j)
           | Error e -> Alcotest.failf "no reply: %s" (Frame.read_error_to_string e));
          ignore (rpc_ok fd (Json.Obj [ ("op", str "ping") ]));
          expect_code fd (Json.Obj [ ("x", num 1.) ]) "bad_request";
          expect_code fd (Json.Obj [ ("op", str "frobnicate") ]) "unknown_op";
          expect_code fd
            (Json.Obj [ ("op", str "attach"); ("design", str "nope") ])
            "unknown_design";
          expect_code fd (Json.Obj [ ("op", str "report") ]) "not_attached";
          expect_code fd eco_req "not_attached";
          expect_code fd
            (Json.Obj
               [ ("op", str "load"); ("path", str "/nonexistent/file.ntl") ])
            "load_error";
          load_design fd;
          ignore (rpc_ok fd attach_req);
          (* analysis-layer exceptions surface as typed codes *)
          expect_code fd
            (Json.Obj
               [
                 ("op", str "eco");
                 ( "ecos",
                   Json.List
                     [
                       Json.Obj
                         [
                           ("kind", str "set_pi");
                           ("net", str "no_such_net");
                           ("arrival", Serve.arrival_to_json eco_arrival);
                         ];
                     ] );
               ])
            "unknown_target";
          (* an unknown po is an empty answer, not an error... *)
          let j =
            rpc_ok fd (Json.Obj [ ("op", str "paths"); ("po", str "not_a_po") ])
          in
          (match Option.bind (Json.member "paths" j) Json.to_list with
           | Some [] -> ()
           | _ -> Alcotest.fail "unknown po should yield zero paths");
          (* ...but a shapeless request is typed bad_request *)
          expect_code fd (Json.Obj [ ("op", str "paths") ]) "bad_request";
          expect_code fd
            (Json.Obj [ ("op", str "slacks"); ("required", str "soon") ])
            "bad_request"))

let test_adversarial_frames () =
  with_server (fun addr ->
      (* oversized length claim: typed bad_frame answer, then the
         stream is dropped (it cannot resynchronize) *)
      with_conn addr (fun fd ->
          let header = Bytes.of_string "\x7f\xff\xff\xff" in
          ignore (Unix.write fd header 0 4 : int);
          (match Frame.read fd with
           | Ok s ->
             let j = Result.get_ok (Json.of_string s) in
             Alcotest.(check (option string)) "bad_frame" (Some "bad_frame")
               (Serve.error_code j)
           | Error e ->
             Alcotest.failf "no bad_frame reply: %s"
               (Frame.read_error_to_string e));
          match Frame.read fd with
          | Error Frame.Closed -> ()
          | Ok _ -> Alcotest.fail "stream survived an oversized claim"
          | Error _ -> () (* reset also acceptable: the server hung up *));
      (* truncated header: client vanishes two bytes into a frame *)
      with_conn addr (fun fd -> ignore (Unix.write fd (Bytes.of_string "\x00\x01") 0 2 : int));
      (* disconnect mid-session, with state attached *)
      with_conn addr (fun fd ->
          load_design fd;
          ignore (rpc_ok fd attach_req));
      (* after all that abuse the server still answers *)
      with_conn addr (fun fd ->
          ignore (rpc_ok fd (Json.Obj [ ("op", str "ping") ]))))

let test_metrics_endpoint () =
  with_server (fun addr ->
      with_conn addr (fun fd ->
          ignore (rpc_ok fd (Json.Obj [ ("op", str "ping") ]));
          let j =
            rpc_ok fd
              (Json.Obj [ ("op", str "metrics"); ("format", str "json") ])
          in
          (match Json.member "metrics" j with
           | Some (Json.Obj _) -> ()
           | _ -> Alcotest.fail "metrics payload is not an object");
          let t =
            rpc_ok fd
              (Json.Obj [ ("op", str "metrics"); ("format", str "text") ])
          in
          let text =
            Option.value
              (Option.bind (Json.member "metrics" t) Json.to_string_value)
              ~default:""
          in
          if not (String.length text > 0) then
            Alcotest.fail "empty text metrics";
          expect_code fd
            (Json.Obj [ ("op", str "metrics"); ("format", str "xml") ])
            "bad_request"))

let test_protocol_shutdown () =
  let srv = Serve.start (`Tcp ("127.0.0.1", 0)) in
  let port = Option.get (Serve.port srv) in
  let addr = `Tcp ("127.0.0.1", port) in
  with_conn addr (fun fd ->
      let j = rpc_ok fd (Json.Obj [ ("op", str "shutdown") ]) in
      ignore (j : Json.t));
  Serve.wait srv;
  (* fully stopped: new connections are refused *)
  match Serve.connect addr with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (* a race can let connect through before the OS reaps the socket;
       any use must then fail *)
    (try Unix.close fd with Unix.Unix_error _ -> ())

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "codec roundtrip is bit-identical" `Quick
            test_codec_roundtrip;
          Alcotest.test_case "e2e report matches offline engine" `Quick
            test_e2e_bit_identity;
          Alcotest.test_case "concurrent sessions agree" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "typed per-session errors" `Quick
            test_typed_errors;
          Alcotest.test_case "adversarial frames never kill the server"
            `Quick test_adversarial_frames;
          Alcotest.test_case "metrics endpoint" `Quick test_metrics_endpoint;
          Alcotest.test_case "protocol shutdown" `Quick
            test_protocol_shutdown;
        ] );
    ]
