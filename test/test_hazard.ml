(* Static hazard analysis: §6 classification, window propagation and
   killing, randomized soundness against the concrete STA, the
   inertial-rule oracle, the quiet-cell prune mask and the PX4xx / CLI
   surface. *)

module Measure = Proxim_measure.Measure
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Models = Proxim_macromodel.Models
module Inertial = Proxim_core.Inertial
module Prng = Proxim_util.Prng
module Pool = Proxim_util.Pool
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Prune = Proxim_sta.Prune
module Diagnostic = Proxim_lint.Diagnostic
module Interval = Proxim_verify.Interval
module Verify = Proxim_verify.Verify
module Hazard = Proxim_hazard.Hazard

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let nand3 = Gate.nand tech ~fan_in:3
let nor2 = Gate.nor tech ~fan_in:2
let inv = Gate.inverter tech

let synthetic_models =
  let tbl = Hashtbl.create 8 in
  fun (cell : Design.cell) ->
    let key = cell.Design.gate.Gate.name in
    match Hashtbl.find_opt tbl key with
    | Some m -> m
    | None ->
      let m = Models.synthetic cell.Design.gate in
      Hashtbl.add tbl key m;
      m

let thresholds = { Vtc.vil = 1.25; vih = 3.75; vdd = 5.0 }

(* measured threshold sets for the golden-simulator (inertial) rule *)
let nand2_thresholds = lazy (Vtc.thresholds ~points:201 nand2)
let nor2_thresholds = lazy (Vtc.thresholds ~points:201 nor2)

let ev ?(w = 0.) ?(tw = 0.) edge net time slew =
  Verify.of_sta_event ~time_window:w ~tau_window:tw
    (net, { Sta.time; slew; edge })

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* the examples/hazard_demo.ntl topology *)
let demo_design () =
  Design.create
    ~cells:
      [
        { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
          output_net = "n1" };
        { Design.name = "u2"; gate = nand2; input_nets = [| "n1"; "d" |];
          output_net = "y" };
        { Design.name = "u3"; gate = nand2; input_nets = [| "c"; "e" |];
          output_net = "z" };
      ]
    ~primary_inputs:[ "a"; "b"; "c"; "e"; "d" ]
    ~primary_outputs:[ "y"; "z" ]

let demo_events () =
  [
    ev Measure.Fall "a" 500e-12 400e-12;
    ev Measure.Rise "b" 0. 300e-12;
    ev Measure.Fall "c" 100e-12 400e-12;
    ev Measure.Rise "e" 0. 300e-12;
  ]

let demo () =
  Hazard.analyze ~models:synthetic_models ~thresholds (demo_design ())
    ~pi:(demo_events ())

let report h name =
  match Hazard.cell_report h ~cell:name with
  | Some r -> r
  | None -> Alcotest.fail (name ^ " has no cell report")

(* ------------------------------------------------------------------ *)
(* Classification on the demo design                                   *)

let test_demo_classification () =
  let h = demo () in
  let u1 = report h "u1" and u2 = report h "u2" and u3 = report h "u3" in
  Alcotest.(check string) "u1 may-glitch"
    (Hazard.verdict_name Hazard.May_glitch)
    (Hazard.verdict_name u1.Hazard.hc_verdict);
  Alcotest.(check string) "u2 may-glitch (pulse through n1)"
    (Hazard.verdict_name Hazard.May_glitch)
    (Hazard.verdict_name u2.Hazard.hc_verdict);
  Alcotest.(check string) "u3 filtered"
    (Hazard.verdict_name Hazard.Filtered)
    (Hazard.verdict_name u3.Hazard.hc_verdict);
  (* the governing orientation of a rest-high nand2 is rise-starts *)
  (match u1.Hazard.hc_pairs with
  | [ p ] ->
    Alcotest.(check bool) "rise starts" true
      (p.Hazard.hp_starter_edge = Measure.Rise);
    Alcotest.(check bool) "separation is 500 ps" true
      (feq (Interval.lo p.Hazard.hp_sep) 500e-12
      && Interval.degenerate p.Hazard.hp_sep);
    Alcotest.(check bool) "not filtered" false p.Hazard.hp_filtered
  | _ -> Alcotest.fail "u1 should have exactly one pair");
  (* u3's near miss sits inside the default 25 ps band *)
  (match u3.Hazard.hc_pairs with
  | [ p ] ->
    Alcotest.(check bool) "filtered" true p.Hazard.hp_filtered;
    Alcotest.(check bool) "margin in the PX403 band" true
      (p.Hazard.hp_margin > 0. && p.Hazard.hp_margin <= 25e-12)
  | _ -> Alcotest.fail "u3 should have exactly one pair");
  (* observability: u1's glitch reaches y through u2 *)
  Alcotest.(check (list string)) "u1 reaches y" [ "y" ] u1.Hazard.hc_reaches;
  Alcotest.(check bool) "u1 observable" true u1.Hazard.hc_observable;
  Alcotest.(check bool) "u3 not observable" false u3.Hazard.hc_observable;
  let s = Hazard.summary h in
  Alcotest.(check int) "classified" 3 s.Hazard.classified;
  Alcotest.(check int) "may-glitch" 2 s.Hazard.may_glitch;
  Alcotest.(check int) "filtered" 1 s.Hazard.filtered;
  Alcotest.(check int) "observable" 2 s.Hazard.observable;
  Alcotest.(check (list string)) "d unconstrained" [ "d" ]
    (Hazard.unconstrained_pis h)

let codes_of diags =
  List.map (fun d -> Diagnostic.code_name d.Diagnostic.code) diags

let test_demo_diagnostics () =
  let diags = Hazard.check ~file:"demo.ntl" (demo ()) in
  let codes = codes_of diags in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " present") true (List.mem c codes))
    [ "PX401"; "PX402"; "PX403"; "PX404" ];
  (* PX403 is informational, the rest warn *)
  List.iter
    (fun d ->
      let expect =
        if d.Diagnostic.code = Diagnostic.PX403 then Diagnostic.Info
        else Diagnostic.Warning
      in
      Alcotest.(check bool)
        (Diagnostic.code_name d.Diagnostic.code ^ " severity")
        true
        (d.Diagnostic.severity = expect))
    diags;
  Alcotest.(check int) "warnings fail the run" 1
    (Diagnostic.exit_code ~fail_on:Diagnostic.Warning diags);
  (* the code filter applies before the exit computation: keeping only
     the info-severity PX403 turns the same run green *)
  let only_403 = Diagnostic.filter_codes [ Diagnostic.PX403 ] diags in
  Alcotest.(check int) "filtered run passes" 0
    (Diagnostic.exit_code ~fail_on:Diagnostic.Warning only_403)

(* ------------------------------------------------------------------ *)
(* §6 filtering kills the windows of a provably static output          *)

let test_filtered_window_kill () =
  let design =
    Design.create
      ~cells:
        [
          { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
            output_net = "n1" };
          { Design.name = "u2"; gate = inv; input_nets = [| "n1" |];
            output_net = "y" };
        ]
      ~primary_inputs:[ "a"; "b" ] ~primary_outputs:[ "y" ]
  in
  (* a falls only 100 ps after b rises: inside the minimum separation,
     so the excursion is filtered and the output is statically 1 *)
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev Measure.Fall "a" 100e-12 400e-12; ev Measure.Rise "b" 0. 300e-12 ]
  in
  Alcotest.(check string) "u1 filtered"
    (Hazard.verdict_name Hazard.Filtered)
    (Hazard.verdict_name (report h "u1").Hazard.hc_verdict);
  (match Hazard.net_state h ~net:"n1" with
  | None -> Alcotest.fail "n1 has no state"
  | Some ns ->
    Alcotest.(check bool) "n1 windows killed" true
      (ns.Hazard.ns_rise = None && ns.Hazard.ns_fall = None);
    Alcotest.(check bool) "n1 statically 1" true
      (ns.Hazard.ns_init = Hazard.L1 && ns.Hazard.ns_final = Hazard.L1));
  (* nothing downstream of a proven-quiet net classifies *)
  Alcotest.(check bool) "u2 windowless" true
    (Hazard.cell_report h ~cell:"u2" = None);
  let s = Hazard.summary h in
  Alcotest.(check int) "one cell classified" 1 s.Hazard.classified

let test_same_edge_never () =
  (* all-fall stimulus: monotone gates alternate edges level by level,
     no opposing pair can ever form *)
  let design =
    Design.create
      ~cells:
        [
          { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
            output_net = "n1" };
          { Design.name = "u2"; gate = nand2; input_nets = [| "a"; "c" |];
            output_net = "n2" };
          { Design.name = "u3"; gate = nand2; input_nets = [| "n1"; "n2" |];
            output_net = "y" };
        ]
      ~primary_inputs:[ "a"; "b"; "c" ] ~primary_outputs:[ "y" ]
  in
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:
        [
          ev Measure.Fall "a" 0. 400e-12;
          ev Measure.Fall "b" 150e-12 300e-12;
          ev Measure.Fall "c" 80e-12 350e-12;
        ]
  in
  let s = Hazard.summary h in
  Alcotest.(check int) "all classified" 3 s.Hazard.classified;
  Alcotest.(check int) "all never" 3 s.Hazard.never;
  Alcotest.(check (list string)) "no diagnostics" []
    (codes_of (Hazard.check h))

(* ------------------------------------------------------------------ *)
(* Soundness: concrete proximity STA stays inside the hazard windows   *)

let small_design () =
  Design.create
    ~cells:
      [
        { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
          output_net = "n1" };
        { Design.name = "u2"; gate = inv; input_nets = [| "c" |];
          output_net = "n2" };
        { Design.name = "u3"; gate = nor2; input_nets = [| "n1"; "n2" |];
          output_net = "y" };
      ]
    ~primary_inputs:[ "a"; "b"; "c" ] ~primary_outputs:[ "y" ]

let test_soundness_random () =
  let design = small_design () in
  let rng = Prng.create 0x4A22EDL in
  let pool = Pool.create ~domains:1 in
  List.iter
    (fun mode ->
      for _ = 1 to 15 do
        let base net =
          ( net,
            {
              Sta.time = Prng.float rng ~lo:0. ~hi:300e-12;
              slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
              edge = Measure.Fall;
            } )
        in
        let pi = [ base "a"; base "b"; base "c" ] in
        let tw = 30e-12 and sw = 15e-12 in
        let h =
          Hazard.analyze ~mode ~models:synthetic_models ~thresholds design
            ~pi:
              (List.map
                 (Verify.of_sta_event ~time_window:tw ~tau_window:sw)
                 pi)
        in
        for _ = 1 to 7 do
          let concrete =
            List.map
              (fun (net, (a : Sta.arrival)) ->
                ( net,
                  {
                    a with
                    Sta.time =
                      Prng.float rng ~lo:(a.Sta.time -. tw)
                        ~hi:(a.Sta.time +. tw);
                    slew =
                      Prng.float rng ~lo:(a.Sta.slew -. sw)
                        ~hi:(a.Sta.slew +. sw);
                  } ))
              pi
          in
          let report =
            Sta.analyze ~mode ~pool ~models:synthetic_models ~thresholds
              design ~pi:concrete
          in
          List.iter
            (fun (net, (a : Sta.arrival)) ->
              match Hazard.net_state h ~net with
              | None -> Alcotest.fail (net ^ " missing from hazard state")
              | Some ns ->
                let win =
                  match a.Sta.edge with
                  | Measure.Rise -> ns.Hazard.ns_rise
                  | Measure.Fall -> ns.Hazard.ns_fall
                in
                (match win with
                | None ->
                  Alcotest.fail
                    (net ^ " switches concretely but carries no window")
                | Some w ->
                  if
                    not
                      (Interval.contains w.Hazard.w_time a.Sta.time
                      && Interval.contains w.Hazard.w_slew a.Sta.slew)
                  then
                    Alcotest.fail
                      (Printf.sprintf
                         "%s escapes its window: time %g not in %s or slew \
                          %g not in %s"
                         net a.Sta.time
                         (Interval.to_string w.Hazard.w_time)
                         a.Sta.slew
                         (Interval.to_string w.Hazard.w_slew))))
            report.Sta.arrivals
        done
      done)
    [ Sta.Proximity; Sta.Classic ];
  Pool.shutdown pool;
  (* 15 configurations x 7 draws x 2 modes = 210 concrete assignments *)
  Alcotest.(check pass) "concrete runs inside hazard windows" () ()

(* Never cells really are hazard-free: across random mixed-edge
   stimuli, whenever the analysis says Never, the concrete events at
   that cell contain no opposing-edge pair at all *)
let test_never_is_never_random () =
  let design = demo_design () in
  let rng = Prng.create 0x5EEDL in
  for _ = 1 to 100 do
    let edge () = if Prng.int rng ~lo:0 ~hi:1 = 0 then Measure.Fall else Measure.Rise in
    let pi =
      List.filter_map
        (fun net ->
          if Prng.int rng ~lo:0 ~hi:3 = 0 then None
          else
            Some
              ( net,
                {
                  Sta.time = Prng.float rng ~lo:0. ~hi:600e-12;
                  slew = Prng.float rng ~lo:150e-12 ~hi:500e-12;
                  edge = edge ();
                } ))
        [ "a"; "b"; "c"; "e"; "d" ]
    in
    let h =
      Hazard.analyze ~models:synthetic_models ~thresholds design
        ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
    in
    List.iter
      (fun (r : Hazard.cell_report) ->
        if r.Hazard.hc_verdict = Hazard.Never then
          Alcotest.(check bool)
            (r.Hazard.hc_name ^ " never-verdict has no opposing pair")
            true
            (r.Hazard.hc_pairs = []))
      (Hazard.cells h)
  done;
  Alcotest.(check pass) "100 random stimuli" () ()

(* ------------------------------------------------------------------ *)
(* The inertial (golden-simulator) rule                                *)

let test_inertial_rule_filtered_concrete () =
  (* one real nand2: the analysis classifies the pair filtered under the
     bisected inertial rule, and ~100 concrete separations drawn from
     the same windows indeed never complete a transition *)
  let th = Lazy.force nand2_thresholds in
  let design =
    Design.create
      ~cells:
        [
          { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
            output_net = "y" };
        ]
      ~primary_inputs:[ "a"; "b" ] ~primary_outputs:[ "y" ]
  in
  let tau_fall = 400e-12 and tau_rise = 300e-12 in
  let rule = Hazard.inertial_rule ~thresholds:th () in
  let models (cell : Design.cell) = Models.synthetic cell.Design.gate in
  let w = 50e-12 in
  let h =
    Hazard.analyze ~rule ~models ~thresholds:th design
      ~pi:
        [
          ev ~w Measure.Fall "a" 50e-12 tau_fall;
          ev Measure.Rise "b" 0. tau_rise;
        ]
  in
  let u1 = report h "u1" in
  Alcotest.(check string) "filtered under the inertial rule"
    (Hazard.verdict_name Hazard.Filtered)
    (Hazard.verdict_name u1.Hazard.hc_verdict);
  let rng = Prng.create 0x6A7EL in
  for _ = 1 to 100 do
    (* oriented separation sigma = t_fall - t_rise in [0, 100 ps];
       Inertial's sep argument is t_rise - t_fall = -sigma *)
    let sigma = Prng.float rng ~lo:0. ~hi:100e-12 in
    let g =
      Inertial.glitch nand2 th ~fall_pin:0 ~rise_pin:1 ~tau_fall ~tau_rise
        ~sep:(-.sigma)
    in
    if g.Inertial.full_swing then
      Alcotest.fail
        (Printf.sprintf
           "glitch completes at sigma = %.1f ps inside a Filtered window"
           (sigma *. 1e12))
  done;
  Alcotest.(check pass) "100 concrete separations stay filtered" () ()

let test_inertial_rule_conservative () =
  (* the tau-box rule output must contain the directly bisected minimum
     separation at an interior tau point *)
  let th = Lazy.force nand2_thresholds in
  let cell =
    { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
      output_net = "y" }
  in
  let m = Models.synthetic nand2 in
  let rule = Hazard.inertial_rule ~thresholds:th () in
  let lo_r, hi_r = (280e-12, 320e-12) and lo_f = 380e-12 and hi_f = 420e-12 in
  let bounds =
    rule cell m ~starter_pin:1 ~starter_edge:Measure.Rise ~ender_pin:0
      ~tau_starter:(lo_r, hi_r) ~tau_ender:(lo_f, hi_f)
  in
  let mid =
    -.Inertial.minimum_valid_separation nand2 th ~fall_pin:0 ~rise_pin:1
        ~tau_fall:400e-12 ~tau_rise:300e-12
  in
  let lo, hi = bounds in
  Alcotest.(check bool)
    (Printf.sprintf "interior sigma_min %.1f ps inside [%.1f, %.1f] ps"
       (mid *. 1e12) (lo *. 1e12) (hi *. 1e12))
    true
    (lo <= mid && mid <= hi);
  (* the opposite orientation of a NAND never completes *)
  let never =
    rule cell m ~starter_pin:0 ~starter_edge:Measure.Fall ~ender_pin:1
      ~tau_starter:(400e-12, 400e-12) ~tau_ender:(300e-12, 300e-12)
  in
  Alcotest.(check bool) "fall-starts orientation is infinite" true
    (fst never = infinity);
  (* nor2 mirrors: fall starts the excursion *)
  let th_nor = Lazy.force nor2_thresholds in
  let cell_nor = { cell with Design.gate = nor2 } in
  let rule_nor = Hazard.inertial_rule ~thresholds:th_nor () in
  let nor_bounds =
    rule_nor cell_nor (Models.synthetic nor2) ~starter_pin:0
      ~starter_edge:Measure.Fall ~ender_pin:1
      ~tau_starter:(400e-12, 400e-12) ~tau_ender:(300e-12, 300e-12)
  in
  Alcotest.(check bool) "nor2 fall-starts is finite" true
    (Float.is_finite (fst nor_bounds) && Float.is_finite (snd nor_bounds))

(* ------------------------------------------------------------------ *)
(* quiet_mask: pruned STA is bit-identical                             *)

let aeq (a : Sta.arrival) (b : Sta.arrival) =
  feq a.Sta.time b.Sta.time && feq a.Sta.slew b.Sta.slew
  && a.Sta.edge = b.Sta.edge

let reports_eq (r1 : Sta.report) (r2 : Sta.report) =
  List.length r1.Sta.arrivals = List.length r2.Sta.arrivals
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && aeq a1 a2)
       r1.Sta.arrivals r2.Sta.arrivals
  && r1.Sta.predecessors = r2.Sta.predecessors

let test_quiet_mask_bit_identical () =
  let design = small_design () in
  (* only a and c switch: u1 has one window-bearing input, u3 two but
     never-dominant far apart is not needed -- u1/u2 are quiet *)
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall });
      ("c", { Sta.time = 50e-12; slew = 300e-12; edge = Measure.Fall });
    ]
  in
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
  in
  let mask = Hazard.quiet_mask h in
  Alcotest.(check bool) "u1 quiet (single window input)" true
    (mask
       { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
         output_net = "n1" });
  Alcotest.(check bool) "u2 quiet (single input)" true
    (mask
       { Design.name = "u2"; gate = inv; input_nets = [| "c" |];
         output_net = "n2" });
  let pool = Pool.create ~domains:1 in
  let run ?prune () =
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
        ~thresholds design ~pi
    in
    ignore (Sta.reanalyze ~pool ir);
    (Sta.report ir, Sta.pruned_evaluations ir)
  in
  let r_full, _ = run () in
  let r_pruned, n_pruned = run ~prune:(Prune.make ~quiet:mask ()) () in
  Pool.shutdown pool;
  Alcotest.(check bool) "fast path taken" true (n_pruned > 0);
  Alcotest.(check bool) "bit-identical" true (reports_eq r_full r_pruned)

(* regression: the never-dominant collapse is an *earliest-wins* lemma.
   A gating group (NOR-falling here) folds to the latest input, so a far
   separation must NOT mark the cell quiet — doing so made the pruned
   fast path (earliest) diverge from the full fold (latest).  The
   assisting mirror (NAND-falling) at the same separation is quiet. *)
let test_quiet_mask_gating_not_quiet () =
  let mk gate =
    Design.create
      ~cells:
        [
          { Design.name = "u1"; gate; input_nets = [| "a"; "b" |];
            output_net = "y" };
        ]
      ~primary_inputs:[ "a"; "b" ] ~primary_outputs:[ "y" ]
  in
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall });
      ("b", { Sta.time = 2e-9; slew = 300e-12; edge = Measure.Fall });
    ]
  in
  let events =
    List.map (Verify.of_sta_event ~time_window:20e-12 ~tau_window:10e-12) pi
  in
  let mask_of gate =
    let h =
      Hazard.analyze ~models:synthetic_models ~thresholds (mk gate) ~pi:events
    in
    Hazard.quiet_mask h
      { Design.name = "u1"; gate; input_nets = [| "a"; "b" |];
        output_net = "y" }
  in
  Alcotest.(check bool) "gating nor2 group is not quiet" false (mask_of nor2);
  Alcotest.(check bool) "assisting nand2 group is quiet" true (mask_of nand2);
  (* and the pruned analysis of the gating design stays bit-identical *)
  let design = mk nor2 in
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design ~pi:events
  in
  let pool = Pool.create ~domains:1 in
  let run ?prune () =
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
        ~thresholds design ~pi
    in
    ignore (Sta.reanalyze ~pool ir);
    Sta.report ir
  in
  let r_full = run () in
  let r_pruned = run ~prune:(Prune.make ~quiet:(Hazard.quiet_mask h) ()) () in
  Pool.shutdown pool;
  Alcotest.(check bool) "gating design bit-identical" true
    (reports_eq r_full r_pruned)

let test_quiet_mask_bit_identical_random () =
  let rng = Prng.create 0xC0FFEEL in
  let pool = Pool.create ~domains:1 in
  let gate_pool = [| nand2; nor2; nand3; inv |] in
  for _ = 1 to 10 do
    let width = 6 in
    let pis = List.init width (Printf.sprintf "pi%d") in
    let prev = ref (Array.of_list pis) in
    let cells = ref [] in
    for layer = 0 to 2 do
      let layer_cells =
        Array.init width (fun j ->
            let gate =
              gate_pool.(Prng.int rng ~lo:0 ~hi:(Array.length gate_pool - 1))
            in
            let rec pick chosen n =
              if n = 0 then chosen
              else
                let i = Prng.int rng ~lo:0 ~hi:(width - 1) in
                if List.mem i chosen then pick chosen n
                else pick (i :: chosen) (n - 1)
            in
            let ins = pick [] gate.Gate.fan_in in
            {
              Design.name = Printf.sprintf "u%d_%d" layer j;
              gate;
              input_nets =
                Array.of_list (List.map (fun i -> (!prev).(i)) ins);
              output_net = Printf.sprintf "n%d_%d" layer j;
            })
      in
      cells := Array.to_list layer_cells @ !cells;
      prev := Array.map (fun c -> c.Design.output_net) layer_cells
    done;
    let design =
      Design.create ~cells:(List.rev !cells) ~primary_inputs:pis
        ~primary_outputs:(Array.to_list !prev)
    in
    let pi =
      List.filter_map
        (fun net ->
          if Prng.int rng ~lo:0 ~hi:2 = 0 then None
          else
            Some
              ( net,
                {
                  Sta.time = Prng.float rng ~lo:0. ~hi:600e-12;
                  slew = Prng.float rng ~lo:150e-12 ~hi:500e-12;
                  edge = Measure.Fall;
                } ))
        pis
    in
    let h =
      Hazard.analyze ~models:synthetic_models ~thresholds design
        ~pi:(List.map (Verify.of_sta_event ?time_window:None) pi)
    in
    let run ?prune () =
      let ir =
        Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
          ~thresholds design ~pi
      in
      ignore (Sta.reanalyze ~pool ir);
      Sta.report ir
    in
    let r1 = run ()
    and r2 = run ~prune:(Prune.make ~quiet:(Hazard.quiet_mask h) ()) () in
    if not (reports_eq r1 r2) then begin
      let mask = Hazard.quiet_mask h in
      let pruned =
        List.filter_map (fun (c : Design.cell) ->
            if mask c then Some c.Design.name else None)
          (Design.cells design)
      in
      Printf.eprintf "pruned cells: %s\n" (String.concat " " pruned);
      List.iter
        (fun (c : Design.cell) ->
          let l = function
            | Hazard.L0 -> "0"
            | Hazard.L1 -> "1"
            | Hazard.LX -> "X"
          in
          let st =
            match Hazard.net_state h ~net:c.Design.output_net with
            | None -> "nostate"
            | Some ns ->
              Printf.sprintf "%s->%s rise:%b fall:%b" (l ns.Hazard.ns_init)
                (l ns.Hazard.ns_final)
                (ns.Hazard.ns_rise <> None)
                (ns.Hazard.ns_fall <> None)
          in
          let v =
            match Hazard.cell_report h ~cell:c.Design.name with
            | None -> "unclassified"
            | Some r -> Hazard.verdict_name r.Hazard.hc_verdict
          in
          let in_st net =
            match Hazard.net_state h ~net with
            | None -> net ^ ":quiet"
            | Some ns ->
              Printf.sprintf "%s:%s->%s%s%s" net (l ns.Hazard.ns_init)
                (l ns.Hazard.ns_final)
                (if ns.Hazard.ns_rise <> None then "R" else "")
                (if ns.Hazard.ns_fall <> None then "F" else "")
          in
          Printf.eprintf "  CELL %s %s (%s) -> %s: %s [%s]\n" c.Design.name
            c.Design.gate.Proxim_gates.Gate.name
            (String.concat ","
               (List.map in_st (Array.to_list c.Design.input_nets)))
            c.Design.output_net st v)
        (Design.cells design);
      List.iter2
        (fun (n1, (a1 : Sta.arrival)) (n2, (a2 : Sta.arrival)) ->
          if n1 <> n2 || not (aeq a1 a2) then begin
            Printf.eprintf
              "  %s/%s: full time %.17g slew %.17g | pruned time %.17g slew \
               %.17g\n"
              n1 n2 a1.Sta.time a1.Sta.slew a2.Sta.time a2.Sta.slew;
            List.iter
              (fun (c : Design.cell) ->
                if c.Design.output_net = n1 then begin
                  Printf.eprintf "    cell %s gate %s inputs:\n" c.Design.name
                    c.Design.gate.Proxim_gates.Gate.name;
                  Array.iter
                    (fun net ->
                      let win = function
                        | None -> "-"
                        | Some (w : Hazard.awin) ->
                          Printf.sprintf "t=%s tau=%s"
                            (Interval.to_string w.Hazard.w_time)
                            (Interval.to_string w.Hazard.w_slew)
                      in
                      let conc =
                        match List.assoc_opt net r1.Sta.arrivals with
                        | None -> "quiet"
                        | Some (a : Sta.arrival) ->
                          Printf.sprintf "%.17g/%.17g" a.Sta.time a.Sta.slew
                      in
                      match Hazard.net_state h ~net with
                      | None ->
                        Printf.eprintf "      %s: no state, concrete %s\n" net
                          conc
                      | Some ns ->
                        Printf.eprintf
                          "      %s: rise %s fall %s, concrete %s\n" net
                          (win ns.Hazard.ns_rise) (win ns.Hazard.ns_fall) conc)
                    c.Design.input_nets
                end)
              (Design.cells design)
          end)
        r1.Sta.arrivals r2.Sta.arrivals;
      Alcotest.fail "quiet-pruned analysis diverged from the full one"
    end
  done;
  Pool.shutdown pool;
  Alcotest.(check pass) "10 random designs bit-identical" () ()

(* ------------------------------------------------------------------ *)
(* Input validation                                                    *)

let test_analyze_validation () =
  let design = small_design () in
  Alcotest.(check bool) "collapsed mode rejected" true
    (try
       ignore
         (Hazard.analyze
            ~mode:(Sta.Collapsed Proxim_baseline.Collapse.Jun)
            ~models:synthetic_models ~thresholds design ~pi:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "driven net rejected" true
    (try
       ignore
         (Hazard.analyze ~models:synthetic_models ~thresholds design
            ~pi:[ ev Measure.Fall "n1" 0. 300e-12 ]);
       false
     with Invalid_argument _ -> true);
  (* unknown nets are inert, like Sta/Verify *)
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev Measure.Fall "nope" 0. 300e-12 ]
  in
  Alcotest.(check int) "nothing classifies" 0
    (Hazard.summary h).Hazard.classified;
  (* window-net validation is a typed error *)
  Alcotest.check_raises "unknown window net"
    (Verify.Unknown_window_net { net = "nosuch" })
    (fun () -> Verify.validate_window_nets design [ "a"; "nosuch" ]);
  Alcotest.check_raises "driven window net"
    (Verify.Unknown_window_net { net = "n1" })
    (fun () -> Verify.validate_window_nets design [ "n1" ])

(* ------------------------------------------------------------------ *)
(* CLI surface                                                         *)

let cli =
  match
    List.find_opt Sys.file_exists
      [ "../bin/proxim_cli.exe"; "_build/default/bin/proxim_cli.exe" ]
  with
  | Some p -> p
  | None -> "proxim"

(* the hazard_demo topology plus an unused input f, so `proxim lint`
   reliably reports a warning (PX111) for the filter test below *)
let demo_netlist =
  {|design hazard_demo
input a b c e d f
output y z
thresholds 1.263 3.737 5.0
cell u1 nand2 a b -> n1
cell u2 nand2 n1 d -> y
cell u3 nand2 c e -> z
end
|}

let demo_stimulus =
  "--pi a:fall:400:500 --pi b:rise:300:0 --pi c:fall:400:100 --pi \
   e:rise:300:0"

let with_demo_file f =
  let file = Filename.temp_file "proxim_hazard" ".ntl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc demo_netlist);
      f file)

let run fmt =
  Printf.ksprintf
    (fun args -> Sys.command (Printf.sprintf "%s >/dev/null 2>&1" args))
    fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let test_cli_exit_codes () =
  with_demo_file (fun file ->
      let file = Filename.quote file in
      Alcotest.(check int) "warnings exit 1" 1
        (run "%s hazards %s %s" cli file demo_stimulus);
      Alcotest.(check int) "--fail-on error passes" 0
        (run "%s hazards %s %s --fail-on error" cli file demo_stimulus);
      (* --codes filters BEFORE --fail-on: keeping only the info-level
         PX403 turns the failing run green *)
      Alcotest.(check int) "--codes filter applies before exit" 0
        (run "%s hazards %s %s --codes PX403" cli file demo_stimulus);
      Alcotest.(check int) "--codes keeping a warning still fails" 1
        (run "%s hazards %s %s --codes PX401" cli file demo_stimulus);
      (* the same contract on lint (PX111 on the unused input f warns)
         and verify (PX304 on the quiet inputs warns) *)
      Alcotest.(check int) "lint warns" 1 (run "%s lint %s" cli file);
      Alcotest.(check int) "lint --codes filter applies before exit" 0
        (run "%s lint %s --codes PX103" cli file);
      Alcotest.(check int) "verify warns" 1
        (run "%s verify %s --pi a:fall:400:0" cli file);
      Alcotest.(check int) "verify --codes filter applies before exit" 0
        (run "%s verify %s --pi a:fall:400:0 --codes PX302" cli file);
      Alcotest.(check int) "bare --codes prints the table" 0
        (run "%s hazards %s --codes" cli file);
      (* a typo'd --pi-window net is a usage error *)
      Alcotest.(check int) "unknown window net exits 2" 2
        (run "%s hazards %s %s --pi-window nosuch=25" cli file demo_stimulus);
      Alcotest.(check int) "verify shares the window validation" 2
        (run "%s verify %s --pi a:fall:400:0 --pi-window nosuch=25" cli file);
      Alcotest.(check int) "unknown code exits 2" 2
        (run "%s hazards %s %s --codes PXNOPE" cli file demo_stimulus);
      (* sarif output is valid JSON carrying the expected rule ids *)
      let sarif =
        Printf.sprintf "%s hazards %s %s --format sarif --fail-on error" cli
          file demo_stimulus
      in
      let ic = Unix.open_process_in sarif in
      let out = In_channel.input_all ic in
      ignore (Unix.close_process_in ic);
      (match Proxim_lint.Json.of_string out with
      | Error m -> Alcotest.fail ("sarif is not valid JSON: " ^ m)
      | Ok _ -> ());
      List.iter
        (fun frag ->
          Alcotest.(check bool) (frag ^ " in sarif") true (contains out frag))
        [ "PX401"; "PX402"; "PX403"; "PX404"; "2.1.0" ])

let () =
  Alcotest.run "hazard"
    [
      ( "classification",
        [
          Alcotest.test_case "demo verdicts" `Quick test_demo_classification;
          Alcotest.test_case "demo diagnostics" `Quick test_demo_diagnostics;
          Alcotest.test_case "filtered window kill" `Quick
            test_filtered_window_kill;
          Alcotest.test_case "same-edge never" `Quick test_same_edge_never;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "windows contain concrete STA" `Slow
            test_soundness_random;
          Alcotest.test_case "never has no opposing pair" `Quick
            test_never_is_never_random;
        ] );
      ( "inertial rule",
        [
          Alcotest.test_case "filtered pairs stay filtered" `Slow
            test_inertial_rule_filtered_concrete;
          Alcotest.test_case "conservative over tau box" `Slow
            test_inertial_rule_conservative;
        ] );
      ( "quiet mask",
        [
          Alcotest.test_case "bit-identical" `Quick
            test_quiet_mask_bit_identical;
          Alcotest.test_case "gating group not quiet" `Quick
            test_quiet_mask_gating_not_quiet;
          Alcotest.test_case "bit-identical random" `Slow
            test_quiet_mask_bit_identical_random;
        ] );
      ( "validation",
        [ Alcotest.test_case "inputs" `Quick test_analyze_validation ] );
      ( "cli",
        [ Alcotest.test_case "exit codes" `Quick test_cli_exit_codes ] );
    ]
