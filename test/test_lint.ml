(* Tests for the lint subsystem: diagnostics core, netlist passes,
   model-quality passes and the JSON reporter. *)

module Tech = Proxim_gates.Tech
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Store = Proxim_macromodel.Store
module Netlist_text = Proxim_sta.Netlist_text
module Diagnostic = Proxim_lint.Diagnostic
module Json = Proxim_lint.Json
module Netlist_lint = Proxim_lint.Netlist_lint
module Model_lint = Proxim_lint.Model_lint

let tech = Tech.generic_5v
let codes_of diags = List.map (fun d -> d.Diagnostic.code) diags
let has code diags = List.mem code (codes_of diags)

let check_has diags code =
  Alcotest.(check bool)
    (Printf.sprintf "%s reported" (Diagnostic.code_name code))
    true (has code diags)

let check_absent diags code =
  Alcotest.(check bool)
    (Printf.sprintf "%s absent" (Diagnostic.code_name code))
    false (has code diags)

(* --- diagnostics core ------------------------------------------------- *)

let test_code_names () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Diagnostic.code_name c ^ " round-trips")
        true
        (Diagnostic.code_of_name (Diagnostic.code_name c) = Some c);
      Alcotest.(check bool)
        (Diagnostic.code_name c ^ " documented")
        true
        (String.length (Diagnostic.code_doc c) > 0))
    Diagnostic.all_codes;
  Alcotest.(check bool) "unknown name" true
    (Diagnostic.code_of_name "PX999" = None)

let test_exit_codes () =
  let err = Diagnostic.make PX105 "e" in
  let warn = Diagnostic.make PX110 "w" in
  let info = Diagnostic.make ~severity:Diagnostic.Info PX208 "i" in
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "info only" 0 (Diagnostic.exit_code [ info ]);
  Alcotest.(check int) "warning" 1 (Diagnostic.exit_code [ warn; info ]);
  Alcotest.(check int) "error" 2 (Diagnostic.exit_code [ warn; err ]);
  Alcotest.(check int) "warning under fail-on error" 0
    (Diagnostic.exit_code ~fail_on:Diagnostic.Error [ warn ]);
  Alcotest.(check int) "error under fail-on error" 2
    (Diagnostic.exit_code ~fail_on:Diagnostic.Error [ err ])

(* --- netlist lints ----------------------------------------------------- *)

let lint ?options text = Netlist_lint.check_text ?options tech text

let test_clean_netlist () =
  let diags =
    lint
      {|design carry_tree
input a b c
output carry
thresholds 1.263 3.737 5.0
cell u1 nand2 a b -> n1
cell u2 nand2 a c -> n2
cell u3 nand2 b c -> n3
cell u5 nand3 n1 n2 n3 -> carry
end|}
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length diags)

let test_netlist_errors () =
  let diags =
    lint
      {|design broken
input a b
output y z
frobnicate
cell u1 nand2 a b -> n1
cell u1 inv a -> n1
cell u2 nand2 a -> n2
cell u3 inv n1 -> a
cell u4 inv ghost -> n3
cell u5 nand2 n5 n6 -> y
cell u6 inv n6 -> n5
cell u7 inv n5 -> n6
end|}
  in
  List.iter (check_has diags)
    [
      Diagnostic.PX100 (* frobnicate *);
      Diagnostic.PX101 (* duplicate u1 *);
      Diagnostic.PX102 (* u2 arity *);
      Diagnostic.PX103 (* n1 driven twice *);
      Diagnostic.PX104 (* u3 drives primary input a *);
      Diagnostic.PX105 (* ghost undriven *);
      Diagnostic.PX106 (* u6 <-> u7 cycle *);
      Diagnostic.PX107 (* z undriven *);
    ];
  let cycle =
    List.find (fun d -> d.Diagnostic.code = Diagnostic.PX106) diags
  in
  Alcotest.(check bool) "cycle path named" true
    (String.length cycle.Diagnostic.message > 0
    && String.index_opt cycle.Diagnostic.message '>' <> None)

let test_netlist_warnings () =
  let diags =
    lint
      ~options:{ Netlist_lint.fanout_limit = 1 }
      {|design warnings
input a b
output y
cell u1 inv a -> n1
cell u2 inv a -> y
cell u3 inv zero -> n3
cell u4 inv n3 -> y2
end|}
  in
  List.iter (check_has diags)
    [
      Diagnostic.PX110 (* n1 unused *);
      Diagnostic.PX111 (* b unread *);
      Diagnostic.PX112 (* a fans out to 2 > 1 *);
    ]

let test_netlist_unreachable_output () =
  let diags =
    lint
      {|design unreachable
input a
output y
cell u1 inv a -> n1
cell u2 inv ghost -> y
end|}
  in
  check_has diags Diagnostic.PX113;
  check_has diags Diagnostic.PX105;
  check_has diags Diagnostic.PX110

let test_netlist_missing_design () =
  let diags = lint "input a\noutput y\ncell u1 inv a -> y\nend" in
  check_has diags Diagnostic.PX108

let test_parse_collects_all_errors () =
  (* satellite: the parser keeps scanning after a bad line *)
  let raw =
    Netlist_text.parse_raw tech
      "design d\nfrobnicate\ninput a\nalso bad\ncell u1 inv a -> y\nend"
  in
  Alcotest.(check int) "both bad lines collected" 2
    (List.length raw.Netlist_text.raw_errors);
  Alcotest.(check (list int)) "line numbers" [ 2; 4 ]
    (List.map
       (fun (e : Netlist_text.raw_error) -> e.err_line)
       raw.Netlist_text.raw_errors);
  Alcotest.(check int) "good cell still parsed" 1
    (List.length raw.Netlist_text.raw_cells)

(* --- threshold lints (paper §2) ---------------------------------------- *)

let mk_th vil vih vdd = { Vtc.vil; vih; vdd }

let mk_curve ?(subset = [ 0 ]) vil vih vm =
  { Vtc.subset; vin = [||]; vout = [||]; vil; vih; vm }

let test_threshold_ordering () =
  let diags = Model_lint.check_thresholds ~name:"t" (mk_th 3.1 1.9 5.0) in
  check_has diags Diagnostic.PX003

let test_threshold_static_guard () =
  (* ordered, but Vdd/2 falls outside the band: the static PX001 guard *)
  let diags = Model_lint.check_thresholds ~name:"t" (mk_th 3.0 4.0 5.0) in
  check_has diags Diagnostic.PX001;
  let ok = Model_lint.check_thresholds ~name:"t" (mk_th 1.3 3.7 5.0) in
  Alcotest.(check int) "sane set clean" 0 (List.length ok)

let test_threshold_family_rule () =
  let curves = [ mk_curve 1.0 3.9 2.4; mk_curve ~subset:[ 1 ] 1.4 4.2 2.7 ] in
  (* narrower than the family extremes on both sides: PX002 twice *)
  let diags =
    Model_lint.check_thresholds ~curves ~name:"t" (mk_th 1.2 4.0 5.0)
  in
  Alcotest.(check int) "both sides flagged" 2
    (List.length (List.filter (fun c -> c = Diagnostic.PX002) (codes_of diags)));
  (* the proper min-Vil / max-Vih choice is clean *)
  let ok = Model_lint.check_thresholds ~curves ~name:"t" (mk_th 1.0 4.2 5.0) in
  Alcotest.(check int) "family rule satisfied" 0 (List.length ok)

let test_threshold_per_curve_guard () =
  (* a curve whose Vm escapes the chosen band: the exact PX001 check *)
  let curves = [ mk_curve 1.0 4.0 2.5; mk_curve ~subset:[ 1 ] 1.0 4.0 4.5 ] in
  let diags =
    Model_lint.check_thresholds ~curves ~name:"t" (mk_th 1.0 4.0 5.0)
  in
  check_has diags Diagnostic.PX001

let test_threshold_degenerate_curve () =
  let curves = [ mk_curve 2.5 2.5 2.5 ] in
  let diags =
    Model_lint.check_thresholds ~curves ~name:"t" (mk_th 1.0 4.0 5.0)
  in
  check_has diags Diagnostic.PX004

let test_seeded_negative_delay () =
  (* §2 end to end: measure an inverter against a threshold set whose
     band sits above the true switching threshold.  The measured delay
     goes negative, and the lint flags the set before any measurement. *)
  let inv = Gate.inverter tech in
  let c = Vtc.curve ~points:201 inv ~subset:[ 0 ] in
  let bad = mk_th (c.Vtc.vm +. 0.8) (c.Vtc.vm +. 1.2) tech.Tech.vdd in
  let obs = Measure.single_input inv bad ~pin:0 ~edge:Measure.Rise ~tau:2e-9 in
  Alcotest.(check bool) "measured delay is negative" true
    (obs.Measure.delay < 0.);
  let diags = Model_lint.check_thresholds ~curves:[ c ] ~name:"inv" bad in
  check_has diags Diagnostic.PX001

(* --- characterized-table lints ----------------------------------------- *)

let single_text ?(pin = 0) ?(edge = "fall") rows =
  let b = Buffer.create 256 in
  Buffer.add_string b "single-v1\n";
  Buffer.add_string b (Printf.sprintf "pin %d\n" pin);
  Buffer.add_string b (Printf.sprintf "edge %s\n" edge);
  Buffer.add_string b "k 1\nvdd 1\nc_build 1e-10\nc_parasitic 0\n";
  Buffer.add_string b (Printf.sprintf "points %d\n" (List.length rows));
  List.iter
    (fun (x, d, tr) ->
      Buffer.add_string b (Printf.sprintf "%g %g %g\n" x d tr))
    rows;
  Buffer.contents b

(* a well-formed single with constant normalized delay [d] *)
let flat_single ?pin ?edge d =
  Single.load
    (single_text ?pin ?edge
       [ (-3., d, d); (-1., d, d); (1., d, d); (3., d, d) ])

let axis_line name vals =
  Printf.sprintf "%s %d %s" name (List.length vals)
    (String.concat " " (List.map (Printf.sprintf "%g") vals))

let grid_section name ~xs ~ys ~zs rows =
  String.concat "\n"
    (Printf.sprintf "grid %s" name
    :: axis_line "xs" xs :: axis_line "ys" ys :: axis_line "zs" zs
    :: rows)

let const_rows ~nxy ~nz v =
  List.init nxy (fun _ ->
    String.concat " " (List.init nz (fun _ -> Printf.sprintf "%g" v)))

let std_axes = ([ -3.; 0.; 3. ], [ -3.; 0.; 3. ], [ -2.; 0.; 0.8; 1.2 ])

let dual_text ?(dom = 0) ?(other = 1) ?(edge = "fall") ?(assist = true)
    ?(axes = std_axes) ?delay_rows ?trans_rows () =
  let xs, ys, zs = axes in
  let nxy = List.length xs * List.length ys and nz = List.length zs in
  let dft = const_rows ~nxy ~nz 1.0 in
  let delay_rows = Option.value ~default:dft delay_rows in
  let trans_rows = Option.value ~default:dft trans_rows in
  String.concat "\n"
    [
      "dual-v1";
      Printf.sprintf "dom %d" dom;
      Printf.sprintf "other %d" other;
      Printf.sprintf "edge %s" edge;
      Printf.sprintf "assist %b" assist;
      grid_section "delay" ~xs ~ys ~zs delay_rows;
      grid_section "trans" ~xs ~ys ~zs trans_rows;
      "";
    ]

let test_single_clean () =
  let diags = Model_lint.check_single ~name:"s" (flat_single 5.0) in
  Alcotest.(check int) "clean" 0 (List.length diags)

let test_single_nonpositive () =
  let s =
    Single.load
      (single_text [ (-3., 5., 5.); (-1., -0.5, 5.); (1., 5., 5.); (3., 5., 5.) ])
  in
  check_has (Model_lint.check_single ~name:"s" s) Diagnostic.PX202

let test_single_too_few_points () =
  let s = Single.load (single_text [ (-3., 5., 5.); (0., 5., 5.); (3., 5., 5.) ]) in
  check_has (Model_lint.check_single ~name:"s" s) Diagnostic.PX205

let test_single_narrow_span () =
  let s =
    Single.load
      (single_text [ (0., 5., 5.); (0.1, 5., 5.); (0.2, 5., 5.); (0.3, 5., 5.) ])
  in
  check_has (Model_lint.check_single ~name:"s" s) Diagnostic.PX205

let test_dual_clean () =
  let d = Dual.load (dual_text ()) in
  Alcotest.(check int) "clean" 0
    (List.length (Model_lint.check_dual ~name:"d" d))

let test_dual_non_finite_surface () =
  let rows =
    "nan 1 1 1" :: const_rows ~nxy:8 ~nz:4 1.0
  in
  let d = Dual.load (dual_text ~delay_rows:rows ()) in
  let diags = Model_lint.check_dual ~name:"d" d in
  check_has diags Diagnostic.PX201

let test_dual_non_monotone_axis () =
  (* seeded non-monotone separation axis: Dual.load accepts it, the
     lint must catch it before any query does *)
  let axes = ([ -3.; 0.; 3. ], [ -3.; 0.; 3. ], [ 0.; 2.; 1. ]) in
  let d = Dual.load (dual_text ~axes ()) in
  check_has (Model_lint.check_dual ~name:"d" d) Diagnostic.PX203

let test_dual_separation_coverage () =
  (* axis all on one side of simultaneity, and short of the window edge *)
  let axes = ([ -3.; 0.; 3. ], [ -3.; 0.; 3. ], [ 0.1; 0.3; 0.5 ]) in
  let d = Dual.load (dual_text ~axes ()) in
  let px205 =
    List.filter (fun c -> c = Diagnostic.PX205)
      (codes_of (Model_lint.check_dual ~name:"d" d))
  in
  Alcotest.(check bool) "both coverage gaps flagged" true
    (List.length px205 >= 2)

let test_dual_unsaturated () =
  let rows = const_rows ~nxy:9 ~nz:4 3.0 in
  let d = Dual.load (dual_text ~delay_rows:rows ()) in
  check_has (Model_lint.check_dual ~name:"d" d) Diagnostic.PX204

(* --- store lints -------------------------------------------------------- *)

let mk_set ?(singles = []) ?(duals = []) () =
  { Store.gate_name = "fake2"; vil = 0.2; vih = 0.8; vdd = 1.0; singles; duals }

let test_store_orphan_dual () =
  let set = mk_set ~duals:[ Dual.load (dual_text ()) ] () in
  let diags = Model_lint.check_store set in
  Alcotest.(check int) "both feet missing" 2
    (List.length (List.filter (fun c -> c = Diagnostic.PX207) (codes_of diags)))

let test_store_coverage () =
  let set = mk_set ~singles:[ flat_single ~edge:"fall" 5.0 ] () in
  let diags = Model_lint.check_store set in
  check_has diags Diagnostic.PX208;
  let infos =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Info) diags
  in
  Alcotest.(check int) "coverage gaps are info" (List.length diags)
    (List.length infos)

let crossover_set reverse_value =
  (* pin a: Delta = 5 tau, pin b: Delta = 2 tau; at tau = 200 ps the
     crossover separation is 600 ps *)
  let sa = flat_single ~pin:0 5.0 in
  let sb = flat_single ~pin:1 2.0 in
  let d_ab = Dual.load (dual_text ~dom:0 ~other:1 ()) in
  let rows = const_rows ~nxy:9 ~nz:4 reverse_value in
  let d_ba =
    Dual.load (dual_text ~dom:1 ~other:0 ~delay_rows:rows ~trans_rows:rows ())
  in
  mk_set ~singles:[ sa; sb ] ~duals:[ d_ab; d_ba ] ()

let test_store_crossover_consistent () =
  check_absent (Model_lint.check_store (crossover_set 1.0)) Diagnostic.PX206

let test_store_crossover_inconsistent () =
  let diags = Model_lint.check_store (crossover_set 3.0) in
  check_has diags Diagnostic.PX206

(* --- JSON reporter ------------------------------------------------------ *)

let test_json_roundtrip_diag () =
  let full =
    Diagnostic.make ~severity:Diagnostic.Warning ~file:"a.ntl" ~line:3
      ~context:"n1" PX110 "unused net %s" "n1"
  in
  let bare = Diagnostic.make PX108 "missing design" in
  List.iter
    (fun d ->
      match Diagnostic.of_json (Diagnostic.to_json d) with
      | Ok d' -> Alcotest.(check bool) "field round-trip" true (d = d')
      | Error m -> Alcotest.fail m)
    [ full; bare ]

let test_json_report_valid () =
  let diags =
    [
      Diagnostic.make ~file:"a.ntl" ~line:3 ~context:"n1" PX105 "undriven";
      Diagnostic.make ~file:"a.ntl" ~line:9 PX110 "unused \"net\"";
    ]
  in
  let s = Diagnostic.report_json_string diags in
  match Json.of_string s with
  | Error m -> Alcotest.fail ("report is not valid JSON: " ^ m)
  | Ok j ->
    let items =
      Option.bind (Json.member "diagnostics" j) Json.to_list
      |> Option.value ~default:[]
    in
    let codes =
      List.filter_map
        (fun item ->
          Option.bind (Json.member "code" item) Json.to_string_value)
        items
    in
    Alcotest.(check (list string)) "codes survive the trip"
      [ "PX105"; "PX110" ] codes;
    let errors =
      Option.bind (Json.member "summary" j) (Json.member "errors")
      |> fun o -> Option.bind o Json.to_number
    in
    Alcotest.(check (option (float 0.))) "summary counts" (Some 1.) errors

(* --- SARIF reporter ----------------------------------------------------- *)

(* round-trip the SARIF report through the in-repo JSON parser: schema
   header, one rule per distinct code, ruleIndex consistency, severity ->
   level mapping, context folded into the message, physical locations *)
let test_sarif_report_roundtrip () =
  let diags =
    [
      Diagnostic.make ~file:"a.ntl" ~line:3 ~col:2 ~context:"n1" PX105
        "net %s is undriven" "n1";
      Diagnostic.make ~file:"a.ntl" ~line:9 PX110 "unused output";
      Diagnostic.make PX403 "near-miss hazard";
    ]
  in
  let s = Diagnostic.report_sarif_string ~tool_version:"9.9.9" diags in
  match Json.of_string s with
  | Error m -> Alcotest.fail ("SARIF report is not valid JSON: " ^ m)
  | Ok j ->
    Alcotest.(check (option string))
      "version" (Some "2.1.0")
      (Option.bind (Json.member "version" j) Json.to_string_value);
    Alcotest.(check (option string))
      "$schema" (Some "https://json.schemastore.org/sarif-2.1.0.json")
      (Option.bind (Json.member "$schema" j) Json.to_string_value);
    let run =
      match Option.bind (Json.member "runs" j) Json.to_list with
      | Some [ r ] -> r
      | _ -> Alcotest.fail "expected exactly one run"
    in
    let driver =
      Option.bind (Json.member "tool" run) (Json.member "driver")
    in
    Alcotest.(check (option string))
      "tool version" (Some "9.9.9")
      (Option.bind driver (fun d ->
           Option.bind (Json.member "version" d) Json.to_string_value));
    let rules =
      Option.bind driver (fun d ->
          Option.bind (Json.member "rules" d) Json.to_list)
      |> Option.value ~default:[]
    in
    let rule_ids =
      List.filter_map
        (fun r -> Option.bind (Json.member "id" r) Json.to_string_value)
        rules
    in
    Alcotest.(check (list string))
      "one rule per distinct code, table order"
      [ "PX105"; "PX110"; "PX403" ] rule_ids;
    let rule_levels =
      List.filter_map
        (fun r ->
          Option.bind (Json.member "defaultConfiguration" r) (fun c ->
              Option.bind (Json.member "level" c) Json.to_string_value))
        rules
    in
    Alcotest.(check (list string))
      "rule default levels" [ "error"; "warning"; "note" ] rule_levels;
    let results =
      Option.bind (Json.member "results" run) Json.to_list
      |> Option.value ~default:[]
    in
    Alcotest.(check int) "one result per diagnostic" 3 (List.length results);
    List.iter
      (fun r ->
        let rid =
          Option.bind (Json.member "ruleId" r) Json.to_string_value
        in
        let idx = Option.bind (Json.member "ruleIndex" r) Json.to_number in
        match (rid, idx) with
        | Some id, Some i ->
          Alcotest.(check (option string))
            "ruleIndex points at its rule" (Some id)
            (List.nth_opt rule_ids (int_of_float i))
        | _ -> Alcotest.fail "result missing ruleId or ruleIndex")
      results;
    let result_for code =
      match
        List.find_opt
          (fun r ->
            Option.bind (Json.member "ruleId" r) Json.to_string_value
            = Some code)
          results
      with
      | Some r -> r
      | None -> Alcotest.fail ("no result for " ^ code)
    in
    let message r =
      Option.bind (Json.member "message" r) (fun m ->
          Option.bind (Json.member "text" m) Json.to_string_value)
    in
    Alcotest.(check (option string))
      "context folded into the message"
      (Some "net n1 is undriven [n1]")
      (message (result_for "PX105"));
    Alcotest.(check (option string))
      "severity -> level" (Some "note")
      (Option.bind (Json.member "level" (result_for "PX403"))
         Json.to_string_value);
    let location r =
      match Option.bind (Json.member "locations" r) Json.to_list with
      | Some (o :: _) -> Json.member "physicalLocation" o
      | _ -> None
    in
    (match location (result_for "PX105") with
    | None -> Alcotest.fail "PX105 carries no physical location"
    | Some phys ->
      Alcotest.(check (option string))
        "artifact uri" (Some "a.ntl")
        (Option.bind (Json.member "artifactLocation" phys) (fun a ->
             Option.bind (Json.member "uri" a) Json.to_string_value));
      Alcotest.(check (option (float 0.)))
        "startLine" (Some 3.)
        (Option.bind (Json.member "region" phys) (fun rg ->
             Option.bind (Json.member "startLine" rg) Json.to_number));
      Alcotest.(check (option (float 0.)))
        "startColumn" (Some 2.)
        (Option.bind (Json.member "region" phys) (fun rg ->
             Option.bind (Json.member "startColumn" rg) Json.to_number)));
    Alcotest.(check bool) "bare diagnostic has no location" true
      (location (result_for "PX403") = None)

let () =
  Alcotest.run "lint"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "code names" `Quick test_code_names;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "clean" `Quick test_clean_netlist;
          Alcotest.test_case "errors" `Quick test_netlist_errors;
          Alcotest.test_case "warnings" `Quick test_netlist_warnings;
          Alcotest.test_case "unreachable output" `Quick
            test_netlist_unreachable_output;
          Alcotest.test_case "missing design" `Quick test_netlist_missing_design;
          Alcotest.test_case "collect-all parse" `Quick
            test_parse_collects_all_errors;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "ordering" `Quick test_threshold_ordering;
          Alcotest.test_case "static guard" `Quick test_threshold_static_guard;
          Alcotest.test_case "family rule" `Quick test_threshold_family_rule;
          Alcotest.test_case "per-curve guard" `Quick
            test_threshold_per_curve_guard;
          Alcotest.test_case "degenerate curve" `Quick
            test_threshold_degenerate_curve;
          Alcotest.test_case "seeded negative delay" `Quick
            test_seeded_negative_delay;
        ] );
      ( "tables",
        [
          Alcotest.test_case "single clean" `Quick test_single_clean;
          Alcotest.test_case "single non-positive" `Quick
            test_single_nonpositive;
          Alcotest.test_case "single too few points" `Quick
            test_single_too_few_points;
          Alcotest.test_case "single narrow span" `Quick
            test_single_narrow_span;
          Alcotest.test_case "dual clean" `Quick test_dual_clean;
          Alcotest.test_case "dual non-finite" `Quick
            test_dual_non_finite_surface;
          Alcotest.test_case "dual non-monotone axis" `Quick
            test_dual_non_monotone_axis;
          Alcotest.test_case "dual separation coverage" `Quick
            test_dual_separation_coverage;
          Alcotest.test_case "dual unsaturated" `Quick test_dual_unsaturated;
        ] );
      ( "store",
        [
          Alcotest.test_case "orphan dual" `Quick test_store_orphan_dual;
          Alcotest.test_case "coverage" `Quick test_store_coverage;
          Alcotest.test_case "crossover consistent" `Quick
            test_store_crossover_consistent;
          Alcotest.test_case "crossover inconsistent" `Quick
            test_store_crossover_inconsistent;
        ] );
      ( "json",
        [
          Alcotest.test_case "diagnostic round-trip" `Quick
            test_json_roundtrip_diag;
          Alcotest.test_case "report valid" `Quick test_json_report_valid;
          Alcotest.test_case "sarif roundtrip" `Quick
            test_sarif_report_roundtrip;
        ] );
    ]
