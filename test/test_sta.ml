(* Tests for the gate-level design container and the STA modes. *)

module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let inv = Gate.inverter tech

let cell name gate inputs output =
  { Design.name; gate; input_nets = inputs; output_net = output }

(* two NAND2s feeding a NAND2: a 2-level tree *)
let tree () =
  Design.create
    ~cells:
      [
        cell "u1" nand2 [| "a"; "b" |] "n1";
        cell "u2" nand2 [| "c"; "d" |] "n2";
        cell "u3" nand2 [| "n1"; "n2" |] "y";
      ]
    ~primary_inputs:[ "a"; "b"; "c"; "d" ]
    ~primary_outputs:[ "y" ]

let test_create_and_topo () =
  let d = tree () in
  let topo = List.map (fun c -> c.Design.name) (Design.topological d) in
  let pos name =
    let rec idx i = function
      | [] -> Alcotest.failf "missing %s" name
      | x :: tl -> if String.equal x name then i else idx (i + 1) tl
    in
    idx 0 topo
  in
  Alcotest.(check bool) "u1 before u3" true (pos "u1" < pos "u3");
  Alcotest.(check bool) "u2 before u3" true (pos "u2" < pos "u3")

let test_create_validation () =
  let dup () =
    Design.create
      ~cells:[ cell "u1" inv [| "a" |] "x"; cell "u1" inv [| "x" |] "y" ]
      ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
  in
  Alcotest.check_raises "duplicate cell"
    (Invalid_argument "Design.create: duplicate cell u1") (fun () ->
      ignore (dup ()));
  let double_drive () =
    Design.create
      ~cells:[ cell "u1" inv [| "a" |] "x"; cell "u2" inv [| "a" |] "x" ]
      ~primary_inputs:[ "a" ] ~primary_outputs:[ "x" ]
  in
  Alcotest.check_raises "double drive"
    (Invalid_argument "Design.create: net driven twice: x") (fun () ->
      ignore (double_drive ()));
  let undriven () =
    Design.create
      ~cells:[ cell "u1" inv [| "ghost" |] "y" ]
      ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
  in
  Alcotest.check_raises "undriven"
    (Invalid_argument "Design.create: undriven net ghost") (fun () ->
      ignore (undriven ()));
  let cyclic () =
    Design.create
      ~cells:
        [ cell "u1" nand2 [| "a"; "y" |] "x"; cell "u2" inv [| "x" |] "y" ]
      ~primary_inputs:[ "a" ] ~primary_outputs:[ "y" ]
  in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Design.create: combinational cycle through u1")
    (fun () -> ignore (cyclic ()))

let test_fanout_load () =
  let d = tree () in
  (* n1 feeds one nand2 pin + default wire cap *)
  let expected = Gate.input_capacitance nand2 +. 20e-15 in
  Alcotest.(check (float 1e-18)) "internal net" expected
    (Design.fanout_load d ~net:"n1");
  (* y is a primary output: wire + pad *)
  Alcotest.(check (float 1e-18)) "po net" (20e-15 +. 50e-15)
    (Design.fanout_load d ~net:"y");
  Alcotest.(check bool) "driver lookup" true
    (match Design.driver d ~net:"n1" with
     | Some c -> String.equal c.Design.name "u1"
     | None -> false);
  Alcotest.(check int) "readers" 1 (List.length (Design.readers d ~net:"n1"))

let thresholds = lazy (Vtc.thresholds ~points:201 nand2)

let test_analyze_propagates () =
  let d = tree () in
  let th = Lazy.force thresholds in
  let models = Sta.oracle_model_factory d th in
  let arr t = { Sta.time = t; slew = 200e-12; edge = Measure.Rise } in
  let pi = [ ("a", arr 0.); ("b", arr 20e-12); ("c", arr 0.); ("d", arr 10e-12) ] in
  let report = Sta.analyze ~mode:Sta.Classic ~models ~thresholds:th d ~pi in
  (match report.Sta.critical_po with
   | Some (net, a) ->
     Alcotest.(check string) "critical is y" "y" net;
     Alcotest.(check bool) "positive time" true (a.Sta.time > 0.);
     Alcotest.(check bool) "rise in, rise out after 2 inversions" true
       (a.Sta.edge = Measure.Rise)
   | None -> Alcotest.fail "no critical PO");
  (* every internal net got an arrival *)
  let nets = List.map fst report.Sta.arrivals in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n nets))
    [ "n1"; "n2"; "y" ]

let test_proximity_differs_from_classic () =
  let d = tree () in
  let th = Lazy.force thresholds in
  let models = Sta.oracle_model_factory d th in
  (* near-simultaneous falling inputs at the NAND inputs: classic (max of
     single-input delays) must disagree with proximity-aware timing *)
  let arr t = { Sta.time = t; slew = 300e-12; edge = Measure.Fall } in
  let pi = [ ("a", arr 0.); ("b", arr 10e-12); ("c", arr 0.); ("d", arr 5e-12) ] in
  let classic = Sta.analyze ~mode:Sta.Classic ~models ~thresholds:th d ~pi in
  let prox = Sta.analyze ~mode:Sta.Proximity ~models ~thresholds:th d ~pi in
  match (classic.Sta.critical_po, prox.Sta.critical_po) with
  | Some (_, ac), Some (_, ap) ->
    Alcotest.(check bool) "different arrival" true
      (Float.abs (ac.Sta.time -. ap.Sta.time) > 1e-12)
  | _, _ -> Alcotest.fail "missing PO arrival"

let test_quiet_inputs_stay_quiet () =
  let d = tree () in
  let th = Lazy.force thresholds in
  let models = Sta.oracle_model_factory d th in
  (* only the left NAND switches; n2 and u3 still see one event through n1 *)
  let arr t = { Sta.time = t; slew = 200e-12; edge = Measure.Fall } in
  let pi = [ ("a", arr 0.); ("b", arr 10e-12) ] in
  let report = Sta.analyze ~mode:Sta.Proximity ~models ~thresholds:th d ~pi in
  let nets = List.map fst report.Sta.arrivals in
  Alcotest.(check bool) "n2 quiet" false (List.mem "n2" nets);
  Alcotest.(check bool) "n1 switched" true (List.mem "n1" nets);
  Alcotest.(check bool) "y switched" true (List.mem "y" nets)

let test_critical_path_and_slack () =
  let d = tree () in
  let th = Lazy.force thresholds in
  let models = Sta.oracle_model_factory d th in
  let arr t = { Sta.time = t; slew = 250e-12; edge = Measure.Fall } in
  (* make d clearly the slowest input so the path is d -> n2 -> y *)
  let pi = [ ("a", arr 0.); ("b", arr 0.); ("c", arr 0.); ("d", arr 150e-12) ] in
  let report = Sta.analyze ~mode:Sta.Classic ~models ~thresholds:th d ~pi in
  let path = Sta.critical_path report ~po:"y" in
  Alcotest.(check (list string)) "path" [ "y"; "n2"; "d" ] path;
  Alcotest.(check (list string)) "unknown po" []
    (Sta.critical_path report ~po:"nope");
  let slacks = Sta.po_slacks d report ~required:1e-9 in
  (match slacks with
   | [ ("y", slack) ] ->
     (match report.Sta.critical_po with
      | Some (_, a) ->
        Alcotest.(check (float 1e-15)) "slack" (1e-9 -. a.Sta.time) slack
      | None -> Alcotest.fail "no critical po")
   | _ -> Alcotest.fail "expected one po slack")

let test_mixed_edges_rejected () =
  let d = tree () in
  let th = Lazy.force thresholds in
  let models = Sta.oracle_model_factory d th in
  let pi =
    [
      ("a", { Sta.time = 0.; slew = 2e-10; edge = Measure.Rise });
      ("b", { Sta.time = 0.; slew = 2e-10; edge = Measure.Fall });
    ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sta.analyze ~models ~thresholds:th d ~pi);
       false
     with Sta.Mixed_input_edges { cell = _ } -> true)

let () =
  Alcotest.run "sta"
    [
      ( "design",
        [
          Alcotest.test_case "topological" `Quick test_create_and_topo;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "fanout load" `Quick test_fanout_load;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "propagation" `Slow test_analyze_propagates;
          Alcotest.test_case "proximity differs" `Slow
            test_proximity_differs_from_classic;
          Alcotest.test_case "quiet inputs" `Slow test_quiet_inputs_stay_quiet;
          Alcotest.test_case "critical path + slack" `Slow
            test_critical_path_and_slack;
          Alcotest.test_case "mixed edges" `Quick test_mixed_edges_rejected;
        ] );
    ]
