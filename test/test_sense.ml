(* Static sensitization: ternary evaluation, activity and constant
   propagation, the bounded implication engine, Verify/Hazard verdict
   refinement, the fused prune engine (mask composition), diagnostic
   byte-stability and the PX5xx / CLI surface. *)

module Measure = Proxim_measure.Measure
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Models = Proxim_macromodel.Models
module Prng = Proxim_util.Prng
module Pool = Proxim_util.Pool
module Graph = Proxim_timing.Graph
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Prune = Proxim_sta.Prune
module Diagnostic = Proxim_lint.Diagnostic
module Verify = Proxim_verify.Verify
module Hazard = Proxim_hazard.Hazard
module Sense = Proxim_sense.Sense

let tech = Tech.generic_5v
let nand2 = Gate.nand tech ~fan_in:2
let nand3 = Gate.nand tech ~fan_in:3
let nor2 = Gate.nor tech ~fan_in:2
let inv = Gate.inverter tech

let gate_of name =
  match Gate.of_name tech name with Ok g -> g | Error m -> failwith m

let synthetic_models =
  let tbl = Hashtbl.create 8 in
  fun (cell : Design.cell) ->
    let key = cell.Design.gate.Gate.name in
    match Hashtbl.find_opt tbl key with
    | Some m -> m
    | None ->
      let m = Models.synthetic cell.Design.gate in
      Hashtbl.add tbl key m;
      m

let thresholds = { Vtc.vil = 1.25; vih = 3.75; vdd = 5.0 }
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Ternary logic                                                       *)

let test_ternary_ops () =
  let open Sense in
  Alcotest.(check string) "not3 0" "1" (logic_name (not3 L0));
  Alcotest.(check string) "not3 1" "0" (logic_name (not3 L1));
  Alcotest.(check string) "not3 x" "x" (logic_name (not3 LX));
  (* Kleene tables: a definite controlling value absorbs X *)
  Alcotest.(check bool) "and absorbs" true (and3 L0 LX = L0);
  Alcotest.(check bool) "or absorbs" true (or3 L1 LX = L1);
  Alcotest.(check bool) "and keeps x" true (and3 L1 LX = LX);
  Alcotest.(check bool) "or keeps x" true (or3 L0 LX = LX);
  Alcotest.(check bool) "and3 11" true (and3 L1 L1 = L1);
  Alcotest.(check bool) "or3 00" true (or3 L0 L0 = L0)

(* the ternary evaluator restricted to booleans IS the boolean one, for
   every gate shape the netlists can instantiate *)
let test_eval_gate_exhaustive () =
  List.iter
    (fun name ->
      let g = gate_of name in
      let n = g.Gate.fan_in in
      for bits = 0 to (1 lsl n) - 1 do
        let b p = bits land (1 lsl p) <> 0 in
        let l p = if b p then Sense.L1 else Sense.L0 in
        let expect = Sense.eval_gate_bool g b in
        Alcotest.(check bool)
          (Printf.sprintf "%s bits=%d" name bits)
          true
          (Sense.eval_gate g l = if expect then Sense.L1 else Sense.L0)
      done)
    [ "inv"; "nand2"; "nand3"; "nor2"; "nor3"; "aoi21"; "oai21" ];
  (* controlling-value absorption: the §3 skip branch decided statically *)
  let x = Sense.LX in
  Alcotest.(check bool) "nand(0,x)=1" true
    (Sense.eval_gate nand2 (function 0 -> Sense.L0 | _ -> x) = Sense.L1);
  Alcotest.(check bool) "nor(1,x)=0" true
    (Sense.eval_gate nor2 (function 0 -> Sense.L1 | _ -> x) = Sense.L0);
  Alcotest.(check bool) "nand(1,x)=x" true
    (Sense.eval_gate nand2 (function 0 -> Sense.L1 | _ -> x) = Sense.LX)

let test_stimuli_of_events () =
  let ev edge net =
    Verify.of_sta_event (net, { Sta.time = 0.; slew = 300e-12; edge })
  in
  let stim =
    Sense.stimuli_of_events
      ~consts:[ ("k", false) ]
      [ ev Measure.Rise "a"; ev Measure.Fall "r"; ev Measure.Rise "r" ]
  in
  Alcotest.(check bool) "a switches" true
    (List.assoc "a" stim = Sense.Switch Measure.Rise);
  Alcotest.(check bool) "r pulses" true (List.assoc "r" stim = Sense.Pulse);
  Alcotest.(check bool) "k pinned" true
    (List.assoc "k" stim = Sense.Const false);
  Alcotest.(check bool) "const/switch conflict rejected" true
    (try
       ignore
         (Sense.stimuli_of_events ~consts:[ ("a", true) ]
            [ ev Measure.Rise "a" ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The examples/sense_demo.ntl topology, built directly                *)

let demo_design () =
  Design.create
    ~cells:
      [
        { Design.name = "u1"; gate = inv; input_nets = [| "q" |];
          output_net = "qn" };
        { Design.name = "u2"; gate = nand2; input_nets = [| "a"; "q" |];
          output_net = "x1" };
        { Design.name = "u3"; gate = nand2; input_nets = [| "a"; "qn" |];
          output_net = "x2" };
        { Design.name = "u4"; gate = nand2; input_nets = [| "x1"; "x2" |];
          output_net = "y" };
        { Design.name = "u5"; gate = nand2; input_nets = [| "a"; "k" |];
          output_net = "c" };
        { Design.name = "u6"; gate = nand2; input_nets = [| "c"; "x1" |];
          output_net = "z" };
        { Design.name = "u7"; gate = nand2; input_nets = [| "r"; "a" |];
          output_net = "w" };
      ]
    ~primary_inputs:[ "a"; "q"; "k"; "r" ]
    ~primary_outputs:[ "y"; "z"; "w" ]

let demo_stim =
  [
    ("a", Sense.Switch Measure.Rise);
    ("r", Sense.Pulse);
    ("k", Sense.Const false);
  ]

let demo () = Sense.analyze (demo_design ()) ~pi:demo_stim

let info t name =
  match Sense.cell_info t ~cell:name with
  | Some ci -> ci
  | None -> Alcotest.fail (name ^ " has no cell info")

let the_pair t name =
  match (info t name).Sense.sc_pairs with
  | [ p ] -> p
  | ps -> Alcotest.fail (Printf.sprintf "%s: %d pairs" name (List.length ps))

let test_demo_activity () =
  let t = demo () in
  let act net =
    match Sense.activity t ~net with
    | Some a -> a
    | None -> Alcotest.fail (net ^ " has no activity")
  in
  (* c = nand(a, k=0): pinned at 1 by the controlling constant, yet the
     event on a structurally reaches it *)
  let c = act "c" in
  Alcotest.(check bool) "c init 1" true (c.Sense.act_init = Sense.L1);
  Alcotest.(check bool) "c final 1" true (c.Sense.act_final = Sense.L1);
  Alcotest.(check bool) "c steady" true c.Sense.act_steady;
  Alcotest.(check bool) "c active" true c.Sense.act_active;
  Alcotest.(check bool) "c no completed transition" true
    ((not c.Sense.act_may_rise) && not c.Sense.act_may_fall);
  (* qn is driven only by the quiet q: inert *)
  Alcotest.(check bool) "qn inactive" false (act "qn").Sense.act_active;
  (* x1 = nand(a rise, q): can only complete a fall *)
  let x1 = act "x1" in
  Alcotest.(check bool) "x1 may fall only" true
    (x1.Sense.act_may_fall && not x1.Sense.act_may_rise);
  Alcotest.(check bool) "x1 pulse-free" false x1.Sense.act_may_pulse;
  (* the pulse on r taints everything it reaches *)
  Alcotest.(check bool) "r pulses" true (act "r").Sense.act_may_pulse;
  Alcotest.(check bool) "w tainted" true (act "w").Sense.act_may_pulse;
  Alcotest.(check (list (pair string bool)))
    "derived constants" [ ("c", true) ] (Sense.constants t);
  Alcotest.(check bool) "unknown net" true (Sense.activity t ~net:"nope" = None)

let test_demo_decisions () =
  let t = demo () in
  (* u4: whichever level the free q takes, exactly one of x1/x2 switches *)
  let p4 = the_pair t "u4" in
  Alcotest.(check (list string)) "u4 support" [ "q" ] p4.Sense.sp_support;
  Alcotest.(check bool) "u4 unsensitizable" true
    (match p4.Sense.sp_decision with
     | Sense.Unsensitizable _ -> true
     | _ -> false);
  Alcotest.(check bool) "u4 false path" true (info t "u4").Sense.sc_false_path;
  (* u6: c never changes *)
  Alcotest.(check bool) "u6 unsensitizable" true
    (match (the_pair t "u6").Sense.sp_decision with
     | Sense.Unsensitizable _ -> true
     | _ -> false);
  (* u7: pulse taint defeats the two-frame argument *)
  Alcotest.(check bool) "u7 exhausted" true
    (match (the_pair t "u7").Sense.sp_decision with
     | Sense.Exhausted _ -> true
     | _ -> false);
  Alcotest.(check bool) "u7 not false path" false
    (info t "u7").Sense.sc_false_path;
  let s = Sense.summary t in
  Alcotest.(check int) "classified" 3 s.Sense.classified_cells;
  Alcotest.(check int) "pairs" 3 s.Sense.pairs;
  Alcotest.(check int) "sensitizable" 0 s.Sense.sensitizable;
  Alcotest.(check int) "unsensitizable" 2 s.Sense.unsensitizable;
  Alcotest.(check int) "exhausted" 1 s.Sense.exhausted;
  Alcotest.(check int) "false paths" 2 s.Sense.false_path_cells;
  Alcotest.(check int) "prunable" 4 s.Sense.prunable_cells;
  Alcotest.(check int) "constants" 1 s.Sense.constant_nets

let test_demo_oracle_and_mask () =
  let t = demo () in
  (* the refinement oracle: proven pairs and inert pins, either order *)
  Alcotest.(check bool) "u4 (0,1)" true
    (Sense.pair_unsensitizable t ~cell:"u4" ~a:0 ~b:1);
  Alcotest.(check bool) "u4 (1,0)" true
    (Sense.pair_unsensitizable t ~cell:"u4" ~a:1 ~b:0);
  Alcotest.(check bool) "u7 exhausted pair never guessed" false
    (Sense.pair_unsensitizable t ~cell:"u7" ~a:0 ~b:1);
  Alcotest.(check bool) "inert pin (u2's q)" true
    (Sense.pair_unsensitizable t ~cell:"u2" ~a:0 ~b:1);
  Alcotest.(check bool) "unknown cell" false
    (Sense.pair_unsensitizable t ~cell:"nope" ~a:0 ~b:1);
  Alcotest.(check bool) "bad pin" false
    (Sense.pair_unsensitizable t ~cell:"u4" ~a:0 ~b:9);
  (* the STA mask is the structural projection: <= 1 event-bearing input *)
  let mask = Sense.prune_mask t in
  let cell name =
    List.find
      (fun (c : Design.cell) -> c.Design.name = name)
      (Design.cells (demo_design ()))
  in
  List.iter
    (fun (name, expect) ->
      Alcotest.(check bool) (name ^ " prunable") expect (mask (cell name)))
    [ ("u1", true); ("u2", true); ("u3", true); ("u5", true);
      ("u4", false); ("u6", false); ("u7", false) ]

let test_demo_diagnostics () =
  let diags = Sense.check ~file:"demo.ntl" (demo ()) in
  let count code =
    List.length (List.filter (fun d -> d.Diagnostic.code = code) diags)
  in
  Alcotest.(check int) "PX501" 1 (count Diagnostic.PX501);
  Alcotest.(check int) "PX502" 2 (count Diagnostic.PX502);
  Alcotest.(check int) "PX503" 2 (count Diagnostic.PX503);
  Alcotest.(check int) "PX504" 1 (count Diagnostic.PX504);
  Alcotest.(check int) "nothing else" 6 (List.length diags);
  List.iter
    (fun d ->
      let expect =
        match d.Diagnostic.code with
        | Diagnostic.PX501 | Diagnostic.PX502 -> Diagnostic.Warning
        | _ -> Diagnostic.Info
      in
      Alcotest.(check bool)
        (Diagnostic.code_name d.Diagnostic.code ^ " severity")
        true
        (d.Diagnostic.severity = expect))
    diags

let test_budgets () =
  let design = demo_design () in
  (* the u4 pair's cone is u1+u2+u3 = 3 cells *)
  let t = Sense.analyze ~budget:1 design ~pi:demo_stim in
  Alcotest.(check bool) "cone budget exhausts" true
    (match (the_pair t "u4").Sense.sp_decision with
     | Sense.Exhausted _ -> true
     | _ -> false);
  let t = Sense.analyze ~max_support:0 design ~pi:demo_stim in
  Alcotest.(check bool) "support budget exhausts" true
    (match (the_pair t "u4").Sense.sp_decision with
     | Sense.Exhausted _ -> true
     | _ -> false);
  Alcotest.(check bool) "budget 0 rejected" true
    (try
       ignore (Sense.analyze ~budget:0 design ~pi:demo_stim);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cell-driven stimulus rejected" true
    (try
       ignore (Sense.analyze design ~pi:[ ("x1", Sense.Switch Measure.Rise) ]);
       false
     with Invalid_argument _ -> true);
  (* unknown nets are inert, like Sta.analyze *)
  let t = Sense.analyze design ~pi:(("ghost", Sense.Pulse) :: demo_stim) in
  Alcotest.(check int) "unknown stimulus inert" 3
    (Sense.summary t).Sense.classified_cells

(* the Graph.fanin_cone primitive the engine's bounded DFS mirrors *)
let test_fanin_cone () =
  let design = demo_design () in
  let g = Design.graph design in
  let id name = Option.get (Graph.cell_id g name) in
  let cone = Graph.fanin_cone g ~cells:[ id "u4" ] in
  List.iter
    (fun (name, expect) ->
      Alcotest.(check bool) (name ^ " in cone") expect cone.(id name))
    [ ("u1", true); ("u2", true); ("u3", true); ("u4", true);
      ("u5", false); ("u6", false); ("u7", false) ]

(* ------------------------------------------------------------------ *)
(* Witness replay and randomized soundness                             *)

(* exact two-frame boolean simulation of a whole design.
   [stim]: per-PI (init, final) values; unlisted nets rest at false. *)
let sim_frames design stim =
  let g = Design.graph design in
  let n = Graph.net_count g in
  let init = Array.make n false and final = Array.make n false in
  List.iter
    (fun (net, (i0, f0)) ->
      match Graph.net_id g net with
      | Some id ->
        init.(id) <- i0;
        final.(id) <- f0
      | None -> ())
    stim;
  Array.iter
    (fun cid ->
      let cell : Design.cell = Graph.payload g cid in
      let ins = Graph.cell_inputs g cid in
      let o = Graph.cell_output g cid in
      init.(o) <-
        Sense.eval_gate_bool cell.Design.gate (fun p -> init.(ins.(p)));
      final.(o) <-
        Sense.eval_gate_bool cell.Design.gate (fun p -> final.(ins.(p))))
    (Graph.topological g);
  fun net ->
    let id = Option.get (Graph.net_id g net) in
    init.(id) <> final.(id)

let test_witness_replay () =
  let design = demo_design () in
  (* without the k=0 constant, u6's pair is sensitizable: k=1 frees c *)
  let t = Sense.analyze design ~pi:[ ("a", Sense.Switch Measure.Rise) ] in
  let p = the_pair t "u6" in
  match p.Sense.sp_decision with
  | Sense.Unsensitizable _ | Sense.Exhausted _ ->
    Alcotest.fail "u6 should be sensitizable without the constant"
  | Sense.Sensitizable cube ->
    Alcotest.(check bool) "witness pins k" true (List.mem_assoc "k" cube);
    Alcotest.(check bool) "witness pins q" true (List.mem_assoc "q" cube);
    (* replay the cube concretely: both pair nets must change *)
    let stim =
      ("a", (false, true)) :: List.map (fun (net, b) -> (net, (b, b))) cube
    in
    let changed = sim_frames design stim in
    Alcotest.(check bool) "c switches under the witness" true (changed "c");
    Alcotest.(check bool) "x1 switches under the witness" true (changed "x1")

(* randomized soundness: no concrete draw of the free inputs ever
   switches both pins of a pair classified Unsensitizable *)
let random_layered_design rng ~depth ~width =
  let gate_pool = [| nand2; nor2; nand3; inv |] in
  let pis = List.init width (Printf.sprintf "pi%d") in
  let prev = ref (Array.of_list pis) in
  let cells = ref [] in
  for layer = 0 to depth - 1 do
    let layer_cells =
      Array.init width (fun j ->
          let gate =
            gate_pool.(Prng.int rng ~lo:0 ~hi:(Array.length gate_pool - 1))
          in
          let rec pick chosen n =
            if n = 0 then chosen
            else
              let i = Prng.int rng ~lo:0 ~hi:(width - 1) in
              if List.mem i chosen then pick chosen n
              else pick (i :: chosen) (n - 1)
          in
          let ins = pick [] gate.Gate.fan_in in
          {
            Design.name = Printf.sprintf "u%d_%d" layer j;
            gate;
            input_nets = Array.of_list (List.map (fun i -> (!prev).(i)) ins);
            output_net = Printf.sprintf "n%d_%d" layer j;
          })
    in
    cells := Array.to_list layer_cells @ !cells;
    prev := Array.map (fun c -> c.Design.output_net) layer_cells
  done;
  Design.create ~cells:(List.rev !cells) ~primary_inputs:pis
    ~primary_outputs:(Array.to_list !prev)

(* check every Unsensitizable pair of [design] under [stim] against
   [draws] random concrete assignments of the free PIs; returns how many
   draws ran *)
let soundness_draws rng design stim ~draws =
  let pis = Design.primary_inputs design in
  let t = Sense.analyze design ~pi:stim in
  let free =
    List.filter
      (fun n ->
        match List.assoc_opt n stim with
        | None -> true
        | Some (Sense.Const _) | Some _ -> false)
      pis
  in
  let pinned =
    List.filter_map
      (fun (net, st) ->
        match st with
        | Sense.Switch Measure.Rise -> Some (net, (false, true))
        | Sense.Switch Measure.Fall -> Some (net, (true, false))
        | Sense.Const b -> Some (net, (b, b))
        | Sense.Pulse -> None)
      stim
  in
  let cells_by_name = Hashtbl.create 16 in
  List.iter
    (fun (c : Design.cell) -> Hashtbl.replace cells_by_name c.Design.name c)
    (Design.cells design);
  let checked = ref 0 in
  List.iter
    (fun ci ->
      let cell = Hashtbl.find cells_by_name ci.Sense.sc_name in
      List.iter
        (fun p ->
          match p.Sense.sp_decision with
          | Sense.Unsensitizable _ ->
            let na = cell.Design.input_nets.(p.Sense.sp_a) in
            let nb = cell.Design.input_nets.(p.Sense.sp_b) in
            for _ = 1 to draws do
              incr checked;
              let assignment =
                pinned
                @ List.map
                    (fun net ->
                      let b = Prng.int rng ~lo:0 ~hi:1 = 1 in
                      (net, (b, b)))
                    free
              in
              let changed = sim_frames design assignment in
              if changed na && changed nb then
                Alcotest.fail
                  (Printf.sprintf
                     "unsensitizable pair (%s, %s) of %s switched jointly" na
                     nb ci.Sense.sc_name)
            done
          | _ -> ())
        ci.Sense.sc_pairs)
    (Sense.cells t);
  !checked

let test_soundness_random () =
  let rng = Prng.create 0x5EB5EL in
  let checked = ref 0 in
  (* deterministic reconvergent topologies: the demo design is built to
     yield provably-unsensitizable pairs *)
  List.iter
    (fun stim ->
      checked := !checked + soundness_draws rng (demo_design ()) stim ~draws:30)
    [
      [ ("a", Sense.Switch Measure.Rise) ];
      [ ("a", Sense.Switch Measure.Fall) ];
      [ ("a", Sense.Switch Measure.Rise); ("k", Sense.Const false) ];
      [ ("a", Sense.Switch Measure.Fall); ("k", Sense.Const false);
        ("r", Sense.Pulse) ];
    ];
  Alcotest.(check bool) "reconvergent cases exercised" true (!checked >= 100);
  (* plus a random sweep: whatever pairs the engine proves there must
     survive the same concrete scrutiny (mixed edges are fine here) *)
  for _ = 1 to 12 do
    let design = random_layered_design rng ~depth:3 ~width:6 in
    let stim =
      List.filter_map
        (fun net ->
          match Prng.int rng ~lo:0 ~hi:2 with
          | 0 -> None
          | 1 -> Some (net, Sense.Switch Measure.Rise)
          | _ -> Some (net, Sense.Switch Measure.Fall))
        (Design.primary_inputs design)
    in
    checked := !checked + soundness_draws rng design stim ~draws:20
  done;
  Alcotest.(check bool) "soundness draws ran" true (!checked >= 100)

(* ------------------------------------------------------------------ *)
(* Verdict refinement                                                  *)

let test_verify_refine () =
  let design = demo_design () in
  let pi = [ ("a", { Sta.time = 0.; slew = 300e-12; edge = Measure.Rise }) ] in
  let v =
    Verify.analyze ~models:synthetic_models ~thresholds design
      ~pi:(List.map Verify.of_sta_event pi)
  in
  let s = Sense.analyze design ~pi:[ ("a", Sense.Switch Measure.Rise) ] in
  let v', r = Verify.refine v ~unsensitizable:(Sense.pair_unsensitizable s) in
  (* u4's pair (x1, x2 -- both from a) is the false path *)
  Alcotest.(check int) "one pair refined" 1 r.Verify.refined_pairs;
  Alcotest.(check int) "one cell refined" 1 r.Verify.refined_cells;
  (match Verify.cell_info v' ~cell:"u4" with
  | None -> Alcotest.fail "u4 lost its info"
  | Some ci ->
    Alcotest.(check bool) "u4 never-proximate after refine" true
      (ci.Verify.ci_class = Verify.Never_proximate);
    List.iter
      (fun p ->
        Alcotest.(check bool) "pair never" true
          (p.Verify.pr_class = Verify.Never_proximate))
      ci.Verify.ci_pairs);
  (* the refined summary moved; the prune mask did NOT (the STA fast
     path is justified by timing, not logic) *)
  let before = Verify.summary v and after = Verify.summary v' in
  Alcotest.(check int) "never count grew" (before.Verify.never + 1)
    after.Verify.never;
  let m = Verify.prune_mask v and m' = Verify.prune_mask v' in
  List.iter
    (fun (c : Design.cell) ->
      Alcotest.(check bool) (c.Design.name ^ " mask unchanged") (m c) (m' c))
    (Design.cells design)

let test_hazard_refine () =
  (* one opposing pair, far separated: May_glitch until the oracle
     proves the pair logically impossible *)
  let design =
    Design.create
      ~cells:
        [
          { Design.name = "u1"; gate = nand2; input_nets = [| "a"; "b" |];
            output_net = "y" };
        ]
      ~primary_inputs:[ "a"; "b" ] ~primary_outputs:[ "y" ]
  in
  let ev edge net time =
    Verify.of_sta_event (net, { Sta.time; slew = 300e-12; edge })
  in
  let rep name t =
    match Hazard.cell_report t ~cell:name with
    | Some r -> r
    | None -> Alcotest.fail (name ^ " has no report")
  in
  let h =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev Measure.Fall "a" 500e-12; ev Measure.Rise "b" 0. ]
  in
  Alcotest.(check bool) "may-glitch before" true
    ((rep "u1" h).Hazard.hc_verdict = Hazard.May_glitch);
  let h', r = Hazard.refine h ~impossible:(fun ~cell:_ ~a:_ ~b:_ -> true) in
  Alcotest.(check int) "pair dropped" 1 r.Hazard.refined_pairs;
  Alcotest.(check int) "cell demoted" 1 r.Hazard.refined_cells;
  let r1 = rep "u1" h' in
  Alcotest.(check bool) "never after" true (r1.Hazard.hc_verdict = Hazard.Never);
  Alcotest.(check bool) "glitch cleared" true (r1.Hazard.hc_glitch = None);
  Alcotest.(check bool) "not observable" false r1.Hazard.hc_observable;
  (* the window dataflow and the STA mask are untouched *)
  Alcotest.(check bool) "net_state unchanged" true
    (Hazard.net_state h ~net:"y" = Hazard.net_state h' ~net:"y");
  List.iter
    (fun (c : Design.cell) ->
      Alcotest.(check bool) "quiet mask unchanged" (Hazard.quiet_mask h c)
        (Hazard.quiet_mask h' c))
    (Design.cells design);
  (* a same-pin pulse pair is beyond the two-frame oracle: always kept *)
  let hp =
    Hazard.analyze ~models:synthetic_models ~thresholds design
      ~pi:[ ev Measure.Rise "a" 0.; ev Measure.Fall "a" 600e-12 ]
  in
  let hp', rp = Hazard.refine hp ~impossible:(fun ~cell:_ ~a:_ ~b:_ -> true) in
  Alcotest.(check int) "pulse pair kept" 0 rp.Hazard.refined_pairs;
  Alcotest.(check bool) "verdict preserved" true
    ((rep "u1" hp).Hazard.hc_verdict = (rep "u1" hp').Hazard.hc_verdict)

(* ------------------------------------------------------------------ *)
(* The fused prune engine (satellite: mask composition)                *)

let reports_eq (r1 : Sta.report) (r2 : Sta.report) =
  let aeq (a : Sta.arrival) (b : Sta.arrival) =
    feq a.Sta.time b.Sta.time
    && feq a.Sta.slew b.Sta.slew
    && a.Sta.edge = b.Sta.edge
  in
  List.length r1.Sta.arrivals = List.length r2.Sta.arrivals
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && aeq a1 a2)
       r1.Sta.arrivals r2.Sta.arrivals
  && r1.Sta.predecessors = r2.Sta.predecessors

let test_prune_engine_basics () =
  let p =
    Prune.make
      ~unsensitizable:(fun c -> c.Design.name = "u1")
      ~quiet:(fun c -> c.Design.name <> "u3")
      ~never_proximate:(fun _ -> true)
      ()
  in
  let cell name =
    { Design.name; gate = nand2; input_nets = [| "a"; "b" |];
      output_net = "y" }
  in
  Alcotest.(check bool) "empty" true (Prune.is_empty Prune.none);
  Alcotest.(check bool) "not empty" false (Prune.is_empty p);
  Alcotest.(check bool) "member none" false
    (Prune.member Prune.none (cell "u1"));
  Alcotest.(check bool) "member fused" true (Prune.member p (cell "u3"));
  Alcotest.(check int) "member counts nothing" 0 (Prune.total (Prune.counts p));
  (* attribution follows the priority order: unsensitizable, quiet,
     never-proximate -- cheapest analysis first *)
  Alcotest.(check bool) "hit u1" true (Prune.hit p (cell "u1"));
  Alcotest.(check bool) "hit u2" true (Prune.hit p (cell "u2"));
  Alcotest.(check bool) "hit u3" true (Prune.hit p (cell "u3"));
  let c = Prune.counts p in
  Alcotest.(check int) "unsensitizable count" 1 c.Prune.unsensitizable;
  Alcotest.(check int) "quiet count" 1 c.Prune.quiet;
  Alcotest.(check int) "never count" 1 c.Prune.never_proximate;
  Alcotest.(check int) "total" 3 (Prune.total c);
  Prune.reset_counts p;
  Alcotest.(check int) "reset" 0 (Prune.total (Prune.counts p));
  Alcotest.(check string) "source names" "unsensitizable/quiet/never_proximate"
    (String.concat "/"
       (List.map Prune.source_name
          [ Prune.Unsensitizable; Prune.Quiet; Prune.Never_proximate ]))

let test_mask_composition_random () =
  let rng = Prng.create 0xFACE5L in
  let pool = Pool.create ~domains:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 10 do
        let design = random_layered_design rng ~depth:3 ~width:6 in
        let pis = Design.primary_inputs design in
        let pi =
          List.filter_map
            (fun net ->
              if Prng.int rng ~lo:0 ~hi:2 = 0 then None
              else
                Some
                  ( net,
                    {
                      Sta.time = Prng.float rng ~lo:0. ~hi:600e-12;
                      slew = Prng.float rng ~lo:150e-12 ~hi:500e-12;
                      edge = Measure.Fall;
                    } ))
            pis
        in
        let events = List.map Verify.of_sta_event pi in
        let v =
          Verify.analyze ~models:synthetic_models ~thresholds design ~pi:events
        in
        let h =
          Hazard.analyze ~models:synthetic_models ~thresholds design ~pi:events
        in
        let s =
          Sense.analyze design
            ~pi:
              (List.map
                 (fun (n, (a : Sta.arrival)) -> (n, Sense.Switch a.Sta.edge))
                 pi)
        in
        let run prune =
          let ir =
            Sta.build_ir ~mode:Sta.Proximity ?prune ~models:synthetic_models
              ~thresholds design ~pi
          in
          ignore (Sta.reanalyze ~pool ir);
          (Sta.report ir, Sta.pruned_evaluations ir)
        in
        let r_full, _ = run None in
        let solo =
          List.map
            (fun (name, p) ->
              let r, evals = run (Some p) in
              if not (reports_eq r_full r) then
                Alcotest.fail (name ^ " mask diverged from the full analysis");
              evals)
            [
              ( "never-proximate",
                Prune.make ~never_proximate:(Verify.prune_mask v) () );
              ("quiet", Prune.make ~quiet:(Hazard.quiet_mask h) ());
              ( "unsensitizable",
                Prune.make ~unsensitizable:(Sense.prune_mask s) () );
            ]
        in
        let fused =
          Prune.make
            ~unsensitizable:(Sense.prune_mask s)
            ~quiet:(Hazard.quiet_mask h)
            ~never_proximate:(Verify.prune_mask v)
            ()
        in
        let r_fused, evals_fused = run (Some fused) in
        if not (reports_eq r_full r_fused) then
          Alcotest.fail "fused mask diverged from the full analysis";
        (* the fused engine is monotone: it prunes at least as much as
           any single source, and the attribution counters account for
           every fast-pathed evaluation *)
        List.iter
          (fun evals ->
            Alcotest.(check bool) "fused >= solo" true (evals_fused >= evals))
          solo;
        Alcotest.(check int) "attribution is complete" evals_fused
          (Prune.total (Prune.counts fused))
      done)

(* ------------------------------------------------------------------ *)
(* Diagnostic ordering: byte-stable reports under emission shuffles    *)

let test_report_byte_stability () =
  let mk code msg =
    Diagnostic.make ~file:"f.ntl" ~line:3 ~col:7 ~context:"u1" code "%s" msg
  in
  let base =
    [
      mk Diagnostic.PX503 "beta";
      mk Diagnostic.PX501 "alpha";
      mk Diagnostic.PX503 "alpha";
      mk Diagnostic.PX504 "zeta";
      mk Diagnostic.PX502 "mid";
    ]
  in
  let render l =
    let d = Diagnostic.sort l in
    ( Diagnostic.report_text d,
      Diagnostic.report_json_string d,
      Diagnostic.report_sarif_string d )
  in
  let t0, j0, s0 = render base in
  let rec rotations acc l n =
    if n = 0 then acc
    else
      match l with
      | [] -> acc
      | x :: tl -> rotations ((tl @ [ x ]) :: acc) (tl @ [ x ]) (n - 1)
  in
  List.iter
    (fun perm ->
      let t, j, s = render perm in
      Alcotest.(check string) "text bytes" t0 t;
      Alcotest.(check string) "json bytes" j0 j;
      Alcotest.(check string) "sarif bytes" s0 s)
    (List.rev base :: rotations [] base (List.length base - 1));
  (* same position, same code: the message is the final tiebreak *)
  match Diagnostic.sort [ mk Diagnostic.PX503 "b"; mk Diagnostic.PX503 "a" ] with
  | [ d1; d2 ] ->
    Alcotest.(check bool) "message order" true
      (d1.Diagnostic.message <= d2.Diagnostic.message)
  | _ -> Alcotest.fail "sort changed the count"

(* ------------------------------------------------------------------ *)
(* CLI surface: binary sniffing everywhere, glob code filters          *)

let cli =
  match
    List.find_opt Sys.file_exists
      [ "../bin/proxim_cli.exe"; "_build/default/bin/proxim_cli.exe" ]
  with
  | Some p -> p
  | None -> "proxim"

let demo_netlist =
  {|design sense_demo
input a q k r
output y z w
thresholds 1.263 3.737 5.0
cell u1 inv q -> qn
cell u2 nand2 a q -> x1
cell u3 nand2 a qn -> x2
cell u4 nand2 x1 x2 -> y
cell u5 nand2 a k -> c
cell u6 nand2 c x1 -> z
cell u7 nand2 r a -> w
end
|}

let demo_stimulus =
  "--pi a:rise:300:0 --pi r:rise:200:0 --pi r:fall:200:400 --const k=0"

let with_demo_files f =
  let file = Filename.temp_file "proxim_sense" ".ntl" in
  let bin = Filename.temp_file "proxim_sense" ".pxb" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ file; bin ])
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc demo_netlist);
      f file bin)

let run fmt =
  Printf.ksprintf
    (fun args -> Sys.command (Printf.sprintf "%s >/dev/null 2>&1" args))
    fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let capture cmd =
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  ignore (Unix.close_process_in ic);
  out

let test_cli_sense () =
  with_demo_files (fun file _bin ->
      let file = Filename.quote file in
      (* the demo's warnings (PX501, PX502) fail the run by default *)
      Alcotest.(check int) "warnings exit 1" 1
        (run "%s sense %s %s" cli file demo_stimulus);
      Alcotest.(check int) "--fail-on error passes" 0
        (run "%s sense %s %s --fail-on error" cli file demo_stimulus);
      (* --codes applies before --fail-on: keeping only infos passes *)
      Alcotest.(check int) "--codes filter applies before exit" 0
        (run "%s sense %s %s --codes PX503,PX504" cli file demo_stimulus);
      Alcotest.(check int) "--codes keeping a warning still fails" 1
        (run "%s sense %s %s --codes PX501" cli file demo_stimulus);
      Alcotest.(check int) "bare --codes prints the table" 0
        (run "%s sense %s --codes" cli file);
      Alcotest.(check int) "bad --const exits 2" 2
        (run "%s sense %s --const k=9" cli file);
      Alcotest.(check int) "bad --budget exits 2" 2
        (run "%s sense %s %s --budget 0" cli file demo_stimulus);
      Alcotest.(check int) "const/switch conflict exits 2" 2
        (run "%s sense %s --pi a:rise:300:0 --const a=1" cli file);
      (* sarif output is valid JSON carrying the expected rule ids *)
      let sarif =
        capture
          (Printf.sprintf "%s sense %s %s --format sarif --fail-on error" cli
             file demo_stimulus)
      in
      (match Proxim_lint.Json.of_string sarif with
      | Error m -> Alcotest.fail ("sarif is not valid JSON: " ^ m)
      | Ok _ -> ());
      List.iter
        (fun frag ->
          Alcotest.(check bool) (frag ^ " in sarif") true (contains sarif frag))
        [ "PX501"; "PX502"; "PX503"; "PX504"; "2.1.0" ];
      (* the --sense refinement flags run end to end *)
      Alcotest.(check int) "verify --sense" 0
        (run "%s verify %s --pi a:rise:300:0 --sense --fail-on error" cli file);
      Alcotest.(check int) "hazards --sense" 0
        (run "%s hazards %s --pi a:rise:300:0 --sense --fail-on error" cli file);
      Alcotest.(check int) "sta --sense" 0
        (run "%s sta %s --pi a:rise:300:0 --models synthetic --sense" cli file))

let test_cli_binary_sniffing () =
  with_demo_files (fun file bin ->
      let qfile = Filename.quote file and qbin = Filename.quote bin in
      Alcotest.(check int) "convert to binary" 0
        (run "%s convert %s %s" cli qfile qbin);
      (* every diagnostic subcommand routes on the magic bytes *)
      Alcotest.(check int) "lint reads binary" 0 (run "%s lint %s" cli qbin);
      Alcotest.(check int) "verify reads binary" 0
        (run "%s verify %s --pi a:rise:300:0 --fail-on error" cli qbin);
      Alcotest.(check int) "hazards reads binary" 0
        (run "%s hazards %s --pi a:rise:300:0 --fail-on error" cli qbin);
      Alcotest.(check int) "sense reads binary" 1
        (run "%s sense %s %s" cli qbin demo_stimulus);
      (* the binary analysis sees the same design: same finding set *)
      let of_text =
        capture
          (Printf.sprintf "%s sense %s %s --format json" cli qfile
             demo_stimulus)
      in
      let of_bin =
        capture
          (Printf.sprintf "%s sense %s %s --format json" cli qbin demo_stimulus)
      in
      List.iter
        (fun frag ->
          Alcotest.(check bool) (frag ^ " from binary") true
            (contains of_bin frag);
          Alcotest.(check bool) (frag ^ " from text") true
            (contains of_text frag))
        [ "PX501"; "PX502"; "PX503"; "PX504" ])

let test_cli_code_globs () =
  with_demo_files (fun file _bin ->
      let file = Filename.quote file in
      (* PX50? keeps the PX501/PX502 warnings: still fails *)
      Alcotest.(check int) "glob keeps warnings" 1
        (run "%s sense %s %s --codes 'PX50?'" cli file demo_stimulus);
      (* PX9* matches nothing: usage error *)
      Alcotest.(check int) "empty glob exits 2" 2
        (run "%s sense %s %s --codes 'PX9*'" cli file demo_stimulus);
      (* globs compose with exact names and apply before --fail-on *)
      Alcotest.(check int) "info-only selection passes" 0
        (run "%s sense %s %s --codes 'PX503,PX504'" cli file demo_stimulus);
      Alcotest.(check int) "lint glob" 0
        (run "%s lint %s --codes 'PX1*'" cli file);
      Alcotest.(check int) "verify glob" 0
        (run "%s verify %s --pi a:rise:300:0 --codes 'PX30?' --fail-on error"
           cli file);
      (* case-insensitive, like the exact-name path *)
      Alcotest.(check int) "lowercase glob" 1
        (run "%s sense %s %s --codes 'px50?'" cli file demo_stimulus))

let () =
  Alcotest.run "sense"
    [
      ( "ternary",
        [
          Alcotest.test_case "operators" `Quick test_ternary_ops;
          Alcotest.test_case "gate evaluation" `Quick test_eval_gate_exhaustive;
          Alcotest.test_case "stimuli projection" `Quick test_stimuli_of_events;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "demo activity" `Quick test_demo_activity;
          Alcotest.test_case "demo decisions" `Quick test_demo_decisions;
          Alcotest.test_case "oracle and mask" `Quick test_demo_oracle_and_mask;
          Alcotest.test_case "demo diagnostics" `Quick test_demo_diagnostics;
          Alcotest.test_case "budgets" `Quick test_budgets;
          Alcotest.test_case "fanin cone" `Quick test_fanin_cone;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "witness replay" `Quick test_witness_replay;
          Alcotest.test_case "unsensitizable never switches jointly" `Quick
            test_soundness_random;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "verify refine" `Quick test_verify_refine;
          Alcotest.test_case "hazard refine" `Quick test_hazard_refine;
        ] );
      ( "prune engine",
        [
          Alcotest.test_case "basics" `Quick test_prune_engine_basics;
          Alcotest.test_case "mask composition random" `Quick
            test_mask_composition_random;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "byte-stable reports" `Quick
            test_report_byte_stability;
        ] );
      ( "cli",
        [
          Alcotest.test_case "sense subcommand" `Quick test_cli_sense;
          Alcotest.test_case "binary sniffing" `Quick test_cli_binary_sniffing;
          Alcotest.test_case "code globs" `Quick test_cli_code_globs;
        ] );
    ]
