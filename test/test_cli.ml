(* The malformed-event matrix at the CLI boundary: every subcommand
   that accepts EDGE:TAU:T event specs (--event, --pi, --pi-all, --eco)
   routes them through one shared parser, so a malformed spec must
   produce the identical diagnostic and exit code 2 on every
   subcommand — no more per-command drift between "bad numbers in
   event", "... in pi event" and "... in pi-all event", or between
   exit 1 and exit 2. *)

let cli =
  match
    List.find_opt Sys.file_exists
      [ "../bin/proxim_cli.exe"; "_build/default/bin/proxim_cli.exe" ]
  with
  | Some p -> p
  | None -> "proxim"

(* cells only ever combine nets of the same level, so uniform primary
   input edges never produce mixed edges at any cell (the gates invert) *)
let netlist =
  {|design cli_demo
input a b c d
output y
thresholds 1.263 3.737 5.0
cell u1 nand2 a b -> n1
cell u2 nand2 c d -> n2
cell u3 nand2 n1 n2 -> y
end
|}

let with_netlist f =
  let file = Filename.temp_file "proxim_cli" ".ntl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc netlist);
      f (Filename.quote file))

(* run a command line, returning (exit code, stderr) *)
let run_err fmt =
  Printf.ksprintf
    (fun args ->
      let err = Filename.temp_file "proxim_cli" ".err" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
        (fun () ->
          let code =
            Sys.command
              (Printf.sprintf "%s >/dev/null 2>%s" args (Filename.quote err))
          in
          let text =
            String.trim (In_channel.with_open_text err In_channel.input_all)
          in
          (code, text)))
    fmt

(* every subcommand × way of smuggling in the same broken event spec *)
let matrix file =
  [
    ("proximity EVENT", Printf.sprintf "proximity nand2 a:%s");
    ("sta --pi", Printf.sprintf "sta %s --models synthetic --pi a:%s" file);
    ( "sta --eco",
      Printf.sprintf
        "sta %s --models synthetic --pi a:fall:400:0 --eco pi:a:%s" file );
    ("verify --pi", Printf.sprintf "verify %s --pi a:%s" file);
    ("hazards --pi", Printf.sprintf "hazards %s --pi a:%s" file);
    ("sense --pi", Printf.sprintf "sense %s --pi a:%s" file);
    ("profile --pi", Printf.sprintf "profile %s --pi a:%s" file);
  ]

let check_uniform ~ctx ~spec ~expect_msg file =
  let results =
    List.map
      (fun (name, cmd) ->
        let code, err = run_err "%s %s" cli (cmd spec) in
        (name, code, err))
      (matrix file)
  in
  List.iter
    (fun (name, code, err) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: %s exits 2" ctx name)
        2 code;
      Alcotest.(check string)
        (Printf.sprintf "%s: %s message" ctx name)
        expect_msg err)
    results

let test_bad_numbers_uniform () =
  with_netlist (fun file ->
      check_uniform ~ctx:"bad tau" ~spec:"fall:abc:0"
        ~expect_msg:"bad numbers in event a:fall:abc:0" file;
      check_uniform ~ctx:"bad time" ~spec:"fall:400:xyz"
        ~expect_msg:"bad numbers in event a:fall:400:xyz" file)

let test_bad_edge_uniform () =
  with_netlist
    (check_uniform ~ctx:"bad edge" ~spec:"sideways:400:0"
       ~expect_msg:"unknown edge sideways (rise|fall)")

(* shape errors keep their per-spec-kind wording (each names its own
   expected grammar) but still exit 2 everywhere *)
let test_wrong_shape_exits_2 () =
  with_netlist (fun file ->
      List.iter
        (fun (name, cmd) ->
          let code, err = run_err "%s %s" cli (cmd "fall:400") in
          Alcotest.(check int)
            (Printf.sprintf "shape: %s exits 2" name)
            2 code;
          Alcotest.(check bool)
            (Printf.sprintf "shape: %s says bad ...: %s" name err)
            true
            (String.length err > 0))
        (matrix file);
      (* --pi-all has its own 3-field shape; a 4-field spec is malformed *)
      let code, _ = run_err "%s sta %s --models synthetic --pi-all a:fall:400:0" cli file in
      Alcotest.(check int) "sta --pi-all shape exits 2" 2 code;
      let code, err = run_err "%s sta %s --models synthetic --pi-all fall:nan:oops" cli file in
      Alcotest.(check int) "sta --pi-all bad numbers exits 2" 2 code;
      Alcotest.(check string) "sta --pi-all same message"
        "bad numbers in event fall:nan:oops" err)

let test_missing_events_exit_2 () =
  with_netlist (fun file ->
      let code, _ = run_err "%s sta %s --models synthetic" cli file in
      Alcotest.(check int) "sta with no events" 2 code;
      let code, _ = run_err "%s proximity nand2" cli in
      Alcotest.(check int) "proximity with no events" 2 code;
      let code, _ = run_err "%s profile %s" cli file in
      Alcotest.(check int) "profile with no events" 2 code)

(* the well-formed path still works end to end after the refactor *)
let test_valid_events_accepted () =
  with_netlist (fun file ->
      let code, err =
        run_err
          "%s sta %s --models synthetic --pi a:fall:400:0 --pi b:fall:300:50"
          cli file
      in
      Alcotest.(check string) "no stderr" "" err;
      Alcotest.(check int) "sta accepts valid events" 0 code;
      let code, _ =
        run_err
          "%s sta %s --models synthetic --pi-all fall:400:0 --eco \
           pi:a:fall:350:20"
          cli file
      in
      Alcotest.(check int) "pi-all + eco accepted" 0 code)

let () =
  Alcotest.run "cli"
    [
      ( "malformed-events",
        [
          Alcotest.test_case "bad numbers: one message, exit 2" `Quick
            test_bad_numbers_uniform;
          Alcotest.test_case "bad edge: one message, exit 2" `Quick
            test_bad_edge_uniform;
          Alcotest.test_case "wrong shape exits 2" `Quick
            test_wrong_shape_exits_2;
          Alcotest.test_case "missing events exit 2" `Quick
            test_missing_events_exit_2;
        ] );
      ( "well-formed",
        [
          Alcotest.test_case "valid events accepted" `Quick
            test_valid_events_accepted;
        ] );
    ]
