(* Static sensitization analysis: a ternary (0/1/X) constant-propagation
   and activity pass over the timing-graph IR, plus a bounded implication
   engine deciding per-pair static sensitization by exhaustive
   enumeration of the quiet-input support of the pair's fanin cone.
   Pure logic — no macromodels, no simulator.  See the .mli for the
   semantic contract and the soundness notes. *)

module Measure = Proxim_measure.Measure
module Gate = Proxim_gates.Gate
module Graph = Proxim_timing.Graph
module Design = Proxim_sta.Design
module Diagnostic = Proxim_lint.Diagnostic
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics

let c_pairs = Metrics.Counter.v "sense.pairs_classified"
let c_unsens = Metrics.Counter.v "sense.pairs_unsensitizable"
let c_exhausted = Metrics.Counter.v "sense.pairs_exhausted"
let c_constants = Metrics.Counter.v "sense.constant_nets"

(* --- ternary logic ------------------------------------------------------ *)

type logic = L0 | L1 | LX

let logic_name = function L0 -> "0" | L1 -> "1" | LX -> "x"
let not3 = function L0 -> L1 | L1 -> L0 | LX -> LX

let and3 a b =
  match (a, b) with L0, _ | _, L0 -> L0 | L1, L1 -> L1 | _ -> LX

let or3 a b =
  match (a, b) with L1, _ | _, L1 -> L1 | L0, L0 -> L0 | _ -> LX

(* Does the pull-down network conduct?  Series stacks need every leg
   (AND), parallel branches any (OR); an NMOS gate conducts on 1.  The
   short-circuit on a definite controlling value IS the §3 skip branch
   decided statically: one definite 0 in a series stack absorbs the
   rest. *)
let rec conducts3 nw ~value =
  match nw with
  | Gate.Pin p -> value p
  | Gate.Series l ->
    List.fold_left
      (fun acc c -> if acc = L0 then L0 else and3 acc (conducts3 c ~value))
      L1 l
  | Gate.Parallel l ->
    List.fold_left
      (fun acc c -> if acc = L1 then L1 else or3 acc (conducts3 c ~value))
      L0 l

let eval_gate (g : Gate.t) value = not3 (conducts3 g.Gate.pulldown ~value)

let rec conducts_bool nw ~value =
  match nw with
  | Gate.Pin p -> value p
  | Gate.Series l -> List.for_all (fun c -> conducts_bool c ~value) l
  | Gate.Parallel l -> List.exists (fun c -> conducts_bool c ~value) l

let eval_gate_bool (g : Gate.t) value =
  not (conducts_bool g.Gate.pulldown ~value)

(* --- inputs ------------------------------------------------------------- *)

type stimulus = Switch of Measure.edge | Pulse | Const of bool

let stimuli_of_events ?(consts = []) events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Proxim_verify.Verify.pi_event) ->
      let net = ev.Proxim_verify.Verify.ev_net in
      let edge = ev.Proxim_verify.Verify.ev_edge in
      match Hashtbl.find_opt tbl net with
      | None -> Hashtbl.replace tbl net (Switch edge)
      | Some (Switch e) when e <> edge -> Hashtbl.replace tbl net Pulse
      | Some _ -> ())
    events;
  let eventful =
    Hashtbl.fold (fun net st acc -> (net, st) :: acc) tbl []
    (* hash order is unspecified; report orders must not depend on it *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (net, _) ->
      if Hashtbl.mem tbl net then
        invalid_arg
          (Printf.sprintf
             "Sense.stimuli_of_events: net %s is both pinned constant and \
              switching"
             net))
    consts;
  eventful @ List.map (fun (net, b) -> (net, Const b)) consts

(* --- results ------------------------------------------------------------ *)

type activity = {
  act_init : logic;
  act_final : logic;
  act_steady : bool;
  act_active : bool;
  act_may_rise : bool;
  act_may_fall : bool;
  act_may_pulse : bool;
}

type decision =
  | Sensitizable of (string * bool) list
  | Unsensitizable of string
  | Exhausted of string

type pair_info = {
  sp_a : int;
  sp_b : int;
  sp_support : string list;
  sp_cone_cells : int;
  sp_decision : decision;
}

type cell_info = {
  sc_name : string;
  sc_gate : string;
  sc_active : int list;
  sc_pairs : pair_info list;
  sc_false_path : bool;
}

type t = {
  s_design : Design.t;
  s_acts : activity array;  (* per net id *)
  s_cells : cell_info option array;  (* per cell id; >= 2 active inputs *)
  s_constants : (string * bool) list;
  s_prunable : bool array;  (* per cell id: <= 1 event-bearing input *)
}

(* --- the activity pass -------------------------------------------------- *)

let quiet_activity =
  {
    act_init = LX;
    act_final = LX;
    act_steady = true;
    act_active = false;
    act_may_rise = false;
    act_may_fall = false;
    act_may_pulse = false;
  }

let pi_activity = function
  | None -> quiet_activity
  | Some (Switch Measure.Rise) ->
    {
      act_init = L0;
      act_final = L1;
      act_steady = false;
      act_active = true;
      act_may_rise = true;
      act_may_fall = false;
      act_may_pulse = false;
    }
  | Some (Switch Measure.Fall) ->
    {
      act_init = L1;
      act_final = L0;
      act_steady = false;
      act_active = true;
      act_may_rise = false;
      act_may_fall = true;
      act_may_pulse = false;
    }
  | Some Pulse ->
    {
      act_init = LX;
      act_final = LX;
      act_steady = false;
      act_active = true;
      act_may_rise = false;
      act_may_fall = false;
      act_may_pulse = true;
    }
  | Some (Const b) ->
    {
      quiet_activity with
      act_init = (if b then L1 else L0);
      act_final = (if b then L1 else L0);
    }

let cell_activity g c acts =
  let cell : Design.cell = Graph.payload g c in
  let inputs = Graph.cell_inputs g c in
  let input_act pin = acts.(inputs.(pin)) in
  let init = eval_gate cell.Design.gate (fun p -> (input_act p).act_init) in
  let final = eval_gate cell.Design.gate (fun p -> (input_act p).act_final) in
  let n = Array.length inputs in
  let exists f =
    let rec go i = i < n && (f (input_act i) || go (i + 1)) in
    go 0
  in
  let for_all f = not (exists (fun a -> not (f a))) in
  let active = exists (fun a -> a.act_active) in
  let definite_equal = init = final && init <> LX in
  let steady = for_all (fun a -> a.act_steady) || definite_equal in
  (* inverting gates: output completes a rise from falling inputs, a fall
     from rising ones; a steady output completes neither *)
  let may_rise = (not steady) && exists (fun a -> a.act_may_fall) in
  let may_fall = (not steady) && exists (fun a -> a.act_may_rise) in
  (* a pulse reaches the output through any pulsing input, or from
     opposing completed transitions reconverging on two distinct pins *)
  let opposing =
    let up = ref false and down = ref false and both = ref 0 in
    Array.iter
      (fun net ->
        let a = acts.(net) in
        if a.act_may_rise && a.act_may_fall then incr both
        else if a.act_may_rise then up := true
        else if a.act_may_fall then down := true)
      inputs;
    (!up && !down) || (!both >= 2)
    || (!both >= 1 && (!up || !down))
  in
  let may_pulse = exists (fun a -> a.act_may_pulse) || opposing in
  {
    act_init = init;
    act_final = final;
    act_steady = steady;
    act_active = active;
    act_may_rise = may_rise;
    act_may_fall = may_fall;
    act_may_pulse = may_pulse;
  }

(* --- the implication engine --------------------------------------------- *)

let default_budget = 128
let default_max_support = 10

exception Cone_too_big

(* the pair's fanin cone in topological order (drivers first), or None
   past the budget — DFS with a local seen table so a big design does
   not pay an O(cells) allocation per pair *)
let bounded_cone g ~budget roots =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      if Hashtbl.length seen > budget then raise Cone_too_big;
      Array.iter
        (fun net ->
          let d = Graph.driver_id g ~net in
          if d >= 0 then visit d)
        (Graph.cell_inputs g c);
      order := c :: !order
    end
  in
  match List.iter visit roots with
  | () -> Some (List.rev !order)
  | exception Cone_too_big -> None

let cube_string support bits =
  if support = [] then "(empty cube)"
  else
    String.concat " "
      (List.mapi
         (fun i net ->
           Printf.sprintf "%s=%d" net (if bits land (1 lsl i) <> 0 then 1 else 0))
         support)

(* Decide one net pair: does any assignment of the free (quiet or pulse)
   primary inputs in the cone make both nets change value between the
   frames?  Exhaustive over the support, exact boolean two-frame
   evaluation per cube. *)
let decide_nets g ~stim ~acts ~budget ~max_support ~init_val ~final_val na nb =
  let taint net =
    if acts.(net).act_may_pulse then
      Some
        (Printf.sprintf
           "a pulse can reach net %s — the two-frame argument proves nothing"
           (Graph.net_name g net))
    else None
  in
  match (taint na, taint nb) with
  | Some r, _ | _, Some r -> ([], 0, Exhausted r)
  | None, None -> (
    let roots =
      List.filter (fun d -> d >= 0)
        [ Graph.driver_id g ~net:na; Graph.driver_id g ~net:nb ]
    in
    match bounded_cone g ~budget roots with
    | None ->
      ( [],
        budget,
        Exhausted
          (Printf.sprintf "fanin cone exceeds the %d-cell budget" budget) )
    | Some cone ->
      let n_cone = List.length cone in
      (* primary-input nets the cone (or the pins themselves) read; free
         ones form the enumeration support *)
      let pi_nets = Hashtbl.create 16 in
      let note net =
        if Graph.driver_id g ~net < 0 then Hashtbl.replace pi_nets net ()
      in
      note na;
      note nb;
      List.iter
        (fun c -> Array.iter note (Graph.cell_inputs g c))
        cone;
      let free net =
        match Hashtbl.find_opt stim net with
        | None | Some Pulse -> true
        | Some (Switch _) | Some (Const _) -> false
      in
      let support =
        Hashtbl.fold (fun net () acc -> if free net then net :: acc else acc)
          pi_nets []
        |> List.sort compare
      in
      let support_names = List.map (Graph.net_name g) support in
      let k = List.length support in
      if k > max_support then
        ( support_names,
          n_cone,
          Exhausted
            (Printf.sprintf "support of %d free inputs exceeds the %d limit"
               k max_support) )
      else begin
        let eval bits =
          Hashtbl.iter
            (fun net () ->
              let iv, fv =
                match Hashtbl.find_opt stim net with
                | Some (Switch Measure.Rise) -> (false, true)
                | Some (Switch Measure.Fall) -> (true, false)
                | Some (Const b) -> (b, b)
                | Some Pulse | None ->
                  (* free: the cube bit, identical in both frames *)
                  let rec index i = function
                    | [] -> assert false
                    | n :: _ when n = net -> i
                    | _ :: tl -> index (i + 1) tl
                  in
                  let b = bits land (1 lsl index 0 support) <> 0 in
                  (b, b)
              in
              init_val.(net) <- iv;
              final_val.(net) <- fv)
            pi_nets;
          List.iter
            (fun c ->
              let cell : Design.cell = Graph.payload g c in
              let inputs = Graph.cell_inputs g c in
              let out = Graph.cell_output g c in
              init_val.(out) <-
                eval_gate_bool cell.Design.gate (fun p ->
                  init_val.(inputs.(p)));
              final_val.(out) <-
                eval_gate_bool cell.Design.gate (fun p ->
                  final_val.(inputs.(p))))
            cone;
          ( init_val.(na) <> final_val.(na),
            init_val.(nb) <> final_val.(nb) )
        in
        let cubes = 1 lsl k in
        let first_a = ref (-1) and first_b = ref (-1) in
        let joint = ref (-1) in
        let bits = ref 0 in
        while !joint < 0 && !bits < cubes do
          let sa, sb = eval !bits in
          if sa && !first_a < 0 then first_a := !bits;
          if sb && !first_b < 0 then first_b := !bits;
          if sa && sb then joint := !bits;
          incr bits
        done;
        let name n = Graph.net_name g n in
        let decision =
          if !joint >= 0 then
            Sensitizable
              (List.mapi
                 (fun i net ->
                   (Graph.net_name g net, !joint land (1 lsl i) <> 0))
                 support)
          else if !first_a < 0 then
            Unsensitizable
              (Printf.sprintf "net %s changes under none of the %d support \
                               cubes" (name na) cubes)
          else if !first_b < 0 then
            Unsensitizable
              (Printf.sprintf "net %s changes under none of the %d support \
                               cubes" (name nb) cubes)
          else begin
            (* each pin can switch alone, never jointly: exhibit a cube
               switching [na] while [nb] holds *)
            let _, _ = eval !first_a in
            let held = if final_val.(nb) then "1" else "0" in
            Unsensitizable
              (Printf.sprintf
                 "nets %s and %s never change together over %d cubes: %s \
                  switches %s but holds %s at %s"
                 (name na) (name nb) cubes
                 (cube_string support_names !first_a)
                 (name na) (name nb) held)
          end
        in
        (support_names, n_cone, decision)
      end)

(* --- analysis ----------------------------------------------------------- *)

let analyze ?(budget = default_budget) ?(max_support = default_max_support)
    design ~pi =
  Trace.with_span ~cat:"sense" "sense.analyze" @@ fun () ->
  if budget <= 0 then invalid_arg "Sense.analyze: budget must be positive";
  if max_support < 0 then
    invalid_arg "Sense.analyze: max_support must be nonnegative";
  let g = Design.graph design in
  let n_nets = Graph.net_count g in
  let n_cells = Graph.cell_count g in
  (* stimuli, keyed by net id; unknown nets are inert like Sta.analyze *)
  let stim = Hashtbl.create 16 in
  List.iter
    (fun (net, st) ->
      match Graph.net_id g net with
      | None -> ()
      | Some id ->
        if Graph.driver_id g ~net:id >= 0 then
          invalid_arg
            (Printf.sprintf "Sense.analyze: stimulus on cell-driven net %s"
               net);
        Hashtbl.replace stim id st)
    pi;
  (* forward ternary/activity pass *)
  let acts = Array.make n_nets quiet_activity in
  Array.iter
    (fun net -> acts.(net) <- pi_activity (Hashtbl.find_opt stim net))
    (Graph.primary_inputs g);
  Array.iter
    (fun c -> acts.(Graph.cell_output g c) <- cell_activity g c acts)
    (Graph.topological g);
  (* derived constants: cell-driven, event-bearing, pinned definite *)
  let constants =
    Array.to_list (Graph.topological g)
    |> List.filter_map (fun c ->
         let o = Graph.cell_output g c in
         let a = acts.(o) in
         if a.act_active && a.act_init = a.act_final && a.act_init <> LX
         then Some (Graph.net_name g o, a.act_init = L1)
         else None)
  in
  Metrics.Counter.add c_constants (List.length constants);
  (* implication pass over cells with >= 2 event-bearing inputs *)
  let init_val = Array.make n_nets false in
  let final_val = Array.make n_nets false in
  let memo = Hashtbl.create 64 in
  let decide na nb =
    let key = (min na nb, max na nb) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let r =
        decide_nets g ~stim ~acts ~budget ~max_support ~init_val ~final_val
          na nb
      in
      Hashtbl.replace memo key r;
      r
  in
  let prunable = Array.make n_cells false in
  let infos = Array.make n_cells None in
  Array.iter
    (fun c ->
      let cell : Design.cell = Graph.payload g c in
      let inputs = Graph.cell_inputs g c in
      let active_pins = ref [] in
      Array.iteri
        (fun pin net ->
          if acts.(net).act_active then active_pins := pin :: !active_pins)
        inputs;
      let active = List.rev !active_pins in
      if List.length active <= 1 then prunable.(c) <- true
      else begin
        let pairs = ref [] in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if j > i then begin
                  let support, cone, decision =
                    decide inputs.(a) inputs.(b)
                  in
                  Metrics.Counter.incr c_pairs;
                  (match decision with
                   | Unsensitizable _ -> Metrics.Counter.incr c_unsens
                   | Exhausted _ -> Metrics.Counter.incr c_exhausted
                   | Sensitizable _ -> ());
                  pairs :=
                    {
                      sp_a = a;
                      sp_b = b;
                      sp_support = support;
                      sp_cone_cells = cone;
                      sp_decision = decision;
                    }
                    :: !pairs
                end)
              active)
          active;
        let pairs = List.rev !pairs in
        let false_path =
          pairs <> []
          && List.for_all
               (fun p ->
                 match p.sp_decision with
                 | Unsensitizable _ -> true
                 | _ -> false)
               pairs
        in
        infos.(c) <-
          Some
            {
              sc_name = cell.Design.name;
              sc_gate = cell.Design.gate.Gate.name;
              sc_active = active;
              sc_pairs = pairs;
              sc_false_path = false_path;
            }
      end)
    (Graph.topological g);
  {
    s_design = design;
    s_acts = acts;
    s_cells = infos;
    s_constants = constants;
    s_prunable = prunable;
  }

(* --- accessors ---------------------------------------------------------- *)

let design t = t.s_design

let activity t ~net =
  Option.map
    (fun id -> t.s_acts.(id))
    (Graph.net_id (Design.graph t.s_design) net)

let constants t = t.s_constants

let cell_info t ~cell =
  Option.bind (Graph.cell_id (Design.graph t.s_design) cell) (fun id ->
    t.s_cells.(id))

let cells t =
  Array.to_list (Graph.topological (Design.graph t.s_design))
  |> List.filter_map (fun c -> t.s_cells.(c))

type summary = {
  total_cells : int;
  classified_cells : int;
  pairs : int;
  sensitizable : int;
  unsensitizable : int;
  exhausted : int;
  constant_nets : int;
  false_path_cells : int;
  prunable_cells : int;
}

let summary t =
  let acc =
    ref
      {
        total_cells = Array.length t.s_cells;
        classified_cells = 0;
        pairs = 0;
        sensitizable = 0;
        unsensitizable = 0;
        exhausted = 0;
        constant_nets = List.length t.s_constants;
        false_path_cells = 0;
        prunable_cells = 0;
      }
  in
  Array.iter
    (fun b -> if b then acc := { !acc with prunable_cells = !acc.prunable_cells + 1 })
    t.s_prunable;
  Array.iter
    (function
      | None -> ()
      | Some ci ->
        let a = !acc in
        let a =
          {
            a with
            classified_cells = a.classified_cells + 1;
            false_path_cells =
              (a.false_path_cells + if ci.sc_false_path then 1 else 0);
          }
        in
        acc :=
          List.fold_left
            (fun a p ->
              let a = { a with pairs = a.pairs + 1 } in
              match p.sp_decision with
              | Sensitizable _ -> { a with sensitizable = a.sensitizable + 1 }
              | Unsensitizable _ ->
                { a with unsensitizable = a.unsensitizable + 1 }
              | Exhausted _ -> { a with exhausted = a.exhausted + 1 })
            a ci.sc_pairs)
    t.s_cells;
  !acc

(* --- consumers ---------------------------------------------------------- *)

let prune_mask t =
  let prunable = Hashtbl.create 64 in
  let g = Design.graph t.s_design in
  Array.iteri
    (fun c p -> if p then Hashtbl.replace prunable (Graph.cell_name g c) ())
    t.s_prunable;
  fun (cell : Design.cell) -> Hashtbl.mem prunable cell.Design.name

let pair_unsensitizable t ~cell ~a ~b =
  let g = Design.graph t.s_design in
  match Graph.cell_id g cell with
  | None -> false
  | Some id ->
    let inputs = Graph.cell_inputs g id in
    let n = Array.length inputs in
    if a < 0 || b < 0 || a >= n || b >= n then false
    else begin
      (* a pin whose net is provably inert (no event, no pulse) can
         never pair with anything *)
      let inert pin =
        let act = t.s_acts.(inputs.(pin)) in
        (not act.act_active) && not act.act_may_pulse
      in
      if inert a || inert b then true
      else
        match t.s_cells.(id) with
        | None -> false
        | Some ci ->
          let lo = min a b and hi = max a b in
          List.exists
            (fun p ->
              p.sp_a = lo && p.sp_b = hi
              &&
              match p.sp_decision with
              | Unsensitizable _ -> true
              | _ -> false)
            ci.sc_pairs
    end

let check ?file t =
  Trace.with_span ~cat:"sense" "sense.check" @@ fun () ->
  let g = Design.graph t.s_design in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (net, v) ->
      let consumers =
        match Graph.net_id g net with
        | None -> []
        | Some id ->
          Array.to_list (Graph.readers g ~net:id)
          |> List.filter_map (fun (c, _) ->
               if t.s_cells.(c) <> None then Some (Graph.cell_name g c)
               else None)
          |> List.sort_uniq compare
      in
      if consumers <> [] then
        add
          (Diagnostic.make ?file ~context:net Diagnostic.PX501
             "net %s is statically constant %d (ternary constant \
              propagation) yet structurally carries an event — proximity \
              pairs involving it at %s are false"
             net
             (if v then 1 else 0)
             (String.concat ", " consumers)))
    t.s_constants;
  Array.iter
    (function
      | None -> ()
      | Some ci ->
        if ci.sc_false_path then
          add
            (Diagnostic.make ?file ~context:ci.sc_name Diagnostic.PX502
               "all %d event-bearing input pairs are statically \
                unsensitizable — the multi-input proximity arc through \
                this cell is a false path"
               (List.length ci.sc_pairs));
        List.iter
          (fun p ->
            match p.sp_decision with
            | Unsensitizable why ->
              add
                (Diagnostic.make ?file ~context:ci.sc_name Diagnostic.PX503
                   "pins %d and %d pruned by implication: %s" p.sp_a p.sp_b
                   why)
            | Exhausted why ->
              add
                (Diagnostic.make ?file ~context:ci.sc_name Diagnostic.PX504
                   "pins %d and %d: implication budget exhausted (%s) — \
                    the pair conservatively stays sensitizable"
                   p.sp_a p.sp_b why)
            | Sensitizable _ -> ())
          ci.sc_pairs)
    t.s_cells;
  Diagnostic.sort !diags

let report_text t =
  let s = summary t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "sensitization: %d of %d cells classified; %d pairs — %d \
        sensitizable, %d unsensitizable, %d exhausted; %d derived \
        constants, %d false-path cells, %d prunable cells\n"
       s.classified_cells s.total_cells s.pairs s.sensitizable
       s.unsensitizable s.exhausted s.constant_nets s.false_path_cells
       s.prunable_cells);
  List.iter
    (fun (net, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  const %-12s = %d\n" net (if v then 1 else 0)))
    t.s_constants;
  List.iter
    (fun ci ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %-6s active pins [%s]%s\n" ci.sc_name
           ci.sc_gate
           (String.concat " " (List.map string_of_int ci.sc_active))
           (if ci.sc_false_path then "  FALSE PATH" else ""));
      List.iter
        (fun p ->
          let verdict, detail =
            match p.sp_decision with
            | Sensitizable cube ->
              ( "sensitizable",
                if cube = [] then "(no free inputs)"
                else
                  String.concat " "
                    (List.map
                       (fun (n, b) ->
                         Printf.sprintf "%s=%d" n (if b then 1 else 0))
                       cube) )
            | Unsensitizable why -> ("unsensitizable", why)
            | Exhausted why -> ("exhausted", why)
          in
          Buffer.add_string buf
            (Printf.sprintf "    (%d,%d) %-14s %s\n" p.sp_a p.sp_b verdict
               detail))
        ci.sc_pairs)
    (cells t);
  Buffer.contents buf
