(** Static sensitization analysis: ternary constant propagation and a
    bounded implication engine over the timing-graph IR.

    The timing analyses so far ([Proxim_verify], [Proxim_hazard]) reason
    about {e windows}: two inputs of a gate are proximity-suspect when
    their arrival intervals can overlap.  This module adds the missing
    {e logic} dimension.  Under the two-frame semantics of a single
    input vector — every net has a boolean value before any event
    ([init]) and after all events settle ([final]) — three questions
    become decidable:

    - {b Constants.}  A forward pass propagates three-valued (0/1/X)
      values per frame through the {!Proxim_gates.Gate.t} series/parallel
      semantics.  Controlling values absorb: a definite 0 on one NAND
      input pins the output at 1 whatever the others do — exactly the
      skip branch of the paper's §3 fold, decided statically.  Nets
      definite and equal in both frames are statically constant.
    - {b Activity.}  The same pass tracks which nets are structurally
      {e event-bearing} (reachable from a switching primary input the
      way the event-driven STA propagates events), which possible
      completed-transition polarities they carry, and whether a pulse
      (an excursion that returns to its resting level) can reach them.
    - {b Sensitization.}  For every cell with at least two event-bearing
      inputs, each input pair is classified: does {e any} consistent
      assignment of the free (quiet) primary inputs make both pins
      change value?  The engine enumerates the quiet support of the
      pair's fanin cone exhaustively — bounded recursive learning with
      an explicit budget, no SAT dependency — and answers
      {!Sensitizable} with a witness cube, {!Unsensitizable} with the
      blocking implication, or {!Exhausted} (conservatively unknown)
      when the cone or support outgrows the budget.

    Products: a {!prune_mask} source for the fused {!Proxim_sta.Prune.t}
    (the {e structural} projection — see the soundness note there), the
    [unsensitizable] oracles behind [Proxim_verify.Verify.refine] and
    [Proxim_hazard.Hazard.refine] (false-path May-to-Never conversion),
    and the PX5xx diagnostics. *)

(** {1 Ternary logic} *)

type logic = L0 | L1 | LX
(** Kleene three-valued logic; [LX] is "unknown", not "illegal". *)

val logic_name : logic -> string
(** ["0"], ["1"], ["x"]. *)

val not3 : logic -> logic
val and3 : logic -> logic -> logic
val or3 : logic -> logic -> logic

val eval_gate : Proxim_gates.Gate.t -> (int -> logic) -> logic
(** Ternary output of a static CMOS gate: the complement of whether the
    pull-down network conducts (Series = AND, Parallel = OR over the
    NMOS gates).  Exact for every gate the netlists can instantiate. *)

val eval_gate_bool : Proxim_gates.Gate.t -> (int -> bool) -> bool
(** The boolean restriction of {!eval_gate} — the concrete evaluator
    the implication engine and the randomized soundness draws share. *)

(** {1 Inputs} *)

type stimulus =
  | Switch of Proxim_measure.Measure.edge
      (** a definite transition: 0 to 1 ([Rise]) or 1 to 0 ([Fall]) *)
  | Pulse
      (** an excursion that returns to its (unknown) resting level —
          how a both-windows hazard stimulus reaches this analysis *)
  | Const of bool
      (** pinned at a level in both frames (the [--const] flag) *)

val stimuli_of_events :
  ?consts:(string * bool) list ->
  Proxim_verify.Verify.pi_event list ->
  (string * stimulus) list
(** Project interval events onto logic stimuli: a net with one event
    becomes [Switch] of its edge, a net with events of both edges (a
    pulse pair) becomes [Pulse].  [consts] are appended.  Raises
    [Invalid_argument] when a net is both pinned and switching. *)

(** {1 Results} *)

type activity = {
  act_init : logic;  (** ternary value before any event *)
  act_final : logic;  (** ternary value after all events settle *)
  act_steady : bool;
      (** provably no init-to-final value change (all fanin steady, or
          both frames definite and equal).  A steady net can still carry
          a pulse — see [act_may_pulse]. *)
  act_active : bool;
      (** structurally event-bearing: the event-driven STA places an
          event here (reachable from a switching primary input).  The
          STA is logic-blind, so this — not [act_steady] — is what the
          bit-identical prune mask may use. *)
  act_may_rise : bool;  (** a completed rising transition is possible *)
  act_may_fall : bool;
  act_may_pulse : bool;
      (** a pulse can reach this net: a [Pulse] stimulus, or
          opposing-polarity events reconverging at some driver in the
          fanin — on such nets the two-frame argument proves nothing *)
}

type decision =
  | Sensitizable of (string * bool) list
      (** witness cube: an assignment of the free support inputs under
          which both pins switch *)
  | Unsensitizable of string
      (** proven impossible; carries the human-readable blocking
          implication (the PX503 witness) *)
  | Exhausted of string
      (** budget or pulse-taint bailout; conservatively sensitizable
          (the PX504 reason) *)

type pair_info = {
  sp_a : int;  (** pin id, [sp_a < sp_b] *)
  sp_b : int;
  sp_support : string list;
      (** the free primary inputs enumerated (empty when every cone
          input is pinned) *)
  sp_cone_cells : int;  (** fanin-cone size the budget was charged *)
  sp_decision : decision;
}

type cell_info = {
  sc_name : string;
  sc_gate : string;
  sc_active : int list;  (** event-bearing input pins, pin order *)
  sc_pairs : pair_info list;  (** unordered active pairs, [(a, b)] with [a < b] *)
  sc_false_path : bool;
      (** at least one pair and every pair {!Unsensitizable}: the
          multi-input proximity interaction here is a false path — the
          PX502 trigger *)
}

type t
(** A completed sensitization analysis. *)

(** {1 Analysis} *)

val default_budget : int
(** Fanin-cone cell limit per pair before {!Exhausted} (128). *)

val default_max_support : int
(** Free-input limit per pair before {!Exhausted} (10, i.e. at most
    1024 enumerated cubes). *)

val analyze :
  ?budget:int ->
  ?max_support:int ->
  Proxim_sta.Design.t ->
  pi:(string * stimulus) list ->
  t
(** One topological ternary pass plus a per-pair implication pass.
    Primary inputs absent from [pi] are free (quiet at an unknown
    level); stimuli naming nets unknown to the design are inert, like
    {!Proxim_sta.Sta.analyze}; stimuli on cell-driven nets raise
    [Invalid_argument].  No macromodels are consulted — this is pure
    logic.  Raises [Invalid_argument] on a non-positive budget. *)

val design : t -> Proxim_sta.Design.t

val activity : t -> net:string -> activity option
(** [None] for nets unknown to the design. *)

val constants : t -> (string * bool) list
(** Statically-constant {e derived} nets, topological order: cell-driven,
    event-bearing (the STA thinks they switch), both frames pinned to
    the same definite value by constant propagation.  Primary-input
    constants the user declared are not repeated here. *)

val cell_info : t -> cell:string -> cell_info option
(** [None] for unknown cells and cells with fewer than two event-bearing
    inputs. *)

val cells : t -> cell_info list
(** Every classified cell (two or more event-bearing inputs),
    topological order. *)

type summary = {
  total_cells : int;
  classified_cells : int;  (** cells with >= 2 event-bearing inputs *)
  pairs : int;
  sensitizable : int;
  unsensitizable : int;
  exhausted : int;
  constant_nets : int;
  false_path_cells : int;
  prunable_cells : int;  (** cells the {!prune_mask} covers *)
}

val summary : t -> summary

(** {1 Consumers} *)

val prune_mask : t -> Proxim_sta.Design.cell -> bool
(** The sense source for {!Proxim_sta.Prune.make}'s [~unsensitizable]:
    [true] for cells with at most one event-bearing input.  This is
    deliberately the {e structural} projection of the analysis: the
    event-driven STA propagates events without consulting logic, so a
    cell whose §3 fold the implication engine proved logically
    unsensitizable still {e evaluates} both events — only cells where at
    most one event can structurally arrive degenerate bit-identically to
    the single-input fast path.  The implication results instead refine
    the [Verify]/[Hazard] verdicts (see {!pair_unsensitizable}) and feed
    the PX5xx diagnostics.  Only valid while the switching/quiet status
    of every primary input matches what {!analyze} was given. *)

val pair_unsensitizable : t -> cell:string -> a:int -> b:int -> bool
(** The oracle for [Proxim_verify.Verify.refine] and
    [Proxim_hazard.Hazard.refine]: [true] when pins [a] and [b] of
    [cell] (either order) can never both carry events — the pair was
    proven {!Unsensitizable}, or one pin's net is provably inert (not
    event-bearing and pulse-free).  [false] for unknown cells/pins and
    {!Exhausted} pairs — never guesses. *)

val check : ?file:string -> t -> Proxim_lint.Diagnostic.t list
(** The PX5xx findings, sorted: [PX501] per derived constant net feeding
    a classified cell, [PX502] per false-path cell, [PX503] per
    unsensitizable pair (witness in the message), [PX504] per exhausted
    pair. *)

val report_text : t -> string
(** Human summary: classification counts, derived constants, then the
    classified cells with their pair verdicts. *)
