(** A process-wide metrics registry: named counters, gauges and latency
    histograms, with text and JSON reporters.

    Hot-path updates are contention-free: counters are per-domain cells
    merged on read ({!Proxim_util.Dcounter}), and histogram observations
    land in per-domain bin arrays.  Reading ({!snapshot}) merges across
    domains, so a snapshot is a best-effort instantaneous view while
    domains are running and exact once they have quiesced.

    Besides owned metrics, the registry accepts {e sources} — callbacks
    sampled at snapshot time — which is how the instrumentation counters
    living inside [Proxim_util] ({!Proxim_util.Pool},
    {!Proxim_util.Memo_cache}, {!Proxim_util.Interp}) are surfaced
    without inverting the dependency order: see
    {!install_util_sources}. *)

type t
(** A registry. *)

type registry = t
(** Alias so the metric submodules can name the registry type alongside
    their own [t]. *)

val create : unit -> t

val default : t
(** The process-wide registry used when [?registry] is omitted. *)

(** Monotone event counts, e.g. cells evaluated or clamp events. *)
module Counter : sig
  type t

  val v : ?registry:registry -> string -> t
  (** [v name] registers (or retrieves — registration is idempotent by
      name) the counter [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Merged total across domains. *)

  val name : t -> string
end

(** Last-writer-wins instantaneous values, e.g. utilization. *)
module Gauge : sig
  type t

  val v : ?registry:registry -> string -> t
  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

(** Latency distributions in seconds, on logarithmic bins. *)
module Histogram : sig
  type t

  val v :
    ?registry:registry ->
    ?lo:float ->
    ?hi:float ->
    ?bins:int ->
    string ->
    t
  (** [v name] registers (or retrieves) a histogram with [bins]
      log-spaced bins over [\[lo, hi)] seconds (defaults: 28 bins over
      [1µs, 10s) — four per decade).  Raises [Invalid_argument] unless
      [0 < lo < hi] and [bins >= 1]. *)

  val observe : t -> float -> unit
  (** Record one duration (seconds). *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and {!observe} its wall-clock duration, also on
      exceptional exit. *)

  val name : t -> string
end

val register_counter_source :
  ?registry:registry -> string -> (unit -> int) -> unit
(** Register a counter whose value is sampled from the callback at
    snapshot time.  Replaces any same-named entry. *)

val register_gauge_source :
  ?registry:registry -> string -> (unit -> float) -> unit

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** 0 when [count = 0] *)
  max : float;  (** 0 when [count = 0] *)
  hist : Proxim_util.Histogram.t;
      (** merged bin counts; the axis is [log10] of the duration in
          seconds, reusing the repo's histogram renderer *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : ?registry:registry -> unit -> snapshot

val reset : ?registry:registry -> unit -> unit
(** Zero every owned metric.  Sources are left alone — reset them at
    their origin ([Memo_cache.Global.reset],
    [Interp.reset_grid_clamp_events], …). *)

val to_text : snapshot -> string
(** Human-readable report: one line per counter/gauge, a summary line
    plus a [#]-bar chart per non-empty histogram. *)

val to_json : snapshot -> string
(** The snapshot as a JSON object
    [{"counters":{..},"gauges":{..},"histograms":{..}}] — parseable by
    [Proxim_lint.Json] and embeddable into the bench [BENCH_*.json]
    reports. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal (used by
    the reporters here and by the trace writer). *)

val peak_rss_bytes : unit -> int
(** Peak resident set size of this process, in bytes: [VmHWM] from
    [/proc/self/status] where available (Linux), otherwise the GC
    major-heap high-water mark ([top_heap_words]) as a portable
    under-approximation. *)

val reset_peak_rss : unit -> unit
(** Reset the kernel's RSS high-water mark to the current RSS (writes
    ["5"] to [/proc/self/clear_refs]), so the next {!peak_rss_bytes}
    reading is attributable to work done since the reset.  A no-op where
    the interface does not exist. *)

val install_util_sources : ?registry:registry -> unit -> unit
(** Register the util-layer instrumentation as sources: [cache.hits],
    [cache.misses], [cache.waits], [cache.evictions], [cache.local_hits]
    (process-wide {!Proxim_util.Memo_cache} totals, including the
    domain-local warm path), [pool.parallel_jobs], [pool.serial_jobs],
    [pool.tasks], [pool.chunks], [pool.steals], the
    [pool.active_domains] utilization gauge, [interp.grid_clamps]
    (out-of-range grid queries under the clamping policy), and the
    [process.peak_rss_bytes] gauge ({!peak_rss_bytes}), which therefore
    lands in every snapshot — including the [metrics] object embedded in
    each bench [BENCH_*.json].  Idempotent. *)
