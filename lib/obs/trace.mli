(** Structured tracing: nested spans, Chrome trace-event JSON output.

    Spans are recorded per domain (no cross-domain contention on the hot
    path) and merged on read.  With tracing disabled — the default —
    {!with_span} costs a single [Atomic] load and a closure call, so
    instrumentation can stay on permanently in library code.

    The emitted JSON is the Chrome trace-event format: load it in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].  Each span
    becomes a complete ("ph":"X") event carrying the recording domain's
    id as [tid], its duration in µs, and the bytes it allocated as
    [args.alloc_bytes]. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start recording.  Sets the trace epoch (timestamps are µs since this
    call) and installs the {!Proxim_util.Pool} instrumentation hook so
    pool jobs appear as ["pool.job"]/["pool.run"] spans. *)

val disable : unit -> unit
(** Stop recording.  Already-collected events are kept. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span (default category
    ["app"]).  The span is recorded on normal and exceptional exit;
    when tracing is disabled this is just [f ()]. *)

(** The combinator form used across the instrumented stack. *)
module Span : sig
  val with_ :
    ?cat:string ->
    ?args:(string * string) list ->
    name:string ->
    (unit -> 'a) ->
    'a
  (** Alias of {!with_span} with a labelled [~name]. *)
end

type event = {
  name : string;
  cat : string;
  ts : float;  (** µs since {!enable} *)
  dur : float;  (** µs *)
  tid : int;  (** recording domain id *)
  alloc : float;  (** bytes allocated on the recording domain *)
  args : (string * string) list;
}

val events : unit -> event list
(** All recorded spans, merged across domains, sorted by start time. *)

val clear : unit -> unit
(** Drop every recorded span (the enabled flag is unchanged). *)

val to_chrome_json : unit -> string
(** The recorded spans as a Chrome trace-event JSON document. *)

val write_file : string -> unit
(** {!to_chrome_json} to a file. *)

type agg = {
  agg_name : string;
  count : int;
  total_us : float;
  alloc_bytes : float;
}

val aggregate : ?cat:string -> unit -> agg list
(** Group recorded spans by name (optionally restricted to one
    category), sorted by total duration, largest first — the view behind
    [proxim profile]. *)
