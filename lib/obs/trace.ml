(* A span is recorded as a Chrome "complete" event ("ph":"X"): begin
   timestamp + duration, one per [with_span] exit, appended to the
   recording domain's own buffer so the hot path never contends.  The
   enabled check is a single Atomic load, which is also what the
   pass-through costs when a Pool instrument hook is left installed. *)

type event = {
  name : string;
  cat : string;
  ts : float;  (** µs since {!enable} *)
  dur : float;  (** µs *)
  tid : int;
  alloc : float;  (** bytes allocated on the recording domain *)
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let mutex = Mutex.create ()
let buffers : event list ref list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
    let buf = ref [] in
    Mutex.lock mutex;
    buffers := buf :: !buffers;
    Mutex.unlock mutex;
    buf)

(* Trace epoch: written once by [enable] before any span is recorded. *)
let epoch = Atomic.make 0.
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

let clear () =
  Mutex.lock mutex;
  List.iter (fun buf -> buf := []) !buffers;
  Mutex.unlock mutex

let events () =
  Mutex.lock mutex;
  let all = List.concat_map (fun buf -> !buf) !buffers in
  Mutex.unlock mutex;
  List.sort (fun a b -> Float.compare a.ts b.ts) all

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    let a0 = Gc.allocated_bytes () in
    let record () =
      let dur = now_us () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      let buf = Domain.DLS.get buf_key in
      buf :=
        {
          name;
          cat;
          ts = t0;
          dur;
          tid = (Domain.self () :> int);
          alloc;
          args;
        }
        :: !buf
    in
    match f () with
    | v ->
      record ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record ();
      Printexc.raise_with_backtrace e bt
  end

module Span = struct
  let with_ ?cat ?args ~name f = with_span ?cat ?args name f
end

(* The Pool hook stays installed once set: with tracing disabled it
   costs the same single Atomic load as a bare [with_span]. *)
let pool_hook_installed = Atomic.make false

let install_pool_hook () =
  if not (Atomic.exchange pool_hook_installed true) then
    Proxim_util.Pool.set_instrument (fun ~name ~total f ->
      with_span ~cat:"pool" ~args:[ ("tasks", string_of_int total) ] name f)

let enable () =
  Atomic.set epoch (Unix.gettimeofday ());
  install_pool_hook ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* --- Chrome trace-event JSON ---------------------------------------- *)

let json_escape = Metrics.json_escape

let to_chrome_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      pf "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d"
        (json_escape e.name) (json_escape e.cat) e.tid;
      pf ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"alloc_bytes\":%.0f" e.ts e.dur
        e.alloc;
      List.iter
        (fun (k, v) -> pf ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
        e.args;
      pf "}}")
    evs;
  pf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

(* --- aggregation (the [proxim profile] view) ------------------------ *)

type agg = {
  agg_name : string;
  count : int;
  total_us : float;
  alloc_bytes : float;
}

let aggregate ?cat () =
  let keep e = match cat with None -> true | Some c -> e.cat = c in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if keep e then
        let prev =
          match Hashtbl.find_opt tbl e.name with
          | Some a -> a
          | None ->
            { agg_name = e.name; count = 0; total_us = 0.; alloc_bytes = 0. }
        in
        Hashtbl.replace tbl e.name
          {
            prev with
            count = prev.count + 1;
            total_us = prev.total_us +. e.dur;
            alloc_bytes = prev.alloc_bytes +. e.alloc;
          })
    (events ());
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> Float.compare b.total_us a.total_us)
