module Uhist = Proxim_util.Histogram
module Dcounter = Proxim_util.Dcounter

(* --- registry entries ---------------------------------------------- *)

type counter_backing =
  | C_owned of Dcounter.t
  | C_source of (unit -> int)

type counter_entry = { c_name : string; c_backing : counter_backing }

type gauge_backing =
  | G_owned of float Atomic.t
  | G_source of (unit -> float)

type gauge_entry = { g_name : string; g_backing : gauge_backing }

(* Per-domain latency cells, registered lazily like Dcounter's. *)
type hist_cell = {
  hc_counts : int array;
  mutable hc_under : int;
  mutable hc_over : int;
  mutable hc_n : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
}

type hist_entry = {
  h_name : string;
  h_lo : float;
  h_hi : float;
  h_bins : int;
  h_mutex : Mutex.t;
  h_cells : hist_cell list ref;
  h_key : hist_cell Domain.DLS.key;
}

type t = {
  mutex : Mutex.t;
  mutable counters : counter_entry list;
  mutable gauges : gauge_entry list;
  mutable histograms : hist_entry list;
}

type registry = t

let create () =
  {
    mutex = Mutex.create ();
    counters = [];
    gauges = [];
    histograms = [];
  }

let default = create ()

(* Registration is idempotent by name: re-registering replaces. *)
let put_counter r e =
  Mutex.protect r.mutex (fun () ->
    r.counters <- e :: List.filter (fun e' -> e'.c_name <> e.c_name) r.counters)

let put_gauge r e =
  Mutex.protect r.mutex (fun () ->
    r.gauges <- e :: List.filter (fun e' -> e'.g_name <> e.g_name) r.gauges)

(* --- user-facing metric handles ------------------------------------ *)

module Counter = struct
  type t = { name : string; d : Dcounter.t }

  let v ?(registry = default) name =
    let existing =
      Mutex.protect registry.mutex (fun () ->
        List.find_map
          (fun e ->
            match e.c_backing with
            | C_owned d when e.c_name = name -> Some d
            | _ -> None)
          registry.counters)
    in
    match existing with
    | Some d -> { name; d }
    | None ->
      let d = Dcounter.make () in
      put_counter registry { c_name = name; c_backing = C_owned d };
      { name; d }

  let incr t = Dcounter.incr t.d
  let add t n = Dcounter.add t.d n
  let value t = Dcounter.value t.d
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; cell : float Atomic.t }

  let v ?(registry = default) name =
    let existing =
      Mutex.protect registry.mutex (fun () ->
        List.find_map
          (fun e ->
            match e.g_backing with
            | G_owned cell when e.g_name = name -> Some cell
            | _ -> None)
          registry.gauges)
    in
    match existing with
    | Some cell -> { name; cell }
    | None ->
      let cell = Atomic.make 0. in
      put_gauge registry { g_name = name; g_backing = G_owned cell };
      { name; cell }

  let set t v = Atomic.set t.cell v
  let value t = Atomic.get t.cell
  let name t = t.name
end

module Histogram = struct
  type nonrec t = hist_entry

  let make_entry name ~lo ~hi ~bins =
    if not (lo > 0. && hi > lo && bins >= 1) then
      invalid_arg "Metrics.Histogram.v: need 0 < lo < hi and bins >= 1";
    let mutex = Mutex.create () in
    let cells = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
        let cell =
          {
            hc_counts = Array.make bins 0;
            hc_under = 0;
            hc_over = 0;
            hc_n = 0;
            hc_sum = 0.;
            hc_min = infinity;
            hc_max = neg_infinity;
          }
        in
        Mutex.lock mutex;
        cells := cell :: !cells;
        Mutex.unlock mutex;
        cell)
    in
    {
      h_name = name;
      h_lo = lo;
      h_hi = hi;
      h_bins = bins;
      h_mutex = mutex;
      h_cells = cells;
      h_key = key;
    }

  let v ?(registry = default) ?(lo = 1e-6) ?(hi = 10.) ?(bins = 28) name =
    let existing =
      Mutex.protect registry.mutex (fun () ->
        List.find_opt (fun e -> e.h_name = name) registry.histograms)
    in
    match existing with
    | Some e -> e
    | None ->
      let e = make_entry name ~lo ~hi ~bins in
      Mutex.protect registry.mutex (fun () ->
        registry.histograms <-
          e
          :: List.filter (fun e' -> e'.h_name <> name) registry.histograms);
      e

  let observe t v =
    let cell = Domain.DLS.get t.h_key in
    cell.hc_n <- cell.hc_n + 1;
    cell.hc_sum <- cell.hc_sum +. v;
    if v < cell.hc_min then cell.hc_min <- v;
    if v > cell.hc_max then cell.hc_max <- v;
    if v < t.h_lo then cell.hc_under <- cell.hc_under + 1
    else if v >= t.h_hi then cell.hc_over <- cell.hc_over + 1
    else begin
      let llo = log10 t.h_lo and lhi = log10 t.h_hi in
      let idx =
        int_of_float
          (floor ((log10 v -. llo) /. (lhi -. llo) *. float_of_int t.h_bins))
      in
      let idx = max 0 (min (t.h_bins - 1) idx) in
      cell.hc_counts.(idx) <- cell.hc_counts.(idx) + 1
    end

  let time t f =
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f

  let name t = t.h_name
end

(* --- sources -------------------------------------------------------- *)

let register_counter_source ?(registry = default) name read =
  put_counter registry { c_name = name; c_backing = C_source read }

let register_gauge_source ?(registry = default) name read =
  put_gauge registry { g_name = name; g_backing = G_source read }

(* --- snapshots ------------------------------------------------------ *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  hist : Uhist.t;  (** merged bin counts, over [log10] seconds *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let read_counter e =
  match e.c_backing with
  | C_owned d -> Dcounter.value d
  | C_source read -> read ()

let read_gauge e =
  match e.g_backing with
  | G_owned cell -> Atomic.get cell
  | G_source read -> read ()

let read_hist (e : hist_entry) =
  let counts = Array.make e.h_bins 0 in
  let under = ref 0 and over = ref 0 in
  let n = ref 0 and sum = ref 0. in
  let mn = ref infinity and mx = ref neg_infinity in
  Mutex.protect e.h_mutex (fun () ->
    List.iter
      (fun c ->
        Array.iteri (fun i k -> counts.(i) <- counts.(i) + k) c.hc_counts;
        under := !under + c.hc_under;
        over := !over + c.hc_over;
        n := !n + c.hc_n;
        sum := !sum +. c.hc_sum;
        if c.hc_min < !mn then mn := c.hc_min;
        if c.hc_max > !mx then mx := c.hc_max)
      !(e.h_cells));
  {
    count = !n;
    sum = !sum;
    min = (if !n = 0 then 0. else !mn);
    max = (if !n = 0 then 0. else !mx);
    hist =
      {
        Uhist.lo = log10 e.h_lo;
        hi = log10 e.h_hi;
        counts;
        underflow = !under;
        overflow = !over;
      };
  }

let snapshot ?(registry = default) () =
  let counters, gauges, hists =
    Mutex.protect registry.mutex (fun () ->
      (registry.counters, registry.gauges, registry.histograms))
  in
  let by_name f = List.sort (fun a b -> String.compare (f a) (f b)) in
  {
    counters =
      by_name fst (List.map (fun e -> (e.c_name, read_counter e)) counters);
    gauges = by_name fst (List.map (fun e -> (e.g_name, read_gauge e)) gauges);
    histograms =
      by_name fst (List.map (fun e -> (e.h_name, read_hist e)) hists);
  }

let reset ?(registry = default) () =
  let counters, gauges, hists =
    Mutex.protect registry.mutex (fun () ->
      (registry.counters, registry.gauges, registry.histograms))
  in
  List.iter
    (fun e -> match e.c_backing with C_owned d -> Dcounter.reset d | _ -> ())
    counters;
  List.iter
    (fun e ->
      match e.g_backing with G_owned cell -> Atomic.set cell 0. | _ -> ())
    gauges;
  List.iter
    (fun e ->
      Mutex.protect e.h_mutex (fun () ->
        List.iter
          (fun c ->
            Array.fill c.hc_counts 0 (Array.length c.hc_counts) 0;
            c.hc_under <- 0;
            c.hc_over <- 0;
            c.hc_n <- 0;
            c.hc_sum <- 0.;
            c.hc_min <- infinity;
            c.hc_max <- neg_infinity)
          !(e.h_cells)))
    hists

(* --- reporters ------------------------------------------------------ *)

let to_text s =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if s.counters <> [] then begin
    pf "counters:\n";
    List.iter (fun (name, v) -> pf "  %-36s %d\n" name v) s.counters
  end;
  if s.gauges <> [] then begin
    pf "gauges:\n";
    List.iter (fun (name, v) -> pf "  %-36s %g\n" name v) s.gauges
  end;
  if s.histograms <> [] then begin
    pf "histograms (seconds):\n";
    List.iter
      (fun (name, h) ->
        pf "  %-36s count %d  sum %.6gs  min %.3gs  max %.3gs  mean %.3gs\n"
          name h.count h.sum h.min h.max
          (if h.count = 0 then 0. else h.sum /. float_of_int h.count);
        if h.count > 0 then
          (* the bar chart is over log10(seconds) bins *)
          pf "%s" (Format.asprintf "    @[<v 4>%a@]\n" Uhist.pp h.hist))
      s.histograms
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "0"

let to_json s =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let obj pp_item items =
    Buffer.add_char buf '{';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        pp_item item)
      items;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  pf "\"counters\":";
  obj (fun (name, v) -> pf "\"%s\":%d" (json_escape name) v) s.counters;
  pf ",\"gauges\":";
  obj
    (fun (name, v) -> pf "\"%s\":%s" (json_escape name) (json_float v))
    s.gauges;
  pf ",\"histograms\":";
  obj
    (fun (name, h) ->
      pf "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s" (json_escape name)
        h.count (json_float h.sum) (json_float h.min) (json_float h.max);
      pf ",\"log10_lo\":%s,\"log10_hi\":%s" (json_float h.hist.Uhist.lo)
        (json_float h.hist.Uhist.hi);
      pf ",\"underflow\":%d,\"overflow\":%d,\"counts\":[" h.hist.Uhist.underflow
        h.hist.Uhist.overflow;
      Array.iteri
        (fun i k ->
          if i > 0 then Buffer.add_char buf ',';
          pf "%d" k)
        h.hist.Uhist.counts;
      pf "]}")
    s.histograms;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- process memory -------------------------------------------------- *)

(* VmHWM from /proc/self/status: the kernel's high-water-mark of resident
   set size, in kB.  Parsed by hand so the hot path stays Scanf-free. *)
let proc_vm_hwm_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        let prefix = "VmHWM:" in
        if String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then begin
          let kb = ref 0 and seen = ref false in
          String.iter
            (fun c ->
              if c >= '0' && c <= '9' then begin
                kb := (!kb * 10) + (Char.code c - Char.code '0');
                seen := true
              end)
            line;
          if !seen then Some (!kb * 1024) else None
        end
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let peak_rss_bytes () =
  match proc_vm_hwm_bytes () with
  | Some b -> b
  | None ->
    (* portable approximation: the GC's major-heap high-water mark.
       Undercounts (no stacks, code, malloc'd C blocks) but keeps the
       gauge meaningful off Linux. *)
    let words = (Gc.quick_stat ()).Gc.top_heap_words in
    words * (Sys.word_size / 8)

let reset_peak_rss () =
  (* writing "5" to clear_refs resets VmHWM to the current RSS, which is
     what lets the bench attribute a high-water mark to one workload row;
     silently a no-op where the file is absent or read-only *)
  match open_out "/proc/self/clear_refs" with
  | exception Sys_error _ -> ()
  | oc ->
    (try output_string oc "5" with Sys_error _ -> ());
    close_out_noerr oc

(* --- bridging the util-layer instrumentation ------------------------ *)

let install_util_sources ?(registry = default) () =
  let module P = Proxim_util.Pool in
  let module M = Proxim_util.Memo_cache in
  let module I = Proxim_util.Interp in
  register_counter_source ~registry "cache.hits" M.Global.hits;
  register_counter_source ~registry "cache.misses" M.Global.misses;
  register_counter_source ~registry "cache.waits" M.Global.waits;
  register_counter_source ~registry "cache.evictions" M.Global.evictions;
  register_counter_source ~registry "cache.local_hits" M.Global.local_hits;
  register_counter_source ~registry "pool.parallel_jobs" P.parallel_jobs;
  register_counter_source ~registry "pool.serial_jobs" P.serial_jobs;
  register_counter_source ~registry "pool.tasks" P.tasks_dispatched;
  register_counter_source ~registry "pool.chunks" P.chunks_dispatched;
  register_counter_source ~registry "pool.steals" P.steals;
  register_gauge_source ~registry "pool.active_domains" (fun () ->
    float_of_int (P.active_domains ()));
  register_counter_source ~registry "interp.grid_clamps" I.grid_clamp_events;
  register_gauge_source ~registry "process.peak_rss_bytes" (fun () ->
    float_of_int (peak_rss_bytes ()))
