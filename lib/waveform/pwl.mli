(** Piecewise-linear (PWL) voltage waveforms.

    Inputs to gates are specified as PWL sources (exactly as the paper's
    HSPICE decks did, "to precisely control the separations and rise times
    of the inputs"), and simulator probes return sampled waveforms that we
    also treat as PWL.  A waveform holds a non-empty, strictly
    time-increasing list of [(time, value)] breakpoints; before the first
    breakpoint and after the last one the value is held constant. *)

type t

exception Empty_window of { lo : float; hi : float }
(** Internal-invariant error: a window search ({!extremum}/{!maximum})
    produced no candidate points.  Every window contributes at least its
    two endpoints, so seeing this means the invariant broke; it carries
    the offending window bounds instead of dying on a bare
    [assert false].  A printer is registered. *)

type direction = Rising | Falling | Either
(** Crossing direction filter for {!crossings} and friends. *)

val of_points : (float * float) list -> t
(** Build from breakpoints.  Requires a non-empty list with strictly
    increasing times.  Raises [Invalid_argument] otherwise. *)

val of_samples : times:float array -> values:float array -> t
(** Build from parallel arrays (e.g. a simulator probe).  Same contract as
    {!of_points}. *)

val points : t -> (float * float) array
(** The breakpoints, in time order. *)

val constant : float -> t
(** A flat waveform (single breakpoint at t = 0). *)

val ramp : t0:float -> width:float -> v_from:float -> v_to:float -> t
(** [ramp ~t0 ~width ~v_from ~v_to] holds [v_from] until [t0], moves
    linearly to [v_to] over [width] seconds, then holds [v_to].
    [width = 0.] degenerates to a step at [t0]. *)

val value : t -> float -> float
(** [value w t]: linear interpolation between breakpoints, constant
    extension outside. *)

val shift : t -> float -> t
(** [shift w dt] moves the waveform later by [dt] (earlier when negative). *)

val start_time : t -> float
val end_time : t -> float

val crossings : ?direction:direction -> t -> float -> float list
(** [crossings w v] returns every time at which [w] crosses level [v],
    in increasing order, filtered by [direction] (default [Either]).
    A segment that merely touches [v] without sign change is not a
    crossing; a segment lying exactly on [v] contributes its start. *)

val first_crossing : ?direction:direction -> ?after:float -> t -> float -> float option
(** First crossing of level [v] at or after time [after] (default: from
    the beginning). *)

val last_crossing : ?direction:direction -> t -> float -> float option

val transition_time : t -> v_start:float -> v_end:float -> float option
(** Output/input transition time between two measurement thresholds: the
    time from the *last* crossing of [v_start] that is followed by a
    crossing of [v_end], to that first subsequent crossing of [v_end].
    Returns [None] when the waveform never completes the excursion.  Works
    for rising ([v_start < v_end]) and falling ([v_start > v_end])
    transitions. *)

val extremum : t -> lo:float -> hi:float -> float * float
(** [extremum w ~lo ~hi] is [(t_min, v_min)] over the window if the
    waveform dips (used for glitch magnitude); more precisely it returns
    the time and value of the minimum of [w] over [\[lo, hi\]].  Requires
    [lo <= hi]. *)

val maximum : t -> lo:float -> hi:float -> float * float
(** Same as {!extremum} for the maximum. *)

val map_values : (float -> float) -> t -> t
(** Pointwise transform of the breakpoint values. *)

val sample : t -> times:float array -> float array

val pp : Format.formatter -> t -> unit
(** Compact [t:v t:v ...] rendering for debugging. *)
