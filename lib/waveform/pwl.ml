type t = { pts : (float * float) array }

exception Empty_window of { lo : float; hi : float }

let () =
  Printexc.register_printer (function
    | Empty_window { lo; hi } ->
      Some
        (Printf.sprintf
           "Pwl: waveform window [%g, %g] produced no candidate points" lo hi)
    | _ -> None)

type direction = Rising | Falling | Either

let of_points lst =
  if lst = [] then invalid_arg "Pwl.of_points: empty";
  let pts = Array.of_list lst in
  for i = 0 to Array.length pts - 2 do
    if fst pts.(i) >= fst pts.(i + 1) then
      invalid_arg "Pwl.of_points: times must be strictly increasing"
  done;
  { pts }

let of_samples ~times ~values =
  if Array.length times <> Array.length values then
    invalid_arg "Pwl.of_samples: length mismatch";
  of_points (Array.to_list (Array.map2 (fun t v -> (t, v)) times values))

let points w = Array.copy w.pts

let constant v = { pts = [| (0., v) |] }

let ramp ~t0 ~width ~v_from ~v_to =
  if width <= 0. then
    (* a step: represent with an extremely steep 1 fs ramp to stay PWL *)
    of_points [ (t0, v_from); (t0 +. 1e-15, v_to) ]
  else of_points [ (t0, v_from); (t0 +. width, v_to) ]

let value w t =
  let pts = w.pts in
  let n = Array.length pts in
  if t <= fst pts.(0) then snd pts.(0)
  else if t >= fst pts.(n - 1) then snd pts.(n - 1)
  else begin
    (* binary search for the segment containing t *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst pts.(mid) <= t then lo := mid else hi := mid
    done;
    let t0, v0 = pts.(!lo) and t1, v1 = pts.(!hi) in
    Proxim_util.Floatx.lerp v0 v1 ((t -. t0) /. (t1 -. t0))
  end

let shift w dt = { pts = Array.map (fun (t, v) -> (t +. dt, v)) w.pts }

let start_time w = fst w.pts.(0)
let end_time w = fst w.pts.(Array.length w.pts - 1)

(* Crossing detection walks the breakpoints tracking the side of each value
   relative to the level; runs of points exactly on the level count as a
   single crossing (at the start of the run) when the surrounding sides
   differ. *)
let crossings ?(direction = Either) w level =
  let pts = w.pts in
  let n = Array.length pts in
  let events = ref [] in
  let side v = if v > level then 1 else if v < level then -1 else 0 in
  let prev_side = ref 0 in
  let prev_idx = ref (-1) in
  let zero_start = ref None in
  for i = 0 to n - 1 do
    let t, v = pts.(i) in
    let s = side v in
    if s = 0 then begin
      if !zero_start = None then zero_start := Some t
    end
    else begin
      (if !prev_side <> 0 && !prev_side <> s then
         let cross_time =
           match !zero_start with
           | Some tz -> tz
           | None ->
             let t0, v0 = pts.(!prev_idx) in
             let frac = (level -. v0) /. (v -. v0) in
             t0 +. (frac *. (t -. t0))
         in
         events := (cross_time, s - !prev_side) :: !events);
      prev_side := s;
      prev_idx := i;
      zero_start := None
    end
  done;
  let keep (_, delta) =
    match direction with
    | Either -> true
    | Rising -> delta > 0
    | Falling -> delta < 0
  in
  List.rev_map fst (List.filter keep !events)

let first_crossing ?(direction = Either) ?after w level =
  let all = crossings ~direction w level in
  let all =
    match after with
    | None -> all
    | Some t0 -> List.filter (fun t -> t >= t0) all
  in
  match all with [] -> None | t :: _ -> Some t

let last_crossing ?(direction = Either) w level =
  match List.rev (crossings ~direction w level) with
  | [] -> None
  | t :: _ -> Some t

let transition_time w ~v_start ~v_end =
  let dir = if v_end > v_start then Rising else Falling in
  match first_crossing ~direction:dir w v_end with
  | None -> None
  | Some t_end -> (
    let starts =
      List.filter (fun t -> t <= t_end) (crossings ~direction:dir w v_start)
    in
    match List.rev starts with
    | [] -> None
    | t_start :: _ -> Some (t_end -. t_start))

let window_candidates w ~lo ~hi =
  assert (lo <= hi);
  let inner =
    Array.to_list w.pts
    |> List.filter (fun (t, _) -> t > lo && t < hi)
  in
  ((lo, value w lo) :: inner) @ [ (hi, value w hi) ]

let best_candidate better w ~lo ~hi =
  match window_candidates w ~lo ~hi with
  | [] -> raise (Empty_window { lo; hi })
  | first :: rest ->
    let pick ((_, bv) as best) ((_, v) as c) =
      if better v bv then c else best
    in
    List.fold_left pick first rest

let extremum w ~lo ~hi = best_candidate ( < ) w ~lo ~hi
let maximum w ~lo ~hi = best_candidate ( > ) w ~lo ~hi

let map_values f w = { pts = Array.map (fun (t, v) -> (t, f v)) w.pts }

let sample w ~times = Array.map (value w) times

let pp ppf w =
  Array.iter (fun (t, v) -> Format.fprintf ppf "%.4g:%.4g " t v) w.pts
