(** The annotated propagation engine over the timing-graph IR.

    A {!t} carries one timing annotation per net (arrival time, slew,
    edge) and one {!verdict} per cell (the output annotation, the winning
    pin, and the per-pin would-be response candidates that the K-worst
    path enumeration consumes).  How a cell turns input events into an
    output event is a pluggable {!engine} — {!Proxim_sta.Sta} provides
    Classic, Proximity and collapse-to-inverter engines over the same IR.

    Annotations are {e stored} in a flat structure-of-arrays arena
    ({!Soa}): parallel [Bigarray.float64] / int / byte planes indexed
    by dense net and cell ids, swept level by level as index ranges.
    The record types below are a view layer decoded on demand, so
    consumers ({!Paths}, the verify/hazard layers, reports) read the
    same shapes they always did; {!Reference} keeps the historical
    records-of-options evaluator alive as a bit-identity oracle.

    {!analyze} is a full from-scratch propagation; {!update} is the
    incremental (ECO) variant: after a source-arrival change or a cell
    re-characterization, only the affected fanout cone is re-evaluated,
    with an early cutoff at cells whose recomputed verdict is bit-equal
    to the stored one.  Because an engine is a pure function of the input
    annotations, {!update} is bit-identical to a fresh {!analyze} of the
    edited configuration (property-tested in [test/test_timing.ml]). *)

module Pool = Proxim_util.Pool

type arrival = {
  time : float;  (** threshold-crossing time, s *)
  slew : float;  (** full-swing equivalent transition time, s *)
  edge : Proxim_measure.Measure.edge;
}

type candidate = {
  pin : int;
  from_net : int;
  would_be : float;
      (** the output arrival had this pin set the timing alone; for the
          winning pin engines store the {e actual} output arrival, so the
          top-1 enumerated path reproduces the reported arrival exactly *)
}

type verdict = {
  out : arrival;
  winner : int;  (** pin index that set the timing *)
  candidates : candidate array;  (** one per switching input, pin order *)
}

type input = { in_pin : int; in_net : int; in_arrival : arrival }

type 'cell engine = 'cell -> input list -> verdict option
(** [engine payload inputs] times one cell from its switching inputs
    ([None] = the cell stays quiet).  Must be deterministic and pure with
    respect to the annotations — it may be called from several pool
    domains at once, and the incremental engine's cutoff assumes equal
    inputs give bit-equal verdicts. *)

type 'cell t

val create : 'cell Graph.t -> engine:'cell engine -> 'cell t
(** A state with no annotations: every source quiet, every verdict
    [None]. *)

val graph : 'cell t -> 'cell Graph.t

val engine : 'cell t -> 'cell engine
(** The engine the state was created with — what {!Reference} re-runs
    to cross-check the SoA propagation. *)

val arena_bytes : 'cell t -> int
(** Resident footprint of the SoA annotation arena, in bytes. *)

val set_source : 'cell t -> net:int -> arrival option -> unit
(** Set (or clear, with [None]) the arrival event of a source net —
    a primary input.  Raises [Invalid_argument] for driven nets.  The
    change is not propagated until {!update} is called with the net in
    [dirty_nets]. *)

val arrival : 'cell t -> net:int -> arrival option
val verdict : 'cell t -> cell:int -> verdict option

val arrival_eq : arrival -> arrival -> bool
(** Bit-exact equality ([Int64.bits_of_float] on the float planes, so
    [0.] and [-0.] differ) — the relation behind the incremental
    engine's early cutoff. *)

val verdict_eq : verdict option -> verdict option -> bool
(** Bit-exact equality over whole verdicts, candidates included. *)

val predecessor : 'cell t -> net:int -> (int * int) option
(** [(pred_net, winner_pin)] of a driven, switching net: the input net
    that set its driver's timing. *)

type stats = {
  evaluated : int;  (** cells whose engine ran *)
  changed : int;  (** evaluated cells whose verdict actually changed *)
  total_cells : int;
}

val parallel_threshold : int
(** Levels narrower than this many cells are timed serially on the
    caller; at or above it, the level's sorted dense-id array is split
    into ~2 contiguous chunks per pool domain and fanned out through
    {!Pool.parallel_for} (the steal loop rebalances uneven engine
    costs).  Verdicts are always applied on the caller in index order,
    so results are bit-identical either way. *)

val analyze : ?pool:Pool.t -> 'cell t -> stats
(** Full propagation from scratch: clears every verdict, then evaluates
    all cells level-by-level.  Levels at least {!parallel_threshold}
    wide are timed concurrently on [pool] (default {!Pool.default});
    results are bit-identical to a serial run at any pool width. *)

val update :
  ?pool:Pool.t -> 'cell t -> dirty_nets:int list -> dirty_cells:int list -> stats
(** Incremental re-propagation: seeds the worklist with the readers of
    [dirty_nets] (sources whose arrival was edited) and with
    [dirty_cells] (cells whose model/parameters changed), then walks the
    fanout cone level-by-level, stopping at cells whose recomputed
    verdict is bit-equal to the stored one. *)
