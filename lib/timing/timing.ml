module Measure = Proxim_measure.Measure
module Pool = Proxim_util.Pool
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics

(* registered once at link time; counting costs one domain-local add *)
let c_evaluated = Metrics.Counter.v "timing.cells_evaluated"
let c_changed = Metrics.Counter.v "timing.cells_changed"

type arrival = { time : float; slew : float; edge : Measure.edge }

type candidate = { pin : int; from_net : int; would_be : float }

type verdict = {
  out : arrival;
  winner : int;
  candidates : candidate array;
}

type input = { in_pin : int; in_net : int; in_arrival : arrival }

type 'cell engine = 'cell -> input list -> verdict option

type 'cell t = {
  graph : 'cell Graph.t;
  engine : 'cell engine;
  sources : arrival option array;  (* per net; meaningful for undriven nets *)
  verdicts : verdict option array;  (* per cell *)
  (* scratch reused across [update] calls so the ECO hot path does not
     allocate per call; all are restored to all-false / all-[] / all-None
     before [update] returns (each level resets its own entries as it
     drains) *)
  queued : bool array;
  buckets : int list array;
  eval_scratch : verdict option array;  (* slot i = result for the i-th
                                           cell of the level in flight *)
}

type stats = { evaluated : int; changed : int; total_cells : int }

let create graph ~engine =
  {
    graph;
    engine;
    sources = Array.make (Graph.net_count graph) None;
    verdicts = Array.make (Graph.cell_count graph) None;
    queued = Array.make (Graph.cell_count graph) false;
    buckets = Array.make (max (Graph.level_count graph) 1) [];
    eval_scratch = Array.make (Graph.cell_count graph) None;
  }

let graph t = t.graph

let set_source t ~net a =
  match Graph.driver t.graph ~net with
  | Some _ ->
    invalid_arg
      ("Timing.set_source: net " ^ Graph.net_name t.graph net
     ^ " is driven by a cell")
  | None -> t.sources.(net) <- a

let arrival t ~net =
  match Graph.driver t.graph ~net with
  | None -> t.sources.(net)
  | Some c -> Option.map (fun v -> v.out) t.verdicts.(c)

let verdict t ~cell = t.verdicts.(cell)

(* bit-exact equality: the incremental engine's early cutoff must never
   declare "unchanged" for values a from-scratch analysis would print
   differently (0. vs -0. compare equal under (=) but not bitwise) *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arrival_eq a b =
  float_eq a.time b.time && float_eq a.slew b.slew && a.edge = b.edge

let candidate_eq a b =
  a.pin = b.pin && a.from_net = b.from_net && float_eq a.would_be b.would_be

let verdict_eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    arrival_eq a.out b.out && a.winner = b.winner
    && Array.length a.candidates = Array.length b.candidates
    && Array.for_all2 candidate_eq a.candidates b.candidates
  | None, Some _ | Some _, None -> false

let compute t cell_id =
  let g = t.graph in
  let nets = Graph.cell_inputs g cell_id in
  (* built back-to-front so the list comes out in pin order without the
     Array.to_list / List.mapi / List.filter_map intermediates — this
     runs once per evaluated cell and dominates update-path allocation *)
  let inputs = ref [] in
  for pin = Array.length nets - 1 downto 0 do
    let net = nets.(pin) in
    match arrival t ~net with
    | Some a ->
      inputs := { in_pin = pin; in_net = net; in_arrival = a } :: !inputs
    | None -> ()
  done;
  t.engine (Graph.payload g cell_id) !inputs

(* Levels narrower than this are timed serially: fanning out costs a
   submit/park handshake with the workers, which only pays for itself
   once a level carries a few dozen engine evaluations. *)
let parallel_threshold = 32

let update ?pool t ~dirty_nets ~dirty_cells =
  let g = t.graph in
  let n_levels = Graph.level_count g in
  let buckets = t.buckets and queued = t.queued in
  let enqueue c =
    if not queued.(c) then begin
      queued.(c) <- true;
      let l = Graph.cell_level g c in
      buckets.(l) <- c :: buckets.(l)
    end
  in
  List.iter enqueue dirty_cells;
  List.iter
    (fun net -> Array.iter (fun (c, _) -> enqueue c) (Graph.readers g ~net))
    dirty_nets;
  let evaluated = ref 0 in
  let changed = ref 0 in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let run () =
    for l = 0 to n_levels - 1 do
      match buckets.(l) with
      | [] -> ()
      | dirty ->
        (* drain this level's scratch entries before evaluating: fanout
           of a level-l cell sits at strictly higher levels, so nothing
           re-enqueues below, and the scratch comes out empty *)
        buckets.(l) <- [];
        List.iter (fun c -> queued.(c) <- false) dirty;
        let eval_level () =
          let cells = Array.of_list (List.sort Int.compare dirty) in
          let width = Array.length cells in
          (* verdicts are always applied on the caller in index order, so
             the outcome is bit-identical whichever path computed them *)
          let apply i v =
            let c = cells.(i) in
            if not (verdict_eq t.verdicts.(c) v) then begin
              t.verdicts.(c) <- v;
              incr changed;
              Array.iter
                (fun (r, _) -> enqueue r)
                (Graph.readers g ~net:(Graph.cell_output g c))
            end
          in
          evaluated := !evaluated + width;
          let d = Pool.domains pool in
          if width < parallel_threshold || d = 1 then
            (* applying verdict i before computing i+1 is safe: cells of
               one level only read strictly lower levels, and enqueue
               only touches higher buckets *)
            for i = 0 to width - 1 do
              apply i (compute t cells.(i))
            done
          else begin
            (* chunked fan-out: ~2 contiguous slices per domain over the
               sorted dense-id array — coarse enough that a chunk claim
               is noise, with one spare slice per domain for the steal
               loop to rebalance uneven engine costs *)
            let scratch = t.eval_scratch in
            let chunk = max 1 ((width + (2 * d) - 1) / (2 * d)) in
            Pool.parallel_for ~chunk pool ~n:width (fun i ->
              scratch.(i) <- compute t cells.(i));
            for i = 0 to width - 1 do
              apply i scratch.(i);
              scratch.(i) <- None
            done
          end
        in
        (* the argument strings are only worth allocating when a trace is
           being recorded; with tracing off this is one atomic load *)
        if Trace.enabled () then
          Trace.with_span ~cat:"sta" "timing.level"
            ~args:
              [
                ("level", string_of_int l);
                ("cells", string_of_int (List.length dirty));
              ]
            eval_level
        else eval_level ()
    done
  in
  (try run ()
   with e ->
     (* an engine failure mid-walk must not leave stale scratch behind
        for the next update on this IR *)
     let bt = Printexc.get_raw_backtrace () in
     Array.fill queued 0 (Array.length queued) false;
     Array.fill buckets 0 (Array.length buckets) [];
     Array.fill t.eval_scratch 0 (Array.length t.eval_scratch) None;
     Printexc.raise_with_backtrace e bt);
  Metrics.Counter.add c_evaluated !evaluated;
  Metrics.Counter.add c_changed !changed;
  { evaluated = !evaluated; changed = !changed; total_cells = Graph.cell_count g }

let analyze ?pool t =
  Array.fill t.verdicts 0 (Array.length t.verdicts) None;
  update ?pool t ~dirty_nets:[]
    ~dirty_cells:(List.init (Graph.cell_count t.graph) Fun.id)

let predecessor t ~net =
  match Graph.driver t.graph ~net with
  | None -> None
  | Some c ->
    Option.map
      (fun v -> ((Graph.cell_inputs t.graph c).(v.winner), v.winner))
      t.verdicts.(c)
