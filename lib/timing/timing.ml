module Measure = Proxim_measure.Measure
module Pool = Proxim_util.Pool
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics

(* registered once at link time; counting costs one domain-local add *)
let c_evaluated = Metrics.Counter.v "timing.cells_evaluated"
let c_changed = Metrics.Counter.v "timing.cells_changed"

type arrival = { time : float; slew : float; edge : Measure.edge }

type candidate = { pin : int; from_net : int; would_be : float }

type verdict = {
  out : arrival;
  winner : int;
  candidates : candidate array;
}

type input = { in_pin : int; in_net : int; in_arrival : arrival }

type 'cell engine = 'cell -> input list -> verdict option

(* The committed annotation state is the flat SoA arena: arrival times,
   slews and would-be responses in float64 bigarrays, winner pins and
   candidate ids in unboxed int arrays, edges as one-byte tags.  The
   record types above survive as a view decoded on demand ([arrival],
   [verdict]) and as the engine interchange format — engines still
   return a short-lived [verdict] record, which [commit] scatters into
   the arena and the next minor collection reclaims.  The GC never
   walks the per-cell state, and a million-cell design is a dozen
   contiguous arrays instead of millions of boxed options. *)
type 'cell t = {
  graph : 'cell Graph.t;
  engine : 'cell engine;
  soa : Soa.t;
  (* scratch reused across [update] calls so the ECO hot path does not
     allocate per call; all are restored to all-false / all-[] / all-None
     before [update] returns (each level resets its own entries as it
     drains) *)
  queued : bool array;
  buckets : int list array;
  eval_scratch : verdict option array;  (* slot i = result for the i-th
                                           cell of the level in flight *)
}

type stats = { evaluated : int; changed : int; total_cells : int }

let create graph ~engine =
  {
    graph;
    engine;
    soa =
      Soa.create ~nets:(Graph.net_count graph) ~cells:(Graph.cell_count graph)
        ~fanin:(fun c -> Array.length (Graph.cell_inputs graph c));
    queued = Array.make (Graph.cell_count graph) false;
    buckets = Array.make (max (Graph.level_count graph) 1) [];
    eval_scratch = Array.make (Graph.cell_count graph) None;
  }

let graph t = t.graph
let engine t = t.engine

let set_source t ~net a =
  match Graph.driver t.graph ~net with
  | Some _ ->
    invalid_arg
      ("Timing.set_source: net " ^ Graph.net_name t.graph net
     ^ " is driven by a cell")
  | None -> (
    let s = t.soa in
    match a with
    | None -> Bytes.set s.Soa.src_tag net Soa.tag_none
    | Some a ->
      s.Soa.src_time.{net} <- a.time;
      s.Soa.src_slew.{net} <- a.slew;
      Bytes.set s.Soa.src_tag net (Soa.tag_of_edge a.edge))

let arrival t ~net =
  let s = t.soa in
  let d = Graph.driver_id t.graph ~net in
  if d < 0 then
    let tag = Bytes.get s.Soa.src_tag net in
    if tag = Soa.tag_none then None
    else
      Some
        {
          time = s.Soa.src_time.{net};
          slew = s.Soa.src_slew.{net};
          edge = Soa.edge_of_tag tag;
        }
  else
    let tag = Bytes.get s.Soa.out_tag d in
    if tag = Soa.tag_none then None
    else
      Some
        {
          time = s.Soa.out_time.{d};
          slew = s.Soa.out_slew.{d};
          edge = Soa.edge_of_tag tag;
        }

let verdict t ~cell =
  let s = t.soa in
  let tag = Bytes.get s.Soa.out_tag cell in
  if tag = Soa.tag_none then None
  else begin
    let base = s.Soa.cand_start.(cell) in
    let candidates =
      Array.init s.Soa.cand_count.(cell) (fun i ->
          {
            pin = s.Soa.cand_pin.(base + i);
            from_net = s.Soa.cand_net.(base + i);
            would_be = s.Soa.cand_would.{base + i};
          })
    in
    Some
      {
        out =
          {
            time = s.Soa.out_time.{cell};
            slew = s.Soa.out_slew.{cell};
            edge = Soa.edge_of_tag tag;
          };
        winner = s.Soa.winner.(cell);
        candidates;
      }
  end

(* bit-exact equality: the incremental engine's early cutoff must never
   declare "unchanged" for values a from-scratch analysis would print
   differently (0. vs -0. compare equal under (=) but not bitwise) *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arrival_eq a b =
  float_eq a.time b.time && float_eq a.slew b.slew && a.edge == b.edge

let candidate_eq a b =
  a.pin = b.pin && a.from_net = b.from_net && float_eq a.would_be b.would_be

let verdict_eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    arrival_eq a.out b.out && a.winner = b.winner
    && Array.length a.candidates = Array.length b.candidates
    && Array.for_all2 candidate_eq a.candidates b.candidates
  | None, Some _ | Some _, None -> false

(* Does a freshly computed verdict differ (bitwise) from the committed
   one?  Compares the record fields straight against the arena planes —
   all loads are monomorphic int/float/byte reads, no decoded records,
   no polymorphic compare, no allocation.  This is the incremental
   engine's early-cutoff test, run once per evaluated cell. *)
let differs s c v =
  match v with
  | None -> Bytes.get s.Soa.out_tag c <> Soa.tag_none
  | Some v ->
    Bytes.get s.Soa.out_tag c <> Soa.tag_of_edge v.out.edge
    || (not (float_eq v.out.time s.Soa.out_time.{c}))
    || (not (float_eq v.out.slew s.Soa.out_slew.{c}))
    || s.Soa.winner.(c) <> v.winner
    ||
    let n = Array.length v.candidates in
    s.Soa.cand_count.(c) <> n
    ||
    let base = s.Soa.cand_start.(c) in
    let rec eq i =
      i >= n
      ||
      let cd = Array.unsafe_get v.candidates i in
      cd.pin = s.Soa.cand_pin.(base + i)
      && cd.from_net = s.Soa.cand_net.(base + i)
      && float_eq cd.would_be s.Soa.cand_would.{base + i}
      && eq (i + 1)
    in
    not (eq 0)

let commit s c v =
  match v with
  | None -> Bytes.set s.Soa.out_tag c Soa.tag_none
  | Some v ->
    s.Soa.out_time.{c} <- v.out.time;
    s.Soa.out_slew.{c} <- v.out.slew;
    Bytes.set s.Soa.out_tag c (Soa.tag_of_edge v.out.edge);
    s.Soa.winner.(c) <- v.winner;
    let n = Array.length v.candidates in
    s.Soa.cand_count.(c) <- n;
    let base = s.Soa.cand_start.(c) in
    for i = 0 to n - 1 do
      let cd = Array.unsafe_get v.candidates i in
      s.Soa.cand_pin.(base + i) <- cd.pin;
      s.Soa.cand_net.(base + i) <- cd.from_net;
      s.Soa.cand_would.{base + i} <- cd.would_be
    done

let compute t cell_id =
  let g = t.graph in
  let s = t.soa in
  let nets = Graph.cell_inputs g cell_id in
  (* built back-to-front so the list comes out in pin order; each input
     annotation is read straight off the arena planes — no [arrival]
     option round-trip per pin like the records-of-options engine paid *)
  let inputs = ref [] in
  for pin = Array.length nets - 1 downto 0 do
    let net = Array.unsafe_get nets pin in
    let d = Graph.driver_id g ~net in
    if d < 0 then begin
      let tag = Bytes.unsafe_get s.Soa.src_tag net in
      if tag <> Soa.tag_none then
        inputs :=
          {
            in_pin = pin;
            in_net = net;
            in_arrival =
              {
                time = s.Soa.src_time.{net};
                slew = s.Soa.src_slew.{net};
                edge = Soa.edge_of_tag tag;
              };
          }
          :: !inputs
    end
    else begin
      let tag = Bytes.unsafe_get s.Soa.out_tag d in
      if tag <> Soa.tag_none then
        inputs :=
          {
            in_pin = pin;
            in_net = net;
            in_arrival =
              {
                time = s.Soa.out_time.{d};
                slew = s.Soa.out_slew.{d};
                edge = Soa.edge_of_tag tag;
              };
          }
          :: !inputs
    end
  done;
  t.engine (Graph.payload g cell_id) !inputs

(* Levels narrower than this are timed serially: fanning out costs a
   submit/park handshake with the workers, which only pays for itself
   once a level carries a few dozen engine evaluations. *)
let parallel_threshold = 32

(* Evaluate one level's cells — a dense-id index range swept in order —
   and hand each result to [apply] in index order, so the outcome is
   bit-identical whichever path (serial or chunked fan-out) computed
   it.  Shared by the from-scratch sweep and the worklist walk. *)
let eval_cells t pool ~level ~cells ~apply =
  let width = Array.length cells in
  let body () =
    let d = Pool.domains pool in
    if width < parallel_threshold || d = 1 then
      (* applying verdict i before computing i+1 is safe: cells of one
         level only read strictly lower levels, and changes only
         propagate to higher buckets *)
      for i = 0 to width - 1 do
        apply i (compute t cells.(i))
      done
    else begin
      (* chunked fan-out: ~2 contiguous slices per domain over the
         dense-id array — coarse enough that a chunk claim is noise,
         with one spare slice per domain for the steal loop to
         rebalance uneven engine costs *)
      let scratch = t.eval_scratch in
      let chunk = max 1 ((width + (2 * d) - 1) / (2 * d)) in
      Pool.parallel_for ~chunk pool ~n:width (fun i ->
          scratch.(i) <- compute t cells.(i));
      for i = 0 to width - 1 do
        apply i scratch.(i);
        scratch.(i) <- None
      done
    end
  in
  (* the argument strings are only worth allocating when a trace is
     being recorded; with tracing off this is one atomic load *)
  if Trace.enabled () then
    Trace.with_span ~cat:"sta" "timing.level"
      ~args:
        [ ("level", string_of_int level); ("cells", string_of_int width) ]
      body
  else body ()

let update ?pool t ~dirty_nets ~dirty_cells =
  let g = t.graph in
  let n_levels = Graph.level_count g in
  let buckets = t.buckets and queued = t.queued in
  let enqueue c =
    if not queued.(c) then begin
      queued.(c) <- true;
      let l = Graph.cell_level g c in
      buckets.(l) <- c :: buckets.(l)
    end
  in
  List.iter enqueue dirty_cells;
  List.iter
    (fun net -> Array.iter (fun (c, _) -> enqueue c) (Graph.readers g ~net))
    dirty_nets;
  let evaluated = ref 0 in
  let changed = ref 0 in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let run () =
    for l = 0 to n_levels - 1 do
      match buckets.(l) with
      | [] -> ()
      | dirty ->
        (* drain this level's scratch entries before evaluating: fanout
           of a level-l cell sits at strictly higher levels, so nothing
           re-enqueues below, and the scratch comes out empty *)
        buckets.(l) <- [];
        List.iter (fun c -> queued.(c) <- false) dirty;
        let cells = Array.of_list (List.sort Int.compare dirty) in
        evaluated := !evaluated + Array.length cells;
        let apply i v =
          let c = cells.(i) in
          if differs t.soa c v then begin
            commit t.soa c v;
            incr changed;
            Array.iter
              (fun (r, _) -> enqueue r)
              (Graph.readers g ~net:(Graph.cell_output g c))
          end
        in
        eval_cells t pool ~level:l ~cells ~apply
    done
  in
  (try run ()
   with e ->
     (* an engine failure mid-walk must not leave stale scratch behind
        for the next update on this IR *)
     let bt = Printexc.get_raw_backtrace () in
     Array.fill queued 0 (Array.length queued) false;
     Array.fill buckets 0 (Array.length buckets) [];
     Array.fill t.eval_scratch 0 (Array.length t.eval_scratch) None;
     Printexc.raise_with_backtrace e bt);
  Metrics.Counter.add c_evaluated !evaluated;
  Metrics.Counter.add c_changed !changed;
  { evaluated = !evaluated; changed = !changed; total_cells = Graph.cell_count g }

(* A full pass needs no worklist at all: every cell runs exactly once,
   so sweep the precomputed level index ranges directly instead of
   threading a million-entry dirty list through the queue machinery. *)
let analyze ?pool t =
  Soa.clear_verdicts t.soa;
  let g = t.graph in
  let evaluated = ref 0 in
  let changed = ref 0 in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  (try
     for l = 0 to Graph.level_count g - 1 do
       let cells = Graph.level g l in
       evaluated := !evaluated + Array.length cells;
       let apply i v =
         (* the arena was just cleared, so "differs" means the engine
            produced a verdict — same count the worklist walk reports *)
         if differs t.soa cells.(i) v then begin
           commit t.soa cells.(i) v;
           incr changed
         end
       in
       eval_cells t pool ~level:l ~cells ~apply
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Array.fill t.eval_scratch 0 (Array.length t.eval_scratch) None;
     Printexc.raise_with_backtrace e bt);
  Metrics.Counter.add c_evaluated !evaluated;
  Metrics.Counter.add c_changed !changed;
  { evaluated = !evaluated; changed = !changed; total_cells = Graph.cell_count g }

let predecessor t ~net =
  let d = Graph.driver_id t.graph ~net in
  if d < 0 || Bytes.get t.soa.Soa.out_tag d = Soa.tag_none then None
  else
    Some
      ( (Graph.cell_inputs t.graph d).(t.soa.Soa.winner.(d)),
        t.soa.Soa.winner.(d) )

let arena_bytes t = Soa.bytes_used t.soa
