(** Flat structure-of-arrays storage for timing annotations.

    One arena holds every annotation the propagation engine keeps per
    net and per cell — source events, output verdicts and the would-be
    candidate responses — as parallel [Bigarray.float64] / [int] /
    [Bytes] arrays indexed by the dense ids of {!Graph}.  Nothing here
    is a record or an option: a million-cell design costs a handful of
    contiguous allocations instead of millions of boxed
    records-of-options, the level sweeps of {!Timing} walk cache-line
    neighbours, and the GC never scans the annotation state at all
    (floats live in bigarrays, ids in unboxed [int array]s).

    {!Timing} keeps its historical record types ([arrival], [verdict])
    as a view layer decoded on demand from this arena, so path
    enumeration and reports are source-compatible with the
    records-of-options engine this replaces.

    Edges are stored as one-byte tags; [tag_none] doubles as "no
    annotation" — the SoA equivalent of [None].

    Candidate arrays are variable-length per cell (one entry per
    switching input), so they live in a CSR-style pool: cell [c]'s
    candidates occupy indices [cand_start.(c) ..
    cand_start.(c) + cand_count.(c) - 1], within a fixed per-cell
    capacity of the cell's fan-in. *)

module Measure = Proxim_measure.Measure

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  (* per-net source events; meaningful only for undriven nets *)
  src_time : floats;
  src_slew : floats;
  src_tag : Bytes.t;
  (* per-cell output verdicts *)
  out_time : floats;
  out_slew : floats;
  out_tag : Bytes.t;
  winner : int array;  (** pin index that set the timing *)
  (* per-cell candidate pool, CSR by cell with capacity = fan-in *)
  cand_start : int array;  (** length cells + 1; [cand_start.(cells)] is
                               the pool size *)
  cand_count : int array;  (** candidates actually stored, <= capacity *)
  cand_pin : int array;
  cand_net : int array;
  cand_would : floats;
}

val tag_none : char
(** ['\000'] — no event / no verdict. *)

val tag_of_edge : Measure.edge -> char
(** [tag_of_edge Rise = '\001'], [tag_of_edge Fall = '\002']. *)

val edge_of_tag : char -> Measure.edge
(** Inverse of {!tag_of_edge}; raises [Invalid_argument] on {!tag_none}
    or any other byte. *)

val create : nets:int -> cells:int -> fanin:(int -> int) -> t
(** A fresh arena for [nets] nets and [cells] cells, with candidate
    capacity [fanin c] for cell [c].  All tags start at {!tag_none}. *)

val clear_verdicts : t -> unit
(** Reset every cell to "no verdict" (tags only; the numeric planes are
    left as-is, exactly like dropping the records did). *)

val bytes_used : t -> int
(** Resident footprint of the arena's arrays, in bytes (headers
    excluded) — what the scaling bench reports alongside peak RSS. *)
