(** The records-of-options evaluator, kept as a bit-identity oracle.

    Before the SoA arena ({!Soa}), {!Timing} stored one [verdict option]
    record per cell and propagated by mapping over those options.  This
    module preserves that formulation — a plain topological walk over
    boxed records, no worklist, no arena — so tests and the scaling
    bench can demand that the flat engine reproduces the record engine
    to the last bit at every design size.

    It reads the engine and the current source events out of a
    {!Timing.t} but never touches its committed state: calling
    {!analyze} between two incremental updates is side-effect free. *)

val analyze : 'cell Timing.t -> Timing.verdict option array
(** Evaluate every cell of [t]'s graph in topological order with [t]'s
    engine over [t]'s current source events, records-of-options style.
    Index [c] holds cell [c]'s verdict. *)

val agrees : 'cell Timing.t -> bool
(** [true] iff [t]'s committed verdicts are bit-identical
    ({!Timing.verdict_eq}) to a fresh {!analyze} — i.e. the SoA engine,
    after whatever sequence of [analyze]/[update] calls produced [t]'s
    state, matches the record engine run from scratch. *)
