(** K-worst path enumeration over an analyzed {!Timing} state.

    Replaces the single [critical_path] chain: for every endpoint the
    top-K latest-arriving paths are enumerated by merging per-net top-K
    lists in topological order (cost [O(E * K log K)]).

    Path semantics: every arc [(input net -> cell output)] contributes
    [would_be - arrival(input)], where [would_be] is the engine's
    estimate of the output arrival had that pin set the timing alone
    (the actual arrival for the winning pin).  Rank 1 is always the
    timing-setting chain — the winner pins followed back to a source —
    and its arrival reproduces the reported arrival and the critical
    path exactly.  Ranks 2..K order the alternatives by their
    single-input would-be estimates, latest first — the standard
    pin-to-pin view of the paper's introduction, which is exactly the
    lens a designer wants on the near-critical alternatives.  (Under
    proximity the two views genuinely differ: assisting inputs compose
    to the {e earliest} would-be crossing, so an alternative's estimate
    can exceed the critical arrival.) *)

type step = {
  net : int;
  via_pin : int;  (** pin through which the path enters the driving cell
                      of [net]; [-1] at the source step *)
}

type path = {
  p_arrival : float;  (** estimated endpoint arrival via this path, s *)
  p_steps : step list;  (** endpoint first, back to the source net *)
}

val compare_paths : path -> path -> int
(** Worst (latest-arriving) first; bit-equal arrivals tie-break on the
    step lists, so sorting is deterministic. *)

val k_worst : 'cell Timing.t -> po:int -> k:int -> path list
(** The up-to-[k] worst paths ending at net [po]: the timing-setting
    chain first, then the alternatives worst-estimate first.  [[]] when
    the net never switched.  Raises [Invalid_argument] when [k < 1]. *)

val nets_of_path : 'cell Graph.t -> path -> string list
(** The net names along a path, endpoint first. *)
