(* Deliberately the pre-SoA idiom: a [verdict option array], inputs
   gathered through [Option]-returning reads, evaluation by topological
   order.  Nothing here may share propagation code with Timing's sweep —
   the whole point is an independent derivation of the same bits. *)

let analyze t =
  let g = Timing.graph t in
  let engine = Timing.engine t in
  let verdicts = Array.make (Graph.cell_count g) None in
  let arrival net =
    match Graph.driver g ~net with
    | None -> Timing.arrival t ~net (* undriven: the committed source event *)
    | Some c ->
      Option.map (fun (v : Timing.verdict) -> v.Timing.out) verdicts.(c)
  in
  Array.iter
    (fun c ->
      let nets = Graph.cell_inputs g c in
      let inputs = ref [] in
      for pin = Array.length nets - 1 downto 0 do
        match arrival nets.(pin) with
        | Some a ->
          inputs :=
            { Timing.in_pin = pin; in_net = nets.(pin); in_arrival = a }
            :: !inputs
        | None -> ()
      done;
      verdicts.(c) <- engine (Graph.payload g c) !inputs)
    (Graph.topological g);
  verdicts

let agrees t =
  let reference = analyze t in
  let n = Array.length reference in
  let rec ok c =
    c >= n
    || (Timing.verdict_eq reference.(c) (Timing.verdict t ~cell:c)
        && ok (c + 1))
  in
  ok 0
