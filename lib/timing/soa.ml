module Measure = Proxim_measure.Measure

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  src_time : floats;
  src_slew : floats;
  src_tag : Bytes.t;
  out_time : floats;
  out_slew : floats;
  out_tag : Bytes.t;
  winner : int array;
  cand_start : int array;
  cand_count : int array;
  cand_pin : int array;
  cand_net : int array;
  cand_would : floats;
}

let tag_none = '\000'

let tag_of_edge = function Measure.Rise -> '\001' | Measure.Fall -> '\002'

let edge_of_tag = function
  | '\001' -> Measure.Rise
  | '\002' -> Measure.Fall
  | c -> invalid_arg (Printf.sprintf "Soa.edge_of_tag: tag %d" (Char.code c))

let floats n : floats =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill a 0.;
  a

let create ~nets ~cells ~fanin =
  let cand_start = Array.make (cells + 1) 0 in
  for c = 0 to cells - 1 do
    cand_start.(c + 1) <- cand_start.(c) + fanin c
  done;
  let pool = cand_start.(cells) in
  {
    src_time = floats nets;
    src_slew = floats nets;
    src_tag = Bytes.make (max nets 1) tag_none;
    out_time = floats cells;
    out_slew = floats cells;
    out_tag = Bytes.make (max cells 1) tag_none;
    winner = Array.make (max cells 1) 0;
    cand_start;
    cand_count = Array.make (max cells 1) 0;
    cand_pin = Array.make (max pool 1) 0;
    cand_net = Array.make (max pool 1) 0;
    cand_would = floats pool;
  }

let clear_verdicts t = Bytes.fill t.out_tag 0 (Bytes.length t.out_tag) tag_none

let bytes_used t =
  let word = Sys.word_size / 8 in
  (8 * Bigarray.Array1.dim t.src_time)
  + (8 * Bigarray.Array1.dim t.src_slew)
  + Bytes.length t.src_tag
  + (8 * Bigarray.Array1.dim t.out_time)
  + (8 * Bigarray.Array1.dim t.out_slew)
  + Bytes.length t.out_tag
  + (word * Array.length t.winner)
  + (word * Array.length t.cand_start)
  + (word * Array.length t.cand_count)
  + (word * Array.length t.cand_pin)
  + (word * Array.length t.cand_net)
  + (8 * Bigarray.Array1.dim t.cand_would)
