(* The shared timing-graph IR: an arena of interned nets and cells with
   fanin/fanout adjacency, topological order and levels, plus the generic
   digraph algorithms (cycle enumeration, reachability) that the lint and
   design layers previously each reimplemented. *)

(* ------------------------------------------------------------------ *)
(* Generic digraph algorithms over nodes 0..n-1                        *)

let cycles ~n ~succ ~roots =
  let state = Array.make n `White in
  let found = ref [] in
  let rec visit u path =
    match state.(u) with
    | `Black -> ()
    | `Gray ->
      (* [u] is on the DFS stack: the edge we just followed closes a
         cycle.  [path] is newest-first from the immediate predecessor of
         this re-entry back to the root; the cycle body is the prefix up
         to (excluding) [u], reversed into edge order. *)
      let rec upto acc = function
        | [] -> acc
        | v :: tl -> if v = u then acc else upto (v :: acc) tl
      in
      found := (u, u :: upto [] path) :: !found
    | `White ->
      state.(u) <- `Gray;
      List.iter (fun v -> visit v (u :: path)) (succ u);
      state.(u) <- `Black
  in
  List.iter (fun r -> visit r []) roots;
  List.rev !found

let reachable ~n ~succ ~roots =
  let seen = Array.make n false in
  let rec go = function
    | [] -> ()
    | u :: tl ->
      let frontier =
        List.fold_left
          (fun acc v ->
            if seen.(v) then acc
            else begin
              seen.(v) <- true;
              v :: acc
            end)
          tl (succ u)
      in
      go frontier
  in
  let roots =
    List.filter
      (fun r ->
        if seen.(r) then false
        else begin
          seen.(r) <- true;
          true
        end)
      roots
  in
  go roots;
  seen

(* ------------------------------------------------------------------ *)
(* The arena                                                           *)

type 'cell spec = {
  spec_name : string;
  spec_payload : 'cell;
  spec_inputs : string array;
  spec_output : string;
}

type 'cell t = {
  net_names : string array;
  net_ids : (string, int) Hashtbl.t;
  cell_names : string array;
  cell_ids : (string, int) Hashtbl.t;
  payloads : 'cell array;
  cell_inputs : int array array;  (* cell -> input net ids, pin order *)
  cell_outputs : int array;  (* cell -> output net id *)
  net_driver : int array;  (* net -> driving cell id, or -1 for sources *)
  net_readers : (int * int) array array;  (* net -> (cell, pin), file order *)
  pis : int array;
  pos : int array;
  topo : int array;  (* cells, drivers before readers *)
  cell_levels : int array;
  levels : int array array;  (* level -> cells, topo order within a level *)
}

exception Cycle of { through : string }

let build ~cells ~primary_inputs ~primary_outputs =
  let net_ids = Hashtbl.create 64 in
  let net_names_rev = ref [] in
  let n_nets = ref 0 in
  let intern name =
    match Hashtbl.find_opt net_ids name with
    | Some id -> id
    | None ->
      let id = !n_nets in
      incr n_nets;
      Hashtbl.add net_ids name id;
      net_names_rev := name :: !net_names_rev;
      id
  in
  let pis = Array.of_list (List.map intern primary_inputs) in
  let cells = Array.of_list cells in
  let n_cells = Array.length cells in
  let cell_ids = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem cell_ids c.spec_name then
        invalid_arg ("Graph.build: duplicate cell " ^ c.spec_name);
      Hashtbl.add cell_ids c.spec_name i)
    cells;
  let cell_inputs = Array.map (fun c -> Array.map intern c.spec_inputs) cells in
  let cell_outputs = Array.map (fun c -> intern c.spec_output) cells in
  let pos = Array.of_list (List.map intern primary_outputs) in
  let net_names = Array.of_list (List.rev !net_names_rev) in
  let net_driver = Array.make !n_nets (-1) in
  Array.iteri
    (fun i out ->
      if net_driver.(out) >= 0 then
        invalid_arg ("Graph.build: net driven twice: " ^ net_names.(out));
      net_driver.(out) <- i)
    cell_outputs;
  let readers_rev = Array.make !n_nets [] in
  Array.iteri
    (fun i inputs ->
      Array.iteri
        (fun pin net -> readers_rev.(net) <- (i, pin) :: readers_rev.(net))
        inputs)
    cell_inputs;
  let net_readers = Array.map (fun l -> Array.of_list (List.rev l)) readers_rev in
  (* topological order: DFS postorder over the cells in declaration order,
     fanin first — the traversal {!Design.create} historically used, so
     downstream report orders are unchanged *)
  let topo_rev = ref [] in
  let state = Array.make n_cells `White in
  let rec visit i =
    match state.(i) with
    | `Black -> ()
    | `Gray -> raise (Cycle { through = cells.(i).spec_name })
    | `White ->
      state.(i) <- `Gray;
      Array.iter
        (fun net ->
          let d = net_driver.(net) in
          if d >= 0 then visit d)
        cell_inputs.(i);
      state.(i) <- `Black;
      topo_rev := i :: !topo_rev
  in
  for i = 0 to n_cells - 1 do
    visit i
  done;
  let topo = Array.of_list (List.rev !topo_rev) in
  (* levels: a cell sits one level above its deepest driven input *)
  let cell_levels = Array.make n_cells 0 in
  Array.iter
    (fun i ->
      let l =
        Array.fold_left
          (fun acc net ->
            let d = net_driver.(net) in
            if d >= 0 then max acc (cell_levels.(d) + 1) else acc)
          0 cell_inputs.(i)
      in
      cell_levels.(i) <- l)
    topo;
  let n_levels =
    Array.fold_left (fun acc l -> max acc (l + 1)) 0 cell_levels
  in
  let level_rev = Array.make n_levels [] in
  (* walk topo backwards so each level list ends up in topo order *)
  for k = Array.length topo - 1 downto 0 do
    let i = topo.(k) in
    level_rev.(cell_levels.(i)) <- i :: level_rev.(cell_levels.(i))
  done;
  let levels = Array.map Array.of_list level_rev in
  {
    net_names;
    net_ids;
    cell_names = Array.map (fun c -> c.spec_name) cells;
    cell_ids;
    payloads = Array.map (fun c -> c.spec_payload) cells;
    cell_inputs;
    cell_outputs;
    net_driver;
    net_readers;
    pis;
    pos;
    topo;
    cell_levels;
    levels;
  }

let net_count t = Array.length t.net_names
let cell_count t = Array.length t.payloads
let net_name t id = t.net_names.(id)
let net_id t name = Hashtbl.find_opt t.net_ids name
let cell_name t id = t.cell_names.(id)
let cell_id t name = Hashtbl.find_opt t.cell_ids name
let payload t id = t.payloads.(id)
let cell_inputs t id = t.cell_inputs.(id)
let cell_output t id = t.cell_outputs.(id)

let driver t ~net = if t.net_driver.(net) >= 0 then Some t.net_driver.(net) else None
let driver_id t ~net = t.net_driver.(net)

let readers t ~net = t.net_readers.(net)
let primary_inputs t = t.pis
let primary_outputs t = t.pos
let topological t = t.topo
let cell_level t id = t.cell_levels.(id)
let level_count t = Array.length t.levels
let level t i = t.levels.(i)

let fanin_cone t ~cells =
  let seen = Array.make (cell_count t) false in
  let rec mark_cell i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Array.iter
        (fun net ->
          let d = t.net_driver.(net) in
          if d >= 0 then mark_cell d)
        t.cell_inputs.(i)
    end
  in
  List.iter mark_cell cells;
  seen

let fanout_cone t ~nets ~cells =
  let dirty = Array.make (cell_count t) false in
  let rec mark_cell i =
    if not dirty.(i) then begin
      dirty.(i) <- true;
      mark_net t.cell_outputs.(i)
    end
  and mark_net net = Array.iter (fun (c, _) -> mark_cell c) t.net_readers.(net) in
  List.iter mark_net nets;
  List.iter mark_cell cells;
  dirty
