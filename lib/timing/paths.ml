(* K-worst path enumeration over an analyzed timing state.

   Per-net top-K lists are merged in topological order: the paths to a
   driven net extend the paths to each candidate input net by that arc's
   delay contribution [would_be - arrival(input)].

   Rank 1 is forced to the winner chain: engines store the actual output
   arrival as the winning pin's [would_be], so extending the winner
   input's rank-1 path by that arc telescopes to exactly the reported
   arrival.  The forcing matters because "latest estimate" and "timing
   setting" disagree under proximity: for assisting inputs the composed
   response tracks the EARLIEST would-be crossing, so the critical
   (timing-setting) path can carry a smaller number than a losing pin's
   single-input estimate.  Ranks 2..K are the alternatives, latest
   estimate first. *)

type step = { net : int; via_pin : int }

type path = { p_arrival : float; p_steps : step list }

(* worst (latest) first; bit-equal scores fall back to the step lists so
   ties are deterministic whatever order the merge produced them in *)
let compare_paths a b =
  match compare b.p_arrival a.p_arrival with
  | 0 -> compare a.p_steps b.p_steps
  | c -> c

let take k l =
  let rec go k acc = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | x :: tl -> go (k - 1) (x :: acc) tl
  in
  go k [] l

let k_worst timing ~po ~k =
  if k < 1 then invalid_arg "Paths.k_worst: k must be >= 1";
  let g = Timing.graph timing in
  let memo = Array.make (Graph.net_count g) [] in
  let source net =
    match Timing.arrival timing ~net with
    | Some a when Graph.driver g ~net = None ->
      memo.(net) <- [ { p_arrival = a.Timing.time; p_steps = [ { net; via_pin = -1 } ] } ]
    | Some _ | None -> ()
  in
  for net = 0 to Graph.net_count g - 1 do
    source net
  done;
  Array.iter
    (fun cell ->
      match Timing.verdict timing ~cell with
      | None -> ()
      | Some v ->
        let out = Graph.cell_output g cell in
        let extend (c : Timing.candidate) ps =
          match Timing.arrival timing ~net:c.Timing.from_net with
          | None -> []
          | Some a_in ->
            let d = c.Timing.would_be -. a_in.Timing.time in
            List.map
              (fun p ->
                {
                  p_arrival = p.p_arrival +. d;
                  p_steps =
                    { net = out; via_pin = c.Timing.pin } :: p.p_steps;
                })
              ps
        in
        let head, alternatives =
          Array.fold_left
            (fun (head, alts) (c : Timing.candidate) ->
              match memo.(c.Timing.from_net) with
              | [] -> (head, alts)
              | best :: others when c.Timing.pin = v.Timing.winner ->
                (* the winner's extension of the winner input's own
                   rank-1 path carries the exact arrival: force it to
                   rank 1, demote that input's lower ranks *)
                (extend c [ best ], extend c others @ alts)
              | ps -> (head, extend c ps @ alts))
            ([], []) v.Timing.candidates
        in
        let ranked =
          match head with
          | [] -> take k (List.sort compare_paths alternatives)
          | h :: _ -> h :: take (k - 1) (List.sort compare_paths alternatives)
        in
        memo.(out) <- ranked)
    (Graph.topological g);
  memo.(po)

let nets_of_path g p = List.map (fun s -> Graph.net_name g s.net) p.p_steps
