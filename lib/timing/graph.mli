(** The shared timing-graph IR.

    One arena holds the interned nets and cells of a gate-level design:
    fanin/fanout adjacency, the driver of every net, a topological order
    and topological levels.  {!Design}, the {!Sta} propagation engines and
    the structural lints all build on this instead of maintaining private
    hash-table graphs and ad-hoc traversals.

    Nets and cells are dense integer ids ([0..net_count-1] and
    [0..cell_count-1]), so per-node annotations are plain arrays — the
    incremental timing engine ({!Timing}) stores its arrival/slew/edge
    annotations that way. *)

(** {1 Generic digraph algorithms}

    Shared by consumers whose graphs are not (yet) well-formed designs —
    the collect-all netlist lints run these over broken netlists with
    duplicate drivers and cycles. *)

val cycles :
  n:int -> succ:(int -> int list) -> roots:int list -> (int * int list) list
(** DFS from each root in order; every back edge reports once as
    [(entry, cycle)] where [entry] is the re-entered node and [cycle]
    lists the member nodes in edge order starting at [entry].  A
    self-loop reports [(u, [u])]. *)

val reachable : n:int -> succ:(int -> int list) -> roots:int list -> bool array
(** Nodes reachable from [roots] (roots included). *)

(** {1 The arena} *)

type 'cell spec = {
  spec_name : string;
  spec_payload : 'cell;
  spec_inputs : string array;  (** input net names, pin order *)
  spec_output : string;
}

type 'cell t

exception Cycle of { through : string }
(** Raised by {!build} on a combinational cycle; [through] names a cell
    on the cycle (the first one the traversal re-enters). *)

val build :
  cells:'cell spec list ->
  primary_inputs:string list ->
  primary_outputs:string list ->
  'cell t
(** Intern the nets and cells and precompute adjacency, topological order
    (drivers before readers; DFS postorder over the cells in declaration
    order) and levels.  Raises {!Cycle} on a combinational cycle and
    [Invalid_argument] on duplicate cell names or doubly-driven nets —
    callers wanting richer validation (arity, undriven nets) check before
    building. *)

val net_count : 'cell t -> int
val cell_count : 'cell t -> int
val net_name : 'cell t -> int -> string
val net_id : 'cell t -> string -> int option
val cell_name : 'cell t -> int -> string
val cell_id : 'cell t -> string -> int option
val payload : 'cell t -> int -> 'cell
val cell_inputs : 'cell t -> int -> int array
val cell_output : 'cell t -> int -> int

val driver : 'cell t -> net:int -> int option
(** The cell driving [net]; [None] for sources (primary inputs). *)

val driver_id : 'cell t -> net:int -> int
(** {!driver} without the option: the driving cell id, or [-1] for
    sources.  The propagation hot path reads every input net's driver
    once per evaluation — this form costs one array load and no
    allocation. *)

val readers : 'cell t -> net:int -> (int * int) array
(** [(cell, pin)] pairs reading [net], in declaration order. *)

val primary_inputs : 'cell t -> int array
val primary_outputs : 'cell t -> int array

val topological : 'cell t -> int array
(** Cells, drivers before readers. *)

val cell_level : 'cell t -> int -> int
(** Topological level: one above the deepest driven input, 0 for cells
    fed by primary inputs only. *)

val level_count : 'cell t -> int

val level : 'cell t -> int -> int array
(** Cells of one level, in topological order.  Cells of a level never
    feed each other, so they can be timed concurrently. *)

val fanin_cone : 'cell t -> cells:int list -> bool array
(** Per-cell membership of the transitive fanin cone of the given cells
    (the cells themselves included) — the set of cells whose outputs can
    possibly influence theirs.  The sensitization engine sizes its
    implication budget against this cone. *)

val fanout_cone : 'cell t -> nets:int list -> cells:int list -> bool array
(** Per-cell membership of the transitive fanout cone of the given nets
    and cells (the cells themselves included) — the set an edit to those
    nodes can possibly affect. *)
