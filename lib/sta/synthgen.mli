(** Deterministic synthetic-design generator for scale testing.

    Real benchmark netlists stop at a few thousand cells; the scaling
    story needs designs three orders of magnitude larger with {e known}
    structure.  [generate] builds a layered combinational design:
    [depth] layers of roughly equal width, each cell drawing its first
    input from the immediately previous layer (so layer index {e is} the
    timing level — an invariant the tests lean on) and its remaining
    inputs from up to [reach - 1] parity-preserving steps (two layers
    each) further back, at positions within [±window] of the cell's own
    aligned position.  Parity-preserving because the gate mix is all
    inverting: a net's edge polarity is its layer parity, and a cell fed
    from both parities would see mixed input edges, which the
    single-vector analysis rejects by design.  The local window
    models placement locality: fanout cones stay geometrically narrow,
    so a single-PI ECO touches O(depth · window) cells rather than a
    constant fraction of the design — which is what makes incremental
    latency measurable against full-analysis latency at 10^6 cells.
    Back-reach edges reconverge (a cell and its neighbour share distant
    ancestors), exercising the dominant-pin selection on multi-path
    fanin exactly like real logic does.

    Everything is driven by one {!Proxim_util.Prng} stream seeded from
    [seed]: the same [(seed, cells, depth, window, reach)] tuple yields
    a byte-identical design on every run and platform.  Gate mix is
    nand2/nor2/nand3 from [tech].

    Naming: primary inputs ["pi0"…], layer-[l] cell [j] is ["u<l>_<j>"]
    driving net ["n<l>_<j>"]; the last layer's nets are the primary
    outputs. *)

val generate :
  ?seed:int ->
  ?depth:int ->
  ?window:int ->
  ?reach:int ->
  tech:Proxim_gates.Tech.t ->
  cells:int ->
  unit ->
  string * Design.t
(** [(name, design)] with exactly [cells] cells.  Defaults:
    [seed = 0], [depth = 16], [window = 8], [reach = 3].  Requires
    [cells >= depth >= 1], [window >= 1], [reach >= 1]; raises
    [Invalid_argument] otherwise.  The generated name encodes the
    parameters (["synth_c<cells>_d<depth>_s<seed>"]). *)
