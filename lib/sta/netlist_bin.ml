module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc

let magic = "PXNB"
let version = 1
let end_marker = 0xED

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* --- primitives ------------------------------------------------------ *)

let write_varint oc n =
  if n < 0 then invalid_arg "Netlist_bin: negative varint";
  let rec go n =
    if n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

(* An OCaml int has 63 bits, so a varint may carry at most 62 value bits
   (the sign bit must stay clear): 8 full continuation bytes (7 bits
   each) plus a final byte contributing bits 56..61.  A ninth byte with
   the continuation bit, or a bit-62 payload at shift 56, would wrap the
   accumulator negative — the overflow that once let attacker-controlled
   "lengths" slip past every [n > max] guard as negative ints. *)
let read_varint ic =
  let rec go shift acc =
    let b = try input_byte ic with End_of_file -> corrupt "truncated varint" in
    if shift = 56 && b land 0x40 <> 0 then
      corrupt "varint overflows the 63-bit integer range";
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift >= 56 then corrupt "varint too long"
    else go (shift + 7) acc
  in
  go 0 0

(* Every count and length decoded from the wire goes through this guard:
   [read_varint] can no longer return a negative value, but the decoders
   downstream ([really_input_string], [List.init], [Array.init]) must
   never see one even if the invariant breaks — a negative length is
   [Corrupt], not an untyped [Invalid_argument] escaping a daemon. *)
let read_count ic ~what ~max =
  let n = read_varint ic in
  if n < 0 then corrupt "negative %s %d" what n;
  if n > max then corrupt "%s %d out of range (max %d)" what n max;
  n

let max_string_len = 0x0fff_ffff

let write_string oc s =
  write_varint oc (String.length s);
  output_string oc s

(* The claimed length is attacker-controlled; the channel's remaining
   bytes are not.  Reading in bounded chunks means a 4-byte corrupt
   header claiming a 256 MB string over-allocates at most one chunk
   before end-of-file turns it into [Corrupt]. *)
let read_chunk_size = 65536

let read_string ic =
  let n = read_count ic ~what:"string length" ~max:max_string_len in
  if n <= read_chunk_size then (
    try really_input_string ic n with End_of_file -> corrupt "truncated string")
  else begin
    let buf = Buffer.create read_chunk_size in
    let remaining = ref n in
    while !remaining > 0 do
      let k = min read_chunk_size !remaining in
      (match really_input_string ic k with
       | s -> Buffer.add_string buf s
       | exception End_of_file -> corrupt "truncated string");
      remaining := !remaining - k
    done;
    Buffer.contents buf
  end

let write_f64 oc x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float x);
  output_bytes oc b

let read_f64 ic =
  let b = Bytes.create 8 in
  (try really_input ic b 0 8 with End_of_file -> corrupt "truncated float");
  Int64.float_of_bits (Bytes.get_int64_le b 0)

(* --- sniffing --------------------------------------------------------- *)

let string_is_binary s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

let file_is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (String.length magic) with
        | exception End_of_file -> false
        | head -> head = magic)

(* --- writer ----------------------------------------------------------- *)

let write_channel ?thresholds ~name design oc =
  output_string oc magic;
  output_byte oc version;
  write_string oc name;
  (match thresholds with
   | None -> output_byte oc 0
   | Some (th : Vtc.thresholds) ->
     output_byte oc 1;
     write_f64 oc th.Vtc.vil;
     write_f64 oc th.Vtc.vih;
     write_f64 oc th.Vtc.vdd);
  let cells = Design.cells design in
  (* dense gate-name table in first-appearance order *)
  let gate_idx = Hashtbl.create 16 in
  let gate_names = ref [] in
  List.iter
    (fun (c : Design.cell) ->
      let gname = c.Design.gate.Gate.name in
      if not (Hashtbl.mem gate_idx gname) then begin
        Hashtbl.add gate_idx gname (Hashtbl.length gate_idx);
        gate_names := gname :: !gate_names
      end)
    cells;
  let gate_names = List.rev !gate_names in
  write_varint oc (List.length gate_names);
  List.iter (write_string oc) gate_names;
  let write_net_list nets =
    write_varint oc (List.length nets);
    List.iter (write_string oc) nets
  in
  write_net_list (Design.primary_inputs design);
  write_net_list (Design.primary_outputs design);
  write_varint oc (List.length cells);
  List.iter
    (fun (c : Design.cell) ->
      write_varint oc (Hashtbl.find gate_idx c.Design.gate.Gate.name);
      write_string oc c.Design.name;
      write_string oc c.Design.output_net;
      write_varint oc (Array.length c.Design.input_nets);
      Array.iter (write_string oc) c.Design.input_nets)
    cells;
  output_byte oc end_marker;
  flush oc

let write_file ?thresholds ~name design path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel ?thresholds ~name design oc)

(* --- reader ----------------------------------------------------------- *)

let read_channel tech ic =
  try
    let head =
      try really_input_string ic (String.length magic)
      with End_of_file -> corrupt "file too short for magic"
    in
    if head <> magic then corrupt "bad magic %S (want %S)" head magic;
    let v =
      try input_byte ic with End_of_file -> corrupt "truncated version"
    in
    if v <> version then corrupt "unsupported format version %d" v;
    let name = read_string ic in
    let thresholds =
      match
        try input_byte ic with End_of_file -> corrupt "truncated thresholds"
      with
      | 0 -> None
      | 1 ->
        let vil = read_f64 ic in
        let vih = read_f64 ic in
        let vdd = read_f64 ic in
        Some { Vtc.vil; vih; vdd }
      | b -> corrupt "bad thresholds flag %d" b
    in
    let n_gates = read_count ic ~what:"gate table size" ~max:0xffff in
    let gates =
      Array.init n_gates (fun _ ->
        let gname = read_string ic in
        match Gate.of_name tech gname with
        | Ok g -> g
        | Error msg -> corrupt "gate table: %s" msg)
    in
    let read_net_list () =
      let n = read_count ic ~what:"net list length" ~max:max_string_len in
      List.init n (fun _ -> read_string ic)
    in
    let pis = read_net_list () in
    let pos = read_net_list () in
    let n_cells = read_count ic ~what:"cell count" ~max:max_string_len in
    (* streamed: one cell record decoded at a time, consed in reverse *)
    let cells = ref [] in
    for _ = 1 to n_cells do
      let gi = read_varint ic in
      if gi >= n_gates then corrupt "gate index %d out of table" gi;
      let cname = read_string ic in
      let output = read_string ic in
      let n_in = read_count ic ~what:"input count" ~max:0xffff in
      let inputs = Array.init n_in (fun _ -> read_string ic) in
      cells :=
        {
          Design.name = cname;
          gate = gates.(gi);
          input_nets = inputs;
          output_net = output;
        }
        :: !cells
    done;
    (match input_byte ic with
     | exception End_of_file -> corrupt "missing end marker"
     | b when b <> end_marker -> corrupt "bad end marker 0x%02x" b
     | _ -> ());
    let design =
      Design.create ~cells:(List.rev !cells) ~primary_inputs:pis
        ~primary_outputs:pos
    in
    Ok (name, design, thresholds)
  with
  | Corrupt msg -> Error ("binary netlist: " ^ msg)
  | Invalid_argument msg -> Error msg

let read_file tech path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read_channel tech ic)
