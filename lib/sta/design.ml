module Gate = Proxim_gates.Gate
module Graph = Proxim_timing.Graph

type cell = {
  name : string;
  gate : Gate.t;
  input_nets : string array;
  output_net : string;
}

type t = {
  cell_list : cell list;
  pis : string list;
  pos : string list;
  pos_tbl : (string, unit) Hashtbl.t;  (* membership index for fanout_load *)
  graph : cell Graph.t;
}

let create ~cells:cell_list ~primary_inputs:pis ~primary_outputs:pos =
  (* every membership test goes through a hash table: validation must
     stay linear in the design size, or million-cell netlists spend
     longer here than in the analysis proper *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg ("Design.create: duplicate cell " ^ c.name);
      Hashtbl.add seen c.name ();
      if Array.length c.input_nets <> c.gate.Gate.fan_in then
        invalid_arg ("Design.create: arity mismatch on " ^ c.name))
    cell_list;
  let pi_tbl = Hashtbl.create (List.length pis) in
  List.iter (fun net -> Hashtbl.replace pi_tbl net ()) pis;
  let driver_tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem driver_tbl c.output_net then
        invalid_arg ("Design.create: net driven twice: " ^ c.output_net);
      if Hashtbl.mem pi_tbl c.output_net then
        invalid_arg ("Design.create: primary input driven: " ^ c.output_net);
      Hashtbl.add driver_tbl c.output_net c)
    cell_list;
  (* every read net must be driven or be a primary input *)
  List.iter
    (fun c ->
      Array.iter
        (fun net ->
          if (not (Hashtbl.mem driver_tbl net)) && not (Hashtbl.mem pi_tbl net)
          then invalid_arg ("Design.create: undriven net " ^ net))
        c.input_nets)
    cell_list;
  List.iter
    (fun net ->
      if (not (Hashtbl.mem driver_tbl net)) && not (Hashtbl.mem pi_tbl net)
      then invalid_arg ("Design.create: undriven primary output " ^ net))
    pos;
  let graph =
    try
      Graph.build
        ~cells:
          (List.map
             (fun c ->
               {
                 Graph.spec_name = c.name;
                 spec_payload = c;
                 spec_inputs = c.input_nets;
                 spec_output = c.output_net;
               })
             cell_list)
        ~primary_inputs:pis ~primary_outputs:pos
    with Graph.Cycle { through } ->
      invalid_arg ("Design.create: combinational cycle through " ^ through)
  in
  let pos_tbl = Hashtbl.create (List.length pos) in
  List.iter (fun net -> Hashtbl.replace pos_tbl net ()) pos;
  { cell_list; pis; pos; pos_tbl; graph }

let cells t = t.cell_list
let primary_inputs t = t.pis
let primary_outputs t = t.pos
let graph t = t.graph

let topological t =
  Array.to_list (Array.map (Graph.payload t.graph) (Graph.topological t.graph))

let readers t ~net =
  match Graph.net_id t.graph net with
  | None -> []
  | Some id ->
    Array.to_list
      (Array.map
         (fun (c, pin) -> (Graph.payload t.graph c, pin))
         (Graph.readers t.graph ~net:id))

let driver t ~net =
  match Graph.net_id t.graph net with
  | None -> None
  | Some id ->
    Option.map (Graph.payload t.graph) (Graph.driver t.graph ~net:id)

let default_wire_cap = 20e-15
let pad_cap = 50e-15

let fanout_load ?(wire_cap = default_wire_cap) t ~net =
  let pin_caps =
    List.fold_left
      (fun acc (c, _pin) -> acc +. Gate.input_capacitance c.gate)
      0. (readers t ~net)
  in
  let pad = if Hashtbl.mem t.pos_tbl net then pad_cap else 0. in
  pin_caps +. wire_cap +. pad
