module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc

type raw_cell = {
  line : int;
  gate_col : int;
  cell_name : string;
  gate : Gate.t;
  inputs : string list;
  output : string;
}

type raw_error = { err_line : int; err_col : int; err_msg : string }

type raw = {
  raw_name : (string * int) option;
  raw_inputs : (string * int) list;
  raw_outputs : (string * int) list;
  raw_cells : raw_cell list;
  raw_thresholds : (Vtc.thresholds * int) option;
  raw_errors : raw_error list;
}

type accum = {
  mutable r_name : (string * int) option;
  mutable r_inputs : (string * int) list;  (** reversed *)
  mutable r_outputs : (string * int) list;  (** reversed *)
  mutable r_cells : raw_cell list;  (** reversed *)
  mutable r_thresholds : (Vtc.thresholds * int) option;
  mutable r_errors : raw_error list;  (** reversed *)
  mutable r_ended : bool;
}

(* '\r' counts as whitespace so CRLF (and stray mid-line carriage
   returns) parse the same as LF files without shifting any column. *)
let is_ws c = c = ' ' || c = '\t' || c = '\r'

(* Tokens paired with their 1-based starting column in the line. *)
let tokens line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_ws line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_ws line.[!j]) do
        incr j
      done;
      go !j ((String.sub line i (!j - i), i + 1) :: acc)
    end
  in
  go 0 []

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Scan the whole text, never stopping at a bad line: every syntax-level
   problem lands in [raw_errors] with its line and column, and everything
   that did parse is kept so the lint passes can analyze a broken file as
   a whole. *)
let parse_raw tech text =
  let acc =
    {
      r_name = None;
      r_inputs = [];
      r_outputs = [];
      r_cells = [];
      r_thresholds = None;
      r_errors = [];
      r_ended = false;
    }
  in
  let err lineno col fmt =
    Printf.ksprintf
      (fun m ->
        acc.r_errors <-
          { err_line = lineno; err_col = col; err_msg = m } :: acc.r_errors)
      fmt
  in
  let parse_line lineno line =
    match tokens (strip_comment line) with
    | [] -> ()
    | (_, col) :: _ when acc.r_ended -> err lineno col "content after 'end'"
    | [ ("design", col); (name, _) ] -> (
      match acc.r_name with
      | Some _ -> err lineno col "duplicate 'design'"
      | None -> acc.r_name <- Some (name, lineno))
    | ("input", _) :: nets when nets <> [] ->
      acc.r_inputs <-
        List.rev_append
          (List.map (fun (n, _) -> (n, lineno)) nets)
          acc.r_inputs
    | ("output", _) :: nets when nets <> [] ->
      acc.r_outputs <-
        List.rev_append
          (List.map (fun (n, _) -> (n, lineno)) nets)
          acc.r_outputs
    | [ ("thresholds", col); (vil_s, vil_col); (vih_s, vih_col); (vdd_s, vdd_col) ]
      -> (
      match
        ( acc.r_thresholds,
          float_of_string_opt vil_s,
          float_of_string_opt vih_s,
          float_of_string_opt vdd_s )
      with
      | Some _, _, _, _ -> err lineno col "duplicate 'thresholds'"
      | None, Some vil, Some vih, Some vdd ->
        acc.r_thresholds <- Some ({ Vtc.vil; vih; vdd }, lineno)
      | None, vil, vih, _ ->
        (* point at the first token that failed to parse as a number *)
        let bad_col =
          if vil = None then vil_col else if vih = None then vih_col
          else vdd_col
        in
        err lineno bad_col
          "bad numbers in 'thresholds' (expected VIL VIH VDD)")
    | ("cell", cell_col) :: (name, _) :: (gate_name, gate_col) :: rest -> (
      match Gate.of_name tech gate_name with
      | Error m -> err lineno gate_col "%s" m
      | Ok gate -> (
        let rec split_arrow before = function
          | ("->", _) :: [ (out, _) ] -> Some (List.rev before, out)
          | ("->", _) :: _ -> None
          | (t, _) :: tl -> split_arrow (t :: before) tl
          | [] -> None
        in
        match split_arrow [] rest with
        | None -> err lineno cell_col "expected 'cell NAME GATE in... -> out'"
        | Some (ins, out) ->
          acc.r_cells <-
            {
              line = lineno;
              gate_col;
              cell_name = name;
              gate;
              inputs = ins;
              output = out;
            }
            :: acc.r_cells))
    | [ ("end", _) ] -> acc.r_ended <- true
    | (tok, col) :: _ -> err lineno col "unrecognized directive %S" tok
  in
  List.iteri (fun i line -> parse_line (i + 1) line) (String.split_on_char '\n' text);
  {
    raw_name = acc.r_name;
    raw_inputs = List.rev acc.r_inputs;
    raw_outputs = List.rev acc.r_outputs;
    raw_cells = List.rev acc.r_cells;
    raw_thresholds = acc.r_thresholds;
    raw_errors = List.rev acc.r_errors;
  }

let arity_errors raw =
  List.filter_map
    (fun c ->
      let want = c.gate.Gate.fan_in and got = List.length c.inputs in
      if got <> want then
        Some
          {
            err_line = c.line;
            err_col = c.gate_col;
            err_msg =
              Printf.sprintf "gate %s wants %d inputs, got %d" c.gate.Gate.name
                want got;
          }
      else None)
    raw.raw_cells

let design_cell c =
  {
    Design.name = c.cell_name;
    gate = c.gate;
    input_nets = Array.of_list c.inputs;
    output_net = c.output;
  }

let parse tech text =
  let raw = parse_raw tech text in
  let errors =
    List.sort
      (fun a b -> compare (a.err_line, a.err_col) (b.err_line, b.err_col))
      (raw.raw_errors @ arity_errors raw)
  in
  match errors with
  | _ :: _ ->
    Error
      (String.concat "\n"
         (List.map
            (fun e ->
              Printf.sprintf "line %d:%d: %s" e.err_line e.err_col e.err_msg)
            errors))
  | [] -> (
    match raw.raw_name with
    | None -> Error "missing 'design' directive"
    | Some (name, _) -> (
      try
        Ok
          ( name,
            Design.create
              ~cells:(List.map design_cell raw.raw_cells)
              ~primary_inputs:(List.map fst raw.raw_inputs)
              ~primary_outputs:(List.map fst raw.raw_outputs) )
      with Invalid_argument m -> Error m))

let parse_file tech path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse tech (really_input_string ic n))

let to_string ~name design =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "design %s\n" name);
  (match Design.primary_inputs design with
   | [] -> ()
   | pis -> Buffer.add_string buf ("input " ^ String.concat " " pis ^ "\n"));
  (match Design.primary_outputs design with
   | [] -> ()
   | pos -> Buffer.add_string buf ("output " ^ String.concat " " pos ^ "\n"));
  List.iter
    (fun (c : Design.cell) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s %s %s -> %s\n" c.Design.name
           c.Design.gate.Gate.name
           (String.concat " " (Array.to_list c.Design.input_nets))
           c.Design.output_net))
    (Design.cells design);
  Buffer.add_string buf "end\n";
  Buffer.contents buf
