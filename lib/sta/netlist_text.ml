module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc

type raw_cell = {
  line : int;
  cell_name : string;
  gate : Gate.t;
  inputs : string list;
  output : string;
}

type raw = {
  raw_name : (string * int) option;
  raw_inputs : (string * int) list;
  raw_outputs : (string * int) list;
  raw_cells : raw_cell list;
  raw_thresholds : (Vtc.thresholds * int) option;
  raw_errors : (int * string) list;
}

type accum = {
  mutable r_name : (string * int) option;
  mutable r_inputs : (string * int) list;  (** reversed *)
  mutable r_outputs : (string * int) list;  (** reversed *)
  mutable r_cells : raw_cell list;  (** reversed *)
  mutable r_thresholds : (Vtc.thresholds * int) option;
  mutable r_errors : (int * string) list;  (** reversed *)
  mutable r_ended : bool;
}

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Scan the whole text, never stopping at a bad line: every syntax-level
   problem lands in [raw_errors] with its line number, and everything
   that did parse is kept so the lint passes can analyze a broken file as
   a whole. *)
let parse_raw tech text =
  let acc =
    {
      r_name = None;
      r_inputs = [];
      r_outputs = [];
      r_cells = [];
      r_thresholds = None;
      r_errors = [];
      r_ended = false;
    }
  in
  let err lineno fmt =
    Printf.ksprintf (fun m -> acc.r_errors <- (lineno, m) :: acc.r_errors) fmt
  in
  let parse_line lineno line =
    match tokens (strip_comment line) with
    | [] -> ()
    | _ when acc.r_ended -> err lineno "content after 'end'"
    | [ "design"; name ] -> (
      match acc.r_name with
      | Some _ -> err lineno "duplicate 'design'"
      | None -> acc.r_name <- Some (name, lineno))
    | "input" :: nets when nets <> [] ->
      acc.r_inputs <-
        List.rev_append (List.map (fun n -> (n, lineno)) nets) acc.r_inputs
    | "output" :: nets when nets <> [] ->
      acc.r_outputs <-
        List.rev_append (List.map (fun n -> (n, lineno)) nets) acc.r_outputs
    | [ "thresholds"; vil_s; vih_s; vdd_s ] -> (
      match
        ( acc.r_thresholds,
          float_of_string_opt vil_s,
          float_of_string_opt vih_s,
          float_of_string_opt vdd_s )
      with
      | Some _, _, _, _ -> err lineno "duplicate 'thresholds'"
      | None, Some vil, Some vih, Some vdd ->
        acc.r_thresholds <- Some ({ Vtc.vil; vih; vdd }, lineno)
      | None, _, _, _ ->
        err lineno "bad numbers in 'thresholds' (expected VIL VIH VDD)")
    | "cell" :: name :: gate_name :: rest -> (
      match Gate.of_name tech gate_name with
      | Error m -> err lineno "%s" m
      | Ok gate -> (
        let rec split_arrow before = function
          | "->" :: [ out ] -> Some (List.rev before, out)
          | "->" :: _ -> None
          | t :: tl -> split_arrow (t :: before) tl
          | [] -> None
        in
        match split_arrow [] rest with
        | None -> err lineno "expected 'cell NAME GATE in... -> out'"
        | Some (ins, out) ->
          acc.r_cells <-
            { line = lineno; cell_name = name; gate; inputs = ins; output = out }
            :: acc.r_cells))
    | [ "end" ] -> acc.r_ended <- true
    | tok :: _ -> err lineno "unrecognized directive %S" tok
  in
  List.iteri (fun i line -> parse_line (i + 1) line) (String.split_on_char '\n' text);
  {
    raw_name = acc.r_name;
    raw_inputs = List.rev acc.r_inputs;
    raw_outputs = List.rev acc.r_outputs;
    raw_cells = List.rev acc.r_cells;
    raw_thresholds = acc.r_thresholds;
    raw_errors = List.rev acc.r_errors;
  }

let arity_errors raw =
  List.filter_map
    (fun c ->
      let want = c.gate.Gate.fan_in and got = List.length c.inputs in
      if got <> want then
        Some
          ( c.line,
            Printf.sprintf "gate %s wants %d inputs, got %d" c.gate.Gate.name
              want got )
      else None)
    raw.raw_cells

let design_cell c =
  {
    Design.name = c.cell_name;
    gate = c.gate;
    input_nets = Array.of_list c.inputs;
    output_net = c.output;
  }

let parse tech text =
  let raw = parse_raw tech text in
  let errors =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (raw.raw_errors @ arity_errors raw)
  in
  match errors with
  | _ :: _ ->
    Error
      (String.concat "\n"
         (List.map (fun (l, m) -> Printf.sprintf "line %d: %s" l m) errors))
  | [] -> (
    match raw.raw_name with
    | None -> Error "missing 'design' directive"
    | Some (name, _) -> (
      try
        Ok
          ( name,
            Design.create
              ~cells:(List.map design_cell raw.raw_cells)
              ~primary_inputs:(List.map fst raw.raw_inputs)
              ~primary_outputs:(List.map fst raw.raw_outputs) )
      with Invalid_argument m -> Error m))

let parse_file tech path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse tech (really_input_string ic n))

let to_string ~name design =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "design %s\n" name);
  (match Design.primary_inputs design with
   | [] -> ()
   | pis -> Buffer.add_string buf ("input " ^ String.concat " " pis ^ "\n"));
  (match Design.primary_outputs design with
   | [] -> ()
   | pos -> Buffer.add_string buf ("output " ^ String.concat " " pos ^ "\n"));
  List.iter
    (fun (c : Design.cell) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s %s %s -> %s\n" c.Design.name
           c.Design.gate.Gate.name
           (String.concat " " (Array.to_list c.Design.input_nets))
           c.Design.output_net))
    (Design.cells design);
  Buffer.add_string buf "end\n";
  Buffer.contents buf
