(** A small structural netlist text format for gate-level designs.

    {v
    # carry tree
    design carry_tree
    input a b c
    output carry
    cell u1 nand2 a b -> n1
    cell u2 nand2 a c -> n2
    cell u3 nand2 b c -> n3
    cell u5 nand3 n1 n2 n3 -> carry
    end
    v}

    One directive per line; [#] starts a comment; gate names follow
    {!Proxim_gates.Gate.of_name}.  Both LF and CRLF line endings are
    accepted ([\r] is plain whitespace to the scanner).  An optional
    [thresholds VIL VIH VDD] directive records the measurement threshold
    set the design is meant to be analyzed with — it does not affect
    {!parse}'s structural result, but the lint layer checks it against
    the paper's §2 rule.

    [parse] validates through {!Design.create}, so structural errors
    (cycles, double drivers, arity) are reported with the same messages.
    Syntax and arity problems are {e collected}: the parser keeps
    scanning after a bad line and the [Error] message joins every
    complaint (one per line, ["line N:C: ..."] with a 1-based line and
    column, in source order). *)

type raw_cell = {
  line : int;  (** 1-based source line of the [cell] directive *)
  gate_col : int;  (** 1-based column of the gate-name token *)
  cell_name : string;
  gate : Proxim_gates.Gate.t;
  inputs : string list;
      (** as written — may disagree with the gate's fan-in; {!parse}
          rejects that, the lint layer reports it as a diagnostic *)
  output : string;
}

type raw_error = {
  err_line : int;  (** 1-based source line *)
  err_col : int;  (** 1-based column of the offending token *)
  err_msg : string;
}

type raw = {
  raw_name : (string * int) option;  (** design name and its line *)
  raw_inputs : (string * int) list;  (** declared primary inputs, with lines *)
  raw_outputs : (string * int) list;
  raw_cells : raw_cell list;  (** only the cells that parsed, in file order *)
  raw_thresholds : (Proxim_vtc.Vtc.thresholds * int) option;
  raw_errors : raw_error list;
      (** every syntax-level problem, located, in source order *)
}
(** The parsed-but-unvalidated form of a netlist file: everything the
    scanner could make sense of plus everything it could not.  This is
    what the collect-all lint passes ({!Proxim_lint}) consume — unlike
    {!Design.create} they must see the whole broken file, not abort at
    the first structural error. *)

val parse_raw : Proxim_gates.Tech.t -> string -> raw
(** Scan the text without structural validation.  Never fails: problems
    are returned in [raw_errors]. *)

val parse :
  Proxim_gates.Tech.t -> string -> (string * Design.t, string) result
(** [parse tech text] returns [(design_name, design)] or a message with
    the offending line numbers — all syntax/arity errors are reported at
    once, newline-joined; structural errors from {!Design.create} keep
    that function's single-message form. *)

val parse_file :
  Proxim_gates.Tech.t -> string -> (string * Design.t, string) result

val to_string : name:string -> Design.t -> string
(** Render a design back to the format; [parse] of the result round-trips
    (up to comments, whitespace and a [thresholds] directive). *)
