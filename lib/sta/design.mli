(** Gate-level combinational designs for the STA example flows.

    A design is a set of cells (instances of {!Proxim_gates.Gate.t})
    wired by named nets.  Each net has exactly one driver (a cell output
    or a primary input); combinational loops are rejected. *)

type cell = {
  name : string;
  gate : Proxim_gates.Gate.t;
  input_nets : string array;  (** one net per gate pin, pin order *)
  output_net : string;
}

type t

val create :
  cells:cell list ->
  primary_inputs:string list ->
  primary_outputs:string list ->
  t
(** Validates: cell names unique, pin arities match the gates, every
    non-primary-input net is driven by exactly one cell, primary outputs
    exist, and the design is acyclic.  Raises [Invalid_argument] with a
    descriptive message otherwise. *)

val cells : t -> cell list
val primary_inputs : t -> string list
val primary_outputs : t -> string list

val topological : t -> cell list
(** Cells in dependency order (drivers before readers). *)

val fanout_load : ?wire_cap:float -> t -> net:string -> float
(** Capacitive load seen by the driver of [net]: the sum of the input
    capacitances of all cell pins reading it, plus [wire_cap] (default
    20 fF) for the interconnect, plus 50 fF if the net is a primary
    output (pad/probe load). *)

val driver : t -> net:string -> cell option
(** The cell driving [net]; [None] for primary inputs. *)

val readers : t -> net:string -> (cell * int) list
(** Cells (with the pin index) reading [net]. *)

val graph : t -> cell Proxim_timing.Graph.t
(** The design's timing-graph IR: interned nets and cells with adjacency,
    topological order and levels.  {!topological}, {!driver} and
    {!readers} are views over it; the {!Sta} propagation engines and the
    incremental timing analysis annotate it directly. *)
