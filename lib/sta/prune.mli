(** The unified STA prune mask.

    Three static analyses can each prove that a cell's §3 proximity fold
    provably degenerates to the single-input fast path, so the expensive
    dual-macromodel evaluation can be skipped bit-identically:

    - {e never-proximate} — the interval verification
      ([Proxim_verify.prune_mask]) separated every input pair's windows
      beyond the proximity range;
    - {e quiet} — the §6 hazard dataflow ([Proxim_hazard.quiet_mask])
      found at most one possibly-switching input;
    - {e unsensitizable} — the ternary sensitization engine
      ([Proxim_sense.prune_mask]) proved at most one input can carry an
      event once statically-constant nets are absorbed.

    A {!t} fuses any subset of those sources behind one predicate and
    attributes every hit to the {e first} source (in the priority order
    unsensitizable, quiet, never-proximate — cheapest analysis first) so
    reports can show what each mask contributed.  The fused mask is
    consulted by {!Sta.build_ir} in [Proximity] mode only; each source
    keeps its own validity contract (see the producing module). *)

type source = Unsensitizable | Quiet | Never_proximate
(** Attribution priority order: an earlier source claims a cell both
    sources cover. *)

val source_name : source -> string
(** ["unsensitizable"], ["quiet"], ["never_proximate"] — the stable
    names used in reports and BENCH files. *)

type t

val none : t
(** The empty mask: prunes nothing, counts nothing. *)

val make :
  ?unsensitizable:(Design.cell -> bool) ->
  ?quiet:(Design.cell -> bool) ->
  ?never_proximate:(Design.cell -> bool) ->
  unit ->
  t
(** Fuse the given source predicates.  Omitted sources contribute
    nothing.  Counters start at zero. *)

val is_empty : t -> bool
(** No sources attached (so {!member} is constantly [false]). *)

val member : t -> Design.cell -> bool
(** The fused predicate, without touching the counters — for mask
    inspection and tests. *)

val hit : t -> Design.cell -> bool
(** The fused predicate as consulted by the propagation engine: a [true]
    answer atomically increments the counter of the first matching
    source.  Safe to call from several domains at once. *)

type counts = {
  unsensitizable : int;
  quiet : int;
  never_proximate : int;
}
(** Per-source attribution of the {!hit} answers since {!make} (or the
    last {!reset_counts}). *)

val counts : t -> counts
val total : counts -> int
val reset_counts : t -> unit
