(** A length-prefixed binary netlist format with streaming I/O.

    The text format ({!Netlist_text}) is the human interface; this is the
    scale interface.  A million-cell design serializes to a few tens of
    megabytes and reads back in a single pass — no line scanner, no
    tokenizing, no intermediate whole-file string.  Layout (all integers
    are unsigned LEB128 varints, all strings are varint-length-prefixed
    bytes, floats are IEEE-754 binary64 little-endian):

    {v
    "PXNB"  magic
    u8      format version (currently 1)
    string  design name
    u8      thresholds flag; if 1: f64 vil, f64 vih, f64 vdd
    varint  gate-table size, then that many gate-name strings
    varint  primary-input count, then that many net-name strings
    varint  primary-output count, then that many net-name strings
    varint  cell count, then per cell:
              varint gate-table index
              string cell name
              string output net
              varint input count, then that many input-net strings
    u8      0xED end marker
    v}

    Gate names go through {!Proxim_gates.Gate.of_name} on read, exactly
    like the text parser, so the two formats accept the same gate
    vocabulary.  The writer streams cells straight to the channel and the
    reader streams them back, so peak memory is the design itself plus
    O(1) scratch. *)

val magic : string
(** ["PXNB"]. *)

val version : int
(** Format version written by {!write_channel} (currently 1). *)

val file_is_binary : string -> bool
(** [true] iff the file exists, is readable, and starts with {!magic} —
    the sniff the CLI uses to route a netlist argument to the right
    parser.  Never raises. *)

val string_is_binary : string -> bool
(** [true] iff the in-memory content starts with {!magic}. *)

val write_channel :
  ?thresholds:Proxim_vtc.Vtc.thresholds ->
  name:string ->
  Design.t ->
  out_channel ->
  unit
(** Serialize [design] (with its design [name], and the measurement
    [thresholds] when the source carried them) to [oc].  The channel is
    flushed but not closed. *)

val write_file :
  ?thresholds:Proxim_vtc.Vtc.thresholds ->
  name:string ->
  Design.t ->
  string ->
  unit

val read_channel :
  Proxim_gates.Tech.t ->
  in_channel ->
  (string * Design.t * Proxim_vtc.Vtc.thresholds option, string) result
(** Parse one binary netlist from [ic].  Structural validation runs
    through {!Design.create}, so cycles, double drivers and arity
    mismatches are reported with the same messages as the text path.
    Truncated input, a bad magic, an unsupported version or a corrupt
    record all come back as [Error] — never an exception.

    The decoder treats the input as adversarial (the [proxim serve]
    daemon parses client-supplied bytes through it): varints are
    rejected before they can overflow OCaml's 63-bit [int] (9
    continuation bytes, or a final byte setting bit 62, are [Error],
    never a negative length), every decoded count is bounds-checked
    before any allocation sized by it, and long strings are read in
    bounded chunks so a short file claiming a 256 MB payload fails at
    end-of-file instead of forcing the allocation up front. *)

val read_file :
  Proxim_gates.Tech.t ->
  string ->
  (string * Design.t * Proxim_vtc.Vtc.thresholds option, string) result
