(** Single-vector static timing analysis, classic and proximity-aware.

    Every switching net carries one transition event — an arrival time (at
    the measurement threshold), a slew (full-swing equivalent transition
    time) and an edge direction.  Gates are assumed inverting (true for
    every {!Proxim_gates.Gate.t}), so the output edge is the opposite of
    the input edges.

    Two propagation modes:

    - {b Classic}: each switching input is considered alone
      ([Delta^(1)]); the output arrival is the latest single-input
      response, its slew that input's [tau_out^(1)].  This is what a
      traditional pin-to-pin STA computes and what the paper's
      introduction argues is inaccurate under temporal proximity.
    - {b Proximity}: the switching inputs are fed as events to the
      {!Proxim_core.Proximity} algorithm; the output arrival is the
      dominant input's crossing plus the proximity delay, the slew the
      composed output transition time. *)

type arrival = {
  time : float;  (** threshold-crossing time, s *)
  slew : float;
      (** full-swing equivalent transition time, s (the [tau] the
          macromodels consume).  Internally the analyzer converts each
          gate's measured output transition (a Vil..Vih time) to this
          scale using the threshold set. *)
  edge : Proxim_measure.Measure.edge;
}

type mode = Classic | Proximity

exception Mixed_input_edges of { cell : string }
(** Raised by {!analyze} when the switching inputs of one cell arrive with
    inconsistent edge directions — a single-vector analysis cannot order
    the resulting glitch.  Carries the offending cell's name; a printer
    is registered so an uncaught exception still renders readably. *)

type report = {
  arrivals : (string * arrival) list;  (** every switching net, topo order *)
  critical_po : (string * arrival) option;
      (** the latest-arriving primary output *)
  predecessors : (string * string) list;
      (** for every cell output net, the input net that set its timing:
          the latest single-input response in [Classic] mode, the dominant
          input in [Proximity] mode — the edges of the critical-path
          graph *)
}

val critical_path : report -> po:string -> string list
(** The chain of nets from a primary input to [po], following
    {!report.predecessors} backwards; [po] first.  Returns [[]] when [po]
    never switched. *)

val po_slacks :
  Design.t -> report -> required:float -> (string * float) list
(** Slack (required - arrival) of every switching primary-output net of
    the design, worst first. *)

val analyze :
  ?mode:mode ->
  ?pool:Proxim_util.Pool.t ->
  models:(Design.cell -> Proxim_macromodel.Models.t) ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  Design.t ->
  pi:(string * arrival) list ->
  report
(** Propagate the primary-input events through the design.  Inputs of a
    cell whose nets carry no event are treated as stable at sensitizing
    levels.  Raises {!Mixed_input_edges} if the switching inputs of one
    cell arrive with inconsistent edges (a single-vector analysis cannot
    order a glitch).

    Cells on the same topological level are timed concurrently on [pool]
    (default: {!Proxim_util.Pool.default}); the report is bit-identical
    to a serial analysis whatever the pool width.  [models] must then be
    safe to call from several domains at once — the factories below are;
    a hand-rolled factory memoizing through a plain [Hashtbl] is not. *)

val oracle_model_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  Design.cell ->
  Proxim_macromodel.Models.t
(** A [models] function backed by the golden simulator: each cell gets
    oracle models built at its actual fanout load (memoized domain-safely
    per gate type and load bucket). *)

val table_model_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?share_others:bool ->
  ?pool:Proxim_util.Pool.t ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  Design.cell ->
  Proxim_macromodel.Models.t
(** A [models] function backed by tabulated macromodels: each distinct
    (gate type, 1 fF load bucket) pair gets {!Proxim_macromodel.Models.of_tables}
    models characterized at the cell's fanout load, built lazily on first
    query and shared domain-safely across cells.  [pool] parallelizes the
    table construction sweeps; the remaining options are forwarded to the
    table builders. *)
