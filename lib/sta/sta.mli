(** Single-vector static timing analysis over the shared timing-graph IR.

    Every switching net carries one transition event — an arrival time (at
    the measurement threshold), a slew (full-swing equivalent transition
    time) and an edge direction.  Gates are assumed inverting (true for
    every {!Proxim_gates.Gate.t}), so the output edge is the opposite of
    the input edges.

    Three propagation modes:

    - {b Classic}: each switching input is considered alone
      ([Delta^(1)]); the output arrival is the latest single-input
      response, its slew that input's [tau_out^(1)].  This is what a
      traditional pin-to-pin STA computes and what the paper's
      introduction argues is inaccurate under temporal proximity.
    - {b Proximity}: the switching inputs are fed as events to the
      {!Proxim_core.Proximity} algorithm; the output arrival is the
      dominant input's crossing plus the proximity delay, the slew the
      composed output transition time.
    - {b Collapsed}: the prior-art collapse-to-inverter baselines
      ({!Proxim_baseline.Collapse}), evaluated on the golden simulator —
      expensive, but lets the example flows compare path-level results of
      the methods the paper improves on.

    The analysis itself lives in {!Proxim_timing.Timing}: this module
    builds the {!Design} graph, wraps each mode as a propagation
    {!Proxim_timing.Timing.engine}, and layers the report/path/slack
    views on top.  {!analyze} remains the one-shot entry point;
    {!build_ir}/{!update} expose the incremental (ECO) workflow, and
    {!worst_paths} the K-worst path enumeration. *)

type arrival = Proxim_timing.Timing.arrival = {
  time : float;  (** threshold-crossing time, s *)
  slew : float;
      (** full-swing equivalent transition time, s (the [tau] the
          macromodels consume).  Internally the analyzer converts each
          gate's measured output transition (a Vil..Vih time) to this
          scale using the threshold set. *)
  edge : Proxim_measure.Measure.edge;
}

type mode =
  | Classic
  | Proximity
  | Collapsed of Proxim_baseline.Collapse.variant

exception Mixed_input_edges of { cell : string }
(** Raised by the propagation engines when the switching inputs of one
    cell arrive with inconsistent edge directions — a single-vector
    analysis cannot order the resulting glitch.  Carries the offending
    cell's name; a printer is registered so an uncaught exception still
    renders readably. *)

exception No_switching_inputs of { cell : string }
(** Internal-invariant error: a propagation engine was asked to rank the
    responses of a cell that has no switching inputs.  The engines are
    only entered for cells with at least one switching input, so seeing
    this exception means the invariant broke upstream; it names the
    offending cell instead of dying on a bare [assert false].  A printer
    is registered. *)

exception Unknown_eco_target of { kind : string; name : string }
(** Raised by {!update} when an ECO names a net or cell the design does
    not contain ([kind] is ["net"] or ["cell"]).  The CLI catches this at
    the boundary and turns it into a diagnostic with exit code 2 rather
    than a backtrace.  A printer is registered. *)

type report = {
  arrivals : (string * arrival) list;  (** every switching net, topo order *)
  critical_po : (string * arrival) option;
      (** the latest-arriving primary output *)
  predecessors : (string * string) list;
      (** for every cell output net, the input net that set its timing:
          the latest single-input response in [Classic] mode, the dominant
          input in [Proximity] mode, the collapse reference input in
          [Collapsed] mode — the edges of the critical-path graph *)
}

val critical_path : report -> po:string -> string list
(** The chain of nets from a primary input to [po], following
    {!report.predecessors} backwards; [po] first.  Returns [[]] only when
    [po] never switched; in particular, a switching [po] that is itself a
    primary-input net (a wire fed straight through the pad ring) has no
    predecessor and yields the singleton [[po]]. *)

val po_slacks :
  Design.t -> report -> required:float -> (string * float) list
(** Slack (required - arrival) of every switching primary-output net of
    the design, worst first. *)

val analyze :
  ?mode:mode ->
  ?prune:Prune.t ->
  ?pool:Proxim_util.Pool.t ->
  models:(Design.cell -> Proxim_macromodel.Models.t) ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  Design.t ->
  pi:(string * arrival) list ->
  report
(** Propagate the primary-input events through the design.  Inputs of a
    cell whose nets carry no event are treated as stable at sensitizing
    levels.  Raises {!Mixed_input_edges} if the switching inputs of one
    cell arrive with inconsistent edges (a single-vector analysis cannot
    order a glitch).

    A thin wrapper: builds a fresh {!ir} and runs {!reanalyze}.  Cells on
    the same topological level are timed concurrently on [pool] (default:
    {!Proxim_util.Pool.default}); the report is bit-identical to a serial
    analysis whatever the pool width.  [models] must then be safe to call
    from several domains at once — the factories below are; a hand-rolled
    factory memoizing through a plain [Hashtbl] is not. *)

(** {1 Incremental (ECO) analysis}

    {!build_ir} captures the design, mode and model factory into a
    reusable analysis state; {!update} re-propagates only the fanout cone
    of an edit, with an early cutoff at cells whose recomputed verdict is
    bit-equal to the stored one.  Because the engines are pure functions
    of the input annotations, an updated state is bit-identical to a
    fresh {!reanalyze} of the same configuration (property-tested). *)

type ir
(** An analysis state: the design's timing graph annotated with arrivals
    and per-cell verdicts, plus the propagation engine for one {!mode}. *)

val build_ir :
  ?mode:mode ->
  ?prune:Prune.t ->
  models:(Design.cell -> Proxim_macromodel.Models.t) ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  Design.t ->
  pi:(string * arrival) list ->
  ir
(** Create an un-propagated state with the given primary-input events
    applied ([pi] nets unknown to the design are ignored, like the
    historical analyzer did).  Call {!reanalyze} to populate it.

    [prune] (default: {!Prune.none}) fuses the masks the static analyses
    produced — never-proximate cells from [Proxim_verify.prune_mask],
    quiet cells from [Proxim_hazard.quiet_mask], unsensitizable cells
    from [Proxim_sense.prune_mask] — under the current primary-input
    assumptions.  In [Proximity] mode those cells take a single-input
    fast path — dominant would-be arrival and single-input slew, no
    dominance sort, no dual-macromodel queries — which is bit-identical
    to the full evaluation {e by construction of each source's verdict}
    (the fold provably reduces to those expressions).  The mask is only
    consulted in [Proximity] mode, and each source is only valid while
    every primary-input event stays inside the uncertainty windows (and
    logic assumptions) its analysis was run with: re-run the analyses
    (or drop the mask) before applying ECOs that move events outside
    them.  Per-source attribution is available from {!Prune.counts} on
    the mask the caller passed in. *)

val design : ir -> Design.t
val timing : ir -> Design.cell Proxim_timing.Timing.t
(** The underlying annotated graph — for direct access to arrivals,
    verdicts and {!Proxim_timing.Paths}. *)

val mode : ir -> mode

val pruned_evaluations : ir -> int
(** Cumulative count of cell evaluations answered by the never-proximate
    fast path since {!build_ir} (0 unless a [prune] mask was given).
    Incremented atomically — level-parallel analyses count exactly. *)

val reanalyze : ?pool:Proxim_util.Pool.t -> ir -> Proxim_timing.Timing.stats
(** Full from-scratch propagation of the current sources and models. *)

type eco =
  | Set_pi of string * arrival option
      (** change (or clear) a primary input's event *)
  | Touch_cell of string
      (** mark one cell re-characterized: its verdict is recomputed by
          querying [models] afresh, and the change propagates through its
          fanout cone.  Pair with a model factory whose answer for the
          cell actually changed (e.g. {!swap_models}, or a closure over
          mutable characterization data). *)

val update :
  ?pool:Proxim_util.Pool.t -> ir -> eco list -> Proxim_timing.Timing.stats
(** Apply the edits and incrementally re-propagate their fanout cone.
    The returned {!Proxim_timing.Timing.stats} report how many cells were
    actually re-evaluated — the incremental win over {!reanalyze}.
    Raises {!Unknown_eco_target} on unknown net/cell names, and
    [Invalid_argument] for [Set_pi] on a cell-driven net. *)

val swap_models :
  ?pool:Proxim_util.Pool.t ->
  ir ->
  (Design.cell -> Proxim_macromodel.Models.t) ->
  Proxim_timing.Timing.stats
(** Replace the model factory wholesale (a re-characterized library) and
    re-propagate with every cell dirty.  Structurally a full pass, but
    the bit-equality cutoff still prunes the fanout of cells whose new
    models answer identically. *)

val report : ir -> report
(** The classic report view of the current annotations.  [arrivals] lead
    with the switching primary inputs in declaration order, then every
    switching cell output in topological order. *)

(** {1 K-worst paths} *)

type path = {
  path_arrival : float;  (** estimated endpoint arrival via this path, s *)
  path_nets : string list;  (** endpoint first, back to the source net *)
}

val worst_paths : ir -> po:string -> k:int -> path list
(** The up-to-[k] worst paths ending at net [po] — the
    {!Proxim_timing.Paths} enumeration with nets resolved to names.  The
    top path is the timing-setting chain: it reproduces {!critical_path}
    and the reported arrival exactly.  Lower ranks order the
    alternatives by single-input would-be estimates, latest first (see
    {!Proxim_timing.Paths}).  [[]] when [po] is unknown or never
    switched.  Raises [Invalid_argument] when [k < 1]. *)

(** {1 Model factories} *)

type factory = {
  models : Design.cell -> Proxim_macromodel.Models.t;
  factory_stats : unit -> Proxim_util.Memo_cache.stats;
      (** merged hit/miss/entry counters over the factory's gate/load
          memo cache and the internal caches of every model built so far
          — the cache-effectiveness numbers `proxim sta` and the bench
          report *)
}

val oracle_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  factory
(** A [models] function backed by the golden simulator: each cell gets
    oracle models built at its actual fanout load (memoized domain-safely
    per gate type and 1 fF load bucket). *)

val table_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?share_others:bool ->
  ?pool:Proxim_util.Pool.t ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  factory
(** A [models] function backed by tabulated macromodels: each distinct
    (gate type, 1 fF load bucket) pair gets
    {!Proxim_macromodel.Models.of_tables} models characterized at the
    cell's fanout load, built lazily on first query and shared
    domain-safely across cells.  [pool] parallelizes the table
    construction sweeps; the remaining options are forwarded to the table
    builders. *)

val synthetic_factory :
  ?seed:int -> ?spread:float -> ?work:int -> ?memo:bool -> unit -> factory
(** A [models] function over {!Proxim_macromodel.Models.synthetic}
    analytic models, one per gate type (synthetic models carry no load
    dependence).  No simulator behind it: this is the factory the
    randomized equivalence tests, the incremental benchmark and quick
    CLI experiments use.  The options are forwarded to
    {!Proxim_macromodel.Models.synthetic}; pass [~memo:false] on
    million-cell designs so the unbounded query cache does not dominate
    peak RSS. *)

val oracle_model_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  Design.cell ->
  Proxim_macromodel.Models.t
(** [(oracle_factory ...).models] — kept for callers that do not need the
    statistics. *)

val table_model_factory :
  ?opts:Proxim_spice.Options.t ->
  ?wire_cap:float ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?share_others:bool ->
  ?pool:Proxim_util.Pool.t ->
  Design.t ->
  Proxim_vtc.Vtc.thresholds ->
  Design.cell ->
  Proxim_macromodel.Models.t
(** [(table_factory ...).models] — kept for callers that do not need the
    statistics. *)
