module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity
module Collapse = Proxim_baseline.Collapse
module Pool = Proxim_util.Pool
module Memo_cache = Proxim_util.Memo_cache
module Graph = Proxim_timing.Graph
module Timing = Proxim_timing.Timing
module Paths = Proxim_timing.Paths
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics

let c_pruned = Metrics.Counter.v "sta.pruned_evaluations"
let h_analyze = Metrics.Histogram.v "sta.analyze_seconds"
let h_update = Metrics.Histogram.v "sta.update_seconds"

type arrival = Timing.arrival = {
  time : float;
  slew : float;
  edge : Measure.edge;
}

exception Mixed_input_edges of { cell : string }

exception No_switching_inputs of { cell : string }

exception Unknown_eco_target of { kind : string; name : string }

let () =
  Printexc.register_printer (function
    | Mixed_input_edges { cell } ->
      Some
        (Printf.sprintf
           "Sta.analyze: mixed input edges at cell %s (a single-vector \
            analysis cannot order a glitch)"
           cell)
    | No_switching_inputs { cell } ->
      Some
        (Printf.sprintf
           "Sta.analyze: internal invariant broken — cell %s was evaluated \
            with no switching inputs"
           cell)
    | Unknown_eco_target { kind; name } ->
      Some (Printf.sprintf "Sta.update: unknown %s %s" kind name)
    | _ -> None)

type mode = Classic | Proximity | Collapsed of Collapse.variant

type report = {
  arrivals : (string * arrival) list;
  critical_po : (string * arrival) option;
  predecessors : (string * string) list;
}

(* ---- propagation engines over the timing-graph IR ---- *)

let check_edges cell (inputs : Timing.input list) =
  match inputs with
  | [] -> None
  | { Timing.in_arrival = first; _ } :: rest ->
    if
      List.exists
        (fun (i : Timing.input) -> i.Timing.in_arrival.edge <> first.edge)
        rest
    then raise (Mixed_input_edges { cell = cell.Design.name });
    Some first.edge

let events_of_inputs inputs =
  List.map
    (fun (i : Timing.input) ->
      {
        Proximity.pin = i.Timing.in_pin;
        edge = i.Timing.in_arrival.edge;
        tau = i.Timing.in_arrival.slew;
        cross_time = i.Timing.in_arrival.time;
      })
    inputs

(* Per-pin would-be responses: the output arrival had this pin set the
   timing alone (the classic single-input view).  The winner's entry is
   overwritten with the actual output arrival, so the K-worst enumeration
   reproduces the reported arrival exactly on the top path. *)
let candidates_of (m : Models.t) ~edge ~out_time ~winner inputs =
  (* filled straight from the input list — no intermediate list of boxed
     records on what is the hottest allocation site of every engine *)
  match inputs with
  | [] -> [||]
  | (first : Timing.input) :: _ ->
    let n = List.length inputs in
    let cand (i : Timing.input) =
      let would_be =
        if i.Timing.in_pin = winner then out_time
        else
          i.Timing.in_arrival.time
          +. m.Models.delay1 ~pin:i.Timing.in_pin ~edge
               ~tau:i.Timing.in_arrival.slew
      in
      { Timing.pin = i.Timing.in_pin; from_net = i.Timing.in_net; would_be }
    in
    let out = Array.make n (cand first) in
    let rec fill k = function
      | [] -> ()
      | i :: rest ->
        if k > 0 then out.(k) <- cand i;
        fill (k + 1) rest
    in
    fill 0 inputs;
    out

(* latest single-input response wins; its transition time becomes the
   output slew, and the winning pin becomes the path predecessor *)
let classic_verdict (m : Models.t) ~cell ~edge ~slew_scale inputs =
  let responses =
    List.map
      (fun (i : Timing.input) ->
        let d =
          m.Models.delay1 ~pin:i.Timing.in_pin ~edge
            ~tau:i.Timing.in_arrival.slew
        in
        let t =
          m.Models.trans1 ~pin:i.Timing.in_pin ~edge
            ~tau:i.Timing.in_arrival.slew
        in
        (i.Timing.in_arrival.time +. d, t, i.Timing.in_pin))
      inputs
  in
  let time, slew, winner =
    match responses with
    | [] -> raise (No_switching_inputs { cell })
    | first :: rest ->
      List.fold_left
        (fun ((bt, _, _) as best) ((t, _, _) as r) ->
          if t > bt then r else best)
        first rest
  in
  let out = { time; slew = slew *. slew_scale; edge = Measure.opposite edge } in
  {
    Timing.out;
    winner;
    candidates = candidates_of m ~edge ~out_time:time ~winner inputs;
  }

(* Fast path for cells a static analysis proved never-proximate: the
   dominant (earliest would-be) input alone decides the output, every
   other input falls outside its transition window, and the correction
   weight is zero.  Under those facts [Proximity.evaluate] computes
   exactly [t_dom +. d1_dom] and [t1_dom] — the fold never fires a dual
   query — so recomputing those two expressions here is bit-identical
   while skipping the assist lookup, the dominance sort and the fold.
   The winner scan keeps the first strict minimum in pin order, which is
   where the stable dominance sort puts it; never-proximate verdicts
   guarantee the minimum is unique anyway. *)
let pruned_proximity_verdict (m : Models.t) ~cell ~edge ~slew_scale inputs =
  let keyed =
    List.map
      (fun (i : Timing.input) ->
        let d1 =
          m.Models.delay1 ~pin:i.Timing.in_pin ~edge
            ~tau:i.Timing.in_arrival.slew
        in
        (i, i.Timing.in_arrival.time +. d1))
      inputs
  in
  let win, time =
    match keyed with
    | [] -> raise (No_switching_inputs { cell })
    | first :: rest ->
      List.fold_left
        (fun ((_, bt) as best) ((_, t) as k) -> if t < bt then k else best)
        first rest
  in
  let t1 =
    m.Models.trans1 ~pin:win.Timing.in_pin ~edge ~tau:win.Timing.in_arrival.slew
  in
  let out = { time; slew = t1 *. slew_scale; edge = Measure.opposite edge } in
  let winner = win.Timing.in_pin in
  {
    Timing.out;
    winner;
    candidates = candidates_of m ~edge ~out_time:time ~winner inputs;
  }

let proximity_verdict (m : Models.t) ~edge ~slew_scale inputs =
  let r = Proximity.evaluate m (events_of_inputs inputs) in
  let time = r.Proximity.ref_cross +. r.Proximity.delay in
  let out =
    {
      time;
      slew = r.Proximity.out_transition *. slew_scale;
      edge = Measure.opposite edge;
    }
  in
  let winner = r.Proximity.ref_pin in
  {
    Timing.out;
    winner;
    candidates = candidates_of m ~edge ~out_time:time ~winner inputs;
  }

(* The collapsed baseline has no per-pin macromodel to rank alternatives
   with, so every candidate carries the predicted arrival (degenerate
   would-be responses): the enumerated paths follow the ref pins but the
   near-critical alternatives are not differentiated. *)
let collapsed_verdict variant ~design ~thresholds ~slew_scale cell ~edge inputs
    =
  let load =
    Design.fanout_load design ~net:cell.Design.output_net
  in
  let p =
    Collapse.predict ~load variant cell.Design.gate thresholds
      ~events:(events_of_inputs inputs)
  in
  let out =
    {
      time = p.Collapse.out_cross;
      slew = p.Collapse.out_transition *. slew_scale;
      edge = Measure.opposite edge;
    }
  in
  {
    Timing.out;
    winner = p.Collapse.ref_pin;
    candidates =
      Array.of_list
        (List.map
           (fun (i : Timing.input) ->
             {
               Timing.pin = i.Timing.in_pin;
               from_net = i.Timing.in_net;
               would_be = p.Collapse.out_cross;
             })
           inputs);
  }

let make_engine ~prune ~pruned_count ~mode ~models ~thresholds ~design :
    Design.cell Timing.engine =
  (* macromodels consume full-swing ramp widths; measured output
     transitions span Vil..Vih only, so scale them up when they become the
     next stage's input slew *)
  let slew_scale =
    let th : Proxim_vtc.Vtc.thresholds = thresholds in
    th.Proxim_vtc.Vtc.vdd /. (th.Proxim_vtc.Vtc.vih -. th.Proxim_vtc.Vtc.vil)
  in
  fun cell inputs ->
    match check_edges cell inputs with
    | None -> None (* fully quiet cell *)
    | Some edge ->
      Some
        (match mode with
        | Classic ->
          classic_verdict (!models cell) ~cell:cell.Design.name ~edge
            ~slew_scale inputs
        | Proximity ->
          if Prune.hit prune cell then begin
            Atomic.incr pruned_count;
            Metrics.Counter.incr c_pruned;
            pruned_proximity_verdict (!models cell) ~cell:cell.Design.name
              ~edge ~slew_scale inputs
          end
          else proximity_verdict (!models cell) ~edge ~slew_scale inputs
        | Collapsed variant ->
          collapsed_verdict variant ~design ~thresholds ~slew_scale cell ~edge
            inputs)

(* ---- the analysis state ---- *)

type ir = {
  design : Design.t;
  timing : Design.cell Timing.t;
  ir_mode : mode;
  models : (Design.cell -> Models.t) ref;
  pruned_count : int Atomic.t;
}

let set_pi ir (net, a) =
  match Graph.net_id (Design.graph ir.design) net with
  | None -> () (* a pi event for a net the design never mentions is inert *)
  | Some id -> Timing.set_source ir.timing ~net:id (Some a)

let build_ir ?(mode = Proximity) ?(prune = Prune.none) ~models ~thresholds
    design ~pi =
  let models = ref models in
  let pruned_count = Atomic.make 0 in
  let engine = make_engine ~prune ~pruned_count ~mode ~models ~thresholds ~design in
  let ir =
    {
      design;
      timing = Timing.create (Design.graph design) ~engine;
      ir_mode = mode;
      models;
      pruned_count;
    }
  in
  List.iter (set_pi ir) pi;
  ir

let design ir = ir.design
let timing ir = ir.timing
let mode ir = ir.ir_mode
let pruned_evaluations ir = Atomic.get ir.pruned_count

let reanalyze ?pool ir =
  Trace.with_span ~cat:"sta" "sta.analyze" @@ fun () ->
  Metrics.Histogram.time h_analyze @@ fun () -> Timing.analyze ?pool ir.timing

type eco =
  | Set_pi of string * arrival option
  | Touch_cell of string

let update ?pool ir ecos =
  let body () =
    Metrics.Histogram.time h_update @@ fun () ->
    let g = Design.graph ir.design in
    let dirty_nets = ref [] in
    let dirty_cells = ref [] in
    List.iter
      (function
        | Set_pi (net, a) -> (
          match Graph.net_id g net with
          | None -> raise (Unknown_eco_target { kind = "net"; name = net })
          | Some id ->
            Timing.set_source ir.timing ~net:id a;
            dirty_nets := id :: !dirty_nets)
        | Touch_cell name -> (
          match Graph.cell_id g name with
          | None -> raise (Unknown_eco_target { kind = "cell"; name })
          | Some c -> dirty_cells := c :: !dirty_cells))
      ecos;
    Timing.update ?pool ir.timing ~dirty_nets:!dirty_nets
      ~dirty_cells:!dirty_cells
  in
  (* ECO updates are the latency-critical entry point: skip even the
     span-argument allocation unless a trace is being recorded *)
  if Trace.enabled () then
    Trace.with_span ~cat:"sta" "sta.update"
      ~args:[ ("ecos", string_of_int (List.length ecos)) ]
      body
  else body ()

let swap_models ?pool ir models =
  ir.models := models;
  Timing.update ?pool ir.timing ~dirty_nets:[]
    ~dirty_cells:(List.init (Graph.cell_count (Design.graph ir.design)) Fun.id)

(* ---- reports ---- *)

let source_arrivals ir =
  let g = Design.graph ir.design in
  Array.to_list (Graph.primary_inputs g)
  |> List.filter_map (fun net ->
       Option.map
         (fun a -> (Graph.net_name g net, a))
         (Timing.arrival ir.timing ~net))

let derived_arrivals ir =
  let g = Design.graph ir.design in
  Array.to_list (Graph.topological g)
  |> List.filter_map (fun c ->
       Option.map
         (fun (v : Timing.verdict) ->
           (Graph.net_name g (Graph.cell_output g c), v.Timing.out))
         (Timing.verdict ir.timing ~cell:c))

let report_with ir ~heads =
  let g = Design.graph ir.design in
  let arrivals = heads @ derived_arrivals ir in
  let critical_po =
    List.fold_left
      (fun best net ->
        match
          Option.bind (Graph.net_id g net) (fun id ->
              Timing.arrival ir.timing ~net:id)
        with
        | None -> best
        | Some a -> (
          match best with
          | Some (_, (b : arrival)) when b.time >= a.time -> best
          | Some _ | None -> Some (net, a)))
      None
      (Design.primary_outputs ir.design)
  in
  let predecessors =
    Array.to_list (Graph.topological g)
    |> List.filter_map (fun c ->
         let out = Graph.cell_output g c in
         Option.map
           (fun (pred, _pin) ->
             (Graph.net_name g out, Graph.net_name g pred))
           (Timing.predecessor ir.timing ~net:out))
  in
  { arrivals; critical_po; predecessors }

let report ir = report_with ir ~heads:(source_arrivals ir)

let analyze ?(mode = Proximity) ?prune ?pool ~models ~thresholds design ~pi =
  let ir = build_ir ~mode ?prune ~models ~thresholds design ~pi in
  ignore (reanalyze ?pool ir : Timing.stats);
  (* arrivals lead with the caller's pi list verbatim, like the historical
     hashtable-based analyzer did *)
  report_with ir ~heads:pi

let critical_path report ~po =
  if not (List.mem_assoc po report.arrivals) then []
  else begin
    let rec walk net acc =
      match List.assoc_opt net report.predecessors with
      | None -> net :: acc (* reached a primary input *)
      | Some pred -> walk pred (net :: acc)
    in
    List.rev (walk po [])
  end

type path = { path_arrival : float; path_nets : string list }

let worst_paths ir ~po ~k =
  let g = Design.graph ir.design in
  match Graph.net_id g po with
  | None -> []
  | Some id ->
    Paths.k_worst ir.timing ~po:id ~k
    |> List.map (fun (p : Paths.path) ->
         {
           path_arrival = p.Paths.p_arrival;
           path_nets = Paths.nets_of_path g p;
         })

let po_slacks design report ~required =
  Design.primary_outputs design
  |> List.filter_map (fun net ->
       Option.map
         (fun (a : arrival) -> (net, required -. a.time))
         (List.assoc_opt net report.arrivals))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* ---- model factories ---- *)

type factory = {
  models : Design.cell -> Models.t;
  factory_stats : unit -> Memo_cache.stats;
}

(* wrap a (key, build) scheme into a factory whose stats merge the
   gate/load-bucket memo cache with the internal caches of every model it
   has built.  The created-model list is mutex-guarded: find_or_compute
   runs the builder outside any shard lock, and several domains may be
   building models for distinct keys at once. *)
let factory_of ~cache ~key_of ~build =
  let created = ref [] in
  let created_mutex = Mutex.create () in
  let models cell =
    Memo_cache.find_or_compute cache (key_of cell) (fun () ->
        let m = build cell in
        Mutex.protect created_mutex (fun () -> created := m :: !created);
        m)
  in
  let factory_stats () =
    let models_built = Mutex.protect created_mutex (fun () -> !created) in
    List.fold_left
      (fun acc (m : Models.t) ->
        Models.merge_stats acc (m.Models.cache_stats ()))
      (Memo_cache.stats cache) models_built
  in
  { models; factory_stats }

(* bucket the load at 1 fF so structurally identical cells share models *)
let load_bucket load = int_of_float ((load *. 1e15) +. 0.5)

let oracle_factory ?opts ?wire_cap design th =
  let cache = Memo_cache.create ~shards:4 ~local:true () in
  factory_of ~cache
    ~key_of:(fun (cell : Design.cell) ->
      let load =
        Design.fanout_load ?wire_cap design ~net:cell.Design.output_net
      in
      (cell.Design.gate.Gate.name, load_bucket load))
    ~build:(fun (cell : Design.cell) ->
      let load =
        Design.fanout_load ?wire_cap design ~net:cell.Design.output_net
      in
      Models.of_oracle ?opts ~load cell.Design.gate th)

let table_factory ?opts ?wire_cap ?taus ?x_tau ?x_sep ?share_others ?pool
    design th =
  let cache = Memo_cache.create ~shards:4 ~local:true () in
  factory_of ~cache
    ~key_of:(fun (cell : Design.cell) ->
      let load =
        Design.fanout_load ?wire_cap design ~net:cell.Design.output_net
      in
      (cell.Design.gate.Gate.name, load_bucket load))
    ~build:(fun (cell : Design.cell) ->
      let load =
        Design.fanout_load ?wire_cap design ~net:cell.Design.output_net
      in
      (* rebuild the tables at the cell's actual fanout load: the
         normalized single-input argument folds the load in, so the
         bucketed load only sets the table's build point *)
      let gate = { cell.Design.gate with Gate.load } in
      Models.of_tables ?opts ?taus ?x_tau ?x_sep ?share_others ?pool gate th)

let synthetic_factory ?seed ?spread ?work ?memo () =
  let cache = Memo_cache.create ~shards:4 ~local:true () in
  factory_of ~cache
    ~key_of:(fun (cell : Design.cell) -> cell.Design.gate.Gate.name)
    ~build:(fun (cell : Design.cell) ->
      Models.synthetic ?seed ?spread ?work ?memo cell.Design.gate)

let oracle_model_factory ?opts ?wire_cap design th =
  (oracle_factory ?opts ?wire_cap design th).models

let table_model_factory ?opts ?wire_cap ?taus ?x_tau ?x_sep ?share_others
    ?pool design th =
  (table_factory ?opts ?wire_cap ?taus ?x_tau ?x_sep ?share_others ?pool
     design th)
    .models
