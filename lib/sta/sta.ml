module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity
module Pool = Proxim_util.Pool
module Memo_cache = Proxim_util.Memo_cache

type arrival = { time : float; slew : float; edge : Measure.edge }

exception Mixed_input_edges of { cell : string }

let () =
  Printexc.register_printer (function
    | Mixed_input_edges { cell } ->
      Some
        (Printf.sprintf
           "Sta.analyze: mixed input edges at cell %s (a single-vector \
            analysis cannot order a glitch)"
           cell)
    | _ -> None)

type mode = Classic | Proximity

type report = {
  arrivals : (string * arrival) list;
  critical_po : (string * arrival) option;
  predecessors : (string * string) list;
}

(* latest single-input response wins; its transition time becomes the
   output slew, and the winning pin becomes the path predecessor *)
let propagate_classic (models : Models.t) ~edge events =
  let responses =
    List.map
      (fun (e : Proximity.event) ->
        let d =
          models.Models.delay1 ~pin:e.Proximity.pin ~edge ~tau:e.Proximity.tau
        in
        let t =
          models.Models.trans1 ~pin:e.Proximity.pin ~edge ~tau:e.Proximity.tau
        in
        (e.Proximity.cross_time +. d, t, e.Proximity.pin))
      events
  in
  match responses with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun ((bt, _, _) as best) ((t, _, _) as r) -> if t > bt then r else best)
      first rest

let propagate_proximity (models : Models.t) events =
  let r = Proximity.evaluate models events in
  ( r.Proximity.ref_cross +. r.Proximity.delay,
    r.Proximity.out_transition,
    r.Proximity.ref_pin )

(* Topological levels: every cell's inputs are driven by strictly lower
   levels, so the cells of one level can be timed concurrently once the
   previous levels have been applied.  Within a level the original
   topological order is kept, which makes the report deterministic. *)
let levelize design =
  let cell_level = Hashtbl.create 32 in  (* output net -> level *)
  let level_of cell =
    Array.fold_left
      (fun acc net ->
        match Hashtbl.find_opt cell_level net with
        | Some l -> max acc (l + 1)
        | None -> acc  (* primary input: level 0 *))
      0 cell.Design.input_nets
  in
  let rec group current current_level acc = function
    | [] -> List.rev (List.rev current :: acc)
    | (cell, l) :: tl ->
      if l = current_level then group (cell :: current) current_level acc tl
      else group [ cell ] l (List.rev current :: acc) tl
  in
  let leveled =
    List.map
      (fun cell ->
        let l = level_of cell in
        Hashtbl.replace cell_level cell.Design.output_net l;
        (cell, l))
      (Design.topological design)
  in
  match leveled with
  | [] -> []
  | (_, l0) :: _ -> group [] l0 [] leveled |> List.filter (( <> ) [])

let analyze ?(mode = Proximity) ?pool ~models ~thresholds design ~pi =
  (* macromodels consume full-swing ramp widths; measured output
     transitions span Vil..Vih only, so scale them up when they become the
     next stage's input slew *)
  let slew_scale =
    let th : Proxim_vtc.Vtc.thresholds = thresholds in
    th.Proxim_vtc.Vtc.vdd /. (th.Proxim_vtc.Vtc.vih -. th.Proxim_vtc.Vtc.vil)
  in
  let net_arrival : (string, arrival) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (net, a) -> Hashtbl.replace net_arrival net a) pi;
  let order = ref [] in
  let preds = ref [] in
  (* Time one cell from the already-applied arrivals.  Pure with respect
     to [net_arrival] (read-only), so the cells of one topological level
     can be computed concurrently; their model queries go through the
     domain-safe memo caches of the factory. *)
  let compute cell =
    let events =
      Array.to_list cell.Design.input_nets
      |> List.mapi (fun pin net ->
           Option.map
             (fun a ->
               ( {
                   Proximity.pin;
                   edge = a.edge;
                   tau = a.slew;
                   cross_time = a.time;
                 },
                 net ))
             (Hashtbl.find_opt net_arrival net))
      |> List.filter_map Fun.id
    in
    match events with
    | [] -> None  (* fully quiet cell *)
    | ((first : Proximity.event), _) :: rest ->
      if
        List.exists
          (fun ((e : Proximity.event), _) ->
            e.Proximity.edge <> first.Proximity.edge)
          rest
      then raise (Mixed_input_edges { cell = cell.Design.name });
      let edge = first.Proximity.edge in
      let m = models cell in
      let plain_events = List.map fst events in
      let time, slew, pin =
        match mode with
        | Classic -> propagate_classic m ~edge plain_events
        | Proximity -> propagate_proximity m plain_events
      in
      let out =
        { time; slew = slew *. slew_scale; edge = Measure.opposite edge }
      in
      let pred_net =
        match
          List.find_opt
            (fun ((e : Proximity.event), _) -> e.Proximity.pin = pin)
            events
        with
        | Some (_, net) -> net
        | None -> assert false
      in
      Some (out, pred_net)
  in
  let apply cell = function
    | None -> ()
    | Some (out, pred_net) ->
      Hashtbl.replace net_arrival cell.Design.output_net out;
      order := (cell.Design.output_net, out) :: !order;
      preds := (cell.Design.output_net, pred_net) :: !preds
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  List.iter
    (fun level ->
      let cells = Array.of_list level in
      let results =
        if Array.length cells = 1 then Array.map compute cells
        else Pool.map pool compute cells
      in
      Array.iteri (fun i r -> apply cells.(i) r) results)
    (levelize design);
  let arrivals = pi @ List.rev !order in
  let critical_po =
    List.fold_left
      (fun best net ->
        match Hashtbl.find_opt net_arrival net with
        | None -> best
        | Some a -> (
          match best with
          | Some (_, b) when b.time >= a.time -> best
          | Some _ | None -> Some (net, a)))
      None
      (Design.primary_outputs design)
  in
  { arrivals; critical_po; predecessors = List.rev !preds }

let critical_path report ~po =
  if not (List.mem_assoc po report.arrivals) then []
  else begin
    let rec walk net acc =
      match List.assoc_opt net report.predecessors with
      | None -> net :: acc  (* reached a primary input *)
      | Some pred -> walk pred (net :: acc)
    in
    List.rev (walk po [])
  end

let po_slacks design report ~required =
  Design.primary_outputs design
  |> List.filter_map (fun net ->
       Option.map
         (fun (a : arrival) -> (net, required -. a.time))
         (List.assoc_opt net report.arrivals))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let oracle_model_factory ?opts ?wire_cap design th =
  let cache = Memo_cache.create ~shards:4 () in
  fun (cell : Design.cell) ->
    let load = Design.fanout_load ?wire_cap design ~net:cell.Design.output_net in
    (* bucket the load at 1 fF so structurally identical cells share models *)
    let bucket = int_of_float ((load *. 1e15) +. 0.5) in
    let key = (cell.Design.gate.Gate.name, bucket) in
    Memo_cache.find_or_compute cache key (fun () ->
      Models.of_oracle ?opts ~load cell.Design.gate th)

let table_model_factory ?opts ?wire_cap ?taus ?x_tau ?x_sep ?share_others
    ?pool design th =
  let cache = Memo_cache.create ~shards:4 () in
  fun (cell : Design.cell) ->
    let load = Design.fanout_load ?wire_cap design ~net:cell.Design.output_net in
    let bucket = int_of_float ((load *. 1e15) +. 0.5) in
    let key = (cell.Design.gate.Gate.name, bucket) in
    Memo_cache.find_or_compute cache key (fun () ->
      (* rebuild the tables at the cell's actual fanout load: the
         normalized single-input argument folds the load in, so the
         bucketed load only sets the table's build point *)
      let gate = { cell.Design.gate with Gate.load } in
      Models.of_tables ?opts ?taus ?x_tau ?x_sep ?share_others ?pool gate th)
