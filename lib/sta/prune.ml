(* The unified STA prune mask: up to three source predicates (one per
   producing analysis) fused behind a single predicate, with atomic
   per-source attribution counters.  See the .mli for the contract. *)

type source = Unsensitizable | Quiet | Never_proximate

let source_name = function
  | Unsensitizable -> "unsensitizable"
  | Quiet -> "quiet"
  | Never_proximate -> "never_proximate"

type t = {
  unsensitizable : (Design.cell -> bool) option;
  quiet : (Design.cell -> bool) option;
  never_proximate : (Design.cell -> bool) option;
  c_unsensitizable : int Atomic.t;
  c_quiet : int Atomic.t;
  c_never_proximate : int Atomic.t;
}

let make ?unsensitizable ?quiet ?never_proximate () =
  {
    unsensitizable;
    quiet;
    never_proximate;
    c_unsensitizable = Atomic.make 0;
    c_quiet = Atomic.make 0;
    c_never_proximate = Atomic.make 0;
  }

let none = make ()

let is_empty t =
  t.unsensitizable = None && t.quiet = None && t.never_proximate = None

let check pred cell = match pred with Some p -> p cell | None -> false

let member t cell =
  check t.unsensitizable cell || check t.quiet cell
  || check t.never_proximate cell

(* attribution follows the declared priority order: the cheapest analysis
   claims a cell that several sources cover *)
let hit t cell =
  if check t.unsensitizable cell then begin
    Atomic.incr t.c_unsensitizable;
    true
  end
  else if check t.quiet cell then begin
    Atomic.incr t.c_quiet;
    true
  end
  else if check t.never_proximate cell then begin
    Atomic.incr t.c_never_proximate;
    true
  end
  else false

type counts = {
  unsensitizable : int;
  quiet : int;
  never_proximate : int;
}

let counts t =
  {
    unsensitizable = Atomic.get t.c_unsensitizable;
    quiet = Atomic.get t.c_quiet;
    never_proximate = Atomic.get t.c_never_proximate;
  }

let total c = c.unsensitizable + c.quiet + c.never_proximate

let reset_counts t =
  Atomic.set t.c_unsensitizable 0;
  Atomic.set t.c_quiet 0;
  Atomic.set t.c_never_proximate 0
