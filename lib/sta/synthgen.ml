module Gate = Proxim_gates.Gate
module Prng = Proxim_util.Prng

let generate ?(seed = 0) ?(depth = 16) ?(window = 8) ?(reach = 3) ~tech ~cells
    () =
  if depth < 1 then invalid_arg "Synthgen.generate: depth < 1";
  if cells < depth then invalid_arg "Synthgen.generate: cells < depth";
  if window < 1 then invalid_arg "Synthgen.generate: window < 1";
  if reach < 1 then invalid_arg "Synthgen.generate: reach < 1";
  let gate name =
    match Gate.of_name tech name with
    | Ok g -> g
    | Error msg -> invalid_arg ("Synthgen.generate: " ^ msg)
  in
  let gmix = [| gate "nand2"; gate "nor2"; gate "nand3" |] in
  let rng = Prng.create (Int64.logxor 0x5058_5359_4e54_4845L (Int64.of_int seed)) in
  let base = cells / depth and extra = cells mod depth in
  let width l = base + if l < extra then 1 else 0 in
  (* enough sources that even a nand3 in the narrowest configuration can
     find distinct inputs *)
  let n_pis = max (width 0) 4 in
  let pis = Array.init n_pis (fun j -> "pi" ^ string_of_int j) in
  (* pools.(0) = primary inputs, pools.(l + 1) = nets of layer l *)
  let pools = Array.make (depth + 1) [||] in
  pools.(0) <- pis;
  let rev_cells = ref [] in
  for l = 0 to depth - 1 do
    let w = width l in
    let nets = Array.make w "" in
    let lp = string_of_int l in
    for j = 0 to w - 1 do
      let js = string_of_int j in
      let g = gmix.(Prng.int rng ~lo:0 ~hi:(Array.length gmix - 1)) in
      let k = g.Gate.fan_in in
      let chosen = Array.make k "" in
      let used name =
        let rec go i = i < k && (chosen.(i) = name || go (i + 1)) in
        go 0
      in
      (* a source near this cell's aligned position in [pool], wrapping
         at the pool boundary (placement locality) *)
      let pos_in pool =
        let wp = Array.length pool in
        let idx = ((j * wp / w) + Prng.int rng ~lo:(-window) ~hi:window) mod wp in
        pool.(if idx < 0 then idx + wp else idx)
      in
      for pin = 0 to k - 1 do
        (* pin 0 always reads the immediately previous pool, pinning the
           cell's timing level to its layer index; the rest reach back up
           to [reach] parity-preserving steps (two layers each) for
           reconvergent structure.  Parity matters: every gate in the mix
           inverts, so a net's edge polarity is its layer parity, and the
           single-vector analysis rejects cells with mixed input edges *)
        let pool_of () =
          if pin = 0 then pools.(l)
          else pools.(l - (2 * Prng.int rng ~lo:0 ~hi:(min (reach - 1) (l / 2))))
        in
        let name = ref (pos_in (pool_of ())) in
        let attempts = ref 0 in
        while used !name && !attempts < 64 do
          incr attempts;
          name := pos_in (pool_of ())
        done;
        if used !name then begin
          (* deterministic fallback for degenerate widths: first unused
             net scanning the recent same-parity pools *)
          let found = ref false in
          let p = ref l in
          while (not !found) && !p >= 0 do
            let pool = pools.(!p) in
            let i = ref 0 in
            while (not !found) && !i < Array.length pool do
              if not (used pool.(!i)) then begin
                name := pool.(!i);
                found := true
              end;
              incr i
            done;
            p := !p - 2
          done;
          if not !found then
            invalid_arg "Synthgen.generate: design too narrow for gate fan-in"
        end;
        chosen.(pin) <- !name
      done;
      let net = "n" ^ lp ^ "_" ^ js in
      nets.(j) <- net;
      rev_cells :=
        {
          Design.name = "u" ^ lp ^ "_" ^ js;
          gate = g;
          input_nets = chosen;
          output_net = net;
        }
        :: !rev_cells
    done;
    pools.(l + 1) <- nets
  done;
  let design =
    Design.create ~cells:(List.rev !rev_cells)
      ~primary_inputs:(Array.to_list pis)
      ~primary_outputs:(Array.to_list pools.(depth))
  in
  let name =
    "synth_c" ^ string_of_int cells ^ "_d" ^ string_of_int depth ^ "_s"
    ^ string_of_int seed
  in
  (name, design)
