(** [proxim serve] — a long-lived, multi-session incremental timing
    daemon over the ECO engine.

    The server holds many designs warm in a shared store and accepts
    concurrent client sessions over a Unix-domain or TCP socket.  Each
    session speaks the length-prefixed JSON protocol of {!Frame}: one
    request object per frame, one response object back.  A session may
    load or generate designs, attach an incremental analysis
    ({!Proxim_sta.Sta.build_ir}), stream ECOs through
    {!Proxim_sta.Sta.update}, and query reports, K-worst paths and
    slacks — every answer is produced by the very same engine entry
    points the offline [proxim sta] command uses, so responses are
    bit-identical to offline analysis by construction.

    {2 Protocol}

    Requests are objects with an ["op"] field; responses carry
    ["ok": true] plus the payload, or ["ok": false] with a typed
    [{"error": {"code", "message"}}] envelope.  Ops:

    - [hello] — server identification and protocol version.
    - [load {"path"}] / [load_text {"text"}] — parse a netlist (binary
      PXNB or text by sniffing / text only) into the shared store.
    - [gen {"cells", "depth", "seed"}] — deterministic synthetic design.
    - [designs] — list the store.
    - [attach {"design", "mode", "models", "seed", "pi", "pi_all"}] —
      build + analyze an IR for this session.  [pi] is a list of
      [[net, arrival]] pairs; [pi_all] applies one arrival to every
      remaining primary input.  Arrivals are
      [{"time", "slew", "edge"}] with times in seconds ([%.17g]
      round-trips them losslessly, preserving bit-identity over JSON).
    - [eco {"ecos"}] — [{"kind": "set_pi", "net", "arrival"|null}] or
      [{"kind": "touch_cell", "cell"}], applied in order through
      {!Proxim_sta.Sta.update}.
    - [swap_models {"seed"}] — {!Proxim_sta.Sta.swap_models} to the
      shared synthetic factory of that seed.
    - [report], [paths {"po", "k"}], [slacks {"required"}] — queries.
    - [metrics {"format": "text"|"json"}] — the {!Proxim_obs.Metrics}
      registry snapshot, Prometheus-style text or JSON.
    - [ping], [bye], [shutdown].

    {2 Robustness}

    Malformed frames, oversized payloads, bad JSON, unknown ops,
    analysis errors ({!Proxim_sta.Sta.Unknown_eco_target},
    {!Proxim_sta.Sta.Mixed_input_edges}), and
    {!Proxim_util.Pool.Shut_down} all degrade to typed per-session
    error responses; a client disconnect ends its session thread.  No
    client behavior terminates the process.

    Sessions share the characterized model store (the factories'
    memo caches are domain-safe) and one work-stealing pool; engine
    calls are serialized on a process-wide mutex so the pool's
    domain-local re-entrancy flag is never interleaved by sibling
    systhreads. *)

module Json = Proxim_lint.Json

type listen =
  [ `Unix of string  (** Unix-domain socket at this path *)
  | `Tcp of string * int  (** bind address, port (0 picks a free port) *)
  ]

type t
(** A running server. *)

val start : ?backlog:int -> listen -> t
(** Bind, listen and spawn the accept thread.  Raises [Unix_error] if
    the address cannot be bound.  Installs a [SIGPIPE] ignore handler
    (a daemon must survive writes to vanished clients). *)

val port : t -> int option
(** The bound TCP port ([None] for Unix-domain sockets) — the way
    tests bind port 0 and discover the real port. *)

val stop : t -> unit
(** Begin shutdown: stop accepting, wake every blocked session read
    (the sockets are [shutdown(2)], so readers see a clean EOF).
    Idempotent, non-blocking; pair with {!wait}. *)

val wait : t -> unit
(** Block until the server has fully stopped — the accept thread and
    every session thread joined, the listening socket closed (and a
    Unix-domain socket file unlinked).  Returns after {!stop} was
    called from any thread, including a session handling the protocol
    [shutdown] op. *)

(** {1 Client side}

    Enough of a client for the CLI smoke mode, the tests and the
    bench: connect, exchange one frame per call. *)

val connect : listen -> Unix.file_descr
(** Connect to a server ([`Tcp] resolves the host with
    [gethostbyname]).  Raises [Unix_error] on refusal. *)

val request : Unix.file_descr -> Json.t -> (Json.t, string) result
(** Send one request frame and read one response frame. *)

val ok : Json.t -> bool
(** The response's ["ok"] field (false when absent). *)

val error_code : Json.t -> string option
(** The response's ["error"]["code"] field, when present. *)

(** {1 JSON codecs}

    Shared by the server, the CLI client mode and the tests, so both
    directions of the wire format live in one place. *)

val arrival_to_json : Proxim_sta.Sta.arrival -> Json.t
val arrival_of_json : Json.t -> Proxim_sta.Sta.arrival option

val report_to_json : Proxim_sta.Sta.report -> Json.t

val report_of_json : Json.t -> (Proxim_sta.Sta.report, string) result
(** Exact inverse of {!report_to_json}: every float round-trips
    bit-identically (the emitter prints [%.17g]). *)

val stats_to_json : Proxim_timing.Timing.stats -> Json.t
