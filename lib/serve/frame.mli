(** The [proxim serve] wire framing: a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON.

    The codec treats the peer as adversarial, mirroring the hardened
    binary-netlist reader: the claimed length is bounds-checked against
    {!max_frame} before any allocation, end-of-file in the middle of a
    header or payload is distinguished from a clean close at a frame
    boundary, and every failure is a typed {!read_error} — never an
    exception escaping into a session thread. *)

val max_frame : int
(** Largest accepted payload, 16 MiB.  Large enough for a full
    million-cell report; small enough that one hostile client cannot
    force an unbounded allocation. *)

type read_error =
  | Closed
      (** the peer closed the connection cleanly, at a frame boundary *)
  | Truncated of string
      (** end-of-file inside a header or payload; carries which *)
  | Oversized of int
      (** the header claimed more than {!max_frame} bytes — the stream
          can no longer be trusted to resynchronize, close it *)

val read_error_to_string : read_error -> string

val read : Unix.file_descr -> (string, read_error) result
(** Read one frame.  Blocking; never raises on EOF (typed errors
    instead).  [Unix_error] from a genuinely broken descriptor still
    propagates — the session loop maps it to a dropped connection. *)

val write : Unix.file_descr -> string -> unit
(** Write one frame (header + payload, complete-write loop).  Raises
    [Invalid_argument] if the payload exceeds {!max_frame}, and
    [Unix.Unix_error (EPIPE, _, _)] when the peer is gone — callers
    treat that as a disconnect, not a crash. *)
