let max_frame = 16 * 1024 * 1024

type read_error =
  | Closed
  | Truncated of string
  | Oversized of int

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated what -> Printf.sprintf "connection dropped mid-%s" what
  | Oversized n ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n max_frame

(* Read exactly [n] bytes or report how far we got.  [Unix.read] may
   return short counts on sockets, so loop; 0 means the peer is gone. *)
let really_read fd buf n =
  let rec go off =
    if off >= n then n
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read fd =
  let header = Bytes.create 4 in
  match really_read fd header 4 with
  | 0 -> Error Closed
  | k when k < 4 -> Error (Truncated "header")
  | _ ->
    (* big-endian u32; OCaml ints are 63-bit so this cannot go negative *)
    let n =
      (Char.code (Bytes.get header 0) lsl 24)
      lor (Char.code (Bytes.get header 1) lsl 16)
      lor (Char.code (Bytes.get header 2) lsl 8)
      lor Char.code (Bytes.get header 3)
    in
    if n > max_frame then Error (Oversized n)
    else begin
      let payload = Bytes.create n in
      let k = really_read fd payload n in
      if k < n then Error (Truncated "payload")
      else Ok (Bytes.unsafe_to_string payload)
    end

let really_write fd buf n =
  let rec go off =
    if off < n then
      match Unix.write fd buf off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write fd payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Frame.write: %d-byte payload exceeds max_frame" n);
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 buf 4 n;
  really_write fd buf (4 + n)
