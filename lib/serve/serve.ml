module Json = Proxim_lint.Json
module Metrics = Proxim_obs.Metrics
module Pool = Proxim_util.Pool
module Tech = Proxim_gates.Tech
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Netlist_text = Proxim_sta.Netlist_text
module Netlist_bin = Proxim_sta.Netlist_bin
module Synthgen = Proxim_sta.Synthgen
module Graph = Proxim_timing.Graph
module Timing = Proxim_timing.Timing

type listen = [ `Unix of string | `Tcp of string * int ]

let tech = Tech.generic_5v

(* --- observability --------------------------------------------------- *)

(* Lazily registered so merely linking the library does not add serve
   metrics to every `proxim sta --obs` snapshot. *)
let active_sessions = Atomic.make 0

type mx = {
  m_sessions : Metrics.Counter.t;
  m_requests : Metrics.Counter.t;
  m_errors : Metrics.Counter.t;
  h_request : Metrics.Histogram.t;
  h_eco : Metrics.Histogram.t;
  h_query : Metrics.Histogram.t;
}

let mx =
  lazy
    (Metrics.register_gauge_source "serve.active_sessions" (fun () ->
         float_of_int (Atomic.get active_sessions));
     Metrics.install_util_sources ();
     let hist name = Metrics.Histogram.v ~lo:1e-7 ~hi:10. ~bins:32 name in
     {
       m_sessions = Metrics.Counter.v "serve.sessions";
       m_requests = Metrics.Counter.v "serve.requests";
       m_errors = Metrics.Counter.v "serve.errors";
       h_request = hist "serve.request_seconds";
       h_eco = hist "serve.eco_seconds";
       h_query = hist "serve.query_seconds";
     })

(* --- typed per-session errors ---------------------------------------- *)

type err =
  | Bad_frame of string
  | Bad_json of string
  | Bad_request of string
  | Unknown_op of string
  | Unknown_design of string
  | Not_attached
  | Load_error of string
  | Unknown_target of string * string
  | Mixed_edges of string
  | Pool_shutdown
  | Internal of string

let err_code = function
  | Bad_frame _ -> "bad_frame"
  | Bad_json _ -> "bad_json"
  | Bad_request _ -> "bad_request"
  | Unknown_op _ -> "unknown_op"
  | Unknown_design _ -> "unknown_design"
  | Not_attached -> "not_attached"
  | Load_error _ -> "load_error"
  | Unknown_target _ -> "unknown_target"
  | Mixed_edges _ -> "mixed_edges"
  | Pool_shutdown -> "pool_shutdown"
  | Internal _ -> "internal"

let err_message = function
  | Bad_frame m -> m
  | Bad_json m -> "request is not valid JSON: " ^ m
  | Bad_request m -> m
  | Unknown_op op -> Printf.sprintf "unknown op %S" op
  | Unknown_design d -> Printf.sprintf "no design %S in the store" d
  | Not_attached -> "no analysis attached (send an \"attach\" first)"
  | Load_error m -> m
  | Unknown_target (kind, name) ->
    Printf.sprintf "eco names an unknown %s %S" kind name
  | Mixed_edges cell ->
    Printf.sprintf
      "mixed input edges at cell %s (a single-vector analysis cannot order \
       a glitch)"
      cell
  | Pool_shutdown ->
    "the worker pool was shut down mid-session; re-submit after the server \
     reconfigures"
  | Internal m -> m

let error_json e =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("code", Json.String (err_code e));
            ("message", Json.String (err_message e));
          ] );
    ]

(* --- JSON codecs ------------------------------------------------------ *)

let field name j = Json.member name j
let str_field name j = Option.bind (field name j) Json.to_string_value
let num_field name j = Option.bind (field name j) Json.to_number

let int_field name j =
  Option.bind (num_field name j) (fun f ->
      if Float.is_integer f then Some (int_of_float f) else None)

let edge_to_string = function
  | Measure.Rise -> "rise"
  | Measure.Fall -> "fall"

let edge_of_string = function
  | "rise" -> Some Measure.Rise
  | "fall" -> Some Measure.Fall
  | _ -> None

let arrival_to_json (a : Sta.arrival) =
  Json.Obj
    [
      ("time", Json.Number a.Sta.time);
      ("slew", Json.Number a.Sta.slew);
      ("edge", Json.String (edge_to_string a.Sta.edge));
    ]

let arrival_of_json j =
  match
    ( num_field "time" j,
      num_field "slew" j,
      Option.bind (str_field "edge" j) edge_of_string )
  with
  | Some time, Some slew, Some edge -> Some { Sta.time; slew; edge }
  | _ -> None

let named_arrival_to_json (net, a) =
  Json.List [ Json.String net; arrival_to_json a ]

let named_arrival_of_json j =
  match Json.to_list j with
  | Some [ net; aj ] -> (
    match (Json.to_string_value net, arrival_of_json aj) with
    | Some n, Some a -> Some (n, a)
    | _ -> None)
  | _ -> None

let report_to_json (r : Sta.report) =
  Json.Obj
    [
      ("arrivals", Json.List (List.map named_arrival_to_json r.Sta.arrivals));
      ( "critical_po",
        match r.Sta.critical_po with
        | None -> Json.Null
        | Some na -> named_arrival_to_json na );
      ( "predecessors",
        Json.List
          (List.map
             (fun (a, b) -> Json.List [ Json.String a; Json.String b ])
             r.Sta.predecessors) );
    ]

let report_of_json j =
  let ( let* ) = Result.bind in
  let all_or_error what f l =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: tl -> (
        match f x with
        | Some v -> go (v :: acc) tl
        | None -> Error ("bad " ^ what))
    in
    go [] l
  in
  let* arrivals =
    match Option.bind (field "arrivals" j) Json.to_list with
    | None -> Error "report has no arrivals list"
    | Some l -> all_or_error "arrival entry" named_arrival_of_json l
  in
  let* critical_po =
    match field "critical_po" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match named_arrival_of_json v with
      | Some na -> Ok (Some na)
      | None -> Error "bad critical_po")
  in
  let* predecessors =
    match Option.bind (field "predecessors" j) Json.to_list with
    | None -> Error "report has no predecessors list"
    | Some l ->
      all_or_error "predecessor entry"
        (fun p ->
          match Json.to_list p with
          | Some [ a; b ] -> (
            match (Json.to_string_value a, Json.to_string_value b) with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
          | _ -> None)
        l
  in
  Ok { Sta.arrivals; critical_po; predecessors }

let stats_to_json (s : Timing.stats) =
  Json.Obj
    [
      ("evaluated", Json.Number (float_of_int s.Timing.evaluated));
      ("changed", Json.Number (float_of_int s.Timing.changed));
      ("total_cells", Json.Number (float_of_int s.Timing.total_cells));
    ]

(* --- the shared store ------------------------------------------------- *)

type store = {
  store_m : Mutex.t;
  designs : (string, Design.t * Vtc.thresholds option) Hashtbl.t;
  synth_factories : (int, Sta.factory) Hashtbl.t;
      (** one shared synthetic factory per seed: its memo cache is
          domain-safe, so sessions share characterized models *)
  oracle_factories : (string, Sta.factory) Hashtbl.t  (** per design *)
}

let store_create () =
  {
    store_m = Mutex.create ();
    designs = Hashtbl.create 16;
    synth_factories = Hashtbl.create 4;
    oracle_factories = Hashtbl.create 4;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let store_put store name design th =
  with_lock store.store_m (fun () ->
      Hashtbl.replace store.designs name (design, th))

let store_get store name =
  with_lock store.store_m (fun () -> Hashtbl.find_opt store.designs name)

let store_names store =
  with_lock store.store_m (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) store.designs []))

let synth_factory store seed =
  with_lock store.store_m (fun () ->
      match Hashtbl.find_opt store.synth_factories seed with
      | Some f -> f
      | None ->
        let f = Sta.synthetic_factory ~seed () in
        Hashtbl.add store.synth_factories seed f;
        f)

let oracle_factory store name design th =
  with_lock store.store_m (fun () ->
      match Hashtbl.find_opt store.oracle_factories name with
      | Some f -> f
      | None ->
        let f = Sta.oracle_factory design th in
        Hashtbl.add store.oracle_factories name f;
        f)

(* --- engine serialization --------------------------------------------- *)

(* The pool's nested-call detection lives in a domain-local flag that
   systhreads on the same domain would interleave (save/restore races
   could wedge it permanently "busy").  One process-wide mutex around
   every pool-entering engine call keeps at most one systhread inside
   the pool at a time — concurrency comes from the pool's domains, not
   from overlapping analyses.  Queries (report/paths/slacks) read only
   the session's own annotations and need no lock. *)
let engine_m = Mutex.create ()

let with_engine f = with_lock engine_m f

(* --- netlist loading -------------------------------------------------- *)

let load_from_text text =
  Result.map
    (fun (name, design) ->
      let raw = Netlist_text.parse_raw tech text in
      (name, design, Option.map fst raw.Netlist_text.raw_thresholds))
    (Netlist_text.parse tech text)

let load_from_path path =
  if Netlist_bin.file_is_binary path then Netlist_bin.read_file tech path
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error m -> Error m
    | text -> load_from_text text

let default_thresholds design file_th =
  match file_th with
  | Some th -> th
  | None -> (
    match Design.cells design with
    | c :: _ -> Vtc.thresholds c.Design.gate
    | [] -> (
      match Gate.of_name tech "inv" with
      | Ok g -> Vtc.thresholds g
      | Error m -> failwith m))

(* --- sessions --------------------------------------------------------- *)

type attached = {
  ir : Sta.ir;
  design_name : string;
  thresholds : Vtc.thresholds;
}

type session = { sid : int; fd : Unix.file_descr; mutable att : attached option }

type t = {
  listen_fd : Unix.file_descr;
  listen_addr : listen;
  bound_port : int option;
  stop_flag : bool Atomic.t;
  conns_m : Mutex.t;
  mutable conns : (int * Unix.file_descr) list;
  mutable session_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  store : store;
}

exception Err of err

let failf e = raise (Err e)

let require what = function Some v -> v | None -> failf (Bad_request what)

let design_summary_json name design =
  let g = Design.graph design in
  [
    ("design", Json.String name);
    ("cells", Json.Number (float_of_int (Graph.cell_count g)));
    ("nets", Json.Number (float_of_int (Graph.net_count g)));
    ("levels", Json.Number (float_of_int (Graph.level_count g)));
  ]

let ok_json fields = Json.Obj (("ok", Json.Bool true) :: fields)

let pi_of_json j =
  match Json.to_list j with
  | None -> failf (Bad_request "pi must be a list of [net, arrival] pairs")
  | Some items ->
    List.map
      (fun item ->
        match named_arrival_of_json item with
        | Some na -> na
        | None ->
          failf
            (Bad_request
               "bad pi entry (expected [net, {\"time\",\"slew\",\"edge\"}])"))
      items

let eco_of_json j =
  match str_field "kind" j with
  | Some "set_pi" ->
    let net = require "set_pi eco needs a \"net\"" (str_field "net" j) in
    let arrival =
      match field "arrival" j with
      | None | Some Json.Null -> None
      | Some aj -> (
        match arrival_of_json aj with
        | Some a -> Some a
        | None -> failf (Bad_request "bad arrival in set_pi eco"))
    in
    Sta.Set_pi (net, arrival)
  | Some "touch_cell" ->
    Sta.Touch_cell
      (require "touch_cell eco needs a \"cell\"" (str_field "cell" j))
  | Some k -> failf (Bad_request (Printf.sprintf "unknown eco kind %S" k))
  | None -> failf (Bad_request "eco needs a \"kind\"")

let get_attached sess =
  match sess.att with Some a -> a | None -> failf Not_attached

(* one request -> one response; every analysis-layer failure becomes a
   typed error envelope here, nothing escapes into the session loop *)
let handle srv sess req =
  let op = require "request needs an \"op\"" (str_field "op" req) in
  let reply =
    match op with
    | "hello" ->
      ok_json
        [
          ("server", Json.String "proxim serve");
          ("protocol", Json.Number 1.);
        ]
    | "ping" -> ok_json [ ("pong", Json.Bool true) ]
    | "load" | "load_text" ->
      let loaded =
        match op with
        | "load" ->
          load_from_path (require "load needs a \"path\"" (str_field "path" req))
        | _ ->
          load_from_text
            (require "load_text needs a \"text\"" (str_field "text" req))
      in
      (match loaded with
       | Error m -> failf (Load_error m)
       | Ok (name, design, th) ->
         let name = Option.value (str_field "name" req) ~default:name in
         store_put srv.store name design th;
         ok_json (design_summary_json name design))
    | "gen" ->
      let cells = require "gen needs integer \"cells\"" (int_field "cells" req) in
      let depth = Option.value (int_field "depth" req) ~default:4 in
      let seed = Option.value (int_field "seed" req) ~default:0 in
      let name, design =
        try Synthgen.generate ~seed ~depth ~tech ~cells ()
        with Invalid_argument m -> failf (Bad_request m)
      in
      let name = Option.value (str_field "name" req) ~default:name in
      store_put srv.store name design None;
      ok_json (design_summary_json name design)
    | "designs" ->
      ok_json
        [
          ( "designs",
            Json.List
              (List.map (fun n -> Json.String n) (store_names srv.store)) );
        ]
    | "attach" ->
      let dname =
        require "attach needs a \"design\"" (str_field "design" req)
      in
      let design, file_th =
        match store_get srv.store dname with
        | Some d -> d
        | None -> failf (Unknown_design dname)
      in
      let mode =
        match Option.value (str_field "mode" req) ~default:"proximity" with
        | "proximity" -> Sta.Proximity
        | "classic" -> Sta.Classic
        | m -> failf (Bad_request (Printf.sprintf "unknown mode %S" m))
      in
      let seed = Option.value (int_field "seed" req) ~default:0 in
      let factory =
        match Option.value (str_field "models" req) ~default:"synthetic" with
        | "synthetic" -> synth_factory srv.store seed
        | "oracle" ->
          let th = default_thresholds design file_th in
          oracle_factory srv.store dname design th
        | m -> failf (Bad_request (Printf.sprintf "unknown models %S" m))
      in
      let named_pi =
        match field "pi" req with None -> [] | Some j -> pi_of_json j
      in
      let pi =
        match field "pi_all" req with
        | None | Some Json.Null -> named_pi
        | Some aj ->
          let a =
            match arrival_of_json aj with
            | Some a -> a
            | None -> failf (Bad_request "bad pi_all arrival")
          in
          named_pi
          @ List.filter_map
              (fun net ->
                if List.mem_assoc net named_pi then None else Some (net, a))
              (Design.primary_inputs design)
      in
      if pi = [] then
        failf (Bad_request "attach needs at least one pi event (or pi_all)");
      let thresholds = default_thresholds design file_th in
      let ir, stats =
        with_engine (fun () ->
            let ir =
              Sta.build_ir ~mode ~models:factory.Sta.models ~thresholds design
                ~pi
            in
            let stats = Sta.reanalyze ir in
            (ir, stats))
      in
      sess.att <- Some { ir; design_name = dname; thresholds };
      ok_json
        (design_summary_json dname design @ [ ("stats", stats_to_json stats) ])
    | "eco" ->
      let att = get_attached sess in
      let ecos =
        match Option.bind (field "ecos" req) Json.to_list with
        | None -> failf (Bad_request "eco needs an \"ecos\" list")
        | Some l -> List.map eco_of_json l
      in
      let stats = with_engine (fun () -> Sta.update att.ir ecos) in
      ok_json [ ("stats", stats_to_json stats) ]
    | "swap_models" ->
      let att = get_attached sess in
      let seed =
        require "swap_models needs integer \"seed\"" (int_field "seed" req)
      in
      let factory = synth_factory srv.store seed in
      let stats =
        with_engine (fun () -> Sta.swap_models att.ir factory.Sta.models)
      in
      ok_json [ ("stats", stats_to_json stats) ]
    | "report" ->
      let att = get_attached sess in
      ok_json [ ("report", report_to_json (Sta.report att.ir)) ]
    | "paths" ->
      let att = get_attached sess in
      let po = require "paths needs a \"po\"" (str_field "po" req) in
      let k = Option.value (int_field "k" req) ~default:1 in
      let paths =
        try Sta.worst_paths att.ir ~po ~k
        with Invalid_argument m -> failf (Bad_request m)
      in
      ok_json
        [
          ( "paths",
            Json.List
              (List.map
                 (fun (p : Sta.path) ->
                   Json.Obj
                     [
                       ("arrival", Json.Number p.Sta.path_arrival);
                       ( "nets",
                         Json.List
                           (List.map (fun n -> Json.String n) p.Sta.path_nets)
                       );
                     ])
                 paths) );
        ]
    | "slacks" ->
      let att = get_attached sess in
      let required =
        require "slacks needs a \"required\" time (seconds)"
          (num_field "required" req)
      in
      let slacks =
        Sta.po_slacks (Sta.design att.ir) (Sta.report att.ir) ~required
      in
      ok_json
        [
          ( "slacks",
            Json.List
              (List.map
                 (fun (net, s) ->
                   Json.List [ Json.String net; Json.Number s ])
                 slacks) );
        ]
    | "metrics" -> (
      let snap = Metrics.snapshot () in
      match Option.value (str_field "format" req) ~default:"json" with
      | "text" ->
        ok_json
          [
            ("format", Json.String "text");
            ("metrics", Json.String (Metrics.to_text snap));
          ]
      | "json" -> (
        match Json.of_string (Metrics.to_json snap) with
        | Ok j -> ok_json [ ("format", Json.String "json"); ("metrics", j) ]
        | Error m -> failf (Internal ("metrics reporter: " ^ m)))
      | f -> failf (Bad_request (Printf.sprintf "unknown metrics format %S" f)))
    | "bye" -> ok_json [ ("bye", Json.Bool true) ]
    | "shutdown" -> ok_json [ ("shutdown", Json.Bool true) ]
    | op -> failf (Unknown_op op)
  in
  (op, reply)

let handle_safely srv sess req =
  try handle srv sess req with
  | Err e -> ("", error_json e)
  | Sta.Unknown_eco_target { kind; name } ->
    ("", error_json (Unknown_target (kind, name)))
  | Sta.Mixed_input_edges { cell } -> ("", error_json (Mixed_edges cell))
  | Pool.Shut_down -> ("", error_json Pool_shutdown)
  | Invalid_argument m | Failure m -> ("", error_json (Bad_request m))
  | Stack_overflow -> ("", error_json (Internal "stack overflow"))
  | e -> ("", error_json (Internal (Printexc.to_string e)))

(* --- server loops ----------------------------------------------------- *)

let stop srv =
  if not (Atomic.exchange srv.stop_flag true) then begin
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (* wake every session blocked in Frame.read with a clean EOF *)
    with_lock srv.conns_m (fun () ->
        List.iter
          (fun (_, fd) ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          srv.conns)
  end

let session_loop srv sess =
  let m = Lazy.force mx in
  let send j = Frame.write sess.fd (Json.to_string j) in
  let rec loop () =
    match Frame.read sess.fd with
    | Error Frame.Closed -> ()
    | Error (Frame.Truncated _ as e) | Error (Frame.Oversized _ as e) ->
      (* the byte stream can no longer be trusted to hold frame
         boundaries: answer with a typed error, then drop the session *)
      Metrics.Counter.incr m.m_errors;
      (try send (error_json (Bad_frame (Frame.read_error_to_string e)))
       with Unix.Unix_error _ | Invalid_argument _ -> ())
    | Ok payload -> (
      Metrics.Counter.incr m.m_requests;
      let op, reply =
        match Json.of_string payload with
        | Error msg ->
          Metrics.Counter.incr m.m_errors;
          ("", error_json (Bad_json msg))
        | Ok req ->
          let t0 = Unix.gettimeofday () in
          let op, reply = handle_safely srv sess req in
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.Histogram.observe m.h_request dt;
          (match op with
           | "eco" | "swap_models" -> Metrics.Histogram.observe m.h_eco dt
           | "report" | "paths" | "slacks" ->
             Metrics.Histogram.observe m.h_query dt
           | _ -> ());
          if op = "" then Metrics.Counter.incr m.m_errors;
          (op, reply)
      in
      match send reply with
      | exception Unix.Unix_error _ -> ()  (* client vanished mid-reply *)
      | () -> (
        match op with
        | "bye" -> ()
        | "shutdown" -> stop srv
        | _ -> loop ()))
  in
  loop ()

let sid_counter = Atomic.make 0

let serve_conn srv fd =
  let m = Lazy.force mx in
  Metrics.Counter.incr m.m_sessions;
  Atomic.incr active_sessions;
  let sid = Atomic.fetch_and_add sid_counter 1 in
  with_lock srv.conns_m (fun () -> srv.conns <- (sid, fd) :: srv.conns);
  let sess = { sid; fd; att = None } in
  Fun.protect
    ~finally:(fun () ->
      with_lock srv.conns_m (fun () ->
          srv.conns <- List.filter (fun (s, _) -> s <> sid) srv.conns);
      Atomic.decr active_sessions;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try session_loop srv sess
      with e ->
        (* a session thread must never take the process down *)
        Metrics.Counter.incr m.m_errors;
        ignore (Printexc.to_string e))

let accept_loop srv =
  let rec go () =
    if Atomic.get srv.stop_flag then ()
    else
      match Unix.accept srv.listen_fd with
      | fd, _ ->
        if Atomic.get srv.stop_flag then (
          (try Unix.close fd with Unix.Unix_error _ -> ()))
        else begin
          let th = Thread.create (fun () -> serve_conn srv fd) () in
          with_lock srv.conns_m (fun () ->
              srv.session_threads <- th :: srv.session_threads);
          go ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
        go ()
      | exception Unix.Unix_error _ ->
        (* the listening socket was shut down (or is gone): stop *)
        Atomic.set srv.stop_flag true
  in
  go ()

let start ?(backlog = 16) (addr : listen) =
  ignore (Lazy.force mx);
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | _ -> ()
   | exception (Sys_error _ | Invalid_argument _) -> ());
  let listen_fd, bound_port =
    match addr with
    | `Unix path ->
      (* a stale socket file from a dead server would make bind fail *)
      (match Unix.lstat path with
       | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
       | _ -> ()
       | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      (fd, None)
    | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         let inet =
           try Unix.inet_addr_of_string host
           with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
         in
         Unix.bind fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Some p
        | _ -> None
      in
      (fd, actual)
  in
  Unix.listen listen_fd backlog;
  let srv =
    {
      listen_fd;
      listen_addr = addr;
      bound_port;
      stop_flag = Atomic.make false;
      conns_m = Mutex.create ();
      conns = [];
      session_threads = [];
      accept_thread = None;
      store = store_create ();
    }
  in
  srv.accept_thread <- Some (Thread.create (fun () -> accept_loop srv) ());
  srv

let port srv = srv.bound_port

let wait srv =
  Option.iter Thread.join srv.accept_thread;
  (* the accept thread has exited, so the thread list is final; any
     session still blocked was woken by [stop]'s shutdown(2) *)
  stop srv;
  let threads = with_lock srv.conns_m (fun () -> srv.session_threads) in
  List.iter Thread.join threads;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  match srv.listen_addr with
  | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()

(* --- client ----------------------------------------------------------- *)

let connect (addr : listen) =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       let inet =
         try Unix.inet_addr_of_string host
         with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
       in
       Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd

let request fd req =
  Frame.write fd (Json.to_string req);
  match Frame.read fd with
  | Error e -> Error (Frame.read_error_to_string e)
  | Ok s ->
    Result.map_error (fun m -> "bad response JSON: " ^ m) (Json.of_string s)

let ok j = match field "ok" j with Some (Json.Bool b) -> b | _ -> false

let error_code j =
  Option.bind (field "error" j) (fun e -> str_field "code" e)
