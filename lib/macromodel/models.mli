(** A uniform model interface consumed by the {!Proxim_core} algorithm.

    The `ProximityDelay` algorithm needs four oracles: single-input delay
    and transition time, and dual-input delay and transition time with
    respect to a dominant input.  This record abstracts over where they
    come from — the golden simulator (the paper's validation methodology)
    or the tabulated macromodels (the deployable artifact). *)

type t = {
  fan_in : int;
  name : string;
  tau_range : (float * float) option;
      (** the characterized input-transition-time span, when the model is
          table-backed ({!of_tables}): queries outside it clamp silently
          (PCHIP extrapolation policy).  [None] for {!synthetic} /
          {!of_oracle}, which evaluate at any [tau].  The verify layer
          raises PX302 when reachable intervals escape this span. *)
  cache_stats : unit -> Proxim_util.Memo_cache.stats;
      (** hit/miss/entry counters of the model's internal memoization
          (merged over the single- and dual-input caches).  [hits] counts
          queries answered without a new golden-simulator run — including
          waits on a computation already in flight on another domain. *)
  assist : edge:Proxim_measure.Measure.edge -> pins:int list -> bool;
      (** do the switching transistors of [pins] assist each other in the
          driving network for this input edge (see
          {!Proxim_gates.Gate.switching_assist})?  Decides the dominance
          direction: assisting inputs -> earliest would-be response wins;
          gating inputs -> latest.  NAND-falling / NOR-rising assist;
          NAND-rising / NOR-falling gate. *)
  delay1 : pin:int -> edge:Proxim_measure.Measure.edge -> tau:float -> float;
      (** [Delta^(1)]: single-input delay, s *)
  trans1 : pin:int -> edge:Proxim_measure.Measure.edge -> tau:float -> float;
      (** [tau_out^(1)]: single-input output transition time, s *)
  delay2 :
    dom:int ->
    other:int ->
    edge:Proxim_measure.Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
      (** [Delta^(2)] with respect to the dominant input, s *)
  trans2 :
    dom:int ->
    other:int ->
    edge:Proxim_measure.Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
      (** [tau_out^(2)] with respect to the dominant input, s *)
}

val merge_stats :
  Proxim_util.Memo_cache.stats ->
  Proxim_util.Memo_cache.stats ->
  Proxim_util.Memo_cache.stats
(** Pointwise sum of two counter records — the combinator behind every
    [cache_stats] closure here, exported so model factories (and the CLI)
    can aggregate statistics across many models. *)

val synthetic :
  ?seed:int ->
  ?spread:float ->
  ?work:int ->
  ?memo:bool ->
  Proxim_gates.Gate.t ->
  t
(** Purely analytic models: smooth closed-form single- and dual-input
    responses with the right qualitative shape (positive delays, slew
    dependence, assisting inputs speeding the response up and gating
    inputs slowing it down, influence saturating with separation) but no
    transient simulation behind them.  Micro-second-cheap and fully
    deterministic, which is what the randomized incremental-vs-full
    equivalence suite and the ECO benchmark need — thousands of analyses
    with none of the simulator's cost.  Not calibrated to any technology;
    never use them for accuracy experiments.

    [seed] perturbs the per-pin base delays (so swapping
    [synthetic ~seed:1] for [synthetic ~seed:2] models a
    re-characterized library), [spread] scales that perturbation, and
    [work] adds an artificial per-query evaluation cost (a pure float
    loop) for benchmarks that want model evaluation to dominate.  Queries
    are memoized through a real domain-safe {!Proxim_util.Memo_cache}, so
    [cache_stats] reports live hit/miss counters exactly like the
    simulator-backed models.

    [memo:false] disables that cache (every query recomputes, counters
    stay zero).  The cache is unbounded, and on large generated designs
    the query keys — continuous arrival/slew floats — essentially never
    repeat, so the default would retain one entry per evaluation forever;
    million-cell scaling runs pass [~memo:false] to keep peak RSS
    proportional to the design, not to the evaluation count. *)

val of_oracle :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  t
(** Every query runs a transient analysis (memoized on the exact query).
    This mirrors the paper's use of HSPICE as the dual-input macromodel.
    The memo cache is domain-safe and sharded: concurrent queries from a
    {!Proxim_util.Pool} job never race, and two domains asking for the
    same query run a single transient (the second waits). *)

val of_tables :
  ?opts:Proxim_spice.Options.t ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?share_others:bool ->
  ?pool:Proxim_util.Pool.t ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  t
(** Queries are answered from {!Single} / {!Dual} tables, built lazily on
    first use of each (pin, edge) / (dom, other, edge) combination and
    memoized (domain-safely: a table being built by one domain is awaited
    by, not duplicated on, the others).  Building a dual table is
    expensive (hundreds of transient runs); with [pool] those runs are
    spread across the pool's domains, and the table is bit-identical to
    a serial build.  Once built, queries are microseconds.

    [share_others] (default false) implements the paper's Figure 4-2
    observation that [n] dual-input macromodels suffice in practice: one
    table per (dominant pin, edge), built against a representative other
    pin and reused for every other input — [2n] tables total instead of
    [n^2].  The ablation bench quantifies the accuracy cost. *)

(** {2 Sampled interval bounds}

    Conservative [(lo, hi)] envelopes of the four oracles over boxes of
    arguments, for the interval abstract interpreter ([Proxim_verify]).
    Each axis is an inclusive [(lo, hi)] interval.  Bounds are obtained
    by sampling a small grid over the box (endpoints always included; the
    separation axis additionally samples [sep = 0] when the box straddles
    it, where gating influence peaks) and widening the observed min/max
    by a fraction of the observed spread as a curvature margin.  A
    degenerate box — every axis a single point — is one evaluation with
    zero spread, so the bounds are {e exact}: with ±0 PI windows the
    interval analysis collapses onto the concrete STA.  All evaluations
    go through the model's own memoized closures. *)

val delay1_bounds :
  t ->
  pin:int ->
  edge:Proxim_measure.Measure.edge ->
  tau:float * float ->
  float * float

val trans1_bounds :
  t ->
  pin:int ->
  edge:Proxim_measure.Measure.edge ->
  tau:float * float ->
  float * float

val delay2_bounds :
  t ->
  dom:int ->
  other:int ->
  edge:Proxim_measure.Measure.edge ->
  tau_dom:float * float ->
  tau_other:float * float ->
  sep:float * float ->
  float * float

val trans2_bounds :
  t ->
  dom:int ->
  other:int ->
  edge:Proxim_measure.Measure.edge ->
  tau_dom:float * float ->
  tau_other:float * float ->
  sep:float * float ->
  float * float

val min_separation_bounds :
  t ->
  starter_pin:int ->
  starter_edge:Proxim_measure.Measure.edge ->
  ender_pin:int ->
  tau_starter:float * float ->
  tau_ender:float * float ->
  float * float
(** Conservative bounds on the §6 minimum oriented separation
    [sigma_min]: the glitch started by [starter_pin] (switching with
    [starter_edge]) and recovered by [ender_pin] (the opposite edge)
    completes an output transition exactly when
    [t_ender - t_starter >= sigma_min].  Evaluated as a surrogate from
    the single-input delay/transition bounds
    ([D_starter - D_ender + kappa * T_starter], [kappa = 0.5]) with the
    standard spread widening — the calibration source for the hazard
    analyzer's model-backed rule ([Proxim_hazard]); simulator-backed
    rules bisect {!Proxim_core.Inertial.minimum_valid_separation}
    instead. *)
