(** On-disk persistence for characterized macromodel sets.

    Characterizing a gate costs thousands of transient analyses; a store
    lets a flow characterize once and ship the tables.  The format is a
    plain-text archive: named sections, each holding one {!Single} or
    {!Dual} model, separated by [%%] lines — diff-friendly and stable
    across versions of this library.

    A {!set} is the unit a timing flow consumes: everything known about
    one gate (its thresholds and any characterized single/dual tables),
    convertible to a {!Models.t} for the {!Proxim_core} algorithm. *)

type set = {
  gate_name : string;
  vil : float;
  vih : float;
  vdd : float;
  singles : Single.t list;
  duals : Dual.t list;
}

val characterize :
  ?opts:Proxim_spice.Options.t ->
  ?taus:float array ->
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?edges:Proxim_measure.Measure.edge list ->
  ?with_duals:bool ->
  ?pool:Proxim_util.Pool.t ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  set
(** Build a complete set for the gate: one single-input model per
    (pin, edge) and — when [with_duals] (default true) — one dual-input
    model per (dominant pin, other pin, edge).  [edges] defaults to both
    directions.  This is the expensive call (minutes for a 3-input gate
    with duals; seconds without).  With [pool] the independent tables are
    characterized across the pool's domains; the resulting set is
    bit-identical to a serial run. *)

val to_models : Proxim_gates.Gate.t -> set -> Models.t
(** Wrap the set as the model interface the core algorithm consumes; the
    gate supplies the series/parallel topology for dominance decisions.
    Raises [Not_found] at query time for a (pin, edge) or pair that was
    not characterized. *)

val save : set -> string
val load : string -> set
(** Archive (de)serialization; [load (save s)] round-trips exactly.
    [load] raises [Failure] on malformed input. *)

val save_file : string -> set -> unit
val load_file : string -> set
(** File-level convenience wrappers ([Sys_error] on IO problems). *)
