module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Interp = Proxim_util.Interp
module Floatx = Proxim_util.Floatx

let oracle ?opts ?load gate th ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
  (* place the dominant crossing late enough that both ramps start at
     positive times, whatever the separation sign *)
  let margin = 0.2e-9 in
  let t_dom =
    margin +. tau_dom +. Float.max 0. (tau_other -. sep)
  in
  let stimuli =
    [
      (dom, { Measure.edge; tau = tau_dom; cross_time = t_dom });
      (other, { Measure.edge; tau = tau_other; cross_time = t_dom +. sep });
    ]
  in
  Measure.multi_input ?opts ?load gate th ~stimuli ~ref_pin:dom

type t = {
  dom : int;
  other : int;
  edge : Measure.edge;
  assist : bool;
      (** do the two switching transistors assist each other in the
          driving network (parallel) or gate each other (series)? *)
  delay_grid : Interp.grid3;  (** axes: ln x1, ln x2, x3 (delay-normalized) *)
  trans_grid : Interp.grid3;  (** axes: ln x1, ln x2, x3 (transition-normalized) *)
}

let dom t = t.dom
let other t = t.other
let edge t = t.edge
let assist t = t.assist
let delay_grid t = t.delay_grid
let trans_grid t = t.trans_grid

let find tables ~dom:d ~other:o ~edge:e =
  List.find (fun t -> t.dom = d && t.other = o && t.edge = e) tables

let default_x_tau = Floatx.logspace 0.25 16. 8

(* Non-uniform separation axis: the ratio surface is steep around
   simultaneity and near the window edge (x3 -> 1), and must reach far
   enough on the negative side to saturate even when the other input is
   much slower than the dominant one (overlap persists down to roughly
   -(tau_other + Delta_other), i.e. -x2-ish in normalized units). *)
let default_x_sep =
  [| -8.; -5.5; -3.5; -2.25; -1.5; -1.0; -0.6; -0.3; 0.; 0.3; 0.6; 0.85;
     1.05; 1.25 |]

(* The dual model is only meaningful while [dom] really is the dominant
   input: for assisting (parallel) transitions
   [sep >= Delta1_dom - Delta1_other], for gating (series) ones the
   reverse.  Beyond that boundary the other input has already driven the
   output and the measured "delay from dom" cliff-dives (it can go
   negative); clamping both tabulation and queries to the boundary keeps
   the stored surface smooth exactly where the ProximityDelay algorithm
   (which re-picks dominance first) queries it. *)
let clamp_to_dominance ~assist ~single_other ~tau_other sep =
  let d_other = Single.delay single_other ~tau:tau_other in
  fun d1 ->
    let boundary = d1 -. d_other in
    if assist then Float.max sep boundary else Float.min sep boundary

let build ?(x_tau = default_x_tau) ?(x_sep = default_x_sep) ?opts ?pool gate th
    ~single_dom ~single_other ~other =
  Proxim_obs.Trace.Span.with_ ~cat:"characterize" ~name:"dual.build"
    ~args:
      [
        ("gate", gate.Gate.name);
        ("dom", string_of_int (Single.pin single_dom));
        ("other", string_of_int other);
      ]
  @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Proxim_util.Pool.default ()
  in
  let dom = Single.pin single_dom in
  let edge = Single.edge single_dom in
  if dom = other then invalid_arg "Dual.build: dom = other";
  if Single.pin single_other <> other || Single.edge single_other <> edge then
    invalid_arg "Dual.build: single_other must model the other pin, same edge";
  let assist =
    Gate.switching_assist gate ~pins:[ dom; other ]
      ~output_rising:(edge = Measure.Fall)
  in
  let ln_tau = Array.map log x_tau in
  (* Delay-normalized grid: x1 = tau_dom/Delta1 requires inverting the
     single-input model (Delta1 depends on tau_dom). *)
  let delay_f lx1 lx2 x3 =
    let x1 = exp lx1 and x2 = exp lx2 in
    (* solve tau_dom such that tau_dom / Delta1(tau_dom) = x1; i.e.
       Delta1(tau) = tau / x1, a fixed point found by iteration *)
    let rec fixpoint tau n =
      let d1 = Single.delay single_dom ~tau in
      let tau' = x1 *. d1 in
      if n = 0 || Float.abs (tau' -. tau) < 1e-16 then Floatx.clamp ~lo:1e-13 ~hi:1e-7 tau'
      else fixpoint (Floatx.clamp ~lo:1e-13 ~hi:1e-7 tau') (n - 1)
    in
    let tau_dom = fixpoint 200e-12 30 in
    let d1 = Single.delay single_dom ~tau:tau_dom in
    let tau_other = x2 *. d1 in
    let sep =
      clamp_to_dominance ~assist ~single_other ~tau_other (x3 *. d1) d1
    in
    let obs = oracle ?opts gate th ~dom ~other ~edge ~tau_dom ~tau_other ~sep in
    obs.Measure.delay /. d1
  in
  let trans_f lx1 lx2 x3 =
    let x1 = exp lx1 and x2 = exp lx2 in
    let rec fixpoint tau n =
      let t1 = Single.out_transition single_dom ~tau in
      let tau' = x1 *. t1 in
      if n = 0 || Float.abs (tau' -. tau) < 1e-16 then Floatx.clamp ~lo:1e-13 ~hi:1e-7 tau'
      else fixpoint (Floatx.clamp ~lo:1e-13 ~hi:1e-7 tau') (n - 1)
    in
    let tau_dom = fixpoint 200e-12 30 in
    let t1 = Single.out_transition single_dom ~tau:tau_dom in
    let d1 = Single.delay single_dom ~tau:tau_dom in
    let tau_other = x2 *. t1 in
    let sep =
      clamp_to_dominance ~assist ~single_other ~tau_other (x3 *. t1) d1
    in
    let obs = oracle ?opts gate th ~dom ~other ~edge ~tau_dom ~tau_other ~sep in
    obs.Measure.out_transition /. t1
  in
  (* both grids share one batched pool job, so every domain stays fed
     across the full 2 * |ln_tau|^2 * |x_sep| transient sweep *)
  let grids =
    Interp.grid3_make_many ~pool ~xs:ln_tau ~ys:ln_tau ~zs:x_sep
      ~fs:[| delay_f; trans_f |] ()
  in
  { dom; other; edge; assist; delay_grid = grids.(0); trans_grid = grids.(1) }

(* --- serialization ------------------------------------------------- *)

let edge_name = function Measure.Rise -> "rise" | Measure.Fall -> "fall"

let edge_of_name = function
  | "rise" -> Measure.Rise
  | "fall" -> Measure.Fall
  | s -> failwith ("Dual.load: bad edge " ^ s)

let save_axis buf name axis =
  Buffer.add_string buf (Printf.sprintf "%s %d" name (Array.length axis));
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %.17g" v)) axis;
  Buffer.add_char buf '\n'

let save_grid buf name (g : Interp.grid3) =
  Buffer.add_string buf (Printf.sprintf "grid %s\n" name);
  save_axis buf "xs" g.Interp.xs;
  save_axis buf "ys" g.Interp.ys;
  save_axis buf "zs" g.Interp.zs;
  Array.iter
    (fun plane ->
      Array.iter
        (fun row ->
          Array.iteri
            (fun k v ->
              if k > 0 then Buffer.add_char buf ' ';
              Buffer.add_string buf (Printf.sprintf "%.17g" v))
            row;
          Buffer.add_char buf '\n')
        plane)
    g.Interp.values

let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "dual-v1\n";
  Buffer.add_string buf (Printf.sprintf "dom %d\n" t.dom);
  Buffer.add_string buf (Printf.sprintf "other %d\n" t.other);
  Buffer.add_string buf (Printf.sprintf "edge %s\n" (edge_name t.edge));
  Buffer.add_string buf
    (Printf.sprintf "assist %b\n" t.assist);
  save_grid buf "delay" t.delay_grid;
  save_grid buf "trans" t.trans_grid;
  Buffer.contents buf

let load text =
  let fail fmt = Printf.ksprintf failwith ("Dual.load: " ^^ fmt) in
  let lines = ref (String.split_on_char '\n' text
                   |> List.filter (fun l -> String.trim l <> "")) in
  let next () =
    match !lines with
    | [] -> fail "unexpected end of input"
    | l :: tl ->
      lines := tl;
      l
  in
  let field name conv =
    let line = next () in
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = name ->
      conv (String.sub line (i + 1) (String.length line - i - 1))
    | Some _ | None -> fail "expected field %s, got %S" name line
  in
  let axis name =
    let parts = String.split_on_char ' ' (field name Fun.id) in
    match parts with
    | count :: values ->
      let n = int_of_string count in
      let arr = Array.of_list (List.map float_of_string values) in
      if Array.length arr <> n then fail "axis %s length mismatch" name;
      arr
    | [] -> fail "empty axis %s" name
  in
  let grid name =
    let header = next () in
    if header <> "grid " ^ name then fail "expected grid %s, got %S" name header;
    let xs = axis "xs" in
    let ys = axis "ys" in
    let zs = axis "zs" in
    let values =
      Array.init (Array.length xs) (fun _ ->
        Array.init (Array.length ys) (fun _ ->
          let row = next () in
          let vals =
            String.split_on_char ' ' row |> List.map float_of_string
          in
          let arr = Array.of_list vals in
          if Array.length arr <> Array.length zs then
            fail "grid %s row length mismatch" name;
          arr))
    in
    { Interp.xs; ys; zs; values }
  in
  let header = next () in
  if header <> "dual-v1" then fail "bad header %S" header;
  let dom = field "dom" int_of_string in
  let other = field "other" int_of_string in
  let edge = field "edge" edge_of_name in
  let assist = field "assist" bool_of_string in
  let delay_grid = grid "delay" in
  let trans_grid = grid "trans" in
  { dom; other; edge; assist; delay_grid; trans_grid }

let delay_ratio t ~x1 ~x2 ~x3 =
  Interp.bilinear_pchip_z t.delay_grid (log x1) (log x2) x3

let trans_ratio t ~x1 ~x2 ~x3 =
  Interp.bilinear_pchip_z t.trans_grid (log x1) (log x2) x3

(* Proximity windows (§3): for assisting transitions the other input
   stops influencing the delay beyond [sep >= Delta1] and the transition
   beyond [sep >= Delta1 + tau_out1]; for gating ones the influence dies
   out on the early side, below the tabulated separation range (where the
   other transistor has long finished conducting). *)
let delay t ~single_dom ~single_other ~tau_dom ~tau_other ~sep =
  let d1 = Single.delay single_dom ~tau:tau_dom in
  let sep = clamp_to_dominance ~assist:t.assist ~single_other ~tau_other sep d1 in
  let outside =
    if t.assist then sep >= d1
    else sep <= (t.delay_grid.Interp.zs.(0) *. d1) -. tau_other
  in
  if outside then d1
  else begin
    let ratio =
      delay_ratio t ~x1:(tau_dom /. d1) ~x2:(tau_other /. d1) ~x3:(sep /. d1)
    in
    d1 *. ratio
  end

let out_transition t ~single_dom ~single_other ~tau_dom ~tau_other ~sep =
  let t1 = Single.out_transition single_dom ~tau:tau_dom in
  let d1 = Single.delay single_dom ~tau:tau_dom in
  let sep = clamp_to_dominance ~assist:t.assist ~single_other ~tau_other sep d1 in
  let outside =
    if t.assist then sep >= d1 +. t1
    else sep <= (t.trans_grid.Interp.zs.(0) *. t1) -. tau_other
  in
  if outside then t1
  else begin
    let ratio =
      trans_ratio t ~x1:(tau_dom /. t1) ~x2:(tau_other /. t1) ~x3:(sep /. t1)
    in
    t1 *. ratio
  end
