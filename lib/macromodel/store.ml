module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure

type set = {
  gate_name : string;
  vil : float;
  vih : float;
  vdd : float;
  singles : Single.t list;
  duals : Dual.t list;
}

let characterize ?opts ?taus ?x_tau ?x_sep
    ?(edges = [ Measure.Rise; Measure.Fall ]) ?(with_duals = true) ?pool gate
    th =
  Proxim_obs.Trace.Span.with_ ~cat:"characterize" ~name:"store.characterize"
    ~args:[ ("gate", gate.Gate.name) ]
  @@ fun () ->
  let fan_in = gate.Gate.fan_in in
  let pins = List.init fan_in Fun.id in
  let pool =
    match pool with Some p -> p | None -> Proxim_util.Pool.default ()
  in
  (* every (table, tau) transient of the single sweep is one batched
     pool job, so the domains stay fed across the whole set instead of
     draining between per-table builds *)
  let singles =
    Array.to_list
      (Single.build_many ?taus ?opts ~pool gate th
         (Array.of_list
            (List.concat_map
               (fun edge -> List.map (fun pin -> (pin, edge)) pins)
               edges)))
  in
  let find_single pin edge =
    List.find (fun s -> Single.pin s = pin && Single.edge s = edge) singles
  in
  let duals =
    if not with_duals then []
    else
      (* dual tables run one after another, each fanning its own
         2-grid batched job across the pool: the per-table row count
         (2 * |x_tau|^2 * |x_sep|) is already much wider than any pool,
         and keeping the table the unit of work preserves the build
         order of the archive *)
      List.map
        (fun (dom, other, edge) ->
          Dual.build ?x_tau ?x_sep ?opts ~pool gate th
            ~single_dom:(find_single dom edge)
            ~single_other:(find_single other edge) ~other)
        (List.concat_map
           (fun edge ->
             List.concat_map
               (fun dom ->
                 List.filter_map
                   (fun other ->
                     if other = dom then None else Some (dom, other, edge))
                   pins)
               pins)
           edges)
  in
  {
    gate_name = gate.Gate.name;
    vil = th.Vtc.vil;
    vih = th.Vtc.vih;
    vdd = th.Vtc.vdd;
    singles;
    duals;
  }

let to_models gate set =
  let find_single ~pin ~edge =
    List.find
      (fun s -> Single.pin s = pin && Single.edge s = edge)
      set.singles
  in
  let fan_in =
    1 + List.fold_left (fun acc s -> max acc (Single.pin s)) 0 set.singles
  in
  {
    Models.fan_in;
    name = "store:" ^ set.gate_name;
    (* the archive records normalized-argument knots, not the tau sweep
       that produced them, so the characterized tau span is unknown *)
    tau_range = None;
    cache_stats =
      (fun () ->
        {
          Proxim_util.Memo_cache.hits = 0;
          misses = 0;
          waits = 0;
          evictions = 0;
          entries = 0;
          local_hits = 0;
        });
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 =
      (fun ~pin ~edge ~tau -> Single.delay (find_single ~pin ~edge) ~tau);
    trans1 =
      (fun ~pin ~edge ~tau ->
        Single.out_transition (find_single ~pin ~edge) ~tau);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        let d = Dual.find set.duals ~dom ~other ~edge in
        Dual.delay d
          ~single_dom:(find_single ~pin:dom ~edge)
          ~single_other:(find_single ~pin:other ~edge)
          ~tau_dom ~tau_other ~sep);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        let d = Dual.find set.duals ~dom ~other ~edge in
        Dual.out_transition d
          ~single_dom:(find_single ~pin:dom ~edge)
          ~single_other:(find_single ~pin:other ~edge)
          ~tau_dom ~tau_other ~sep);
  }

(* --- archive format ------------------------------------------------- *)

let separator = "%%"

let save set =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf "proxim-store-v1 %s\n" set.gate_name);
  Buffer.add_string buf
    (Printf.sprintf "thresholds %.17g %.17g %.17g\n" set.vil set.vih set.vdd);
  List.iter
    (fun s ->
      Buffer.add_string buf (separator ^ "\n");
      Buffer.add_string buf (Single.save s))
    set.singles;
  List.iter
    (fun d ->
      Buffer.add_string buf (separator ^ "\n");
      Buffer.add_string buf (Dual.save d))
    set.duals;
  Buffer.contents buf

let load text =
  let fail fmt = Printf.ksprintf failwith ("Store.load: " ^^ fmt) in
  let sections =
    (* split on separator lines *)
    let lines = String.split_on_char '\n' text in
    let rec go current acc = function
      | [] -> List.rev (List.rev current :: acc)
      | line :: tl ->
        if String.trim line = separator then
          go [] (List.rev current :: acc) tl
        else go (line :: current) acc tl
    in
    go [] [] lines
    |> List.map (String.concat "\n")
    |> List.filter (fun s -> String.trim s <> "")
  in
  match sections with
  | [] -> fail "empty archive"
  | header :: models ->
    let header_lines =
      String.split_on_char '\n' header
      |> List.filter (fun l -> String.trim l <> "")
    in
    let gate_name, vil, vih, vdd =
      match header_lines with
      | first :: second :: _ ->
        let gate_name =
          match String.split_on_char ' ' first with
          | [ "proxim-store-v1"; name ] -> name
          | _ -> fail "bad archive header %S" first
        in
        let vil, vih, vdd =
          try
            Scanf.sscanf second "thresholds %g %g %g" (fun a b c -> (a, b, c))
          with Scanf.Scan_failure _ | Failure _ ->
            fail "bad thresholds line %S" second
        in
        (gate_name, vil, vih, vdd)
      | _ -> fail "truncated archive header"
    in
    let singles, duals =
      List.fold_left
        (fun (ss, ds) section ->
          let trimmed = String.trim section in
          if String.length trimmed >= 9 && String.sub trimmed 0 9 = "single-v1"
          then (Single.load trimmed :: ss, ds)
          else if String.length trimmed >= 7 && String.sub trimmed 0 7 = "dual-v1"
          then (ss, Dual.load trimmed :: ds)
          else fail "unrecognized section starting %S"
                 (String.sub trimmed 0 (min 20 (String.length trimmed))))
        ([], []) models
    in
    {
      gate_name;
      vil;
      vih;
      vdd;
      singles = List.rev singles;
      duals = List.rev duals;
    }

let save_file path set =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save set))

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      load (really_input_string ic n))
