module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Interp = Proxim_util.Interp
module Floatx = Proxim_util.Floatx
module Rootfind = Proxim_util.Rootfind

type t = {
  pin : int;
  edge : Measure.edge;
  k : float;  (** transistor strength entering the dimensionless argument *)
  vdd : float;
  c_build : float;  (** external load the table was built at *)
  c_parasitic : float;  (** output-node diffusion parasitic of the gate *)
  delay_tbl : Interp.pchip;  (** Delta/tau against ln(argument) *)
  trans_tbl : Interp.pchip;  (** tau_out/tau against ln(argument) *)
}

let pin t = t.pin
let edge t = t.edge

let samples t =
  let xs, d = Interp.pchip_knots t.delay_tbl in
  let _, tr = Interp.pchip_knots t.trans_tbl in
  (xs, d, tr)

let strength gate ~edge =
  match edge with
  | Measure.Rise -> Tech.k_n gate.Gate.tech ~w:gate.Gate.wn
  | Measure.Fall -> Tech.k_p gate.Gate.tech ~w:gate.Gate.wp

let default_taus = Floatx.logspace 20e-12 5e-9 16

(* All (table, tau) transients of a batch go through one pool job, so
   the domains stay fed across the whole sweep instead of draining
   between per-table jobs.  Per-table assembly (sort + pchip fit) is
   unchanged, so the batch is bit-identical to one [build] per spec. *)
let build_batch ~taus ?opts ~pool gate th specs =
  let vdd = gate.Gate.tech.Tech.vdd in
  let c_build = gate.Gate.load in
  let c_parasitic = Gate.output_parasitic gate in
  let ks = Array.map (fun (_, edge) -> strength gate ~edge) specs in
  let nt = Array.length taus in
  let sample idx =
    let s = idx / nt in
    let pin, edge = specs.(s) in
    let tau = taus.(idx mod nt) in
    let obs = Measure.single_input ?opts gate th ~pin ~edge ~tau in
    let u = (c_build +. c_parasitic) /. (ks.(s) *. vdd *. tau) in
    (log u, obs.Measure.delay /. tau, obs.Measure.out_transition /. tau)
  in
  let flat =
    Proxim_util.Pool.map pool sample
      (Array.init (Array.length specs * nt) Fun.id)
  in
  Array.mapi
    (fun s (pin, edge) ->
      let samples = Array.sub flat (s * nt) nt in
      (* sort by the dimensionless argument (tau descending -> u
         ascending) *)
      Array.sort (fun (a, _, _) (b, _, _) -> compare a b) samples;
      let xs = Array.map (fun (x, _, _) -> x) samples in
      let d = Array.map (fun (_, d, _) -> d) samples in
      let tr = Array.map (fun (_, _, t) -> t) samples in
      {
        pin;
        edge;
        k = ks.(s);
        vdd;
        c_build;
        c_parasitic;
        delay_tbl = Interp.pchip_make xs d;
        trans_tbl = Interp.pchip_make xs tr;
      })
    specs

let build_many ?(taus = default_taus) ?opts ?pool gate th specs =
  Proxim_obs.Trace.Span.with_ ~cat:"characterize" ~name:"single.build_many"
    ~args:
      [
        ("gate", gate.Gate.name);
        ("tables", string_of_int (Array.length specs));
      ]
  @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Proxim_util.Pool.default ()
  in
  build_batch ~taus ?opts ~pool gate th specs

let build ?(taus = default_taus) ?opts ?pool gate th ~pin ~edge =
  Proxim_obs.Trace.Span.with_ ~cat:"characterize" ~name:"single.build"
    ~args:
      [
        ("gate", gate.Gate.name);
        ("pin", string_of_int pin);
        ("edge", match edge with Measure.Rise -> "rise" | Fall -> "fall");
      ]
  @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Proxim_util.Pool.default ()
  in
  (build_batch ~taus ?opts ~pool gate th [| (pin, edge) |]).(0)

let argument ?c_load t ~tau =
  let c = Option.value ~default:t.c_build c_load in
  (c +. t.c_parasitic) /. (t.k *. t.vdd *. tau)

let delay ?c_load t ~tau =
  tau *. Interp.pchip_eval t.delay_tbl (log (argument ?c_load t ~tau))

let out_transition ?c_load t ~tau =
  tau *. Interp.pchip_eval t.trans_tbl (log (argument ?c_load t ~tau))

(* --- serialization ------------------------------------------------- *)

let edge_name = function Measure.Rise -> "rise" | Measure.Fall -> "fall"

let edge_of_name = function
  | "rise" -> Measure.Rise
  | "fall" -> Measure.Fall
  | s -> failwith ("Single.load: bad edge " ^ s)

let save t =
  let buf = Buffer.create 1024 in
  let xs, d = Interp.pchip_knots t.delay_tbl in
  let _, tr = Interp.pchip_knots t.trans_tbl in
  Buffer.add_string buf "single-v1\n";
  Buffer.add_string buf (Printf.sprintf "pin %d\n" t.pin);
  Buffer.add_string buf (Printf.sprintf "edge %s\n" (edge_name t.edge));
  Buffer.add_string buf (Printf.sprintf "k %.17g\n" t.k);
  Buffer.add_string buf (Printf.sprintf "vdd %.17g\n" t.vdd);
  Buffer.add_string buf (Printf.sprintf "c_build %.17g\n" t.c_build);
  Buffer.add_string buf (Printf.sprintf "c_parasitic %.17g\n" t.c_parasitic);
  Buffer.add_string buf (Printf.sprintf "points %d\n" (Array.length xs));
  Array.iteri
    (fun i x ->
      Buffer.add_string buf (Printf.sprintf "%.17g %.17g %.17g\n" x d.(i) tr.(i)))
    xs;
  Buffer.contents buf

let load text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let fail fmt = Printf.ksprintf failwith ("Single.load: " ^^ fmt) in
  let field name conv = function
    | line :: rest -> (
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name ->
        (conv (String.sub line (i + 1) (String.length line - i - 1)), rest)
      | Some _ | None -> fail "expected field %s, got %S" name line)
    | [] -> fail "missing field %s" name
  in
  match lines with
  | "single-v1" :: rest ->
    let pin, rest = field "pin" int_of_string rest in
    let edge, rest = field "edge" edge_of_name rest in
    let k, rest = field "k" float_of_string rest in
    let vdd, rest = field "vdd" float_of_string rest in
    let c_build, rest = field "c_build" float_of_string rest in
    let c_parasitic, rest = field "c_parasitic" float_of_string rest in
    let n, rest = field "points" int_of_string rest in
    if List.length rest < n then fail "expected %d sample lines" n;
    let xs = Array.make n 0. and d = Array.make n 0. and tr = Array.make n 0. in
    List.iteri
      (fun i line ->
        if i < n then
          Scanf.sscanf line " %g %g %g" (fun a b c ->
            xs.(i) <- a;
            d.(i) <- b;
            tr.(i) <- c))
      rest;
    {
      pin;
      edge;
      k;
      vdd;
      c_build;
      c_parasitic;
      delay_tbl = Interp.pchip_make xs d;
      trans_tbl = Interp.pchip_make xs tr;
    }
  | header :: _ -> fail "bad header %S" header
  | [] -> fail "empty input"

let tau_of_delay ?c_load t ~delay:d =
  assert (d > 0.);
  let f tau = delay ?c_load t ~tau -. d in
  let lo = 1e-15 and hi = 1e-6 in
  if f lo >= 0. then lo
  else if f hi <= 0. then hi
  else Rootfind.brent ~f lo hi
