module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure
module Memo_cache = Proxim_util.Memo_cache

type t = {
  fan_in : int;
  name : string;
  tau_range : (float * float) option;
  cache_stats : unit -> Memo_cache.stats;
  assist : edge:Measure.edge -> pins:int list -> bool;
  delay1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  trans1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  delay2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
  trans2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
}

let merge_stats (a : Memo_cache.stats) (b : Memo_cache.stats) =
  {
    Memo_cache.hits = a.Memo_cache.hits + b.Memo_cache.hits;
    misses = a.Memo_cache.misses + b.Memo_cache.misses;
    waits = a.Memo_cache.waits + b.Memo_cache.waits;
    evictions = a.Memo_cache.evictions + b.Memo_cache.evictions;
    entries = a.Memo_cache.entries + b.Memo_cache.entries;
    local_hits = a.Memo_cache.local_hits + b.Memo_cache.local_hits;
  }

let synthetic ?(seed = 0) ?(spread = 0.1) ?(work = 0) ?(memo = true) gate =
  let cache = Memo_cache.create ~shards:4 ~local:true () in
  let jitter key =
    (* deterministic per-(gate, seed, key) value in [0, 1) *)
    let h = Hashtbl.hash (gate.Gate.name, seed, key) in
    float_of_int (h land 0xffff) /. 65536.
  in
  let spin x =
    (* optional artificial evaluation cost: a pure float loop folded into
       the result at zero weight so it cannot be dead-code eliminated *)
    if work = 0 then x
    else begin
      let acc = ref 1e-3 in
      for i = 1 to work do
        acc := !acc +. (1. /. float_of_int (i + (i mod 7)))
      done;
      x +. (0. *. !acc)
    end
  in
  let q key compute =
    (* the cache is unbounded and synthetic query keys carry continuous
       floats that rarely repeat across a large design, so million-cell
       runs opt out rather than hold every response forever *)
    if memo then Memo_cache.find_or_compute cache key compute else compute ()
  in
  let assist_of ~edge ~pins =
    Gate.switching_assist gate ~pins ~output_rising:(edge = Measure.Fall)
  in
  let base ~pin ~edge =
    let e = match edge with Measure.Rise -> 0 | Measure.Fall -> 1 in
    80e-12
    *. (1. +. (0.09 *. float_of_int pin))
    *. (1. +. (0.12 *. float_of_int e))
    *. (1. +. (spread *. (jitter (pin, e) -. 0.5)))
  in
  let d1 ~pin ~edge ~tau = base ~pin ~edge +. (0.30 *. tau) in
  let t1 ~pin ~edge ~tau = (1.25 *. base ~pin ~edge) +. (0.55 *. tau) in
  let window = 120e-12 in
  let strength other tau_other =
    0.35
    *. (1. +. (0.05 *. float_of_int other))
    *. (1. +. (0.1 *. (tau_other /. (tau_other +. window))))
  in
  (* proximity influence of the other input at equivalent separation
     [sep]: for assisting (parallel) inputs it saturates to 1 as the
     other input moves earlier and to 0 as it moves far later; for gating
     (series) inputs it peaks at simultaneity and decays either way *)
  let influence ~assist ~sep =
    if assist then 0.5 *. (1. -. tanh (sep /. window))
    else 1. /. (1. +. ((sep /. window) ** 2.))
  in
  {
    fan_in = gate.Gate.fan_in;
    name = Printf.sprintf "synthetic:%s#%d" gate.Gate.name seed;
    tau_range = None;
    cache_stats = (fun () -> Memo_cache.stats cache);
    assist = (fun ~edge ~pins -> assist_of ~edge ~pins);
    delay1 =
      (fun ~pin ~edge ~tau ->
        q (`D1 (pin, edge, tau)) (fun () -> spin (d1 ~pin ~edge ~tau)));
    trans1 =
      (fun ~pin ~edge ~tau ->
        q (`T1 (pin, edge, tau)) (fun () -> spin (t1 ~pin ~edge ~tau)));
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        q
          (`D2 (dom, other, edge, tau_dom, tau_other, sep))
          (fun () ->
            let assist = assist_of ~edge ~pins:[ dom; other ] in
            let infl = influence ~assist ~sep in
            let k = strength other tau_other in
            let d = d1 ~pin:dom ~edge ~tau:tau_dom in
            spin
              (if assist then d *. (1. -. (k *. infl))
               else d *. (1. +. (k *. infl)))));
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        q
          (`T2 (dom, other, edge, tau_dom, tau_other, sep))
          (fun () ->
            let assist = assist_of ~edge ~pins:[ dom; other ] in
            let infl = influence ~assist ~sep in
            let k = 0.6 *. strength other tau_other in
            let t = t1 ~pin:dom ~edge ~tau:tau_dom in
            spin
              (if assist then t *. (1. -. (k *. infl))
               else t *. (1. +. (k *. infl)))));
  }

let of_oracle ?opts ?load gate th =
  let single_cache = Memo_cache.create ~local:true () in
  let dual_cache = Memo_cache.create ~local:true () in
  let single ~pin ~edge ~tau =
    Memo_cache.find_or_compute single_cache (pin, edge, tau) (fun () ->
      Measure.single_input ?opts ?load gate th ~pin ~edge ~tau)
  in
  let dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
    Memo_cache.find_or_compute dual_cache
      (dom, other, edge, tau_dom, tau_other, sep)
      (fun () ->
        Dual.oracle ?opts ?load gate th ~dom ~other ~edge ~tau_dom ~tau_other
          ~sep)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "oracle:" ^ gate.Gate.name;
    tau_range = None;
    cache_stats =
      (fun () ->
        merge_stats
          (Memo_cache.stats single_cache)
          (Memo_cache.stats dual_cache));
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 = (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.delay);
    trans1 =
      (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.out_transition);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep).Measure.delay);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep)
          .Measure.out_transition);
  }

let of_tables ?opts ?taus ?x_tau ?x_sep ?(share_others = false) ?pool gate th =
  let singles = Memo_cache.create ~shards:4 ~local:true () in
  let duals = Memo_cache.create ~shards:4 ~local:true () in
  let single ~pin ~edge =
    Memo_cache.find_or_compute singles (pin, edge) (fun () ->
      Single.build ?taus ?opts ?pool gate th ~pin ~edge)
  in
  let dual ~dom ~other ~edge =
    (* with sharing, one representative other pin per dominant pin *)
    let other = if share_others then (if dom = 0 then 1 else 0) else other in
    Memo_cache.find_or_compute duals (dom, other, edge) (fun () ->
      let single_dom = single ~pin:dom ~edge in
      let single_other = single ~pin:other ~edge in
      Dual.build ?x_tau ?x_sep ?opts ?pool gate th ~single_dom ~single_other
        ~other)
  in
  let tau_axis = Option.value taus ~default:Single.default_taus in
  let tau_range =
    if Array.length tau_axis = 0 then None
    else
      Some
        (Array.fold_left min tau_axis.(0) tau_axis,
         Array.fold_left max tau_axis.(0) tau_axis)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "tables:" ^ gate.Gate.name;
    tau_range;
    cache_stats =
      (fun () ->
        merge_stats (Memo_cache.stats singles) (Memo_cache.stats duals));
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 =
      (fun ~pin ~edge ~tau -> Single.delay (single ~pin ~edge) ~tau);
    trans1 =
      (fun ~pin ~edge ~tau -> Single.out_transition (single ~pin ~edge) ~tau);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.delay (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.out_transition (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
  }

(* --- sampled interval bounds ------------------------------------------- *)

(* The abstract interpreter ([Proxim_verify]) needs conservative lower and
   upper bounds of each oracle over a box of arguments.  The oracles are
   opaque closures, so we bound by sampling: evaluate on a small grid over
   the box, take the observed min/max, and widen both ends by a fraction
   of the observed spread as a safety margin against curvature between
   sample points.  A degenerate box (every axis a single point) is a
   single evaluation with zero spread, so the bounds are exact — with ±0
   PI windows the interval analysis reproduces the concrete STA. *)

let widen_frac = 0.25

(* grid points over [lo, hi]: the endpoints always, [n] points total when
   the axis has width, plus any [extra] interior landmarks (e.g. sep = 0,
   where the gating influence peaks) *)
let axis ?(extra = []) n (lo, hi) =
  if not (hi > lo) then [ lo ]
  else
    let pts =
      List.init n (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))
    in
    pts @ List.filter (fun x -> lo < x && x < hi) extra

let widen (lo, hi) =
  let m = widen_frac *. (hi -. lo) in
  (lo -. m, hi +. m)

let bounds_over pts f =
  match pts with
  | [] -> invalid_arg "Models.bounds_over: empty sample set"
  | p0 :: rest ->
    let v0 = f p0 in
    widen
      (List.fold_left
         (fun (lo, hi) p ->
           let v = f p in
           (min lo v, max hi v))
         (v0, v0) rest)

let bounds1 oracle ~pin ~edge ~tau =
  bounds_over (axis 5 tau) (fun tau -> oracle ~pin ~edge ~tau)

let delay1_bounds t ~pin ~edge ~tau = bounds1 t.delay1 ~pin ~edge ~tau
let trans1_bounds t ~pin ~edge ~tau = bounds1 t.trans1 ~pin ~edge ~tau

let bounds2 oracle ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
  let taus_d = axis 3 tau_dom in
  let taus_o = axis 3 tau_other in
  let seps = axis ~extra:[ 0. ] 7 sep in
  let pts =
    List.concat_map
      (fun td ->
        List.concat_map
          (fun to_ -> List.map (fun s -> (td, to_, s)) seps)
          taus_o)
      taus_d
  in
  bounds_over pts (fun (tau_dom, tau_other, sep) ->
    oracle ~dom ~other ~edge ~tau_dom ~tau_other ~sep)

let delay2_bounds t ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
  bounds2 t.delay2 ~dom ~other ~edge ~tau_dom ~tau_other ~sep

let trans2_bounds t ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
  bounds2 t.trans2 ~dom ~other ~edge ~tau_dom ~tau_other ~sep

(* --- §6 minimum-separation surrogate ----------------------------------- *)

(* The opposing-edge glitch of paper §6, phrased through the single-input
   oracles.  The starter input's transition begins the output excursion
   after its single-input delay; the ender's transition recovers it after
   its own.  The excursion reaches the measurement threshold only when the
   window between the two responses covers a fraction of the starter's
   output transition time:

     (t_ender + D_ender) - (t_starter + D_starter) >= kappa * T_starter

   so the oriented separation sigma = t_ender - t_starter must reach

     sigma_min = D_starter - D_ender + kappa * T_starter.

   kappa is the threshold fraction of the full output swing the glitch
   must cross; with the measurement thresholds near 25%/75% of Vdd about
   half the starter's transition is needed, so kappa = 0.5.  This is a
   calibrated surrogate, not a simulation: its role is to give synthetic
   models a §6 rule with the right shape and monotonicity.  The interval
   evaluation composes the sampled single-input bounds and applies the
   same spread widening as every other bound here. *)

let kappa_min_sep = 0.5

let min_separation_bounds t ~starter_pin ~starter_edge ~ender_pin
    ~tau_starter ~tau_ender =
  let ender_edge = Proxim_measure.Measure.opposite starter_edge in
  let ds_lo, ds_hi =
    delay1_bounds t ~pin:starter_pin ~edge:starter_edge ~tau:tau_starter
  in
  let de_lo, de_hi =
    delay1_bounds t ~pin:ender_pin ~edge:ender_edge ~tau:tau_ender
  in
  let ts_lo, ts_hi =
    trans1_bounds t ~pin:starter_pin ~edge:starter_edge ~tau:tau_starter
  in
  widen
    ( ds_lo -. de_hi +. (kappa_min_sep *. ts_lo),
      ds_hi -. de_lo +. (kappa_min_sep *. ts_hi) )
