module Gate = Proxim_gates.Gate
module Measure = Proxim_measure.Measure
module Memo_cache = Proxim_util.Memo_cache

type t = {
  fan_in : int;
  name : string;
  cache_stats : unit -> Memo_cache.stats;
  assist : edge:Measure.edge -> pins:int list -> bool;
  delay1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  trans1 : pin:int -> edge:Measure.edge -> tau:float -> float;
  delay2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
  trans2 :
    dom:int ->
    other:int ->
    edge:Measure.edge ->
    tau_dom:float ->
    tau_other:float ->
    sep:float ->
    float;
}

let merge_stats (a : Memo_cache.stats) (b : Memo_cache.stats) =
  {
    Memo_cache.hits = a.Memo_cache.hits + b.Memo_cache.hits;
    misses = a.Memo_cache.misses + b.Memo_cache.misses;
    entries = a.Memo_cache.entries + b.Memo_cache.entries;
  }

let of_oracle ?opts ?load gate th =
  let single_cache = Memo_cache.create () in
  let dual_cache = Memo_cache.create () in
  let single ~pin ~edge ~tau =
    Memo_cache.find_or_compute single_cache (pin, edge, tau) (fun () ->
      Measure.single_input ?opts ?load gate th ~pin ~edge ~tau)
  in
  let dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep =
    Memo_cache.find_or_compute dual_cache
      (dom, other, edge, tau_dom, tau_other, sep)
      (fun () ->
        Dual.oracle ?opts ?load gate th ~dom ~other ~edge ~tau_dom ~tau_other
          ~sep)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "oracle:" ^ gate.Gate.name;
    cache_stats =
      (fun () ->
        merge_stats
          (Memo_cache.stats single_cache)
          (Memo_cache.stats dual_cache));
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 = (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.delay);
    trans1 =
      (fun ~pin ~edge ~tau -> (single ~pin ~edge ~tau).Measure.out_transition);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep).Measure.delay);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        (dual ~dom ~other ~edge ~tau_dom ~tau_other ~sep)
          .Measure.out_transition);
  }

let of_tables ?opts ?taus ?x_tau ?x_sep ?(share_others = false) ?pool gate th =
  let singles = Memo_cache.create ~shards:4 () in
  let duals = Memo_cache.create ~shards:4 () in
  let single ~pin ~edge =
    Memo_cache.find_or_compute singles (pin, edge) (fun () ->
      Single.build ?taus ?opts ?pool gate th ~pin ~edge)
  in
  let dual ~dom ~other ~edge =
    (* with sharing, one representative other pin per dominant pin *)
    let other = if share_others then (if dom = 0 then 1 else 0) else other in
    Memo_cache.find_or_compute duals (dom, other, edge) (fun () ->
      let single_dom = single ~pin:dom ~edge in
      let single_other = single ~pin:other ~edge in
      Dual.build ?x_tau ?x_sep ?opts ?pool gate th ~single_dom ~single_other
        ~other)
  in
  {
    fan_in = gate.Gate.fan_in;
    name = "tables:" ^ gate.Gate.name;
    cache_stats =
      (fun () ->
        merge_stats (Memo_cache.stats singles) (Memo_cache.stats duals));
    assist =
      (fun ~edge ~pins ->
        Gate.switching_assist gate ~pins
          ~output_rising:(edge = Measure.Fall));
    delay1 =
      (fun ~pin ~edge ~tau -> Single.delay (single ~pin ~edge) ~tau);
    trans1 =
      (fun ~pin ~edge ~tau -> Single.out_transition (single ~pin ~edge) ~tau);
    delay2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.delay (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
    trans2 =
      (fun ~dom ~other ~edge ~tau_dom ~tau_other ~sep ->
        Dual.out_transition (dual ~dom ~other ~edge)
          ~single_dom:(single ~pin:dom ~edge)
          ~single_other:(single ~pin:other ~edge) ~tau_dom ~tau_other ~sep);
  }
