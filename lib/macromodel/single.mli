(** Single-input macromodels [D^(1)] and [T^(1)] (paper §3, eqs 3.7–3.8).

    Dimensional analysis reduces the single-switching-input delay and
    output transition time to one-argument functions:

    {v Delta/tau = D1( C_L / (K Vdd tau) ),
       tau_out/tau = T1( C_L / (K Vdd tau) ) v}

    The tables are built once per (gate, pin, edge) by sweeping the input
    transition time on the golden simulator, and are then valid for any
    [(tau, C_L)] combination whose dimensionless argument falls in (or
    clamps to) the tabulated range — this is the mechanism by which one
    table serves every load. *)

type t

val pin : t -> int
val edge : t -> Proxim_measure.Measure.edge

val samples : t -> float array * float array * float array
(** The raw tabulated knots [(ln_argument, delay_ratio, trans_ratio)] —
    copies, in axis order.  Exposed for the diagnostics layer
    ({!Proxim_lint}) and the storage-complexity accounting. *)

val default_taus : float array
(** The default [build] sweep: 16 log-spaced input transition times over
    20 ps..5 ns.  Exported so coverage checks ({!Proxim_lint},
    [Proxim_verify]) know the characterized span when [build] was called
    without [taus]. *)

val build :
  ?taus:float array ->
  ?opts:Proxim_spice.Options.t ->
  ?pool:Proxim_util.Pool.t ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  pin:int ->
  edge:Proxim_measure.Measure.edge ->
  t
(** Sweep [taus] (default: 16 log-spaced points over 20 ps..5 ns) at the
    gate's default load and tabulate the two normalized ratios against the
    dimensionless argument, with monotone (PCHIP) interpolation.  With
    [pool], the sweep's transient analyses run across the pool's domains;
    the table is bit-identical to a serial build. *)

val build_many :
  ?taus:float array ->
  ?opts:Proxim_spice.Options.t ->
  ?pool:Proxim_util.Pool.t ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  (int * Proxim_measure.Measure.edge) array ->
  t array
(** Build one table per [(pin, edge)] spec, batching every (table, tau)
    transient of the whole set into a single pool job — with [n] specs
    the job carries [n * length taus] tasks, so the pool's domains stay
    fed across the entire characterization instead of draining between
    per-table builds.  Each returned table is bit-identical to the
    corresponding {!build} call. *)

val delay : ?c_load:float -> t -> tau:float -> float
(** Predicted [Delta^(1)] for an input of transition time [tau].
    [c_load] defaults to the load the table was built at. *)

val out_transition : ?c_load:float -> t -> tau:float -> float
(** Predicted output transition time [tau_out^(1)]. *)

val tau_of_delay : ?c_load:float -> t -> delay:float -> float
(** Inverse query: the input transition time whose predicted delay is
    [delay] (used when building dual-input tables on normalized axes).
    Requires [delay > 0]; solved by bisection on the monotone model. *)

val argument : ?c_load:float -> t -> tau:float -> float
(** The dimensionless argument [(C_L + C_parasitic) / (K Vdd tau)] for
    diagnostics. *)

val save : t -> string
(** Serialize to the line-oriented text format of {!Store} ("single-v1"
    section).  Round-trips exactly through {!load}. *)

val load : string -> t
(** Parse a {!save}d model.  Raises [Failure] with a line-precise message
    on malformed input. *)
