(** Dual-input proximity macromodels [D^(2)] and [T^(2)] (paper §3,
    eqs 3.11–3.12).

    For two inputs switching in the same direction, with [i] the dominant
    input, the delay and output-transition ratios are three-argument
    functions of normalized temporal parameters only:

    {v Delta2/Delta1 = D2( tau_i/Delta1, tau_j/Delta1, s_ij/Delta1 )
       tau2/tau1     = T2( tau_i/tau1,   tau_j/tau1,   s_ij/tau1  ) v}

    Two realizations are provided:

    - {!oracle}: query the golden circuit simulator for each evaluation —
      this is exactly how the paper's §5 validation used HSPICE "as the
      macromodel for processing the dual-input case";
    - {!t}: a 3-D table on the normalized axes (monotone-cubic along the
      curved separation axis, linear across the slew axes), built once
      per (dominant pin, other pin, edge) — the deployable artifact whose
      cost Figure 4-2 accounts.  Tabulation and queries are clamped to
      the side of the dominance boundary where [dom] is genuinely
      dominant; see {!delay}. *)

val oracle :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  dom:int ->
  other:int ->
  edge:Proxim_measure.Measure.edge ->
  tau_dom:float ->
  tau_other:float ->
  sep:float ->
  Proxim_measure.Measure.observation
(** Simulate the two-input-switching case ([sep] is the separation from
    the dominant input's threshold crossing to the other's) and measure
    delay and output transition with respect to the dominant input. *)

type t
(** A tabulated dual-input macromodel for one (dom, other, edge) triple. *)

val dom : t -> int
val other : t -> int
val edge : t -> Proxim_measure.Measure.edge

val assist : t -> bool
(** Do the two switching transistors assist each other (parallel branches
    in the driving network) or gate each other (series stack)?  Decides
    on which side of the separation axis the proximity window closes. *)

val delay_grid : t -> Proxim_util.Interp.grid3
val trans_grid : t -> Proxim_util.Interp.grid3
(** The raw normalized ratio tables (axes [ln x1, ln x2, x3]) — exposed
    for the diagnostics layer ({!Proxim_lint}), which checks axis
    monotonicity, entry finiteness and window saturation on them. *)

val find :
  t list ->
  dom:int ->
  other:int ->
  edge:Proxim_measure.Measure.edge ->
  t
(** First matching table; raises [Not_found]. *)

val build :
  ?x_tau:float array ->
  ?x_sep:float array ->
  ?opts:Proxim_spice.Options.t ->
  ?pool:Proxim_util.Pool.t ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  single_dom:Single.t ->
  single_other:Single.t ->
  other:int ->
  t
(** Tabulate both ratio functions on normalized axes.  [x_tau] is the axis
    used for both normalized transition times (default: 7 log-spaced
    points over 0.25..16); [x_sep] the normalized-separation axis
    (default: 12 points over -3..1.5).  The dominant pin and edge come
    from [single_dom].  Each grid point triggers one transient analysis;
    a full table costs [2 * |x_tau|^2 * |x_sep|] runs — with [pool] they
    are fanned out across the pool's domains (bit-identical result). *)

val delay :
  t ->
  single_dom:Single.t ->
  single_other:Single.t ->
  tau_dom:float ->
  tau_other:float ->
  sep:float ->
  float
(** Predicted [Delta^(2)] (absolute, seconds) with respect to the dominant
    input: normalizes the query by [Delta^(1)] from [single_dom], looks up
    the tabulated ratio, and denormalizes.  Separations beyond the
    dominance boundary [Delta1_dom - Delta1_other] (where the other input
    would itself be dominant) are clamped to the boundary — the tabulated
    surface is only meaningful, and only built, on the valid side. *)

val out_transition :
  t ->
  single_dom:Single.t ->
  single_other:Single.t ->
  tau_dom:float ->
  tau_other:float ->
  sep:float ->
  float
(** Predicted [tau_out^(2)] (absolute, seconds). *)

val delay_ratio : t -> x1:float -> x2:float -> x3:float -> float
(** Raw normalized lookup [D^(2)(x1, x2, x3)] — exposed for tests and for
    the storage-complexity accounting. *)

val trans_ratio : t -> x1:float -> x2:float -> x3:float -> float

val save : t -> string
(** Serialize to the {!Store} text format ("dual-v1" section); exact
    round-trip through {!load}. *)

val load : string -> t
(** Parse a {!save}d model.  Raises [Failure] on malformed input. *)
