(** Model-quality lints: threshold sets and characterized table stores.

    These passes are grounded in the paper:

    - {!check_thresholds} enforces the §2 threshold-selection rules.  A
      threshold set measured against the wrong VTC — one whose switching
      threshold [Vm] falls outside [(Vil, Vih)] — silently yields
      {e negative} delays; the paper's fix is to take [min Vil] and
      [max Vih] over all [2^n - 1] curves of the family.  With the
      family available the rule is checked exactly (PX001/PX002/PX004);
      without it, the statically-knowable estimate [Vm ~ Vdd/2] is used
      for the PX001 guard.
    - {!check_single} / {!check_dual} check characterized tables for
      non-finite entries (PX201), non-positive [Delta^(1)]/[tau^(1)]
      samples (PX202), non-monotone grid axes (PX203), ratio surfaces
      that fail to saturate to the single-input asymptote outside the
      proximity window (PX204), and axis ranges too narrow to serve
      realistic queries (PX205).
    - {!check_store} runs all of the above over a {!Proxim_macromodel.Store.set}
      plus the cross-table checks: duals without their single-input
      tables (PX207), incomplete pin/edge coverage (PX208), and
      dominance consistency — the [(a,b)] and [(b,a)] tables must agree
      at the crossover separation [s_ab = Delta_a^(1) - Delta_b^(1)]
      where dominance changes hands (PX206). *)

val check_thresholds :
  ?file:string ->
  ?line:int ->
  ?curves:Proxim_vtc.Vtc.curve list ->
  name:string ->
  Proxim_vtc.Vtc.thresholds ->
  Diagnostic.t list
(** [curves], when given, is the VTC family the set was (supposedly)
    chosen from; [name] labels the diagnostics' context (a gate or file
    name). *)

val check_single :
  ?file:string -> name:string -> Proxim_macromodel.Single.t -> Diagnostic.t list

val check_dual :
  ?file:string -> name:string -> Proxim_macromodel.Dual.t -> Diagnostic.t list

val check_store :
  ?file:string -> Proxim_macromodel.Store.set -> Diagnostic.t list
