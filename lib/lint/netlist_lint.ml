module Gate = Proxim_gates.Gate
module Graph = Proxim_timing.Graph
module Netlist_text = Proxim_sta.Netlist_text

type options = { fanout_limit : int }

let default_options = { fanout_limit = 8 }

let check_raw ?(options = default_options) ?file (raw : Netlist_text.raw) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let mk ?severity ?line ?col ?context code fmt =
    Diagnostic.make ?severity ?file ?line ?col ?context code fmt
  in
  (* PX100: everything the scanner could not make sense of *)
  List.iter
    (fun (e : Netlist_text.raw_error) ->
      add (mk ~line:e.err_line ~col:e.err_col PX100 "%s" e.err_msg))
    raw.Netlist_text.raw_errors;
  (* PX108 *)
  if raw.Netlist_text.raw_name = None then
    add (mk PX108 "missing 'design' directive");
  let cells = raw.Netlist_text.raw_cells in
  let pis = List.map fst raw.Netlist_text.raw_inputs in
  let pos = List.map fst raw.Netlist_text.raw_outputs in
  let is_pi net = List.mem net pis in
  let is_po net = List.mem net pos in
  (* PX101: duplicate cell names (first definition wins downstream) *)
  let cell_lines = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      match Hashtbl.find_opt cell_lines c.Netlist_text.cell_name with
      | Some first ->
        add
          (mk ~line:c.Netlist_text.line ~context:c.Netlist_text.cell_name
             PX101 "duplicate cell name %S (first defined at line %d)"
             c.Netlist_text.cell_name first)
      | None ->
        Hashtbl.add cell_lines c.Netlist_text.cell_name c.Netlist_text.line)
    cells;
  (* PX102: arity *)
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let want = c.Netlist_text.gate.Gate.fan_in in
      let got = List.length c.Netlist_text.inputs in
      if got <> want then
        add
          (mk ~line:c.Netlist_text.line ~col:c.Netlist_text.gate_col
             ~context:c.Netlist_text.cell_name PX102
             "gate %s wants %d inputs, got %d" c.Netlist_text.gate.Gate.name
             want got))
    cells;
  (* drivers: PX103 (double drivers), PX104 (driven primary inputs) *)
  let driver : (string, Netlist_text.raw_cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let net = c.Netlist_text.output in
      (match Hashtbl.find_opt driver net with
       | Some first ->
         add
           (mk ~line:c.Netlist_text.line ~context:net PX103
              "net %S driven by both %s (line %d) and %s" net
              first.Netlist_text.cell_name first.Netlist_text.line
              c.Netlist_text.cell_name)
       | None -> Hashtbl.add driver net c);
      if is_pi net then
        add
          (mk ~line:c.Netlist_text.line ~context:net PX104
             "cell %s drives primary input %S" c.Netlist_text.cell_name net))
    cells;
  let driven net = Hashtbl.mem driver net in
  (* readers *)
  let readers : (string, Netlist_text.raw_cell list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      List.iter
        (fun net ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt readers net) in
          Hashtbl.replace readers net (c :: cur))
        c.Netlist_text.inputs)
    cells;
  let fanout net =
    List.length (Option.value ~default:[] (Hashtbl.find_opt readers net))
  in
  (* PX105: undriven nets, reported once per net at the first reader *)
  let reported_undriven = Hashtbl.create 8 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      List.iter
        (fun net ->
          if
            (not (driven net)) && (not (is_pi net))
            && not (Hashtbl.mem reported_undriven net)
          then begin
            Hashtbl.add reported_undriven net ();
            add
              (mk ~line:c.Netlist_text.line ~context:net PX105
                 "net %S read by cell %s is driven by nothing and is not a \
                  primary input"
                 net c.Netlist_text.cell_name)
          end)
        c.Netlist_text.inputs)
    cells;
  (* PX107: undriven primary outputs *)
  List.iter
    (fun (net, line) ->
      if (not (driven net)) && not (is_pi net) then
        add
          (mk ~line ~context:net PX107
             "primary output %S is driven by nothing and is not a primary \
              input"
             net))
    raw.Netlist_text.raw_outputs;
  (* PX106: combinational cycles, found by the shared graph algorithms
     (Proxim_timing.Graph.cycles): DFS over reader -> driver edges, one
     diagnostic per back edge.  The first declared driver of a net wins,
     matching the PX103 arbitration above, so broken netlists still get a
     deterministic cycle report. *)
  let cell_arr = Array.of_list cells in
  let n_cells = Array.length cell_arr in
  let driver_idx : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (c : Netlist_text.raw_cell) ->
      if not (Hashtbl.mem driver_idx c.Netlist_text.output) then
        Hashtbl.add driver_idx c.Netlist_text.output i)
    cell_arr;
  let fanin i =
    List.filter_map
      (fun net -> Hashtbl.find_opt driver_idx net)
      cell_arr.(i).Netlist_text.inputs
  in
  List.iter
    (fun (entry, members) ->
      let entry_cell = cell_arr.(entry) in
      let names =
        List.map (fun i -> cell_arr.(i).Netlist_text.cell_name) members
      in
      add
        (mk ~line:entry_cell.Netlist_text.line
           ~context:entry_cell.Netlist_text.cell_name PX106
           "combinational cycle: %s"
           (String.concat " -> " (names @ [ List.hd names ]))))
    (Graph.cycles ~n:n_cells ~succ:fanin ~roots:(List.init n_cells Fun.id));
  (* PX110: cell outputs nobody consumes *)
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let net = c.Netlist_text.output in
      if fanout net = 0 && not (is_po net) then
        add
          (mk ~line:c.Netlist_text.line ~context:net PX110
             "output %S of cell %s is read by nothing and is not a primary \
              output"
             net c.Netlist_text.cell_name))
    cells;
  (* PX111: dead primary inputs (feeding a primary output through a
     direct feed-through still counts as used) *)
  List.iter
    (fun (net, line) ->
      if fanout net = 0 && not (is_po net) then
        add (mk ~line ~context:net PX111 "primary input %S is read by no cell" net))
    raw.Netlist_text.raw_inputs;
  (* PX112: fanout outliers *)
  Hashtbl.iter
    (fun net rs ->
      let n = List.length rs in
      if n > options.fanout_limit then
        let line =
          Option.map
            (fun (c : Netlist_text.raw_cell) -> c.Netlist_text.line)
            (Hashtbl.find_opt driver net)
        in
        add
          (mk ?line ~context:net PX112
             "net %S fans out to %d pins (limit %d) — the load model and the \
              characterized tables get unreliable out here"
             net n options.fanout_limit))
    readers;
  (* PX113: primary outputs no primary-input event can ever reach —
     forward reachability (Proxim_timing.Graph.reachable) over
     input-net -> output-net edges from the primary inputs.  Nets are
     interned on the fly since a broken netlist has no arena yet. *)
  let net_idx : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let n_nets = ref 0 in
  let net_succ : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let intern net =
    match Hashtbl.find_opt net_idx net with
    | Some i -> i
    | None ->
      let i = !n_nets in
      incr n_nets;
      Hashtbl.add net_idx net i;
      i
  in
  let pi_roots = List.map intern pis in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let out = intern c.Netlist_text.output in
      List.iter
        (fun input ->
          let i = intern input in
          let cur = Option.value ~default:[] (Hashtbl.find_opt net_succ i) in
          Hashtbl.replace net_succ i (out :: cur))
        c.Netlist_text.inputs)
    cells;
  let net_reachable =
    Graph.reachable ~n:!n_nets
      ~succ:(fun i -> Option.value ~default:[] (Hashtbl.find_opt net_succ i))
      ~roots:pi_roots
  in
  List.iter
    (fun (net, line) ->
      let unreachable =
        match Hashtbl.find_opt net_idx net with
        | Some i -> not net_reachable.(i)
        | None -> true
      in
      if driven net && unreachable then
        add
          (mk ~line ~context:net PX113
             "primary output %S is unreachable from every primary input" net))
    raw.Netlist_text.raw_outputs;
  (* threshold directive, if any: the §2 checks with a source location *)
  (match raw.Netlist_text.raw_thresholds with
   | None -> ()
   | Some (th, line) ->
     List.iter add
       (Model_lint.check_thresholds ?file ~line ~name:"thresholds directive" th));
  Diagnostic.sort (List.rev !diags)

let check_text ?options ?file tech text =
  check_raw ?options ?file (Netlist_text.parse_raw tech text)
