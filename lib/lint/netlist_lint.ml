module Gate = Proxim_gates.Gate
module Netlist_text = Proxim_sta.Netlist_text

type options = { fanout_limit : int }

let default_options = { fanout_limit = 8 }

let check_raw ?(options = default_options) ?file (raw : Netlist_text.raw) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let mk ?severity ?line ?context code fmt =
    Diagnostic.make ?severity ?file ?line ?context code fmt
  in
  (* PX100: everything the scanner could not make sense of *)
  List.iter
    (fun (line, msg) -> add (mk ~line PX100 "%s" msg))
    raw.Netlist_text.raw_errors;
  (* PX108 *)
  if raw.Netlist_text.raw_name = None then
    add (mk PX108 "missing 'design' directive");
  let cells = raw.Netlist_text.raw_cells in
  let pis = List.map fst raw.Netlist_text.raw_inputs in
  let pos = List.map fst raw.Netlist_text.raw_outputs in
  let is_pi net = List.mem net pis in
  let is_po net = List.mem net pos in
  (* PX101: duplicate cell names (first definition wins downstream) *)
  let cell_lines = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      match Hashtbl.find_opt cell_lines c.Netlist_text.cell_name with
      | Some first ->
        add
          (mk ~line:c.Netlist_text.line ~context:c.Netlist_text.cell_name
             PX101 "duplicate cell name %S (first defined at line %d)"
             c.Netlist_text.cell_name first)
      | None ->
        Hashtbl.add cell_lines c.Netlist_text.cell_name c.Netlist_text.line)
    cells;
  (* PX102: arity *)
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let want = c.Netlist_text.gate.Gate.fan_in in
      let got = List.length c.Netlist_text.inputs in
      if got <> want then
        add
          (mk ~line:c.Netlist_text.line ~context:c.Netlist_text.cell_name
             PX102 "gate %s wants %d inputs, got %d"
             c.Netlist_text.gate.Gate.name want got))
    cells;
  (* drivers: PX103 (double drivers), PX104 (driven primary inputs) *)
  let driver : (string, Netlist_text.raw_cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let net = c.Netlist_text.output in
      (match Hashtbl.find_opt driver net with
       | Some first ->
         add
           (mk ~line:c.Netlist_text.line ~context:net PX103
              "net %S driven by both %s (line %d) and %s" net
              first.Netlist_text.cell_name first.Netlist_text.line
              c.Netlist_text.cell_name)
       | None -> Hashtbl.add driver net c);
      if is_pi net then
        add
          (mk ~line:c.Netlist_text.line ~context:net PX104
             "cell %s drives primary input %S" c.Netlist_text.cell_name net))
    cells;
  let driven net = Hashtbl.mem driver net in
  (* readers *)
  let readers : (string, Netlist_text.raw_cell list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      List.iter
        (fun net ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt readers net) in
          Hashtbl.replace readers net (c :: cur))
        c.Netlist_text.inputs)
    cells;
  let fanout net =
    List.length (Option.value ~default:[] (Hashtbl.find_opt readers net))
  in
  (* PX105: undriven nets, reported once per net at the first reader *)
  let reported_undriven = Hashtbl.create 8 in
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      List.iter
        (fun net ->
          if
            (not (driven net)) && (not (is_pi net))
            && not (Hashtbl.mem reported_undriven net)
          then begin
            Hashtbl.add reported_undriven net ();
            add
              (mk ~line:c.Netlist_text.line ~context:net PX105
                 "net %S read by cell %s is driven by nothing and is not a \
                  primary input"
                 net c.Netlist_text.cell_name)
          end)
        c.Netlist_text.inputs)
    cells;
  (* PX107: undriven primary outputs *)
  List.iter
    (fun (net, line) ->
      if (not (driven net)) && not (is_pi net) then
        add
          (mk ~line ~context:net PX107
             "primary output %S is driven by nothing and is not a primary \
              input"
             net))
    raw.Netlist_text.raw_outputs;
  (* PX106: combinational cycles.  DFS over the driver graph keyed by
     output net; every back edge reports the cycle it closes once. *)
  let state : (string, [ `Active | `Done ]) Hashtbl.t = Hashtbl.create 16 in
  let rec visit (c : Netlist_text.raw_cell) path =
    let net = c.Netlist_text.output in
    match Hashtbl.find_opt state net with
    | Some `Done -> ()
    | Some `Active ->
      (* [path] holds the cells between here and the cycle entry *)
      let cycle =
        let rec upto acc = function
          | [] -> List.rev acc
          | (p : Netlist_text.raw_cell) :: tl ->
            if p.Netlist_text.output = net then List.rev (p :: acc)
            else upto (p :: acc) tl
        in
        upto [] path
      in
      let names =
        List.rev_map (fun (p : Netlist_text.raw_cell) -> p.Netlist_text.cell_name) cycle
      in
      add
        (mk ~line:c.Netlist_text.line ~context:c.Netlist_text.cell_name PX106
           "combinational cycle: %s"
           (String.concat " -> " (names @ [ List.hd names ])))
    | None ->
      Hashtbl.replace state net `Active;
      List.iter
        (fun input ->
          match Hashtbl.find_opt driver input with
          | Some d -> visit d (c :: path)
          | None -> ())
        c.Netlist_text.inputs;
      Hashtbl.replace state net `Done
  in
  List.iter (fun c -> visit c []) cells;
  (* PX110: cell outputs nobody consumes *)
  List.iter
    (fun (c : Netlist_text.raw_cell) ->
      let net = c.Netlist_text.output in
      if fanout net = 0 && not (is_po net) then
        add
          (mk ~line:c.Netlist_text.line ~context:net PX110
             "output %S of cell %s is read by nothing and is not a primary \
              output"
             net c.Netlist_text.cell_name))
    cells;
  (* PX111: dead primary inputs (feeding a primary output through a
     direct feed-through still counts as used) *)
  List.iter
    (fun (net, line) ->
      if fanout net = 0 && not (is_po net) then
        add (mk ~line ~context:net PX111 "primary input %S is read by no cell" net))
    raw.Netlist_text.raw_inputs;
  (* PX112: fanout outliers *)
  Hashtbl.iter
    (fun net rs ->
      let n = List.length rs in
      if n > options.fanout_limit then
        let line =
          Option.map
            (fun (c : Netlist_text.raw_cell) -> c.Netlist_text.line)
            (Hashtbl.find_opt driver net)
        in
        add
          (mk ?line ~context:net PX112
             "net %S fans out to %d pins (limit %d) — the load model and the \
              characterized tables get unreliable out here"
             net n options.fanout_limit))
    readers;
  (* PX113: primary outputs no primary-input event can ever reach.  A
     cell output becomes reachable when at least one of its inputs is. *)
  let reachable = Hashtbl.create 16 in
  List.iter (fun net -> Hashtbl.replace reachable net ()) pis;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Netlist_text.raw_cell) ->
        if not (Hashtbl.mem reachable c.Netlist_text.output) then
          if List.exists (Hashtbl.mem reachable) c.Netlist_text.inputs then begin
            Hashtbl.replace reachable c.Netlist_text.output ();
            changed := true
          end)
      cells
  done;
  List.iter
    (fun (net, line) ->
      if driven net && not (Hashtbl.mem reachable net) then
        add
          (mk ~line ~context:net PX113
             "primary output %S is unreachable from every primary input" net))
    raw.Netlist_text.raw_outputs;
  (* threshold directive, if any: the §2 checks with a source location *)
  (match raw.Netlist_text.raw_thresholds with
   | None -> ()
   | Some (th, line) ->
     List.iter add
       (Model_lint.check_thresholds ?file ~line ~name:"thresholds directive" th));
  Diagnostic.sort (List.rev !diags)

let check_text ?options ?file tech text =
  check_raw ?options ?file (Netlist_text.parse_raw tech text)
