(** Structural netlist lints — the collect-all counterpart of
    {!Proxim_sta.Design.create}.

    [Design.create] aborts on the first structural error with
    [Invalid_argument]; these passes instead analyze the whole
    {!Proxim_sta.Netlist_text.raw} form of a file — including one that
    does not parse completely — and report {e every} problem as a
    line-numbered diagnostic:

    - errors re-expressing the constructor's checks: syntax (PX100),
      duplicate cells (PX101), arity (PX102), double drivers (PX103),
      driven primary inputs (PX104), undriven nets (PX105), cycles
      (PX106), undriven primary outputs (PX107), missing design name
      (PX108);
    - warnings the constructor never looks at: unused cell outputs
      (PX110), unused primary inputs (PX111), fanout outliers (PX112),
      primary outputs unreachable from every primary input (PX113);
    - when the file carries a [thresholds] directive, the §2 threshold
      checks of {!Model_lint.check_thresholds} (PX001/PX003).

    A file with no PX1xx {e error}-severity diagnostics is accepted by
    {!Proxim_sta.Netlist_text.parse}. *)

type options = {
  fanout_limit : int;  (** PX112 fires above this many reader pins *)
}

val default_options : options
(** [{ fanout_limit = 8 }]. *)

val check_raw :
  ?options:options ->
  ?file:string ->
  Proxim_sta.Netlist_text.raw ->
  Diagnostic.t list
(** All diagnostics for one parsed file, in report order
    ({!Diagnostic.sort}). *)

val check_text :
  ?options:options ->
  ?file:string ->
  Proxim_gates.Tech.t ->
  string ->
  Diagnostic.t list
(** [check_raw] of [Netlist_text.parse_raw]. *)
