module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Store = Proxim_macromodel.Store
module Interp = Proxim_util.Interp

let edge_name = function Measure.Rise -> "rise" | Measure.Fall -> "fall"

let subset_name subset =
  "{" ^ String.concat "" (List.map Gate.pin_name subset) ^ "}"

(* --- threshold sets (§2) --------------------------------------------- *)

let check_thresholds ?file ?line ?(curves = []) ~name (th : Vtc.thresholds) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let mk ?severity ?context code fmt =
    Diagnostic.make ?severity ?file ?line ?context code fmt
  in
  (* PX003: the ordering every measurement assumes *)
  if
    not
      (Float.is_finite th.Vtc.vil && Float.is_finite th.Vtc.vih
      && Float.is_finite th.Vtc.vdd && th.Vtc.vdd > 0. && th.Vtc.vil >= 0.
      && th.Vtc.vil < th.Vtc.vih && th.Vtc.vih <= th.Vtc.vdd)
  then
    add
      (mk ~context:name PX003
         "threshold set %s breaks the ordering 0 <= Vil < Vih <= Vdd"
         (Format.asprintf "%a" Vtc.pp_thresholds th));
  let eps = 1e-9 *. Float.max 1. (Float.abs th.Vtc.vdd) in
  (match curves with
   | [] ->
     (* no VTC family available: estimate each curve's Vm by the only
        value knowable statically, Vdd/2, and apply the §2 guard to it *)
     let vm_est = th.Vtc.vdd /. 2. in
     if not (th.Vtc.vil < vm_est && vm_est < th.Vtc.vih) then
       add
         (mk ~context:name PX001
            "negative-delay hazard: estimated switching threshold Vm = Vdd/2 \
             = %.3f V is not strictly inside (Vil = %.3f V, Vih = %.3f V) — \
             delays measured with this set can be negative (paper §2)"
            vm_est th.Vtc.vil th.Vtc.vih)
   | curves ->
     (* PX002: the set must be at least as wide as the family extremes *)
     let min_vil =
       List.fold_left
         (fun acc (c : Vtc.curve) -> Float.min acc c.Vtc.vil)
         Float.infinity curves
     in
     let max_vih =
       List.fold_left
         (fun acc (c : Vtc.curve) -> Float.max acc c.Vtc.vih)
         Float.neg_infinity curves
     in
     if th.Vtc.vil > min_vil +. eps then
       add
         (mk ~context:name PX002
            "Vil = %.3f V is above the family minimum %.3f V — the §2 rule \
             takes min Vil over all 2^n-1 VTCs"
            th.Vtc.vil min_vil);
     if th.Vtc.vih < max_vih -. eps then
       add
         (mk ~context:name PX002
            "Vih = %.3f V is below the family maximum %.3f V — the §2 rule \
             takes max Vih over all 2^n-1 VTCs"
            th.Vtc.vih max_vih);
     List.iter
       (fun (c : Vtc.curve) ->
         let sub = subset_name c.Vtc.subset in
         (* PX004: collapsed unity-gain points make Vil/Vih meaningless *)
         if Float.abs (c.Vtc.vih -. c.Vtc.vil) <= eps then
           add
             (mk ~context:(name ^ " " ^ sub) PX004
                "degenerate VTC: unity-gain points collapsed at %.3f V (gain \
                 never reached -1?)"
                c.Vtc.vil)
         else if not (th.Vtc.vil < c.Vtc.vm && c.Vtc.vm < th.Vtc.vih) then
           (* PX001: the §2 negative-delay guard, curve by curve *)
           add
             (mk ~context:(name ^ " " ^ sub) PX001
                "negative-delay hazard: curve %s has Vm = %.3f V outside \
                 (Vil = %.3f V, Vih = %.3f V) — delays measured with this \
                 set can be negative (paper §2)"
                sub c.Vtc.vm th.Vtc.vil th.Vtc.vih))
       curves);
  List.rev !diags

(* --- table helpers ---------------------------------------------------- *)

let non_finite_count arr =
  Array.fold_left (fun n v -> if Float.is_finite v then n else n + 1) 0 arr

let strictly_increasing arr =
  let ok = ref (Array.length arr >= 2) in
  for i = 0 to Array.length arr - 2 do
    (* NaN entries also fail this comparison, which is what we want *)
    if not (arr.(i) < arr.(i + 1)) then ok := false
  done;
  !ok

(* --- single-input tables ---------------------------------------------- *)

(* Narrower than a factor of 4 in the dimensionless argument means the
   table is effectively a point sample: every realistic (tau, load)
   sweep spans far more. *)
let min_argument_span = log 4.

let check_single ?file ~name (s : Single.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let mk ?severity code fmt =
    Diagnostic.make ?severity ?file ~context:name code fmt
  in
  let xs, d, tr = Single.samples s in
  let n = Array.length xs in
  let bad = non_finite_count xs + non_finite_count d + non_finite_count tr in
  if bad > 0 then
    add (mk PX201 "%d non-finite entr%s in the tabulated samples" bad
           (if bad = 1 then "y" else "ies"));
  let nonpos a what =
    let k =
      Array.fold_left (fun n v -> if Float.is_finite v && v <= 0. then n + 1 else n) 0 a
    in
    if k > 0 then
      add
        (mk PX202
           "%d non-positive %s sample%s — Delta^(1) and tau_out^(1) are \
            strictly positive for any physical gate"
           k what
           (if k = 1 then "" else "s"))
  in
  nonpos d "normalized delay";
  nonpos tr "normalized transition";
  if not (strictly_increasing xs) then
    add (mk PX203 "ln-argument axis is not strictly increasing");
  if n < 4 then
    add
      (mk PX205 "only %d sample%s — too few to interpolate reliably" n
         (if n = 1 then "" else "s"))
  else if
    Float.is_finite xs.(0)
    && Float.is_finite xs.(n - 1)
    && xs.(n - 1) -. xs.(0) < min_argument_span
  then
    add
      (mk PX205
         "tabulated argument range spans a factor of %.2f — less than 4x; \
          most queries will extrapolate by clamping"
         (exp (xs.(n - 1) -. xs.(0))));
  List.rev !diags

(* --- dual-input tables ------------------------------------------------- *)

(* How far the outermost separation plane may sit from the single-input
   asymptote (ratio 1) before we call the surface unsaturated.  The
   dominance clamp keeps legitimate tables within ~20-30% here; seeded
   garbage is far beyond. *)
let saturation_tolerance = 0.35

let check_grid ~add ?file ~context ~assist ~what (g : Interp.grid3) =
  let axes_ok = ref true in
  let check_ax label ax =
    if non_finite_count ax > 0 then begin
      axes_ok := false;
      add
        (Diagnostic.make ?file ~context Diagnostic.PX201
           "non-finite entries in the %s %s axis" what label)
    end
    else if not (strictly_increasing ax) then begin
      axes_ok := false;
      add
        (Diagnostic.make ?file ~context Diagnostic.PX203
           "%s %s axis is not strictly increasing" what label)
    end
  in
  check_ax "x1" g.Interp.xs;
  check_ax "x2" g.Interp.ys;
  check_ax "x3 (separation)" g.Interp.zs;
  let bad_values =
    Array.fold_left
      (fun n plane ->
        Array.fold_left (fun n row -> n + non_finite_count row) n plane)
      0 g.Interp.values
  in
  if bad_values > 0 then
    add
      (Diagnostic.make ?file ~context Diagnostic.PX201
         "%d non-finite entr%s in the %s surface" bad_values
         (if bad_values = 1 then "y" else "ies")
         what);
  let nz = Array.length g.Interp.zs in
  if !axes_ok && nz >= 2 then begin
    (* PX205: the separation axis must straddle simultaneity, and for
       assisting pairs reach the window edge on the late side *)
    if g.Interp.zs.(0) > 0. || g.Interp.zs.(nz - 1) < 0. then
      add
        (Diagnostic.make ?file ~context Diagnostic.PX205
           "%s separation axis [%g, %g] does not include simultaneity (0)"
           what g.Interp.zs.(0)
           g.Interp.zs.(nz - 1));
    if assist && g.Interp.zs.(nz - 1) < 1. then
      add
        (Diagnostic.make ?file ~context Diagnostic.PX205
           "%s separation axis tops out at %g < 1 — it never reaches the \
            proximity-window edge"
           what
           g.Interp.zs.(nz - 1));
    (* PX204: far outside the window the pair behaves single-input, so
       the tabulated ratio must approach 1 on the outermost plane of the
       side where the window closes *)
    if bad_values = 0 then begin
      let iz = if assist then nz - 1 else 0 in
      let sum = ref 0. and count = ref 0 in
      Array.iter
        (fun plane ->
          Array.iter
            (fun row ->
              sum := !sum +. Float.abs (row.(iz) -. 1.);
              incr count)
            plane)
        g.Interp.values;
      if !count > 0 then begin
        let mean = !sum /. float_of_int !count in
        if mean > saturation_tolerance then
          add
            (Diagnostic.make ?file ~context Diagnostic.PX204
               "%s surface does not approach 1 on its far-outside separation \
                plane (mean |ratio - 1| = %.2f at x3 = %g) — D^(2) must \
                decay to the single-input asymptote beyond the proximity \
                window"
               what mean
               g.Interp.zs.(iz))
      end
    end
  end

let check_dual ?file ~name (d : Dual.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let assist = Dual.assist d in
  check_grid ~add ?file ~context:name ~assist ~what:"delay" (Dual.delay_grid d);
  check_grid ~add ?file ~context:name ~assist ~what:"transition"
    (Dual.trans_grid d);
  List.rev !diags

(* --- whole stores ------------------------------------------------------ *)

let single_name gate pin edge =
  Printf.sprintf "%s single %s %s" gate (Gate.pin_name pin) (edge_name edge)

let dual_name gate dom other edge =
  Printf.sprintf "%s dual %s<-%s %s" gate (Gate.pin_name dom)
    (Gate.pin_name other) (edge_name edge)

(* Relative disagreement allowed between the two predicted output
   crossings at the dominance crossover before PX206 fires. *)
let crossover_tolerance = 0.2

let representative_tau = 200e-12

let grids_clean d =
  let ok (g : Interp.grid3) =
    strictly_increasing g.Interp.xs
    && strictly_increasing g.Interp.ys
    && strictly_increasing g.Interp.zs
    && Array.for_all
         (Array.for_all (fun row -> non_finite_count row = 0))
         g.Interp.values
  in
  ok (Dual.delay_grid d) && ok (Dual.trans_grid d)

let check_store ?file (set : Store.set) =
  let gate = set.Store.gate_name in
  let diags = ref [] in
  let add_all ds = diags := List.rev_append ds !diags in
  let add d = diags := d :: !diags in
  add_all
    (check_thresholds ?file ~name:gate
       { Vtc.vil = set.Store.vil; vih = set.Store.vih; vdd = set.Store.vdd });
  List.iter
    (fun s ->
      add_all
        (check_single ?file
           ~name:(single_name gate (Single.pin s) (Single.edge s))
           s))
    set.Store.singles;
  let find_single pin edge =
    List.find_opt
      (fun s -> Single.pin s = pin && Single.edge s = edge)
      set.Store.singles
  in
  List.iter
    (fun d ->
      let name = dual_name gate (Dual.dom d) (Dual.other d) (Dual.edge d) in
      add_all (check_dual ?file ~name d);
      (* PX207: a dual is only queryable through its two singles *)
      List.iter
        (fun pin ->
          if find_single pin (Dual.edge d) = None then
            add
              (Diagnostic.make ?file ~context:name PX207
                 "no single-input table for pin %s edge %s — this dual can \
                  never be evaluated"
                 (Gate.pin_name pin)
                 (edge_name (Dual.edge d))))
        [ Dual.dom d; Dual.other d ])
    set.Store.duals;
  (* PX208: pins/edges visible anywhere in the set but not singly
     characterized *)
  let max_pin =
    List.fold_left
      (fun acc s -> max acc (Single.pin s))
      (List.fold_left
         (fun acc d -> max acc (max (Dual.dom d) (Dual.other d)))
         (-1) set.Store.duals)
      set.Store.singles
  in
  for pin = 0 to max_pin do
    List.iter
      (fun edge ->
        if find_single pin edge = None then
          add
            (Diagnostic.make ?file ~context:gate PX208
               "no single-input table for pin %s edge %s" (Gate.pin_name pin)
               (edge_name edge)))
      [ Measure.Rise; Measure.Fall ]
  done;
  (* PX206: at the crossover separation s_ab = Delta_a - Delta_b the
     (a,b) and (b,a) tables describe the same physical situation, so the
     two predicted output crossings must agree *)
  List.iter
    (fun d ->
      let dom = Dual.dom d and other = Dual.other d and edge = Dual.edge d in
      if dom < other && grids_clean d then
        match
          List.find_opt
            (fun r ->
              Dual.dom r = other && Dual.other r = dom && Dual.edge r = edge
              && grids_clean r)
            set.Store.duals
        with
        | None -> ()
        | Some r -> (
          match (find_single dom edge, find_single other edge) with
          | Some sa, Some sb -> (
            try
              let tau = representative_tau in
              let da = Single.delay sa ~tau and db = Single.delay sb ~tau in
              let s_star = da -. db in
              let out_a =
                Dual.delay d ~single_dom:sa ~single_other:sb ~tau_dom:tau
                  ~tau_other:tau ~sep:s_star
              in
              let out_b =
                s_star
                +. Dual.delay r ~single_dom:sb ~single_other:sa ~tau_dom:tau
                     ~tau_other:tau ~sep:(-.s_star)
              in
              let scale = Float.max (Float.abs out_a) (Float.abs da) in
              if
                scale > 0.
                && Float.abs (out_a -. out_b) /. scale > crossover_tolerance
              then
                add
                  (Diagnostic.make ?file
                     ~context:(dual_name gate dom other edge)
                     PX206
                     "at the dominance crossover s_ab = Delta_a - Delta_b = \
                      %.1f ps the paired tables predict output crossings %.1f \
                      ps vs %.1f ps (tau = %.0f ps) — the surfaces disagree \
                      about who dominates"
                     (s_star *. 1e12) (out_a *. 1e12) (out_b *. 1e12)
                     (tau *. 1e12))
            with _ -> ())
          | _ -> ()))
    set.Store.duals;
  List.rev !diags
