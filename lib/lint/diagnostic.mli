(** The diagnostics core of the lint subsystem.

    Every lint finding is a {!t}: a {e stable} machine-readable code
    ([PXnnn]), a severity, a source location (file / line / named
    context such as a cell, net or table) and a human-readable message.
    Codes are stable across releases — tools may match on them — while
    messages are free to improve.

    Code blocks:
    - [PX0xx] — threshold-set rules from the paper's §2 (the
      negative-delay hazard and the min-Vil/max-Vih family rule);
    - [PX1xx] — structural netlist checks, the collect-all counterpart
      of {!Proxim_sta.Design.create}'s first-failure validation plus
      style warnings (unused nets, fanout outliers, unreachable
      outputs);
    - [PX2xx] — characterized model-store sanity (finiteness,
      monotonicity, proximity-window saturation, dominance
      consistency);
    - [PX3xx] — static proximity-verification findings produced by the
      interval abstract interpretation ([Proxim_verify]): dominance
      crossover straddles, table-coverage escapes, negative-delay bounds,
      unconstrained inputs in proximity-sensitive cones;
    - [PX4xx] — static hazard-analysis findings produced by the §6
      minimum-separation dataflow ([Proxim_hazard]): may-glitch cells,
      endpoint-observable glitches, near-threshold filtered pairs,
      unconstrained inputs in glitch-capable cones;
    - [PX5xx] — static sensitization findings produced by the ternary
      constant-propagation and implication engine ([Proxim_sense]):
      statically-constant nets in proximity-sensitive cones, false-path
      cells, implication-pruned pairs with witness cubes, implication
      budget exhaustion. *)

type severity = Info | Warning | Error
(** Ordered: [Info < Warning < Error] (the polymorphic compare order). *)

val severity_name : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val severity_of_name : string -> severity option

type code =
  | PX001  (** negative-delay threshold hazard: Vm outside (Vil, Vih), §2 *)
  | PX002  (** threshold set violates the min-Vil / max-Vih family rule *)
  | PX003  (** broken threshold ordering (0 <= Vil < Vih <= Vdd) *)
  | PX004  (** degenerate VTC curve (unity-gain points collapsed) *)
  | PX100  (** netlist syntax error *)
  | PX101  (** duplicate cell name *)
  | PX102  (** cell arity disagrees with the gate's fan-in *)
  | PX103  (** net driven twice *)
  | PX104  (** primary input driven by a cell *)
  | PX105  (** undriven net *)
  | PX106  (** combinational cycle *)
  | PX107  (** undriven primary output *)
  | PX108  (** missing 'design' directive *)
  | PX110  (** unused cell output *)
  | PX111  (** unused primary input *)
  | PX112  (** fanout outlier *)
  | PX113  (** primary output unreachable from any primary input *)
  | PX201  (** non-finite table entry *)
  | PX202  (** non-positive single-input sample *)
  | PX203  (** non-monotone grid axis *)
  | PX204  (** ratio surface fails to saturate outside the window *)
  | PX205  (** characterized axis coverage too narrow *)
  | PX206  (** dominance-crossover inconsistency between paired duals *)
  | PX207  (** dual table missing its single-input tables *)
  | PX208  (** incomplete single-table pin/edge coverage *)
  | PX301
      (** separation interval straddles the dominance crossover
          [s_ab = Delta_a - Delta_b] *)
  | PX302  (** reachable intervals exceed characterized table coverage *)
  | PX303  (** interval lower bound gives a negative pin-to-output delay *)
  | PX304  (** unconstrained primary input in a proximity-sensitive cone *)
  | PX401  (** static hazard possible (§6 separation may beat the filter) *)
  | PX402  (** possible glitch reaches a primary output in its window *)
  | PX403  (** filtered hazard within the widening band of the threshold *)
  | PX404  (** unconstrained primary input in a glitch-capable cone *)
  | PX501  (** statically-constant net feeds a proximity-sensitive cone *)
  | PX502  (** unsensitizable critical-path segment (false proximity path) *)
  | PX503  (** input pair pruned by implication (witness cube attached) *)
  | PX504  (** implication budget exhausted: pair stays sensitizable *)

val all_codes : code list
(** Every code, ascending. *)

val code_name : code -> string
(** ["PX001"], ... — the stable wire format. *)

val code_of_name : string -> code option

val default_severity : code -> severity

val code_doc : code -> string
(** One-line description (the rows of the README code table and of
    [proxim lint --codes]). *)

type location = {
  file : string option;
  line : int option;
  col : int option;  (** 1-based column, when the source pass knows one *)
  context : string option;  (** cell / net / curve / table name *)
}

val no_loc : location

type t = {
  code : code;
  severity : severity;
  location : location;
  message : string;
}

val make :
  ?severity:severity ->
  ?file:string ->
  ?line:int ->
  ?col:int ->
  ?context:string ->
  code ->
  ('a, unit, string, t) format4 ->
  'a
(** [make code fmt ...] builds a diagnostic with a printf-formatted
    message; [severity] defaults to {!default_severity}. *)

val sort : t list -> t list
(** Total order by (file, line, col, code, severity, context, message) —
    the report order.  Distinct diagnostics never tie, so the rendered
    reports are byte-deterministic regardless of emission order. *)

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val worst : t list -> severity option

val exit_code : ?fail_on:severity -> t list -> int
(** Process exit status for a lint run: [2] when any error is present,
    [1] when the worst finding is a warning (suppressed to [0] under
    [~fail_on:Error]), [0] otherwise.  [fail_on] defaults to
    [Warning]. *)

val filter_codes : code list -> t list -> t list
(** Keep only the diagnostics whose code is listed; an empty list keeps
    everything (the [--codes] CLI filter). *)

val pp : Format.formatter -> t -> unit
(** One line: [file:line:col: severity[PXnnn]: message [context]]. *)

val report_text : t list -> string
(** Sorted one-per-line rendering followed by an
    ["E errors, W warnings, I infos"] summary line. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Field-level round-trip: [of_json (to_json d) = Ok d]. *)

val report_json : t list -> Json.t
(** [{"diagnostics": [...], "summary": {"errors": ..., ...}}]. *)

val report_json_string : t list -> string

val report_sarif : ?tool_version:string -> t list -> Json.t
(** SARIF 2.1.0 report (the format GitHub code scanning ingests): one
    run by the "proxim" driver, a [rules] array holding every distinct
    code present (id, {!code_doc} short description, default level), and
    one [result] per diagnostic ([ruleId]/[ruleIndex]/[level]/[message],
    plus a [physicalLocation] when the diagnostic carries a file;
    contexts are folded into the message text).  Severities map to SARIF
    levels error/warning/note.  [tool_version] defaults to ["1.0.0"]. *)

val report_sarif_string : ?tool_version:string -> t list -> string
