type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ------------------------------------------------------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v -> Buffer.add_string buf (number_to_string v)
  | String s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_to buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        add_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_to buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> fail (Printf.sprintf "expected %C, got %C" c x)
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        true
      | _ -> false
    do
      ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "bad \\u escape"
               | Some code -> add_utf8 buf code)
            | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> Number v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "at offset %d: %s" p msg)

(* --- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string_value = function String s -> Some s | _ -> None
let to_number = function Number v -> Some v | _ -> None
