type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_name = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

type code =
  (* PX0xx: threshold sets (paper §2) *)
  | PX001
  | PX002
  | PX003
  | PX004
  (* PX1xx: netlist structure *)
  | PX100
  | PX101
  | PX102
  | PX103
  | PX104
  | PX105
  | PX106
  | PX107
  | PX108
  | PX110
  | PX111
  | PX112
  | PX113
  (* PX2xx: characterized model stores *)
  | PX201
  | PX202
  | PX203
  | PX204
  | PX205
  | PX206
  | PX207
  | PX208
  (* PX3xx: static proximity verification (interval analysis) *)
  | PX301
  | PX302
  | PX303
  | PX304
  (* PX4xx: static hazard analysis (§6 minimum separation) *)
  | PX401
  | PX402
  | PX403
  | PX404
  (* PX5xx: static sensitization analysis (ternary implication engine) *)
  | PX501
  | PX502
  | PX503
  | PX504

let all_codes =
  [
    PX001; PX002; PX003; PX004;
    PX100; PX101; PX102; PX103; PX104; PX105; PX106; PX107; PX108;
    PX110; PX111; PX112; PX113;
    PX201; PX202; PX203; PX204; PX205; PX206; PX207; PX208;
    PX301; PX302; PX303; PX304;
    PX401; PX402; PX403; PX404;
    PX501; PX502; PX503; PX504;
  ]

let code_name = function
  | PX001 -> "PX001"
  | PX002 -> "PX002"
  | PX003 -> "PX003"
  | PX004 -> "PX004"
  | PX100 -> "PX100"
  | PX101 -> "PX101"
  | PX102 -> "PX102"
  | PX103 -> "PX103"
  | PX104 -> "PX104"
  | PX105 -> "PX105"
  | PX106 -> "PX106"
  | PX107 -> "PX107"
  | PX108 -> "PX108"
  | PX110 -> "PX110"
  | PX111 -> "PX111"
  | PX112 -> "PX112"
  | PX113 -> "PX113"
  | PX201 -> "PX201"
  | PX202 -> "PX202"
  | PX203 -> "PX203"
  | PX204 -> "PX204"
  | PX205 -> "PX205"
  | PX206 -> "PX206"
  | PX207 -> "PX207"
  | PX208 -> "PX208"
  | PX301 -> "PX301"
  | PX302 -> "PX302"
  | PX303 -> "PX303"
  | PX304 -> "PX304"
  | PX401 -> "PX401"
  | PX402 -> "PX402"
  | PX403 -> "PX403"
  | PX404 -> "PX404"
  | PX501 -> "PX501"
  | PX502 -> "PX502"
  | PX503 -> "PX503"
  | PX504 -> "PX504"

let code_of_name s = List.find_opt (fun c -> code_name c = s) all_codes

let default_severity = function
  | PX001 | PX002 | PX003 -> Error
  | PX004 -> Warning
  | PX100 | PX101 | PX102 | PX103 | PX104 | PX105 | PX106 | PX107 | PX108 ->
    Error
  | PX110 | PX111 | PX112 | PX113 -> Warning
  | PX201 | PX202 | PX203 | PX207 -> Error
  | PX204 | PX205 | PX206 -> Warning
  | PX208 -> Info
  | PX303 -> Error
  | PX301 | PX302 | PX304 -> Warning
  | PX401 | PX402 | PX404 -> Warning
  | PX403 -> Info
  | PX501 | PX502 -> Warning
  | PX503 | PX504 -> Info

let code_doc = function
  | PX001 ->
    "negative-delay threshold hazard: a VTC switching threshold Vm falls \
     outside (Vil, Vih), so measured delays can be negative (paper §2)"
  | PX002 ->
    "threshold set disagrees with the family rule Vil = min Vil, Vih = max \
     Vih over all 2^n-1 VTCs (paper §2)"
  | PX003 -> "broken threshold ordering: expected 0 <= Vil < Vih <= Vdd"
  | PX004 -> "degenerate VTC curve: unity-gain points collapsed (Vil = Vih)"
  | PX100 -> "netlist syntax error"
  | PX101 -> "duplicate cell name"
  | PX102 -> "cell arity disagrees with its gate's fan-in"
  | PX103 -> "net driven by more than one cell"
  | PX104 -> "primary input driven by a cell"
  | PX105 -> "net read but never driven and not a primary input"
  | PX106 -> "combinational cycle"
  | PX107 -> "primary output neither driven nor a primary input"
  | PX108 -> "missing 'design' directive"
  | PX110 -> "cell output read by nothing and not a primary output"
  | PX111 -> "primary input read by no cell"
  | PX112 -> "fanout outlier: net drives more pins than the configured limit"
  | PX113 -> "primary output unreachable from any primary input"
  | PX201 -> "non-finite (NaN/inf) entry in a characterized table"
  | PX202 -> "non-positive single-input delay/transition sample"
  | PX203 -> "table grid axis not strictly increasing"
  | PX204 ->
    "dual-input ratio surface does not saturate to 1 outside the proximity \
     window"
  | PX205 -> "characterized axis range too narrow to cover realistic queries"
  | PX206 ->
    "dominance inconsistency: the (a,b) and (b,a) dual tables disagree at \
     the s_ab = Delta_a - Delta_b crossover"
  | PX207 -> "dual table references a pin/edge with no single-input table"
  | PX208 -> "incomplete single-table coverage over the gate's pins/edges"
  | PX301 ->
    "separation interval straddles the dominance crossover s_ab = Delta_a - \
     Delta_b: the delay estimate is discontinuity-sensitive"
  | PX302 ->
    "reachable transition-time interval exceeds the characterized table \
     coverage: queries extrapolate (clamp) silently"
  | PX303 ->
    "interval lower bound yields a negative pin-to-output delay under the \
     §2 thresholds"
  | PX304 ->
    "unconstrained primary input feeds a proximity-sensitive cone: the \
     analysis assumes it is quiet"
  | PX401 ->
    "static hazard possible: an opposing-edge input pair can beat the §6 \
     minimum-separation filter, so the cell output may glitch"
  | PX402 ->
    "a possible glitch reaches a primary output within its observability \
     window (nonnegative required-time slack along the fanout cone)"
  | PX403 ->
    "filtered hazard within the widening band: the worst-case separation \
     clears the §6 filter threshold by less than the margin"
  | PX404 ->
    "unconstrained primary input feeds a glitch-capable cone: an event on \
     it could create an opposing-edge pair the analysis has not seen"
  | PX501 ->
    "statically-constant net feeds a proximity-sensitive cone: the ternary \
     constant propagation pinned its value, so downstream pairs involving \
     it can never switch together"
  | PX502 ->
    "unsensitizable critical-path segment: every switching input pair of \
     the cell fails static sensitization, so the proximity arc is a false \
     path"
  | PX503 ->
    "input pair pruned by implication: no consistent side-input assignment \
     lets both pins switch (witness cube attached)"
  | PX504 ->
    "implication budget exhausted: the recursive-learning cone exceeded \
     the depth/support limit, so the pair conservatively stays sensitizable"

type location = {
  file : string option;
  line : int option;
  col : int option;
  context : string option;
}

let no_loc = { file = None; line = None; col = None; context = None }

type t = {
  code : code;
  severity : severity;
  location : location;
  message : string;
}

let make ?severity ?file ?line ?col ?context code fmt =
  Printf.ksprintf
    (fun message ->
      {
        code;
        severity = Option.value severity ~default:(default_severity code);
        location = { file; line; col; context };
        message;
      })
    fmt

(* --- ordering and summaries ----------------------------------------- *)

let sort diags =
  (* total order by (file, line, col, code, severity, context, message):
     two distinct diagnostics never compare equal, so the report order is
     fully deterministic whatever order the passes emitted them in *)
  List.stable_sort
    (fun a b ->
      let cmp =
        List.find_opt
          (fun c -> c <> 0)
          [
            compare a.location.file b.location.file;
            compare a.location.line b.location.line;
            compare a.location.col b.location.col;
            compare (code_name a.code) (code_name b.code);
            compare a.severity b.severity;
            compare a.location.context b.location.context;
            compare a.message b.message;
          ]
      in
      Option.value cmp ~default:0)
    diags

let count diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let worst diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when s >= d.severity -> acc
      | Some _ | None -> Some d.severity)
    None diags

let exit_code ?(fail_on = Warning) diags =
  match worst diags with
  | Some Error -> 2
  | Some Warning -> if fail_on = Error then 0 else 1
  | Some Info | None -> 0

let filter_codes codes diags =
  match codes with
  | [] -> diags
  | _ -> List.filter (fun d -> List.mem d.code codes) diags

(* --- text reporter --------------------------------------------------- *)

let pp ppf d =
  let where =
    let colpart =
      match d.location.col with
      | Some c -> Printf.sprintf ":%d" c
      | None -> ""
    in
    match (d.location.file, d.location.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d%s: " f l colpart
    | Some f, None -> f ^ ": "
    | None, Some l -> Printf.sprintf "line %d%s: " l colpart
    | None, None -> ""
  in
  let ctx =
    match d.location.context with
    | Some c -> Printf.sprintf " [%s]" c
    | None -> ""
  in
  Format.fprintf ppf "%s%s[%s]: %s%s" where
    (severity_name d.severity)
    (code_name d.code) d.message ctx

let report_text diags =
  let buf = Buffer.create 512 in
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" pp d))
    (sort diags);
  let e, w, i = count diags in
  Buffer.add_string buf
    (Printf.sprintf "%d error%s, %d warning%s, %d info%s\n" e
       (if e = 1 then "" else "s")
       w
       (if w = 1 then "" else "s")
       i
       (if i = 1 then "" else "s"));
  Buffer.contents buf

(* --- JSON reporter ---------------------------------------------------- *)

let to_json d =
  let base =
    [
      ("code", Json.String (code_name d.code));
      ("severity", Json.String (severity_name d.severity));
      ("message", Json.String d.message);
    ]
  in
  let opt name conv v =
    match v with Some v -> [ (name, conv v) ] | None -> []
  in
  Json.Obj
    (base
    @ opt "file" (fun f -> Json.String f) d.location.file
    @ opt "line" (fun l -> Json.Number (float_of_int l)) d.location.line
    @ opt "col" (fun c -> Json.Number (float_of_int c)) d.location.col
    @ opt "context" (fun c -> Json.String c) d.location.context)

let of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_value in
  match (str "code", str "severity", str "message") with
  | Some code_s, Some sev_s, Some message -> (
    match (code_of_name code_s, severity_of_name sev_s) with
    | Some code, Some severity ->
      Ok
        {
          code;
          severity;
          message;
          location =
            {
              file = str "file";
              line =
                Option.map int_of_float
                  (Option.bind (Json.member "line" j) Json.to_number);
              col =
                Option.map int_of_float
                  (Option.bind (Json.member "col" j) Json.to_number);
              context = str "context";
            };
        }
    | None, _ -> Error (Printf.sprintf "unknown diagnostic code %S" code_s)
    | _, None -> Error (Printf.sprintf "unknown severity %S" sev_s))
  | _ -> Error "diagnostic object needs code, severity and message fields"

let report_json diags =
  let e, w, i = count diags in
  Json.Obj
    [
      ("diagnostics", Json.List (List.map to_json (sort diags)));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Number (float_of_int e));
            ("warnings", Json.Number (float_of_int w));
            ("infos", Json.Number (float_of_int i));
          ] );
    ]

let report_json_string diags = Json.to_string (report_json diags)

(* --- SARIF 2.1.0 reporter --------------------------------------------- *)

(* Static Analysis Results Interchange Format, the schema GitHub code
   scanning ingests.  One run, one tool ("proxim"), one rule per distinct
   code present in the report (ruleIndex points into that array), one
   result per diagnostic.  Severities map onto SARIF levels: Error ->
   "error", Warning -> "warning", Info -> "note". *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let sarif_version = "2.1.0"
let sarif_schema = "https://json.schemastore.org/sarif-2.1.0.json"

let report_sarif ?(tool_version = "1.0.0") diags =
  let diags = sort diags in
  let rule_codes =
    List.filter (fun c -> List.exists (fun d -> d.code = c) diags) all_codes
  in
  let rule_index c =
    let rec go i = function
      | [] -> assert false (* every result's code is in [rule_codes] *)
      | c' :: tl -> if c = c' then i else go (i + 1) tl
    in
    go 0 rule_codes
  in
  let rules =
    List.map
      (fun c ->
        Json.Obj
          [
            ("id", Json.String (code_name c));
            ( "shortDescription",
              Json.Obj [ ("text", Json.String (code_doc c)) ] );
            ( "defaultConfiguration",
              Json.Obj
                [ ("level", Json.String (sarif_level (default_severity c))) ]
            );
          ])
      rule_codes
  in
  let result d =
    let message =
      match d.location.context with
      | Some ctx -> d.message ^ " [" ^ ctx ^ "]"
      | None -> d.message
    in
    let location =
      match d.location.file with
      | None -> []
      | Some f ->
        let region =
          (match d.location.line with
           | Some l -> [ ("startLine", Json.Number (float_of_int l)) ]
           | None -> [])
          @
          match d.location.col with
          | Some c -> [ ("startColumn", Json.Number (float_of_int c)) ]
          | None -> []
        in
        let physical =
          ("artifactLocation", Json.Obj [ ("uri", Json.String f) ])
          :: (if region = [] then [] else [ ("region", Json.Obj region) ])
        in
        [
          ( "locations",
            Json.List
              [ Json.Obj [ ("physicalLocation", Json.Obj physical) ] ] );
        ]
    in
    Json.Obj
      ([
         ("ruleId", Json.String (code_name d.code));
         ("ruleIndex", Json.Number (float_of_int (rule_index d.code)));
         ("level", Json.String (sarif_level d.severity));
         ("message", Json.Obj [ ("text", Json.String message) ]);
       ]
      @ location)
  in
  Json.Obj
    [
      ("$schema", Json.String sarif_schema);
      ("version", Json.String sarif_version);
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "proxim");
                            ("version", Json.String tool_version);
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List (List.map result diags));
              ];
          ] );
    ]

let report_sarif_string ?tool_version diags =
  Json.to_string (report_sarif ?tool_version diags)
