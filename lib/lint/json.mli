(** A minimal JSON tree, emitter and recursive-descent parser.

    The diagnostics JSON reporter must not pull a new dependency into the
    build (the repo's rule is stdlib + already-vendored opam packages
    only), so this module provides the small slice of JSON the lint
    subsystem needs: exact emission of machine-readable reports, and
    enough parsing for tests and downstream tools to round-trip them.

    Numbers are represented as [float]; integral values are emitted
    without a fractional part, and non-finite values (which JSON cannot
    represent) are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, RFC 8259 string escaping. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and a
    reason.  Handles the full value grammar including [\u] escapes
    (decoded to UTF-8); duplicate object keys are kept in order. *)

val member : string -> t -> t option
(** First field of that name when the value is an [Obj]. *)

val to_list : t -> t list option
val to_string_value : t -> string option
val to_number : t -> float option
