(** Whole-design static glitch/hazard analysis via the paper's §6
    minimum-separation rule.

    The §6 experiment shows inertial delay is a proximity phenomenon:
    a falling+rising input pair produces an output glitch that completes
    a transition only when the pair's oriented separation reaches the
    gate's minimum separation.  This module lifts that rule to a
    dataflow analysis over the timing-graph IR:

    {b Forward pass.}  Every net carries {e edge-pair windows} — an
    optional rise window and an optional fall window, each an arrival /
    slew interval box ({!Proxim_verify.Interval}) — plus a three-valued
    initial/final logic value.  Same-edge input groups propagate through
    {!Proxim_verify.Verify.abstract_response} (the PR-4 interval
    transfer, exact on degenerate windows); opposing-edge pairs are
    tested against a §6 minimum-separation {!rule}, classifying each
    window-bearing cell {!Never} / {!Filtered} / {!May_glitch}.  A
    filtered static hazard with definite boolean levels {e kills} the
    output windows — the §6 filter proving quiet nets downstream.

    {b Backward pass.}  Required times propagate from the primary
    outputs against lower-bound single-input delays, so each may-glitch
    cell gets an interval slack: can the glitch reach an endpoint inside
    its observability window ({!Graph.fanout_cone} reconstructs the
    cone)?

    {b Semantic model} (documented approximations): quiet inputs sit at
    the consuming gate's non-controlling level (the characterization
    convention shared with [Sta]/[Verify]); a mixed-edge cell is
    decomposed into independent same-edge groups plus the §6 pairwise
    opposing rule; filtered excursions are timing-neutral (§6 models
    completion, not the residual perturbation).  Gates are monotone
    series/parallel networks, so same-edge groups alone never glitch. *)

module Interval = Proxim_verify.Interval

type awin = {
  w_time : Interval.t;  (** threshold-crossing window, s *)
  w_slew : Interval.t;  (** full-swing transition-time window, s *)
}
(** One edge's arrival window on a net. *)

type logic = L0 | L1 | LX

type net_state = {
  ns_rise : awin option;
  ns_fall : awin option;
  ns_init : logic;  (** boolean level before any event *)
  ns_final : logic;  (** boolean level after all events settle *)
}

type verdict = Never | Filtered | May_glitch
(** The §6 lattice for a window-bearing cell:
    - [Never]: no opposing-edge input pair can form, so no glitch
      stimulus exists;
    - [Filtered]: opposing pairs exist but every one provably misses the
      minimum separation — the inertial filter absorbs the glitch;
    - [May_glitch]: some pair may reach it. *)

val verdict_name : verdict -> string
(** ["never"] / ["filtered"] / ["may-glitch"]. *)

type pair = {
  hp_fall_pin : int;
  hp_rise_pin : int;
  hp_starter_edge : Proxim_measure.Measure.edge;
      (** edge of the input that starts the excursion in the governing
          orientation (Rise for a rest-high output, Fall for rest-low) *)
  hp_sep : Interval.t;
      (** oriented separation [t_ender - t_starter], s *)
  hp_min_sep : Interval.t;  (** §6 minimum-separation bounds, s *)
  hp_filtered : bool;  (** [hi hp_sep < lo hp_min_sep] *)
  hp_margin : float;
      (** [lo hp_min_sep - hi hp_sep]: how far the worst case clears the
          filter (positive iff filtered) — the PX403 band test *)
}
(** One opposing-edge input pair of a cell (the same pin appears on both
    sides when a single input net carries a pulse).  When the output
    resting level is unknown both orientations are evaluated and the
    least-filtered one is kept. *)

type cell_report = {
  hc_name : string;
  hc_gate : string;
  hc_verdict : verdict;
  hc_pairs : pair list;
  hc_out_rise : awin option;  (** output windows after §6 refinement *)
  hc_out_fall : awin option;
  hc_glitch : Interval.t option;
      (** excursion-time window of the possible glitch ([May_glitch]
          only) *)
  hc_reaches : string list;
      (** primary outputs in the cell's fanout cone *)
  hc_slack : Interval.t option;
      (** required-time slack of the glitch at the cell output:
          [required - glitch time] ([May_glitch] with a reachable
          endpoint only) *)
  hc_observable : bool;
      (** the glitch can reach an endpoint within its observability
          window ([hi slack >= 0]) — the PX402 trigger *)
  hc_quiet : bool;
      (** sound for {!quiet_mask}: every admissible concrete run gives
          this cell at most one switching input, or a same-edge group
          with a provably dominant input *)
}

type t
(** A completed hazard analysis. *)

(** {1 The §6 rule} *)

type rule =
  Proxim_sta.Design.cell ->
  Proxim_macromodel.Models.t ->
  starter_pin:int ->
  starter_edge:Proxim_measure.Measure.edge ->
  ender_pin:int ->
  tau_starter:float * float ->
  tau_ender:float * float ->
  float * float
(** Bounds on the minimum oriented separation [sigma_min]: the glitch
    started by [starter_pin] and recovered by [ender_pin] completes a
    transition exactly when [t_ender - t_starter >= sigma_min].  Both
    tau axes are interval boxes; the result must be conservative over
    them. *)

val model_rule : rule
(** The macromodel surrogate:
    {!Proxim_macromodel.Models.min_separation_bounds} (single-input
    delay/transition composition with spread widening).  The default —
    microsecond-cheap, defined for every model kind, and exact in shape
    for the synthetic models the randomized suites use. *)

val inertial_rule :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  unit ->
  rule
(** The golden-simulator rule: bisect
    {!Proxim_core.Inertial.minimum_valid_separation} at the corners of
    the tau box and widen the observed spread (the
    [Models.delay1_bounds] sampling idiom).  Bisections are memoized per
    (gate, pins, taus).  Orientations that disagree with the gate's
    physical resting polarity, and same-pin pulse pairs (which the
    two-pin simulation cannot drive), fall back conservatively — the
    former never complete, the latter use {!model_rule}.  When the
    bisection cannot bracket, a probe at the favorable end of the search
    window decides between never-completes and always-completes. *)

(** {1 Analysis} *)

val analyze :
  ?mode:Proxim_sta.Sta.mode ->
  ?filter_margin:float ->
  ?required:float ->
  ?rule:rule ->
  models:(Proxim_sta.Design.cell -> Proxim_macromodel.Models.t) ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  Proxim_sta.Design.t ->
  pi:Proxim_verify.Verify.pi_event list ->
  t
(** Forward edge-pair-window pass + backward required-time pass.

    [pi] events may mix edges freely (unlike [Sta]/[Verify]); two events
    on one net give it both windows (a pulse).  Events on unknown nets
    are inert; events on cell-driven nets raise [Invalid_argument], as
    does [Collapsed] mode.  [mode] (default [Proximity]) selects the
    same-edge group transfer.  [filter_margin] (default 25 ps) is the
    PX403 band: filtered pairs clearing the threshold by less are
    reported.  [required] is the primary-output required time for the
    backward pass; it defaults to the latest upper arrival bound in the
    design (every reachable glitch observable).  [rule] defaults to
    {!model_rule}. *)

val design : t -> Proxim_sta.Design.t

val cell_report : t -> cell:string -> cell_report option
(** [None] for unknown or windowless cells. *)

val cells : t -> cell_report list
(** Every window-bearing cell's report, topological order. *)

val net_state : t -> net:string -> net_state option

val unconstrained_pis : t -> string list
(** Primary inputs carrying no event whose fanout cone contains a
    window-bearing multi-input cell — the PX404 trigger (an event there
    could create an opposing pair this analysis has not seen). *)

val required : t -> float
(** The endpoint required time the backward pass used. *)

type summary = {
  total_cells : int;
  classified : int;  (** window-bearing cells *)
  never : int;
  filtered : int;
  may_glitch : int;
  observable : int;  (** may-glitch cells whose glitch reaches a PO *)
}

val summary : t -> summary

(** {1 Consumers} *)

val quiet_mask : t -> Proxim_sta.Design.cell -> bool
(** A prune mask for {!Proxim_sta.Sta.build_ir}'s [?prune], in the mold
    of [Verify.prune_mask]: [true] for cells that in {e every}
    admissible concrete run (primary-input events inside the analyzed
    windows) have at most one switching input, or a same-edge input
    group with a provably dominant input — exactly the cases where the
    pruned fast path reproduces the full fold bit-for-bit. *)

type refinement = { refined_pairs : int; refined_cells : int }
(** How many opposing pairs a {!refine} pass discarded and how many
    cells thereby lost their [May_glitch] verdict. *)

val refine :
  t ->
  impossible:(cell:string -> a:int -> b:int -> bool) ->
  t * refinement
(** Sharpen the verdicts with a static-sensitization oracle (see
    [Proxim_sense]): an opposing-edge pair whose two pins the oracle
    proves can never both carry events under any consistent logic
    assignment is discarded, and the cell's verdict is recomputed from
    the surviving pairs ([Never] when none remain, [Filtered] when all
    survivors are filtered).  Same-pin pulse pairs are always kept — a
    pulse is not a two-frame value change, so the oracle has nothing
    sound to say about it.  A purely re-labeling post-pass: the window
    dataflow, {!net_state} and {!quiet_mask} are untouched (the mask's
    STA fast-path contract rests on the timing analysis alone), so a
    refined analysis stays conservative downstream.  Reporting
    ({!cells}, {!summary}, {!check}, {!report_text}) reflects the
    refined verdicts. *)

val check : ?file:string -> t -> Proxim_lint.Diagnostic.t list
(** The PX4xx findings, sorted: [PX401] per may-glitch cell (its
    governing pair's separation vs the minimum), [PX402] per observable
    may-glitch cell (ranked by slack in the message), [PX403] per
    filtered pair inside the widening band, [PX404] per sensitive quiet
    primary input. *)

val report_text : t -> string
(** Human summary: verdict counts, then may-glitch cells ranked by
    endpoint slack. *)
