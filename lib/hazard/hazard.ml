module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Inertial = Proxim_core.Inertial
module Graph = Proxim_timing.Graph
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Diagnostic = Proxim_lint.Diagnostic
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics
module Interval = Proxim_verify.Interval
module Verify = Proxim_verify.Verify

let c_classified = Metrics.Counter.v "hazard.cells_classified"
let c_may = Metrics.Counter.v "hazard.may_glitch"

(* --- windows and values ------------------------------------------------ *)

type awin = { w_time : Interval.t; w_slew : Interval.t }

type logic = L0 | L1 | LX

type net_state = {
  ns_rise : awin option;
  ns_fall : awin option;
  ns_init : logic;
  ns_final : logic;
}

type verdict = Never | Filtered | May_glitch

let verdict_name = function
  | Never -> "never"
  | Filtered -> "filtered"
  | May_glitch -> "may-glitch"

type pair = {
  hp_fall_pin : int;
  hp_rise_pin : int;
  hp_starter_edge : Measure.edge;
  hp_sep : Interval.t;
  hp_min_sep : Interval.t;
  hp_filtered : bool;
  hp_margin : float;
}

type cell_report = {
  hc_name : string;
  hc_gate : string;
  hc_verdict : verdict;
  hc_pairs : pair list;
  hc_out_rise : awin option;
  hc_out_fall : awin option;
  hc_glitch : Interval.t option;
  hc_reaches : string list;
  hc_slack : Interval.t option;
  hc_observable : bool;
  hc_quiet : bool;
}

type t = {
  h_design : Design.t;
  h_nets : net_state option array;
  h_cells : cell_report option array;
  h_unconstrained : string list;
  h_required : float;
  h_filter_margin : float;
}

(* --- three-valued gate logic ------------------------------------------- *)

(* The pull-down network is a monotone series/parallel expression over
   positive pin literals, so one Kleene evaluation per state (initial /
   final) gives the output's boolean resting levels.  LX stands for "both
   states reachable" and propagates pessimistically. *)

let and3 a b =
  match (a, b) with L0, _ | _, L0 -> L0 | L1, L1 -> L1 | _ -> LX

let or3 a b = match (a, b) with L1, _ | _, L1 -> L1 | L0, L0 -> L0 | _ -> LX
let not3 = function L0 -> L1 | L1 -> L0 | LX -> LX

let rec conduct3 v = function
  | Gate.Pin p -> v p
  | Gate.Series l -> List.fold_left (fun acc n -> and3 acc (conduct3 v n)) L1 l
  | Gate.Parallel l ->
    List.fold_left (fun acc n -> or3 acc (conduct3 v n)) L0 l

let out3 gate v = not3 (conduct3 v gate.Gate.pulldown)

(* --- the §6 minimum-separation rule ------------------------------------ *)

type rule =
  Design.cell ->
  Models.t ->
  starter_pin:int ->
  starter_edge:Measure.edge ->
  ender_pin:int ->
  tau_starter:float * float ->
  tau_ender:float * float ->
  float * float

let model_rule : rule =
 fun _cell m ~starter_pin ~starter_edge ~ender_pin ~tau_starter ~tau_ender ->
  Models.min_separation_bounds m ~starter_pin ~starter_edge ~ender_pin
    ~tau_starter ~tau_ender

(* corner sampling + spread widening, the Models.delay1_bounds idiom:
   exact on degenerate boxes, a curvature margin otherwise *)
let widen_frac = 0.25

let corner_bounds (lo_a, hi_a) (lo_b, hi_b) f =
  let axis (lo, hi) = if hi > lo then [ lo; hi ] else [ lo ] in
  let vs =
    List.concat_map (fun a -> List.map (fun b -> f a b) (axis (lo_b, hi_b)))
      (axis (lo_a, hi_a))
  in
  let lo = List.fold_left min infinity vs
  and hi = List.fold_left max neg_infinity vs in
  (* [hi > lo] also guards the infinite sentinels: widening a degenerate
     [+inf] box would produce NaN bounds *)
  let m = if hi > lo then widen_frac *. (hi -. lo) else 0. in
  (lo -. m, hi +. m)

let inertial_rule ?opts ?load ~thresholds () : rule =
  let memo : (string * int * int * float * float, float) Hashtbl.t =
    Hashtbl.create 64
  in
  fun cell m ~starter_pin ~starter_edge ~ender_pin ~tau_starter ~tau_ender ->
    let gate = cell.Design.gate in
    (* orient back to Inertial's physical fall/rise convention *)
    let fall_pin, rise_pin =
      match starter_edge with
      | Measure.Rise -> (ender_pin, starter_pin)
      | Measure.Fall -> (starter_pin, ender_pin)
    in
    if fall_pin = rise_pin then
      (* a pulse re-converging on one pin: the two-pin simulation cannot
         drive it, so fall back to the macromodel surrogate *)
      Models.min_separation_bounds m ~starter_pin ~starter_edge ~ender_pin
        ~tau_starter ~tau_ender
    else begin
      let rests_high = Inertial.rests_high gate thresholds ~fall_pin ~rise_pin in
      let physical_starter =
        if rests_high then Measure.Rise else Measure.Fall
      in
      if physical_starter <> starter_edge then
        (* the requested excursion polarity does not exist for this gate:
           the glitch in that orientation never completes *)
        (infinity, infinity)
      else begin
        (* sep (Inertial) is t_rise - t_fall; the oriented separation is
           t_ender - t_starter *)
        let sigma_of_sep sep =
          match starter_edge with Measure.Rise -> -.sep | Measure.Fall -> sep
        in
        let sigma_min ~tau_fall ~tau_rise =
          let key = (gate.Gate.name, fall_pin, rise_pin, tau_fall, tau_rise) in
          match Hashtbl.find_opt memo key with
          | Some v -> v
          | None ->
            let v =
              match
                Inertial.minimum_valid_separation ?opts ?load gate thresholds
                  ~fall_pin ~rise_pin ~tau_fall ~tau_rise
              with
              | root -> sigma_of_sep root
              | exception Failure _ ->
                (* no bracket: the glitch either never or always
                   completes in the search window; one probe at the
                   completion-favorable end decides which *)
                let probe = if rests_high then -3e-9 else 3e-9 in
                let g =
                  Inertial.glitch ?opts ?load gate thresholds ~fall_pin
                    ~rise_pin ~tau_fall ~tau_rise ~sep:probe
                in
                if g.Inertial.full_swing then neg_infinity else infinity
            in
            Hashtbl.add memo key v;
            v
        in
        let tau_fall_box, tau_rise_box =
          match starter_edge with
          | Measure.Rise -> (tau_ender, tau_starter)
          | Measure.Fall -> (tau_starter, tau_ender)
        in
        corner_bounds tau_fall_box tau_rise_box (fun tau_fall tau_rise ->
          sigma_min ~tau_fall ~tau_rise)
      end
    end

(* --- forward pass ------------------------------------------------------- *)

(* per-cell forward result, completed by the backward pass *)
type fwd = {
  f_cell : Design.cell;
  f_model : Models.t;
  f_pairs : pair list;
  f_verdict : verdict;
  f_out_rise : awin option;
  f_out_fall : awin option;
  f_glitch : Interval.t option;
  f_wins : (int * Measure.edge * awin) list;
      (* window-bearing input pins: (pin, edge, window) *)
  f_quiet : bool;
}

let win_of (r : Verify.aarrival) =
  { w_time = r.Verify.a_time; w_slew = r.Verify.a_slew }

let hull_win a b =
  {
    w_time = Interval.hull a.w_time b.w_time;
    w_slew = Interval.hull a.w_slew b.w_slew;
  }

(* the never-dominant lemma of Verify, restated over edge windows: with
   one same-edge window per switching input and input [i]'s transition
   window provably excluding every other input, the proximity fold
   degenerates to [i]'s single-input response *)
let never_dominant_wins m wins =
  let bnds (pin, edge, w) =
    let tau = Interval.pair w.w_slew in
    ( pin,
      w,
      Models.delay1_bounds m ~pin ~edge ~tau,
      Models.trans1_bounds m ~pin ~edge ~tau )
  in
  let bs = List.map bnds wins in
  let positive (_, _, (d_lo, _), (t_lo, _)) = d_lo > 0. && t_lo > 0. in
  List.for_all positive bs
  && List.exists
       (fun (pin, w, (_, d_hi), (_, t_hi)) ->
         let wnd = d_hi +. t_hi in
         List.for_all
           (fun (pin', w', _, _) ->
             pin' = pin
             || Interval.lo w'.w_time -. Interval.hi w.w_time >= wnd)
           bs)
       bs

let analyze ?(mode = Sta.Proximity) ?(filter_margin = 25e-12) ?required
    ?(rule = model_rule) ~models ~thresholds design ~pi =
  (match mode with
   | Sta.Collapsed _ ->
     invalid_arg "Proxim_hazard: Collapsed mode is not supported"
   | Sta.Classic | Sta.Proximity -> ());
  let g = Design.graph design in
  let th : Vtc.thresholds = thresholds in
  let half_vdd = th.Vtc.vdd /. 2. in
  let slew_scale = th.Vtc.vdd /. (th.Vtc.vih -. th.Vtc.vil) in
  let nets : net_state option array = Array.make (Graph.net_count g) None in
  (* seed the primary-input windows; several events may target one net
     (same edge: hulled; both edges: a pulse with unknown order) *)
  List.iter
    (fun (ev : Verify.pi_event) ->
      match Graph.net_id g ev.Verify.ev_net with
      | None -> () (* events for unknown nets are inert, as in Sta/Verify *)
      | Some id ->
        if Graph.driver g ~net:id <> None then
          invalid_arg
            ("Proxim_hazard.analyze: net " ^ ev.Verify.ev_net
           ^ " is driven by a cell")
        else begin
          let w = { w_time = ev.Verify.ev_time; w_slew = ev.Verify.ev_tau } in
          let prev =
            Option.value nets.(id)
              ~default:
                { ns_rise = None; ns_fall = None; ns_init = LX; ns_final = LX }
          in
          let merge = function None -> Some w | Some w0 -> Some (hull_win w0 w) in
          let ns =
            match ev.Verify.ev_edge with
            | Measure.Rise -> { prev with ns_rise = merge prev.ns_rise }
            | Measure.Fall -> { prev with ns_fall = merge prev.ns_fall }
          in
          let ns =
            match (ns.ns_rise, ns.ns_fall) with
            | Some _, None -> { ns with ns_init = L0; ns_final = L1 }
            | None, Some _ -> { ns with ns_init = L1; ns_final = L0 }
            | _ -> { ns with ns_init = LX; ns_final = LX }
          in
          nets.(id) <- Some ns
        end)
    pi;
  let fwds : fwd option array = Array.make (Graph.cell_count g) None in
  let process c =
    let cell = Graph.payload g c in
    let gate = cell.Design.gate in
    let ins = Graph.cell_inputs g c in
    let n = Array.length ins in
    let state p = nets.(ins.(p)) in
    let wins =
      List.concat
        (List.init n (fun p ->
           match state p with
           | None -> []
           | Some ns ->
             (match ns.ns_rise with
              | Some w -> [ (p, Measure.Rise, w) ]
              | None -> [])
             @
             (match ns.ns_fall with
              | Some w -> [ (p, Measure.Fall, w) ]
              | None -> [])))
    in
    if wins <> [] then begin
      let m = models cell in
      (* quiet inputs sit at the levels of a switching pin's sensitization
         vector — the Sta/Gate.switching_assist convention.  The vector's
         entry for the reference pin itself is always Vdd, so it must be a
         window-bearing pin, never a quiet one. *)
      let nc =
        let ref_pin = match wins with (p, _, _) :: _ -> p | [] -> assert false in
        Gate.noncontrolling_sensitization gate ~pin:ref_pin
      in
      let value which p =
        match state p with
        | Some ns -> (match which with `Init -> ns.ns_init | `Final -> ns.ns_final)
        | None -> if nc.(p) > half_vdd then L1 else L0
      in
      let init_out = out3 gate (value `Init) in
      let final_out = out3 gate (value `Final) in
      let rises = List.filter_map (function (p, Measure.Rise, w) -> Some (p, w) | _ -> None) wins in
      let falls = List.filter_map (function (p, Measure.Fall, w) -> Some (p, w) | _ -> None) wins in
      (* opposing-edge pairs, oriented by the output resting level; an
         unknown resting level evaluates both orientations and keeps the
         least-filtered one *)
      let orientations =
        match init_out with
        | L1 -> [ `Rise_starts ]
        | L0 -> [ `Fall_starts ]
        | LX -> [ `Rise_starts; `Fall_starts ]
      in
      let pair_of (fp, fw) (rp, rw) =
        let candidate = function
          | `Rise_starts ->
            let sep = Interval.sub fw.w_time rw.w_time in
            let ms =
              rule cell m ~starter_pin:rp ~starter_edge:Measure.Rise
                ~ender_pin:fp ~tau_starter:(Interval.pair rw.w_slew)
                ~tau_ender:(Interval.pair fw.w_slew)
            in
            (Measure.Rise, sep, Interval.of_pair ms)
          | `Fall_starts ->
            let sep = Interval.sub rw.w_time fw.w_time in
            let ms =
              rule cell m ~starter_pin:fp ~starter_edge:Measure.Fall
                ~ender_pin:rp ~tau_starter:(Interval.pair fw.w_slew)
                ~tau_ender:(Interval.pair rw.w_slew)
            in
            (Measure.Fall, sep, Interval.of_pair ms)
        in
        let margin (_, sep, ms) = Interval.lo ms -. Interval.hi sep in
        let governing =
          match List.map candidate orientations with
          | [] -> assert false
          | c0 :: tl ->
            List.fold_left
              (fun acc c -> if margin c < margin acc then c else acc)
              c0 tl
        in
        let starter_edge, sep, ms = governing in
        let mg = margin governing in
        {
          hp_fall_pin = fp;
          hp_rise_pin = rp;
          hp_starter_edge = starter_edge;
          hp_sep = sep;
          hp_min_sep = ms;
          hp_filtered = mg > 0.;
          hp_margin = mg;
        }
      in
      let pairs = List.concat_map (fun f -> List.map (pair_of f) rises) falls in
      let verdict =
        if pairs = [] then Never
        else if List.for_all (fun p -> p.hp_filtered) pairs then Filtered
        else May_glitch
      in
      (* same-edge group transfers: output rise from the falling inputs,
         output fall from the rising ones (inverting monotone gates) *)
      let resp edge = function
        | [] -> None
        | group ->
          let inputs =
            List.map
              (fun (p, w) ->
                ( p,
                  {
                    Verify.a_time = w.w_time;
                    a_slew = w.w_slew;
                    a_edge = edge;
                  } ))
              group
          in
          Some (win_of (Verify.abstract_response ~mode m ~slew_scale ~edge inputs))
      in
      let out_rise_c = resp Measure.Fall falls in
      let out_fall_c = resp Measure.Rise rises in
      (* §6 refinement: with every pair filtered and definite boolean
         levels, only the net init->final transition can cross the
         thresholds — a static output loses its windows entirely *)
      let out_rise, out_fall =
        if verdict <> May_glitch && init_out <> LX && final_out <> LX then
          match (init_out, final_out) with
          | L0, L1 -> (out_rise_c, None)
          | L1, L0 -> (None, out_fall_c)
          | _ -> (None, None) (* static *)
        else (out_rise_c, out_fall_c)
      in
      let glitch =
        if verdict <> May_glitch then None
        else begin
          (* the excursion leaves the resting level: downward from a
             resting-high output (a fall window), upward from a
             resting-low one *)
          let of_win = Option.map (fun w -> w.w_time) in
          match init_out with
          | L1 -> of_win out_fall_c
          | L0 -> of_win out_rise_c
          | LX -> (
            match (of_win out_rise_c, of_win out_fall_c) with
            | Some a, Some b -> Some (Interval.hull a b)
            | (Some _ as s), None | None, (Some _ as s) -> s
            | None, None -> None)
        end
      in
      let quiet =
        let wpins = List.sort_uniq compare (List.map (fun (p, _, _) -> p) wins) in
        List.length wpins <= 1
        || (pairs = []
           && List.length wins = List.length wpins (* one edge per pin *)
           && (match wins with
              | [] -> true
              | (_, e0, _) :: rest ->
                (* the collapse lemma needs earliest-wins dominance:
                   a gating group (NAND-rising / NOR-falling) folds to
                   the *latest* input, which the pruned fast path does
                   not compute — mirror Verify's not-assist guard *)
                List.for_all (fun (_, e, _) -> e = e0) rest
                && m.Models.assist ~edge:e0
                     ~pins:(List.map (fun (p, _, _) -> p) wins))
           && never_dominant_wins m wins)
      in
      nets.(Graph.cell_output g c) <-
        Some
          {
            ns_rise = out_rise;
            ns_fall = out_fall;
            ns_init = init_out;
            ns_final = final_out;
          };
      fwds.(c) <-
        Some
          {
            f_cell = cell;
            f_model = m;
            f_pairs = pairs;
            f_verdict = verdict;
            f_out_rise = out_rise;
            f_out_fall = out_fall;
            f_glitch = glitch;
            f_wins = wins;
            f_quiet = quiet;
          }
    end
  in
  let topo = Graph.topological g in
  Trace.with_span ~cat:"hazard" "hazard.propagate" (fun () ->
    Array.iter process topo);
  (* backward pass: latest time an event on a net can still reach a
     primary output by the required time, through lower-bound
     single-input delays along window-bearing paths *)
  let required_time =
    match required with
    | Some r -> r
    | None ->
      Array.fold_left
        (fun acc -> function
          | None -> acc
          | Some ns ->
            let top acc = function
              | None -> acc
              | Some w -> Float.max acc (Interval.hi w.w_time)
            in
            top (top acc ns.ns_rise) ns.ns_fall)
        0. nets
  in
  let r_net = Array.make (Graph.net_count g) neg_infinity in
  Trace.with_span ~cat:"hazard" "hazard.required" (fun () ->
    Array.iter (fun po -> r_net.(po) <- required_time) (Graph.primary_outputs g);
    for i = Array.length topo - 1 downto 0 do
      let c = topo.(i) in
      match fwds.(c) with
      | None -> ()
      | Some f ->
        let o = Graph.cell_output g c in
        if r_net.(o) > neg_infinity
           && (f.f_out_rise <> None || f.f_out_fall <> None)
        then begin
          let ins = Graph.cell_inputs g c in
          List.iter
            (fun (p, edge, w) ->
              let d_lo, _ =
                Models.delay1_bounds f.f_model ~pin:p ~edge
                  ~tau:(Interval.pair w.w_slew)
              in
              let net = ins.(p) in
              r_net.(net) <- Float.max r_net.(net) (r_net.(o) -. d_lo))
            f.f_wins
        end
    done);
  (* assemble reports: endpoint reachability and slacks for the
     may-glitch cells *)
  let reports : cell_report option array =
    Array.map
      (Option.map (fun f ->
         let c =
           match Graph.cell_id g f.f_cell.Design.name with
           | Some c -> c
           | None -> assert false
         in
         let o = Graph.cell_output g c in
         let reaches, slack, observable =
           if f.f_verdict <> May_glitch then ([], None, false)
           else begin
             let cone = Graph.fanout_cone g ~nets:[ o ] ~cells:[ c ] in
             let reaches =
               Array.to_list (Graph.primary_outputs g)
               |> List.filter (fun po ->
                    po = o
                    || (match Graph.driver g ~net:po with
                       | Some d -> cone.(d)
                       | None -> false))
               |> List.map (Graph.net_name g)
             in
             let slack =
               match f.f_glitch with
               | Some gw when r_net.(o) > neg_infinity ->
                 Some (Interval.sub (Interval.exact r_net.(o)) gw)
               | _ -> None
             in
             let observable =
               match slack with Some s -> Interval.hi s >= 0. | None -> false
             in
             (reaches, slack, observable)
           end
         in
         {
           hc_name = f.f_cell.Design.name;
           hc_gate = f.f_cell.Design.gate.Gate.name;
           hc_verdict = f.f_verdict;
           hc_pairs = f.f_pairs;
           hc_out_rise = f.f_out_rise;
           hc_out_fall = f.f_out_fall;
           hc_glitch = f.f_glitch;
           hc_reaches = reaches;
           hc_slack = slack;
           hc_observable = observable;
           hc_quiet = f.f_quiet;
         }))
      fwds
  in
  (* quiet primary inputs feeding a cone where an event could create an
     opposing pair the analysis has not seen (the PX304 pattern) *)
  let unconstrained =
    Array.to_list (Graph.primary_inputs g)
    |> List.filter_map (fun net ->
         if nets.(net) <> None then None
         else begin
           let cone = Graph.fanout_cone g ~nets:[ net ] ~cells:[] in
           let sensitive =
             Array.exists
               (fun c ->
                 cone.(c) && fwds.(c) <> None
                 && (Graph.payload g c).Design.gate.Gate.fan_in >= 2)
               (Array.init (Graph.cell_count g) Fun.id)
           in
           if sensitive then Some (Graph.net_name g net) else None
         end)
  in
  let classified = Array.fold_left (fun n f -> if f <> None then n + 1 else n) 0 fwds in
  let may =
    Array.fold_left
      (fun n -> function
        | Some f when f.f_verdict = May_glitch -> n + 1
        | _ -> n)
      0 fwds
  in
  Metrics.Counter.add c_classified classified;
  Metrics.Counter.add c_may may;
  {
    h_design = design;
    h_nets = nets;
    h_cells = reports;
    h_unconstrained = unconstrained;
    h_required = required_time;
    h_filter_margin = filter_margin;
  }

(* --- accessors ---------------------------------------------------------- *)

let design t = t.h_design

let cell_report t ~cell =
  Option.bind (Graph.cell_id (Design.graph t.h_design) cell) (fun id ->
    t.h_cells.(id))

let cells t =
  Array.to_list (Graph.topological (Design.graph t.h_design))
  |> List.filter_map (fun c -> t.h_cells.(c))

let net_state t ~net =
  Option.bind (Graph.net_id (Design.graph t.h_design) net) (fun id ->
    t.h_nets.(id))

let unconstrained_pis t = t.h_unconstrained
let required t = t.h_required

type summary = {
  total_cells : int;
  classified : int;
  never : int;
  filtered : int;
  may_glitch : int;
  observable : int;
}

let summary t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some r ->
        let acc = { acc with classified = acc.classified + 1 } in
        let acc =
          if r.hc_observable then { acc with observable = acc.observable + 1 }
          else acc
        in
        (match r.hc_verdict with
         | Never -> { acc with never = acc.never + 1 }
         | Filtered -> { acc with filtered = acc.filtered + 1 }
         | May_glitch -> { acc with may_glitch = acc.may_glitch + 1 }))
    {
      total_cells = Array.length t.h_cells;
      classified = 0;
      never = 0;
      filtered = 0;
      may_glitch = 0;
      observable = 0;
    }
    t.h_cells

let quiet_mask t =
  let quiet = Hashtbl.create 64 in
  Array.iter
    (function
      | Some r when r.hc_quiet -> Hashtbl.replace quiet r.hc_name ()
      | Some _ | None -> ())
    t.h_cells;
  let windowless (cell : Design.cell) =
    (* a cell none of whose inputs carry a window never switches in an
       admissible run, so the fast path is never consulted *)
    match Graph.cell_id (Design.graph t.h_design) cell.Design.name with
    | None -> false
    | Some id -> t.h_cells.(id) = None
  in
  fun (cell : Design.cell) ->
    Hashtbl.mem quiet cell.Design.name || windowless cell

(* --- logic refinement --------------------------------------------------- *)

type refinement = { refined_pairs : int; refined_cells : int }

let refine t ~impossible =
  let n_pairs = ref 0 and n_cells = ref 0 in
  let refined =
    Array.map
      (function
        | None -> None
        | Some r ->
          let keep, dropped =
            List.partition
              (fun p ->
                (* a same-pin pulse pair has no two-pin sensitization
                   question to ask — always kept *)
                p.hp_fall_pin = p.hp_rise_pin
                || not
                     (impossible ~cell:r.hc_name ~a:p.hp_fall_pin
                        ~b:p.hp_rise_pin))
              r.hc_pairs
          in
          if dropped = [] then Some r
          else begin
            n_pairs := !n_pairs + List.length dropped;
            let verdict =
              if keep = [] then Never
              else if List.for_all (fun p -> p.hp_filtered) keep then Filtered
              else May_glitch
            in
            if r.hc_verdict = May_glitch && verdict <> May_glitch then
              incr n_cells;
            let demoted = verdict <> May_glitch in
            Some
              {
                r with
                hc_pairs = keep;
                hc_verdict = verdict;
                hc_glitch = (if demoted then None else r.hc_glitch);
                hc_slack = (if demoted then None else r.hc_slack);
                hc_observable = (if demoted then false else r.hc_observable);
              }
          end)
      t.h_cells
  in
  ( { t with h_cells = refined },
    { refined_pairs = !n_pairs; refined_cells = !n_cells } )

(* --- diagnostics -------------------------------------------------------- *)

let ps i = Interval.scale 1e12 i

let governing_pair r =
  match r.hc_pairs with
  | [] -> None
  | p0 :: tl ->
    Some
      (List.fold_left
         (fun acc p -> if p.hp_margin < acc.hp_margin then p else acc)
         p0 tl)

let check ?file t =
  Trace.with_span ~cat:"hazard" "hazard.check" @@ fun () ->
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iter
    (function
      | None -> ()
      | Some r ->
        (match (r.hc_verdict, governing_pair r) with
         | May_glitch, Some p ->
           add
             (Diagnostic.make ?file ~context:r.hc_name Diagnostic.PX401
                "static hazard possible: pins %d (fall) and %d (rise) reach \
                 oriented separation %s ps vs minimum %s ps — the §6 filter \
                 may not absorb the glitch"
                p.hp_fall_pin p.hp_rise_pin
                (Interval.to_string (ps p.hp_sep))
                (Interval.to_string (ps p.hp_min_sep)))
         | _ -> ());
        (if r.hc_observable then
           match r.hc_slack with
           | Some s ->
             add
               (Diagnostic.make ?file ~context:r.hc_name Diagnostic.PX402
                  "possible glitch can reach primary output%s %s within its \
                   observability window (endpoint slack %s ps)"
                  (if List.length r.hc_reaches = 1 then "" else "s")
                  (String.concat ", " r.hc_reaches)
                  (Interval.to_string (ps s)))
           | None -> ());
        if r.hc_verdict = Filtered then
          List.iter
            (fun p ->
              if p.hp_filtered && p.hp_margin <= t.h_filter_margin then
                add
                  (Diagnostic.make ?file ~context:r.hc_name Diagnostic.PX403
                     "filtered hazard within the widening band: pins %d \
                      (fall) and %d (rise) clear the §6 threshold by only \
                      %.1f ps (separation %s ps vs minimum %s ps)"
                     p.hp_fall_pin p.hp_rise_pin (p.hp_margin *. 1e12)
                     (Interval.to_string (ps p.hp_sep))
                     (Interval.to_string (ps p.hp_min_sep))))
            r.hc_pairs)
    t.h_cells;
  List.iter
    (fun pi_net ->
      add
        (Diagnostic.make ?file ~context:pi_net Diagnostic.PX404
           "primary input %s carries no event but feeds a glitch-capable \
            cone — an event on it could form an opposing-edge pair"
           pi_net))
    t.h_unconstrained;
  Diagnostic.sort !diags

let report_text t =
  let s = summary t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "hazard analysis: %d of %d cells classified; never %d, filtered %d, \
        may-glitch %d (%d observable at endpoints); required %.1f ps\n"
       s.classified s.total_cells s.never s.filtered s.may_glitch s.observable
       (t.h_required *. 1e12));
  let mays =
    cells t
    |> List.filter (fun r -> r.hc_verdict = May_glitch)
    |> List.sort (fun a b ->
         let key r =
           match r.hc_slack with
           | Some s -> -.Interval.hi s
           | None -> infinity
         in
         compare (key a) (key b))
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %-6s glitch %s ps  slack %s ps  -> %s\n"
           r.hc_name r.hc_gate
           (match r.hc_glitch with
            | Some gw -> Interval.to_string (ps gw)
            | None -> "-")
           (match r.hc_slack with
            | Some s -> Interval.to_string (ps s)
            | None -> "-")
           (match r.hc_reaches with
            | [] -> "(no endpoint)"
            | l -> String.concat "," l)))
    mays;
  Buffer.contents buf
